// Runtime CPU dispatch contract (util/cpu_dispatch): tier ordering and
// naming, the active tier as min(compiled, detected, cap), the process cap
// with its RAII scope guard, and the runtime lane-width list campaigns
// resolve widths against. The SABLE_DISPATCH environment variable is read
// once at first use and feeds the same cap these tests exercise directly,
// so it is covered by the set_dispatch_tier_cap tests (plus the CI job
// that runs the suite under SABLE_DISPATCH=portable).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "engine/trace_engine.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/lane_word.hpp"

namespace sable {
namespace {

TEST(CpuDispatchTest, TiersAreOrderedAndNamed) {
  EXPECT_LT(static_cast<int>(DispatchTier::kPortable),
            static_cast<int>(DispatchTier::kAvx2));
  EXPECT_LT(static_cast<int>(DispatchTier::kAvx2),
            static_cast<int>(DispatchTier::kAvx512));
  EXPECT_STREQ(to_string(DispatchTier::kPortable), "portable");
  EXPECT_STREQ(to_string(DispatchTier::kAvx2), "avx2");
  EXPECT_STREQ(to_string(DispatchTier::kAvx512), "avx512");
}

TEST(CpuDispatchTest, CompiledTierMatchesTheBuiltLaneWords) {
#if SABLE_HAVE_WORD512
  EXPECT_EQ(compiled_tier(), DispatchTier::kAvx512);
#elif SABLE_HAVE_WORD256
  EXPECT_EQ(compiled_tier(), DispatchTier::kAvx2);
#else
  EXPECT_EQ(compiled_tier(), DispatchTier::kPortable);
#endif
}

TEST(CpuDispatchTest, DetectedTierMatchesCpuFeatures) {
  const CpuFeatures& features = cpu_features();
  if (features.avx512f) {
    EXPECT_TRUE(features.avx2);  // every AVX-512F part has AVX2
    EXPECT_EQ(detected_tier(), DispatchTier::kAvx512);
  } else if (features.avx2) {
    EXPECT_EQ(detected_tier(), DispatchTier::kAvx2);
  } else {
    EXPECT_EQ(detected_tier(), DispatchTier::kPortable);
  }
}

// The sub-tier flags (avx512bw, avx512vbmi, gfni) gate optional
// instruction paths inside the AVX-512 pack kernels; they never pick the
// tier. On every real part the AVX-512 extensions are nested — BW
// requires F, VBMI requires BW — and the kernels rely on that nesting
// (byte_planes_64_gfni assumes VBMI's vpermb, which assumes BW's byte
// ops). GFNI carries no such implication: it has SSE/AVX encodings, so
// it is only ever consulted alongside the VBMI+BW check.
TEST(CpuDispatchTest, SubTierFlagsAreNestedAndTierIndependent) {
  const CpuFeatures& features = cpu_features();
  if (features.avx512vbmi) EXPECT_TRUE(features.avx512bw);
  if (features.avx512bw) EXPECT_TRUE(features.avx512f);
#if !defined(__x86_64__) && !defined(__i386__)
  EXPECT_FALSE(features.avx512bw);
  EXPECT_FALSE(features.avx512vbmi);
  EXPECT_FALSE(features.gfni);
#endif
  // The probe is cached: every call returns the same object, and capping
  // the dispatch tier must not re-probe or mask the raw feature bits.
  EXPECT_EQ(&cpu_features(), &features);
  ScopedDispatchTierCap cap(DispatchTier::kPortable);
  EXPECT_EQ(cpu_features().avx512bw, features.avx512bw);
  EXPECT_EQ(cpu_features().avx512vbmi, features.avx512vbmi);
  EXPECT_EQ(cpu_features().gfni, features.gfni);
}

TEST(CpuDispatchTest, ActiveTierIsTheMinimumOfCompiledDetectedAndCap) {
  const DispatchTier expected =
      std::min({compiled_tier(), detected_tier(), dispatch_tier_cap()});
  EXPECT_EQ(active_tier(), expected);
  for (DispatchTier cap : {DispatchTier::kPortable, DispatchTier::kAvx2,
                           DispatchTier::kAvx512}) {
    ScopedDispatchTierCap scoped(cap);
    EXPECT_EQ(active_tier(), std::min({compiled_tier(), detected_tier(), cap}));
  }
}

TEST(CpuDispatchTest, ScopedCapRestoresThePreviousCap) {
  const DispatchTier before = dispatch_tier_cap();
  {
    ScopedDispatchTierCap outer(DispatchTier::kAvx2);
    EXPECT_EQ(dispatch_tier_cap(), DispatchTier::kAvx2);
    {
      ScopedDispatchTierCap inner(DispatchTier::kPortable);
      EXPECT_EQ(dispatch_tier_cap(), DispatchTier::kPortable);
      EXPECT_EQ(active_tier(), DispatchTier::kPortable);
    }
    EXPECT_EQ(dispatch_tier_cap(), DispatchTier::kAvx2);
  }
  EXPECT_EQ(dispatch_tier_cap(), before);
}

TEST(CpuDispatchTest, RuntimeWidthsAreTheCompiledWidthsTheTierAllows) {
  const auto compiled = supported_lane_widths();
  const auto runtime = runtime_lane_widths();
  // Ascending, starts with the portable pair, subset of the compiled list.
  ASSERT_GE(runtime.size(), 2u);
  EXPECT_EQ(runtime[0], 64u);
  EXPECT_EQ(runtime[1], 128u);
  EXPECT_TRUE(std::is_sorted(runtime.begin(), runtime.end()));
  for (std::size_t width : runtime) {
    EXPECT_NE(std::find(compiled.begin(), compiled.end(), width),
              compiled.end())
        << width;
  }
  EXPECT_EQ(max_runtime_lane_width(), runtime.back());

  // Widths above 128 require their ISA tier at runtime.
  const bool has256 =
      std::find(runtime.begin(), runtime.end(), 256u) != runtime.end();
  const bool has512 =
      std::find(runtime.begin(), runtime.end(), 512u) != runtime.end();
  EXPECT_EQ(has256, active_tier() >= DispatchTier::kAvx2 &&
                        std::find(compiled.begin(), compiled.end(), 256u) !=
                            compiled.end());
  EXPECT_EQ(has512, active_tier() >= DispatchTier::kAvx512 &&
                        std::find(compiled.begin(), compiled.end(), 512u) !=
                            compiled.end());
}

TEST(CpuDispatchTest, PortableCapCollapsesRuntimeWidthsToThePortablePair) {
  ScopedDispatchTierCap cap(DispatchTier::kPortable);
  const auto runtime = runtime_lane_widths();
  ASSERT_EQ(runtime.size(), 2u);
  EXPECT_EQ(runtime[0], 64u);
  EXPECT_EQ(runtime[1], 128u);
  EXPECT_EQ(max_runtime_lane_width(), 128u);
  EXPECT_EQ(campaign_lane_width(CampaignOptions{}), 128u);
}

}  // namespace
}  // namespace sable
