#include "dpa/mtd.hpp"

#include <algorithm>

#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

constexpr std::uint32_t kShardedMtdTag = 0x53AB1005;

}  // namespace

MtdResult mtd_from_history(
    std::vector<std::pair<std::size_t, std::size_t>> rank_history) {
  MtdResult result;
  result.rank_history = std::move(rank_history);
  // MTD: first checkpoint from which the rank stays 0 to the end.
  std::size_t stable_from = result.rank_history.size();
  for (std::size_t i = result.rank_history.size(); i-- > 0;) {
    if (result.rank_history[i].second != 0) break;
    stable_from = i;
  }
  if (stable_from < result.rank_history.size()) {
    result.disclosed = true;
    result.mtd = result.rank_history[stable_from].first;
  }
  return result;
}

MtdResult measurements_to_disclosure(
    const TraceSet& traces, std::size_t correct_key,
    const std::vector<std::size_t>& checkpoints,
    const std::function<AttackResult(const TraceSet&)>& attack) {
  std::vector<std::pair<std::size_t, std::size_t>> history;
  for (std::size_t n : checkpoints) {
    if (n > traces.size() || n < 2) continue;
    TraceSet prefix;
    prefix.pt_width = traces.pt_width;
    prefix.plaintexts.assign(
        traces.plaintexts.begin(),
        traces.plaintexts.begin() +
            static_cast<std::ptrdiff_t>(n * traces.pt_width));
    prefix.samples.assign(traces.samples.begin(), traces.samples.begin() + n);
    const AttackResult r = attack(prefix);
    history.emplace_back(n, r.rank_of(correct_key));
  }
  return mtd_from_history(std::move(history));
}

StreamingMtd::StreamingMtd(StreamingCpa attack, std::size_t correct_key,
                           std::vector<std::size_t> checkpoints)
    : attack_(std::move(attack)),
      correct_key_(correct_key),
      checkpoints_(std::move(checkpoints)) {
  std::sort(checkpoints_.begin(), checkpoints_.end());
  // Checkpoints below two traces can never be evaluated, and neither can
  // ones a pre-fed accumulator has already passed; skip both so the
  // ladder matches the prefix-based driver (and the remaining-distance
  // arithmetic in add_batch can never underflow).
  while (next_checkpoint_ < checkpoints_.size() &&
         (checkpoints_[next_checkpoint_] < 2 ||
          checkpoints_[next_checkpoint_] < attack_.count())) {
    ++next_checkpoint_;
  }
  // A checkpoint sitting exactly at the pre-fed count is due now.
  snapshot_if_due();
}

void StreamingMtd::snapshot_if_due() {
  while (next_checkpoint_ < checkpoints_.size() &&
         attack_.count() == checkpoints_[next_checkpoint_]) {
    rank_history_.emplace_back(attack_.count(),
                               attack_.result().rank_of(correct_key_));
    ++next_checkpoint_;
  }
}

void StreamingMtd::add(std::uint8_t pt, double sample) {
  attack_.add(pt, sample);
  snapshot_if_due();
}

void StreamingMtd::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  std::size_t done = 0;
  while (done < count) {
    // Feed up to the next checkpoint in one go, then snapshot.
    std::size_t chunk = count - done;
    if (next_checkpoint_ < checkpoints_.size()) {
      const std::size_t to_checkpoint =
          checkpoints_[next_checkpoint_] - attack_.count();
      chunk = std::min(chunk, to_checkpoint);
    }
    attack_.add_batch(pts + done, samples + done, chunk);
    done += chunk;
    snapshot_if_due();
  }
}

void ShardedMtd::checkpoint(std::size_t count, const StreamingCpa& partial) {
  SABLE_REQUIRE(rank_history_.empty() || rank_history_.back().first < count,
                "MTD checkpoints must arrive in ascending trace order");
  // A merged copy is O(guesses) — the same cost StreamingMtd pays to
  // snapshot, so checkpoint density is as cheap as in the sequential path.
  if (!merged_) {
    rank_history_.emplace_back(count,
                               partial.result().rank_of(correct_key_));
    return;
  }
  StreamingCpa prefix = *merged_;
  prefix.merge(partial);
  SABLE_REQUIRE(prefix.count() == count,
                "checkpoint count must equal merged prefix trace count");
  rank_history_.emplace_back(count, prefix.result().rank_of(correct_key_));
}

void ShardedMtd::append(const StreamingCpa& full) {
  if (!merged_) {
    merged_ = full;
  } else {
    merged_->merge(full);
  }
}

void ShardedMtd::save(ByteWriter& writer) const {
  writer.u32(kShardedMtdTag);
  writer.u64(correct_key_);
  writer.u8(merged_ ? 1 : 0);
  if (merged_) merged_->save(writer);
  writer.u64(rank_history_.size());
  for (const auto& [count, rank] : rank_history_) {
    writer.u64(count);
    writer.u64(rank);
  }
}

void ShardedMtd::load(ByteReader& reader, const StreamingCpa& prototype) {
  SABLE_REQUIRE(reader.u32() == kShardedMtdTag,
                "serialized state is not a ShardedMtd driver");
  SABLE_REQUIRE(reader.u64() == correct_key_,
                "serialized MTD state targets a different correct key");
  if (reader.u8() != 0) {
    merged_ = prototype;
    merged_->load(reader);
  } else {
    merged_.reset();
  }
  const std::uint64_t entries = reader.checked_count(16);
  rank_history_.clear();
  rank_history_.reserve(entries);
  for (std::uint64_t i = 0; i < entries; ++i) {
    const std::uint64_t count = reader.u64();
    const std::uint64_t rank = reader.u64();
    rank_history_.emplace_back(static_cast<std::size_t>(count),
                               static_cast<std::size_t>(rank));
  }
}

std::vector<std::size_t> default_checkpoints(std::size_t max_traces) {
  std::vector<std::size_t> pts;
  for (std::size_t n = 16; n < max_traces; n = n + (n / 2)) {
    pts.push_back(n);
  }
  pts.push_back(max_traces);
  return pts;
}

}  // namespace sable
