// Tests for the decomposition-order optimizer.
#include <gtest/gtest.h>

#include "core/checks.hpp"
#include "core/decomposition.hpp"
#include "core/depth_analysis.hpp"
#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "expr/random_expr.hpp"
#include "expr/truth_table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

TEST(DecompositionTest, PreservesFunctionAndConnectivity) {
  VarTable vars;
  const char* cases[] = {"A.B + C.D", "(A+B).(C+D)", "A.(B + C.D) + B'.D",
                         "A.B.C + D"};
  for (const char* text : cases) {
    const ExprPtr f = parse_expression(text, vars);
    const auto n = f->variables().size();
    const DecompositionResult result = optimize_decomposition(f, n);
    EXPECT_TRUE(equivalent(result.expr, f, n)) << text;
    const DpdnNetwork net = synthesize_fc_dpdn(result.expr, n);
    EXPECT_TRUE(check_functionality(net, f).ok) << text;
    EXPECT_TRUE(check_full_connectivity(net).fully_connected) << text;
    EXPECT_EQ(result.devices, net.device_count());
  }
}

TEST(DecompositionTest, NeverWorseThanGivenOrder) {
  Rng rng(0xDECAF);
  RandomExprOptions opt;
  opt.num_vars = 4;
  opt.num_literals = 9;
  for (int i = 0; i < 15; ++i) {
    const ExprPtr f = random_nnf(rng, opt);
    const TruthTable t = table_of(f, opt.num_vars);
    if (t.popcount() == 0 || t.popcount() == t.num_rows()) continue;
    const std::size_t given_depth =
        structural_path_stats(synthesize_fc_dpdn(f, opt.num_vars)).max_length;
    const DecompositionResult result =
        optimize_decomposition(f, opt.num_vars);
    EXPECT_LE(result.max_depth, given_depth) << "seed " << i;
    EXPECT_GT(result.candidates, 0u);
  }
}

TEST(DecompositionTest, DeviceCountInvariantUnderReordering) {
  // Reordering changes wiring, never the device inventory.
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const DecompositionResult result = optimize_decomposition(f, 4);
  EXPECT_EQ(result.devices, synthesize_fc_dpdn(f, 4).device_count());
}

TEST(DecompositionTest, FindsDepthImprovement) {
  // OR with a deep and a shallow arm: putting the deep arm first makes the
  // shallow direct branch skip it (depth = 1 + dual chain), while the given
  // order forces the deep false chain under the shallow arm. The optimizer
  // must find an order at least as good as every manual one.
  VarTable vars;
  const ExprPtr f = parse_expression("E + A.B.C.D", vars);
  const std::size_t given =
      structural_path_stats(synthesize_fc_dpdn(f, 5)).max_length;
  const DecompositionResult result = optimize_decomposition(f, 5);
  const ExprPtr flipped = parse_expression("A.B.C.D + E", vars);
  const std::size_t manual =
      structural_path_stats(synthesize_fc_dpdn(flipped, 5)).max_length;
  EXPECT_LE(result.max_depth, std::min(given, manual));
}

TEST(DecompositionTest, RespectsCandidateBudget) {
  VarTable vars;
  const ExprPtr f =
      parse_expression("A + B + C + D + E + F", vars);  // 6! orders
  const DecompositionResult result = optimize_decomposition(f, 6, 50);
  EXPECT_LE(result.candidates, 51u);
  EXPECT_TRUE(equivalent(result.expr, f, 6));
}

TEST(DecompositionTest, RejectsConstants) {
  EXPECT_THROW(optimize_decomposition(Expr::constant(false), 2),
               InvalidArgument);
}

}  // namespace
}  // namespace sable
