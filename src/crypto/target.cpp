#include "crypto/target.hpp"

#include <algorithm>

#include "cell/builder.hpp"
#include "expr/factoring.hpp"
#include "util/error.hpp"

namespace sable {

const char* to_string(LogicStyle style) {
  switch (style) {
    case LogicStyle::kStaticCmos:
      return "static-CMOS";
    case LogicStyle::kSablGenuine:
      return "SABL-genuine";
    case LogicStyle::kSablFullyConnected:
      return "SABL-fully-connected";
    case LogicStyle::kSablEnhanced:
      return "SABL-enhanced";
    case LogicStyle::kWddlBalanced:
      return "WDDL-balanced";
    case LogicStyle::kWddlMismatched:
      return "WDDL-5%-mismatch";
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

namespace {

NetworkVariant variant_for(LogicStyle style) {
  switch (style) {
    case LogicStyle::kSablGenuine:
      return NetworkVariant::kGenuine;
    case LogicStyle::kSablEnhanced:
      return NetworkVariant::kEnhanced;
    case LogicStyle::kStaticCmos:  // topology reused; energy model differs
    case LogicStyle::kSablFullyConnected:
    case LogicStyle::kWddlBalanced:
    case LogicStyle::kWddlMismatched:
      return NetworkVariant::kFullyConnected;
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

GateCircuit build_sbox_circuit(const SboxSpec& spec, LogicStyle style,
                               const Technology& tech) {
  std::vector<ExprPtr> outputs;
  outputs.reserve(spec.out_bits);
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    outputs.push_back(factored_form(sbox_output_bit(spec, bit)));
  }
  return build_from_expressions(outputs, spec.in_bits, variant_for(style),
                                tech);
}

}  // namespace

SboxTarget::SboxTarget(const SboxSpec& spec, LogicStyle style,
                       std::shared_ptr<const GateCircuit> circuit)
    : spec_(spec), style_(style), circuit_(std::move(circuit)),
      words_(spec.in_bits, 0) {}

SboxTarget::SboxTarget(const SboxSpec& spec, LogicStyle style,
                       const Technology& tech)
    : SboxTarget(spec, style,
                 std::make_shared<const GateCircuit>(
                     build_sbox_circuit(spec, style, tech))) {
  switch (style) {
    case LogicStyle::kStaticCmos: {
      // One transition's worth of switching energy for a typical cell load:
      // ~5 fF at the reference VDD.
      const double c_sw = 5e-15;
      cmos_sim_ = std::make_unique<CmosCircuitSimBatch>(
          *circuit_, c_sw * tech.vdd * tech.vdd);
      break;
    }
    case LogicStyle::kWddlBalanced:
      wddl_sim_ = std::make_unique<WddlCircuitSimBatch>(*circuit_, tech, 0.0);
      break;
    case LogicStyle::kWddlMismatched:
      wddl_sim_ = std::make_unique<WddlCircuitSimBatch>(*circuit_, tech, 0.05);
      break;
    default:
      diff_sim_ = std::make_unique<DifferentialCircuitSimBatch>(*circuit_);
      break;
  }
}

SboxTarget SboxTarget::clone() const {
  SboxTarget copy(spec_, style_, circuit_);
  // The sims' clone_fresh() preserves derived energy models (WDDL rail
  // mismatch, custom per-instance models) without needing the Technology
  // back, and starts from fresh-construction lane state.
  if (diff_sim_) {
    copy.diff_sim_ = std::make_unique<DifferentialCircuitSimBatch>(
        diff_sim_->clone_fresh());
  } else if (wddl_sim_) {
    copy.wddl_sim_ =
        std::make_unique<WddlCircuitSimBatch>(wddl_sim_->clone_fresh());
  } else {
    copy.cmos_sim_ =
        std::make_unique<CmosCircuitSimBatch>(cmos_sim_->clone_fresh());
  }
  return copy;
}

void SboxTarget::cycle_batch(const std::vector<std::uint64_t>& input_words,
                             std::uint64_t lane_mask, BatchCycleResult& out) {
  if (diff_sim_) {
    diff_sim_->cycle(input_words, lane_mask, out);
  } else if (wddl_sim_) {
    wddl_sim_->cycle(input_words, lane_mask, out);
  } else {
    cmos_sim_->cycle(input_words, lane_mask, out);
  }
}

void SboxTarget::reset_state() {
  if (diff_sim_) {
    diff_sim_->reset();
  } else if (cmos_sim_) {
    cmos_sim_->reset();
  }
  // WDDL carries no cross-cycle state.
}

double SboxTarget::trace(std::uint8_t pt, std::uint8_t key,
                         double noise_sigma, Rng& rng) {
  const std::uint64_t x = (pt ^ key) & ((1u << spec_.in_bits) - 1u);
  pack_lane_words(&x, 1, words_);
  cycle_batch(words_, 1u, scratch_);
  return scratch_.energy[0] + noise_sigma * rng.gaussian();
}

void SboxTarget::trace_batch(const std::uint8_t* pts, std::size_t count,
                             std::uint8_t key, double noise_sigma, Rng& rng,
                             double* out) {
  constexpr std::size_t kLanes = SablGateSimBatch::kLanes;
  const std::uint8_t in_mask =
      static_cast<std::uint8_t>((1u << spec_.in_bits) - 1u);
  for (std::size_t base = 0; base < count; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - base);
    const std::uint64_t lane_mask =
        lanes == kLanes ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << lanes) - 1u;
    std::uint64_t xs[kLanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      xs[lane] = (pts[base + lane] ^ key) & in_mask;
    }
    pack_lane_words(xs, lanes, words_);
    cycle_batch(words_, lane_mask, scratch_);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane] = scratch_.energy[lane];
    }
  }
  if (noise_sigma != 0.0) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] += noise_sigma * rng.gaussian();
    }
  }
}

std::uint8_t SboxTarget::reference(std::uint8_t pt, std::uint8_t key) const {
  return spec_.apply(static_cast<std::uint8_t>(
      (pt ^ key) & ((1u << spec_.in_bits) - 1u)));
}

}  // namespace sable
