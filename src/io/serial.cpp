#include "io/serial.hpp"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#define SABLE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SABLE_HAVE_MMAP 0
#endif

namespace sable {

namespace {

// Scalars are composed byte by byte (endian-independent); the bulk f64
// array paths memcpy whole spans, which assumes a little-endian host —
// checked here rather than silently producing byte-swapped files on the
// (hypothetical) big-endian port.
static_assert(std::endian::native == std::endian::little,
              "sable file formats are little-endian; the bulk array paths "
              "need byte-swapping on big-endian hosts");

std::string errno_message(const std::string& action) {
  return action + ": " + std::strerror(errno);
}

}  // namespace

// ---- ByteWriter -----------------------------------------------------------

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::bytes(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void ByteWriter::f64s(const double* data, std::size_t count) {
  bytes(data, count * sizeof(double));
}

void ByteWriter::pad_to(std::size_t alignment) {
  while (buf_.size() % alignment != 0) buf_.push_back(0);
}

void ByteWriter::patch_u64(std::size_t offset, std::uint64_t v) {
  SABLE_ASSERT(offset + 8 <= buf_.size(),
               "patch_u64 offset must lie inside the written buffer");
  for (int i = 0; i < 8; ++i) {
    buf_[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
}

void ByteWriter::write_file(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw IoError(path, errno_message("cannot create file"));
  }
  const std::size_t written = buf_.empty()
                                  ? 0
                                  : std::fwrite(buf_.data(), 1, buf_.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != buf_.size() || !flushed) {
    std::remove(tmp.c_str());
    throw IoError(path, "short write while saving file");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError(path, errno_message("cannot rename temporary file"));
  }
}

// ---- MappedFile -----------------------------------------------------------

MappedFile::MappedFile(const std::string& path) : path_(path) {
#if SABLE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError(path, errno_message("cannot open file"));
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError(path, errno_message("cannot stat file"));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      ::close(fd);
      throw IoError(path, errno_message("cannot mmap file"));
    }
    data_ = static_cast<const std::uint8_t*>(p);
    mapped_ = true;
  }
  ::close(fd);
#else
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw IoError(path, errno_message("cannot open file"));
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(f);
    throw IoError(path, errno_message("cannot read file size"));
  }
  fallback_.resize(static_cast<std::size_t>(end));
  const std::size_t got =
      fallback_.empty() ? 0 : std::fread(fallback_.data(), 1, fallback_.size(), f);
  std::fclose(f);
  if (got != fallback_.size()) {
    throw IoError(path, "short read while loading file");
  }
  data_ = fallback_.data();
  size_ = fallback_.size();
#endif
}

MappedFile::~MappedFile() {
#if SABLE_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : path_(std::move(other.path_)),
      data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  if (!fallback_.empty()) data_ = fallback_.data();
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if SABLE_HAVE_MMAP
    if (mapped_) ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
    path_ = std::move(other.path_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    fallback_ = std::move(other.fallback_);
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
    if (!fallback_.empty()) data_ = fallback_.data();
  }
  return *this;
}

// ---- ByteReader -----------------------------------------------------------

void ByteReader::require(std::size_t size) const {
  if (size > remaining()) {
    throw FileTruncatedError(
        path_, "file truncated: need " + std::to_string(size) +
                   " bytes at offset " + std::to_string(offset_) +
                   " but only " + std::to_string(remaining()) + " remain");
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return data_[offset_++];
}

std::uint32_t ByteReader::u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[offset_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  offset_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[offset_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  offset_ += 8;
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

void ByteReader::bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, data_ + offset_, size);
  offset_ += size;
}

void ByteReader::f64s(double* out, std::size_t count) {
  bytes(out, count * sizeof(double));
}

const std::uint8_t* ByteReader::view(std::size_t size) {
  require(size);
  const std::uint8_t* p = data_ + offset_;
  offset_ += size;
  return p;
}

void ByteReader::skip(std::size_t size) {
  require(size);
  offset_ += size;
}

void ByteReader::seek(std::size_t offset) {
  if (offset > size_) {
    throw FileTruncatedError(path_, "seek offset " + std::to_string(offset) +
                                        " past end of " +
                                        std::to_string(size_) + "-byte file");
  }
  offset_ = offset;
}

std::uint64_t ByteReader::checked_count(std::size_t elem_size) {
  const std::uint64_t count = u64();
  SABLE_ASSERT(elem_size > 0, "checked_count needs a positive element size");
  if (count > remaining() / elem_size) {
    throw BadFileError(
        path_, "corrupt count field: " + std::to_string(count) +
                   " elements of " + std::to_string(elem_size) +
                   " bytes cannot fit in the " +
                   std::to_string(remaining()) + " bytes remaining");
  }
  return count;
}

}  // namespace sable
