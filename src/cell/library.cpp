#include "cell/library.hpp"

#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "util/error.hpp"

namespace sable {

const char* to_string(CellFunction f) {
  switch (f) {
    case CellFunction::kAnd2:
      return "AND2";
    case CellFunction::kOr2:
      return "OR2";
    case CellFunction::kXor2:
      return "XOR2";
    case CellFunction::kMux2:
      return "MUX2";
    case CellFunction::kAnd3:
      return "AND3";
    case CellFunction::kOr3:
      return "OR3";
    case CellFunction::kAoi22:
      return "AOI22";
    case CellFunction::kOai22:
      return "OAI22";
    case CellFunction::kMaj3:
      return "MAJ3";
    case CellFunction::kXor3:
      return "XOR3";
  }
  SABLE_ASSERT(false, "unreachable cell function");
}

const char* to_string(NetworkVariant v) {
  switch (v) {
    case NetworkVariant::kGenuine:
      return "genuine";
    case NetworkVariant::kFullyConnected:
      return "fully-connected";
    case NetworkVariant::kEnhanced:
      return "enhanced";
  }
  SABLE_ASSERT(false, "unreachable network variant");
}

std::vector<CellFunction> all_cell_functions() {
  return {CellFunction::kAnd2, CellFunction::kOr2,   CellFunction::kXor2,
          CellFunction::kMux2, CellFunction::kAnd3,  CellFunction::kOr3,
          CellFunction::kAoi22, CellFunction::kOai22, CellFunction::kMaj3,
          CellFunction::kXor3};
}

std::size_t cell_input_count(CellFunction f) {
  switch (f) {
    case CellFunction::kAnd2:
    case CellFunction::kOr2:
    case CellFunction::kXor2:
      return 2;
    case CellFunction::kMux2:
    case CellFunction::kAnd3:
    case CellFunction::kOr3:
    case CellFunction::kMaj3:
    case CellFunction::kXor3:
      return 3;
    case CellFunction::kAoi22:
    case CellFunction::kOai22:
      return 4;
  }
  SABLE_ASSERT(false, "unreachable cell function");
}

ExprPtr cell_expression(CellFunction f) {
  // Variables are positional: A=0, B=1, C=2, D=3 (MUX2: S=0, A=1, B=2).
  VarTable vars = VarTable::alphabetic(4);
  switch (f) {
    case CellFunction::kAnd2:
      return parse_expression("A.B", vars);
    case CellFunction::kOr2:
      return parse_expression("A + B", vars);
    case CellFunction::kXor2:
      return parse_expression("A.B' + A'.B", vars);
    case CellFunction::kMux2:
      return parse_expression("A.B + A'.C", vars);
    case CellFunction::kAnd3:
      return parse_expression("A.B.C", vars);
    case CellFunction::kOr3:
      return parse_expression("A + B + C", vars);
    case CellFunction::kAoi22:
      return parse_expression("A.B + C.D", vars);
    case CellFunction::kOai22:
      return parse_expression("(A+B).(C+D)", vars);
    case CellFunction::kMaj3:
      return parse_expression("A.B + C.(A + B)", vars);
    case CellFunction::kXor3:
      return parse_expression("A.(B.C + B'.C') + A'.(B.C' + B'.C)", vars);
  }
  SABLE_ASSERT(false, "unreachable cell function");
}

Cell make_custom_cell(std::string name, const ExprPtr& function,
                      std::size_t num_inputs, NetworkVariant variant,
                      const Technology& tech) {
  DpdnNetwork network = [&] {
    switch (variant) {
      case NetworkVariant::kGenuine:
        return build_genuine_dpdn(function, num_inputs);
      case NetworkVariant::kFullyConnected:
        return synthesize_fc_dpdn(function, num_inputs);
      case NetworkVariant::kEnhanced:
        return synthesize_enhanced_dpdn(function, num_inputs);
    }
    SABLE_ASSERT(false, "unreachable network variant");
  }();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  GateEnergyModel model = build_gate_model(network, tech, sizing);
  return Cell{std::move(name), function,          num_inputs,
              variant,         std::move(network), std::move(model)};
}

Cell make_cell(CellFunction f, NetworkVariant variant,
               const Technology& tech) {
  std::string name = std::string(to_string(f)) + "_" + to_string(variant);
  return make_custom_cell(std::move(name), cell_expression(f),
                          cell_input_count(f), variant, tech);
}

}  // namespace sable
