// Width-generic round targets: N S-boxes side by side with summed power.
//
// Under test: the packed-state layout (nibble packing for 4-bit S-boxes,
// heterogeneous widths), per-instance functional correctness, summed
// power against the single-S-box targets, per-subkey attack selection,
// algorithmic-noise MTD monotonicity, and the time-resolved
// multi_cpa_campaign against the retained-trace multisample attack.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cell/circuit_sim.hpp"
#include "crypto/round_target.hpp"
#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "engine/trace_engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(RoundSpecTest, PackedStateLayout) {
  // 16 PRESENT nibbles pack into 8 bytes; mixed widths pack LSB-first.
  const RoundSpec present16 = present_round(16, LogicStyle::kStaticCmos);
  EXPECT_EQ(present16.state_bits(), 64u);
  EXPECT_EQ(present16.state_bytes(), 8u);
  EXPECT_EQ(present16.bit_offset(3), 12u);

  RoundSpec mixed;
  mixed.sboxes = {present_spec(), des1_spec(), aes_spec()};
  mixed.style = LogicStyle::kStaticCmos;
  EXPECT_EQ(mixed.state_bits(), 4u + 6u + 8u);
  EXPECT_EQ(mixed.state_bytes(), 3u);

  // Round-trip every instance through set_sub_word / sub_word.
  std::vector<std::uint8_t> state(mixed.state_bytes(), 0);
  mixed.set_sub_word(state.data(), 0, 0xA);
  mixed.set_sub_word(state.data(), 1, 0x2B);
  mixed.set_sub_word(state.data(), 2, 0xC4);
  EXPECT_EQ(mixed.sub_word(state.data(), 0), 0xAu);
  EXPECT_EQ(mixed.sub_word(state.data(), 1), 0x2Bu);
  EXPECT_EQ(mixed.sub_word(state.data(), 2), 0xC4u);
  // Nibble packing: instance 0 is the low nibble, instance 1 straddles
  // the byte boundary.
  EXPECT_EQ(state[0], 0xA | ((0x2B & 0xF) << 4));

  // Overwriting one sub-word leaves the neighbours intact.
  mixed.set_sub_word(state.data(), 1, 0x15);
  EXPECT_EQ(mixed.sub_word(state.data(), 0), 0xAu);
  EXPECT_EQ(mixed.sub_word(state.data(), 1), 0x15u);
  EXPECT_EQ(mixed.sub_word(state.data(), 2), 0xC4u);

  const std::vector<std::uint8_t> packed =
      mixed.pack_subkeys({0x7, 0x3F, 0x80});
  EXPECT_EQ(mixed.sub_word(packed.data(), 0), 0x7u);
  EXPECT_EQ(mixed.sub_word(packed.data(), 1), 0x3Fu);
  EXPECT_EQ(mixed.sub_word(packed.data(), 2), 0x80u);
  EXPECT_THROW(mixed.pack_subkeys({0x7, 0x3F}), InvalidArgument);
  EXPECT_THROW(mixed.set_sub_word(state.data(), 0, 0x10), InvalidArgument);
}

TEST(RoundTargetTest, EveryInstanceComputesItsReferenceSbox) {
  // Heterogeneous round: each instance's synthesized circuit must realize
  // its own S-box table, independent of the neighbours.
  RoundSpec round;
  round.sboxes = {present_spec(), des1_spec(), present_spec()};
  round.style = LogicStyle::kSablFullyConnected;
  RoundTarget target(round, kTech);
  for (std::size_t i = 0; i < round.num_sboxes(); ++i) {
    const SboxSpec& spec = round.sboxes[i];
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << spec.in_bits); ++x) {
      EXPECT_EQ(evaluate_circuit(target.circuit(i), x),
                spec.apply(static_cast<std::uint8_t>(x)))
          << "instance " << i << " input " << x;
    }
  }
  // reference() applies the per-instance subkey of the packed round key.
  const std::vector<std::uint8_t> key = round.pack_subkeys({0x3, 0x2A, 0xC});
  std::vector<std::uint8_t> pt(round.state_bytes(), 0);
  round.set_sub_word(pt.data(), 0, 0x9);
  round.set_sub_word(pt.data(), 1, 0x11);
  round.set_sub_word(pt.data(), 2, 0x5);
  EXPECT_EQ(target.reference(0, pt.data(), key.data()),
            present_sbox(0x9 ^ 0x3));
  EXPECT_EQ(target.reference(1, pt.data(), key.data()),
            des_sbox1(0x11 ^ 0x2A));
  EXPECT_EQ(target.reference(2, pt.data(), key.data()),
            present_sbox(0x5 ^ 0xC));
}

TEST(RoundTargetTest, SummedPowerEqualsSumOfSingleTargets) {
  // History-free style: the round's power sample must equal the sum of
  // independent single-S-box targets fed the matching sub-words.
  RoundSpec round;
  round.sboxes = {present_spec(), des1_spec()};
  round.style = LogicStyle::kSablFullyConnected;
  RoundTarget target(round, kTech);
  SboxTarget a(present_spec(), LogicStyle::kSablFullyConnected, kTech);
  SboxTarget b(des1_spec(), LogicStyle::kSablFullyConnected, kTech);
  const std::vector<std::uint8_t> key = round.pack_subkeys({0x6, 0x19});
  Rng pts(0x1234);
  Rng no_noise(0);
  std::vector<std::uint8_t> state(round.state_bytes(), 0);
  for (int i = 0; i < 100; ++i) {
    const auto pa = static_cast<std::uint8_t>(pts.below(16));
    const auto pb = static_cast<std::uint8_t>(pts.below(64));
    round.set_sub_word(state.data(), 0, pa);
    round.set_sub_word(state.data(), 1, pb);
    const double summed = target.trace(state.data(), key.data(), 0.0,
                                       no_noise);
    const double expected = a.trace(pa, 0x6, 0.0, no_noise) +
                            b.trace(pb, 0x19, 0.0, no_noise);
    EXPECT_DOUBLE_EQ(summed, expected) << i;
  }
}

TEST(RoundTargetTest, BatchedRoundTracesMatchScalar) {
  // CMOS carries per-lane history, so lane L of a batch must track a
  // scalar target fed every 64th wide plaintext.
  const RoundSpec round = present_round(2, LogicStyle::kStaticCmos);
  RoundTarget batch(round, kTech);
  const std::vector<std::uint8_t> key = round.pack_subkeys({0x4, 0xD});
  const std::size_t count = 192;
  const std::size_t stride = round.state_bytes();
  Rng pts_rng(0xABC);
  std::vector<std::uint8_t> pts(count * stride, 0);
  for (std::size_t t = 0; t < count; ++t) {
    for (std::size_t j = 0; j < round.num_sboxes(); ++j) {
      round.set_sub_word(pts.data() + t * stride, j, pts_rng.below(16));
    }
  }
  std::vector<double> out(count);
  Rng no_noise(0);
  batch.trace_batch(pts.data(), count, key.data(), 0.0, no_noise, out.data());
  constexpr std::size_t kLanes = SablGateSimBatch::kLanes;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    RoundTarget scalar(round, kTech);
    for (std::size_t t = lane; t < count; t += kLanes) {
      EXPECT_EQ(out[t],
                scalar.trace(pts.data() + t * stride, key.data(), 0.0,
                             no_noise))
          << "lane " << lane << " trace " << t;
    }
  }
}

TEST(RoundEngineTest, CpaCampaignRecoversTheSelectedSubkey) {
  // Four PRESENT instances with distinct subkeys: attacking instance i
  // must recover subkey i — not any neighbour's — through 3 instances'
  // worth of algorithmic noise.
  const RoundSpec round = present_round(4, LogicStyle::kStaticCmos);
  const std::vector<std::size_t> subkeys = {0x3, 0xE, 0x8, 0x6};
  TraceEngine engine(round, kTech);
  CampaignOptions options;
  options.num_traces = 6000;
  options.key = round.pack_subkeys(subkeys);
  options.noise_sigma = 1e-16;
  options.seed = 0x40D;
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const AttackResult result = engine.cpa_campaign(
        options,
        AttackSelector{.sbox_index = i, .model = PowerModel::kHammingWeight});
    EXPECT_EQ(result.score.size(), 16u);
    EXPECT_EQ(result.best_guess, subkeys[i]) << "attacked instance " << i;
  }
}

TEST(RoundEngineTest, AlgorithmicNoiseGrowsMtdWithRoundSize) {
  // The neighbours' switching is algorithmic noise: disclosing the same
  // subkey must take more traces the more instances surround it.
  std::vector<std::size_t> mtds;
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    const RoundSpec round = present_round(n, LogicStyle::kStaticCmos);
    std::vector<std::size_t> subkeys(n);
    for (std::size_t j = 0; j < n; ++j) subkeys[j] = (0xB + 5 * j) & 0xF;
    TraceEngine engine(round, kTech);
    CampaignOptions options;
    options.num_traces = 20000;
    options.key = round.pack_subkeys(subkeys);
    options.noise_sigma = 2e-16;
    options.seed = 0x3D7;
    const MtdResult mtd = engine.mtd_campaign(
        options, AttackSelector{.model = PowerModel::kHammingWeight},
        default_checkpoints(options.num_traces));
    ASSERT_TRUE(mtd.disclosed) << "round size " << n;
    mtds.push_back(mtd.mtd);
  }
  EXPECT_LE(mtds[0], mtds[1]);
  EXPECT_LE(mtds[1], mtds[2]);
  EXPECT_LT(mtds[0], mtds[2]);
}

TEST(RoundEngineTest, MultiCpaCampaignMatchesRetainedMultisampleAttack) {
  // The time-resolved sharded campaign must agree with the batch
  // multisample attack over the identical retained traces to 1e-12.
  const RoundSpec round = present_round(3, LogicStyle::kSablGenuine);
  const std::vector<std::size_t> subkeys = {0x9, 0x4, 0xD};
  const AttackSelector selector{.sbox_index = 1,
                                .model = PowerModel::kHammingWeight};
  CampaignOptions options;
  options.num_traces = 1500;
  options.key = round.pack_subkeys(subkeys);
  options.noise_sigma = 1e-16;
  options.seed = 0x3117;
  options.shard_size = 448;  // several shards, one partial tail

  TraceEngine engine(round, kTech);
  const MultiAttackResult streamed =
      engine.multi_cpa_campaign(options, selector);

  // Retain the same campaign via stream_sampled and run the batch attack
  // on the attacked instance's sub-plaintexts.
  TraceEngine engine2(round, kTech);
  const std::size_t width = engine2.target().num_levels();
  ASSERT_GT(width, 1u);
  MultiTraceSet retained;
  retained.reserve(options.num_traces, width);
  std::vector<std::uint8_t> sub_pts(campaign_shard_size(options));
  engine2.stream_sampled(
      options, [&](const std::uint8_t* pts, const double* rows,
                   std::size_t count) {
        round.sub_words(pts, count, selector.sbox_index, sub_pts.data());
        for (std::size_t t = 0; t < count; ++t) {
          retained.add(sub_pts[t], rows + t * width, width);
        }
      });
  ASSERT_EQ(retained.size(), options.num_traces);
  const MultiAttackResult batch = cpa_attack_multisample(
      retained, round.sboxes[selector.sbox_index], selector.model,
      selector.bit);

  ASSERT_EQ(streamed.combined.score.size(), batch.combined.score.size());
  for (std::size_t g = 0; g < batch.combined.score.size(); ++g) {
    EXPECT_NEAR(streamed.combined.score[g], batch.combined.score[g], 1e-12)
        << g;
  }
  EXPECT_EQ(streamed.combined.best_guess, batch.combined.best_guess);
  EXPECT_EQ(streamed.best_sample, batch.best_sample);
}

TEST(RoundEngineTest, RunRetainsWideStatesAndStreamMatches) {
  const RoundSpec round = present_round(5, LogicStyle::kSablFullyConnected);
  TraceEngine engine(round, kTech);
  CampaignOptions options;
  options.num_traces = 300;
  options.key = round.pack_subkeys({1, 2, 3, 4, 5});
  options.noise_sigma = 1e-16;
  options.seed = 0xF00D;
  options.shard_size = 128;
  const TraceSet traces = engine.run(options);
  EXPECT_EQ(traces.pt_width, round.state_bytes());
  EXPECT_EQ(traces.plaintexts.size(),
            options.num_traces * round.state_bytes());
  ASSERT_EQ(traces.size(), options.num_traces);

  TraceEngine engine2(round, kTech);
  TraceSet collected;
  collected.pt_width = round.state_bytes();
  collected.reserve(options.num_traces);
  engine2.stream(options,
                 [&](const std::uint8_t* pts, const double* samples,
                     std::size_t n) { collected.add_batch(pts, samples, n); });
  ASSERT_EQ(collected.size(), traces.size());
  EXPECT_EQ(collected.plaintexts, traces.plaintexts);
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(collected.samples[i], traces.samples[i]) << i;
  }

  // The campaign key must match the round's packed width.
  CampaignOptions bad = options;
  bad.key = {0x1};
  EXPECT_THROW(engine.run(bad), InvalidArgument);
}

// Time-resolved campaigns cover the baseline style too: cycle_sampled on
// the CMOS batch sim feeds multi_cpa_campaign, which must agree with the
// batch multisample attack over the identically retained traces — and the
// HD leak is strong enough that the oscilloscope-style attack recovers
// the subkey.
TEST(RoundEngineTest, MultiCpaCampaignCoversStaticCmos) {
  const RoundSpec round = present_round(2, LogicStyle::kStaticCmos);
  const std::vector<std::size_t> subkeys = {0xB, 0x4};
  const AttackSelector selector{.sbox_index = 0,
                                .model = PowerModel::kHammingWeight};
  CampaignOptions options;
  options.num_traces = 3000;
  options.key = round.pack_subkeys(subkeys);
  options.noise_sigma = 1e-16;
  options.seed = 0xC405;
  options.shard_size = 448;

  TraceEngine engine(round, kTech);
  ASSERT_GT(engine.target().num_levels(), 0u);
  const MultiAttackResult streamed =
      engine.multi_cpa_campaign(options, selector);
  EXPECT_EQ(streamed.combined.best_guess, subkeys[0]);

  TraceEngine engine2(round, kTech);
  const std::size_t width = engine2.target().num_levels();
  MultiTraceSet retained;
  retained.reserve(options.num_traces, width);
  std::vector<std::uint8_t> sub_pts(campaign_shard_size(options));
  engine2.stream_sampled(
      options, [&](const std::uint8_t* pts, const double* rows,
                   std::size_t count) {
        round.sub_words(pts, count, selector.sbox_index, sub_pts.data());
        for (std::size_t t = 0; t < count; ++t) {
          retained.add(sub_pts[t], rows + t * width, width);
        }
      });
  ASSERT_EQ(retained.size(), options.num_traces);
  const MultiAttackResult batch = cpa_attack_multisample(
      retained, round.sboxes[selector.sbox_index], selector.model,
      selector.bit);
  ASSERT_EQ(streamed.combined.score.size(), batch.combined.score.size());
  for (std::size_t g = 0; g < batch.combined.score.size(); ++g) {
    EXPECT_NEAR(streamed.combined.score[g], batch.combined.score[g], 1e-12)
        << g;
  }
  EXPECT_EQ(streamed.best_sample, batch.best_sample);
}

}  // namespace
}  // namespace sable
