// Runtime CPU dispatch for the bit-parallel kernels.
//
// The default build (SABLE_SIMD=RUNTIME) compiles portable, AVX2 and
// AVX-512 kernel instantiations into one binary; this header is how the
// engine decides — once per campaign, never on the trace hot path — which
// of them this machine may run:
//
//   cpu_features()   cached CPUID probe (what the CPU has)
//   compiled_tier()  widest tier whose kernels are in this binary
//   active_tier()    min(compiled, detected, cap) — what dispatch uses
//
// The cap exists for pinning and testing: the SABLE_DISPATCH environment
// variable (`portable` | `avx2` | `avx512`, read once at first use) caps a
// whole process, and ScopedDispatchTierCap caps a scope so the test suite
// can prove bit-identity of the same campaign across tiers on one machine.
//
// runtime_lane_widths() intersects the compiled widths with the active
// tier; CampaignOptions::lane_width == 0 resolves to its maximum.
#pragma once

#include <cstddef>
#include <vector>

namespace sable {

/// SIMD capabilities of the executing CPU that the kernels care about.
/// avx2/avx512f pick the dispatch tier; the remaining flags gate optional
/// instruction paths inside a tier (the AVX-512 pack kernels use BW's
/// vpmovb2m when present and GFNI's vgf2p8affineqb + VBMI's vpermb when
/// both are — each falls back to plain AVX-512F/AVX2 code otherwise).
struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vbmi = false;
  bool gfni = false;
};

/// The executing CPU's features, probed once and cached (thread-safe).
const CpuFeatures& cpu_features();

/// Kernel ISA tiers, ordered: a tier can run everything below it.
enum class DispatchTier { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

/// Stable lowercase name ("portable", "avx2", "avx512") for logs/JSON.
const char* to_string(DispatchTier tier);

/// Widest tier whose kernel instantiations are compiled into this binary
/// (fixed at build time by SABLE_SIMD).
DispatchTier compiled_tier();

/// Widest tier the executing CPU supports, independent of what was built.
DispatchTier detected_tier();

/// The tier dispatch actually uses: min(compiled, detected, cap).
DispatchTier active_tier();

/// Caps active_tier() at `cap` for the whole process and returns the
/// previous cap; kAvx512 means "uncapped". The initial cap comes from the
/// SABLE_DISPATCH environment variable (unset → uncapped). Engines consult
/// the cap per campaign/shard, so changing it mid-campaign has no effect
/// on traces already streaming.
DispatchTier set_dispatch_tier_cap(DispatchTier cap);

/// Currently effective cap (kAvx512 when uncapped).
DispatchTier dispatch_tier_cap();

/// RAII tier cap for tests: forces campaigns in scope onto a lower tier,
/// restores the previous cap on destruction.
class ScopedDispatchTierCap {
 public:
  explicit ScopedDispatchTierCap(DispatchTier cap)
      : prev_(set_dispatch_tier_cap(cap)) {}
  ~ScopedDispatchTierCap() { set_dispatch_tier_cap(prev_); }
  ScopedDispatchTierCap(const ScopedDispatchTierCap&) = delete;
  ScopedDispatchTierCap& operator=(const ScopedDispatchTierCap&) = delete;

 private:
  DispatchTier prev_;
};

/// Lane widths runnable right now: the compiled-in widths (see
/// supported_lane_widths() in util/lane_word.hpp) intersected with the
/// active dispatch tier. Ascending; always contains 64 and 128.
std::vector<std::size_t> runtime_lane_widths();

/// Widest runnable lane width — what CampaignOptions::lane_width == 0
/// resolves to.
std::size_t max_runtime_lane_width();

}  // namespace sable
