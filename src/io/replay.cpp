#include "io/replay.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "crypto/round_target.hpp"
#include "engine/shard_reduce.hpp"
#include "engine/worker_pool.hpp"
#include "io/campaign_state.hpp"
#include "io/corpus_cache.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Sub-plaintext extraction slots, deduplicated per attacked instance —
// the live driver's exact scheme.
struct SubSlots {
  std::vector<std::size_t> sbox;
  std::vector<std::size_t> of;
};

// The per-evaluation validation replay performs ONCE up front (the
// corpus structure itself was already validated when the reader was
// constructed): spec hash when `check_spec` (SharedCorpus memoizes it
// across evaluations), stride, and every distinguisher's contract.
SubSlots validate_for_replay(const CorpusManifest& cm,
                             const std::string& path, const RoundSpec& round,
                             std::span<Distinguisher* const> distinguishers,
                             bool check_spec) {
  const CampaignManifest& manifest = cm.campaign;
  SABLE_REQUIRE(!distinguishers.empty(),
                "replay needs at least one distinguisher");
  SABLE_REQUIRE(manifest.num_traces >= 2,
                "attack campaigns require at least two traces");
  if (check_spec && round_spec_hash(round) != manifest.spec_hash) {
    throw ManifestMismatchError(
        path,
        "corpus was recorded for a different round spec than the one being "
        "attacked");
  }
  SABLE_REQUIRE(cm.pt_stride == round.state_bytes(),
                "corpus plaintext stride must equal the round's packed "
                "state width");
  const TraceDataKind kind = cm.kind == kCorpusKindScalar
                                 ? TraceDataKind::kScalar
                                 : TraceDataKind::kSampled;
  SubSlots slots;
  slots.of.resize(distinguishers.size());
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    Distinguisher* dist = distinguishers[d];
    SABLE_REQUIRE(dist != nullptr, "distinguisher must not be null");
    dist->validate(round);
    SABLE_REQUIRE(dist->data_kind() == kind,
                  "distinguisher's trace data kind does not match the "
                  "corpus (scalar vs cycle-sampled)");
    const std::size_t index = dist->sbox_index();
    const auto it = std::find(slots.sbox.begin(), slots.sbox.end(), index);
    slots.of[d] = static_cast<std::size_t>(it - slots.sbox.begin());
    if (it == slots.sbox.end()) slots.sbox.push_back(index);
  }
  return slots;
}

// One shard block into one attack set's accumulators — identical to the
// live engine's per-shard feed, whatever storage backs `view`.
void accumulate_shard(const RoundSpec& round,
                      std::span<Distinguisher* const> distinguishers,
                      const SubSlots& slots, const CorpusShardView& view,
                      std::size_t s, std::size_t shard_size, std::size_t width,
                      std::vector<std::uint8_t>& sub_pts, ShardStates& states) {
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    states[d][s] = distinguishers[d]->make_shard_accumulator();
  }
  for (std::size_t slot = 0; slot < slots.sbox.size(); ++slot) {
    round.sub_words(view.pts, view.count, slots.sbox[slot],
                    sub_pts.data() + slot * shard_size);
  }
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    ShardBlock block;
    block.start = s * shard_size;
    block.sub_pts = sub_pts.data() + slots.of[d] * shard_size;
    block.data = view.samples;
    block.width = width;
    block.count = view.count;
    states[d][s]->accumulate(block);
  }
}

// A fetched shard: the view plus whatever keeps it alive (a SharedCorpus
// lease, or nothing when the view aliases a scratch or the mapping).
struct FetchedShard {
  SharedCorpus::Lease lease;
  CorpusShardView view;
};

// The common replay driver. `fetch(s, scratch)` produces shard s's
// traces; everything else — wave scheduling, checkpointing, threading,
// reduction — is storage-agnostic.
template <typename Fetch>
bool replay_impl(const CorpusManifest& cm, const RoundSpec& round,
                 std::span<Distinguisher* const> distinguishers,
                 const SubSlots& slots, const CampaignPersistence& persist,
                 std::size_t num_threads, WorkerPool* pool, Fetch&& fetch) {
  const CampaignManifest& manifest = cm.campaign;
  ShardStates states(distinguishers.size());
  for (auto& row : states) {
    row.resize(static_cast<std::size_t>(manifest.num_shards));
  }
  const std::size_t shard_size =
      static_cast<std::size_t>(manifest.shard_size);
  const std::size_t width = static_cast<std::size_t>(cm.sample_width);

  WorkerPool local_pool;
  WorkerPool& workers = pool ? *pool : local_pool;
  const std::size_t max_threads =
      num_threads != 0 ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency());

  const auto accumulate = [&](const std::vector<std::size_t>& work) {
    const std::size_t threads =
        std::max<std::size_t>(1, std::min(max_threads, work.size()));
    std::atomic<std::size_t> next{0};
    const auto run_one = [&](std::vector<std::uint8_t>& sub_pts,
                             CorpusDecodeScratch& scratch, std::size_t s) {
      const FetchedShard fetched = fetch(s, scratch);
      accumulate_shard(round, distinguishers, slots, fetched.view, s,
                       shard_size, width, sub_pts, states);
    };
    if (threads <= 1) {
      std::vector<std::uint8_t> sub_pts(shard_size * slots.sbox.size());
      CorpusDecodeScratch scratch;
      for (std::size_t s : work) run_one(sub_pts, scratch, s);
      return;
    }
    workers.run(threads, [&](std::size_t) {
      std::vector<std::uint8_t> sub_pts(shard_size * slots.sbox.size());
      CorpusDecodeScratch scratch;
      for (std::size_t k = next.fetch_add(1); k < work.size();
           k = next.fetch_add(1)) {
        run_one(sub_pts, scratch, work[k]);
      }
    });
  };

  if (!run_persisted_waves(manifest, distinguishers, states, persist,
                           accumulate)) {
    return false;
  }
  reduce_and_finalize_distinguishers(
      distinguishers, states, workers,
      std::max<std::size_t>(
          1, std::min(max_threads,
                      static_cast<std::size_t>(manifest.num_shards))));
  return true;
}

}  // namespace

bool replay_distinguishers(const CorpusReader& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist,
                           std::size_t num_threads, WorkerPool* pool) {
  const SubSlots slots = validate_for_replay(
      corpus.manifest(), corpus.path(), round, distinguishers,
      /*check_spec=*/true);
  return replay_impl(corpus.manifest(), round, distinguishers, slots, persist,
                     num_threads, pool,
                     [&](std::size_t s, CorpusDecodeScratch& scratch) {
                       return FetchedShard{{}, corpus.read_shard(s, scratch)};
                     });
}

bool replay_distinguishers(SharedCorpus& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist,
                           std::size_t num_threads, WorkerPool* pool) {
  const std::uint64_t hash = round_spec_hash(round);
  const bool check_spec = !corpus.spec_validated(hash);
  const SubSlots slots =
      validate_for_replay(corpus.manifest(), corpus.reader().path(), round,
                          distinguishers, check_spec);
  if (check_spec) corpus.note_spec_validated(hash);
  return replay_impl(corpus.manifest(), round, distinguishers, slots, persist,
                     num_threads, pool,
                     [&](std::size_t s, CorpusDecodeScratch&) {
                       SharedCorpus::Lease lease = corpus.acquire(s);
                       const CorpusShardView view = lease.view();
                       return FetchedShard{std::move(lease), view};
                     });
}

void replay_shared(SharedCorpus& corpus, const RoundSpec& round,
                   std::span<const std::span<Distinguisher* const>> sets,
                   std::size_t num_threads, WorkerPool* pool) {
  SABLE_REQUIRE(!sets.empty(), "replay_shared needs at least one attack set");
  const CorpusManifest& cm = corpus.manifest();
  const std::uint64_t hash = round_spec_hash(round);
  const bool check_spec = !corpus.spec_validated(hash);
  std::vector<SubSlots> slots;
  slots.reserve(sets.size());
  for (std::size_t k = 0; k < sets.size(); ++k) {
    slots.push_back(validate_for_replay(cm, corpus.reader().path(), round,
                                        sets[k], check_spec && k == 0));
  }
  if (check_spec) corpus.note_spec_validated(hash);

  const std::size_t num_shards =
      static_cast<std::size_t>(cm.campaign.num_shards);
  const std::size_t shard_size =
      static_cast<std::size_t>(cm.campaign.shard_size);
  const std::size_t width = static_cast<std::size_t>(cm.sample_width);
  std::vector<ShardStates> states(sets.size());
  for (std::size_t k = 0; k < sets.size(); ++k) {
    states[k].resize(sets[k].size());
    for (auto& row : states[k]) row.resize(num_shards);
  }

  WorkerPool local_pool;
  WorkerPool& workers = pool ? *pool : local_pool;
  const std::size_t max_threads =
      num_threads != 0 ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency());

  // Workers claim whole sets; the shard loop inside streams every chunk
  // through the shared cache, so concurrent sets decode each chunk once
  // between them instead of once each.
  const std::size_t threads =
      std::max<std::size_t>(1, std::min(max_threads, sets.size()));
  std::atomic<std::size_t> next{0};
  const auto run_set = [&](std::size_t k) {
    std::vector<std::uint8_t> sub_pts(shard_size * slots[k].sbox.size());
    for (std::size_t s = 0; s < num_shards; ++s) {
      const SharedCorpus::Lease lease = corpus.acquire(s);
      accumulate_shard(round, sets[k], slots[k], lease.view(), s, shard_size,
                       width, sub_pts, states[k]);
    }
  };
  if (threads <= 1) {
    for (std::size_t k = 0; k < sets.size(); ++k) run_set(k);
  } else {
    workers.run(threads, [&](std::size_t) {
      for (std::size_t k = next.fetch_add(1); k < sets.size();
           k = next.fetch_add(1)) {
        run_set(k);
      }
    });
  }
  const std::size_t reduce_threads =
      std::max<std::size_t>(1, std::min(max_threads, num_shards));
  for (std::size_t k = 0; k < sets.size(); ++k) {
    reduce_and_finalize_distinguishers(sets[k], states[k], workers,
                                       reduce_threads);
  }
}

}  // namespace sable
