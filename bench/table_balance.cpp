// Experiment E12 (extension): the §2 matched-load requirement, end to end.
//
// The paper: "the total load at the true output should match the total load
// at the false output". This bench quantifies what happens when the
// back-end violates that: the PRESENT S-box in fully connected SABL with
// increasing routing imbalance, attacked with CPA. Balanced routing (or the
// balancing pass) keeps the correlation at noise level; imbalance re-opens
// the channel roughly in proportion to the mismatched capacitance.
#include <algorithm>
#include <cstdio>

#include "balance/load_balance.hpp"
#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "expr/factoring.hpp"
#include "power/trace.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace sable;

namespace {

double best_key_rho(const GateCircuit& circuit,
                    const std::vector<GateEnergyModel>& models,
                    const SboxSpec& spec, std::uint8_t key,
                    std::size_t num_traces) {
  DifferentialCircuitSim sim(circuit, models);
  Rng rng(0xBA1A);
  TraceSet traces;
  // 2 fJ RMS measurement noise: a realistic bench floor against which the
  // sub-fF imbalance signals have to compete.
  const double noise = 2e-15;
  for (std::size_t i = 0; i < num_traces; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    const auto x = static_cast<std::uint8_t>(pt ^ key);
    traces.add(pt, sim.cycle(x).energy + noise * rng.gaussian());
  }
  double best =
      cpa_attack(traces, spec, PowerModel::kHammingWeight).score[key];
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    best = std::max(
        best,
        cpa_attack(traces, spec, PowerModel::kSboxOutputBit, bit).score[key]);
  }
  return best;
}

}  // namespace

int main() {
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  const SboxSpec spec = present_spec();
  const std::uint8_t key = 0x5;

  std::vector<ExprPtr> bits;
  for (std::size_t b = 0; b < spec.out_bits; ++b) {
    bits.push_back(factored_form(sbox_output_bit(spec, b)));
  }
  const GateCircuit circuit = build_from_expressions(
      bits, spec.in_bits, NetworkVariant::kFullyConnected, tech);

  std::printf("== E12: differential routing balance (the §2 requirement) ===\n");
  std::printf("PRESENT S-box, FC SABL gates, CPA best |rho(key)|, 3000 traces\n\n");
  std::printf("%-26s %12s %14s %12s\n", "back-end scenario",
              "max rail dC", "|rho(key)|", "verdict");

  // Sweep the routing spread; wire mean stays at 3 fF.
  for (const double spread : {0.0, 0.1e-15, 0.25e-15, 1e-15, 4e-15}) {
    auto loads = extract_rail_loads(circuit, tech, sizing);
    Rng rng(31337);
    add_routing_capacitance(loads, 3e-15, spread, rng);
    double worst = 0.0;
    for (const auto& l : loads) {
      worst = std::max(worst, std::abs(l.imbalance()));
    }
    const double rho = best_key_rho(
        circuit, instance_models_with_loads(circuit, loads), spec, key, 3000);
    std::printf("%-26s %12s %14.3f %12s\n",
                spread == 0.0 ? "balanced router"
                              : ("spread +-" + format_eng(spread, "F")).c_str(),
                format_eng(worst, "F").c_str(), rho,
                rho > 0.1 ? "LEAKS" : "holds");
  }

  // The fix: balancing pass on the worst case.
  auto loads = extract_rail_loads(circuit, tech, sizing);
  Rng rng(31337);
  add_routing_capacitance(loads, 3e-15, 4e-15, rng);
  const BalanceReport fix = balance_rail_loads(loads);
  const double rho_fixed = best_key_rho(
      circuit, instance_models_with_loads(circuit, loads), spec, key, 3000);
  std::printf("%-26s %12s %14.3f %12s\n", "worst case + balancing",
              format_eng(0.0, "F").c_str(), rho_fixed,
              rho_fixed > 0.1 ? "LEAKS" : "holds");
  std::printf("\nbalancing inserted %s of trim capacitance (max imbalance was %s)\n",
              format_eng(fix.compensation_added, "F").c_str(),
              format_eng(fix.max_abs_imbalance, "F").c_str());
  return 0;
}
