// Decomposition-order exploration for the §4.1 design method.
//
// Step 1 of the method — "identify 2 expressions x and y that combine to
// f" — leaves a degree of freedom: which operand becomes the top of the
// series chain (x) and which network is shared at the bottom (y). The
// functional result is always correct and fully connected, but the
// worst-case discharge depth of the false branch depends on the order
// (x's false network is crossed in series with y's true network).
//
// This module searches operand orders bottom-up: children are optimized
// first, then each node tries the permutations of its (flattened) operand
// list under a candidate budget, scoring candidates by the synthesized
// network's worst satisfiable path length, with device count as the tie
// breaker. Note the search space is operand *orders*: the expression
// factories canonicalize associativity (nested ANDs flatten), so
// re-bracketing is equivalent to reordering here.
#pragma once

#include <cstddef>

#include "expr/expression.hpp"

namespace sable {

struct DecompositionResult {
  ExprPtr expr;                 ///< reordered expression (same function)
  std::size_t max_depth = 0;    ///< worst satisfiable discharge path
  std::size_t devices = 0;      ///< FC network device count (order-invariant)
  std::size_t candidates = 0;   ///< networks evaluated during the search
};

/// Optimizes operand orders of `f` for minimal worst-case depth of the
/// fully connected network. `max_candidates` caps the number of synthesized
/// candidate networks (search degrades gracefully to first-found orders).
DecompositionResult optimize_decomposition(const ExprPtr& f,
                                           std::size_t num_vars,
                                           std::size_t max_candidates = 2000);

}  // namespace sable
