// Switch-level energy model of one dynamic differential (SABL-style) gate.
//
// Abstraction (§2 of the paper): per clock cycle the gate performs exactly
// one discharge/charge event. The supply energy of the cycle is
//
//   E(cycle) = E_const + VDD^2 * sum of C(n) over every DPDN node n that is
//              connected to {X, Y, Z} under the applied input,
//
// where E_const covers the balanced output capacitances and the sense
// amplifier internals (input-independent by construction of SABL), and the
// sum is input-dependent exactly when the network is not fully connected.
// Floating nodes keep their charge (the §2 memory effect) and contribute
// nothing to the cycle's energy.
#pragma once

#include <vector>

#include "netlist/network.hpp"
#include "tech/technology.hpp"

namespace sable {

struct GateEnergyModel {
  double vdd = 0.0;
  /// Per-DPDN-node capacitance [F], indexed by NodeId.
  std::vector<double> node_cap;
  /// Constant per-cycle energy: output swing + sense amplifier [J].
  double constant_energy = 0.0;
  /// Extra load on the true/false output rails beyond the balanced part
  /// folded into constant_energy. §2 requires these to match; a mismatch
  /// (unbalanced routing) makes the cycle energy depend on which rail
  /// fires — the leak the balancing pass in src/balance removes.
  double out_true_extra = 0.0;
  double out_false_extra = 0.0;
};

/// Builds the model from extracted capacitances. The constant term charges
/// one output load plus the sense internal capacitance each cycle.
GateEnergyModel build_gate_model(const DpdnNetwork& net,
                                 const Technology& tech,
                                 const SizingPlan& sizing);

}  // namespace sable
