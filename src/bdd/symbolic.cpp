#include "bdd/symbolic.hpp"

#include "expr/transforms.hpp"
#include "util/error.hpp"

namespace sable {

SymbolicConduction::SymbolicConduction(BddManager& manager,
                                       const DpdnNetwork& net)
    : manager_(&manager) {
  const std::size_t n = net.node_count();
  reach_.assign(n, std::vector<BddRef>(n, BddManager::kFalse));
  for (std::size_t u = 0; u < n; ++u) reach_[u][u] = BddManager::kTrue;

  // Direct edges: OR of the gate literals of all parallel switches.
  for (const auto& d : net.devices()) {
    const BddRef lit = d.gate.positive ? manager.var(d.gate.var)
                                       : manager.nvar(d.gate.var);
    reach_[d.a][d.b] = manager.apply_or(reach_[d.a][d.b], lit);
    reach_[d.b][d.a] = reach_[d.a][d.b];
  }

  // Floyd-Warshall over the Boolean path semiring.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t u = 0; u < n; ++u) {
      if (reach_[u][k] == BddManager::kFalse) continue;
      for (std::size_t v = u + 1; v < n; ++v) {
        const BddRef via =
            manager.apply_and(reach_[u][k], reach_[k][v]);
        reach_[u][v] = manager.apply_or(reach_[u][v], via);
        reach_[v][u] = reach_[u][v];
      }
    }
  }
}

SymbolicFunctionalityReport check_functionality_symbolic(
    BddManager& manager, const DpdnNetwork& net, const ExprPtr& f) {
  const SymbolicConduction cond(manager, net);
  const BddRef f_bdd = manager.from_expr(f);
  const BddRef fx = cond.reach(DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  const BddRef fy = cond.reach(DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
  const BddRef fxy = cond.reach(DpdnNetwork::kNodeX, DpdnNetwork::kNodeY);

  SymbolicFunctionalityReport report;
  report.x_branch_matches = fx == f_bdd;
  report.y_branch_matches = fy == manager.negate(f_bdd);
  report.no_xy_short = fxy == BddManager::kFalse;
  report.ok = report.x_branch_matches && report.y_branch_matches &&
              report.no_xy_short;
  if (!report.ok) {
    // Produce one witness assignment from whichever check failed first.
    BddRef diff = BddManager::kFalse;
    if (!report.x_branch_matches) {
      diff = manager.apply_xor(fx, f_bdd);
    } else if (!report.y_branch_matches) {
      diff = manager.apply_xor(fy, manager.negate(f_bdd));
    } else {
      diff = fxy;
    }
    report.counterexample = manager.any_sat(diff);
  }
  return report;
}

SymbolicConnectivityReport check_full_connectivity_symbolic(
    BddManager& manager, const DpdnNetwork& net) {
  const SymbolicConduction cond(manager, net);
  SymbolicConnectivityReport report;
  report.fully_connected = true;
  for (NodeId n : net.internal_nodes()) {
    BddRef connected = cond.reach(n, DpdnNetwork::kNodeX);
    connected =
        manager.apply_or(connected, cond.reach(n, DpdnNetwork::kNodeY));
    connected =
        manager.apply_or(connected, cond.reach(n, DpdnNetwork::kNodeZ));
    if (connected != BddManager::kTrue) {
      report.fully_connected = false;
      report.floating_node = n;
      report.counterexample = manager.any_sat(manager.negate(connected));
      return report;
    }
  }
  return report;
}

}  // namespace sable
