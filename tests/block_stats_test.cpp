// Block-factored accumulation (dpa/block_stats.hpp + the add_block
// paths in dpa/streaming.hpp): the three contracts the pipeline leans
// on.
//
//  1. Equivalence — the block-factored path scores within 1e-12 of the
//     historic per-trace Welford formulation, for CPA (4- and 8-bit
//     sboxes), DoM (whose partition COUNTS must match exactly) and
//     MultiCpa.
//  2. Cross-tier bit-identity — the same blocks produce byte-identical
//     serialized state under every dispatch tier the build and the
//     machine support, and the raw kernels agree bitwise output-for-
//     output. This is what lets a corpus recorded on an AVX-512 box
//     resume on a portable one.
//  3. Persistence shape — save after K blocks, load, feed the
//     remaining block (or merge a partial holding it): the re-saved
//     state is byte-identical to straight-through accumulation. This
//     is exactly the checkpoint/resume and merge_partials shape.
//
// Plus the hoisted validation contract: an out-of-range plaintext
// anywhere in a block throws InvalidArgument before any state mutates.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "crypto/sboxes.hpp"
#include "dpa/block_stats.hpp"
#include "dpa/streaming.hpp"
#include "io/serial.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

// Deterministic trace material: plaintexts below `num_pts`, rows of
// `width` samples at campaign-realistic magnitude (~1e-13 J) so the
// test exercises the same cancellation regime the shift-by-first-sample
// trick exists for.
struct TraceSet {
  std::vector<std::uint8_t> pts;
  std::vector<double> rows;  // [trace * width + column]
  std::size_t width;
};

TraceSet make_traces(std::size_t count, std::size_t num_pts,
                     std::size_t width, std::uint64_t seed) {
  TraceSet t;
  t.width = width;
  t.pts.resize(count);
  t.rows.resize(count * width);
  Rng rng(seed);
  for (std::size_t i = 0; i < count; ++i) {
    t.pts[i] = static_cast<std::uint8_t>(rng.below(num_pts));
    for (std::size_t l = 0; l < width; ++l) {
      // A large common-mode offset plus a tiny per-trace wiggle: the
      // worst case for raw-moment cancellation.
      t.rows[i * width + l] = 1e-13 + 1e-15 * rng.uniform();
    }
  }
  return t;
}

// Ragged block split (non-power-of-2, uneven) — the engine's shard
// layout is the block layout, and tails are the norm.
constexpr std::size_t kBlockSizes[] = {448, 448, 131};
constexpr std::size_t kTotal = 448 + 448 + 131;

template <typename Feed>
void for_each_block(const TraceSet& t, const Feed& feed) {
  std::size_t off = 0;
  for (const std::size_t n : kBlockSizes) {
    feed(t.pts.data() + off, t.rows.data() + off * t.width, n);
    off += n;
  }
  ASSERT_EQ(off, t.pts.size());
}

void expect_near_scores(const std::vector<double>& block,
                        const std::vector<double>& per_trace) {
  ASSERT_EQ(block.size(), per_trace.size());
  for (std::size_t g = 0; g < block.size(); ++g) {
    EXPECT_NEAR(block[g], per_trace[g], 1e-12) << "guess " << g;
  }
}

void expect_same_bits(const std::vector<double>& a,
                      const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[g]),
              std::bit_cast<std::uint64_t>(b[g]))
        << "guess " << g;
  }
}

std::vector<std::uint8_t> saved_bytes(const auto& acc) {
  ByteWriter writer;
  acc.save(writer);
  return writer.buffer();
}

// ---- equivalence: block path vs per-trace Welford -------------------------

TEST(BlockStatsTest, CpaBlockPathMatchesPerTrace4Bit) {
  const TraceSet t = make_traces(kTotal, 16, 1, 0xB10C);
  StreamingCpa per_trace(present_spec(), PowerModel::kHammingWeight);
  per_trace.add_batch(t.pts.data(), t.rows.data(), t.pts.size());
  StreamingCpa block(present_spec(), PowerModel::kHammingWeight);
  for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                        std::size_t n) { block.add_block(pts, rows, n); });
  EXPECT_EQ(block.count(), per_trace.count());
  expect_near_scores(block.result().score, per_trace.result().score);
}

TEST(BlockStatsTest, CpaBlockPathMatchesPerTrace8Bit) {
  // 8-bit sbox: 256 plaintext classes over ~1000 traces — sparse
  // histogram rows, many zero-count classes, the skip branch exercised.
  const TraceSet t = make_traces(kTotal, 256, 1, 0xAE5);
  StreamingCpa per_trace(aes_spec(), PowerModel::kHammingWeight);
  per_trace.add_batch(t.pts.data(), t.rows.data(), t.pts.size());
  StreamingCpa block(aes_spec(), PowerModel::kHammingWeight);
  for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                        std::size_t n) { block.add_block(pts, rows, n); });
  expect_near_scores(block.result().score, per_trace.result().score);
}

TEST(BlockStatsTest, DomBlockPathMatchesPerTrace) {
  const TraceSet t = make_traces(kTotal, 16, 1, 0xD0A1);
  StreamingDom per_trace(present_spec(), 2);
  per_trace.add_batch(t.pts.data(), t.rows.data(), t.pts.size());
  StreamingDom block(present_spec(), 2);
  for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                        std::size_t n) { block.add_block(pts, rows, n); });
  // Partition counts are integers: EXACTLY equal, not approximately.
  EXPECT_EQ(block.count(), per_trace.count());
  expect_near_scores(block.result().score, per_trace.result().score);
}

TEST(BlockStatsTest, MultiCpaBlockPathMatchesPerTrace) {
  constexpr std::size_t kWidth = 5;
  const TraceSet t = make_traces(kTotal, 16, kWidth, 0x3C0A);
  StreamingMultiCpa per_trace(present_spec(), PowerModel::kHammingWeight,
                              kWidth);
  for (std::size_t i = 0; i < t.pts.size(); ++i) {
    per_trace.add(t.pts[i], t.rows.data() + i * kWidth);
  }
  StreamingMultiCpa block(present_spec(), PowerModel::kHammingWeight,
                          kWidth);
  for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                        std::size_t n) { block.add_block(pts, rows, n); });
  EXPECT_EQ(block.count(), per_trace.count());
  const MultiAttackResult a = block.result();
  const MultiAttackResult b = per_trace.result();
  expect_near_scores(a.combined.score, b.combined.score);
}

// ---- cross-tier bit-identity ----------------------------------------------

std::vector<DispatchTier> testable_tiers() {
  std::vector<DispatchTier> tiers = {DispatchTier::kPortable};
  if (active_tier() >= DispatchTier::kAvx2) tiers.push_back(DispatchTier::kAvx2);
  if (active_tier() >= DispatchTier::kAvx512) {
    tiers.push_back(DispatchTier::kAvx512);
  }
  return tiers;
}

TEST(BlockStatsTest, CpaBitIdenticalAcrossDispatchTiers) {
  const TraceSet t = make_traces(kTotal, 16, 1, 0x71E5);
  std::vector<std::uint8_t> reference;
  for (const DispatchTier tier : testable_tiers()) {
    ScopedDispatchTierCap cap(tier);
    StreamingCpa acc(present_spec(), PowerModel::kHammingWeight);
    for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                          std::size_t n) { acc.add_block(pts, rows, n); });
    const std::vector<std::uint8_t> bytes = saved_bytes(acc);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "tier " << static_cast<int>(tier);
    }
  }
}

TEST(BlockStatsTest, MultiCpaBitIdenticalAcrossDispatchTiers) {
  constexpr std::size_t kWidth = 7;
  const TraceSet t = make_traces(kTotal, 16, kWidth, 0x71E6);
  std::vector<std::uint8_t> reference;
  for (const DispatchTier tier : testable_tiers()) {
    ScopedDispatchTierCap cap(tier);
    StreamingMultiCpa acc(present_spec(), PowerModel::kHammingWeight, kWidth);
    for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                          std::size_t n) { acc.add_block(pts, rows, n); });
    const std::vector<std::uint8_t> bytes = saved_bytes(acc);
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "tier " << static_cast<int>(tier);
    }
  }
}

TEST(BlockStatsTest, RawKernelsBitIdenticalAcrossDispatchTiers) {
  // Below the accumulators: the dispatched kernel table itself. Every
  // tier's histogram and contraction outputs must agree bitwise — the
  // instantiations differ only in codegen, never in arithmetic shape.
  constexpr std::size_t kCount = 700;
  constexpr std::size_t kPts = 16;
  constexpr std::size_t kGuesses = 16;
  constexpr std::size_t kWidth = 3;
  const TraceSet t = make_traces(kCount, kPts, kWidth, 0xFACE);
  std::vector<double> pred(kPts * kGuesses);
  std::vector<std::uint8_t> pred_bit(kPts * kGuesses);
  Rng rng(0xBEEF);
  for (std::size_t i = 0; i < pred.size(); ++i) {
    pred[i] = static_cast<double>(rng.below(9));
    pred_bit[i] = static_cast<std::uint8_t>(rng.below(2));
  }
  std::vector<double> shifts(kWidth, 1e-13);

  struct Outputs {
    std::vector<std::uint64_t> counts;
    std::vector<double> sums, sum_sq, sum_h, sum_h2, r, sum0, sum1;
    std::vector<std::uint64_t> cnt0, cnt1;
  };
  auto run = [&](DispatchTier tier) {
    const BlockStatKernels& k = block_stat_kernels(tier);
    Outputs o;
    o.counts.resize(detail::kBlockPts);
    o.sums.resize(detail::kBlockPts * kWidth);
    o.sum_sq.resize(kWidth);
    o.sum_h.resize(kGuesses);
    o.sum_h2.resize(kGuesses);
    o.r.resize(kWidth * kGuesses);
    o.sum0.resize(kGuesses);
    o.sum1.resize(kGuesses);
    o.cnt0.resize(kGuesses);
    o.cnt1.resize(kGuesses);
    k.histogram_sampled(t.pts.data(), t.rows.data(), kCount, kWidth,
                        shifts.data(), o.counts.data(), o.sums.data(),
                        o.sum_sq.data());
    k.contract_counts(pred.data(), o.counts.data(), kPts, kGuesses,
                      o.sum_h.data(), o.sum_h2.data());
    k.contract_sums(pred.data(), o.sums.data(), o.counts.data(), kPts,
                    kWidth, kGuesses, o.r.data());
    k.contract_dom(pred_bit.data(), o.counts.data(), o.sums.data(), kPts,
                   kGuesses, o.sum0.data(), o.sum1.data(), o.cnt0.data(),
                   o.cnt1.data());
    return o;
  };

  const Outputs ref = run(DispatchTier::kPortable);
  for (const DispatchTier tier : testable_tiers()) {
    const Outputs got = run(tier);
    EXPECT_EQ(got.counts, ref.counts) << "tier " << static_cast<int>(tier);
    EXPECT_EQ(got.cnt0, ref.cnt0);
    EXPECT_EQ(got.cnt1, ref.cnt1);
    expect_same_bits(got.sums, ref.sums);
    expect_same_bits(got.sum_sq, ref.sum_sq);
    expect_same_bits(got.sum_h, ref.sum_h);
    expect_same_bits(got.sum_h2, ref.sum_h2);
    expect_same_bits(got.r, ref.r);
    expect_same_bits(got.sum0, ref.sum0);
    expect_same_bits(got.sum1, ref.sum1);
  }
}

// ---- persistence: save -> load -> accumulate-more / merge -----------------
//
// The checkpoint/resume shape: an accumulator saved after blocks 0..1,
// loaded into a fresh process, fed block 2 (resume) OR merged with a
// partial that only ever saw block 2 (merge_partials), must re-save
// byte-identically to one that consumed all three blocks in sequence.
// That works because a single-block accumulator's state IS the block's
// converted Welford statistics, and merge() routes through the same
// fold as add_block.

template <typename Acc, typename Make>
void check_persistence_shape(const TraceSet& t, const Make& make) {
  // Straight-through: all blocks, one accumulator.
  Acc straight = make();
  for_each_block(t, [&](const std::uint8_t* pts, const double* rows,
                        std::size_t n) { straight.add_block(pts, rows, n); });
  const std::vector<std::uint8_t> want = saved_bytes(straight);

  // Checkpoint after the first two blocks.
  Acc partial = make();
  std::size_t off = 0;
  for (std::size_t b = 0; b < 2; ++b) {
    partial.add_block(t.pts.data() + off, t.rows.data() + off * t.width,
                      kBlockSizes[b]);
    off += kBlockSizes[b];
  }
  const std::vector<std::uint8_t> checkpoint = saved_bytes(partial);

  // Resume path: load the checkpoint, feed the remaining block.
  Acc resumed = make();
  {
    ByteReader reader(checkpoint.data(), checkpoint.size(), "mem");
    resumed.load(reader);
    EXPECT_EQ(reader.remaining(), 0u);
  }
  resumed.add_block(t.pts.data() + off, t.rows.data() + off * t.width,
                    kBlockSizes[2]);
  EXPECT_EQ(saved_bytes(resumed), want) << "resume path diverged";

  // Merge path: a second worker only ever saw block 2; fold its state
  // into the loaded checkpoint (merge_partials in miniature).
  Acc tail = make();
  tail.add_block(t.pts.data() + off, t.rows.data() + off * t.width,
                 kBlockSizes[2]);
  Acc merged = make();
  {
    ByteReader reader(checkpoint.data(), checkpoint.size(), "mem");
    merged.load(reader);
  }
  merged.merge(tail);
  EXPECT_EQ(saved_bytes(merged), want) << "merge path diverged";
}

TEST(BlockStatsTest, CpaSaveLoadAccumulateMergeMatchesStraightThrough) {
  const TraceSet t = make_traces(kTotal, 16, 1, 0x5A7E);
  check_persistence_shape<StreamingCpa>(t, [] {
    return StreamingCpa(present_spec(), PowerModel::kHammingWeight);
  });
}

TEST(BlockStatsTest, DomSaveLoadAccumulateMergeMatchesStraightThrough) {
  const TraceSet t = make_traces(kTotal, 16, 1, 0x5A7F);
  check_persistence_shape<StreamingDom>(
      t, [] { return StreamingDom(present_spec(), 1); });
}

TEST(BlockStatsTest, MultiCpaSaveLoadAccumulateMergeMatchesStraightThrough) {
  constexpr std::size_t kWidth = 4;
  const TraceSet t = make_traces(kTotal, 16, kWidth, 0x5A80);
  check_persistence_shape<StreamingMultiCpa>(t, [] {
    return StreamingMultiCpa(present_spec(), PowerModel::kHammingWeight,
                             kWidth);
  });
}

// ---- hoisted validation ---------------------------------------------------

TEST(BlockStatsTest, OutOfRangePlaintextThrowsBeforeMutating) {
  // Validation happens once per block, after the histogram pass but
  // before any statistic folds in: a bad plaintext anywhere in the
  // block throws and leaves the accumulator untouched.
  TraceSet t = make_traces(64, 16, 1, 0xBAD);
  t.pts[37] = 200;  // >= present's 16 plaintext classes

  StreamingCpa cpa(present_spec(), PowerModel::kHammingWeight);
  EXPECT_THROW(cpa.add_block(t.pts.data(), t.rows.data(), t.pts.size()),
               InvalidArgument);
  EXPECT_EQ(cpa.count(), 0u);

  StreamingDom dom(present_spec(), 0);
  EXPECT_THROW(dom.add_block(t.pts.data(), t.rows.data(), t.pts.size()),
               InvalidArgument);
  EXPECT_EQ(dom.count(), 0u);

  StreamingMultiCpa multi(present_spec(), PowerModel::kHammingWeight, 1);
  EXPECT_THROW(multi.add_block(t.pts.data(), t.rows.data(), t.pts.size()),
               InvalidArgument);
  EXPECT_EQ(multi.count(), 0u);

  // The per-trace shim still validates too — the contract moved, it
  // did not weaken.
  EXPECT_THROW(cpa.add(200, 1e-13), InvalidArgument);
}

}  // namespace
}  // namespace sable
