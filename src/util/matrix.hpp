// Small dense linear algebra: row-major matrix and LU solve with partial
// pivoting. The circuits this library analyzes have tens of nodes, so dense
// factorization is the right tool (no sparse machinery needed).
#pragma once

#include <cstddef>
#include <vector>

namespace sable {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  void fill(double value);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b in place (A and b are overwritten); returns false if the
/// matrix is numerically singular. A must be square, b.size() == A.rows().
bool lu_solve(DenseMatrix& a, std::vector<double>& b);

}  // namespace sable
