// DPA attack targets: an S-box evaluated as y = S(x XOR key) in a chosen
// logic style, producing one power sample per encryption.
//
// The circuit computes the S-box only; the key addition happens at the
// stimulus (x = pt XOR key), which models the standard first-order DPA
// setting where the attacker predicts S-box output bits from plaintext and
// key guess.
//
// Encryptions run through the 64-wide bit-parallel circuit simulators:
// trace_batch() simulates 64 plaintexts per clock cycle (lane L of step k
// is trace k*64 + L, so a history-bearing style like static CMOS carries
// per-lane history), and the scalar trace() is the width-1 case.
#pragma once

#include <cstdint>
#include <memory>

#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "crypto/sboxes.hpp"
#include "util/rng.hpp"

namespace sable {

enum class LogicStyle {
  kStaticCmos,        // HD-leaking baseline
  kSablGenuine,       // dynamic differential with genuine DPDNs (§2 leak)
  kSablFullyConnected,  // §4 networks
  kSablEnhanced,      // §5 networks
  kWddlBalanced,      // standard-cell pair logic, ideal back-end (ref [8])
  kWddlMismatched,    // WDDL with 5% rail-capacitance imbalance
};

const char* to_string(LogicStyle style);

class SboxTarget {
 public:
  SboxTarget(const SboxSpec& spec, LogicStyle style, const Technology& tech);

  /// Independent target over the same synthesized circuit: the (immutable)
  /// GateCircuit is shared, every piece of mutable simulator state — CMOS
  /// transition history, SABL node charge, evaluator scratch — is fresh and
  /// private to the clone. This is the per-worker instance the
  /// thread-sharded TraceEngine hands each thread, and it skips the
  /// expression-factoring/synthesis cost of a from-scratch construction.
  SboxTarget clone() const;

  /// One encryption: applies pt XOR key, returns the power sample
  /// (circuit energy plus Gaussian noise of `noise_sigma` joules).
  double trace(std::uint8_t pt, std::uint8_t key, double noise_sigma,
               Rng& rng);

  /// Batched encryptions, 64 per simulated cycle: writes one power sample
  /// per plaintext into `out[0..count)`. Noise is drawn from `rng` in
  /// ascending trace order, so a campaign is reproducible regardless of
  /// the internal batch width.
  void trace_batch(const std::uint8_t* pts, std::size_t count,
                   std::uint8_t key, double noise_sigma, Rng& rng,
                   double* out);

  /// Restores the fresh-construction simulator state in every lane (CMOS
  /// transition history, SABL node charge), so campaigns with the same
  /// seed reproduce the same traces no matter what ran before.
  void reset_state();

  /// Reference S-box output for functional checks.
  std::uint8_t reference(std::uint8_t pt, std::uint8_t key) const;

  const GateCircuit& circuit() const { return *circuit_; }
  const SboxSpec& spec() const { return spec_; }
  LogicStyle style() const { return style_; }

 private:
  SboxTarget(const SboxSpec& spec, LogicStyle style,
             std::shared_ptr<const GateCircuit> circuit);

  void cycle_batch(const std::vector<std::uint64_t>& input_words,
                   std::uint64_t lane_mask, BatchCycleResult& out);

  SboxSpec spec_;
  LogicStyle style_;
  // Shared and immutable after construction: clones alias it, and the
  // simulators hold references into it, so it is heap-owned (stable
  // address under moves) and kept alive by every aliasing target.
  std::shared_ptr<const GateCircuit> circuit_;
  std::unique_ptr<DifferentialCircuitSimBatch> diff_sim_;
  std::unique_ptr<CmosCircuitSimBatch> cmos_sim_;
  std::unique_ptr<WddlCircuitSimBatch> wddl_sim_;
  std::vector<std::uint64_t> words_;
  BatchCycleResult scratch_;
};

}  // namespace sable
