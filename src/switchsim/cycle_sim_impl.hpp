// Definitions of the switch-level batch kernel templates declared in
// switchsim/cycle_sim.hpp. Included by exactly the TUs that instantiate
// them: switchsim/cycle_sim.cpp for the portable lane words and the
// per-ISA TUs under src/simd/ (inside their #pragma GCC target regions)
// for Word256/Word512.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>

#include "netlist/conduction_impl.hpp"
#include "switchsim/cycle_sim.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"

#if SABLE_HAVE_WORD256 || SABLE_HAVE_WORD512
#include <immintrin.h>
#endif

// Function-level ISA enablement for the optional AVX-512 pack extensions
// (#pragma GCC target does NOT define __AVX512F__ etc. for the
// preprocessor, so like lane_word.hpp's SABLE_TARGET_* macros these are
// explicit attributes; the full list repeats avx512f because a function
// target attribute replaces the TU's pragma selection).
#if SABLE_HAVE_WORD512
#define SABLE_TARGET_AVX512BW __attribute__((target("avx512f,avx512bw")))
#define SABLE_TARGET_GFNI \
  __attribute__((target("avx512f,avx512bw,avx512vbmi,gfni")))
#endif

namespace sable {

namespace detail {

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3, recursive
/// block swaps), LSB-first: bit c of a[r] moves to bit r of a[c]. Three
/// block levels of delta-swaps — 64·6 word ops total, versus 64·64
/// shift/mask/or steps for a per-bit gather.
///
/// `static`, not `inline`: the per-ISA TUs compile this header inside a
/// #pragma GCC target region, and a comdat copy built there could be the
/// one the linker keeps for portable callers — internal linkage keeps
/// every TU's copy at its own ISA level.
[[maybe_unused]] static void bit_transpose_64x64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

/// 8×8 bit-matrix transpose inside one 64-bit word (row r = byte r,
/// LSB-first): bit c of byte r moves to bit r of byte c. `static` for the
/// same per-ISA-TU reason as bit_transpose_64x64.
[[maybe_unused]] static std::uint64_t bit_transpose_8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

// --- Vectorized transpose bodies -----------------------------------------
//
// Every TU that compiles this header carries every body its build allows
// (the SABLE_HAVE_WORD* guards), each with an explicit function-level
// target attribute — a #pragma GCC target region does NOT define
// __AVX2__/__AVX512F__ for the preprocessor, so the guards cannot key on
// those. Which body actually runs is picked per pack call from
// active_tier() (+ cpu_features for the optional BW/GFNI instructions),
// so SABLE_DISPATCH=portable still exercises the scalar bodies and a
// lower-tier cap never executes a wider instruction. All bodies produce
// bit-identical output — the pack_transpose_test sweeps assert it per
// runtime tier. Everything stays `static` (internal linkage) for the
// per-ISA-TU reason above.
//
// GCC 12's avx512 intrinsic headers trip -Wuninitialized through the
// _mm512_undefined_* pass-through operands of permutexvar/cvt intrinsics
// when their always_inline bodies land in these functions (GCC PR105593);
// the values are never read, so silence that one diagnostic here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

#if SABLE_HAVE_WORD512
/// 64×64 transpose, zmm form: the same Hacker's Delight delta-swap tree,
/// but on eight 8-row vectors. Block levels j=32/16/8 pair whole vectors;
/// j=4/2/1 run inside each vector with a partner permute (vpermq), a
/// broadcast of t back over both pair halves, and a masked blend picking
/// t<<j for the low row and t for the high row ("masked shifts").
SABLE_TARGET_AVX512 [[maybe_unused]] static void bit_transpose_64x64_avx512(
    std::uint64_t a[64]) {
  __m512i v[8];
  for (int i = 0; i < 8; ++i) v[i] = _mm512_loadu_si512(a + 8 * i);
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j >= 8; j >>= 1, m ^= m << j) {
    const __m512i mm = _mm512_set1_epi64((long long)m);
    const int d = j / 8;  // vector-index distance between partner rows
    for (int k = 0; k < 8; k = ((k | d) + 1) & ~d) {
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(v[k], (unsigned)j), v[k + d]),
          mm);
      v[k] = _mm512_xor_si512(v[k], _mm512_slli_epi64(t, (unsigned)j));
      v[k + d] = _mm512_xor_si512(v[k + d], t);
    }
  }
  struct Level {
    int j;
    long long mask;
    long long perm[8];   // partner row for each element
    long long bcast[8];  // low element of each pair, broadcast t over both
    unsigned char blend;  // elements taking plain t (the high partners)
  };
  static const Level kLevels[3] = {
      {4, 0x0F0F0F0F0F0F0F0Fll,
       {4, 5, 6, 7, 0, 1, 2, 3}, {0, 1, 2, 3, 0, 1, 2, 3}, 0xF0},
      {2, 0x3333333333333333ll,
       {2, 3, 0, 1, 6, 7, 4, 5}, {0, 1, 0, 1, 4, 5, 4, 5}, 0xCC},
      {1, 0x5555555555555555ll,
       {1, 0, 3, 2, 5, 4, 7, 6}, {0, 0, 2, 2, 4, 4, 6, 6}, 0xAA}};
  for (const Level& level : kLevels) {
    const __m512i mm = _mm512_set1_epi64(level.mask);
    const __m512i pidx = _mm512_loadu_si512(level.perm);
    const __m512i bidx = _mm512_loadu_si512(level.bcast);
    for (int i = 0; i < 8; ++i) {
      const __m512i p = _mm512_permutexvar_epi64(pidx, v[i]);
      const __m512i t = _mm512_and_si512(
          _mm512_xor_si512(_mm512_srli_epi64(v[i], (unsigned)level.j), p),
          mm);
      const __m512i tb = _mm512_permutexvar_epi64(bidx, t);
      v[i] = _mm512_xor_si512(
          v[i], _mm512_mask_blend_epi64(
                    level.blend, _mm512_slli_epi64(tb, (unsigned)level.j),
                    tb));
    }
  }
  for (int i = 0; i < 8; ++i) _mm512_storeu_si512(a + 8 * i, v[i]);
}
#endif  // SABLE_HAVE_WORD512

#if SABLE_HAVE_WORD256
/// 64×64 transpose, ymm form: delta-swap tree on sixteen 4-row vectors.
/// Levels j=32/16/8/4 pair whole vectors; j=2/1 run inside each vector
/// with vpermq partner/broadcast shuffles and a dword blend.
SABLE_TARGET_AVX2 [[maybe_unused]] static void bit_transpose_64x64_avx2(
    std::uint64_t a[64]) {
  __m256i v[16];
  for (int i = 0; i < 16; ++i) {
    v[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * i));
  }
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (int j = 32; j >= 4; j >>= 1, m ^= m << j) {
    const __m256i mm = _mm256_set1_epi64x((long long)m);
    const int d = j / 4;  // vector-index distance between partner rows
    for (int k = 0; k < 16; k = ((k | d) + 1) & ~d) {
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(v[k], j), v[k + d]), mm);
      v[k] = _mm256_xor_si256(v[k], _mm256_slli_epi64(t, j));
      v[k + d] = _mm256_xor_si256(v[k + d], t);
    }
  }
  {  // j = 2: element pairs (0,2), (1,3) inside each ymm
    const __m256i mm = _mm256_set1_epi64x(0x3333333333333333ll);
    for (int i = 0; i < 16; ++i) {
      const __m256i p = _mm256_permute4x64_epi64(v[i], 0x4E);
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(v[i], 2), p), mm);
      const __m256i tb = _mm256_permute4x64_epi64(t, 0x44);
      v[i] = _mm256_xor_si256(
          v[i], _mm256_blend_epi32(_mm256_slli_epi64(tb, 2), tb, 0xF0));
    }
  }
  {  // j = 1: element pairs (0,1), (2,3) inside each ymm
    const __m256i mm = _mm256_set1_epi64x(0x5555555555555555ll);
    for (int i = 0; i < 16; ++i) {
      const __m256i p = _mm256_permute4x64_epi64(v[i], 0xB1);
      const __m256i t = _mm256_and_si256(
          _mm256_xor_si256(_mm256_srli_epi64(v[i], 1), p), mm);
      const __m256i tb = _mm256_permute4x64_epi64(t, 0xA0);
      v[i] = _mm256_xor_si256(
          v[i], _mm256_blend_epi32(_mm256_slli_epi64(tb, 1), tb, 0xCC));
    }
  }
  for (int i = 0; i < 16; ++i) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + 4 * i), v[i]);
  }
}
#endif  // SABLE_HAVE_WORD256

using Transpose64Fn = void (*)(std::uint64_t*);

/// Widest 64×64 transpose body the given tier may execute, resolved once
/// per pack call (the tier/feature probe stays off the per-chunk loop).
[[maybe_unused]] static Transpose64Fn transpose_64x64_kernel(
    DispatchTier tier) {
#if SABLE_HAVE_WORD512
  if (tier >= DispatchTier::kAvx512) return bit_transpose_64x64_avx512;
#endif
#if SABLE_HAVE_WORD256
  if (tier >= DispatchTier::kAvx2) return bit_transpose_64x64_avx2;
#endif
  (void)tier;
  return bit_transpose_64x64;
}

// --- Byte → bit-plane kernels (narrow packs, vars ≤ 8) --------------------
//
// byte_planes_64 contract: bit L of planes[v] is bit v of src[L], for one
// full 64-byte row (callers zero-pad ragged tails).

/// Portable body: eight 8×8 block transposes, one 8-byte load each.
[[maybe_unused]] static void byte_planes_64_portable(const std::uint8_t* src,
                                                     std::uint64_t* planes) {
  for (std::size_t v = 0; v < 8; ++v) planes[v] = 0;
  for (std::size_t g = 0; g < 8; ++g) {
    std::uint64_t b;
    std::memcpy(&b, src + 8 * g, 8);
    b = bit_transpose_8x8(b);
    for (std::size_t v = 0; v < 8; ++v) {
      planes[v] |= ((b >> (8 * v)) & 0xffu) << (8 * g);
    }
  }
}

#if SABLE_HAVE_WORD256
/// AVX2 body: vpmovmskb collects bit 7 of every byte, so eight rounds of
/// (movemask, byte-double) peel planes 7..0 — ~20 vector ops per 64 lanes.
SABLE_TARGET_AVX2 [[maybe_unused]] static void byte_planes_64_avx2(
    const std::uint8_t* src, std::uint64_t* planes) {
  __m256i lo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src));
  __m256i hi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + 32));
  for (int v = 7; v >= 0; --v) {
    const auto mlo = static_cast<std::uint32_t>(_mm256_movemask_epi8(lo));
    const auto mhi = static_cast<std::uint32_t>(_mm256_movemask_epi8(hi));
    planes[v] = (std::uint64_t{mhi} << 32) | mlo;
    lo = _mm256_add_epi8(lo, lo);
    hi = _mm256_add_epi8(hi, hi);
  }
}
#endif  // SABLE_HAVE_WORD256

#if SABLE_HAVE_WORD512
/// AVX-512BW body: vpmovb2m grabs all 64 MSBs in one instruction. Callers
/// gate on cpu_features (BW is optional on top of the avx512 tier).
SABLE_TARGET_AVX512BW [[maybe_unused]] static void byte_planes_64_bw(
    const std::uint8_t* src, std::uint64_t* planes) {
  __m512i x = _mm512_loadu_si512(src);
  for (int v = 7; v >= 0; --v) {
    planes[v] = static_cast<std::uint64_t>(_mm512_movepi8_mask(x));
    x = _mm512_add_epi8(x, x);
  }
}

/// GFNI body: one vgf2p8affineqb transposes all eight 8×8 byte tiles at
/// once. The hardware indexes affine-matrix rows MSB-first, so a vpshufb
/// byte-reverse of each qword first makes the result the LSB-first
/// transpose (verified against the scalar reference in
/// pack_transpose_test); a vpermb then regroups byte v of tile g into
/// qword v — five instructions per 64 lanes.
SABLE_TARGET_GFNI [[maybe_unused]] static void byte_planes_64_gfni(
    const std::uint8_t* src, std::uint64_t* planes) {
  alignas(64) static const std::uint8_t kRev8[64] = {
      7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
      7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
      7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
      7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8};
  alignas(64) static const std::uint8_t kRegroup[64] = {
      0, 8,  16, 24, 32, 40, 48, 56, 1, 9,  17, 25, 33, 41, 49, 57,
      2, 10, 18, 26, 34, 42, 50, 58, 3, 11, 19, 27, 35, 43, 51, 59,
      4, 12, 20, 28, 36, 44, 52, 60, 5, 13, 21, 29, 37, 45, 53, 61,
      6, 14, 22, 30, 38, 46, 54, 62, 7, 15, 23, 31, 39, 47, 55, 63};
  __m512i x = _mm512_loadu_si512(src);
  x = _mm512_shuffle_epi8(x, _mm512_load_si512(kRev8));
  x = _mm512_gf2p8affine_epi64_epi8(
      _mm512_set1_epi64(0x8040201008040201ll), x, 0);
  x = _mm512_permutexvar_epi8(_mm512_load_si512(kRegroup), x);
  _mm512_storeu_si512(planes, x);
}
#endif  // SABLE_HAVE_WORD512

using BytePlanesFn = void (*)(const std::uint8_t*, std::uint64_t*);

/// Widest byte-plane kernel the given tier + this CPU can run, resolved
/// once per pack call (the optional-ISA probe stays off the per-chunk
/// loop).
[[maybe_unused]] static BytePlanesFn byte_planes_kernel(DispatchTier tier) {
#if SABLE_HAVE_WORD512
  if (tier >= DispatchTier::kAvx512) {
    const CpuFeatures& f = cpu_features();
    if (f.gfni && f.avx512vbmi && f.avx512bw) return byte_planes_64_gfni;
    if (f.avx512bw) return byte_planes_64_bw;
  }
#endif
#if SABLE_HAVE_WORD256
  if (tier >= DispatchTier::kAvx2) return byte_planes_64_avx2;
#endif
  (void)tier;
  return byte_planes_64_portable;
}

/// Compacts the low byte of `n` u64 assignments into a zero-padded
/// 64-byte row for the byte-plane kernels (ragged tails, portable body).
[[maybe_unused]] static void low_bytes_64_portable(const std::uint64_t* src,
                                                   std::size_t n,
                                                   std::uint8_t dst[64]) {
  std::size_t lane = 0;
  for (; lane < n; ++lane) dst[lane] = static_cast<std::uint8_t>(src[lane]);
  for (; lane < 64; ++lane) dst[lane] = 0;
}

#if SABLE_HAVE_WORD512
/// Full-row compaction via vpmovqb: 8 qwords → 8 dense bytes per step.
SABLE_TARGET_AVX512 [[maybe_unused]] static void low_bytes_64_avx512(
    const std::uint64_t* src, std::size_t n, std::uint8_t dst[64]) {
  if (n == 64) {
    for (int i = 0; i < 8; ++i) {
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 8 * i),
                       _mm512_cvtepi64_epi8(_mm512_loadu_si512(src + 8 * i)));
    }
    return;
  }
  low_bytes_64_portable(src, n, dst);
}
#endif  // SABLE_HAVE_WORD512

using LowBytesFn = void (*)(const std::uint64_t*, std::size_t,
                            std::uint8_t*);

/// Low-byte compaction body for the given tier.
[[maybe_unused]] static LowBytesFn low_bytes_kernel(DispatchTier tier) {
#if SABLE_HAVE_WORD512
  if (tier >= DispatchTier::kAvx512) return low_bytes_64_avx512;
#endif
  (void)tier;
  return low_bytes_64_portable;
}

#pragma GCC diagnostic pop

}  // namespace detail

template <typename W>
void pack_lane_words_gather(const std::uint64_t* assignments,
                            std::size_t count, std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more assignments than lanes in the word");
  for (std::size_t v = 0; v < words.size(); ++v) {
    std::uint64_t chunks[T::kChunks];
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      const std::size_t base = 64 * j;
      const std::size_t lanes = count > base ? std::min<std::size_t>(
                                                   64, count - base)
                                             : 0;
      std::uint64_t chunk = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        chunk |= ((assignments[base + lane] >> v) & 1u) << lane;
      }
      chunks[j] = chunk;
    }
    words[v] = lane_from_chunks<W>(chunks);
  }
}

template <typename W>
void pack_lane_words(const std::uint64_t* assignments, std::size_t count,
                     std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more assignments than lanes in the word");
  const std::size_t vars = words.size();
  SABLE_ASSERT(vars <= 64, "at most 64 packed variables per assignment");

  if (count == 1) {
    // Single lane (the scalar wrappers): bit extraction only, no matrix.
    std::uint64_t chunks[T::kChunks] = {};
    const std::uint64_t x = assignments[0];
    for (std::size_t v = 0; v < vars; ++v) {
      chunks[0] = (x >> v) & 1u;
      words[v] = lane_from_chunks<W>(chunks);
    }
    return;
  }

  const DispatchTier tier = active_tier();

  if (vars <= 8) {
    // Narrow assignments (S-box inputs): compact the low bytes into a
    // 64-byte row per chunk and run the tier's bit-plane kernel.
    const detail::LowBytesFn row_fn = detail::low_bytes_kernel(tier);
    const detail::BytePlanesFn planes_fn = detail::byte_planes_kernel(tier);
    std::uint64_t out[8][T::kChunks] = {};
    for (std::size_t j = 0; j < T::kChunks && 64 * j < count; ++j) {
      const std::size_t base = 64 * j;
      const std::size_t lanes = std::min<std::size_t>(64, count - base);
      alignas(64) std::uint8_t row[64];
      row_fn(assignments + base, lanes, row);
      std::uint64_t planes[8];
      planes_fn(row, planes);
      for (std::size_t v = 0; v < vars; ++v) out[v][j] = planes[v];
    }
    for (std::size_t v = 0; v < vars; ++v) {
      words[v] = lane_from_chunks<W>(out[v]);
    }
    return;
  }

  // Wide assignments (gate energy profiles pack up to 64 variables): one
  // full 64×64 transpose per 64-lane chunk, vectorized per tier.
  const detail::Transpose64Fn transpose = detail::transpose_64x64_kernel(tier);
  std::uint64_t out[64][T::kChunks];
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const std::size_t base = 64 * j;
    const std::size_t lanes =
        count > base ? std::min<std::size_t>(64, count - base) : 0;
    std::uint64_t a[64];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      a[lane] = assignments[base + lane];
    }
    for (std::size_t lane = lanes; lane < 64; ++lane) a[lane] = 0;
    transpose(a);
    for (std::size_t v = 0; v < vars; ++v) out[v][j] = a[v];
  }
  for (std::size_t v = 0; v < vars; ++v) {
    words[v] = lane_from_chunks<W>(out[v]);
  }
}

template <typename W>
void pack_lane_words(const std::uint8_t* values, std::size_t count,
                     std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more values than lanes in the word");
  const std::size_t vars = words.size();
  SABLE_ASSERT(vars <= 8, "byte-source packing carries at most 8 variables");

  const detail::BytePlanesFn planes_fn =
      detail::byte_planes_kernel(active_tier());
  std::uint64_t out[8][T::kChunks] = {};
  for (std::size_t j = 0; j < T::kChunks && 64 * j < count; ++j) {
    const std::size_t base = 64 * j;
    const std::size_t lanes = std::min<std::size_t>(64, count - base);
    std::uint64_t planes[8];
    if (lanes == 64) {
      planes_fn(values + base, planes);  // full row straight from source
    } else {
      alignas(64) std::uint8_t row[64];
      std::memcpy(row, values + base, lanes);
      std::memset(row + lanes, 0, 64 - lanes);
      planes_fn(row, planes);
    }
    for (std::size_t v = 0; v < vars; ++v) out[v][j] = planes[v];
  }
  for (std::size_t v = 0; v < vars; ++v) {
    words[v] = lane_from_chunks<W>(out[v]);
  }
}

template <typename W>
SablGateSimBatchT<W>::SablGateSimBatchT(const DpdnNetwork& net,
                                        GateEnergyModel model)
    : net_(net), model_(std::move(model)) {
  SABLE_ASSERT(model_.node_cap.size() == net_.node_count(),
               "gate model capacitance table size mismatch");
  charged_.assign(net_.node_count(), LaneTraits<W>::ones());
}

template <typename W>
void SablGateSimBatchT<W>::cycle(const std::vector<W>& var_words,
                                 const W& lane_mask, double* energy) {
  using T = LaneTraits<W>;
  constexpr std::size_t kChunks = T::kChunks;
  device_conduction_masks(net_, var_words, masks_);
  reach_.assign(net_.node_count(), T::zero());
  reach_[DpdnNetwork::kNodeX] = lane_mask;
  reach_[DpdnNetwork::kNodeY] = lane_mask;
  reach_[DpdnNetwork::kNodeZ] = lane_mask;
  propagate_conduction(net_, masks_, reach_);

  // Per lane the arithmetic mirrors the scalar cycle exactly (constant
  // term, then node capacitances in node order, then the output extra) by
  // walking the word's 64-bit chunks with the historic 64-lane code — so a
  // lane is bit-identical to a width-1 run no matter the word width. Full
  // chunks take plain 0..63 loops (auto-vectorized); sparse ones walk
  // their set bits.
  std::uint64_t mask_chunks[kChunks];
  lane_chunks(lane_mask, mask_chunks);
  lane_fill_selected(lane_mask, model_.constant_energy, energy);

  for (NodeId n = 0; n < net_.node_count(); ++n) {
    // Evaluation: connected nodes discharge to ground; precharge with input
    // overlap recharges the same set from the supply. Floating nodes keep
    // their held level and cost nothing.
    const double e_node = model_.node_cap[n] * model_.vdd * model_.vdd;
    std::uint64_t w_chunks[kChunks];
    lane_chunks(reach_[n], w_chunks);
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t w = w_chunks[j];
      double* e = energy + 64 * j;
      if (w == ~std::uint64_t{0}) {
        // Fully connected chunks (the §4 designs' steady state): plain
        // vectorizable add across all lanes.
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += e_node;
        }
      } else if (mask_chunks[j] == ~std::uint64_t{0}) {
        // Mixed chunk (genuine networks): branch-free select; adding the
        // table's +0.0 for a clear bit leaves a non-negative accumulator
        // bit-identical to skipping the lane.
        const double select[2] = {0.0, e_node};
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += select[(w >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = w; rest != 0; rest &= rest - 1) {
          e[std::countr_zero(rest)] += e_node;
        }
      }
    }
    charged_[n] |= reach_[n];  // connected lanes end recharged
  }

  // The firing output rail charges its extra (routing) load: the true rail
  // when f = 1, the false rail otherwise. Balanced extras cancel the data
  // dependence; mismatched ones leak (§2).
  if (model_.out_true_extra != 0.0 || model_.out_false_extra != 0.0) {
    // X–Z closure reusing this cycle's device masks (no reallocation).
    reach_xz_.assign(net_.node_count(), T::zero());
    reach_xz_[DpdnNetwork::kNodeZ] = lane_mask;
    propagate_conduction(net_, masks_, reach_xz_);
    std::uint64_t f_chunks[kChunks];
    lane_chunks(reach_xz_[DpdnNetwork::kNodeX], f_chunks);
    const double rail[2] = {model_.out_false_extra * model_.vdd * model_.vdd,
                            model_.out_true_extra * model_.vdd * model_.vdd};
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t f = f_chunks[j];
      double* e = energy + 64 * j;
      if (mask_chunks[j] == ~std::uint64_t{0}) {
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += rail[(f >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = mask_chunks[j]; rest != 0;
             rest &= rest - 1) {
          const std::size_t lane = std::countr_zero(rest);
          e[lane] += rail[(f >> lane) & 1u];
        }
      }
    }
  }
}

template <typename W>
void SablGateSimBatchT<W>::reset(bool charged) {
  charged_.assign(net_.node_count(),
                  charged ? LaneTraits<W>::ones() : LaneTraits<W>::zero());
}

/// Instantiates the switch-level batch kernels for lane word W.
#define SABLE_INSTANTIATE_CYCLE_SIM(W)                                    \
  template void pack_lane_words<W>(const std::uint64_t*, std::size_t,     \
                                   std::vector<W>&);                      \
  template void pack_lane_words<W>(const std::uint8_t*, std::size_t,      \
                                   std::vector<W>&);                      \
  template void pack_lane_words_gather<W>(const std::uint64_t*,           \
                                          std::size_t, std::vector<W>&);  \
  template class SablGateSimBatchT<W>;

}  // namespace sable
