#include "cell/wddl.hpp"

#include "cell/wddl_impl.hpp"

namespace sable {

// Portable-width instantiations only; Word256/512 live in src/simd/ (see
// wddl_impl.hpp).
SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_WDDL)

WddlCircuitSim::WddlCircuitSim(const GateCircuit& circuit,
                               const Technology& tech, double mismatch,
                               std::uint64_t seed)
    : batch_(circuit, tech, mismatch, seed),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult WddlCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

}  // namespace sable
