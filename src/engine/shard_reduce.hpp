// The campaign's shard reduction, factored out of the live engine so
// every path that ends in a full shard-state matrix — simulated
// campaigns, corpus replay, multi-process partial-state merges — reduces
// and finalizes through the SAME code, hence bit-identically.
#pragma once

#include <cstddef>
#include <span>

#include "dpa/distinguisher.hpp"

namespace sable {

class WorkerPool;

/// Reduces a fully covered shard-state matrix (states[d][s] non-null for
/// every d, s) and finalizes each distinguisher with its root. Ordered
/// distinguishers (MTD) reduce by the strict serial left fold in
/// canonical shard order; unordered ones through the fixed-shape binary
/// merge tree with each round's disjoint merges spread over `workers`
/// (up to `threads` parties) — the pairing, and therefore the result,
/// is bit-identical to the serial tree for any thread count. Throws
/// InvalidArgument when any shard state is missing.
void reduce_and_finalize_distinguishers(
    std::span<Distinguisher* const> distinguishers, ShardStates& states,
    WorkerPool& workers, std::size_t threads);

}  // namespace sable
