#include "dpa/attack.hpp"

#include "dpa/streaming.hpp"
#include "util/error.hpp"

namespace sable {

std::size_t AttackResult::rank_of(std::size_t key) const {
  SABLE_ASSERT(key < score.size(), "key out of range for ranking");
  std::size_t rank = 0;
  for (std::size_t g = 0; g < score.size(); ++g) {
    if (g == key) continue;
    // Strictly better scores outrank; exact ties resolve by guess index so
    // the ranking is a deterministic total order.
    if (score[g] > score[key] || (score[g] == score[key] && g < key)) {
      ++rank;
    }
  }
  return rank;
}

AttackResult make_attack_result(std::vector<double> scores) {
  AttackResult result;
  result.score = std::move(scores);
  double best = -1.0;
  double second = -1.0;
  for (std::size_t g = 0; g < result.score.size(); ++g) {
    if (result.score[g] > best) {
      second = best;
      best = result.score[g];
      result.best_guess = g;
    } else if (result.score[g] > second) {
      second = result.score[g];
    }
  }
  result.margin = second < 0.0 ? best : best - second;
  // The canonical-ordering contract (see attack.hpp), asserted once here
  // for every attack path: best_guess is the LOWEST index attaining the
  // maximum score, and rank_of agrees with it. Merged-accumulator
  // snapshots route through this constructor too, so a merge that
  // reordered guesses would trip these instead of silently re-ranking.
  for (std::size_t g = 0; g < result.best_guess; ++g) {
    SABLE_ASSERT(result.score[g] < result.score[result.best_guess],
                 "best_guess must be the lowest index at the maximum score");
  }
  SABLE_ASSERT(result.score.empty() || result.rank_of(result.best_guess) == 0,
               "rank_of must rank best_guess first");
  return result;
}

AttackResult cpa_attack(const TraceSet& traces, const SboxSpec& spec,
                        PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(traces.size() >= 2, "CPA requires at least two traces");
  SABLE_REQUIRE(traces.pt_width == 1,
                "attacks consume sub-plaintexts: extract the attacked "
                "instance's bytes (RoundSpec::sub_words) first");
  StreamingCpa acc(spec, model, bit);
  acc.add_batch(traces.plaintexts.data(), traces.samples.data(),
                traces.size());
  return acc.result();
}

MultiAttackResult cpa_attack_multisample(const MultiTraceSet& traces,
                                         const SboxSpec& spec,
                                         PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(traces.width > 0 && traces.size() >= 2,
                "multisample CPA requires non-empty traces");
  StreamingMultiCpa acc(spec, model, traces.width, bit);
  for (std::size_t t = 0; t < traces.size(); ++t) {
    acc.add(traces.plaintexts[t], traces.samples.data() + t * traces.width);
  }
  return acc.result();
}

AttackResult dom_attack(const TraceSet& traces, const SboxSpec& spec,
                        std::size_t bit) {
  SABLE_REQUIRE(traces.size() >= 2, "DPA requires at least two traces");
  SABLE_REQUIRE(traces.pt_width == 1,
                "attacks consume sub-plaintexts: extract the attacked "
                "instance's bytes (RoundSpec::sub_words) first");
  StreamingDom acc(spec, bit);
  acc.add_batch(traces.plaintexts.data(), traces.samples.data(),
                traces.size());
  return acc.result();
}

}  // namespace sable
