// Differential power analysis demo: the attack the paper defends against.
//
// Simulates the nonlinear layer of a cipher round — `--round N` PRESENT
// S-box instances side by side (default 1) with a secret round key — in
// every logic style through the batched trace engine (64 encryptions per
// simulated cycle), runs a one-pass streaming correlation attack on the
// `--attack-sbox i` subkey for every guess, and reports whether that
// subkey leaks. The other N-1 instances switch on their own data and act
// as algorithmic noise on the shared supply, exactly like the neighbours
// of a real datapath. Static CMOS falls quickly, the genuine dynamic
// differential implementation leaks through its floating internal nodes,
// and the fully connected SABL implementation holds. No trace is ever
// retained: the CPA and MTD accumulators consume the stream directly.
// `--lanes W` pins the batch lane width (64/128/256/512 as compiled in;
// default 0 = widest) — results are bit-identical at every width.
// `--second-order` additionally runs the second-order centered-product
// CPA (logic-level pairs over time-resolved traces) per style through the
// distinguisher pipeline — the stronger attack class a constant-power
// claim must also survive.
//
// Campaign persistence (io/): `--record P` writes each style's trace
// stream to the corpus file `P.<style>` while attacking; `--replay P`
// feeds the attacks from those corpora instead of simulating (same
// results, bit for bit); `--checkpoint P` persists the per-shard
// distinguisher states to `P.<style>` so an interrupted run resumes.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/trace_engine.hpp"
#include "io/corpus.hpp"
#include "util/cpu_dispatch.hpp"

using namespace sable;

namespace {

// Deterministic distinct subkeys: instance j's nibble of the round key.
std::vector<std::size_t> demo_subkeys(std::size_t n) {
  std::vector<std::size_t> keys(n);
  for (std::size_t j = 0; j < n; ++j) keys[j] = (0xB + 3 * j) & 0xF;
  return keys;
}

void attack_style(LogicStyle style, std::size_t round_size,
                  std::size_t attack_sbox, std::size_t num_traces,
                  double noise, std::size_t num_threads,
                  std::size_t lane_width, bool second_order,
                  const std::string& record_path,
                  const std::string& replay_path,
                  const std::string& checkpoint_path) {
  const Technology tech = Technology::generic_180nm();
  const RoundSpec round = present_round(round_size, style);
  TraceEngine engine(round, tech);

  CampaignOptions options;
  options.num_traces = num_traces;
  options.key = round.pack_subkeys(demo_subkeys(round_size));
  options.noise_sigma = noise;
  options.seed = 0xA77ACC;
  options.num_threads = num_threads;
  options.lane_width = lane_width;
  const std::size_t subkey = round.sub_word(options.key.data(), attack_sbox);

  // The attacked campaign through the distinguisher pipeline: CPA and the
  // ordered MTD distinguisher share one trace stream — simulated,
  // recorded, or replayed from a corpus, all bit-identical.
  const AttackSelector selector{.sbox_index = attack_sbox,
                                .model = PowerModel::kHammingWeight};
  CpaDistinguisher cpa(engine.spec(attack_sbox), selector);
  MtdDistinguisher mtd_driver(engine.spec(attack_sbox), selector, subkey,
                              default_checkpoints(num_traces), num_traces);
  Distinguisher* const list[] = {&cpa, &mtd_driver};
  CampaignPersistence persist;
  if (!checkpoint_path.empty()) {
    persist.checkpoint_path =
        checkpoint_path + "." + to_string(style);
  }
  if (!record_path.empty()) {
    engine.record(options, TraceDataKind::kScalar,
                  record_path + "." + to_string(style));
  }
  if (!replay_path.empty()) {
    const CorpusReader corpus(replay_path + "." + to_string(style));
    engine.replay(corpus, list, persist, num_threads);
  } else {
    engine.run_distinguishers(options, list, persist);
  }
  const AttackResult result = cpa.result();
  const MtdResult mtd = mtd_driver.result();

  std::printf("%-22s best guess = 0x%zX (|rho| = %.3f), correct subkey rank "
              "%zu",
              to_string(style), result.best_guess,
              result.score[result.best_guess], result.rank_of(subkey));
  if (mtd.disclosed) {
    std::printf(", DISCLOSED after ~%zu traces\n", mtd.mtd);
  } else {
    std::printf(", subkey NOT disclosed in %zu traces\n", num_traces);
  }

  // The stronger distinguisher a constant-power claim must also survive:
  // second-order centered-product CPA across logic-level pairs, driven
  // through the same distinguisher pipeline over a time-resolved campaign.
  if (second_order) {
    const SecondOrderAttackResult so = engine.second_order_cpa_campaign(
        options, AttackSelector{.sbox_index = attack_sbox,
                                .model = PowerModel::kHammingWeight});
    std::printf("%-22s   2nd-order: best guess = 0x%zX (|rho| = %.3f, "
                "level pair (%zu,%zu)), correct subkey rank %zu\n",
                "", so.combined.best_guess,
                so.combined.score[so.combined.best_guess], so.best_pair_first,
                so.best_pair_second, so.combined.rank_of(subkey));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces = 5000;
  const double noise = 2e-16;  // ~0.2 fJ RMS measurement noise
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  std::size_t lane_width = 0;   // 0 = widest compiled-in lane word
  std::size_t round_size = 1;
  std::size_t attack_sbox = 0;
  bool second_order = false;
  std::string record_path;
  std::string replay_path;
  std::string checkpoint_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--round") == 0 && i + 1 < argc) {
      round_size =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--attack-sbox") == 0 && i + 1 < argc) {
      attack_sbox =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lane_width =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--second-order") == 0) {
      second_order = true;
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      record_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--round N] [--attack-sbox I] "
                   "[--lanes W] [--second-order] [--record P] [--replay P] "
                   "[--checkpoint P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 2;
  }
  if (lane_width != 0) {
    const auto runnable = runtime_lane_widths();
    if (std::find(runnable.begin(), runnable.end(), lane_width) ==
        runnable.end()) {
      std::fprintf(stderr,
                   "--lanes %zu is not runnable on this machine (runnable: "
                   "64, 128%s)\n",
                   lane_width,
                   max_runtime_lane_width() > 128 ? ", SIMD widths" : "");
      return 2;
    }
  }
  if (round_size == 0 || attack_sbox >= round_size) {
    std::fprintf(stderr, "--attack-sbox must address one of the --round %zu "
                         "instances\n",
                 round_size);
    return 2;
  }

  const std::size_t subkey = demo_subkeys(round_size)[attack_sbox];
  std::printf("CPA attack on a %zu-S-box PRESENT round, attacking S-box %zu "
              "(secret subkey 0x%zX), %zu traces\n",
              round_size, attack_sbox, subkey, num_traces);
  CampaignOptions defaults;
  defaults.lane_width = lane_width;
  std::printf(
      "(batched %zu-wide simulation sharded over %zu threads, streaming "
      "one-pass attack%s)\n\n",
      campaign_lane_width(defaults),
      num_threads != 0 ? num_threads
                       : campaign_thread_count(CampaignOptions{}),
      round_size > 1 ? "; the other instances are algorithmic noise" : "");
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
    attack_style(style, round_size, attack_sbox, num_traces, noise,
                 num_threads, lane_width, second_order, record_path,
                 replay_path, checkpoint_path);
  }
  std::printf(
      "\nThe fully connected/enhanced gates draw an input-independent charge\n"
      "every cycle, so the correlation for every key guess is noise.\n");
  return 0;
}
