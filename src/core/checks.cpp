#include "core/checks.hpp"

#include "expr/truth_table.hpp"
#include "netlist/conduction.hpp"

namespace sable {

FunctionalityReport check_functionality(const DpdnNetwork& net,
                                        const ExprPtr& f) {
  FunctionalityReport report;
  report.x_branch_matches = true;
  report.y_branch_matches = true;
  report.no_xy_short = true;

  const std::size_t rows = std::size_t{1} << net.num_vars();
  for (std::size_t a = 0; a < rows; ++a) {
    UnionFind uf = conduction_components(net, a);
    const bool fx = uf.same(DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
    const bool fy = uf.same(DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
    const bool fxy = uf.same(DpdnNetwork::kNodeX, DpdnNetwork::kNodeY);
    const bool expected = evaluate(f, a);
    bool bad = false;
    if (fx != expected) {
      report.x_branch_matches = false;
      bad = true;
    }
    if (fy != !expected) {
      report.y_branch_matches = false;
      bad = true;
    }
    if (fxy) {
      report.no_xy_short = false;
      bad = true;
    }
    if (bad) report.failing_assignments.push_back(a);
  }
  report.ok = report.x_branch_matches && report.y_branch_matches &&
              report.no_xy_short;
  return report;
}

ConnectivityReport check_full_connectivity(const DpdnNetwork& net) {
  ConnectivityReport report;
  const std::size_t rows = std::size_t{1} << net.num_vars();
  for (std::size_t a = 0; a < rows; ++a) {
    const std::vector<bool> connected = connected_to_external(net, a);
    for (NodeId n : net.internal_nodes()) {
      if (!connected[n]) {
        report.violations.push_back(ConnectivityViolation{a, n});
      }
    }
  }
  report.fully_connected = report.violations.empty();
  return report;
}

}  // namespace sable
