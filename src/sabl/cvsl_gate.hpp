// Static CVSL (cascode voltage switch logic) gate assembly — the baseline
// whose AND-NAND power varies "as large as 50%" with the input event (§2,
// citing [10]/[14]).
//
// Topology: the DPDN's X branch pulls the complement output low when f = 1
// and the Y branch pulls the true output low when f' = 1; a cross-coupled
// PMOS pair restores the high side. Inputs are static full-swing signals
// (no precharge phase), so the energy of an input *transition* depends on
// which parasitic capacitances move — the data dependence DPA exploits.
#pragma once

#include <string>
#include <vector>

#include "netlist/network.hpp"
#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace sable {

struct CvslGateCircuit {
  spice::Circuit circuit;
  std::vector<std::string> dpdn_node_names;  // X -> "nq", Y -> "q", Z -> "0"
  std::vector<std::string> input_true;
  std::vector<std::string> input_false;
};

CvslGateCircuit assemble_cvsl_gate(const DpdnNetwork& net,
                                   const VarTable& vars,
                                   const Technology& tech,
                                   const SizingPlan& sizing);

}  // namespace sable
