// Tests for the crypto substrate and the DPA attack framework, ending with
// the headline security experiment: DPA breaks static CMOS and the genuine-
// DPDN implementation, and fails against the fully connected one.
#include <gtest/gtest.h>

#include "crypto/sboxes.hpp"
#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "power/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(SboxTest, PresentKnownValues) {
  // First and last entries of the standard PRESENT table.
  EXPECT_EQ(present_sbox(0x0), 0xC);
  EXPECT_EQ(present_sbox(0xF), 0x2);
  EXPECT_THROW(present_sbox(16), InvalidArgument);
}

TEST(SboxTest, PresentIsABijection) {
  std::array<bool, 16> seen{};
  for (std::uint8_t x = 0; x < 16; ++x) seen[present_sbox(x)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SboxTest, AesKnownValues) {
  EXPECT_EQ(aes_sbox(0x00), 0x63);
  EXPECT_EQ(aes_sbox(0x52), 0x00);  // S(0x52) = 0 (inverse of S-box 0)
  EXPECT_EQ(aes_sbox(0xFF), 0x16);
}

TEST(SboxTest, DesS1KnownValues) {
  // Classic test vectors: input 0b000000 -> row 0, col 0 -> 14.
  EXPECT_EQ(des_sbox1(0b000000), 14);
  // Input 0b111111 -> row 3, col 15 -> 13.
  EXPECT_EQ(des_sbox1(0b111111), 13);
}

TEST(SboxTest, OutputBitTables) {
  const SboxSpec spec = present_spec();
  for (std::size_t bit = 0; bit < 4; ++bit) {
    const TruthTable t = sbox_output_bit(spec, bit);
    for (std::size_t x = 0; x < 16; ++x) {
      EXPECT_EQ(t.get(x), ((present_sbox(static_cast<std::uint8_t>(x)) >> bit) & 1u) != 0);
    }
  }
  EXPECT_THROW(sbox_output_bit(spec, 9), InvalidArgument);
}

TEST(TargetTest, CircuitMatchesReferenceSbox) {
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected}) {
    SboxTarget target(present_spec(), style, kTech);
    for (std::uint8_t pt = 0; pt < 16; ++pt) {
      // The circuit computes S(pt ^ key); check against the table for a
      // couple of keys via the functional output path.
      EXPECT_EQ(target.reference(pt, 0x0), present_sbox(pt));
      EXPECT_EQ(target.reference(pt, 0xA),
                present_sbox(static_cast<std::uint8_t>(pt ^ 0xA)));
    }
  }
}

TEST(StatsTest, PearsonBasics) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> yn = {8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, yn), -1.0, 1e-12);
  const std::vector<double> c = {5, 5, 5, 5};
  EXPECT_EQ(pearson(x, c), 0.0);
}

TEST(StatsTest, SpreadMetrics) {
  const SpreadMetrics m = spread_metrics({1.0, 2.0, 3.0});
  EXPECT_EQ(m.min, 1.0);
  EXPECT_EQ(m.max, 3.0);
  EXPECT_NEAR(m.mean, 2.0, 1e-12);
  EXPECT_NEAR(m.ned, 2.0 / 3.0, 1e-12);
}

TraceSet collect_traces(SboxTarget& target, std::uint8_t key,
                        std::size_t count, double noise, Rng& rng) {
  TraceSet traces;
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    traces.add(pt, target.trace(pt, key, noise, rng));
  }
  return traces;
}

TEST(DpaTest, CpaRecoversKeyFromCmosTraces) {
  Rng rng(42);
  const std::uint8_t key = 0xB;
  SboxTarget target(present_spec(), LogicStyle::kStaticCmos, kTech);
  const TraceSet traces = collect_traces(target, key, 2000, 2e-16, rng);
  const AttackResult result =
      cpa_attack(traces, present_spec(), PowerModel::kHammingWeight);
  EXPECT_EQ(result.best_guess, key);
  EXPECT_EQ(result.rank_of(key), 0u);
}

TEST(DpaTest, DomRecoversKeyFromGenuineSablTraces) {
  Rng rng(43);
  const std::uint8_t key = 0x6;
  SboxTarget target(present_spec(), LogicStyle::kSablGenuine, kTech);
  const TraceSet traces = collect_traces(target, key, 4000, 1e-16, rng);
  const AttackResult result =
      cpa_attack(traces, present_spec(), PowerModel::kHammingWeight);
  // The genuine network leaks through floating internal nodes; the key must
  // be recovered (possibly needing the bitwise model: check both).
  const AttackResult bit0 =
      cpa_attack(traces, present_spec(), PowerModel::kSboxOutputBit, 0);
  EXPECT_TRUE(result.rank_of(key) == 0 || bit0.rank_of(key) == 0)
      << "HW rank " << result.rank_of(key) << " bit rank "
      << bit0.rank_of(key);
}

TEST(DpaTest, FullyConnectedSablResistsAttack) {
  Rng rng(44);
  const std::uint8_t key = 0x3;
  SboxTarget target(present_spec(), LogicStyle::kSablFullyConnected, kTech);
  const TraceSet traces = collect_traces(target, key, 4000, 1e-16, rng);
  const AttackResult hw =
      cpa_attack(traces, present_spec(), PowerModel::kHammingWeight);
  // Constant-power traces: correlations are pure noise, so the correct key
  // should win no more often than chance. Require that it is not a clear
  // winner (score indistinguishable from the field).
  const double top = hw.score[hw.best_guess];
  EXPECT_LT(top, 0.1) << "correlation should be noise-level";
}

TEST(DpaTest, DomAttackRecoversKeyOnSomeOutputBit) {
  // Single-bit difference-of-means is subject to ghost peaks, so a real
  // attack checks every output bit; the correct key must win at least one.
  Rng rng(45);
  const std::uint8_t key = 0xD;
  SboxTarget target(present_spec(), LogicStyle::kStaticCmos, kTech);
  const TraceSet traces = collect_traces(target, key, 6000, 1e-16, rng);
  std::size_t best_rank = 99;
  for (std::size_t bit = 0; bit < 4; ++bit) {
    const AttackResult result = dom_attack(traces, present_spec(), bit);
    best_rank = std::min(best_rank, result.rank_of(key));
  }
  EXPECT_EQ(best_rank, 0u);
}

TEST(MtdTest, DisclosureOrdering) {
  Rng rng(46);
  const std::uint8_t key = 0x9;
  SboxTarget cmos(present_spec(), LogicStyle::kStaticCmos, kTech);
  SboxTarget fc(present_spec(), LogicStyle::kSablFullyConnected, kTech);
  const std::size_t n = 3000;
  const TraceSet traces_cmos = collect_traces(cmos, key, n, 2e-16, rng);
  const TraceSet traces_fc = collect_traces(fc, key, n, 2e-16, rng);
  const auto checkpoints = default_checkpoints(n);
  const auto attack = [&](const TraceSet& t) {
    return cpa_attack(t, present_spec(), PowerModel::kHammingWeight);
  };
  const MtdResult mtd_cmos =
      measurements_to_disclosure(traces_cmos, key, checkpoints, attack);
  const MtdResult mtd_fc =
      measurements_to_disclosure(traces_fc, key, checkpoints, attack);
  EXPECT_TRUE(mtd_cmos.disclosed);
  // The FC implementation either never discloses or takes far longer.
  if (mtd_fc.disclosed) {
    EXPECT_GT(mtd_fc.mtd, mtd_cmos.mtd * 4);
  }
}

TEST(MtdTest, CheckpointLadder) {
  const auto pts = default_checkpoints(1000);
  ASSERT_FALSE(pts.empty());
  EXPECT_EQ(pts.back(), 1000u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GT(pts[i], pts[i - 1]);
  }
}

}  // namespace
}  // namespace sable
