// Recursive-descent parser for Boolean expressions in the paper's notation.
//
// Grammar (lowest to highest precedence):
//   or-expr   :=  xor-expr (('+' | '|') xor-expr)*
//   xor-expr  :=  and-expr ('^' and-expr)*
//   and-expr  :=  unary (('.' | '&' | '*') unary)*
//   unary     :=  ('!' | '~') unary | primary '\''*
//   primary   :=  ident | '0' | '1' | '(' or-expr ')'
//
// Postfix apostrophe matches the paper's overbar: "A.B' + B'" is Fig. 2's
// false branch. Identifiers are [A-Za-z_][A-Za-z0-9_]*.
#pragma once

#include <string_view>

#include "expr/expression.hpp"

namespace sable {

/// Parses `text`, interning new variables into `vars`.
/// Throws ParseError with position information on malformed input.
ExprPtr parse_expression(std::string_view text, VarTable& vars);

}  // namespace sable
