#include "power/trace.hpp"

#include "util/error.hpp"

namespace sable {

void MultiTraceSet::add(std::uint8_t pt, const std::vector<double>& row) {
  if (width == 0) width = row.size();
  SABLE_REQUIRE(row.size() == width,
                "all traces must have the same sample count");
  plaintexts.push_back(pt);
  samples.insert(samples.end(), row.begin(), row.end());
}

TraceSet MultiTraceSet::column(std::size_t sample) const {
  SABLE_REQUIRE(sample < width, "sample index out of range");
  TraceSet out;
  out.plaintexts = plaintexts;
  out.samples.reserve(size());
  for (std::size_t t = 0; t < size(); ++t) {
    out.samples.push_back(at(t, sample));
  }
  return out;
}

}  // namespace sable
