#include "power/stats.hpp"

#include <algorithm>
#include <cmath>

#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

double mean(const std::vector<double>& xs) {
  SABLE_REQUIRE(!xs.empty(), "mean of empty sample set");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  const double mu = mean(xs);
  double var = 0.0;
  for (double x : xs) var += (x - mu) * (x - mu);
  return std::sqrt(var / static_cast<double>(xs.size()));
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  SABLE_REQUIRE(xs.size() == ys.size() && !xs.empty(),
                "pearson requires equal-size non-empty samples");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void OnlineMoments::merge(const OnlineMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / n);
  m2_ += other.m2_ + delta * delta * (na * nb / n);
  n_ += other.n_;
}

double OnlineMoments::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineMoments::stddev() const { return std::sqrt(variance()); }

void OnlineMoments::save(ByteWriter& writer) const {
  writer.u64(n_);
  writer.f64(mean_);
  writer.f64(m2_);
}

void OnlineMoments::load(ByteReader& reader) {
  n_ = reader.u64();
  mean_ = reader.f64();
  m2_ = reader.f64();
}

SpreadMetrics spread_metrics(const std::vector<double>& xs) {
  SABLE_REQUIRE(!xs.empty(), "spread_metrics of empty sample set");
  SpreadMetrics m;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  m.min = *mn;
  m.max = *mx;
  m.mean = mean(xs);
  m.stddev = stddev(xs);
  m.ned = m.max > 0.0 ? (m.max - m.min) / m.max : 0.0;
  m.nsd = m.mean > 0.0 ? m.stddev / m.mean : 0.0;
  return m;
}

}  // namespace sable
