#include "core/memory_effect.hpp"

#include <algorithm>
#include <set>

#include "netlist/conduction.hpp"

namespace sable {

MemoryEffectReport analyze_memory_effect(const DpdnNetwork& net) {
  MemoryEffectReport report;
  std::set<std::vector<bool>> classes;
  std::size_t min_count = SIZE_MAX;
  std::size_t max_count = 0;

  const std::size_t rows = std::size_t{1} << net.num_vars();
  const auto internals = net.internal_nodes();
  for (std::size_t a = 0; a < rows; ++a) {
    const std::vector<bool> connected = connected_to_external(net, a);
    std::vector<bool> discharged;
    discharged.reserve(internals.size());
    std::size_t count = 0;
    for (NodeId n : internals) {
      discharged.push_back(connected[n]);
      if (connected[n]) {
        ++count;
      } else {
        report.floating_events.push_back({a, n});
      }
    }
    classes.insert(std::move(discharged));
    min_count = std::min(min_count, count);
    max_count = std::max(max_count, count);
  }
  report.num_discharge_classes = classes.size();
  report.memoryless = report.floating_events.empty();
  report.max_discharge_count_spread =
      internals.empty() ? 0 : max_count - min_count;
  return report;
}

}  // namespace sable
