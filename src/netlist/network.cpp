#include "netlist/network.hpp"

#include "util/error.hpp"

namespace sable {

DpdnNetwork::DpdnNetwork(std::size_t num_vars) : num_vars_(num_vars) {
  names_ = {"X", "Y", "Z"};
}

NodeId DpdnNetwork::add_internal_node(std::string name) {
  if (name.empty()) {
    name = "W" + std::to_string(internal_node_count() + 1);
  }
  names_.push_back(std::move(name));
  return static_cast<NodeId>(names_.size() - 1);
}

void DpdnNetwork::add_switch(SignalLiteral gate, NodeId a, NodeId b,
                             DeviceRole role) {
  SABLE_REQUIRE(a < names_.size() && b < names_.size(),
                "switch endpoint does not exist");
  SABLE_REQUIRE(a != b, "switch endpoints must differ");
  SABLE_REQUIRE(gate.var < num_vars_, "switch gate variable out of range");
  devices_.push_back(Switch{gate, a, b, role});
}

void DpdnNetwork::add_pass_gate(VarId var, NodeId a, NodeId b) {
  add_switch(SignalLiteral{var, true}, a, b, DeviceRole::kPassGateHalf);
  add_switch(SignalLiteral{var, false}, a, b, DeviceRole::kPassGateHalf);
}

std::size_t DpdnNetwork::pass_gate_device_count() const {
  std::size_t n = 0;
  for (const auto& d : devices_) {
    if (d.role == DeviceRole::kPassGateHalf) ++n;
  }
  return n;
}

NodeKind DpdnNetwork::node_kind(NodeId n) const {
  SABLE_ASSERT(n < names_.size(), "node id out of range");
  switch (n) {
    case kNodeX:
      return NodeKind::kX;
    case kNodeY:
      return NodeKind::kY;
    case kNodeZ:
      return NodeKind::kZ;
    default:
      return NodeKind::kInternal;
  }
}

const std::string& DpdnNetwork::node_name(NodeId n) const {
  SABLE_ASSERT(n < names_.size(), "node id out of range");
  return names_[n];
}

std::vector<NodeId> DpdnNetwork::internal_nodes() const {
  std::vector<NodeId> out;
  for (NodeId n = 3; n < names_.size(); ++n) out.push_back(n);
  return out;
}

std::vector<std::vector<std::size_t>> DpdnNetwork::adjacency() const {
  std::vector<std::vector<std::size_t>> adj(node_count());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    adj[devices_[i].a].push_back(i);
    adj[devices_[i].b].push_back(i);
  }
  return adj;
}

std::string DpdnNetwork::to_string(const VarTable& vars) const {
  std::string out;
  for (const auto& d : devices_) {
    out += "  ";
    out += vars.name(d.gate.var);
    if (!d.gate.positive) out += '\'';
    out += ": ";
    out += node_name(d.a);
    out += " -- ";
    out += node_name(d.b);
    if (d.role == DeviceRole::kPassGateHalf) out += "  [pass-gate]";
    out += '\n';
  }
  return out;
}

}  // namespace sable
