#include "io/replay.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "crypto/round_target.hpp"
#include "engine/shard_reduce.hpp"
#include "engine/worker_pool.hpp"
#include "io/campaign_state.hpp"
#include "util/error.hpp"

namespace sable {

bool replay_distinguishers(const CorpusReader& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist,
                           std::size_t num_threads, WorkerPool* pool) {
  const CorpusManifest& cm = corpus.manifest();
  const CampaignManifest& manifest = cm.campaign;
  SABLE_REQUIRE(!distinguishers.empty(),
                "replay needs at least one distinguisher");
  SABLE_REQUIRE(manifest.num_traces >= 2,
                "attack campaigns require at least two traces");
  if (round_spec_hash(round) != manifest.spec_hash) {
    throw ManifestMismatchError(
        corpus.path(),
        "corpus was recorded for a different round spec than the one being "
        "attacked");
  }
  SABLE_REQUIRE(cm.pt_stride == round.state_bytes(),
                "corpus plaintext stride must equal the round's packed "
                "state width");
  const TraceDataKind kind = cm.kind == kCorpusKindScalar
                                 ? TraceDataKind::kScalar
                                 : TraceDataKind::kSampled;
  for (Distinguisher* d : distinguishers) {
    SABLE_REQUIRE(d != nullptr, "distinguisher must not be null");
    d->validate(round);
    SABLE_REQUIRE(d->data_kind() == kind,
                  "distinguisher's trace data kind does not match the "
                  "corpus (scalar vs cycle-sampled)");
  }

  // Sub-plaintext extraction slots, deduplicated per attacked instance —
  // the live driver's exact scheme.
  std::vector<std::size_t> slot_sbox;
  std::vector<std::size_t> slot_of(distinguishers.size());
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    const std::size_t index = distinguishers[d]->sbox_index();
    const auto it = std::find(slot_sbox.begin(), slot_sbox.end(), index);
    slot_of[d] = static_cast<std::size_t>(it - slot_sbox.begin());
    if (it == slot_sbox.end()) slot_sbox.push_back(index);
  }

  ShardStates states(distinguishers.size());
  for (auto& row : states) {
    row.resize(static_cast<std::size_t>(manifest.num_shards));
  }
  const std::size_t shard_size =
      static_cast<std::size_t>(manifest.shard_size);
  const std::size_t width = static_cast<std::size_t>(cm.sample_width);

  WorkerPool local_pool;
  WorkerPool& workers = pool ? *pool : local_pool;
  const std::size_t max_threads =
      num_threads != 0 ? num_threads
                       : std::max(1u, std::thread::hardware_concurrency());

  const auto accumulate = [&](const std::vector<std::size_t>& work) {
    const std::size_t threads =
        std::max<std::size_t>(1, std::min(max_threads, work.size()));
    std::atomic<std::size_t> next{0};
    const auto run_one = [&](std::vector<std::uint8_t>& sub_pts,
                             std::size_t s) {
      for (std::size_t d = 0; d < distinguishers.size(); ++d) {
        states[d][s] = distinguishers[d]->make_shard_accumulator();
      }
      const std::size_t count = corpus.shard_count(s);
      const std::uint8_t* pts = corpus.shard_plaintexts(s);
      const double* samples = corpus.shard_samples(s);
      for (std::size_t slot = 0; slot < slot_sbox.size(); ++slot) {
        round.sub_words(pts, count, slot_sbox[slot],
                        sub_pts.data() + slot * shard_size);
      }
      for (std::size_t d = 0; d < distinguishers.size(); ++d) {
        ShardBlock block;
        block.start = corpus.shard_start(s);
        block.sub_pts = sub_pts.data() + slot_of[d] * shard_size;
        block.data = samples;
        block.width = width;
        block.count = count;
        states[d][s]->accumulate(block);
      }
    };
    if (threads <= 1) {
      std::vector<std::uint8_t> sub_pts(shard_size * slot_sbox.size());
      for (std::size_t s : work) run_one(sub_pts, s);
      return;
    }
    workers.run(threads, [&](std::size_t) {
      std::vector<std::uint8_t> sub_pts(shard_size * slot_sbox.size());
      for (std::size_t k = next.fetch_add(1); k < work.size();
           k = next.fetch_add(1)) {
        run_one(sub_pts, work[k]);
      }
    });
  };

  if (!run_persisted_waves(manifest, distinguishers, states, persist,
                           accumulate)) {
    return false;
  }
  reduce_and_finalize_distinguishers(
      distinguishers, states, workers,
      std::max<std::size_t>(
          1, std::min(max_threads,
                      static_cast<std::size_t>(manifest.num_shards))));
  return true;
}

}  // namespace sable
