// Tests for the batched bit-parallel trace engine and the streaming
// attack accumulators: 64-wide simulation must be bit-exact against the
// scalar simulators, and one-pass CPA/DoM/MTD must reproduce the batch
// attack results.
#include <gtest/gtest.h>

#include <cmath>

#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "expr/random_expr.hpp"
#include "expr/truth_table.hpp"
#include "power/stats.hpp"
#include "switchsim/energy.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();
constexpr std::size_t kLanes = SablGateSimBatch::kLanes;

// Lane words for 64 scalar assignments: word[v] bit L = bit v of plan[L].
std::vector<std::uint64_t> lane_words(const std::vector<std::uint64_t>& plan,
                                      std::size_t num_vars) {
  std::vector<std::uint64_t> words(num_vars, 0);
  pack_lane_words(plan.data(), plan.size(), words);
  return words;
}

TEST(BatchGateSimTest, LanesMatchScalarGateOnRandomNetworks) {
  Rng rng(0xBA7C);
  for (int round = 0; round < 6; ++round) {
    RandomExprOptions options;
    options.num_vars = 3;
    options.num_literals = 5;
    const ExprPtr f = random_nnf(rng, options);
    const DpdnNetwork net = round % 2 == 0
                                ? synthesize_fc_dpdn(f, options.num_vars)
                                : build_genuine_dpdn(f, options.num_vars);
    const SizingPlan sizing = SizingPlan::defaults(kTech);
    const GateEnergyModel model = build_gate_model(net, kTech, sizing);

    SablGateSimBatch batch(net, model);
    std::vector<SablGateSim> scalars;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      scalars.emplace_back(net, model);
    }

    for (int cycle = 0; cycle < 4; ++cycle) {
      std::vector<std::uint64_t> plan(kLanes);
      for (auto& a : plan) a = rng.below(std::uint64_t{1} << options.num_vars);
      double energy[kLanes];
      batch.cycle(lane_words(plan, options.num_vars), ~std::uint64_t{0},
                  energy);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        EXPECT_EQ(energy[lane], scalars[lane].cycle(plan[lane]))
            << "round " << round << " cycle " << cycle << " lane " << lane;
      }
      // Charge state must agree per lane too (the §2 memory effect).
      for (NodeId n = 0; n < net.node_count(); ++n) {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          EXPECT_EQ((batch.node_state_words()[n] >> lane) & 1u,
                    scalars[lane].node_state()[n] ? 1u : 0u);
        }
      }
    }
  }
}

// One randomized circuit shared by the circuit-level bit-exactness tests.
GateCircuit random_circuit(Rng& rng, std::size_t num_vars,
                           NetworkVariant variant) {
  RandomExprOptions options;
  options.num_vars = num_vars;
  options.num_literals = 7;
  std::vector<ExprPtr> outputs;
  for (int i = 0; i < 3; ++i) outputs.push_back(random_nnf(rng, options));
  return build_from_expressions(outputs, num_vars, variant, kTech);
}

TEST(BatchCircuitSimTest, DifferentialLanesMatchScalar) {
  Rng rng(0x51AB);
  for (int round = 0; round < 3; ++round) {
    const auto variant =
        round == 0 ? NetworkVariant::kGenuine : NetworkVariant::kFullyConnected;
    const GateCircuit circuit = random_circuit(rng, 4, variant);
    DifferentialCircuitSimBatch batch(circuit);
    std::vector<DifferentialCircuitSim> scalars;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      scalars.emplace_back(circuit);
    }
    BatchCycleResult out;
    for (int cycle = 0; cycle < 3; ++cycle) {
      std::vector<std::uint64_t> plan(kLanes);
      for (auto& a : plan) a = rng.below(16);
      batch.cycle(lane_words(plan, 4), ~std::uint64_t{0}, out);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const CycleResult ref = scalars[lane].cycle(plan[lane]);
        EXPECT_EQ(out.energy[lane], ref.energy) << lane;
        std::uint64_t outputs = 0;
        for (std::size_t i = 0; i < out.output_words.size(); ++i) {
          outputs |= ((out.output_words[i] >> lane) & 1u) << i;
        }
        EXPECT_EQ(outputs, ref.outputs) << lane;
        EXPECT_EQ(outputs, evaluate_circuit(circuit, plan[lane])) << lane;
      }
    }
  }
}

TEST(BatchCircuitSimTest, CmosLanesCarryIndependentHistory) {
  Rng rng(0xC305);
  const GateCircuit circuit =
      random_circuit(rng, 4, NetworkVariant::kFullyConnected);
  const double e_sw = 5e-15 * kTech.vdd * kTech.vdd;
  CmosCircuitSimBatch batch(circuit, e_sw);
  std::vector<CmosCircuitSim> scalars;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    scalars.emplace_back(circuit, e_sw);
  }
  BatchCycleResult out;
  // Several cycles: Hamming-distance energy depends on each lane's own
  // previous values, so agreement here proves the histories do not mix.
  for (int cycle = 0; cycle < 5; ++cycle) {
    std::vector<std::uint64_t> plan(kLanes);
    for (auto& a : plan) a = rng.below(16);
    batch.cycle(lane_words(plan, 4), ~std::uint64_t{0}, out);
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      const CycleResult ref = scalars[lane].cycle(plan[lane]);
      EXPECT_EQ(out.energy[lane], ref.energy)
          << "cycle " << cycle << " lane " << lane;
    }
  }
}

TEST(BatchCircuitSimTest, WddlLanesMatchScalar) {
  Rng rng(0x3DD1);
  const GateCircuit circuit =
      random_circuit(rng, 4, NetworkVariant::kFullyConnected);
  WddlCircuitSimBatch batch(circuit, kTech, 0.05);
  std::vector<WddlCircuitSim> scalars;
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    scalars.emplace_back(circuit, kTech, 0.05);
  }
  BatchCycleResult out;
  std::vector<std::uint64_t> plan(kLanes);
  for (auto& a : plan) a = rng.below(16);
  batch.cycle(lane_words(plan, 4), ~std::uint64_t{0}, out);
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(out.energy[lane], scalars[lane].cycle(plan[lane]).energy)
        << lane;
  }
}

TEST(BatchCircuitSimTest, CmosCycleSampledSplitsCycleEnergyByLevel) {
  Rng rng(0xC355);
  const GateCircuit circuit =
      random_circuit(rng, 4, NetworkVariant::kFullyConnected);
  const double e_sw = 5e-15 * kTech.vdd * kTech.vdd;
  // Twin sims fed the same sequence: the sampled rows must carry exactly
  // the cycle energy, split across the circuit's logic levels, with the
  // same per-lane transition history.
  CmosCircuitSimBatch whole(circuit, e_sw);
  CmosCircuitSimBatch sampled_sim(circuit, e_sw);
  ASSERT_GT(sampled_sim.num_levels(), 0u);
  BatchCycleResult out;
  SampledBatchCycleResult sampled;
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::vector<std::uint64_t> plan(kLanes);
    for (auto& a : plan) a = rng.below(16);
    const auto words = lane_words(plan, 4);
    whole.cycle(words, ~std::uint64_t{0}, out);
    sampled_sim.cycle_sampled(words, ~std::uint64_t{0}, sampled);
    ASSERT_EQ(sampled.level_energy.size(), sampled_sim.num_levels());
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      double sum = 0.0;
      for (const auto& row : sampled.level_energy) sum += row[lane];
      EXPECT_NEAR(sum, out.energy[lane], 1e-12 * (out.energy[lane] + 1e-30))
          << "cycle " << cycle << " lane " << lane;
    }
    ASSERT_EQ(sampled.output_words.size(), out.output_words.size());
    for (std::size_t i = 0; i < out.output_words.size(); ++i) {
      EXPECT_EQ(sampled.output_words[i], out.output_words[i]) << i;
    }
  }
}

TEST(BatchCircuitSimTest, WddlCycleSampledSplitsCycleEnergyByLevel) {
  Rng rng(0x3DD5);
  const GateCircuit circuit =
      random_circuit(rng, 4, NetworkVariant::kFullyConnected);
  WddlCircuitSimBatch whole(circuit, kTech, 0.05);
  WddlCircuitSimBatch sampled_sim(circuit, kTech, 0.05);
  ASSERT_GT(sampled_sim.num_levels(), 0u);
  BatchCycleResult out;
  SampledBatchCycleResult sampled;
  std::vector<std::uint64_t> plan(kLanes);
  for (auto& a : plan) a = rng.below(16);
  const auto words = lane_words(plan, 4);
  whole.cycle(words, ~std::uint64_t{0}, out);
  sampled_sim.cycle_sampled(words, ~std::uint64_t{0}, sampled);
  ASSERT_EQ(sampled.level_energy.size(), sampled_sim.num_levels());
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    double sum = 0.0;
    for (const auto& row : sampled.level_energy) sum += row[lane];
    EXPECT_NEAR(sum, out.energy[lane], 1e-12 * (out.energy[lane] + 1e-30))
        << lane;
  }

  // A perfectly balanced back-end leaks nothing into the time axis either:
  // every level's row is data-independent (equal across lanes).
  WddlCircuitSimBatch balanced(circuit, kTech, 0.0);
  balanced.cycle_sampled(words, ~std::uint64_t{0}, sampled);
  for (const auto& row : sampled.level_energy) {
    for (std::size_t lane = 1; lane < kLanes; ++lane) {
      EXPECT_EQ(row[lane], row[0]) << lane;
    }
  }
}

TEST(BatchCircuitSimTest, PartialLaneMaskLeavesOtherLanesUntouched) {
  Rng rng(0x9A5C);
  const GateCircuit circuit =
      random_circuit(rng, 4, NetworkVariant::kFullyConnected);
  const double e_sw = 5e-15 * kTech.vdd * kTech.vdd;
  CmosCircuitSimBatch batch(circuit, e_sw);
  CmosCircuitSim scalar(circuit, e_sw);
  BatchCycleResult out;
  // Lane 0 runs a 3-cycle sequence under a width-1 mask while the word
  // carries garbage in the other lanes; the result must track the scalar.
  for (std::uint64_t a : {0b1010ull, 0b0101ull, 0b1010ull}) {
    std::vector<std::uint64_t> words(4, 0);
    for (std::size_t v = 0; v < 4; ++v) {
      words[v] = ((a >> v) & 1u) | (rng.next() << 1);
    }
    batch.cycle(words, 1u, out);
    EXPECT_EQ(out.energy[0], scalar.cycle(a).energy);
  }
}

TEST(EnergyProfileTest, BatchProfileMatchesPerAssignmentSimulation) {
  Rng rng(0x00F1);
  RandomExprOptions options;
  options.num_vars = 4;
  options.num_literals = 6;
  const ExprPtr f = random_nnf(rng, options);
  const DpdnNetwork net = build_genuine_dpdn(f, options.num_vars);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const GateEnergyModel model = build_gate_model(net, kTech, sizing);
  const EnergyProfile profile = profile_gate_energy(net, model);
  ASSERT_EQ(profile.energy_per_input.size(), 16u);
  for (std::size_t a = 0; a < 16; ++a) {
    SablGateSim sim(net, model);
    sim.cycle(a);
    EXPECT_EQ(profile.energy_per_input[a], sim.cycle(a)) << a;
  }
}

// ---- streaming accumulators ----------------------------------------------

TraceSet cmos_traces(std::size_t count, std::uint8_t key, std::uint64_t seed) {
  SboxTarget target(present_spec(), LogicStyle::kStaticCmos, kTech);
  Rng rng(seed);
  TraceSet traces;
  traces.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    traces.add(pt, target.trace(pt, key, 2e-16, rng));
  }
  return traces;
}

// Two-pass reference CPA (the pre-streaming formulation).
std::vector<double> reference_cpa_scores(const TraceSet& traces,
                                         const SboxSpec& spec,
                                         PowerModel model, std::size_t bit) {
  const std::size_t num_guesses = std::size_t{1} << spec.in_bits;
  std::vector<double> scores(num_guesses);
  std::vector<double> prediction(traces.size());
  for (std::size_t g = 0; g < num_guesses; ++g) {
    for (std::size_t t = 0; t < traces.size(); ++t) {
      prediction[t] = predict_leakage(spec, model, traces.plaintexts[t],
                                      static_cast<std::uint8_t>(g), bit);
    }
    scores[g] = std::fabs(pearson(prediction, traces.samples));
  }
  return scores;
}

TEST(StreamingCpaTest, MatchesTwoPassPearson) {
  const TraceSet traces = cmos_traces(3000, 0xB, 0x7EA5);
  const SboxSpec spec = present_spec();
  for (PowerModel model :
       {PowerModel::kHammingWeight, PowerModel::kSboxOutputBit}) {
    StreamingCpa acc(spec, model, 1);
    acc.add_batch(traces.plaintexts.data(), traces.samples.data(),
                  traces.size());
    const AttackResult streamed = acc.result();
    const std::vector<double> reference =
        reference_cpa_scores(traces, spec, model, 1);
    ASSERT_EQ(streamed.score.size(), reference.size());
    for (std::size_t g = 0; g < reference.size(); ++g) {
      EXPECT_NEAR(streamed.score[g], reference[g], 1e-12) << g;
    }
  }
}

TEST(StreamingCpaTest, SplitFeedEqualsSingleFeed) {
  const TraceSet traces = cmos_traces(1000, 0x4, 0x5717);
  const SboxSpec spec = present_spec();
  StreamingCpa whole(spec, PowerModel::kHammingWeight);
  whole.add_batch(traces.plaintexts.data(), traces.samples.data(),
                  traces.size());
  StreamingCpa split(spec, PowerModel::kHammingWeight);
  split.add_batch(traces.plaintexts.data(), traces.samples.data(), 311);
  split.add_batch(traces.plaintexts.data() + 311, traces.samples.data() + 311,
                  traces.size() - 311);
  const AttackResult a = whole.result();
  const AttackResult b = split.result();
  for (std::size_t g = 0; g < a.score.size(); ++g) {
    EXPECT_DOUBLE_EQ(a.score[g], b.score[g]);
  }
}

TEST(StreamingDomTest, MatchesPartitionMeans) {
  const TraceSet traces = cmos_traces(2000, 0x6, 0xD0D0);
  const SboxSpec spec = present_spec();
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    StreamingDom acc(spec, bit);
    acc.add_batch(traces.plaintexts.data(), traces.samples.data(),
                  traces.size());
    const AttackResult streamed = acc.result();
    for (std::size_t g = 0; g < streamed.score.size(); ++g) {
      double sum[2] = {0.0, 0.0};
      std::size_t n[2] = {0, 0};
      for (std::size_t t = 0; t < traces.size(); ++t) {
        const double pred = predict_leakage(
            spec, PowerModel::kSboxOutputBit, traces.plaintexts[t],
            static_cast<std::uint8_t>(g), bit);
        const int p = pred > 0.5 ? 1 : 0;
        sum[p] += traces.samples[t];
        ++n[p];
      }
      const double expected =
          n[0] == 0 || n[1] == 0
              ? 0.0
              : std::fabs(sum[1] / static_cast<double>(n[1]) -
                          sum[0] / static_cast<double>(n[0]));
      EXPECT_DOUBLE_EQ(streamed.score[g], expected) << g;
    }
  }
}

TEST(StreamingMultiCpaTest, MatchesPerColumnTwoPass) {
  const SboxSpec spec = present_spec();
  SboxTarget target(spec, LogicStyle::kSablGenuine, kTech);
  DifferentialCircuitSim sim(target.circuit());
  Rng rng(0x90FF);
  const std::uint8_t key = 0x9;
  MultiTraceSet traces;
  for (std::size_t i = 0; i < 1500; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    SampledCycleResult cycle =
        sim.cycle_sampled(static_cast<std::uint8_t>(pt ^ key));
    for (auto& v : cycle.level_energy) v += 1e-16 * rng.gaussian();
    traces.add(pt, cycle.level_energy);
  }
  const MultiAttackResult streamed =
      cpa_attack_multisample(traces, spec, PowerModel::kHammingWeight);
  std::vector<double> combined(std::size_t{1} << spec.in_bits, 0.0);
  for (std::size_t s = 0; s < traces.width; ++s) {
    const std::vector<double> column = reference_cpa_scores(
        traces.column(s), spec, PowerModel::kHammingWeight, 0);
    for (std::size_t g = 0; g < combined.size(); ++g) {
      combined[g] = std::max(combined[g], column[g]);
    }
  }
  for (std::size_t g = 0; g < combined.size(); ++g) {
    EXPECT_NEAR(streamed.combined.score[g], combined[g], 1e-12) << g;
  }
}

TEST(StreamingMtdTest, MatchesPrefixDriver) {
  const std::uint8_t key = 0xB;
  const TraceSet traces = cmos_traces(3000, key, 0x17D7);
  const SboxSpec spec = present_spec();
  const auto checkpoints = default_checkpoints(traces.size());
  const MtdResult prefix = measurements_to_disclosure(
      traces, key, checkpoints, [&](const TraceSet& t) {
        return cpa_attack(t, spec, PowerModel::kHammingWeight);
      });
  StreamingMtd streaming(StreamingCpa(spec, PowerModel::kHammingWeight), key,
                         checkpoints);
  streaming.add_batch(traces.plaintexts.data(), traces.samples.data(),
                      traces.size());
  const MtdResult result = streaming.result();
  EXPECT_EQ(result.disclosed, prefix.disclosed);
  EXPECT_EQ(result.mtd, prefix.mtd);
  ASSERT_EQ(result.rank_history.size(), prefix.rank_history.size());
  for (std::size_t i = 0; i < prefix.rank_history.size(); ++i) {
    EXPECT_EQ(result.rank_history[i], prefix.rank_history[i]) << i;
  }
}

TEST(AttackResultTest, RankOfBreaksTiesByGuessIndex) {
  AttackResult result = make_attack_result({0.5, 0.5, 0.1, 0.5});
  EXPECT_EQ(result.best_guess, 0u);
  EXPECT_EQ(result.rank_of(0), 0u);
  EXPECT_EQ(result.rank_of(1), 1u);
  EXPECT_EQ(result.rank_of(3), 2u);
  EXPECT_EQ(result.rank_of(2), 3u);
}

// ---- engine ---------------------------------------------------------------

TEST(TraceEngineTest, CampaignMatchesScalarTarget) {
  // History-free styles: every lane computes the same energy a scalar
  // simulation of the same plaintext would, so an engine campaign must be
  // bit-identical to a scalar loop fed the same shard-derived
  // plaintext/noise streams in shard order.
  for (LogicStyle style :
       {LogicStyle::kSablFullyConnected, LogicStyle::kSablGenuine,
        LogicStyle::kWddlMismatched}) {
    TraceEngine engine(present_spec(), style, kTech);
    CampaignOptions options;
    options.num_traces = 500;
    options.key = {0x7};
    options.noise_sigma = 2e-16;
    options.seed = 0xFEED;
    options.shard_size = 128;  // several shards, one partial tail shard
    const TraceSet traces = engine.run(options);
    ASSERT_EQ(traces.size(), options.num_traces);

    // The stream is defined shard by shard: shard s draws plaintexts and
    // noise from campaign_shard_seed(seed, s, ·) and starts from fresh
    // simulator state, independent of every other shard.
    const std::size_t shard_size = campaign_shard_size(options);
    ASSERT_EQ(shard_size, 128u);
    SboxTarget reference(present_spec(), style, kTech);
    Rng no_noise(0);
    for (std::size_t start = 0, shard = 0; start < options.num_traces;
         start += shard_size, ++shard) {
      const std::size_t count =
          std::min(shard_size, options.num_traces - start);
      Rng pt_rng(campaign_shard_seed(options.seed, shard, 0));
      Rng noise_rng(campaign_shard_seed(options.seed, shard, 1));
      reference.reset_state();
      for (std::size_t i = 0; i < count; ++i) {
        const auto pt = static_cast<std::uint8_t>(pt_rng.below(16));
        EXPECT_EQ(traces.plaintexts[start + i], pt);
        const double energy = reference.trace(pt, options.key[0], 0.0, no_noise);
        const double noise = options.noise_sigma * noise_rng.gaussian();
        EXPECT_EQ(traces.samples[start + i], energy + noise) << start + i;
      }
    }

    // The thread count is a pure performance knob: any worker count
    // reproduces the identical trace sequence.
    for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
      TraceEngine engine2(present_spec(), style, kTech);
      CampaignOptions parallel = options;
      parallel.num_threads = threads;
      const TraceSet traces2 = engine2.run(parallel);
      ASSERT_EQ(traces2.size(), traces.size());
      for (std::size_t i = 0; i < traces.size(); ++i) {
        EXPECT_EQ(traces2.plaintexts[i], traces.plaintexts[i]);
        EXPECT_EQ(traces2.samples[i], traces.samples[i]) << i;
      }
    }
  }
}

TEST(TraceEngineTest, CmosCampaignMatchesPerLaneScalarHistory) {
  // Static CMOS leaks through per-instance history: lane L of the engine
  // is a scalar simulator fed every 64th plaintext.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 256;
  options.key = {0x3};
  options.noise_sigma = 0.0;
  options.seed = 0xCAFE;
  const TraceSet traces = engine.run(options);

  // 256 traces fit one default-size shard, so the whole campaign draws
  // from shard 0's plaintext stream.
  Rng rng(campaign_shard_seed(options.seed, 0, 0));
  std::vector<std::uint8_t> pts(options.num_traces);
  for (auto& pt : pts) pt = static_cast<std::uint8_t>(rng.below(16));
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    SboxTarget reference(present_spec(), LogicStyle::kStaticCmos, kTech);
    Rng no_noise(0);
    for (std::size_t t = lane; t < options.num_traces; t += kLanes) {
      EXPECT_EQ(traces.plaintexts[t], pts[t]);
      EXPECT_EQ(traces.samples[t],
                reference.trace(pts[t], options.key[0], 0.0, no_noise))
          << "lane " << lane << " trace " << t;
    }
  }
}

TEST(TraceEngineTest, StreamingCampaignEqualsRetainedCampaign) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 2000;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0xABBA;
  // One shard keeps the comparison to a single block; the campaign's
  // block-factored accumulation still rounds differently than the
  // retained two-pass Pearson attack, so the scores agree to the
  // pipeline's documented <= 1e-12 budget rather than bit-exactly.
  options.shard_size = 4096;
  const TraceSet traces = engine.run(options);
  const AttackResult batch =
      cpa_attack(traces, present_spec(), PowerModel::kHammingWeight);

  TraceEngine engine2(present_spec(), LogicStyle::kStaticCmos, kTech);
  const AttackResult streamed =
      engine2.cpa_campaign(options, AttackSelector{.model = PowerModel::kHammingWeight});
  ASSERT_EQ(streamed.score.size(), batch.score.size());
  for (std::size_t g = 0; g < batch.score.size(); ++g) {
    EXPECT_NEAR(streamed.score[g], batch.score[g], 1e-12) << g;
  }
  EXPECT_EQ(streamed.best_guess, options.key[0]);

  // And the one-pass MTD campaign agrees with the prefix driver over the
  // retained traces.
  TraceEngine engine3(present_spec(), LogicStyle::kStaticCmos, kTech);
  const auto checkpoints = default_checkpoints(options.num_traces);
  const MtdResult streamed_mtd = engine3.mtd_campaign(
      options, AttackSelector{.model = PowerModel::kHammingWeight}, checkpoints);
  const MtdResult prefix = measurements_to_disclosure(
      traces, options.key[0], checkpoints, [&](const TraceSet& t) {
        return cpa_attack(t, present_spec(), PowerModel::kHammingWeight);
      });
  EXPECT_EQ(streamed_mtd.disclosed, prefix.disclosed);
  EXPECT_EQ(streamed_mtd.mtd, prefix.mtd);
}

TEST(TraceEngineTest, RepeatedCampaignsOnOneEngineAreReproducible) {
  // Static CMOS carries per-lane history; stream() must reset it so the
  // same seed yields the same traces no matter what ran before.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 300;
  options.key = {0x9};
  options.noise_sigma = 0.0;
  options.seed = 0xD1CE;
  const TraceSet first = engine.run(options);
  CampaignOptions other = options;
  other.seed = 0xBEEF;  // interleave a campaign with a different stream
  engine.run(other);
  const TraceSet second = engine.run(options);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first.plaintexts[i], second.plaintexts[i]);
    EXPECT_EQ(first.samples[i], second.samples[i]) << i;
  }
}

TEST(TraceEngineTest, ConstantPowerStylesStayFlatAtScale) {
  TraceEngine engine(present_spec(), LogicStyle::kSablFullyConnected, kTech);
  CampaignOptions options;
  options.num_traces = 4000;
  options.key = {0x5};
  options.noise_sigma = 1e-16;
  options.seed = 0x5AB1;
  const AttackResult result =
      engine.cpa_campaign(
          options, AttackSelector{.model = PowerModel::kHammingWeight});
  EXPECT_LT(result.score[result.best_guess], 0.1);
}

}  // namespace
}  // namespace sable
