// Persistent fork-join worker pool for campaign scheduling.
//
// The sharded TraceEngine used to spawn a fresh std::thread set per
// campaign. For MTD-scale single campaigns that cost vanishes in the
// noise, but the engine's bread-and-butter workloads — per-style
// throughput tables, lane-width sweeps, SPICE calibration — run MANY
// short campaigns back to back, and on those the per-campaign
// create/join cycle (plus the first-touch page faults of brand-new
// stacks) was a measurable slice of why N threads failed to beat 1.
// This pool parks its threads between campaigns: run() hands a body to
// the parked workers, runs party 0 on the calling thread, and blocks
// until every party returns. Threads are grown on demand up to the
// largest party count ever requested and live for the pool's lifetime
// (the engine's lifetime — EnginePools owns one).
//
// Scheduling stays OUTSIDE the pool: bodies claim shards from an atomic
// counter (or play a fixed role, like the ordered-stream emitter), so
// the pool itself is a plain barrier with no work-queue of its own and
// adds nothing to the per-shard hot path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sable {

class WorkerPool {
 public:
  WorkerPool() = default;
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Runs body(0), body(1), …, body(parties - 1) concurrently: party 0 on
  /// the calling thread, the rest on parked pool threads (grown on
  /// demand). Blocks until every party has returned. Exceptions: the
  /// calling party's exception wins, else the first worker exception is
  /// rethrown; either way every party is joined first, so `body` may
  /// safely capture locals by reference. parties <= 1 degenerates to a
  /// plain inline body(0) with no synchronization at all.
  ///
  /// Reentrancy: the parked threads serve one run() at a time. A second
  /// run() arriving while one is in flight (concurrent campaigns on one
  /// engine, or a body that itself calls run()) falls back to ephemeral
  /// threads for that call — correct, merely without the parking win.
  void run(std::size_t parties, const std::function<void(std::size_t)>& body);

 private:
  void worker_main(std::size_t index);
  static void run_ephemeral(std::size_t parties,
                            const std::function<void(std::size_t)>& body);

  // Serializes run() calls on the parked threads; try-locked so overlap
  // degrades to run_ephemeral instead of blocking a campaign.
  std::mutex run_mutex_;

  // Everything below is guarded by mutex_. A run is a "generation":
  // run() publishes the body and the participant count and bumps
  // generation_; workers with index <= participants_ wake, execute, and
  // decrement active_; the last decrement releases run() through
  // done_cv_.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;  // threads_[i] is party index i + 1
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t participants_ = 0;
  std::size_t active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr error_;
};

}  // namespace sable
