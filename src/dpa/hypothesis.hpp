// Power-consumption hypotheses for first-order attacks.
//
// The leakage models, the AttackSelector, and the prediction-table
// builders now live in crypto/leakage.hpp, shared by every distinguisher
// (streaming CPA/DoM/multi-CPA and the second-order centered-product
// attack). This header remains as the historic include path for dpa-layer
// callers.
#pragma once

#include "crypto/leakage.hpp"
