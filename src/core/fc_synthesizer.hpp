// The paper's primary contribution (§4.1): systematic synthesis of *fully
// connected* differential pull-down networks from a Boolean expression.
//
// The five-step procedure of §4.1 is implemented as a recursion over the
// NNF expression tree. A differential module D(f) spans three terminals
// (P = true-top, Q = false-top, R = bottom):
//
//   literal a :  switch a between P–R and switch a' between Q–R;
//
//   f = x.y  (case A):  fresh internal node W,
//       D(x) on (P, Q, W),  D(y) on (W, Q, R).
//     This is the paper's "transform x'+y' into x'.y + y', put network y at
//     the bottom of the x.y connection and share y between both branches":
//     the false branch becomes Q -x'- W -y- R  in parallel with  Q -y'- R.
//
//   f = x+y  (case B):  fresh internal node V,
//       D(x) on (P, Q, V),  D(y) on (P, V, R).
//     Dually, "transform x+y into x.y' + y and share network y'":
//     the true branch becomes P -x- V -y'- R  in parallel with  P -y- R.
//
// Steps 1-2 (identify x, y and complement) are the case split; step 3 (the
// OR transformation) is the terminal wiring; step 4 is the recursion; step 5
// (substitution) is the emission of sub-modules in place. N-ary AND/OR nodes
// are right-folded: (a.b.c) is treated as a.(b.c), keeping the first operand
// at the top exactly as the paper's design example orders devices.
//
// The resulting network satisfies the §3 property: for every complementary
// input assignment, every internal node is connected to X, Y or Z — checked
// exhaustively by check_full_connectivity().
//
// With `options.enhance` set, the §5 enhancement is applied during
// construction: wherever a branch would let a discharge path skip the
// variables of a sibling sub-network (the shared-bottom short-cuts above),
// a chain of pass gates over exactly those variables is inserted, so every
// satisfiable discharge path is controlled by every gate input once. For
// expressions where each variable occurs once per branch (all examples in
// the paper), this yields a constant evaluation depth equal to the number
// of inputs, eliminating early propagation (Fig. 6).
#pragma once

#include "expr/expression.hpp"
#include "netlist/network.hpp"

namespace sable {

struct FcSynthesisOptions {
  /// Apply the §5 pass-gate enhancement during construction.
  bool enhance = false;
};

/// Synthesizes the fully connected DPDN of `f` (any expression; it is
/// normalized to NNF first). Throws InvalidArgument for constant functions.
DpdnNetwork synthesize_fc_dpdn(const ExprPtr& f, std::size_t num_vars,
                               const FcSynthesisOptions& options = {});

}  // namespace sable
