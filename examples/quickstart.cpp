// Quickstart: the library in one page.
//
// Parse a Boolean function, build its genuine and fully connected DPDNs,
// verify the paper's properties, and print the netlists — the complete
// §4.1 design flow.
//
//   $ ./quickstart            # uses the AND-NAND gate of Fig. 2
//   $ ./quickstart "A.B + C"  # any expression in the paper's notation
#include <cstdio>
#include <string>

#include "core/checks.hpp"
#include "core/depth_analysis.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/memory_effect.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "expr/transforms.hpp"
#include "util/error.hpp"

using namespace sable;

namespace {

void report(const char* title, const DpdnNetwork& net, const ExprPtr& f,
            const VarTable& vars) {
  std::printf("\n%s\n", title);
  std::printf("%s", net.to_string(vars).c_str());
  const FunctionalityReport func = check_functionality(net, f);
  const ConnectivityReport conn = check_full_connectivity(net);
  const MemoryEffectReport mem = analyze_memory_effect(net);
  const DepthReport depth = analyze_evaluation_depth(net);
  std::printf("  devices: %zu (%zu dummy), internal nodes: %zu\n",
              net.device_count(), net.pass_gate_device_count(),
              net.internal_node_count());
  std::printf("  functionality: %s | fully connected: %s | memoryless: %s\n",
              func.ok ? "OK" : "FAIL",
              conn.fully_connected ? "yes" : "NO",
              mem.memoryless ? "yes" : "NO");
  std::printf("  evaluation depth: %zu..%zu (%s)\n", depth.min_depth,
              depth.max_depth, depth.constant ? "constant" : "input-dependent");
  if (!mem.memoryless) {
    std::printf("  floating (assignment, node) events: %zu\n",
                mem.floating_events.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string text = argc > 1 ? argv[1] : "A.B";
  VarTable vars;
  ExprPtr f;
  try {
    f = parse_expression(text, vars);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  const std::size_t n = vars.size();
  std::printf("function f  = %s\n", to_string(f, vars).c_str());
  std::printf("complement  = %s\n", to_string(complement_nnf(f), vars).c_str());

  report("[1] genuine DPDN (traditional, Fig. 2 left)",
         build_genuine_dpdn(f, n), f, vars);
  report("[2] fully connected DPDN (the paper's method, Fig. 2 right)",
         synthesize_fc_dpdn(f, n), f, vars);
  report("[3] enhanced fully connected DPDN (Fig. 6 right)",
         synthesize_enhanced_dpdn(f, n), f, vars);
  return 0;
}
