#include "balance/load_balance.hpp"

#include <algorithm>
#include <cmath>

#include "tech/capacitance.hpp"
#include "util/error.hpp"

namespace sable {

std::vector<RailLoad> extract_rail_loads(const GateCircuit& circuit,
                                         const Technology& tech,
                                         const SizingPlan& sizing) {
  const std::size_t num_signals =
      circuit.num_primary_inputs() + circuit.gates().size();
  std::vector<RailLoad> loads(num_signals);

  for (const auto& inst : circuit.gates()) {
    const Cell& cell = circuit.cells()[inst.cell_index];
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      const SignalRef& ref = inst.inputs[k];
      // Input capacitance this cell presents on each polarity of its
      // k-th input pin.
      const double cin_true = input_capacitance(
          cell.network, tech, sizing, static_cast<VarId>(k), true);
      const double cin_false = input_capacitance(
          cell.network, tech, sizing, static_cast<VarId>(k), false);
      const std::size_t signal =
          ref.kind == SignalRef::Kind::kInput
              ? ref.index
              : circuit.num_primary_inputs() + ref.index;
      // A negated connection swaps which rail of the driver feeds which
      // polarity of the pin.
      if (ref.positive) {
        loads[signal].true_rail += cin_true;
        loads[signal].false_rail += cin_false;
      } else {
        loads[signal].true_rail += cin_false;
        loads[signal].false_rail += cin_true;
      }
    }
  }
  return loads;
}

void add_routing_capacitance(std::vector<RailLoad>& loads, double wire_mean,
                             double wire_spread, Rng& rng) {
  for (auto& load : loads) {
    load.true_rail += wire_mean + wire_spread * (2.0 * rng.uniform() - 1.0);
    load.false_rail += wire_mean + wire_spread * (2.0 * rng.uniform() - 1.0);
  }
}

BalanceReport balance_rail_loads(std::vector<RailLoad>& loads) {
  BalanceReport report;
  for (auto& load : loads) {
    const double imbalance = load.imbalance();
    report.max_abs_imbalance =
        std::max(report.max_abs_imbalance, std::fabs(imbalance));
    report.total_imbalance += std::fabs(imbalance);
    // Pad the lighter rail up to the heavier one.
    if (imbalance > 0.0) {
      load.false_rail += imbalance;
    } else {
      load.true_rail -= imbalance;
    }
    report.compensation_added += std::fabs(imbalance);
  }
  return report;
}

std::vector<GateEnergyModel> instance_models_with_loads(
    const GateCircuit& circuit, const std::vector<RailLoad>& loads) {
  SABLE_REQUIRE(
      loads.size() == circuit.num_primary_inputs() + circuit.gates().size(),
      "one RailLoad per signal required");
  std::vector<GateEnergyModel> models;
  models.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const Cell& cell = circuit.cells()[circuit.gates()[g].cell_index];
    GateEnergyModel model = cell.energy_model;
    const RailLoad& load = loads[circuit.num_primary_inputs() + g];
    model.out_true_extra = load.true_rail;
    model.out_false_extra = load.false_rail;
    models.push_back(std::move(model));
  }
  return models;
}

}  // namespace sable
