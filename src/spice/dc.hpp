// DC operating point via Newton-Raphson with gmin stepping.
// Capacitors are open circuits; sources take their t = 0 values.
#pragma once

#include <vector>

#include "spice/circuit.hpp"

namespace sable::spice {

struct DcOptions {
  int max_newton = 200;
  double vtol = 1e-9;
  double damping_clamp = 0.3;
  /// gmin continuation: start high, divide by 10 down to gmin_final.
  double gmin_initial = 1e-3;
  double gmin_final = 1e-12;
};

struct DcResult {
  /// Node voltages indexed by SpiceNode (ground included as 0.0).
  std::vector<double> node_voltage;
  /// Branch currents per voltage source (into the + terminal).
  std::vector<double> source_current;
  bool converged = false;
};

DcResult dc_operating_point(const Circuit& circuit,
                            const DcOptions& options = {});

}  // namespace sable::spice
