#include "switchsim/energy.hpp"

#include <algorithm>
#include <cmath>

namespace sable {

EnergyProfile profile_gate_energy(const DpdnNetwork& net,
                                  const GateEnergyModel& model) {
  EnergyProfile profile;
  const std::size_t rows = std::size_t{1} << net.num_vars();
  profile.energy_per_input.assign(rows, 0.0);
  // Bit-parallel: up to 64 assignments per batch cycle, lane L of a chunk
  // simulating assignment base + L. Per lane the arithmetic matches the
  // scalar simulator exactly.
  constexpr std::size_t kLanes = SablGateSimBatch::kLanes;
  std::vector<std::uint64_t> var_words(net.num_vars(), 0);
  double energy[kLanes];
  for (std::size_t base = 0; base < rows; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, rows - base);
    const std::uint64_t lane_mask =
        lanes == kLanes ? ~std::uint64_t{0} : (std::uint64_t{1} << lanes) - 1;
    std::uint64_t assignments[kLanes];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      assignments[lane] = base + lane;
    }
    pack_lane_words(assignments, lanes, var_words);
    SablGateSimBatch sim(net, model);
    sim.cycle(var_words, lane_mask, energy);  // warm-up: settle held charge
    sim.cycle(var_words, lane_mask, energy);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      profile.energy_per_input[base + lane] = energy[lane];
    }
  }
  const auto [mn, mx] = std::minmax_element(profile.energy_per_input.begin(),
                                            profile.energy_per_input.end());
  profile.min_energy = *mn;
  profile.max_energy = *mx;
  double sum = 0.0;
  for (double e : profile.energy_per_input) sum += e;
  profile.mean_energy = sum / static_cast<double>(rows);
  double var = 0.0;
  for (double e : profile.energy_per_input) {
    var += (e - profile.mean_energy) * (e - profile.mean_energy);
  }
  profile.stddev = std::sqrt(var / static_cast<double>(rows));
  profile.ned = profile.max_energy > 0.0
                    ? (profile.max_energy - profile.min_energy) /
                          profile.max_energy
                    : 0.0;
  profile.nsd =
      profile.mean_energy > 0.0 ? profile.stddev / profile.mean_energy : 0.0;
  return profile;
}

std::vector<double> energy_trace(const DpdnNetwork& net,
                                 const GateEnergyModel& model,
                                 const std::vector<std::uint64_t>& inputs) {
  SablGateSim sim(net, model);
  std::vector<double> trace;
  trace.reserve(inputs.size());
  for (std::uint64_t a : inputs) trace.push_back(sim.cycle(a));
  return trace;
}

}  // namespace sable
