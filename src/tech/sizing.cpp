#include "tech/sizing.hpp"

#include "core/depth_analysis.hpp"

namespace sable {

SizingPlan size_for_network(const DpdnNetwork& net, const Technology& tech) {
  SizingPlan plan = SizingPlan::defaults(tech);
  const DepthReport depth = analyze_evaluation_depth(net);
  if (depth.max_depth > 1) {
    plan.dpdn_width *= static_cast<double>(depth.max_depth);
  }
  return plan;
}

}  // namespace sable
