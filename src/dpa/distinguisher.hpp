// The pluggable distinguisher pipeline: one contract every attack speaks,
// one engine driver that runs any set of them over a single campaign.
//
// A Distinguisher describes an attack (what trace data it consumes, which
// S-box instance it targets, how its per-shard partial results reduce); a
// ShardAccumulator is its per-shard state. The TraceEngine drives the
// pipeline (TraceEngine::run_distinguishers): shards are simulated on the
// worker pool, each distinguisher's accumulator consumes the shard's
// block, and the per-shard states reduce either through the fixed-shape
// binary merge tree (unordered — CPA, DoM, multi-CPA, second-order) or an
// explicitly ordered left fold in canonical shard order (the MTD
// checkpoint semantics). finalize() then turns the reduced root into the
// distinguisher's typed result.
//
// Hot-path contract: accumulate() receives whole shard blocks, so there is
// ONE virtual dispatch per distinguisher per shard — the per-trace inner
// loops run devirtualized inside the concrete accumulators (the streaming
// classes in streaming.hpp / second_order.hpp). At the engine's ~45 ns
// per-trace budget, per-trace virtual calls would dominate; per-shard
// calls are free.
//
// Determinism: a shard accumulator is a pure function of its shard's
// traces, the reduction shape is a function of the shard count alone, and
// ordered reductions run on the calling thread — so every distinguisher
// result is bit-identical for any num_threads and lane_width, like the
// campaigns they generalize.
//
// Running several distinguishers in one call shares the simulation: a
// 16-subkey attack on a 16-S-box round costs one campaign, not sixteen
// (sub-plaintext extraction is deduplicated per attacked instance). Mixing
// scalar and time-resolved distinguishers is allowed; each shard is then
// simulated once per data kind with identical per-kind streams, keeping
// both bit-identical to their single-kind campaigns.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/leakage.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "dpa/second_order.hpp"
#include "dpa/streaming.hpp"

namespace sable {

/// What per-trace data a distinguisher consumes.
enum class TraceDataKind {
  kScalar,   // one summed power sample per trace (trace_batch)
  kSampled,  // num_levels() per-logic-level samples (trace_batch_sampled)
};

/// One shard's worth of traces, as handed to ShardAccumulator::accumulate:
/// `sub_pts` are the attacked instance's sub-plaintexts, `data` holds
/// `count` traces of `width` doubles each (width 1 for kScalar, the
/// target's level count for kSampled). `start` is the canonical campaign
/// index of the first trace — ordered distinguishers (MTD) locate their
/// checkpoints with it.
struct ShardBlock {
  std::size_t start = 0;
  const std::uint8_t* sub_pts = nullptr;
  const double* data = nullptr;
  std::size_t count = 0;
  std::size_t width = 1;
};

class ByteReader;
class ByteWriter;

/// Per-shard accumulation state. accumulate() consumes whole blocks;
/// merge() folds another accumulator of the SAME distinguisher over a
/// later disjoint trace range into this one (for ordered distinguishers,
/// strictly the next range in canonical order).
///
/// save()/load() are the campaign-persistence hooks (io/campaign_state.hpp):
/// save() serializes a RAW (unreduced) shard state bit-exactly; load()
/// overwrites a freshly made_shard_accumulator()'d state with a saved one,
/// throwing InvalidArgument when the blob belongs to a different
/// accumulator type or configuration. Checkpoints store shard states
/// individually — never merged prefixes — so resumed and merged campaigns
/// replay the exact fixed-shape reduction of a local run.
class ShardAccumulator {
 public:
  virtual ~ShardAccumulator() = default;
  virtual void accumulate(const ShardBlock& block) = 0;
  virtual void merge(ShardAccumulator& other) = 0;
  virtual void save(ByteWriter& writer) const = 0;
  virtual void load(ByteReader& reader) = 0;
};

/// The engine's shard-state matrix: states[d][s] is distinguisher d's
/// accumulator for canonical shard s (null while s is uncovered). The
/// shared currency of the campaign driver, checkpoint/resume and the
/// multi-process partial-state merge.
using ShardStates = std::vector<std::vector<std::unique_ptr<ShardAccumulator>>>;

/// An attack the engine can drive through a campaign. Implementations are
/// single-use state machines: run_distinguishers() creates shard
/// accumulators, reduces them, and hands the root to finalize(), after
/// which the typed result() accessor of the concrete class is valid.
/// Re-running overwrites the result.
class Distinguisher {
 public:
  virtual ~Distinguisher() = default;

  virtual TraceDataKind data_kind() const = 0;
  /// The attacked S-box instance (whose sub-plaintexts accumulate() gets).
  virtual std::size_t sbox_index() const = 0;
  /// True for distinguishers whose reduction must be the ordered left
  /// fold over canonical shard order (prefix semantics — MTD); false
  /// selects the fixed-shape binary merge tree.
  virtual bool ordered() const { return false; }
  /// Checks this distinguisher against the campaign's round (selector
  /// range, spec identity). Throws InvalidArgument on mismatch.
  virtual void validate(const RoundSpec& round) const = 0;
  /// Fresh per-shard state; copies of the distinguisher's prototype share
  /// the immutable prediction table, so this is O(guesses).
  virtual std::unique_ptr<ShardAccumulator> make_shard_accumulator()
      const = 0;
  /// Consumes the fully reduced root accumulator.
  virtual void finalize(ShardAccumulator& root) = 0;
};

/// First-order streaming CPA on one subkey (wraps StreamingCpa; the
/// engine's cpa_campaign is this distinguisher alone). Many instances in
/// one run_distinguishers() call attack many subkeys in one pass.
class CpaDistinguisher final : public Distinguisher {
 public:
  CpaDistinguisher(const SboxSpec& spec, const AttackSelector& selector);

  TraceDataKind data_kind() const override { return TraceDataKind::kScalar; }
  std::size_t sbox_index() const override { return selector_.sbox_index; }
  void validate(const RoundSpec& round) const override;
  std::unique_ptr<ShardAccumulator> make_shard_accumulator() const override;
  void finalize(ShardAccumulator& root) override;

  const AttackSelector& selector() const { return selector_; }
  const AttackResult& result() const;

 private:
  SboxSpec spec_;
  AttackSelector selector_;
  StreamingCpa prototype_;
  std::optional<AttackResult> result_;
};

/// Difference-of-means on one predicted output bit (wraps StreamingDom;
/// selector.model is ignored — DoM is inherently the single-bit model).
class DomDistinguisher final : public Distinguisher {
 public:
  DomDistinguisher(const SboxSpec& spec, const AttackSelector& selector);

  TraceDataKind data_kind() const override { return TraceDataKind::kScalar; }
  std::size_t sbox_index() const override { return selector_.sbox_index; }
  void validate(const RoundSpec& round) const override;
  std::unique_ptr<ShardAccumulator> make_shard_accumulator() const override;
  void finalize(ShardAccumulator& root) override;

  const AttackResult& result() const;

 private:
  SboxSpec spec_;
  AttackSelector selector_;
  StreamingDom prototype_;
  std::optional<AttackResult> result_;
};

/// Time-resolved CPA: one correlation column per logic level, best |ρ|
/// over the sample axis per guess (wraps StreamingMultiCpa). `width` must
/// equal the campaign target's num_levels().
class MultiCpaDistinguisher final : public Distinguisher {
 public:
  MultiCpaDistinguisher(const SboxSpec& spec, const AttackSelector& selector,
                        std::size_t width);

  TraceDataKind data_kind() const override { return TraceDataKind::kSampled; }
  std::size_t sbox_index() const override { return selector_.sbox_index; }
  void validate(const RoundSpec& round) const override;
  std::unique_ptr<ShardAccumulator> make_shard_accumulator() const override;
  void finalize(ShardAccumulator& root) override;

  const MultiAttackResult& result() const;

 private:
  SboxSpec spec_;
  AttackSelector selector_;
  StreamingMultiCpa prototype_;
  std::optional<MultiAttackResult> result_;
};

/// Second-order centered-product CPA across logic-level pairs (wraps
/// StreamingSecondOrderCpa) — the stronger distinguisher the ROADMAP
/// queued on top of the multisample campaigns.
class SecondOrderCpaDistinguisher final : public Distinguisher {
 public:
  SecondOrderCpaDistinguisher(const SboxSpec& spec,
                              const AttackSelector& selector);

  TraceDataKind data_kind() const override { return TraceDataKind::kSampled; }
  std::size_t sbox_index() const override { return selector_.sbox_index; }
  void validate(const RoundSpec& round) const override;
  std::unique_ptr<ShardAccumulator> make_shard_accumulator() const override;
  void finalize(ShardAccumulator& root) override;

  const SecondOrderAttackResult& result() const;

 private:
  SboxSpec spec_;
  AttackSelector selector_;
  StreamingSecondOrderCpa prototype_;
  std::optional<SecondOrderAttackResult> result_;
};

/// The measurements-to-disclosure experiment as an ordered distinguisher:
/// shard accumulators snapshot the in-shard checkpoints, the left fold
/// replays ShardedMtd's checkpoint/append sequence in canonical order, so
/// the MTD curve is bit-identical to the sequential StreamingMtd driver.
/// The checkpoint ladder is canonicalized at construction: sorted, unique,
/// restricted to [2, num_traces].
class MtdDistinguisher final : public Distinguisher {
 public:
  MtdDistinguisher(const SboxSpec& spec, const AttackSelector& selector,
                   std::size_t correct_key,
                   const std::vector<std::size_t>& checkpoints,
                   std::size_t num_traces);

  TraceDataKind data_kind() const override { return TraceDataKind::kScalar; }
  std::size_t sbox_index() const override { return selector_.sbox_index; }
  bool ordered() const override { return true; }
  void validate(const RoundSpec& round) const override;
  std::unique_ptr<ShardAccumulator> make_shard_accumulator() const override;
  void finalize(ShardAccumulator& root) override;

  const MtdResult& result() const;

 private:
  SboxSpec spec_;
  AttackSelector selector_;
  std::size_t correct_key_;
  // Shared with every shard accumulator (immutable after construction).
  std::shared_ptr<const std::vector<std::size_t>> ladder_;
  StreamingCpa prototype_;
  std::optional<MtdResult> result_;
};

}  // namespace sable
