// Streaming (one-pass) attack accumulators.
//
// The classic CPA/DoM formulations keep every trace resident and make one
// pass per key guess; at the 10^5–10^7 traces an MTD curve needs, that is
// the memory and time bottleneck of the whole experiment. The accumulators
// here consume traces as they are produced — O(guesses) state, one pass —
// and can be snapshotted at any point, which is exactly what an
// incremental measurements-to-disclosure driver needs.
//
// Numerics: Welford-style online means and co-moments (not raw-moment
// sums), so the scores agree with the two-pass Pearson formulation to
// ~1e-14 even though trace energies sit at ~1e-13 J with ~1e-15 J of
// data-dependent variation.
//
// Two consumption paths: add()/add_batch() is the per-trace Welford
// update (O(num_guesses) per trace), add_block() the block-factored path
// (dpa/block_stats.hpp) — per-plaintext sufficient statistics in one
// O(count) pass, one dense contraction per block, then a pairwise fold.
// The engine's shard pipeline feeds add_block once per shard; the two
// paths agree to ~1e-13.
//
// Every accumulator is copyable (copies share the immutable prediction
// table) and mergeable: merge() folds another accumulator over a disjoint
// trace subset into this one in O(guesses), the primitive under the
// thread-sharded TraceEngine. Merging in a fixed order is deterministic,
// so sharded campaigns are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "dpa/block_stats.hpp"
#include "dpa/hypothesis.hpp"
#include "power/stats.hpp"

namespace sable {

class ByteReader;
class ByteWriter;

// Serialization (io/serial.hpp): every streaming accumulator has a
// versionless tagged save()/load() pair embedded inside the versioned
// campaign-state container (io/campaign_state.hpp). save() emits a type
// tag, the configuration (guess count, model, bit, width) and the moment
// state bit-exactly; load() overwrites the moment state of an accumulator
// ALREADY CONSTRUCTED with the matching spec — the prediction tables are
// rebuilt from the spec, never trusted from disk — and throws
// InvalidArgument when the tag or configuration disagrees (the container
// wraps that into a path-tagged typed error).

/// One-pass correlation power analysis: per key guess a running mean /
/// M2 / co-moment against the shared sample stream.
class StreamingCpa {
 public:
  StreamingCpa(const SboxSpec& spec, PowerModel model, std::size_t bit = 0);

  /// Per-trace compat shims: the historic O(num_guesses)-per-trace
  /// Welford path, kept for incremental feeds (the MTD checkpoint ladder
  /// splits blocks at arbitrary trace counts) and as the reference the
  /// block path is benchmarked against.
  void add(std::uint8_t pt, double sample);
  void add_batch(const std::uint8_t* pts, const double* samples,
                 std::size_t count);

  /// Block-factored hot path (dpa/block_stats.hpp): one O(count)
  /// histogram pass with no guess loop, one G×P contraction against the
  /// prediction table, then a pairwise fold of the block's moments into
  /// the running state. The plaintext range check is hoisted to once per
  /// block. Scores agree with feeding the same traces through add() to
  /// ~1e-13 and are bit-identical across dispatch tiers; one add_block
  /// call per engine shard makes sharded campaigns bit-identical across
  /// thread counts and lane widths.
  void add_block(const std::uint8_t* pts, const double* samples,
                 std::size_t count);

  /// Folds `other` — an accumulator over a disjoint trace subset with the
  /// same spec/model/bit configuration — into this one: flat-array
  /// co-moment merge, O(guesses). The result carries the moments of the
  /// concatenated streams.
  void merge(const StreamingCpa& other);

  std::size_t count() const { return t_.count(); }
  std::size_t num_guesses() const { return num_guesses_; }

  /// Attack scores over the traces consumed so far (|rho| per guess).
  /// Cheap enough to snapshot at every MTD checkpoint.
  AttackResult result() const;

  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);

 private:
  // The shared pairwise-combination step: folds one trace subset's
  // Welford-form moments (a block's converted sufficient statistics, or
  // another accumulator's state — merge() routes through this) into the
  // running state.
  void fold_block(std::size_t count, double mean_t, double m2_t,
                  const double* block_mean_h, const double* block_m2_h,
                  const double* block_c_ht);

  std::size_t num_guesses_;
  std::size_t num_plaintexts_;
  PowerModel model_;
  std::size_t bit_;
  // Immutable and shared between copies: cloning an accumulator for a new
  // campaign shard costs O(guesses), not O(guesses^2) table rebuilding.
  std::shared_ptr<const std::vector<double>>
      predictions_;  // [pt * num_guesses_ + guess]
  OnlineMoments t_;  // shared sample-stream moments
  // Per-guess prediction moments and co-moments, kept as flat arrays (not
  // one OnlineMoments per guess) so the per-trace guess loop stays tight.
  std::vector<double> mean_h_;
  std::vector<double> m2_h_;
  std::vector<double> c_ht_;
  BlockScratch scratch_;  // add_block working set; not logical state
};

/// One-pass difference-of-means DPA on one predicted output bit. The
/// partition sums are accumulated in trace order, so the result is
/// bit-identical to the all-traces-resident formulation.
class StreamingDom {
 public:
  StreamingDom(const SboxSpec& spec, std::size_t bit = 0);

  void add(std::uint8_t pt, double sample);
  void add_batch(const std::uint8_t* pts, const double* samples,
                 std::size_t count);

  /// Block-factored hot path: per-plaintext counts/sums in one pass with
  /// no guess loop, then one partitioned contraction against the
  /// predicted-bit table. Counts are exact; the partition sums differ
  /// from trace-order add() only in addition order (~1e-15 relative).
  void add_block(const std::uint8_t* pts, const double* samples,
                 std::size_t count);

  /// Folds `other` (disjoint traces, same spec/bit) into this one: the
  /// partition sums and counts add exactly.
  void merge(const StreamingDom& other);

  std::size_t count() const { return n_; }
  AttackResult result() const;

  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);

 private:
  std::size_t num_guesses_;
  std::size_t num_plaintexts_;
  std::size_t bit_;
  std::shared_ptr<const std::vector<std::uint8_t>>
      predicted_bit_;  // [pt * num_guesses_ + guess]
  std::size_t n_ = 0;
  std::vector<double> sum_[2];
  std::vector<std::size_t> cnt_[2];
  BlockScratch scratch_;  // add_block working set; not logical state
};

/// One-pass time-resolved CPA: one correlation accumulator per sample
/// column, sharing the per-guess prediction moments (the prediction stream
/// does not depend on the column). O(width * guesses) state.
class StreamingMultiCpa {
 public:
  StreamingMultiCpa(const SboxSpec& spec, PowerModel model, std::size_t width,
                    std::size_t bit = 0);

  void add(std::uint8_t pt, const double* row);

  /// Block-factored hot path over `count` rows of `width()` samples: one
  /// histogram pass building per-plaintext per-level column sums, a
  /// G×P · P×L contraction GEMM, then a per-column pairwise fold — the
  /// time-resolved sibling of StreamingCpa::add_block with the same
  /// accuracy and cross-tier bit-identity guarantees.
  void add_block(const std::uint8_t* pts, const double* rows,
                 std::size_t count);

  std::size_t count() const { return n_; }
  std::size_t width() const { return width_; }

  /// Folds `other` (disjoint traces, same spec/model/width/bit) into this
  /// one: per-column co-moment merge sharing the per-guess prediction
  /// moment merge, O(width * guesses).
  void merge(const StreamingMultiCpa& other);

  MultiAttackResult result() const;

  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);

 private:
  // Shared pairwise-combination step (per-column co-moments first, then
  // the prediction moments, then the column Welford merges — the order
  // merge() always used); merge() routes through this.
  void fold_block(std::size_t count, const double* mean_t,
                  const double* m2_t, const double* block_mean_h,
                  const double* block_m2_h, const double* block_c_ht);

  std::size_t num_guesses_;
  std::size_t num_plaintexts_;
  std::size_t width_;
  PowerModel model_;
  std::size_t bit_;
  std::shared_ptr<const std::vector<double>>
      predictions_;  // [pt * num_guesses_ + guess]
  std::size_t n_ = 0;
  std::vector<double> mean_h_;       // per guess (shared across columns)
  std::vector<double> m2_h_;
  std::vector<OnlineMoments> t_;     // per column
  std::vector<double> c_ht_;         // [column * num_guesses_ + guess]
  std::vector<double> dt_;           // per-column scratch
  BlockScratch scratch_;             // add_block working set
};

}  // namespace sable
