// Circuit construction from expressions.
//
// build_from_expressions maps each output expression to a tree of 2-input
// differential gates (AND2 / OR2), sharing one cell master per
// (function, variant) pair. Complemented sub-expressions are free (rail
// swaps), so the NNF tree maps directly: literals become (possibly negated)
// signal references, AND/OR nodes become gates.
#pragma once

#include <vector>

#include "cell/circuit.hpp"

namespace sable {

/// Builds a multi-output circuit over `num_inputs` primary inputs. Each
/// expression becomes one circuit output (in order).
GateCircuit build_from_expressions(const std::vector<ExprPtr>& outputs,
                                   std::size_t num_inputs,
                                   NetworkVariant variant,
                                   const Technology& tech);

/// Builds a single-gate circuit: the whole function in one complex gate
/// (monolithic DPDN), the SABL-style alternative to the gate tree.
GateCircuit build_single_gate(const ExprPtr& function, std::size_t num_inputs,
                              NetworkVariant variant, const Technology& tech);

}  // namespace sable
