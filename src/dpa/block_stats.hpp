// Block-factored sufficient statistics for the streaming distinguishers.
//
// The per-trace accumulators (dpa/streaming.hpp) historically did
// O(num_guesses) Welford work per trace — a dependent divide plus a
// 2^in_bits guess loop for every sample. But a ShardBlock's contribution
// to every per-guess moment factors through a tiny per-plaintext
// histogram: the prediction h[pt][g] only depends on the plaintext, so
//
//   Σ_i h[pt_i][g]          = Σ_p n_p · h[p][g]
//   Σ_i h[pt_i][g]·x_i      = Σ_p S_p · h[p][g]      (S_p = Σ_{i: pt_i=p} x_i)
//
// One O(count) histogram pass with no guess loop, then one dense
// contraction against the shared prediction table per block — a G×P GEMV
// for scalar CPA, a G×P · P×L GEMM for time-resolved CPA, partitioned
// counts/sums for DoM. The kernels below are those two stages.
//
// Numerics: samples are accumulated relative to a caller-chosen shift
// (the block's first sample) so the per-plaintext sums carry the
// ~1e-15 J data-dependent variation instead of the ~1e-13 J energy
// offset; co-moments are shift-invariant and the accumulators convert
// the block sums back to Welford form before folding them in (see
// streaming.cpp), which keeps the scores within ~1e-13 of the per-trace
// formulation.
//
// Determinism: every kernel fixes the floating-point summation order per
// output element — histogram passes accumulate sequentially in trace
// order, contractions keep the plaintext loop outermost so each output
// element's addition chain is identical no matter how wide the vector
// unit is — and uses plain mul+add (never FMA; the build pins
// -ffp-contract=off), so all dispatch tiers produce bit-identical
// results. Block boundaries are the engine's fixed shard layout, making
// the block-factored scores bit-identical across num_threads ×
// lane_width × dispatch tiers.
//
// Dispatch follows the PR 7 transpose pattern: the bodies live in
// block_stats_impl.hpp templated on a tier index (the parameter only
// mints one symbol per tier), the portable instantiations compile in
// block_stats.cpp, and the AVX2/AVX-512 instantiations compile inside
// the #pragma GCC target regions of the existing per-ISA TUs under
// src/simd/ — selected once per block via block_stat_kernels(tier).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/cpu_dispatch.hpp"
#include "util/lane_word.hpp"

namespace sable {

namespace detail {

// Histogram slots are always kBlockPts (the full uint8_t range), not
// num_plaintexts: any sub-plaintext byte lands in a valid slot, so the
// per-trace range check hoists out of the hot loop — the accumulator
// validates once per block that slots at and beyond num_plaintexts
// stayed empty.
inline constexpr std::size_t kBlockPts = 256;

/// Scalar histogram pass: zeroes counts[256]/sums[256], then for every
/// trace i adds 1 to counts[pts[i]] and (samples[i] - shift) to
/// sums[pts[i]], and accumulates Σ (samples[i] - shift)² into *sum_sq —
/// all sequentially in trace order.
template <int kTier>
void block_histogram_scalar(const std::uint8_t* pts, const double* samples,
                            std::size_t count, double shift,
                            std::uint64_t* counts, double* sums,
                            double* sum_sq);

/// Sampled-row histogram pass: counts as above; sums is [pt*width + l]
/// accumulating (row[l] - shifts[l]); sum_sq[l] gets the per-column
/// Σ (row[l] - shifts[l])². Column accumulators are independent, so the
/// inner level loop vectorizes without reordering any addition chain.
template <int kTier>
void block_histogram_sampled(const std::uint8_t* pts, const double* rows,
                             std::size_t count, std::size_t width,
                             const double* shifts, std::uint64_t* counts,
                             double* sums, double* sum_sq);

/// Count contraction: sum_h[g] = Σ_p counts[p]·pred[p*G+g] and
/// sum_h2[g] = Σ_p counts[p]·pred[p*G+g]², zeroing the outputs first.
/// The per-guess prediction moments of the whole block, as one GEMV.
template <int kTier>
void block_contract_counts(const double* pred, const std::uint64_t* counts,
                           std::size_t num_pts, std::size_t num_guesses,
                           double* sum_h, double* sum_h2);

/// Sum contraction (the co-moment GEMM): r[l*G+g] = Σ_p sums[p*width+l]
/// · pred[p*G+g], zeroing r first; scalar CPA is the width-1 case.
/// Plaintext rows with zero count are skipped (their sums are exact
/// zeros), which keeps the cost O(min(count, P) · width · G).
template <int kTier>
void block_contract_sums(const double* pred, const double* sums,
                         const std::uint64_t* counts, std::size_t num_pts,
                         std::size_t width, std::size_t num_guesses,
                         double* r);

/// DoM contraction: partitions the block's per-plaintext counts/sums by
/// the predicted bit, accumulating both partitions directly (branchless
/// 0/1 weights, no end-of-loop subtraction). Outputs are zeroed first.
template <int kTier>
void block_contract_dom(const std::uint8_t* pred_bit,
                        const std::uint64_t* counts, const double* sums,
                        std::size_t num_pts, std::size_t num_guesses,
                        double* sum0, double* sum1, std::uint64_t* cnt0,
                        std::uint64_t* cnt1);

// The AVX2/AVX-512 instantiations live in src/simd/kernels_avx2.cpp and
// kernels_avx512.cpp (explicit instantiations inside their #pragma GCC
// target regions); these declarations stop every other TU from minting
// portable-codegen copies of the same symbols.
#define SABLE_DECLARE_BLOCK_STATS(TIER)                                       \
  extern template void block_histogram_scalar<TIER>(                          \
      const std::uint8_t*, const double*, std::size_t, double,                \
      std::uint64_t*, double*, double*);                                      \
  extern template void block_histogram_sampled<TIER>(                         \
      const std::uint8_t*, const double*, std::size_t, std::size_t,           \
      const double*, std::uint64_t*, double*, double*);                       \
  extern template void block_contract_counts<TIER>(                           \
      const double*, const std::uint64_t*, std::size_t, std::size_t,          \
      double*, double*);                                                      \
  extern template void block_contract_sums<TIER>(                             \
      const double*, const double*, const std::uint64_t*, std::size_t,        \
      std::size_t, std::size_t, double*);                                     \
  extern template void block_contract_dom<TIER>(                              \
      const std::uint8_t*, const std::uint64_t*, const double*, std::size_t,  \
      std::size_t, double*, double*, std::uint64_t*, std::uint64_t*);

SABLE_DECLARE_BLOCK_STATS(0)
#if SABLE_HAVE_WORD256
SABLE_DECLARE_BLOCK_STATS(1)
#endif
#if SABLE_HAVE_WORD512
SABLE_DECLARE_BLOCK_STATS(2)
#endif

}  // namespace detail

/// The block-statistics kernel set of one dispatch tier, resolved once
/// per block (the tier probe stays off the per-trace path).
struct BlockStatKernels {
  void (*histogram_scalar)(const std::uint8_t*, const double*, std::size_t,
                           double, std::uint64_t*, double*, double*);
  void (*histogram_sampled)(const std::uint8_t*, const double*, std::size_t,
                            std::size_t, const double*, std::uint64_t*,
                            double*, double*);
  void (*contract_counts)(const double*, const std::uint64_t*, std::size_t,
                          std::size_t, double*, double*);
  void (*contract_sums)(const double*, const double*, const std::uint64_t*,
                        std::size_t, std::size_t, std::size_t, double*);
  void (*contract_dom)(const std::uint8_t*, const std::uint64_t*,
                       const double*, std::size_t, std::size_t, double*,
                       double*, std::uint64_t*, std::uint64_t*);
};

/// Widest kernel set the given tier may execute (every body computes
/// bit-identical results; the tiers differ only in vector width).
const BlockStatKernels& block_stat_kernels(DispatchTier tier);

/// Per-accumulator scratch for the block passes, reused across blocks so
/// the steady state never allocates. Not part of the accumulator's
/// logical state: never serialized, never merged.
struct BlockScratch {
  std::vector<std::uint64_t> counts;  // [kBlockPts]
  std::vector<double> sums;           // [kBlockPts * width]
  std::vector<double> shifts;         // [width]
  std::vector<double> sum_sq;         // [width]
  std::vector<double> sum_h;          // [num_guesses]  (DoM: sum0)
  std::vector<double> sum_h2;         // [num_guesses]  (DoM: sum1)
  std::vector<std::uint64_t> cnt0;    // [num_guesses]  (DoM partitions)
  std::vector<std::uint64_t> cnt1;    // [num_guesses]
  std::vector<double> r;              // [width * num_guesses]
  std::vector<double> col_sum;        // [width]
  std::vector<double> col_mean;       // [width]
  std::vector<double> col_m2;         // [width]

  void resize(std::size_t width, std::size_t num_guesses) {
    counts.resize(detail::kBlockPts);
    sums.resize(detail::kBlockPts * width);
    shifts.resize(width);
    sum_sq.resize(width);
    sum_h.resize(num_guesses);
    sum_h2.resize(num_guesses);
    cnt0.resize(num_guesses);
    cnt1.resize(num_guesses);
    r.resize(width * num_guesses);
    col_sum.resize(width);
    col_mean.resize(width);
    col_m2.resize(width);
  }
};

}  // namespace sable
