// Tests for the technology module: parameter sanity, capacitance
// extraction identities, and sizing rules.
#include <gtest/gtest.h>

#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "tech/capacitance.hpp"
#include "tech/sizing.hpp"

namespace sable {
namespace {

TEST(TechnologyTest, ReferenceProcessSanity) {
  const Technology tech = Technology::generic_180nm();
  EXPECT_GT(tech.vdd, 1.0);
  EXPECT_LT(tech.vdd, 3.0);
  EXPECT_GT(tech.nmos.vt0, 0.0);
  EXPECT_LT(tech.pmos.vt0, 0.0);
  EXPECT_GT(tech.nmos.kp, tech.pmos.kp);  // electron vs hole mobility
  EXPECT_GT(tech.min_length, 0.0);
}

TEST(TechnologyTest, DefaultSizingIsOrdered) {
  const Technology tech = Technology::generic_180nm();
  const SizingPlan plan = SizingPlan::defaults(tech);
  EXPECT_EQ(plan.length, tech.min_length);
  // The foot must sink the whole DPDN current; the bridge only equalizes.
  EXPECT_GT(plan.foot_width, plan.dpdn_width);
  EXPECT_LT(plan.bridge_width, plan.dpdn_width);
  EXPECT_GT(plan.output_load, 0.0);
}

TEST(CapacitanceTest, NodeCapsScaleWithAttachedDevices) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B.C", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 3);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  const auto caps = dpdn_node_capacitances(net, tech, sizing);
  const auto adjacency = net.adjacency();
  // Exactly wire cap plus one junction term per attached device terminal.
  const double per_terminal =
      (tech.nmos.cj_per_width + tech.nmos.cov_per_width) * sizing.dpdn_width;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    const double expected =
        tech.wire_cap_per_node +
        per_terminal * static_cast<double>(adjacency[n].size());
    EXPECT_NEAR(caps[n], expected, 1e-21) << "node " << n;
  }
}

TEST(CapacitanceTest, TotalInternalExcludesExternals) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  const auto caps = dpdn_node_capacitances(net, tech, sizing);
  const double total = total_internal_capacitance(net, tech, sizing);
  EXPECT_NEAR(total, caps[3], 1e-21);  // only node W is internal
}

TEST(CapacitanceTest, InputLoadBalancedAcrossPolarities) {
  // For the FC AND-NAND both polarities of each input drive one device.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  for (VarId v = 0; v < 2; ++v) {
    EXPECT_DOUBLE_EQ(input_capacitance(net, tech, sizing, v, true),
                     input_capacitance(net, tech, sizing, v, false));
  }
}

TEST(CapacitanceTest, EnhancementIncreasesInputLoad) {
  // The §5 dummy devices load the input rails: the pass gate on A adds a
  // device to each polarity of A.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const DpdnNetwork enhanced = synthesize_enhanced_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  EXPECT_GT(input_capacitance(enhanced, tech, sizing, 0, true),
            input_capacitance(fc, tech, sizing, 0, true));
}

TEST(SizingTest, WidthScalesWithStackDepth) {
  // Any n-input differential network has an n-deep series side (one branch
  // is always the dual chain), so stack-aware sizing scales with the input
  // count, not with the function shape.
  VarTable vars;
  const Technology tech = Technology::generic_180nm();
  const ExprPtr two = parse_expression("A.B", vars);
  const ExprPtr four = parse_expression("A.B.C.D", vars);
  const SizingPlan two_plan =
      size_for_network(synthesize_fc_dpdn(two, 2), tech);
  const SizingPlan four_plan =
      size_for_network(synthesize_fc_dpdn(four, 4), tech);
  EXPECT_GT(four_plan.dpdn_width, two_plan.dpdn_width);
  EXPECT_NEAR(four_plan.dpdn_width / two_plan.dpdn_width, 2.0, 1e-9);
}

}  // namespace
}  // namespace sable
