#include "cell/wddl.hpp"

#include "expr/truth_table.hpp"

namespace sable {

WddlCircuitSim::WddlCircuitSim(const GateCircuit& circuit,
                               const Technology& tech, double mismatch,
                               std::uint64_t seed)
    : circuit_(circuit), vdd_(tech.vdd) {
  Rng rng(seed);
  models_.reserve(circuit.gates().size());
  // Nominal rail load: one standard-cell output (junctions + fanout wire).
  const double nominal = 6e-15;
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    // Symmetric deterministic imbalance around the nominal value.
    const double delta = mismatch * (2.0 * rng.uniform() - 1.0);
    models_.push_back(WddlGateModel{nominal * (1.0 + delta),
                                    nominal * (1.0 - delta)});
  }
}

CycleResult WddlCircuitSim::cycle(std::uint64_t input_bits) {
  // Evaluate gate values (same functional semantics as the differential
  // simulator: WDDL pairs compute the same function).
  std::vector<bool> value(circuit_.gates().size(), false);
  auto resolve = [&](const SignalRef& ref) {
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : value[ref.index];
    return raw == ref.positive;
  };
  CycleResult result;
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    const GateInstance& inst = circuit_.gates()[g];
    const Cell& cell = circuit_.cells()[inst.cell_index];
    std::uint64_t assignment = 0;
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      if (resolve(inst.inputs[k])) assignment |= std::uint64_t{1} << k;
    }
    value[g] = evaluate(cell.function, assignment);
    // Exactly one rail rises from the precharge wave and is charged.
    const double c = value[g] ? models_[g].c_true : models_[g].c_false;
    result.energy += c * vdd_ * vdd_;
  }
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    const SignalRef& ref = circuit_.outputs()[i];
    if (resolve(ref)) result.outputs |= std::uint64_t{1} << i;
  }
  return result;
}

}  // namespace sable
