// Campaign persistence: accumulator serialization round trips, recorded
// corpora, replay and multi-process partial-state merges — and the
// hostile-input contract: every malformed file throws a typed
// path-tagged error, never UB.
//
// The bit-identity claims under test are the subsystem's reason to
// exist: a recorded campaign replayed into any distinguisher, and a
// campaign split over disjoint shard ranges and merged from partial
// state files, must reproduce the single-process in-memory run bit for
// bit. Shard counts here are non-powers-of-two on purpose — that is the
// regime where storing merged prefixes instead of raw shard states
// would silently change the reduction tree's shape.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "crypto/round_target.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "dpa/distinguisher.hpp"
#include "dpa/mtd.hpp"
#include "dpa/second_order.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "io/campaign_state.hpp"
#include "io/corpus.hpp"
#include "io/manifest.hpp"
#include "io/replay.hpp"
#include "io/serial.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

// Content fingerprint of tests/data/golden_v1.sablcorp (see
// tests/data/README.md for the generation recipe). Trace simulation is
// bit-identical across dispatch tiers, so this value is
// machine-independent. The golden_v2_*.sablcorp fixtures record the
// SAME campaign and the fingerprint hashes decoded traces, so they
// share this value — codec-invariance is part of what the goldens pin.
constexpr std::uint64_t kGoldenV1Fingerprint = 0x4da603cdc3c1c754ull;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "campaign_io_" + name;
}

// 3000 traces over 448-trace shards = 7 shards with a partial tail: a
// non-power-of-2 count, one ragged shard — the reduction-shape stress
// layout the determinism tests already pin.
CampaignOptions small_options() {
  CampaignOptions options;
  options.num_traces = 3000;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 448;
  return options;
}

void expect_same_scores(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[g]),
              std::bit_cast<std::uint64_t>(b[g]))
        << "guess " << g;
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Deterministic sub-plaintext / sample streams for accumulator-level
// round trips (no engine involved).
template <typename Feed>
void feed_traces(std::size_t count, const Feed& feed) {
  Rng rng(0xF00D);
  for (std::size_t i = 0; i < count; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    feed(pt, rng);
  }
}

// ---- accumulator serialization --------------------------------------------

TEST(CampaignIoTest, StreamingCpaRoundTripsBitExactly) {
  StreamingCpa original(present_spec(), PowerModel::kHammingWeight);
  feed_traces(257, [&](std::uint8_t pt, Rng& rng) {
    original.add(pt, 1e-13 * rng.uniform());
  });
  ByteWriter writer;
  original.save(writer);

  StreamingCpa loaded(present_spec(), PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_EQ(loaded.count(), original.count());
  expect_same_scores(loaded.result().score, original.result().score);

  // Re-serialization is byte-identical — the round trip loses nothing.
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, StreamingDomRoundTripsBitExactly) {
  StreamingDom original(present_spec(), 2);
  feed_traces(300, [&](std::uint8_t pt, Rng& rng) {
    original.add(pt, 1e-13 * rng.uniform());
  });
  ByteWriter writer;
  original.save(writer);
  StreamingDom loaded(present_spec(), 2);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().score, original.result().score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, StreamingMultiCpaRoundTripsBitExactly) {
  constexpr std::size_t kWidth = 3;
  StreamingMultiCpa original(present_spec(), PowerModel::kHammingWeight,
                             kWidth);
  feed_traces(211, [&](std::uint8_t pt, Rng& rng) {
    double row[kWidth];
    for (double& x : row) x = 1e-13 * rng.uniform();
    original.add(pt, row);
  });
  ByteWriter writer;
  original.save(writer);
  StreamingMultiCpa loaded(present_spec(), PowerModel::kHammingWeight,
                           kWidth);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().combined.score,
                     original.result().combined.score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, SecondOrderCpaRoundTripsBitExactly) {
  constexpr std::size_t kWidth = 4;
  StreamingSecondOrderCpa original(present_spec(),
                                   PowerModel::kHammingWeight);
  std::vector<std::uint8_t> pts(128);
  std::vector<double> rows(pts.size() * kWidth);
  Rng rng(0xF00D);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    pts[i] = static_cast<std::uint8_t>(rng.below(16));
    for (std::size_t w = 0; w < kWidth; ++w) {
      rows[i * kWidth + w] = 1e-13 * rng.uniform();
    }
  }
  original.add_block(pts.data(), rows.data(), pts.size(), kWidth);
  ByteWriter writer;
  original.save(writer);
  StreamingSecondOrderCpa loaded(present_spec(),
                                 PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  expect_same_scores(loaded.result().combined.score,
                     original.result().combined.score);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, NeverFedSecondOrderRoundTripsAsWidthZero) {
  StreamingSecondOrderCpa original(present_spec(),
                                   PowerModel::kHammingWeight);
  ByteWriter writer;
  original.save(writer);
  StreamingSecondOrderCpa loaded(present_spec(),
                                 PowerModel::kHammingWeight);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader);
  EXPECT_EQ(loaded.count(), 0u);
}

TEST(CampaignIoTest, ShardedMtdRoundTripsBitExactly) {
  const StreamingCpa prototype(present_spec(), PowerModel::kHammingWeight);
  ShardedMtd original(0xB);
  StreamingCpa shard(prototype);
  feed_traces(200, [&](std::uint8_t pt, Rng& rng) {
    shard.add(pt, 1e-13 * rng.uniform());
  });
  original.checkpoint(64, shard);  // pre-append in-shard checkpoint
  original.append(shard);
  ByteWriter writer;
  original.save(writer);
  ShardedMtd loaded(0xB);
  ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
  loaded.load(reader, prototype);
  EXPECT_EQ(loaded.count(), original.count());
  EXPECT_EQ(loaded.result().rank_history, original.result().rank_history);
  ByteWriter again;
  loaded.save(again);
  EXPECT_EQ(again.buffer(), writer.buffer());
}

TEST(CampaignIoTest, AccumulatorLoadRejectsWrongTypeAndConfig) {
  StreamingCpa cpa(present_spec(), PowerModel::kHammingWeight);
  ByteWriter writer;
  cpa.save(writer);
  // Wrong accumulator type behind the tag.
  {
    StreamingDom dom(present_spec(), 0);
    ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
    EXPECT_THROW(dom.load(reader), InvalidArgument);
  }
  // Same type, different configuration (model changes the prediction
  // table the moments were accumulated against).
  {
    StreamingCpa other(present_spec(), PowerModel::kSboxOutputBit, 1);
    ByteReader reader(writer.buffer().data(), writer.buffer().size(), "mem");
    EXPECT_THROW(other.load(reader), InvalidArgument);
  }
}

TEST(CampaignIoTest, RoundSpecHashSeparatesFunctionallyDifferentRounds) {
  const RoundSpec a = present_round(2, LogicStyle::kSablGenuine);
  const RoundSpec b = present_round(2, LogicStyle::kSablGenuine);
  EXPECT_EQ(round_spec_hash(a), round_spec_hash(b));
  EXPECT_NE(round_spec_hash(a),
            round_spec_hash(present_round(2, LogicStyle::kStaticCmos)));
  EXPECT_NE(round_spec_hash(a),
            round_spec_hash(present_round(3, LogicStyle::kSablGenuine)));
  RoundSpec tweaked = a;
  std::swap(tweaked.sboxes[0].table[0], tweaked.sboxes[0].table[1]);
  EXPECT_NE(round_spec_hash(a), round_spec_hash(tweaked));
}

// ---- recorded corpora ------------------------------------------------------

TEST(CampaignIoTest, ScalarCorpusReplaysBitIdentically) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  const std::size_t subkey = options.key[0];
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  // Reference: the plain in-memory campaign.
  CpaDistinguisher ref_cpa(engine.spec(), selector);
  DomDistinguisher ref_dom(
      engine.spec(), AttackSelector{.model = PowerModel::kHammingWeight,
                                    .bit = 1});
  MtdDistinguisher ref_mtd(engine.spec(), selector, subkey,
                           default_checkpoints(options.num_traces),
                           options.num_traces);
  Distinguisher* const ref_list[] = {&ref_cpa, &ref_dom, &ref_mtd};
  engine.run_distinguishers(options, ref_list);

  const std::string path = temp_path("scalar.corpus");
  engine.record(options, TraceDataKind::kScalar, path);
  const CorpusReader corpus(path);
  EXPECT_EQ(corpus.num_shards(), 7u);
  EXPECT_EQ(corpus.manifest().campaign, engine.campaign_manifest(options));
  EXPECT_EQ(corpus.shard_count(6), 3000u - 6 * 448u);
  EXPECT_THROW(corpus.shard_count(7), ShardIndexError);

  CpaDistinguisher cpa(engine.spec(), selector);
  DomDistinguisher dom(
      engine.spec(), AttackSelector{.model = PowerModel::kHammingWeight,
                                    .bit = 1});
  MtdDistinguisher mtd(engine.spec(), selector, subkey,
                       default_checkpoints(options.num_traces),
                       options.num_traces);
  Distinguisher* const list[] = {&cpa, &dom, &mtd};
  EXPECT_TRUE(engine.replay(corpus, list));
  expect_same_scores(cpa.result().score, ref_cpa.result().score);
  expect_same_scores(dom.result().score, ref_dom.result().score);
  EXPECT_EQ(mtd.result().rank_history, ref_mtd.result().rank_history);

  // The free replay_distinguishers entry point (no engine) agrees too.
  CpaDistinguisher cpa2(engine.spec(), selector);
  Distinguisher* const solo[] = {&cpa2};
  EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), solo));
  expect_same_scores(cpa2.result().score, ref_cpa.result().score);
}

TEST(CampaignIoTest, SampledCorpusReplaysBitIdentically) {
  TraceEngine engine(present_spec(), LogicStyle::kSablGenuine, kTech);
  CampaignOptions options = small_options();
  options.num_traces = 1500;  // 4 shards: keep the sampled corpus small
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const std::size_t levels = engine.target().num_levels();
  ASSERT_GE(levels, 2u);

  MultiCpaDistinguisher ref_multi(engine.spec(), selector, levels);
  SecondOrderCpaDistinguisher ref_so(engine.spec(), selector);
  Distinguisher* const ref_list[] = {&ref_multi, &ref_so};
  engine.run_distinguishers(options, ref_list);

  const std::string path = temp_path("sampled.corpus");
  engine.record(options, TraceDataKind::kSampled, path);
  const CorpusReader corpus(path);
  EXPECT_EQ(corpus.manifest().kind, kCorpusKindSampled);
  EXPECT_EQ(corpus.manifest().sample_width, levels);

  MultiCpaDistinguisher multi(engine.spec(), selector, levels);
  SecondOrderCpaDistinguisher so(engine.spec(), selector);
  Distinguisher* const list[] = {&multi, &so};
  EXPECT_TRUE(engine.replay(corpus, list));
  expect_same_scores(multi.result().combined.score,
                     ref_multi.result().combined.score);
  expect_same_scores(so.result().combined.score,
                     ref_so.result().combined.score);
}

TEST(CampaignIoTest, ReplayRejectsKindAndSpecMismatch) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  const std::string path = temp_path("kind.corpus");
  engine.record(options, TraceDataKind::kScalar, path);
  const CorpusReader corpus(path);

  // A scalar corpus cannot feed a time-resolved distinguisher.
  MultiCpaDistinguisher multi(engine.spec(),
                              AttackSelector{.model =
                                                 PowerModel::kHammingWeight},
                              2);
  Distinguisher* const sampled_list[] = {&multi};
  EXPECT_THROW(engine.replay(corpus, sampled_list), InvalidArgument);

  // A different round spec (same S-box, different logic style) is a
  // different campaign: the spec hash mismatch is typed and path-tagged.
  TraceEngine other(present_spec(), LogicStyle::kSablGenuine, kTech);
  CpaDistinguisher cpa(other.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  EXPECT_THROW(other.replay(corpus, list), ManifestMismatchError);
}

// ---- checkpointing and multi-process merge --------------------------------

TEST(CampaignIoTest, SplitShardRangeMergeIsBitIdenticalToSingleRun) {
  const CampaignOptions options = small_options();  // 7 shards
  const std::size_t subkey = options.key[0];
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  // Guaranteed copy elision: members are direct-initialized from the
  // prvalues, so the (non-movable) distinguishers never relocate.
  struct AttackSet {
    CpaDistinguisher cpa;
    DomDistinguisher dom;
    MtdDistinguisher mtd;
  };
  const auto make = [&](TraceEngine& engine) {
    return AttackSet{
        CpaDistinguisher(engine.spec(), selector),
        DomDistinguisher(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight}),
        MtdDistinguisher(engine.spec(), selector, subkey,
                         default_checkpoints(options.num_traces),
                         options.num_traces)};
  };

  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet ref = make(engine);
  Distinguisher* const ref_list[] = {&ref.cpa, &ref.dom, &ref.mtd};
  engine.run_distinguishers(options, ref_list);

  // Three "processes" over disjoint ranges (7 = 3 + 2 + 2 shards), each
  // persisting a partial state file.
  const std::vector<std::pair<std::size_t, std::size_t>> ranges = {
      {0, 3}, {3, 5}, {5, kAllShards}};
  std::vector<std::string> partials;
  for (std::size_t k = 0; k < ranges.size(); ++k) {
    TraceEngine worker(present_spec(), LogicStyle::kStaticCmos, kTech);
    AttackSet set = make(worker);
    Distinguisher* const list[] = {&set.cpa, &set.dom, &set.mtd};
    CampaignPersistence persist;
    persist.shard_begin = ranges[k].first;
    persist.shard_end = ranges[k].second;
    persist.checkpoint_path = temp_path("partial" + std::to_string(k));
    EXPECT_FALSE(worker.run_distinguishers(options, list, persist));
    partials.push_back(persist.checkpoint_path);
  }

  TraceEngine merger(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet merged = make(merger);
  Distinguisher* const list[] = {&merged.cpa, &merged.dom, &merged.mtd};
  merger.merge_partials(options, list, partials);
  expect_same_scores(merged.cpa.result().score, ref.cpa.result().score);
  expect_same_scores(merged.dom.result().score, ref.dom.result().score);
  EXPECT_EQ(merged.mtd.result().rank_history, ref.mtd.result().rank_history);

  // Overlapping partials name the colliding shard.
  TraceEngine overlap(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set2 = make(overlap);
  Distinguisher* const list2[] = {&set2.cpa, &set2.dom, &set2.mtd};
  EXPECT_THROW(
      overlap.merge_partials(options, list2, {partials[0], partials[0]}),
      ShardIndexError);

  // A gap (missing range) cannot finalize.
  TraceEngine gappy(present_spec(), LogicStyle::kStaticCmos, kTech);
  AttackSet set3 = make(gappy);
  Distinguisher* const list3[] = {&set3.cpa, &set3.dom, &set3.mtd};
  EXPECT_THROW(
      gappy.merge_partials(options, list3, {partials[0], partials[2]}),
      InvalidArgument);
}

TEST(CampaignIoTest, PartialRangeWithoutCheckpointPathThrows) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  CpaDistinguisher cpa(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  CampaignPersistence persist;
  persist.shard_end = 3;  // partial, but nowhere to persist the states
  EXPECT_THROW(engine.run_distinguishers(options, list, persist),
               InvalidArgument);
}

// ---- hostile inputs --------------------------------------------------------

class HostileInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    options_ = small_options();
    corpus_path_ = temp_path("hostile.corpus");
    engine.record(options_, TraceDataKind::kScalar, corpus_path_);
    // The same campaign in the legacy raw format: every hostile sweep
    // below runs over BOTH containers, so the v1 parser keeps its typed
    // rejection contract alongside the compressed v2 decode path.
    v1_path_ = temp_path("hostile_v1.corpus");
    engine.record(options_, TraceDataKind::kScalar, v1_path_,
                  kCorpusCompressionNone, kCorpusVersion1);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    CampaignPersistence persist;
    persist.checkpoint_path = state_path_ = temp_path("hostile.state");
    EXPECT_TRUE(engine.run_distinguishers(options_, list, persist));
  }

  // Loading the artifact at `path` must fail with a typed io error.
  void expect_corpus_error(const std::string& path) {
    EXPECT_THROW(CorpusReader reader(path), IoError) << path;
  }
  void expect_state_error(const std::string& path) {
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    EXPECT_THROW(engine.merge_partials(options_, list, {path}), Error)
        << path;
  }

  CampaignOptions options_;
  std::string corpus_path_;  // current format: v2, delta+plane+RLE
  std::string v1_path_;      // legacy format: v1, raw chunks
  std::string state_path_;
};

TEST_F(HostileInputTest, WrongMagicAndVersionThrowTyped) {
  auto corpus = read_file(corpus_path_);
  auto bad = corpus;
  bad[0] ^= 0xFF;
  const std::string p1 = temp_path("bad_magic.corpus");
  write_bytes(p1, bad);
  EXPECT_THROW(CorpusReader r(p1), BadFileError);

  bad = corpus;
  bad[8] = 0x7F;  // version field
  const std::string p2 = temp_path("bad_version.corpus");
  write_bytes(p2, bad);
  EXPECT_THROW(CorpusReader r(p2), BadFileError);

  auto state = read_file(state_path_);
  state[1] ^= 0xFF;
  const std::string p3 = temp_path("bad_magic.state");
  write_bytes(p3, state);
  expect_state_error(p3);
}

TEST_F(HostileInputTest, ShardIndexOutOfBoundsThrows) {
  // The shard index lives right after the fixed header; smash the first
  // entry's offset to point far past EOF. The header is magic + version
  // + kind (+ the v2 compression tag) + manifest (6 u64 + f64 + 1 key
  // byte) + pt_stride + sample_width, padded to 8 — with a 1-byte key
  // both versions land on the same 96-byte boundary.
  for (const bool v2 : {true, false}) {
    auto corpus = read_file(v2 ? corpus_path_ : v1_path_);
    const std::size_t header =
        8 + 4 + 4 + (v2 ? 4u : 0u) + (7 * 8 + 1) + 8 + 8;
    const std::size_t index = (header + 7) / 8 * 8;
    ASSERT_EQ(index, 96u);
    ASSERT_LT(index + 8, corpus.size());
    for (std::size_t b = 0; b < 8; ++b) corpus[index + b] = 0xFF;
    const std::string p = temp_path("bad_index.corpus");
    write_bytes(p, corpus);
    EXPECT_THROW(CorpusReader r(p), ShardIndexError) << "v2=" << v2;
  }
}

TEST_F(HostileInputTest, ManifestMismatchNamesTheCampaign) {
  // The recorded artifacts belong to seed 0x5EED; a campaign with any
  // other seed must refuse them.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions other = options_;
  other.seed = 0xD1FF;
  CpaDistinguisher cpa(engine.spec(),
                       AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&cpa};
  EXPECT_THROW(engine.merge_partials(other, list, {state_path_}),
               ManifestMismatchError);

  const CorpusReader corpus(corpus_path_);
  CampaignPersistence resume;
  resume.resume_path = state_path_;
  // Resume path cross-checks the state's manifest against the corpus
  // campaign — same campaign here, so this succeeds...
  CpaDistinguisher cpa2(engine.spec(),
                        AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list2[] = {&cpa2};
  EXPECT_TRUE(engine.replay(corpus, list2, resume));
  // ...and the state written for ONE distinguisher refuses a different
  // distinguisher count.
  CpaDistinguisher a(engine.spec(),
                     AttackSelector{.model = PowerModel::kHammingWeight});
  DomDistinguisher b(engine.spec(),
                     AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const two[] = {&a, &b};
  EXPECT_THROW(engine.merge_partials(options_, two, {state_path_}),
               BadFileError);
}

TEST_F(HostileInputTest, TruncationSweepAlwaysThrowsTyped) {
  const auto state = read_file(state_path_);
  // Every strict prefix must throw a typed error — never crash, never
  // succeed (all formats pin their full extent up front). Compressed v2
  // chunks additionally pin their stored sizes in the index, so a
  // truncated chunk is caught at open, before any decode runs.
  for (const std::string* src : {&corpus_path_, &v1_path_}) {
    const auto corpus = read_file(*src);
    for (std::size_t len = 0; len < corpus.size();
         len += 1 + corpus.size() / 97) {
      const std::string p = temp_path("trunc.corpus");
      write_bytes(p, {corpus.begin(), corpus.begin() +
                                          static_cast<std::ptrdiff_t>(len)});
      expect_corpus_error(p);
    }
  }
  for (std::size_t len = 0; len < state.size();
       len += 1 + state.size() / 97) {
    const std::string p = temp_path("trunc.state");
    write_bytes(p, {state.begin(), state.begin() +
                                       static_cast<std::ptrdiff_t>(len)});
    expect_state_error(p);
  }
}

TEST_F(HostileInputTest, ByteFlipFuzzNeverEscapesTypedErrors) {
  const auto state = read_file(state_path_);
  Rng rng(0xFA22);
  for (const std::string* src : {&corpus_path_, &v1_path_}) {
    const auto corpus = read_file(*src);
    for (int iter = 0; iter < 64; ++iter) {
      auto bad = corpus;
      bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(rng.below(255) +
                                                              1);
      const std::string p = temp_path("fuzz.corpus");
      write_bytes(p, bad);
      try {
        const CorpusReader reader(p);
        // A flip in trace data may still load — that is fine; drive
        // every shard through the decode path (the part a hostile byte
        // can reach on v2: varint/RLE framing must reject, not
        // overrun) and, on raw corpora, through the zero-copy views.
        CorpusDecodeScratch scratch;
        for (std::size_t s = 0; s < reader.num_shards(); ++s) {
          (void)reader.shard_count(s);
          (void)reader.read_shard(s, scratch);
          if (!reader.compressed()) {
            (void)reader.shard_plaintexts(s);
            (void)reader.shard_samples(s);
          }
        }
      } catch (const Error&) {
        // Typed rejection is the other acceptable outcome.
      }
    }
  }
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  for (int iter = 0; iter < 64; ++iter) {
    auto bad = state;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(rng.below(255) +
                                                            1);
    const std::string p = temp_path("fuzz.state");
    write_bytes(p, bad);
    CpaDistinguisher cpa(engine.spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
    Distinguisher* const list[] = {&cpa};
    try {
      engine.merge_partials(options_, list, {p});
    } catch (const Error&) {
    }
  }
}

// ---- format versions and compression --------------------------------------

TEST(CampaignIoTest, CompressionVariantsReplayBitIdentically) {
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  const CampaignOptions options = small_options();
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  CpaDistinguisher ref(engine.spec(), selector);
  Distinguisher* const ref_list[] = {&ref};
  engine.run_distinguishers(options, ref_list);

  struct Variant {
    const char* name;
    std::uint32_t compression;
    std::uint32_t version;
  };
  const Variant variants[] = {
      {"v1_raw", kCorpusCompressionNone, kCorpusVersion1},
      {"v2_raw", kCorpusCompressionNone, kCorpusVersion2},
      {"v2_delta", kCorpusCompressionDeltaPlaneRle, kCorpusVersion2},
  };
  std::size_t v1_size = 0;
  std::size_t v2_delta_size = 0;
  for (const Variant& v : variants) {
    const std::string path = temp_path(std::string("variant_") + v.name);
    engine.record(options, TraceDataKind::kScalar, path, v.compression,
                  v.version);
    const CorpusReader corpus(path);
    EXPECT_EQ(corpus.version(), v.version) << v.name;
    EXPECT_EQ(corpus.compressed(),
              v.compression == kCorpusCompressionDeltaPlaneRle)
        << v.name;
    CpaDistinguisher cpa(engine.spec(), selector);
    Distinguisher* const list[] = {&cpa};
    EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), list))
        << v.name;
    expect_same_scores(cpa.result().score, ref.result().score);
    const std::size_t size = read_file(path).size();
    if (v.version == kCorpusVersion1) v1_size = size;
    if (v.compression == kCorpusCompressionDeltaPlaneRle) {
      v2_delta_size = size;
    }
  }
  // Even on this noisy scalar campaign (the codec's worst case — the
  // noise randomizes the low mantissa bits) compression must not lose.
  EXPECT_LT(v2_delta_size, v1_size);
}

TEST(CampaignIoTest, NoiselessSampledCorpusCompressesAtLeast3x) {
  // The acceptance ratio: a constant-power style sampled without noise
  // has near-constant per-level energies, so the XOR-delta zeroes
  // almost every plane and the RLE collapses them. This is the regime
  // the format exists for (recorded sweeps of the paper's SABL/WDDL
  // claims).
  TraceEngine engine(present_spec(), LogicStyle::kSablGenuine, kTech);
  CampaignOptions options = small_options();
  options.num_traces = 1500;
  options.noise_sigma = 0.0;
  const std::string v1 = temp_path("ratio_v1.corpus");
  const std::string v2 = temp_path("ratio_v2.corpus");
  engine.record(options, TraceDataKind::kSampled, v1, kCorpusCompressionNone,
                kCorpusVersion1);
  engine.record(options, TraceDataKind::kSampled, v2);

  const CorpusReader reader(v2);
  std::uint64_t raw = 0;
  std::uint64_t stored = 0;
  for (std::size_t s = 0; s < reader.num_shards(); ++s) {
    raw += reader.shard_raw_bytes(s);
    stored += reader.shard_stored_bytes(s);
  }
  EXPECT_GE(raw, 3 * stored) << "chunk ratio " << raw << "/" << stored;
  EXPECT_GE(read_file(v1).size(), 3 * read_file(v2).size());

  // Compression is exact: both containers replay to the same bits.
  const std::size_t levels = engine.target().num_levels();
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  MultiCpaDistinguisher from_v1(engine.spec(), selector, levels);
  MultiCpaDistinguisher from_v2(engine.spec(), selector, levels);
  Distinguisher* const list1[] = {&from_v1};
  Distinguisher* const list2[] = {&from_v2};
  EXPECT_TRUE(replay_distinguishers(CorpusReader(v1), engine.round(), list1));
  EXPECT_TRUE(replay_distinguishers(reader, engine.round(), list2));
  expect_same_scores(from_v2.result().combined.score,
                     from_v1.result().combined.score);
}

TEST(CampaignIoTest, HostileDecodedSizeCeilingRejectedAtOpen) {
  // A hand-built v2 header whose layout fields all pass their individual
  // ceilings but whose per-shard decoded size (count * width * 8 =
  // 2^43 bytes) does not: the reader must reject it at construction,
  // BEFORE any decode allocates — the stored chunk is 16 bytes, the
  // advertised decode is 8 TiB.
  ByteWriter w;
  w.bytes("SABLCORP", 8);
  w.u32(kCorpusVersion2);
  w.u32(kCorpusKindSampled);
  w.u32(kCorpusCompressionDeltaPlaneRle);
  w.u64(0);                      // spec_hash (not checked at open)
  w.u64(1);                      // seed
  w.u64(std::uint64_t{1} << 20); // num_traces
  w.u64(std::uint64_t{1} << 20); // shard_size (<= kMaxShardSize)
  w.u64(1);                      // num_shards = ceil(traces / shard_size)
  w.f64(0.0);                    // noise_sigma
  const std::uint8_t key = 0xB;
  w.u64(1);
  w.bytes(&key, 1);
  w.u64(1);                      // pt_stride
  w.u64(std::uint64_t{1} << 20); // sample_width (== kMaxSampleWidth)
  w.pad_to(8);
  ASSERT_EQ(w.offset(), 96u);
  w.u64(128);                    // index entry: chunk offset
  w.u64(std::uint64_t{1} << 20); //   count (matches the layout)
  w.u64(8);                      //   stored pt bytes
  w.u64(8);                      //   stored sample bytes
  w.u64(0);                      // 16 bytes of "chunk" so extents check out
  w.u64(0);
  const std::string p = temp_path("decode_ceiling.corpus");
  write_bytes(p, w.buffer());
  EXPECT_THROW(CorpusReader r(p), BadFileError);
}

// FNV-1a over every shard's decoded plaintext and sample bytes, in shard
// order — the golden fixture's content fingerprint.
std::uint64_t corpus_content_fingerprint(const CorpusReader& corpus) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  CorpusDecodeScratch scratch;
  const CorpusManifest& m = corpus.manifest();
  for (std::size_t s = 0; s < corpus.num_shards(); ++s) {
    const CorpusShardView view = corpus.read_shard(s, scratch);
    mix(view.pts, view.count * static_cast<std::size_t>(m.pt_stride));
    mix(view.samples,
        view.count * static_cast<std::size_t>(m.sample_width) *
            sizeof(double));
  }
  return h;
}

TEST(CampaignIoTest, GoldenV1CorpusStaysReadable) {
  // A v1 corpus committed to the repo: the backward-compatibility lock.
  // If this test fails, either the v1 parser regressed (fix that) or the
  // engine's trace stream changed (regenerate the fixture AND bump the
  // fingerprint — see tests/data/README.md for the recipe).
  const CorpusReader corpus(std::string(SABLE_TEST_DATA_DIR) +
                            "/golden_v1.sablcorp");
  EXPECT_EQ(corpus.version(), kCorpusVersion1);
  EXPECT_FALSE(corpus.compressed());
  EXPECT_EQ(corpus.manifest().kind, kCorpusKindScalar);
  EXPECT_EQ(corpus.manifest().campaign.num_traces, 96u);
  EXPECT_EQ(corpus.manifest().campaign.shard_size, 64u);
  EXPECT_EQ(corpus.manifest().campaign.num_shards, 2u);
  EXPECT_EQ(corpus.manifest().campaign.seed, 0x5EEDu);
  EXPECT_EQ(corpus_content_fingerprint(corpus), kGoldenV1Fingerprint);

  // The fixture replays against today's engine bit-identically — the
  // recorded stream still means what it meant when it was written.
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 96;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 64;  // 2 shards, ragged tail of 32
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  CpaDistinguisher ref(engine.spec(), selector);
  Distinguisher* const ref_list[] = {&ref};
  engine.run_distinguishers(options, ref_list);
  CpaDistinguisher replayed(engine.spec(), selector);
  Distinguisher* const list[] = {&replayed};
  EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), list));
  expect_same_scores(replayed.result().score, ref.result().score);
}

TEST(CampaignIoTest, GoldenV2CorporaStayReadable) {
  // v2 fixtures committed in BOTH codec modes (raw chunks and
  // delta+plane+RLE) lock the v2 container and each decoder. They were
  // recorded from the same campaign as golden_v1, and the content
  // fingerprint hashes DECODED traces — so all three fixtures share
  // kGoldenV1Fingerprint. A codec that decodes to anything else is a
  // regression, not a format change.
  const struct {
    const char* file;
    std::uint32_t compression;
  } kFixtures[] = {
      {"/golden_v2_raw.sablcorp", kCorpusCompressionNone},
      {"/golden_v2_delta.sablcorp", kCorpusCompressionDeltaPlaneRle},
  };
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, kTech);
  CampaignOptions options;
  options.num_traces = 96;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0x5EED;
  options.shard_size = 64;
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  CpaDistinguisher ref(engine.spec(), selector);
  Distinguisher* const ref_list[] = {&ref};
  engine.run_distinguishers(options, ref_list);

  for (const auto& fixture : kFixtures) {
    SCOPED_TRACE(fixture.file);
    const CorpusReader corpus(std::string(SABLE_TEST_DATA_DIR) +
                              fixture.file);
    EXPECT_EQ(corpus.version(), kCorpusVersion2);
    EXPECT_EQ(corpus.manifest().compression, fixture.compression);
    EXPECT_EQ(corpus.manifest().kind, kCorpusKindScalar);
    EXPECT_EQ(corpus.manifest().campaign.num_traces, 96u);
    EXPECT_EQ(corpus.manifest().campaign.shard_size, 64u);
    EXPECT_EQ(corpus.manifest().campaign.num_shards, 2u);
    EXPECT_EQ(corpus.manifest().campaign.seed, 0x5EEDu);
    EXPECT_EQ(corpus_content_fingerprint(corpus), kGoldenV1Fingerprint);

    CpaDistinguisher replayed(engine.spec(), selector);
    Distinguisher* const list[] = {&replayed};
    EXPECT_TRUE(replay_distinguishers(corpus, engine.round(), list));
    expect_same_scores(replayed.result().score, ref.result().score);
  }
}

}  // namespace
}  // namespace sable
