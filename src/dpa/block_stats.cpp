// Portable-tier instantiations of the block-statistics kernels plus the
// per-tier kernel-set selection. The AVX2/AVX-512 instantiations compile
// in src/simd/kernels_avx2.cpp / kernels_avx512.cpp (inside their
// #pragma GCC target regions) so this TU stays base-architecture clean.
#include "dpa/block_stats.hpp"

#include "dpa/block_stats_impl.hpp"

namespace sable {

namespace detail {

SABLE_INSTANTIATE_BLOCK_STATS(0)

}  // namespace detail

namespace {

template <int kTier>
constexpr BlockStatKernels tier_kernels() {
  return BlockStatKernels{
      &detail::block_histogram_scalar<kTier>,
      &detail::block_histogram_sampled<kTier>,
      &detail::block_contract_counts<kTier>,
      &detail::block_contract_sums<kTier>,
      &detail::block_contract_dom<kTier>,
  };
}

}  // namespace

const BlockStatKernels& block_stat_kernels(DispatchTier tier) {
#if SABLE_HAVE_WORD512
  if (tier >= DispatchTier::kAvx512) {
    static constexpr BlockStatKernels kAvx512 = tier_kernels<2>();
    return kAvx512;
  }
#endif
#if SABLE_HAVE_WORD256
  if (tier >= DispatchTier::kAvx2) {
    static constexpr BlockStatKernels kAvx2 = tier_kernels<1>();
    return kAvx2;
  }
#endif
  (void)tier;
  static constexpr BlockStatKernels kPortable = tier_kernels<0>();
  return kPortable;
}

}  // namespace sable
