#include "core/decomposition.hpp"

#include <algorithm>

#include "core/depth_analysis.hpp"
#include "core/fc_synthesizer.hpp"
#include "expr/transforms.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

struct SearchState {
  std::size_t num_vars = 0;
  std::size_t budget = 0;
  std::size_t candidates = 0;
};

// Worst satisfiable discharge path of the FC network of `f`.
std::size_t worst_depth(const ExprPtr& f, SearchState& state) {
  ++state.candidates;
  const DpdnNetwork net = synthesize_fc_dpdn(f, state.num_vars);
  return structural_path_stats(net).max_length;
}

ExprPtr optimize_node(const ExprPtr& e, SearchState& state);

// Deterministic structural key so permutation enumeration is reproducible
// across runs (shared_ptr addresses are not).
std::string structural_key(const ExprPtr& e) {
  if (e->is_const()) return e->kind() == ExprKind::kConst1 ? "1" : "0";
  if (e->is_literal()) {
    return (e->literal_positive() ? "v" : "n") +
           std::to_string(e->literal_var());
  }
  std::string key = e->kind() == ExprKind::kAnd ? "(&" : "(|";
  for (const auto& op : e->operands()) key += structural_key(op);
  return key + ")";
}

// Tries permutations of the operand list (children already optimized) and
// keeps the order with the smallest worst-case depth of the *whole* local
// subexpression.
ExprPtr best_order(ExprKind kind, std::vector<ExprPtr> ops,
                   SearchState& state) {
  auto rebuild = [&](const std::vector<ExprPtr>& operands) {
    std::vector<ExprPtr> copy = operands;
    return kind == ExprKind::kAnd ? Expr::conj(std::move(copy))
                                  : Expr::disj(std::move(copy));
  };
  // Heuristic starting point: deepest operand first keeps shallow shared
  // networks at the bottom of the series chain.
  std::stable_sort(ops.begin(), ops.end(),
                   [](const ExprPtr& a, const ExprPtr& b) {
                     return a->literal_count() > b->literal_count();
                   });
  ExprPtr best = rebuild(ops);
  std::size_t best_depth = worst_depth(best, state);

  std::vector<ExprPtr> perm = ops;
  std::sort(perm.begin(), perm.end(),
            [](const ExprPtr& a, const ExprPtr& b) {
              return structural_key(a) < structural_key(b);
            });
  auto key_less = [](const ExprPtr& a, const ExprPtr& b) {
    return structural_key(a) < structural_key(b);
  };
  do {
    if (state.candidates >= state.budget) break;
    const ExprPtr candidate = rebuild(perm);
    const std::size_t depth = worst_depth(candidate, state);
    if (depth < best_depth) {
      best_depth = depth;
      best = candidate;
    }
  } while (std::next_permutation(perm.begin(), perm.end(), key_less));
  return best;
}

ExprPtr optimize_node(const ExprPtr& e, SearchState& state) {
  if (e->is_literal() || e->is_const()) return e;
  std::vector<ExprPtr> ops;
  ops.reserve(e->operands().size());
  for (const auto& op : e->operands()) {
    ops.push_back(optimize_node(op, state));
  }
  SABLE_ASSERT(e->kind() == ExprKind::kAnd || e->kind() == ExprKind::kOr,
               "NNF expression expected");
  return best_order(e->kind(), std::move(ops), state);
}

}  // namespace

DecompositionResult optimize_decomposition(const ExprPtr& f,
                                           std::size_t num_vars,
                                           std::size_t max_candidates) {
  SABLE_REQUIRE(!f->is_const(), "cannot optimize a constant function");
  SearchState state{num_vars, max_candidates, 0};
  const ExprPtr nnf = to_nnf(f);
  const ExprPtr optimized = optimize_node(nnf, state);

  DecompositionResult result;
  result.expr = optimized;
  const DpdnNetwork net = synthesize_fc_dpdn(optimized, num_vars);
  result.max_depth = structural_path_stats(net).max_length;
  result.devices = net.device_count();
  result.candidates = state.candidates;
  return result;
}

}  // namespace sable
