// Definitions of the switch-level batch kernel templates declared in
// switchsim/cycle_sim.hpp. Included by exactly the TUs that instantiate
// them: switchsim/cycle_sim.cpp for the portable lane words and the
// per-ISA TUs under src/simd/ (inside their #pragma GCC target regions)
// for Word256/Word512.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>

#include "netlist/conduction_impl.hpp"
#include "switchsim/cycle_sim.hpp"
#include "util/error.hpp"

namespace sable {

namespace detail {

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3, recursive
/// block swaps), LSB-first: bit c of a[r] moves to bit r of a[c]. Three
/// block levels of delta-swaps — 64·6 word ops total, versus 64·64
/// shift/mask/or steps for a per-bit gather.
///
/// `static`, not `inline`: the per-ISA TUs compile this header inside a
/// #pragma GCC target region, and a comdat copy built there could be the
/// one the linker keeps for portable callers — internal linkage keeps
/// every TU's copy at its own ISA level.
[[maybe_unused]] static void bit_transpose_64x64(std::uint64_t a[64]) {
  std::uint64_t m = 0x00000000FFFFFFFFull;
  for (std::size_t j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (std::size_t k = 0; k < 64; k = ((k | j) + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k | j]) & m;
      a[k] ^= t << j;
      a[k | j] ^= t;
    }
  }
}

/// 8×8 bit-matrix transpose inside one 64-bit word (row r = byte r,
/// LSB-first): bit c of byte r moves to bit r of byte c. `static` for the
/// same per-ISA-TU reason as bit_transpose_64x64.
[[maybe_unused]] static std::uint64_t bit_transpose_8x8(std::uint64_t x) {
  std::uint64_t t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAull;
  x = x ^ t ^ (t << 7);
  t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCull;
  x = x ^ t ^ (t << 14);
  t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ull;
  x = x ^ t ^ (t << 28);
  return x;
}

}  // namespace detail

template <typename W>
void pack_lane_words_gather(const std::uint64_t* assignments,
                            std::size_t count, std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more assignments than lanes in the word");
  for (std::size_t v = 0; v < words.size(); ++v) {
    std::uint64_t chunks[T::kChunks];
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      const std::size_t base = 64 * j;
      const std::size_t lanes = count > base ? std::min<std::size_t>(
                                                   64, count - base)
                                             : 0;
      std::uint64_t chunk = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        chunk |= ((assignments[base + lane] >> v) & 1u) << lane;
      }
      chunks[j] = chunk;
    }
    words[v] = lane_from_chunks<W>(chunks);
  }
}

template <typename W>
void pack_lane_words(const std::uint64_t* assignments, std::size_t count,
                     std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more assignments than lanes in the word");
  const std::size_t vars = words.size();
  SABLE_ASSERT(vars <= 64, "at most 64 packed variables per assignment");

  if (count == 1) {
    // Single lane (the scalar wrappers): bit extraction only, no matrix.
    std::uint64_t chunks[T::kChunks] = {};
    const std::uint64_t x = assignments[0];
    for (std::size_t v = 0; v < vars; ++v) {
      chunks[0] = (x >> v) & 1u;
      words[v] = lane_from_chunks<W>(chunks);
    }
    return;
  }

  if (vars <= 8) {
    // Narrow assignments (S-box inputs): 8×8 transposes over the low
    // bytes, 8 lanes per step.
    std::uint64_t out[8][T::kChunks] = {};
    for (std::size_t j = 0; j < T::kChunks && 64 * j < count; ++j) {
      const std::size_t base = 64 * j;
      const std::size_t lanes = std::min<std::size_t>(64, count - base);
      for (std::size_t g = 0; 8 * g < lanes; ++g) {
        const std::size_t lane_base = base + 8 * g;
        const std::size_t n = std::min<std::size_t>(8, lanes - 8 * g);
        std::uint64_t b = 0;
        for (std::size_t k = 0; k < n; ++k) {
          b |= (assignments[lane_base + k] & 0xffu) << (8 * k);
        }
        b = detail::bit_transpose_8x8(b);
        for (std::size_t v = 0; v < vars; ++v) {
          out[v][j] |= ((b >> (8 * v)) & 0xffu) << (8 * g);
        }
      }
    }
    for (std::size_t v = 0; v < vars; ++v) {
      words[v] = lane_from_chunks<W>(out[v]);
    }
    return;
  }

  // Wide assignments (gate energy profiles pack up to 64 variables): one
  // full 64×64 transpose per 64-lane chunk.
  std::uint64_t out[64][T::kChunks];
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const std::size_t base = 64 * j;
    const std::size_t lanes =
        count > base ? std::min<std::size_t>(64, count - base) : 0;
    std::uint64_t a[64];
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      a[lane] = assignments[base + lane];
    }
    for (std::size_t lane = lanes; lane < 64; ++lane) a[lane] = 0;
    detail::bit_transpose_64x64(a);
    for (std::size_t v = 0; v < vars; ++v) out[v][j] = a[v];
  }
  for (std::size_t v = 0; v < vars; ++v) {
    words[v] = lane_from_chunks<W>(out[v]);
  }
}

template <typename W>
void pack_lane_words(const std::uint8_t* values, std::size_t count,
                     std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more values than lanes in the word");
  const std::size_t vars = words.size();
  SABLE_ASSERT(vars <= 8, "byte-source packing carries at most 8 variables");

  std::uint64_t out[8][T::kChunks] = {};
  for (std::size_t j = 0; j < T::kChunks && 64 * j < count; ++j) {
    const std::size_t base = 64 * j;
    const std::size_t lanes = std::min<std::size_t>(64, count - base);
    for (std::size_t g = 0; 8 * g < lanes; ++g) {
      const std::size_t lane_base = base + 8 * g;
      const std::size_t n = std::min<std::size_t>(8, lanes - 8 * g);
      std::uint64_t b;
      if (n == 8) {
        std::memcpy(&b, values + lane_base, 8);  // 8 lanes in one load
      } else {
        b = 0;
        for (std::size_t k = 0; k < n; ++k) {
          b |= std::uint64_t{values[lane_base + k]} << (8 * k);
        }
      }
      b = detail::bit_transpose_8x8(b);
      for (std::size_t v = 0; v < vars; ++v) {
        out[v][j] |= ((b >> (8 * v)) & 0xffu) << (8 * g);
      }
    }
  }
  for (std::size_t v = 0; v < vars; ++v) {
    words[v] = lane_from_chunks<W>(out[v]);
  }
}

template <typename W>
SablGateSimBatchT<W>::SablGateSimBatchT(const DpdnNetwork& net,
                                        GateEnergyModel model)
    : net_(net), model_(std::move(model)) {
  SABLE_ASSERT(model_.node_cap.size() == net_.node_count(),
               "gate model capacitance table size mismatch");
  charged_.assign(net_.node_count(), LaneTraits<W>::ones());
}

template <typename W>
void SablGateSimBatchT<W>::cycle(const std::vector<W>& var_words,
                                 const W& lane_mask, double* energy) {
  using T = LaneTraits<W>;
  constexpr std::size_t kChunks = T::kChunks;
  device_conduction_masks(net_, var_words, masks_);
  reach_.assign(net_.node_count(), T::zero());
  reach_[DpdnNetwork::kNodeX] = lane_mask;
  reach_[DpdnNetwork::kNodeY] = lane_mask;
  reach_[DpdnNetwork::kNodeZ] = lane_mask;
  propagate_conduction(net_, masks_, reach_);

  // Per lane the arithmetic mirrors the scalar cycle exactly (constant
  // term, then node capacitances in node order, then the output extra) by
  // walking the word's 64-bit chunks with the historic 64-lane code — so a
  // lane is bit-identical to a width-1 run no matter the word width. Full
  // chunks take plain 0..63 loops (auto-vectorized); sparse ones walk
  // their set bits.
  std::uint64_t mask_chunks[kChunks];
  lane_chunks(lane_mask, mask_chunks);
  lane_fill_selected(lane_mask, model_.constant_energy, energy);

  for (NodeId n = 0; n < net_.node_count(); ++n) {
    // Evaluation: connected nodes discharge to ground; precharge with input
    // overlap recharges the same set from the supply. Floating nodes keep
    // their held level and cost nothing.
    const double e_node = model_.node_cap[n] * model_.vdd * model_.vdd;
    std::uint64_t w_chunks[kChunks];
    lane_chunks(reach_[n], w_chunks);
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t w = w_chunks[j];
      double* e = energy + 64 * j;
      if (w == ~std::uint64_t{0}) {
        // Fully connected chunks (the §4 designs' steady state): plain
        // vectorizable add across all lanes.
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += e_node;
        }
      } else if (mask_chunks[j] == ~std::uint64_t{0}) {
        // Mixed chunk (genuine networks): branch-free select; adding the
        // table's +0.0 for a clear bit leaves a non-negative accumulator
        // bit-identical to skipping the lane.
        const double select[2] = {0.0, e_node};
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += select[(w >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = w; rest != 0; rest &= rest - 1) {
          e[std::countr_zero(rest)] += e_node;
        }
      }
    }
    charged_[n] |= reach_[n];  // connected lanes end recharged
  }

  // The firing output rail charges its extra (routing) load: the true rail
  // when f = 1, the false rail otherwise. Balanced extras cancel the data
  // dependence; mismatched ones leak (§2).
  if (model_.out_true_extra != 0.0 || model_.out_false_extra != 0.0) {
    // X–Z closure reusing this cycle's device masks (no reallocation).
    reach_xz_.assign(net_.node_count(), T::zero());
    reach_xz_[DpdnNetwork::kNodeZ] = lane_mask;
    propagate_conduction(net_, masks_, reach_xz_);
    std::uint64_t f_chunks[kChunks];
    lane_chunks(reach_xz_[DpdnNetwork::kNodeX], f_chunks);
    const double rail[2] = {model_.out_false_extra * model_.vdd * model_.vdd,
                            model_.out_true_extra * model_.vdd * model_.vdd};
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t f = f_chunks[j];
      double* e = energy + 64 * j;
      if (mask_chunks[j] == ~std::uint64_t{0}) {
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += rail[(f >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = mask_chunks[j]; rest != 0;
             rest &= rest - 1) {
          const std::size_t lane = std::countr_zero(rest);
          e[lane] += rail[(f >> lane) & 1u];
        }
      }
    }
  }
}

template <typename W>
void SablGateSimBatchT<W>::reset(bool charged) {
  charged_.assign(net_.node_count(),
                  charged ? LaneTraits<W>::ones() : LaneTraits<W>::zero());
}

/// Instantiates the switch-level batch kernels for lane word W.
#define SABLE_INSTANTIATE_CYCLE_SIM(W)                                    \
  template void pack_lane_words<W>(const std::uint64_t*, std::size_t,     \
                                   std::vector<W>&);                      \
  template void pack_lane_words<W>(const std::uint8_t*, std::size_t,      \
                                   std::vector<W>&);                      \
  template void pack_lane_words_gather<W>(const std::uint64_t*,           \
                                          std::size_t, std::vector<W>&);  \
  template class SablGateSimBatchT<W>;

}  // namespace sable
