#include "cell/builder.hpp"

#include "expr/transforms.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

class TreeBuilder {
 public:
  TreeBuilder(GateCircuit& circuit, NetworkVariant variant,
              const Technology& tech)
      : circuit_(circuit), variant_(variant), tech_(tech) {}

  SignalRef emit(const ExprPtr& e) {
    if (e->is_literal()) {
      return SignalRef::input(e->literal_var(), e->literal_positive());
    }
    switch (e->kind()) {
      case ExprKind::kAnd:
        return emit_nary(e, CellFunction::kAnd2);
      case ExprKind::kOr:
        return emit_nary(e, CellFunction::kOr2);
      default:
        throw InvalidArgument(
            "circuit builder requires non-constant NNF expressions");
    }
  }

 private:
  SignalRef emit_nary(const ExprPtr& e, CellFunction f) {
    // Left-to-right fold of the n-ary node into 2-input gates.
    SignalRef acc = emit(e->operands()[0]);
    for (std::size_t i = 1; i < e->operands().size(); ++i) {
      const SignalRef rhs = emit(e->operands()[i]);
      const std::size_t g = circuit_.add_gate(cell_for(f), {acc, rhs});
      acc = SignalRef::gate(g);
    }
    return acc;
  }

  std::size_t cell_for(CellFunction f) {
    for (std::size_t i = 0; i < circuit_.cells().size(); ++i) {
      if (circuit_.cells()[i].name == expected_name(f)) return i;
    }
    Cell cell = make_cell(f, variant_, tech_);
    return circuit_.add_cell(std::move(cell));
  }

  std::string expected_name(CellFunction f) const {
    return std::string(to_string(f)) + "_" + to_string(variant_);
  }

  GateCircuit& circuit_;
  NetworkVariant variant_;
  const Technology& tech_;
};

}  // namespace

GateCircuit build_from_expressions(const std::vector<ExprPtr>& outputs,
                                   std::size_t num_inputs,
                                   NetworkVariant variant,
                                   const Technology& tech) {
  GateCircuit circuit(num_inputs);
  TreeBuilder builder(circuit, variant, tech);
  for (const auto& e : outputs) {
    circuit.mark_output(builder.emit(to_nnf(e)));
  }
  return circuit;
}

GateCircuit build_single_gate(const ExprPtr& function, std::size_t num_inputs,
                              NetworkVariant variant, const Technology& tech) {
  GateCircuit circuit(num_inputs);
  const std::size_t cell_index = circuit.add_cell(
      make_custom_cell("complex", function, num_inputs, variant, tech));
  std::vector<SignalRef> inputs;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    inputs.push_back(SignalRef::input(i));
  }
  const std::size_t g = circuit.add_gate(cell_index, std::move(inputs));
  circuit.mark_output(SignalRef::gate(g));
  return circuit;
}

}  // namespace sable
