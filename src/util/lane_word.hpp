// Lane words — the batch kernels' generic machine word.
//
// Every bit-parallel kernel in the stack (conduction closure, switch-level
// gate simulation, gate-circuit evaluation, trace generation) operates on
// "lane words": one bit per independent simulation lane, one word per
// variable or node. The word type is generic; a LaneWord provides
//
//   LaneTraits<W>::kLanes    lanes per word (64 / 128 / 256 / 512)
//   LaneTraits<W>::kChunks   64-bit chunks per word (kLanes / 64)
//   zero() / ones()          all-clear / all-set words
//   any(w)                   true iff any lane bit is set
//   to_chunks / from_chunks  transfer to/from std::uint64_t[kChunks]
//   ~  &  |  ^  &=  |=  ==   the usual bitwise operators
//
// plus the free helpers lane_mask<W>(count) (THE tail-batch mask — every
// partial batch in the stack must come from here so the count invariant is
// asserted in exactly one place) and lane_any / lane_chunks.
//
// Three word families are provided:
//   std::uint64_t  the historic 64-lane kernel word (native scalar ops),
//   Word128        a portable pair of std::uint64_t (no ISA requirement),
//   Word256/512    AVX2 / AVX-512 vectors, compiled in only when the build
//                  enables the ISA (see the SABLE_SIMD CMake option);
//                  detection is compile-time via __AVX2__ / __AVX512F__.
//
// Chunk j of a word covers lanes [64*j, 64*j + 64): a wide word is, by
// construction, kChunks side-by-side 64-lane words. Kernels exploit this
// two ways: per-lane floating-point extraction walks chunks with exactly
// the 64-lane code (so every lane's arithmetic — and therefore every
// simulated trace — is bit-identical no matter the word width), and
// history-bearing simulators (static CMOS) advance their logical 64-lane
// history chunk by chunk, which keeps the generated trace streams
// width-independent as well.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#define SABLE_HAVE_WORD256 1
#else
#define SABLE_HAVE_WORD256 0
#endif

#if defined(__AVX512F__)
#define SABLE_HAVE_WORD512 1
#else
#define SABLE_HAVE_WORD512 0
#endif

namespace sable {

template <typename W>
struct LaneTraits;  // specialized for every lane word

// ---- std::uint64_t: the historic 64-lane word -----------------------------

template <>
struct LaneTraits<std::uint64_t> {
  static constexpr std::size_t kLanes = 64;
  static constexpr std::size_t kChunks = 1;
  static std::uint64_t zero() { return 0; }
  static std::uint64_t ones() { return ~std::uint64_t{0}; }
  static bool any(std::uint64_t w) { return w != 0; }
  static void to_chunks(std::uint64_t w, std::uint64_t* out) { out[0] = w; }
  static std::uint64_t from_chunks(const std::uint64_t* chunks) {
    return chunks[0];
  }
};

// ---- Word128: portable 128-lane pair --------------------------------------

struct Word128 {
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;

  friend Word128 operator&(Word128 a, Word128 b) {
    return {a.c0 & b.c0, a.c1 & b.c1};
  }
  friend Word128 operator|(Word128 a, Word128 b) {
    return {a.c0 | b.c0, a.c1 | b.c1};
  }
  friend Word128 operator^(Word128 a, Word128 b) {
    return {a.c0 ^ b.c0, a.c1 ^ b.c1};
  }
  Word128 operator~() const { return {~c0, ~c1}; }
  Word128& operator&=(Word128 b) {
    c0 &= b.c0;
    c1 &= b.c1;
    return *this;
  }
  Word128& operator|=(Word128 b) {
    c0 |= b.c0;
    c1 |= b.c1;
    return *this;
  }
  friend bool operator==(Word128 a, Word128 b) = default;
};

template <>
struct LaneTraits<Word128> {
  static constexpr std::size_t kLanes = 128;
  static constexpr std::size_t kChunks = 2;
  static Word128 zero() { return {}; }
  static Word128 ones() { return {~std::uint64_t{0}, ~std::uint64_t{0}}; }
  static bool any(Word128 w) { return (w.c0 | w.c1) != 0; }
  static void to_chunks(Word128 w, std::uint64_t* out) {
    out[0] = w.c0;
    out[1] = w.c1;
  }
  static Word128 from_chunks(const std::uint64_t* chunks) {
    return {chunks[0], chunks[1]};
  }
};

// ---- Word256: AVX2, 256 lanes ---------------------------------------------

#if SABLE_HAVE_WORD256

struct Word256 {
  __m256i v;

  Word256() : v(_mm256_setzero_si256()) {}
  explicit Word256(__m256i x) : v(x) {}

  friend Word256 operator&(Word256 a, Word256 b) {
    return Word256(_mm256_and_si256(a.v, b.v));
  }
  friend Word256 operator|(Word256 a, Word256 b) {
    return Word256(_mm256_or_si256(a.v, b.v));
  }
  friend Word256 operator^(Word256 a, Word256 b) {
    return Word256(_mm256_xor_si256(a.v, b.v));
  }
  Word256 operator~() const {
    return Word256(_mm256_xor_si256(v, _mm256_set1_epi64x(-1)));
  }
  Word256& operator&=(Word256 b) {
    v = _mm256_and_si256(v, b.v);
    return *this;
  }
  Word256& operator|=(Word256 b) {
    v = _mm256_or_si256(v, b.v);
    return *this;
  }
  friend bool operator==(Word256 a, Word256 b) {
    const __m256i diff = _mm256_xor_si256(a.v, b.v);
    return _mm256_testz_si256(diff, diff) != 0;
  }
};

template <>
struct LaneTraits<Word256> {
  static constexpr std::size_t kLanes = 256;
  static constexpr std::size_t kChunks = 4;
  static Word256 zero() { return Word256(); }
  static Word256 ones() { return Word256(_mm256_set1_epi64x(-1)); }
  static bool any(Word256 w) { return _mm256_testz_si256(w.v, w.v) == 0; }
  static void to_chunks(Word256 w, std::uint64_t* out) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), w.v);
  }
  static Word256 from_chunks(const std::uint64_t* chunks) {
    return Word256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(chunks)));
  }
};

#endif  // SABLE_HAVE_WORD256

// ---- Word512: AVX-512F, 512 lanes -----------------------------------------

#if SABLE_HAVE_WORD512

struct Word512 {
  __m512i v;

  Word512() : v(_mm512_setzero_si512()) {}
  explicit Word512(__m512i x) : v(x) {}

  friend Word512 operator&(Word512 a, Word512 b) {
    return Word512(_mm512_and_si512(a.v, b.v));
  }
  friend Word512 operator|(Word512 a, Word512 b) {
    return Word512(_mm512_or_si512(a.v, b.v));
  }
  friend Word512 operator^(Word512 a, Word512 b) {
    return Word512(_mm512_xor_si512(a.v, b.v));
  }
  Word512 operator~() const {
    return Word512(_mm512_xor_si512(v, _mm512_set1_epi64(-1)));
  }
  Word512& operator&=(Word512 b) {
    v = _mm512_and_si512(v, b.v);
    return *this;
  }
  Word512& operator|=(Word512 b) {
    v = _mm512_or_si512(v, b.v);
    return *this;
  }
  friend bool operator==(Word512 a, Word512 b) {
    return _mm512_cmpneq_epi64_mask(a.v, b.v) == 0;
  }
};

template <>
struct LaneTraits<Word512> {
  static constexpr std::size_t kLanes = 512;
  static constexpr std::size_t kChunks = 8;
  static Word512 zero() { return Word512(); }
  static Word512 ones() { return Word512(_mm512_set1_epi64(-1)); }
  static bool any(Word512 w) { return _mm512_test_epi64_mask(w.v, w.v) != 0; }
  static void to_chunks(Word512 w, std::uint64_t* out) {
    _mm512_storeu_si512(out, w.v);
  }
  static Word512 from_chunks(const std::uint64_t* chunks) {
    return Word512(_mm512_loadu_si512(chunks));
  }
};

#endif  // SABLE_HAVE_WORD512

// ---- helpers --------------------------------------------------------------

/// Word whose first `count` lanes are set — the one and only source of
/// tail-batch masks. A count outside [1, kLanes] is a kernel bug upstream
/// (phantom traces would be simulated or every lane silently dropped), so
/// it aborts rather than throwing.
template <typename W>
W lane_mask(std::size_t count) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count >= 1 && count <= T::kLanes,
               "lane_mask: count must be in [1, lane_count]");
  if (count == T::kLanes) return T::ones();
  std::uint64_t chunks[T::kChunks];
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const std::size_t low = 64 * j;
    chunks[j] = count <= low ? 0
                : count >= low + 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (count - low)) - 1;
  }
  return T::from_chunks(chunks);
}

/// True iff any lane bit of `w` is set.
template <typename W>
bool lane_any(const W& w) {
  return LaneTraits<W>::any(w);
}

// ---- per-lane double-array helpers ----------------------------------------
//
// The kernels extract per-lane floating-point results by walking a word's
// 64-bit chunks; these three masked-array loops are THE shared walk, so a
// change to tail handling (e.g. AVX-512 mask registers) lands everywhere
// at once. Full chunks take the plain vectorizable loop, sparse chunks
// walk their set bits — bit-identical per lane either way.

/// out[lane] = value for every selected lane of `lane_mask`.
template <typename W>
inline void lane_fill_selected(const W& lane_mask, double value,
                               double* out) {
  using T = LaneTraits<W>;
  std::uint64_t m[T::kChunks];
  T::to_chunks(lane_mask, m);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    double* e = out + 64 * j;
    if (m[j] == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) e[lane] = value;
    } else {
      for (std::uint64_t rest = m[j]; rest != 0; rest &= rest - 1) {
        e[std::countr_zero(rest)] = value;
      }
    }
  }
}

/// out[lane] += add[lane] for every selected lane of `lane_mask`.
template <typename W>
inline void lane_accumulate_selected(const W& lane_mask, const double* add,
                                     double* out) {
  using T = LaneTraits<W>;
  std::uint64_t m[T::kChunks];
  T::to_chunks(lane_mask, m);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const double* a = add + 64 * j;
    double* e = out + 64 * j;
    if (m[j] == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) e[lane] += a[lane];
    } else {
      for (std::uint64_t rest = m[j]; rest != 0; rest &= rest - 1) {
        const std::size_t lane = std::countr_zero(rest);
        e[lane] += a[lane];
      }
    }
  }
}

/// out[lane] += delta for every set lane of `lanes`.
template <typename W>
inline void lane_add_delta(const W& lanes, double delta, double* out) {
  using T = LaneTraits<W>;
  std::uint64_t w[T::kChunks];
  T::to_chunks(lanes, w);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    double* e = out + 64 * j;
    for (std::uint64_t rest = w[j]; rest != 0; rest &= rest - 1) {
      e[std::countr_zero(rest)] += delta;
    }
  }
}

/// Lane widths compiled into this build, ascending. 64 and 128 are always
/// available; 256/512 require a build with the matching ISA enabled (the
/// binary then requires an AVX2 / AVX-512 CPU).
inline std::vector<std::size_t> supported_lane_widths() {
  std::vector<std::size_t> widths = {64, 128};
#if SABLE_HAVE_WORD256
  widths.push_back(256);
#endif
#if SABLE_HAVE_WORD512
  widths.push_back(512);
#endif
  return widths;
}

/// Widest lane width compiled into this build.
constexpr std::size_t max_lane_width() {
#if SABLE_HAVE_WORD512
  return 512;
#elif SABLE_HAVE_WORD256
  return 256;
#else
  return 128;
#endif
}

/// Applies macro X to every compiled-in lane word type — the single list
/// behind the kernels' explicit template instantiations.
#if SABLE_HAVE_WORD512
#define SABLE_FOR_EACH_LANE_WORD(X) \
  X(std::uint64_t) X(::sable::Word128) X(::sable::Word256) X(::sable::Word512)
#elif SABLE_HAVE_WORD256
#define SABLE_FOR_EACH_LANE_WORD(X) \
  X(std::uint64_t) X(::sable::Word128) X(::sable::Word256)
#else
#define SABLE_FOR_EACH_LANE_WORD(X) X(std::uint64_t) X(::sable::Word128)
#endif

}  // namespace sable
