// Power-consumption hypotheses for first-order attacks.
//
// For key guess k and plaintext pt, the attacker predicts a leakage value
// from the S-box output S(pt XOR k): either one selected output bit
// (Kocher's original DPA selection function) or the Hamming weight of the
// whole output (the usual CPA model).
#pragma once

#include <cstdint>

#include "crypto/sboxes.hpp"

namespace sable {

enum class PowerModel {
  kSboxOutputBit,  // single-bit selection function
  kHammingWeight,  // HW of the S-box output
};

const char* to_string(PowerModel model);

/// What a round-level attack targets: one S-box instance (one subkey) of a
/// RoundSpec, with the leakage model predicting that instance's output.
/// Every other instance of the round contributes algorithmic noise. `bit`
/// selects the predicted output bit for kSboxOutputBit (and for DoM) and
/// is ignored for Hamming weight.
struct AttackSelector {
  std::size_t sbox_index = 0;
  PowerModel model = PowerModel::kHammingWeight;
  std::size_t bit = 0;
};

/// Predicted leakage for (pt, guess). `bit` selects the output bit for the
/// single-bit model and is ignored for Hamming weight.
double predict_leakage(const SboxSpec& spec, PowerModel model,
                       std::uint8_t pt, std::uint8_t guess, std::size_t bit);

}  // namespace sable
