#include "core/depth_analysis.hpp"

#include <algorithm>
#include <limits>

#include "netlist/conduction.hpp"
#include "util/error.hpp"

namespace sable {

DepthReport analyze_evaluation_depth(const DpdnNetwork& net) {
  DepthReport report;
  const std::size_t rows = std::size_t{1} << net.num_vars();
  report.depth_per_assignment.reserve(rows);
  for (std::size_t a = 0; a < rows; ++a) {
    // Exactly one of the two outputs discharges through the DPDN; measure
    // the series depth of whichever branch conducts.
    std::size_t depth = shortest_conducting_path(
        net, a, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
    if (depth == std::numeric_limits<std::size_t>::max()) {
      depth = shortest_conducting_path(net, a, DpdnNetwork::kNodeY,
                                       DpdnNetwork::kNodeZ);
    }
    SABLE_ASSERT(depth != std::numeric_limits<std::size_t>::max(),
                 "differential network must conduct on one side");
    report.depth_per_assignment.push_back(depth);
  }
  const auto [mn, mx] = std::minmax_element(
      report.depth_per_assignment.begin(), report.depth_per_assignment.end());
  report.min_depth = *mn;
  report.max_depth = *mx;
  report.constant = report.min_depth == report.max_depth;
  return report;
}

PathStats structural_path_stats(const DpdnNetwork& net) {
  PathStats stats;
  stats.min_length = std::numeric_limits<std::size_t>::max();
  stats.all_inputs_on_every_path = true;

  for (NodeId source : {DpdnNetwork::kNodeX, DpdnNetwork::kNodeY}) {
    const auto paths = enumerate_paths(net, source, DpdnNetwork::kNodeZ);
    for (const auto& p : paths) {
      ++stats.num_paths;
      if (!p.satisfiable) continue;
      ++stats.num_satisfiable;
      stats.min_length = std::min(stats.min_length, p.device_indices.size());
      stats.max_length = std::max(stats.max_length, p.device_indices.size());
      if (p.variables.size() != net.num_vars()) {
        stats.all_inputs_on_every_path = false;
      }
    }
  }
  if (stats.num_satisfiable == 0) {
    stats.min_length = 0;
    stats.all_inputs_on_every_path = false;
  }
  return stats;
}

}  // namespace sable
