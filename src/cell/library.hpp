// Differential standard-cell library.
//
// Every cell is a complete dynamic differential gate: one DPDN (in one of
// the three §3/§5 variants) plus the SABL sense-amplifier wrapper, modelled
// at switch level by a GateEnergyModel. Because gates are differential,
// complemented functions come for free (swap the output rails), so the
// library only carries one function per complementary pair (AND2 covers
// NAND2, etc.).
#pragma once

#include <string>
#include <vector>

#include "expr/expression.hpp"
#include "netlist/network.hpp"
#include "switchsim/gate_model.hpp"
#include "tech/technology.hpp"

namespace sable {

enum class CellFunction {
  kAnd2,   // A.B            (the paper's AND-NAND gate, Fig. 2/6)
  kOr2,    // A + B
  kXor2,   // A.B' + A'.B
  kMux2,   // S.A + S'.B
  kAnd3,   // A.B.C
  kOr3,    // A + B + C
  kAoi22,  // A.B + C.D
  kOai22,  // (A+B).(C+D)    (the paper's design example, Fig. 5)
  kMaj3,   // A.B + B.C + A.C
  kXor3,   // parity of three inputs
};

enum class NetworkVariant {
  kGenuine,         // traditional minimal network (memory effect)
  kFullyConnected,  // §4 design method
  kEnhanced,        // §5 pass-gate enhancement
};

const char* to_string(CellFunction f);
const char* to_string(NetworkVariant v);
std::vector<CellFunction> all_cell_functions();

/// Number of inputs of `f`.
std::size_t cell_input_count(CellFunction f);

/// The defining expression of `f` over variables 0..n-1 (factored form as
/// listed above; the synthesis methods consume it directly).
ExprPtr cell_expression(CellFunction f);

struct Cell {
  std::string name;
  ExprPtr function;
  std::size_t num_inputs = 0;
  NetworkVariant variant = NetworkVariant::kFullyConnected;
  DpdnNetwork network;
  GateEnergyModel energy_model;
};

/// Builds a library cell in the requested variant with default sizing.
Cell make_cell(CellFunction f, NetworkVariant variant, const Technology& tech);

/// Builds a cell for an arbitrary function.
Cell make_custom_cell(std::string name, const ExprPtr& function,
                      std::size_t num_inputs, NetworkVariant variant,
                      const Technology& tech);

}  // namespace sable
