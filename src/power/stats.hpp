// Statistics for power analysis: moments, Pearson correlation, and the
// NED/NSD balancedness metrics over arbitrary sample sets.
#pragma once

#include <cstddef>
#include <vector>

namespace sable {

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  // population

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

struct SpreadMetrics {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double ned = 0.0;  // (max - min) / max
  double nsd = 0.0;  // stddev / mean
};

SpreadMetrics spread_metrics(const std::vector<double>& xs);

}  // namespace sable
