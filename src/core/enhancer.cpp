#include "core/enhancer.hpp"

#include "expr/quine_mccluskey.hpp"
#include "util/error.hpp"

namespace sable {

DpdnNetwork synthesize_enhanced_dpdn(const ExprPtr& f, std::size_t num_vars) {
  FcSynthesisOptions options;
  options.enhance = true;
  return synthesize_fc_dpdn(f, num_vars, options);
}

DpdnNetwork synthesize_enhanced_from_table(const TruthTable& f) {
  const std::size_t on = f.popcount();
  SABLE_REQUIRE(on != 0 && on != f.num_rows(),
                "cannot build a DPDN for a constant function");
  return synthesize_enhanced_dpdn(minimized_sop(f), f.num_vars());
}

EnhancementOverhead enhancement_overhead(const DpdnNetwork& enhanced) {
  EnhancementOverhead overhead;
  overhead.dummy_devices = enhanced.pass_gate_device_count();
  overhead.logic_devices = enhanced.device_count() - overhead.dummy_devices;
  overhead.device_overhead =
      overhead.logic_devices == 0
          ? 0.0
          : static_cast<double>(overhead.dummy_devices) /
                static_cast<double>(overhead.logic_devices);
  return overhead;
}

}  // namespace sable
