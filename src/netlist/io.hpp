// Textual DPDN netlist format (read/write).
//
// Lets designers feed existing schematics to the §4.2 transformer and keep
// generated networks under version control. Line-oriented format:
//
//   dpdn <num_vars>
//   var <name>                     # one per variable, in VarId order
//   node <name>                    # one per internal node, in NodeId order
//   switch <lit> <node> <node>     # lit is VAR or VAR' ; nodes X, Y, Z or
//   passgate <var> <node> <node>   # an internal node name
//
// '#' starts a comment; blank lines are ignored.
#pragma once

#include <string>
#include <string_view>

#include "netlist/network.hpp"

namespace sable {

/// Serializes `net` (including variable names from `vars`).
std::string write_dpdn(const DpdnNetwork& net, const VarTable& vars);

/// Parses the format above. Variables are interned into `vars` in file
/// order. Throws ParseError on malformed input.
DpdnNetwork read_dpdn(std::string_view text, VarTable& vars);

}  // namespace sable
