// Algebraic factoring of sum-of-products covers.
//
// The design method consumes a *factored* expression tree (step 1 "identify
// two expressions x and y that combine to f"). Deep factored forms give DPDNs
// with fewer devices at the cost of evaluation depth; this module provides the
// classic most-frequent-literal division heuristic to produce such trees from
// a cube cover.
#pragma once

#include "expr/expression.hpp"
#include "expr/quine_mccluskey.hpp"

namespace sable {

/// Factors a cube cover into a nested AND/OR tree by recursively dividing by
/// the most frequent literal. Output is NNF.
ExprPtr factor_cubes(const std::vector<Cube>& cubes, std::size_t num_vars);

/// Convenience: minimize then factor a truth table.
ExprPtr factored_form(const TruthTable& f);

}  // namespace sable
