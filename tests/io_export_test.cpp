// Tests for DPDN netlist I/O and the ngspice deck exporter.
#include <gtest/gtest.h>

#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/transformer.hpp"
#include "expr/parser.hpp"
#include "netlist/io.hpp"
#include "sabl/sabl_gate.hpp"
#include "spice/netlist_export.hpp"
#include "util/error.hpp"

namespace sable {
namespace {

TEST(DpdnIoTest, RoundTripFc) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 4);
  const std::string text = write_dpdn(net, vars);

  VarTable vars2;
  const DpdnNetwork back = read_dpdn(text, vars2);
  ASSERT_EQ(back.device_count(), net.device_count());
  ASSERT_EQ(back.node_count(), net.node_count());
  for (std::size_t i = 0; i < net.devices().size(); ++i) {
    EXPECT_EQ(back.devices()[i].gate, net.devices()[i].gate);
    EXPECT_EQ(back.devices()[i].a, net.devices()[i].a);
    EXPECT_EQ(back.devices()[i].b, net.devices()[i].b);
    EXPECT_EQ(back.devices()[i].role, net.devices()[i].role);
  }
  EXPECT_EQ(vars2.name(0), "A");
}

TEST(DpdnIoTest, RoundTripEnhancedKeepsPassGates) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_enhanced_dpdn(f, 2);
  const std::string text = write_dpdn(net, vars);
  EXPECT_NE(text.find("passgate A"), std::string::npos);

  VarTable vars2;
  const DpdnNetwork back = read_dpdn(text, vars2);
  EXPECT_EQ(back.pass_gate_device_count(), net.pass_gate_device_count());
  EXPECT_EQ(back.device_count(), net.device_count());
}

TEST(DpdnIoTest, ReadFeedsTheTransformer) {
  // A hand-written schematic in the file format is a valid §4.2 input.
  const char* text = R"(
# genuine AND-NAND, Fig. 2 left
dpdn 2
var A
var B
node W
switch A  X W
switch B  W Z
switch A' Y Z
switch B' Y Z
)";
  VarTable vars;
  const DpdnNetwork genuine = read_dpdn(text, vars);
  const TransformResult result = transform_to_fully_connected(genuine, vars);
  EXPECT_TRUE(result.branches_complementary);
  EXPECT_TRUE(result.device_count_preserved);
}

TEST(DpdnIoTest, RejectsMalformedInput) {
  VarTable vars;
  EXPECT_THROW(read_dpdn("switch A X Z", vars), ParseError);  // no header
  EXPECT_THROW(read_dpdn("dpdn 0", vars), ParseError);
  EXPECT_THROW(read_dpdn("dpdn 2\nvar A\nswitch B X Z", vars), ParseError);
  EXPECT_THROW(read_dpdn("dpdn 2\nvar A\nswitch A X Q", vars), ParseError);
  EXPECT_THROW(read_dpdn("dpdn 2\nfrobnicate", vars), ParseError);
}

TEST(SpiceExportTest, EmitsElementsAndModels) {
  spice::Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(1.8));
  ckt.add_vsource("clk", "clk", "0",
                  spice::Waveform::pulse(0, 1.8, 0, 50e-12, 50e-12, 1.9e-9,
                                         4e-9));
  ckt.add_resistor("vdd", "a", 1000.0);
  ckt.add_capacitor("a", "0", 5e-15);
  const Technology tech = Technology::generic_180nm();
  ckt.add_mosfet("m0", spice::MosType::kNmos, "a", "clk", "0", tech.nmos,
                 1e-6, 0.18e-6);
  ckt.add_mosfet("m1", spice::MosType::kPmos, "a", "clk", "vdd", tech.pmos,
                 2e-6, 0.18e-6);

  spice::ExportOptions opt;
  opt.tran_stop = 8e-9;
  const std::string deck = to_spice_deck(ckt, opt);
  EXPECT_NE(deck.find("Vvdd vdd 0 DC 1.8"), std::string::npos);
  EXPECT_NE(deck.find("PULSE(0 1.8 0"), std::string::npos);
  EXPECT_NE(deck.find("R0 vdd a 1000"), std::string::npos);
  EXPECT_NE(deck.find("C0 a 0 5e-15"), std::string::npos);
  EXPECT_NE(deck.find("Mm0 a clk 0 0 nmos0"), std::string::npos);
  EXPECT_NE(deck.find(".model nmos0 NMOS(LEVEL=1"), std::string::npos);
  EXPECT_NE(deck.find(".model pmos1 PMOS(LEVEL=1"), std::string::npos);
  EXPECT_NE(deck.find(".tran "), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(SpiceExportTest, SablGateDeckIsComplete) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SablGateCircuit gate =
      assemble_sabl_gate(net, vars, tech, SizingPlan::defaults(tech));
  const std::string deck = to_spice_deck(gate.circuit);
  // One MOSFET line per device: 4 DPDN + 6 sense + bridge + foot + 4 inv.
  std::size_t mos_lines = 0;
  for (std::size_t pos = deck.find("\nM"); pos != std::string::npos;
       pos = deck.find("\nM", pos + 1)) {
    ++mos_lines;
  }
  EXPECT_EQ(mos_lines, 16u);
  EXPECT_NE(deck.find("Mmn_dpdn_0"), std::string::npos);
  EXPECT_NE(deck.find("Mm1_bridge x clk y"), std::string::npos);
}

}  // namespace
}  // namespace sable
