// Experiment E11 (ablation): design choices inside the §4.1 method.
//
// Two knobs the paper leaves open are ablated here for real gate functions
// (library cells and PRESENT S-box bits):
//   1. input form — minimized SOP vs. algebraically factored form: same
//      function, very different device counts and depths;
//   2. operand order in step 1 ("identify x and y") — which subnetwork is
//      shared at the bottom changes the worst-case discharge depth.
// All variants verify functionality and full connectivity; the table shows
// the area/depth trade-offs a library developer navigates.
#include <cstdio>

#include "cell/library.hpp"
#include "core/checks.hpp"
#include "core/decomposition.hpp"
#include "core/depth_analysis.hpp"
#include "core/fc_synthesizer.hpp"
#include "crypto/sboxes.hpp"
#include "expr/factoring.hpp"
#include "expr/quine_mccluskey.hpp"
#include "expr/truth_table.hpp"

using namespace sable;

namespace {

struct Candidate {
  const char* label;
  ExprPtr expr;
};

void ablate(const char* name, const ExprPtr& reference,
            std::size_t num_vars) {
  const TruthTable table = table_of(reference, num_vars);
  const ExprPtr sop = minimized_sop(table);
  const ExprPtr factored = factor_cubes(minimize(table), num_vars);
  const DecompositionResult reordered =
      optimize_decomposition(factored, num_vars);

  const Candidate candidates[] = {
      {"as-given", reference},
      {"minimized SOP", sop},
      {"factored", factored},
      {"factored+reorder", reordered.expr},
  };
  std::printf("%s (%zu inputs):\n", name, num_vars);
  std::printf("  %-18s %8s %8s %10s %6s\n", "form", "devices", "depth",
              "verified", "");
  for (const auto& c : candidates) {
    const DpdnNetwork net = synthesize_fc_dpdn(c.expr, num_vars);
    const PathStats stats = structural_path_stats(net);
    const bool ok = check_functionality(net, reference).ok &&
                    check_full_connectivity(net).fully_connected;
    std::printf("  %-18s %8zu %4zu..%-4zu %8s\n", c.label,
                net.device_count(), stats.min_length, stats.max_length,
                ok ? "OK" : "FAIL");
  }
  std::printf("  (reorder searched %zu candidate networks)\n\n",
              reordered.candidates);
}

}  // namespace

int main() {
  std::printf("== E11: ablation of §4.1 design choices ======================\n\n");
  for (CellFunction f :
       {CellFunction::kAoi22, CellFunction::kOai22, CellFunction::kMaj3,
        CellFunction::kMux2, CellFunction::kXor3}) {
    ablate(to_string(f), cell_expression(f), cell_input_count(f));
  }
  const SboxSpec spec = present_spec();
  for (std::size_t bit = 0; bit < 2; ++bit) {
    const std::string name =
        std::string("PRESENT S-box y") + std::to_string(bit);
    ablate(name.c_str(), minimized_sop(sbox_output_bit(spec, bit)),
           spec.in_bits);
  }
  std::printf(
      "Reading: factoring cuts devices (shared literals become shared\n"
      "subnetworks) at the cost of depth; reordering recovers part of the\n"
      "worst-case depth without touching the device count.\n");
  return 0;
}
