// Leakage models and attack-selector plumbing shared by every
// distinguisher.
//
// For key guess k and plaintext pt, the attacker predicts a leakage value
// from the S-box output S(pt XOR k): either one selected output bit
// (Kocher's original DPA selection function) or the Hamming weight of the
// whole output (the usual CPA model). Every distinguisher — streaming CPA,
// DoM, time-resolved multi-CPA, second-order centered-product CPA —
// consumes the same precomputed prediction table, so the table builders
// live here in the crypto layer beside the S-box specs they tabulate,
// below the dpa accumulators that share them.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/sboxes.hpp"

namespace sable {

struct RoundSpec;  // crypto/round_target.hpp

enum class PowerModel {
  kSboxOutputBit,  // single-bit selection function
  kHammingWeight,  // HW of the S-box output
};

const char* to_string(PowerModel model);

/// What a round-level attack targets: one S-box instance (one subkey) of a
/// RoundSpec, with the leakage model predicting that instance's output.
/// Every other instance of the round contributes algorithmic noise. `bit`
/// selects the predicted output bit for kSboxOutputBit (and for DoM) and
/// is ignored for Hamming weight.
struct AttackSelector {
  std::size_t sbox_index = 0;
  PowerModel model = PowerModel::kHammingWeight;
  std::size_t bit = 0;
};

/// Predicted leakage for (pt, guess). `bit` selects the output bit for the
/// single-bit model and is ignored for Hamming weight.
double predict_leakage(const SboxSpec& spec, PowerModel model,
                       std::uint8_t pt, std::uint8_t guess, std::size_t bit);

/// The full prediction table of an attack: [pt * num_guesses + guess] with
/// num_guesses = num_plaintexts = 2^in_bits. Plaintext-major, so the
/// per-trace hot loops (fix pt, sweep every guess) read a contiguous row.
std::vector<double> prediction_table(const SboxSpec& spec, PowerModel model,
                                     std::size_t bit);

/// As prediction_table, but shared and immutable — the form the streaming
/// accumulators keep, so cloning an accumulator for a new campaign shard
/// costs O(guesses), not a table rebuild.
std::shared_ptr<const std::vector<double>> shared_prediction_table(
    const SboxSpec& spec, PowerModel model, std::size_t bit);

/// Validates a selector against a round: the sbox_index must address an
/// instance, and for bit-indexed models (kSboxOutputBit, or any DoM
/// attack, which is inherently single-bit — pass require_bit) the bit must
/// exist on that instance. Throws InvalidArgument otherwise.
void validate_attack_selector(const RoundSpec& round,
                              const AttackSelector& selector,
                              bool require_bit);

}  // namespace sable
