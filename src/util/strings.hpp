// Small string helpers shared across modules (printing netlists, tables).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sable {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at every occurrence of `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Formats a double with `digits` significant digits (for table output).
std::string format_sig(double value, int digits);

/// Formats `value` in engineering notation with a unit ("19.32f" + "F").
std::string format_eng(double value, std::string_view unit);

}  // namespace sable
