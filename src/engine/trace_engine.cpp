#include "engine/trace_engine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/shard_reduce.hpp"
#include "engine/worker_pool.hpp"
#include "io/campaign_state.hpp"
#include "io/corpus.hpp"
#include "io/replay.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"

namespace sable {

std::size_t campaign_shard_size(const CampaignOptions& options) {
  // Shard granularity is pinned to 64 traces — the historic lane count —
  // for EVERY lane width, so shard boundaries (and with them the whole
  // trace stream) never depend on the word the kernel happens to batch
  // with. A wider word simply covers several 64-trace groups per step.
  // The max() clamps shard sizes below one granule (in particular below
  // the active lane width) to a whole 64-lane word instead of letting the
  // division round them to zero shards.
  constexpr std::size_t kGranule = SablGateSimBatch::kLanes;
  if (options.shard_size == 0) {
    // Autotune. shard_size is part of the stream definition, so the
    // derived size must be a pure function of the options: only
    // num_traces and fixed constants enter — never the thread count,
    // lane width, or anything probed from the machine. Aim for ~256
    // shards (dynamic-scheduling slack for any realistic core count
    // without drowning in per-shard setup), keep campaigns up to 1024
    // traces single-shard, and cap shards at 65536 traces so per-shard
    // trace buffers stay cache-sized.
    constexpr std::size_t kTargetShards = 256;
    constexpr std::size_t kMinShard = 1024;
    constexpr std::size_t kMaxShard = 65536;
    const std::size_t derived =
        options.num_traces / kTargetShards / kGranule * kGranule;
    return std::clamp(derived, kMinShard, kMaxShard);
  }
  return std::max<std::size_t>(kGranule,
                               options.shard_size / kGranule * kGranule);
}

std::uint64_t campaign_shard_seed(std::uint64_t campaign_seed,
                                  std::size_t shard, std::size_t stream) {
  // splitmix64 finalizer over a (seed, shard, stream) counter: every shard
  // gets a decorrelated sub-stream that is reproducible from the campaign
  // seed and the shard index alone, no matter which worker runs it.
  std::uint64_t z =
      campaign_seed ^
      (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(shard) + 1)) ^
      (0xD1B54A32D192ED03ULL * (static_cast<std::uint64_t>(stream) + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::size_t campaign_thread_count(const CampaignOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

std::size_t campaign_lane_width(const CampaignOptions& options) {
  // Resolved per campaign against the *runtime* dispatch tier: 0 picks the
  // widest word the running CPU supports (and the active SABLE_DISPATCH
  // cap allows), so one binary uses AVX-512 words on machines that have
  // them and falls back cleanly elsewhere. An explicit width must be
  // executable here and now — asking an AVX2 machine for 512 throws
  // instead of faulting in the kernel.
  if (options.lane_width == 0) return max_runtime_lane_width();
  for (std::size_t width : runtime_lane_widths()) {
    if (width == options.lane_width) return width;
  }
  throw InvalidArgument(
      "CampaignOptions::lane_width must be 0 (widest available) or a width "
      "this build and CPU support (see runtime_lane_widths())");
}

std::size_t style_lane_width_cap(LogicStyle style) {
  // Measured on the avx512 tier with the per-tier transpose packing
  // (bench_trace_throughput --lanes 64,128,256,512): every style now
  // scales monotonically through 512, so no style is capped. The
  // pre-vectorization 512 static-CMOS regression (29.2 vs 70.7 Mt/s at
  // 256) was the wide-word pack silently falling back to the scalar
  // 64x64 transpose — a packing-tier bug, not a property of the style.
  // Keep this switch exhaustive so a new style makes a conscious choice.
  switch (style) {
    case LogicStyle::kStaticCmos:
    case LogicStyle::kSablGenuine:
    case LogicStyle::kSablEnhanced:
    case LogicStyle::kSablFullyConnected:
    case LogicStyle::kWddlBalanced:
    case LogicStyle::kWddlMismatched:
      return std::numeric_limits<std::size_t>::max();
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

std::size_t campaign_lane_width(const CampaignOptions& options,
                                LogicStyle style) {
  // An explicit width is an instruction; only the width-0 default
  // consults the per-style heuristic. The cap picks among the widths the
  // machine offers, so it can never make a campaign unrunnable.
  if (options.lane_width != 0) return campaign_lane_width(options);
  const std::size_t cap = style_lane_width_cap(style);
  std::size_t best = 0;
  for (std::size_t width : runtime_lane_widths()) {
    if (width <= cap && width > best) best = width;
  }
  return best != 0 ? best : max_runtime_lane_width();
}

// ---- per-width engine state ----------------------------------------------

namespace detail {

// One lane width's persistent state on an engine: the width-variant of the
// prototype target (lazily derived, shares the synthesized circuits) and
// the pool of idle worker clones campaigns check workers out of. Keeping
// both across campaigns means a sweep of many small campaigns (per-style
// tables, SPICE calibration) pays synthesis once and cloning once per
// worker — not once per campaign.
template <typename W>
struct LanePool {
  std::unique_ptr<RoundTargetT<W>> variant;  // null for the 64-lane width
  std::mutex mutex;
  std::vector<std::unique_ptr<RoundTargetT<W>>> idle;
};

struct EnginePools {
  LanePool<std::uint64_t> p64;
  LanePool<Word128> p128;
#if SABLE_HAVE_WORD256
  LanePool<Word256> p256;
#endif
#if SABLE_HAVE_WORD512
  LanePool<Word512> p512;
#endif
  // Parked campaign threads, shared by every width: spawned on the first
  // multi-threaded campaign, reused (not re-created) by every later one.
  WorkerPool workers;
};

}  // namespace detail

namespace {

// Fixed block-granular decomposition of a campaign: shard s covers traces
// [start(s), start(s) + count(s)) of the canonical trace order.
struct ShardLayout {
  std::size_t shard_size = 0;
  std::size_t num_shards = 0;
  std::size_t num_traces = 0;
  std::size_t start(std::size_t s) const { return s * shard_size; }
  std::size_t count(std::size_t s) const {
    return std::min(shard_size, num_traces - start(s));
  }
};

ShardLayout layout_for(const CampaignOptions& options) {
  ShardLayout layout;
  layout.shard_size = campaign_shard_size(options);
  layout.num_traces = options.num_traces;
  layout.num_shards =
      (options.num_traces + layout.shard_size - 1) / layout.shard_size;
  return layout;
}

std::size_t resolve_threads(const CampaignOptions& options,
                            std::size_t num_shards) {
  return std::max<std::size_t>(
      1, std::min(campaign_thread_count(options), num_shards));
}

void validate_key(const RoundSpec& round, const CampaignOptions& options) {
  SABLE_REQUIRE(options.key.size() == round.state_bytes(),
                "CampaignOptions::key must hold round().state_bytes() packed "
                "bytes (use RoundSpec::pack_subkeys)");
}

// Shard s's wide plaintexts: RoundSpec::fill_random_states over the
// shard's counter-derived plaintext sub-stream — for a single byte-wide
// S-box this is the historic one-draw-per-trace stream, bit for bit.
void generate_shard_plaintexts(const RoundSpec& round,
                               const CampaignOptions& options,
                               std::size_t shard, std::size_t count,
                               std::uint8_t* pts) {
  Rng pt_rng(campaign_shard_seed(options.seed, shard, 0));
  round.fill_random_states(pt_rng, count, pts);
}

// Simulates one shard into caller-provided storage: per-shard RNG streams
// and fresh simulator state make the result a pure function of (options,
// shard) — the invariant every determinism guarantee rests on. The
// simulation word width is a pure throughput knob (see lane_word.hpp).
template <typename W>
void simulate_shard(RoundTargetT<W>& target, const CampaignOptions& options,
                    const ShardLayout& layout, std::size_t shard,
                    std::uint8_t* pts, double* samples) {
  const std::size_t count = layout.count(shard);
  generate_shard_plaintexts(target.round(), options, shard, count, pts);
  Rng noise_rng(campaign_shard_seed(options.seed, shard, 1));
  target.reset_state();
  target.trace_batch(pts, count, options.key.data(), options.noise_sigma,
                     noise_rng, samples);
}

// Time-resolved sibling: `rows` holds count rows of num_levels() samples.
template <typename W>
void simulate_shard_sampled(RoundTargetT<W>& target,
                            const CampaignOptions& options,
                            const ShardLayout& layout, std::size_t shard,
                            std::uint8_t* pts, double* rows) {
  const std::size_t count = layout.count(shard);
  generate_shard_plaintexts(target.round(), options, shard, count, pts);
  Rng noise_rng(campaign_shard_seed(options.seed, shard, 1));
  target.reset_state();
  target.trace_batch_sampled(pts, count, options.key.data(),
                             options.noise_sigma, noise_rng, rows);
}

// RAII lease of a worker target from the engine's persistent pool: an
// idle clone is reused, a missing one is cloned from the prototype, and
// either way the worker returns to the pool at scope exit — campaigns on
// the same engine share workers instead of re-cloning. Stale lane state
// is harmless: every shard resets the target before simulating.
template <typename W>
class WorkerLease {
 public:
  WorkerLease(const RoundTargetT<W>& prototype, detail::LanePool<W>& pool)
      : pool_(pool) {
    {
      std::lock_guard<std::mutex> lock(pool_.mutex);
      if (!pool_.idle.empty()) {
        worker_ = std::move(pool_.idle.back());
        pool_.idle.pop_back();
      }
    }
    if (!worker_) {
      worker_ = std::make_unique<RoundTargetT<W>>(prototype.clone());
    }
  }
  ~WorkerLease() {
    std::lock_guard<std::mutex> lock(pool_.mutex);
    pool_.idle.push_back(std::move(worker_));
  }
  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;

  RoundTargetT<W>& target() { return *worker_; }

 private:
  detail::LanePool<W>& pool_;
  std::unique_ptr<RoundTargetT<W>> worker_;
};

// Per-worker context: a leased target clone plus optional reusable trace
// buffers, so the shard loop never allocates or shares mutable state.
// Buffers are lazy — consumers that simulate into external storage (run's
// TraceSet slices, the stream paths' per-shard slots) never pay for them.
// `sample_width` is 1 for scalar campaigns and num_levels() for
// time-resolved ones. The distinguisher driver uses the attack buffers
// instead: `samples` and `rows` hold the shard's scalar / time-resolved
// data side by side (a mixed campaign needs both), and `sub_pts` holds
// one shard-sized slot of sub-plaintexts per distinct attacked instance.
template <typename W>
struct WorkerCtx {
  WorkerLease<W> lease;
  std::vector<std::uint8_t> pts;
  std::vector<double> samples;
  std::vector<double> rows;
  std::vector<std::uint8_t> sub_pts;

  WorkerCtx(const RoundTargetT<W>& prototype, detail::LanePool<W>& pool)
      : lease(prototype, pool) {}

  RoundTargetT<W>& target() { return lease.target(); }

  void ensure_buffers(std::size_t shard_size, std::size_t pt_stride,
                      std::size_t sample_width) {
    if (pts.size() < shard_size * pt_stride) {
      pts.resize(shard_size * pt_stride);
    }
    if (samples.size() < shard_size * sample_width) {
      samples.resize(shard_size * sample_width);
    }
  }

  void ensure_attack_buffers(std::size_t shard_size, std::size_t pt_stride,
                             bool scalar, std::size_t levels,
                             std::size_t slots) {
    if (pts.size() < shard_size * pt_stride) {
      pts.resize(shard_size * pt_stride);
    }
    if (scalar && samples.size() < shard_size) samples.resize(shard_size);
    if (levels > 0 && rows.size() < shard_size * levels) {
      rows.resize(shard_size * levels);
    }
    if (sub_pts.size() < shard_size * slots) {
      sub_pts.resize(shard_size * slots);
    }
  }
};

// Dynamic shard scheduler: `fn(ctx, shard)` runs for every shard index on
// `threads` parked pool workers (inline on the calling thread when
// threads == 1; the calling thread is always party 0 of the pool run).
// fn must only touch ctx and shard-indexed slots, keeping the scheduler
// free of locks on the hot path. Worker exceptions are rethrown on the
// caller.
template <typename W, typename Fn>
void run_pool(const RoundTargetT<W>& prototype, detail::LanePool<W>& pool,
              WorkerPool& workers, const ShardLayout& layout,
              std::size_t threads, Fn&& fn) {
  if (layout.num_shards == 0) return;
  if (threads <= 1) {
    WorkerCtx<W> ctx(prototype, pool);
    for (std::size_t s = 0; s < layout.num_shards; ++s) fn(ctx, s);
    return;
  }
  std::atomic<std::size_t> next{0};
  workers.run(threads, [&](std::size_t) {
    WorkerCtx<W> ctx(prototype, pool);
    for (std::size_t s = next.fetch_add(1); s < layout.num_shards;
         s = next.fetch_add(1)) {
      fn(ctx, s);
    }
  });
}

// Worklist sibling of run_pool: `fn(ctx, shard)` runs for every shard in
// `work` (any subset of the canonical shards — resumed and range-split
// campaigns accumulate only their uncovered slice). Scheduling order is
// free; per-shard work is order-independent by construction.
template <typename W, typename Fn>
void run_pool_list(const RoundTargetT<W>& prototype,
                   detail::LanePool<W>& pool, WorkerPool& workers,
                   const std::vector<std::size_t>& work, std::size_t threads,
                   Fn&& fn) {
  if (work.empty()) return;
  if (threads <= 1) {
    WorkerCtx<W> ctx(prototype, pool);
    for (std::size_t s : work) fn(ctx, s);
    return;
  }
  std::atomic<std::size_t> next{0};
  workers.run(std::min(threads, work.size()), [&](std::size_t) {
    WorkerCtx<W> ctx(prototype, pool);
    for (std::size_t k = next.fetch_add(1); k < work.size();
         k = next.fetch_add(1)) {
      fn(ctx, work[k]);
    }
  });
}

// Shared machinery of stream() and stream_sampled(): workers fill shard
// slots via `simulate(target, shard, pts, samples)`; the calling thread
// emits them to `sink` in canonical shard order. `pt_stride` /
// `sample_width` size the per-trace storage.
//
// In-flight storage is a RING of `window` slots (window grows with the
// thread count: enough slack that workers at different shard speeds
// don't stall on the emitter, yet memory stays O(threads), not
// O(num_shards)). Slot s % window is handed worker -> emitter -> next
// worker strictly through the mutex: a worker may fill it only once
// emit + window > s (so the previous occupant was emitted), the emitter
// may drain it only once ready. Each slot is cache-line aligned and its
// buffers are recycled through the ring, so steady-state streaming does
// not allocate. The pool runs threads + 1 parties: party 0 — the calling
// thread — is the emitter (the sink never runs concurrently with itself,
// matching the sequential contract), parties 1..threads simulate.
template <typename W, typename SimulateFn>
void stream_shards(const RoundTargetT<W>& prototype,
                   detail::LanePool<W>& pool, WorkerPool& workers,
                   const CampaignOptions& options, std::size_t pt_stride,
                   std::size_t sample_width, SimulateFn&& simulate,
                   const TraceSink& sink) {
  const ShardLayout layout = layout_for(options);
  if (layout.num_shards == 0) return;
  const std::size_t threads = resolve_threads(options, layout.num_shards);
  if (threads <= 1) {
    WorkerCtx<W> ctx(prototype, pool);
    ctx.ensure_buffers(layout.shard_size, pt_stride, sample_width);
    for (std::size_t s = 0; s < layout.num_shards; ++s) {
      simulate(ctx.target(), s, ctx.pts.data(), ctx.samples.data());
      sink(ctx.pts.data(), ctx.samples.data(), layout.count(s));
    }
    return;
  }

  struct alignas(64) Slot {
    std::vector<std::uint8_t> pts;
    std::vector<double> samples;
    std::size_t count = 0;
    bool ready = false;
  };
  const std::size_t window =
      std::min(layout.num_shards, 2 * threads + 2);
  std::vector<Slot> slots(window);
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::condition_variable space_cv;
  std::size_t emit = 0;  // written by party 0 only
  bool failed = false;
  std::atomic<std::size_t> next{0};

  workers.run(threads + 1, [&](std::size_t party) {
    if (party == 0) {
      // Emitter. `scratch` ping-pongs with the ring: the swap hands the
      // just-emitted shard's buffers back to the slot for the worker of
      // shard emit + window to refill, and frees the sink call itself
      // from the lock.
      Slot scratch;
      try {
        while (emit < layout.num_shards) {
          {
            std::unique_lock<std::mutex> lock(mutex);
            ready_cv.wait(
                lock, [&] { return failed || slots[emit % window].ready; });
            if (failed) return;
            std::swap(scratch, slots[emit % window]);
            slots[emit % window].ready = false;
          }
          sink(scratch.pts.data(), scratch.samples.data(), scratch.count);
          {
            std::lock_guard<std::mutex> lock(mutex);
            ++emit;
          }
          space_cv.notify_all();
        }
      } catch (...) {
        // A sink failure must release workers stalled on the window; the
        // pool joins them and rethrows this (the calling party's)
        // exception first.
        {
          std::lock_guard<std::mutex> lock(mutex);
          failed = true;
        }
        space_cv.notify_all();
        throw;
      }
      return;
    }
    try {
      WorkerLease<W> lease(prototype, pool);
      for (std::size_t s = next.fetch_add(1); s < layout.num_shards;
           s = next.fetch_add(1)) {
        Slot* slot = nullptr;
        {
          std::unique_lock<std::mutex> lock(mutex);
          space_cv.wait(lock, [&] { return failed || s < emit + window; });
          if (failed) return;
          slot = &slots[s % window];
        }
        // Between the space_cv hand-off and the ready publication this
        // worker owns the slot exclusively — simulate straight into it.
        slot->count = layout.count(s);
        if (slot->pts.size() < slot->count * pt_stride) {
          slot->pts.resize(slot->count * pt_stride);
        }
        if (slot->samples.size() < slot->count * sample_width) {
          slot->samples.resize(slot->count * sample_width);
        }
        simulate(lease.target(), s, slot->pts.data(), slot->samples.data());
        {
          std::lock_guard<std::mutex> lock(mutex);
          slot->ready = true;
        }
        ready_cv.notify_all();
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        failed = true;
      }
      ready_cv.notify_all();
      space_cv.notify_all();
      throw;
    }
  });
}

// Lazily derives the width-W variant of the engine's 64-lane prototype
// (shared circuits, fresh sims) and keeps it on the pool for the engine's
// lifetime. Guarded by the pool mutex so concurrent campaigns on one
// engine (safe before the pools existed, since they only read the const
// prototype) cannot race the one-time init; it runs once per width per
// engine, off the hot path.
template <typename W>
const RoundTargetT<W>& ensure_variant(const RoundTarget& base,
                                      detail::LanePool<W>& pool) {
  std::lock_guard<std::mutex> lock(pool.mutex);
  if (!pool.variant) {
    pool.variant = std::make_unique<RoundTargetT<W>>(
        base.template with_lane_width<W>());
  }
  return *pool.variant;
}

// Resolves options.lane_width and calls fn(prototype, pool) with the
// matching RoundTargetT<W> / LanePool<W> pair — the single dispatch point
// between the runtime width knob and the compile-time kernel width.
template <typename Fn>
decltype(auto) with_lane(const RoundTarget& base, detail::EnginePools& pools,
                         const CampaignOptions& options, Fn&& fn) {
  switch (campaign_lane_width(options, base.round().style)) {
    case 64:
      return fn(base, pools.p64);
    case 128:
      return fn(ensure_variant(base, pools.p128), pools.p128);
#if SABLE_HAVE_WORD256
    case 256:
      return fn(ensure_variant(base, pools.p256), pools.p256);
#endif
#if SABLE_HAVE_WORD512
    case 512:
      return fn(ensure_variant(base, pools.p512), pools.p512);
#endif
  }
  SABLE_ASSERT(false, "unreachable lane width");
}

// ---- width-generic campaign bodies ----------------------------------------

template <typename W>
TraceSet run_campaign(const RoundTargetT<W>& prototype,
                      detail::LanePool<W>& pool, WorkerPool& workers,
                      const CampaignOptions& options) {
  const ShardLayout layout = layout_for(options);
  const std::size_t stride = prototype.round().state_bytes();
  TraceSet traces;
  traces.pt_width = stride;
  traces.plaintexts.resize(options.num_traces * stride);
  traces.samples.resize(options.num_traces);
  // Shards map to disjoint slices of the canonical trace order, so workers
  // simulate straight into the final TraceSet with no ordering hand-off.
  run_pool(prototype, pool, workers, layout,
           resolve_threads(options, layout.num_shards),
           [&](WorkerCtx<W>& ctx, std::size_t s) {
             simulate_shard(ctx.target(), options, layout, s,
                            traces.plaintexts.data() + layout.start(s) * stride,
                            traces.samples.data() + layout.start(s));
           });
  return traces;
}

// The ONE campaign driver behind every attack: shard scheduling, worker
// leasing, lane-width dispatch and shard reduction, written once for any
// set of distinguishers. Per shard the worker simulates the trace data
// each data kind needs (scalar and/or time-resolved — both streams are
// exactly what the single-kind campaigns generate, so sharing a campaign
// never changes a result), extracts sub-plaintexts once per distinct
// attacked instance, and hands every distinguisher's per-shard
// accumulator its block: ONE virtual dispatch per distinguisher per
// shard, per-trace loops devirtualized inside the concrete accumulators.
// Unordered distinguishers reduce through the fixed-shape binary merge
// tree (shape a function of the shard count only); ordered ones (MTD)
// through a strict left fold in canonical shard order. Either way the
// result is bit-identical for any num_threads / lane_width.
template <typename W>
bool run_distinguishers_impl(const RoundTargetT<W>& prototype,
                             detail::LanePool<W>& pool, WorkerPool& workers,
                             const CampaignOptions& options,
                             const CampaignManifest& manifest,
                             std::span<Distinguisher* const> distinguishers,
                             const CampaignPersistence& persist) {
  const RoundSpec& round = prototype.round();
  const ShardLayout layout = layout_for(options);
  const std::size_t threads = resolve_threads(options, layout.num_shards);
  const std::size_t stride = round.state_bytes();
  const std::size_t levels = prototype.num_levels();

  bool any_scalar = false;
  bool any_sampled = false;
  for (Distinguisher* d : distinguishers) {
    if (d->data_kind() == TraceDataKind::kScalar) {
      any_scalar = true;
    } else {
      any_sampled = true;
    }
  }

  // Sub-plaintext extraction slots, deduplicated: distinguishers attacking
  // the same instance share one extraction per shard.
  std::vector<std::size_t> slot_sbox;                     // slot -> instance
  std::vector<std::size_t> slot_of(distinguishers.size());  // d -> slot
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    const std::size_t index = distinguishers[d]->sbox_index();
    const auto it = std::find(slot_sbox.begin(), slot_sbox.end(), index);
    slot_of[d] = static_cast<std::size_t>(it - slot_sbox.begin());
    if (it == slot_sbox.end()) slot_sbox.push_back(index);
  }

  // states[d][s]: distinguisher d's accumulator for shard s. Workers only
  // touch their own shard's states — distinct vector elements — so the
  // matrix needs no locking. The accumulators themselves are constructed
  // lazily BY the worker that runs the shard (below), not serially up
  // front: with thousands of shards the upfront loop was serial work on
  // the caller, and consecutive heap allocations from one thread pack
  // accumulators of different shards into shared cache lines, which the
  // workers then dirty from different cores. Worker-side construction
  // spreads the allocations over the workers' own malloc arenas, killing
  // both the serial section and the false sharing at once.
  ShardStates states(distinguishers.size());
  for (std::size_t d = 0; d < distinguishers.size(); ++d) {
    states[d].resize(layout.num_shards);
  }

  const auto accumulate = [&](const std::vector<std::size_t>& work) {
    run_pool_list(
      prototype, pool, workers, work, threads,
      [&](WorkerCtx<W>& ctx, std::size_t s) {
        for (std::size_t d = 0; d < distinguishers.size(); ++d) {
          states[d][s] = distinguishers[d]->make_shard_accumulator();
        }
        ctx.ensure_attack_buffers(layout.shard_size, stride, any_scalar,
                                  any_sampled ? levels : 0, slot_sbox.size());
        const std::size_t count = layout.count(s);
        // A mixed campaign simulates the shard once per data kind; the
        // plaintext stream is regenerated identically (same counter-derived
        // seed) and each kind draws its noise exactly as its single-kind
        // campaign would, so both blocks match the standalone paths bit
        // for bit.
        if (any_scalar) {
          simulate_shard(ctx.target(), options, layout, s, ctx.pts.data(),
                         ctx.samples.data());
        }
        if (any_sampled) {
          simulate_shard_sampled(ctx.target(), options, layout, s,
                                 ctx.pts.data(), ctx.rows.data());
        }
        for (std::size_t slot = 0; slot < slot_sbox.size(); ++slot) {
          round.sub_words(ctx.pts.data(), count, slot_sbox[slot],
                          ctx.sub_pts.data() + slot * layout.shard_size);
        }
        for (std::size_t d = 0; d < distinguishers.size(); ++d) {
          const bool scalar =
              distinguishers[d]->data_kind() == TraceDataKind::kScalar;
          ShardBlock block;
          block.start = layout.start(s);
          block.sub_pts =
              ctx.sub_pts.data() + slot_of[d] * layout.shard_size;
          block.data = scalar ? ctx.samples.data() : ctx.rows.data();
          block.width = scalar ? 1 : levels;
          block.count = count;
          states[d][s]->accumulate(block);
        }
      });
  };

  // The persistence wrapper (resume, wave checkpoints, range splits) is a
  // no-op for default persistence: the worklist is then every shard in
  // one wave — the historic in-memory run, bit for bit. The reduction
  // (fixed-shape tree / ordered fold) lives in engine/shard_reduce.cpp,
  // shared with the replay and partial-merge paths.
  if (!run_persisted_waves(manifest, distinguishers, states, persist,
                           accumulate)) {
    return false;
  }
  reduce_and_finalize_distinguishers(distinguishers, states, workers,
                                     threads);
  return true;
}

}  // namespace

// ---- TraceEngine ----------------------------------------------------------

TraceEngine::TraceEngine(const RoundSpec& round, const Technology& tech)
    : target_(round, tech),
      pools_(std::make_unique<detail::EnginePools>()) {}

TraceEngine::TraceEngine(const SboxSpec& spec, LogicStyle style,
                         const Technology& tech)
    : target_(single_sbox_round(spec, style), tech),
      pools_(std::make_unique<detail::EnginePools>()) {}

TraceEngine::~TraceEngine() = default;
TraceEngine::TraceEngine(TraceEngine&&) noexcept = default;
TraceEngine& TraceEngine::operator=(TraceEngine&&) noexcept = default;

const SboxSpec& TraceEngine::spec(std::size_t sbox_index) const {
  SABLE_REQUIRE(sbox_index < round().num_sboxes(),
                "S-box index out of range for the round");
  return round().sboxes[sbox_index];
}

TraceSet TraceEngine::run(const CampaignOptions& options) {
  validate_key(round(), options);
  return with_lane(target_, *pools_, options,
                   [&](const auto& prototype, auto& pool) {
                     return run_campaign(prototype, pool, pools_->workers,
                                         options);
                   });
}

void TraceEngine::stream(const CampaignOptions& options,
                         const TraceSink& sink) {
  validate_key(round(), options);
  const ShardLayout layout = layout_for(options);
  with_lane(target_, *pools_, options,
            [&](const auto& prototype, auto& pool) {
              stream_shards(prototype, pool, pools_->workers, options,
                            round().state_bytes(), 1,
                            [&](auto& target, std::size_t s, std::uint8_t* pts,
                                double* samples) {
                              simulate_shard(target, options, layout, s, pts,
                                             samples);
                            },
                            sink);
            });
}

void TraceEngine::stream_sampled(const CampaignOptions& options,
                                 const SampledTraceSink& sink) {
  validate_key(round(), options);
  SABLE_REQUIRE(target_.num_levels() > 0,
                "time-resolved campaigns need at least one logic level");
  const ShardLayout layout = layout_for(options);
  with_lane(target_, *pools_, options,
            [&](const auto& prototype, auto& pool) {
              stream_shards(prototype, pool, pools_->workers, options,
                            round().state_bytes(), target_.num_levels(),
                            [&](auto& target, std::size_t s, std::uint8_t* pts,
                                double* rows) {
                              simulate_shard_sampled(target, options, layout,
                                                     s, pts, rows);
                            },
                            sink);
            });
}

void TraceEngine::run_distinguishers(
    const CampaignOptions& options,
    std::span<Distinguisher* const> distinguishers) {
  run_distinguishers(options, distinguishers, CampaignPersistence{});
}

bool TraceEngine::run_distinguishers(
    const CampaignOptions& options,
    std::span<Distinguisher* const> distinguishers,
    const CampaignPersistence& persist) {
  SABLE_REQUIRE(!distinguishers.empty(),
                "run_distinguishers needs at least one distinguisher");
  SABLE_REQUIRE(options.num_traces >= 2,
                "attack campaigns require at least two traces");
  validate_key(round(), options);
  for (Distinguisher* d : distinguishers) {
    SABLE_REQUIRE(d != nullptr, "distinguisher must not be null");
    d->validate(round());
    if (d->data_kind() == TraceDataKind::kSampled) {
      SABLE_REQUIRE(target_.num_levels() > 0,
                    "time-resolved campaigns need at least one logic level");
    }
  }
  const CampaignManifest manifest = campaign_manifest(options);
  return with_lane(target_, *pools_, options,
                   [&](const auto& prototype, auto& pool) {
                     return run_distinguishers_impl(prototype, pool,
                                                    pools_->workers, options,
                                                    manifest, distinguishers,
                                                    persist);
                   });
}

void TraceEngine::merge_partials(
    const CampaignOptions& options,
    std::span<Distinguisher* const> distinguishers,
    const std::vector<std::string>& partial_paths) {
  SABLE_REQUIRE(!distinguishers.empty(),
                "merge_partials needs at least one distinguisher");
  SABLE_REQUIRE(!partial_paths.empty(),
                "merge_partials needs at least one partial state file");
  validate_key(round(), options);
  for (Distinguisher* d : distinguishers) {
    SABLE_REQUIRE(d != nullptr, "distinguisher must not be null");
    d->validate(round());
  }
  const CampaignManifest manifest = campaign_manifest(options);
  ShardStates states(distinguishers.size());
  for (auto& row : states) {
    row.resize(static_cast<std::size_t>(manifest.num_shards));
  }
  // Overlaps between files throw ShardIndexError from the loader; gaps
  // surface in the reducer's full-coverage check.
  for (const std::string& path : partial_paths) {
    load_campaign_state(path, manifest, distinguishers, states);
  }
  const ShardLayout layout = layout_for(options);
  reduce_and_finalize_distinguishers(
      distinguishers, states, pools_->workers,
      resolve_threads(options, layout.num_shards));
}

void TraceEngine::record(const CampaignOptions& options, TraceDataKind kind,
                         const std::string& path, std::uint32_t compression,
                         std::uint32_t version) {
  validate_key(round(), options);
  SABLE_REQUIRE(options.num_traces >= 1,
                "recording requires at least one trace");
  CorpusManifest manifest;
  manifest.campaign = campaign_manifest(options);
  manifest.compression = compression;
  manifest.pt_stride = round().state_bytes();
  if (kind == TraceDataKind::kScalar) {
    manifest.kind = kCorpusKindScalar;
    manifest.sample_width = 1;
  } else {
    SABLE_REQUIRE(target_.num_levels() > 0,
                  "time-resolved campaigns need at least one logic level");
    manifest.kind = kCorpusKindSampled;
    manifest.sample_width = target_.num_levels();
  }
  CorpusWriter writer(path, manifest, version);
  // stream()/stream_sampled() emit shards in canonical order on the
  // calling thread — exactly append_shard's contract.
  const auto sink = [&](const std::uint8_t* pts, const double* samples,
                        std::size_t count) {
    writer.append_shard(pts, samples, count);
  };
  if (kind == TraceDataKind::kScalar) {
    stream(options, sink);
  } else {
    stream_sampled(options, sink);
  }
  writer.finish();
}

bool TraceEngine::replay(const CorpusReader& corpus,
                         std::span<Distinguisher* const> distinguishers,
                         const CampaignPersistence& persist,
                         std::size_t num_threads) {
  return replay_distinguishers(corpus, round(), distinguishers, persist,
                               num_threads, &pools_->workers);
}

CampaignManifest TraceEngine::campaign_manifest(
    const CampaignOptions& options) const {
  const ShardLayout layout = layout_for(options);
  CampaignManifest manifest;
  manifest.spec_hash = round_spec_hash(round());
  manifest.seed = options.seed;
  manifest.num_traces = options.num_traces;
  manifest.shard_size = layout.shard_size;
  manifest.num_shards = layout.num_shards;
  manifest.noise_sigma = options.noise_sigma;
  manifest.key = options.key;
  return manifest;
}

AttackResult TraceEngine::cpa_campaign(const CampaignOptions& options,
                                       const AttackSelector& selector) {
  SABLE_REQUIRE(options.num_traces >= 2, "CPA requires at least two traces");
  validate_attack_selector(round(), selector, /*require_bit=*/false);
  CpaDistinguisher cpa(round().sboxes[selector.sbox_index], selector);
  Distinguisher* const list[] = {&cpa};
  run_distinguishers(options, list);
  return cpa.result();
}

std::vector<AttackResult> TraceEngine::cpa_campaign_all_subkeys(
    const CampaignOptions& options, PowerModel model, std::size_t bit) {
  std::vector<CpaDistinguisher> attacks;
  attacks.reserve(round().num_sboxes());
  std::vector<Distinguisher*> list;
  list.reserve(round().num_sboxes());
  for (std::size_t i = 0; i < round().num_sboxes(); ++i) {
    const AttackSelector selector{.sbox_index = i, .model = model, .bit = bit};
    validate_attack_selector(round(), selector, /*require_bit=*/false);
    attacks.emplace_back(round().sboxes[i], selector);
  }
  for (CpaDistinguisher& attack : attacks) list.push_back(&attack);
  run_distinguishers(options, list);
  std::vector<AttackResult> results;
  results.reserve(attacks.size());
  for (const CpaDistinguisher& attack : attacks) {
    results.push_back(attack.result());
  }
  return results;
}

SecondOrderAttackResult TraceEngine::second_order_cpa_campaign(
    const CampaignOptions& options, const AttackSelector& selector) {
  SABLE_REQUIRE(options.num_traces >= 2,
                "second-order CPA requires at least two traces");
  validate_attack_selector(round(), selector, /*require_bit=*/false);
  SABLE_REQUIRE(target_.num_levels() >= 2,
                "second-order CPA needs at least two logic levels to pair");
  SecondOrderCpaDistinguisher attack(round().sboxes[selector.sbox_index],
                                     selector);
  Distinguisher* const list[] = {&attack};
  run_distinguishers(options, list);
  return attack.result();
}

AttackResult TraceEngine::dom_campaign(const CampaignOptions& options,
                                       const AttackSelector& selector) {
  SABLE_REQUIRE(options.num_traces >= 2, "DPA requires at least two traces");
  validate_attack_selector(round(), selector, /*require_bit=*/true);
  DomDistinguisher dom(round().sboxes[selector.sbox_index], selector);
  Distinguisher* const list[] = {&dom};
  run_distinguishers(options, list);
  return dom.result();
}

MtdResult TraceEngine::mtd_campaign(const CampaignOptions& options,
                                    const AttackSelector& selector,
                                    const std::vector<std::size_t>& checkpoints) {
  SABLE_REQUIRE(options.num_traces >= 2, "MTD requires at least two traces");
  validate_key(round(), options);
  validate_attack_selector(round(), selector, /*require_bit=*/false);
  MtdDistinguisher mtd(round().sboxes[selector.sbox_index], selector,
                       round().sub_word(options.key.data(),
                                        selector.sbox_index),
                       checkpoints, options.num_traces);
  Distinguisher* const list[] = {&mtd};
  run_distinguishers(options, list);
  return mtd.result();
}

MultiAttackResult TraceEngine::multi_cpa_campaign(
    const CampaignOptions& options, const AttackSelector& selector) {
  SABLE_REQUIRE(options.num_traces >= 2,
                "multisample CPA requires at least two traces");
  validate_attack_selector(round(), selector, /*require_bit=*/false);
  SABLE_REQUIRE(target_.num_levels() > 0,
                "time-resolved campaigns need at least one logic level");
  MultiCpaDistinguisher attack(round().sboxes[selector.sbox_index], selector,
                               target_.num_levels());
  Distinguisher* const list[] = {&attack};
  run_distinguishers(options, list);
  return attack.result();
}

}  // namespace sable
