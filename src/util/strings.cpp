#include "util/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace sable {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

std::string format_sig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, value);
  return buf;
}

std::string format_eng(double value, std::string_view unit) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"},  {1e3, "k"},
                   {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"},
                   {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"}};
  const double mag = std::fabs(value);
  if (mag == 0.0) return "0" + std::string(unit);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9995) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.4g%s%.*s", value / p.scale, p.prefix,
                    static_cast<int>(unit.size()), unit.data());
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g%.*s", value,
                static_cast<int>(unit.size()), unit.data());
  return buf;
}

}  // namespace sable
