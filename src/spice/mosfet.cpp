#include "spice/mosfet.hpp"

#include <cmath>

namespace sable::spice {

namespace {

// Forward-mode NMOS evaluation with vds >= 0: returns ids, gm = d/dvgs,
// gds = d/dvds.
struct ForwardEval {
  double ids = 0.0;
  double gm = 0.0;
  double gds = 0.0;
};

ForwardEval nmos_forward(const MosModelParams& p, double vgs, double vds,
                         double beta) {
  ForwardEval e;
  const double vt = p.vt0;
  const double vov = vgs - vt;
  if (vov <= 0.0) {
    return e;  // cut-off
  }
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode.
    const double core = vov * vds - 0.5 * vds * vds;
    e.ids = beta * core * clm;
    e.gm = beta * vds * clm;
    e.gds = beta * ((vov - vds) * clm + core * p.lambda);
  } else {
    // Saturation.
    const double core = 0.5 * vov * vov;
    e.ids = beta * core * clm;
    e.gm = beta * vov * clm;
    e.gds = beta * core * p.lambda;
  }
  return e;
}

}  // namespace

MosLinearization mos_linearize(MosType type, const MosModelParams& params,
                               double vd, double vg, double vs, double w,
                               double l) {
  if (type == MosType::kPmos) {
    // id_p(v) = -id_n(-v) with the magnitude-parameter NMOS model; the
    // chain rule cancels both sign flips in the derivatives.
    MosModelParams np = params;
    np.vt0 = std::fabs(params.vt0);
    const MosLinearization n = mos_linearize(MosType::kNmos, np, -vd, -vg,
                                             -vs, w, l);
    MosLinearization out;
    out.id = -n.id;
    out.did_dvd = n.did_dvd;
    out.did_dvg = n.did_dvg;
    out.did_dvs = n.did_dvs;
    return out;
  }

  const double beta = params.kp * (w / l);
  MosLinearization out;
  if (vd >= vs) {
    const ForwardEval e = nmos_forward(params, vg - vs, vd - vs, beta);
    out.id = e.ids;
    out.did_dvd = e.gds;
    out.did_dvg = e.gm;
    out.did_dvs = -(e.gm + e.gds);
  } else {
    // Source and drain exchange roles; current through the channel reverses.
    const ForwardEval e = nmos_forward(params, vg - vd, vs - vd, beta);
    out.id = -e.ids;
    out.did_dvg = -e.gm;
    out.did_dvs = -e.gds;
    out.did_dvd = e.gm + e.gds;
  }
  return out;
}

}  // namespace sable::spice
