// Boolean expression AST.
//
// Expressions are immutable, shared DAG nodes. The design methods of the
// paper (§4) operate on negation-normal form (NNF): complements appear only
// on variables ("until the network consists of only 1 literal", step 4).
// Factory functions perform light canonicalization: constant folding,
// flattening of nested AND/OR, and double-negation elimination.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sable {

/// Index of an interned input variable.
using VarId = std::uint32_t;

/// Maps variable names to ids and back. Shared by parser, printer and the
/// netlist modules so that devices can be labelled with the paper's names
/// (A, B, C, D ...).
class VarTable {
 public:
  /// Returns the id of `name`, interning it on first use.
  VarId intern(const std::string& name);

  /// Returns the id of `name` or throws InvalidArgument if unknown.
  VarId id_of(const std::string& name) const;

  /// True if `name` has been interned.
  bool contains(const std::string& name) const;

  /// Name of variable `id`.
  const std::string& name(VarId id) const;

  std::size_t size() const { return names_.size(); }

  /// Convenience: intern names "A", "B", ... for `n` variables.
  static VarTable alphabetic(std::size_t n);

 private:
  std::vector<std::string> names_;
};

enum class ExprKind : std::uint8_t { kConst0, kConst1, kVar, kNot, kAnd, kOr };

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One immutable AST node. Build through the static factories only.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  bool is_const() const {
    return kind_ == ExprKind::kConst0 || kind_ == ExprKind::kConst1;
  }
  bool is_var() const { return kind_ == ExprKind::kVar; }
  /// A literal is a variable or a negated variable.
  bool is_literal() const;

  /// Variable id; valid when kind()==kVar, or for a literal via literal_var().
  VarId var() const;

  /// For a literal: its variable id.
  VarId literal_var() const;
  /// For a literal: true if the literal is positive (un-negated).
  bool literal_positive() const;

  const std::vector<ExprPtr>& operands() const { return ops_; }

  // -- Factories -------------------------------------------------------

  static ExprPtr constant(bool value);
  static ExprPtr variable(VarId id);
  /// Negation; folds constants and double negation.
  static ExprPtr negate(ExprPtr e);
  /// N-ary AND; flattens nested ANDs, folds constants, requires >= 1 operand.
  static ExprPtr conj(std::vector<ExprPtr> ops);
  /// N-ary OR; flattens nested ORs, folds constants, requires >= 1 operand.
  static ExprPtr disj(std::vector<ExprPtr> ops);
  /// XOR of two operands, expanded to NNF-friendly AND/OR form.
  static ExprPtr exclusive_or(ExprPtr a, ExprPtr b);

  // Binary conveniences.
  static ExprPtr conj2(ExprPtr a, ExprPtr b);
  static ExprPtr disj2(ExprPtr a, ExprPtr b);

  // -- Structure queries ------------------------------------------------

  /// Number of literal occurrences (leaf count counting repeats).
  std::size_t literal_count() const;
  /// All distinct variables, sorted ascending.
  std::vector<VarId> variables() const;
  /// Height of the AST (literal == 0).
  std::size_t depth() const;

 private:
  Expr(ExprKind kind, VarId var, std::vector<ExprPtr> ops)
      : kind_(kind), var_(var), ops_(std::move(ops)) {}

  /// Shared flatten/fold logic behind conj() and disj().
  static ExprPtr make_nary(ExprKind kind, std::vector<ExprPtr> ops);

  ExprKind kind_;
  VarId var_ = 0;
  std::vector<ExprPtr> ops_;
};

}  // namespace sable
