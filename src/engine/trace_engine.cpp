#include "engine/trace_engine.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace sable {

std::size_t campaign_shard_size(const CampaignOptions& options) {
  SABLE_REQUIRE(options.block_size > 0, "block size must be positive");
  constexpr std::size_t kLanes = SablGateSimBatch::kLanes;
  return std::max<std::size_t>(kLanes, options.block_size / kLanes * kLanes);
}

std::uint64_t campaign_shard_seed(std::uint64_t campaign_seed,
                                  std::size_t shard, std::size_t stream) {
  // splitmix64 finalizer over a (seed, shard, stream) counter: every shard
  // gets a decorrelated sub-stream that is reproducible from the campaign
  // seed and the shard index alone, no matter which worker runs it.
  std::uint64_t z =
      campaign_seed ^
      (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(shard) + 1)) ^
      (0xD1B54A32D192ED03ULL * (static_cast<std::uint64_t>(stream) + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::size_t campaign_thread_count(const CampaignOptions& options) {
  if (options.num_threads != 0) return options.num_threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

namespace {

// Fixed block-granular decomposition of a campaign: shard s covers traces
// [start(s), start(s) + count(s)) of the canonical trace order.
struct ShardLayout {
  std::size_t shard_size = 0;
  std::size_t num_shards = 0;
  std::size_t num_traces = 0;
  std::size_t start(std::size_t s) const { return s * shard_size; }
  std::size_t count(std::size_t s) const {
    return std::min(shard_size, num_traces - start(s));
  }
};

ShardLayout layout_for(const CampaignOptions& options) {
  ShardLayout layout;
  layout.shard_size = campaign_shard_size(options);
  layout.num_traces = options.num_traces;
  layout.num_shards =
      (options.num_traces + layout.shard_size - 1) / layout.shard_size;
  return layout;
}

std::size_t resolve_threads(const CampaignOptions& options,
                            std::size_t num_shards) {
  return std::max<std::size_t>(
      1, std::min(campaign_thread_count(options), num_shards));
}

// Simulates one shard into caller-provided storage: per-shard RNG streams
// and fresh simulator state make the result a pure function of (options,
// shard) — the invariant every determinism guarantee rests on.
void simulate_shard(SboxTarget& target, const CampaignOptions& options,
                    const ShardLayout& layout, std::size_t shard,
                    std::uint8_t* pts, double* samples) {
  const std::size_t count = layout.count(shard);
  const std::uint64_t pt_range = std::uint64_t{1} << target.spec().in_bits;
  Rng pt_rng(campaign_shard_seed(options.seed, shard, 0));
  Rng noise_rng(campaign_shard_seed(options.seed, shard, 1));
  target.reset_state();
  for (std::size_t i = 0; i < count; ++i) {
    pts[i] = static_cast<std::uint8_t>(pt_rng.below(pt_range));
  }
  target.trace_batch(pts, count, options.key, options.noise_sigma, noise_rng,
                     samples);
}

// Per-worker context: an independent target clone plus optional reusable
// trace buffers, so the shard loop never allocates or shares mutable
// state. Buffers are lazy — consumers that simulate into external storage
// (run's TraceSet slices, stream's per-shard slots) never pay for them.
struct WorkerCtx {
  SboxTarget target;
  std::vector<std::uint8_t> pts;
  std::vector<double> samples;

  explicit WorkerCtx(const SboxTarget& prototype)
      : target(prototype.clone()) {}

  void ensure_buffers(std::size_t shard_size) {
    if (pts.size() < shard_size) {
      pts.resize(shard_size);
      samples.resize(shard_size);
    }
  }
};

// Dynamic shard scheduler: `fn(ctx, shard)` runs for every shard index on
// `threads` workers (inline on the calling thread when threads == 1).
// fn must only touch ctx and shard-indexed slots, keeping the pool free of
// locks on the hot path. Worker exceptions are rethrown on the caller.
template <typename Fn>
void run_pool(const SboxTarget& prototype, const ShardLayout& layout,
              std::size_t threads, Fn&& fn) {
  if (layout.num_shards == 0) return;
  if (threads <= 1) {
    WorkerCtx ctx(prototype);
    for (std::size_t s = 0; s < layout.num_shards; ++s) fn(ctx, s);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr error;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      try {
        WorkerCtx ctx(prototype);
        for (std::size_t s = next.fetch_add(1); s < layout.num_shards;
             s = next.fetch_add(1)) {
          fn(ctx, s);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace

TraceEngine::TraceEngine(const SboxSpec& spec, LogicStyle style,
                         const Technology& tech)
    : target_(spec, style, tech) {}

TraceSet TraceEngine::run(const CampaignOptions& options) {
  const ShardLayout layout = layout_for(options);
  TraceSet traces;
  traces.plaintexts.resize(options.num_traces);
  traces.samples.resize(options.num_traces);
  // Shards map to disjoint slices of the canonical trace order, so workers
  // simulate straight into the final TraceSet with no ordering hand-off.
  run_pool(target_, layout, resolve_threads(options, layout.num_shards),
           [&](WorkerCtx& ctx, std::size_t s) {
             simulate_shard(ctx.target, options, layout, s,
                            traces.plaintexts.data() + layout.start(s),
                            traces.samples.data() + layout.start(s));
           });
  return traces;
}

void TraceEngine::stream(const CampaignOptions& options,
                         const TraceSink& sink) {
  const ShardLayout layout = layout_for(options);
  if (layout.num_shards == 0) return;
  const std::size_t threads = resolve_threads(options, layout.num_shards);
  if (threads <= 1) {
    WorkerCtx ctx(target_);
    ctx.ensure_buffers(layout.shard_size);
    for (std::size_t s = 0; s < layout.num_shards; ++s) {
      simulate_shard(ctx.target, options, layout, s, ctx.pts.data(),
                     ctx.samples.data());
      sink(ctx.pts.data(), ctx.samples.data(), layout.count(s));
    }
    return;
  }

  // Not run_pool: the bounded in-order hand-off needs the emitter to run
  // on the calling thread CONCURRENTLY with the workers (a blocking pool
  // helper can't interleave it), and a sink failure must abort workers
  // waiting on the window — so this path owns its spawn/claim/join cycle.

  // Parallel path: workers fill per-shard slots; the calling thread emits
  // them to the sink in canonical shard order. Workers stall once they run
  // `window` shards ahead of the emitter, bounding in-flight storage.
  struct Slot {
    std::vector<std::uint8_t> pts;
    std::vector<double> samples;
    bool ready = false;
  };
  std::vector<Slot> slots(layout.num_shards);
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::condition_variable space_cv;
  std::size_t emit = 0;
  bool failed = false;
  const std::size_t window = 2 * threads + 2;
  std::exception_ptr sink_error;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr worker_error;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      try {
        // No WorkerCtx here: this path simulates straight into per-shard
        // Slot buffers (they outlive the shard until emitted), so the
        // worker needs only its target clone.
        SboxTarget worker = target_.clone();
        for (std::size_t s = next.fetch_add(1); s < layout.num_shards;
             s = next.fetch_add(1)) {
          {
            std::unique_lock<std::mutex> lock(mutex);
            space_cv.wait(lock, [&] { return failed || s < emit + window; });
            if (failed) return;
          }
          Slot slot;
          slot.pts.resize(layout.count(s));
          slot.samples.resize(layout.count(s));
          simulate_shard(worker, options, layout, s, slot.pts.data(),
                         slot.samples.data());
          slot.ready = true;
          {
            std::lock_guard<std::mutex> lock(mutex);
            slots[s] = std::move(slot);
          }
          ready_cv.notify_all();
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!worker_error) worker_error = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(mutex);
          failed = true;
        }
        ready_cv.notify_all();
        space_cv.notify_all();
      }
    });
  }

  // Emitter loop (calling thread): strictly in shard order, the sink never
  // runs concurrently with itself, matching the sequential contract.
  try {
    while (emit < layout.num_shards) {
      Slot slot;
      {
        std::unique_lock<std::mutex> lock(mutex);
        ready_cv.wait(lock, [&] { return failed || slots[emit].ready; });
        if (failed) break;
        slot = std::move(slots[emit]);
      }
      sink(slot.pts.data(), slot.samples.data(), slot.pts.size());
      {
        std::lock_guard<std::mutex> lock(mutex);
        ++emit;
      }
      space_cv.notify_all();
    }
  } catch (...) {
    sink_error = std::current_exception();
    {
      std::lock_guard<std::mutex> lock(mutex);
      failed = true;
    }
    space_cv.notify_all();
  }
  for (std::thread& worker : pool) worker.join();
  if (sink_error) std::rethrow_exception(sink_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

AttackResult TraceEngine::cpa_campaign(const CampaignOptions& options,
                                       PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "CPA requires at least two traces");
  const ShardLayout layout = layout_for(options);
  // One accumulator per shard (copies share the prediction table); the
  // merge below runs in canonical shard order, so the result is
  // bit-identical for any thread count.
  StreamingCpa prototype(spec(), model, bit);
  std::vector<StreamingCpa> shards(layout.num_shards, prototype);
  run_pool(target_, layout, resolve_threads(options, layout.num_shards),
           [&](WorkerCtx& ctx, std::size_t s) {
             ctx.ensure_buffers(layout.shard_size);
             simulate_shard(ctx.target, options, layout, s, ctx.pts.data(),
                            ctx.samples.data());
             shards[s].add_batch(ctx.pts.data(), ctx.samples.data(),
                                 layout.count(s));
           });
  for (const StreamingCpa& shard : shards) prototype.merge(shard);
  return prototype.result();
}

AttackResult TraceEngine::dom_campaign(const CampaignOptions& options,
                                       std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "DPA requires at least two traces");
  const ShardLayout layout = layout_for(options);
  StreamingDom prototype(spec(), bit);
  std::vector<StreamingDom> shards(layout.num_shards, prototype);
  run_pool(target_, layout, resolve_threads(options, layout.num_shards),
           [&](WorkerCtx& ctx, std::size_t s) {
             ctx.ensure_buffers(layout.shard_size);
             simulate_shard(ctx.target, options, layout, s, ctx.pts.data(),
                            ctx.samples.data());
             shards[s].add_batch(ctx.pts.data(), ctx.samples.data(),
                                 layout.count(s));
           });
  for (const StreamingDom& shard : shards) prototype.merge(shard);
  return prototype.result();
}

MtdResult TraceEngine::mtd_campaign(const CampaignOptions& options,
                                    PowerModel model,
                                    const std::vector<std::size_t>& checkpoints,
                                    std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "MTD requires at least two traces");
  const ShardLayout layout = layout_for(options);
  // Canonical checkpoint ladder: sorted, unique, and restricted to counts
  // both drivers can evaluate (>= 2 traces, within the campaign).
  std::vector<std::size_t> ladder = checkpoints;
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  ladder.erase(std::remove_if(ladder.begin(), ladder.end(),
                              [&](std::size_t c) {
                                return c < 2 || c > options.num_traces;
                              }),
               ladder.end());

  // Per shard: the full accumulator plus a partial snapshot at every
  // checkpoint falling inside the shard's trace range.
  struct MtdShard {
    std::vector<std::pair<std::size_t, StreamingCpa>> snapshots;
    std::optional<StreamingCpa> full;
  };
  const StreamingCpa prototype(spec(), model, bit);
  std::vector<MtdShard> shards(layout.num_shards);
  run_pool(
      target_, layout, resolve_threads(options, layout.num_shards),
      [&](WorkerCtx& ctx, std::size_t s) {
        ctx.ensure_buffers(layout.shard_size);
        simulate_shard(ctx.target, options, layout, s, ctx.pts.data(),
                       ctx.samples.data());
        const std::size_t start = layout.start(s);
        const std::size_t count = layout.count(s);
        StreamingCpa acc = prototype;
        std::size_t done = 0;
        for (auto it = std::upper_bound(ladder.begin(), ladder.end(), start);
             it != ladder.end() && *it <= start + count; ++it) {
          const std::size_t upto = *it - start;
          acc.add_batch(ctx.pts.data() + done, ctx.samples.data() + done,
                        upto - done);
          done = upto;
          shards[s].snapshots.emplace_back(*it, acc);
        }
        acc.add_batch(ctx.pts.data() + done, ctx.samples.data() + done,
                      count - done);
        shards[s].full = std::move(acc);
      });

  ShardedMtd driver(options.key);
  for (MtdShard& shard : shards) {
    for (const auto& [count, snapshot] : shard.snapshots) {
      driver.checkpoint(count, snapshot);
    }
    driver.append(*shard.full);
  }
  return driver.result();
}

}  // namespace sable
