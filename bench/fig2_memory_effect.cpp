// Experiment E1 + E7 (Fig. 2 and the §2 CVSL claim).
//
// Part 1 — switch-level: the genuine vs. fully connected AND-NAND gate.
// Reproduces the Fig. 2 narrative: node W floats exactly for the (0,0)
// input event of the genuine network, producing input-dependent recharge
// capacitance; the repositioned-M2 network discharges W always.
//
// Part 2 — transistor-level: the CVSL AND-NAND gate (§2 cites a variation
// "as large as 50%" for its per-event power) vs. the SABL-FC gate, both
// simulated with the mini-SPICE engine over all input events.
#include <algorithm>
#include <cstdio>

#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/memory_effect.hpp"
#include "expr/parser.hpp"
#include "netlist/conduction.hpp"
#include "power/stats.hpp"
#include "sabl/testbench.hpp"
#include "switchsim/energy.hpp"
#include "util/strings.hpp"

using namespace sable;

namespace {

void part1_switch_level() {
  std::printf("== E1 (Fig. 2): memory effect, switch-level =================\n");
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);

  for (const bool fully_connected : {false, true}) {
    const DpdnNetwork net = fully_connected ? synthesize_fc_dpdn(f, 2)
                                            : build_genuine_dpdn(f, 2);
    const MemoryEffectReport mem = analyze_memory_effect(net);
    const GateEnergyModel model = build_gate_model(net, tech, sizing);
    // Batch-backed profile: all four assignments run as lanes of a single
    // bit-parallel cycle, as does the discharge-set query below.
    const EnergyProfile profile = profile_gate_energy(net, model);
    const std::uint64_t assignments[4] = {0, 1, 2, 3};  // lane = assignment
    std::vector<std::uint64_t> var_words(2, 0);
    pack_lane_words(assignments, 4, var_words);
    const auto connected = connected_to_external_batch(net, var_words);

    std::printf("\n%s AND-NAND network:\n",
                fully_connected ? "fully connected" : "genuine");
    std::printf("  input (A,B)   W discharges   cycle energy\n");
    for (std::uint64_t a = 0; a < 4; ++a) {
      std::printf("  (%llu,%llu)         %-3s            %s\n",
                  (unsigned long long)(a & 1), (unsigned long long)(a >> 1),
                  ((connected[3] >> a) & 1u) != 0 ? "yes" : "NO",
                  format_eng(profile.energy_per_input[a], "J").c_str());
    }
    std::printf("  memoryless: %s | discharge classes: %zu | NED = %.2f%%\n",
                mem.memoryless ? "yes" : "NO", mem.num_discharge_classes,
                profile.ned * 100.0);
  }
}

void part2_spice_cvsl() {
  std::printf("\n== E7 (paper §2): CVSL vs SABL-FC per-event energy, SPICE ===\n");
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  // Walk through every input event (transition between assignments).
  const std::vector<std::uint64_t> seq = {0b00, 0b01, 0b00, 0b10, 0b00, 0b11,
                                          0b01, 0b10, 0b01, 0b11, 0b10, 0b11,
                                          0b00};

  const DpdnNetwork genuine = build_genuine_dpdn(f, 2);
  const SablRunResult cvsl =
      run_cvsl_sequence(genuine, vars, tech, sizing, seq);
  std::printf("\nCVSL AND-NAND (static, genuine DPDN):\n");
  std::printf("  event -> input   transition energy\n");
  for (std::size_t k = 1; k < cvsl.cycles.size(); ++k) {
    std::printf("  (%llu,%llu) -> (%llu,%llu)   %s\n",
                (unsigned long long)(cvsl.cycles[k - 1].assignment & 1),
                (unsigned long long)(cvsl.cycles[k - 1].assignment >> 1),
                (unsigned long long)(cvsl.cycles[k].assignment & 1),
                (unsigned long long)(cvsl.cycles[k].assignment >> 1),
                format_eng(cvsl.cycles[k].energy, "J").c_str());
  }
  const std::vector<double> energies = cycle_energies(cvsl);
  std::vector<double> cvsl_all(energies.begin() + 1, energies.end());
  std::vector<double> cvsl_consuming;
  for (double e : cvsl_all) {
    if (e > 1e-15) cvsl_consuming.push_back(e);
  }
  const SpreadMetrics m_all = spread_metrics(cvsl_all);
  const SpreadMetrics m_consuming = spread_metrics(cvsl_consuming);
  std::printf(
      "  variation over all events (NED): %.1f%% (static logic: some events"
      " are free)\n",
      m_all.ned * 100.0);
  std::printf(
      "  variation over supply-consuming events: %.1f%%  (paper: \"can be as"
      " large as 50%%\")\n",
      m_consuming.ned * 100.0);

  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const SablRunResult sabl = run_sabl_sequence(fc, vars, tech, sizing, seq);
  std::printf("\nSABL with fully connected DPDN (dynamic):\n");
  std::printf("  per-cycle energy NED: %.2f%%\n",
              spread_metrics(cycle_energies(sabl)).ned * 100.0);
}

}  // namespace

int main() {
  part1_switch_level();
  part2_spice_cvsl();
  return 0;
}
