// Gate-level circuits of differential cells.
//
// Signals are differential: both polarities of every signal exist
// physically, so an inverted connection is a free rail swap — SignalRef
// carries a polarity flag instead of the circuit needing inverter cells.
// Gates are stored in topological order (a gate may only read primary
// inputs and earlier gates), which makes cycle-based simulation a single
// forward sweep.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cell/library.hpp"

namespace sable {

struct SignalRef {
  enum class Kind : std::uint8_t { kInput, kGate };
  Kind kind = Kind::kInput;
  std::size_t index = 0;
  bool positive = true;

  static SignalRef input(std::size_t i, bool positive = true) {
    return SignalRef{Kind::kInput, i, positive};
  }
  static SignalRef gate(std::size_t g, bool positive = true) {
    return SignalRef{Kind::kGate, g, positive};
  }
  SignalRef negated() const { return SignalRef{kind, index, !positive}; }
};

struct GateInstance {
  std::string name;
  std::size_t cell_index = 0;
  std::vector<SignalRef> inputs;  // one per cell input, positional
};

class GateCircuit {
 public:
  explicit GateCircuit(std::size_t num_primary_inputs)
      : num_inputs_(num_primary_inputs) {}

  /// Registers a cell master; returns its index.
  std::size_t add_cell(Cell cell);

  /// Instantiates a gate. All referenced gates must already exist.
  std::size_t add_gate(std::size_t cell_index, std::vector<SignalRef> inputs,
                       std::string name = {});

  void mark_output(SignalRef signal) { outputs_.push_back(signal); }

  std::size_t num_primary_inputs() const { return num_inputs_; }
  const std::vector<Cell>& cells() const { return cells_; }
  const std::vector<GateInstance>& gates() const { return gates_; }
  const std::vector<SignalRef>& outputs() const { return outputs_; }

  /// Total transistor count over all gate instances (DPDN devices only).
  std::size_t total_dpdn_devices() const;

 private:
  std::size_t num_inputs_;
  std::vector<Cell> cells_;
  std::vector<GateInstance> gates_;
  std::vector<SignalRef> outputs_;
};

}  // namespace sable
