// Unit tests for the MNA assembly layer — the one part of the SPICE engine
// otherwise only covered indirectly through full simulations.
#include <gtest/gtest.h>

#include "spice/linear.hpp"

namespace sable::spice {
namespace {

TEST(MnaTest, UnknownLayout) {
  // 4 nodes (incl. ground) + 2 sources: 3 voltage + 2 current unknowns.
  MnaSystem mna(4, 2);
  EXPECT_EQ(mna.unknown_count(), 5u);
  EXPECT_EQ(mna.node_unknown(1), 0u);
  EXPECT_EQ(mna.node_unknown(3), 2u);
  EXPECT_EQ(mna.source_unknown(0), 3u);
  EXPECT_EQ(mna.source_unknown(1), 4u);
}

TEST(MnaTest, VoltageDividerByHand) {
  // v1 --1k-- v2 --1k-- gnd, source 2 V at v1.
  MnaSystem mna(3, 1);
  mna.clear();
  mna.stamp_conductance(1, 2, 1e-3);
  mna.stamp_conductance(2, kGround, 1e-3);
  mna.stamp_vsource(0, 1, kGround, 2.0);
  std::vector<double> x;
  ASSERT_TRUE(mna.solve(x));
  EXPECT_NEAR(x[mna.node_unknown(1)], 2.0, 1e-12);
  EXPECT_NEAR(x[mna.node_unknown(2)], 1.0, 1e-12);
  // Branch current into the + terminal: the source *delivers* 1 mA.
  EXPECT_NEAR(x[mna.source_unknown(0)], -1e-3, 1e-12);
}

TEST(MnaTest, CurrentInjection) {
  // 1 mA into node 1 through 1k to ground: v1 = 1 V.
  MnaSystem mna(2, 0);
  mna.clear();
  mna.stamp_conductance(1, kGround, 1e-3);
  mna.stamp_current_into(1, 1e-3);
  std::vector<double> x;
  ASSERT_TRUE(mna.solve(x));
  EXPECT_NEAR(x[mna.node_unknown(1)], 1.0, 1e-12);
}

TEST(MnaTest, GroundStampsAreDropped) {
  // Stamps touching ground must not corrupt the reduced system.
  MnaSystem mna(2, 0);
  mna.clear();
  mna.stamp_conductance(kGround, kGround, 123.0);  // no-op
  mna.stamp_current_into(kGround, 1.0);            // no-op
  mna.stamp_conductance(1, kGround, 1.0);
  mna.stamp_current_into(1, 2.0);
  std::vector<double> x;
  ASSERT_TRUE(mna.solve(x));
  EXPECT_NEAR(x[mna.node_unknown(1)], 2.0, 1e-12);
}

TEST(MnaTest, SingularWithoutAnyPathToGround) {
  // A node with no conductance anywhere is singular.
  MnaSystem mna(2, 0);
  mna.clear();
  std::vector<double> x;
  EXPECT_FALSE(mna.solve(x));
}

TEST(MnaTest, SolvePreservesAssembledSystem) {
  // solve() may be called repeatedly on the same assembly (Newton re-use).
  MnaSystem mna(2, 0);
  mna.clear();
  mna.stamp_conductance(1, kGround, 2.0);
  mna.stamp_current_into(1, 4.0);
  std::vector<double> x1;
  std::vector<double> x2;
  ASSERT_TRUE(mna.solve(x1));
  ASSERT_TRUE(mna.solve(x2));
  EXPECT_EQ(x1, x2);
}

TEST(MnaTest, TwoSourcesSuperpose) {
  // v1 and v2 forced independently; resistor between them carries the
  // difference.
  MnaSystem mna(3, 2);
  mna.clear();
  mna.stamp_conductance(1, 2, 1.0);  // 1 ohm
  mna.stamp_vsource(0, 1, kGround, 3.0);
  mna.stamp_vsource(1, 2, kGround, 1.0);
  std::vector<double> x;
  ASSERT_TRUE(mna.solve(x));
  EXPECT_NEAR(x[mna.node_unknown(1)], 3.0, 1e-12);
  EXPECT_NEAR(x[mna.node_unknown(2)], 1.0, 1e-12);
  // 2 A flows from node 1 to node 2: source 0 delivers it, source 1 sinks.
  EXPECT_NEAR(x[mna.source_unknown(0)], -2.0, 1e-12);
  EXPECT_NEAR(x[mna.source_unknown(1)], 2.0, 1e-12);
}

}  // namespace
}  // namespace sable::spice
