#include "core/fc_synthesizer.hpp"

#include <algorithm>

#include "expr/transforms.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

class Synthesizer {
 public:
  Synthesizer(DpdnNetwork& net, bool enhance) : net_(net), enhance_(enhance) {}

  // Emits the differential module of NNF expression `e` between true-top P,
  // false-top Q and bottom R.
  void emit(const ExprPtr& e, NodeId p, NodeId q, NodeId r) {
    if (e->is_literal()) {
      const SignalLiteral lit{e->literal_var(), e->literal_positive()};
      net_.add_switch(lit, p, r);
      net_.add_switch(SignalLiteral{lit.var, !lit.positive}, q, r);
      return;
    }
    switch (e->kind()) {
      case ExprKind::kAnd:
        emit_nary(e, p, q, r, /*is_and=*/true, 0);
        return;
      case ExprKind::kOr:
        emit_nary(e, p, q, r, /*is_and=*/false, 0);
        return;
      default:
        throw InvalidArgument(
            "FC synthesis requires a non-constant NNF expression");
    }
  }

 private:
  // Right-fold of operand `index` of the n-ary node `e`.
  void emit_nary(const ExprPtr& e, NodeId p, NodeId q, NodeId r, bool is_and,
                 std::size_t index) {
    const auto& ops = e->operands();
    if (index + 1 == ops.size()) {
      emit(ops[index], p, q, r);
      return;
    }
    const ExprPtr& x = ops[index];
    if (is_and) {
      // Case A: f = x.y — share the y network at the bottom of the series
      // chain; the false branch of y hangs from Q (possibly padded).
      const NodeId w = net_.add_internal_node();
      emit(x, p, q, w);
      const NodeId q_pad = enhance_ ? pad_with_pass_gates(q, x) : q;
      emit_nary(e, w, q_pad, r, is_and, index + 1);
    } else {
      // Case B: f = x+y — share the y' network at the bottom of the dual
      // series chain; the direct true branch of y hangs from P (padded).
      const NodeId v = net_.add_internal_node("V" + next_v_suffix());
      emit(x, p, q, v);
      const NodeId p_pad = enhance_ ? pad_with_pass_gates(p, x) : p;
      emit_nary(e, p_pad, v, r, is_and, index + 1);
    }
  }

  // §5: inserts a series chain of pass gates covering every variable of the
  // skipped sub-network `skipped`, starting at `from`; returns the far end.
  NodeId pad_with_pass_gates(NodeId from, const ExprPtr& skipped) {
    std::vector<VarId> vars = skipped->variables();
    std::sort(vars.begin(), vars.end());
    NodeId current = from;
    for (VarId v : vars) {
      const NodeId next = net_.add_internal_node("P" + next_p_suffix());
      net_.add_pass_gate(v, current, next);
      current = next;
    }
    return current;
  }

  std::string next_v_suffix() { return std::to_string(++v_counter_); }
  std::string next_p_suffix() { return std::to_string(++p_counter_); }

  DpdnNetwork& net_;
  bool enhance_;
  std::size_t v_counter_ = 0;
  std::size_t p_counter_ = 0;
};

}  // namespace

DpdnNetwork synthesize_fc_dpdn(const ExprPtr& f, std::size_t num_vars,
                               const FcSynthesisOptions& options) {
  SABLE_REQUIRE(!f->is_const(),
                "cannot synthesize a DPDN for a constant function");
  DpdnNetwork net(num_vars);
  Synthesizer synth(net, options.enhance);
  synth.emit(to_nnf(f), DpdnNetwork::kNodeX, DpdnNetwork::kNodeY,
             DpdnNetwork::kNodeZ);
  return net;
}

}  // namespace sable
