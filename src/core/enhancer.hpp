// §5: enhanced fully connected DPDNs.
//
// The enhancement inserts pass gates ("dummy transistors") so that every
// discharge path is controlled by every input signal. Consequences (paper):
//   1. the evaluation depth — and hence the discharge resistance — is
//      independent of the input event;
//   2. early propagation is eliminated: no evaluation can start before all
//      inputs are stable and complementary.
//
// Guarantees of this implementation:
//   - For expressions where each branch reads every variable at most once
//     per path (all paper examples; any factored read-once function), every
//     satisfiable discharge path has exactly num_vars devices.
//   - For arbitrary functions, use synthesize_enhanced_from_table(): the
//     function is first minimized to sum-of-products form; the enhanced
//     recursion then yields a constant depth equal to the total literal
//     count of the cover (every true path pads the cubes it skips, every
//     false path crosses every cube's false network once).
#pragma once

#include "core/fc_synthesizer.hpp"
#include "expr/truth_table.hpp"
#include "netlist/network.hpp"

namespace sable {

/// Enhanced FC-DPDN from an expression (§5 pass-gate insertion during the
/// §4.1 recursion).
DpdnNetwork synthesize_enhanced_dpdn(const ExprPtr& f, std::size_t num_vars);

/// Enhanced FC-DPDN with guaranteed constant evaluation depth for an
/// arbitrary function given as a truth table (minimize to SOP, then build).
DpdnNetwork synthesize_enhanced_from_table(const TruthTable& f);

struct EnhancementOverhead {
  std::size_t logic_devices = 0;
  std::size_t dummy_devices = 0;  // pass-gate halves
  double device_overhead = 0.0;   // dummy / logic
};

/// Area overhead of the enhancement (§5: "the trade-off is an increase in
/// area and total load capacitance").
EnhancementOverhead enhancement_overhead(const DpdnNetwork& enhanced);

}  // namespace sable
