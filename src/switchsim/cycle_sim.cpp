#include "switchsim/cycle_sim.hpp"

#include <bit>

#include "netlist/conduction.hpp"
#include "util/error.hpp"

namespace sable {

void pack_lane_words(const std::uint64_t* assignments, std::size_t count,
                     std::vector<std::uint64_t>& words) {
  for (std::size_t v = 0; v < words.size(); ++v) {
    std::uint64_t word = 0;
    for (std::size_t lane = 0; lane < count; ++lane) {
      word |= ((assignments[lane] >> v) & 1u) << lane;
    }
    words[v] = word;
  }
}

SablGateSimBatch::SablGateSimBatch(const DpdnNetwork& net,
                                   GateEnergyModel model)
    : net_(net), model_(std::move(model)) {
  SABLE_ASSERT(model_.node_cap.size() == net_.node_count(),
               "gate model capacitance table size mismatch");
  charged_.assign(net_.node_count(), ~std::uint64_t{0});
}

void SablGateSimBatch::cycle(const std::vector<std::uint64_t>& var_words,
                             std::uint64_t lane_mask, double* energy) {
  device_conduction_masks(net_, var_words, masks_);
  reach_.assign(net_.node_count(), 0);
  reach_[DpdnNetwork::kNodeX] = lane_mask;
  reach_[DpdnNetwork::kNodeY] = lane_mask;
  reach_[DpdnNetwork::kNodeZ] = lane_mask;
  propagate_conduction(net_, masks_, reach_);

  // Per lane the arithmetic mirrors the scalar cycle exactly (constant
  // term, then node capacitances in node order, then the output extra), so
  // a lane of the batch is bit-identical to a width-1 run. Full words take
  // plain 0..63 loops (auto-vectorized); sparse ones walk their set bits.
  const bool full_mask = lane_mask == ~std::uint64_t{0};
  if (full_mask) {
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      energy[lane] = model_.constant_energy;
    }
  } else {
    for (std::uint64_t m = lane_mask; m != 0; m &= m - 1) {
      energy[std::countr_zero(m)] = model_.constant_energy;
    }
  }

  for (NodeId n = 0; n < net_.node_count(); ++n) {
    // Evaluation: connected nodes discharge to ground; precharge with input
    // overlap recharges the same set from the supply. Floating nodes keep
    // their held level and cost nothing.
    const double e_node = model_.node_cap[n] * model_.vdd * model_.vdd;
    const std::uint64_t w = reach_[n];
    if (w == ~std::uint64_t{0}) {
      // Fully connected nodes (the §4 designs' steady state): plain
      // vectorizable add across all lanes.
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        energy[lane] += e_node;
      }
    } else if (full_mask) {
      // Mixed word (genuine networks): branch-free select; adding the
      // table's +0.0 for a clear bit leaves a non-negative accumulator
      // bit-identical to skipping the lane.
      const double select[2] = {0.0, e_node};
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        energy[lane] += select[(w >> lane) & 1u];
      }
    } else {
      for (std::uint64_t rest = w; rest != 0; rest &= rest - 1) {
        energy[std::countr_zero(rest)] += e_node;
      }
    }
    charged_[n] |= w;  // connected lanes end recharged
  }

  // The firing output rail charges its extra (routing) load: the true rail
  // when f = 1, the false rail otherwise. Balanced extras cancel the data
  // dependence; mismatched ones leak (§2).
  if (model_.out_true_extra != 0.0 || model_.out_false_extra != 0.0) {
    // X–Z closure reusing this cycle's device masks (no reallocation).
    reach_xz_.assign(net_.node_count(), 0);
    reach_xz_[DpdnNetwork::kNodeZ] = lane_mask;
    propagate_conduction(net_, masks_, reach_xz_);
    const std::uint64_t f = reach_xz_[DpdnNetwork::kNodeX];
    const double rail[2] = {model_.out_false_extra * model_.vdd * model_.vdd,
                            model_.out_true_extra * model_.vdd * model_.vdd};
    if (full_mask) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        energy[lane] += rail[(f >> lane) & 1u];
      }
    } else {
      for (std::uint64_t m = lane_mask; m != 0; m &= m - 1) {
        const std::size_t lane = std::countr_zero(m);
        energy[lane] += rail[(f >> lane) & 1u];
      }
    }
  }
}

void SablGateSimBatch::reset(bool charged) {
  charged_.assign(net_.node_count(), charged ? ~std::uint64_t{0} : 0);
}

SablGateSim::SablGateSim(const DpdnNetwork& net, GateEnergyModel model)
    : batch_(net, std::move(model)) {
  charged_.assign(net.node_count(), true);
  var_words_.assign(net.num_vars(), 0);
}

double SablGateSim::cycle(std::uint64_t assignment) {
  pack_lane_words(&assignment, 1, var_words_);
  double energy[SablGateSimBatch::kLanes];
  batch_.cycle(var_words_, 1u, energy);
  const auto& words = batch_.node_state_words();
  for (NodeId n = 0; n < batch_.network().node_count(); ++n) {
    charged_[n] = (words[n] & 1u) != 0;
  }
  return energy[0];
}

void SablGateSim::reset(bool charged) {
  batch_.reset(charged);
  charged_.assign(batch_.network().node_count(), charged);
}

}  // namespace sable
