// Symbolic (BDD-based) verification of differential pull-down networks.
//
// The conduction function between any two nodes of a switch network is the
// transitive closure of the edge-label Boolean matrix — computed here by
// Floyd-Warshall over the (OR, AND) semiring with BDD labels. The paper's
// checks then become canonical-form identities:
//   functionality:      reach(X,Z) == f,  reach(Y,Z) == f',  reach(X,Y) == 0
//   full connectivity:  for every internal n:
//                       reach(n,X) | reach(n,Y) | reach(n,Z) == 1 (tautology)
// No 2^n enumeration — the same verdicts as src/core's exhaustive checkers,
// but scaling to wide complex gates.
#pragma once

#include <vector>

#include "bdd/bdd.hpp"
#include "netlist/network.hpp"

namespace sable {

/// All-pairs conduction functions of a network. reach[u][v] is the BDD of
/// "u and v are connected through conducting switches".
class SymbolicConduction {
 public:
  SymbolicConduction(BddManager& manager, const DpdnNetwork& net);

  BddRef reach(NodeId u, NodeId v) const { return reach_[u][v]; }
  BddManager& manager() const { return *manager_; }

 private:
  BddManager* manager_;
  std::vector<std::vector<BddRef>> reach_;
};

struct SymbolicFunctionalityReport {
  bool ok = false;
  bool x_branch_matches = false;
  bool y_branch_matches = false;
  bool no_xy_short = false;
  /// A witness assignment for the first failed condition (valid if !ok).
  std::uint64_t counterexample = 0;
};

/// Symbolic equivalent of check_functionality().
SymbolicFunctionalityReport check_functionality_symbolic(
    BddManager& manager, const DpdnNetwork& net, const ExprPtr& f);

struct SymbolicConnectivityReport {
  bool fully_connected = false;
  /// First floating (node, assignment) witness when not fully connected.
  NodeId floating_node = 0;
  std::uint64_t counterexample = 0;
};

/// Symbolic equivalent of check_full_connectivity().
SymbolicConnectivityReport check_full_connectivity_symbolic(
    BddManager& manager, const DpdnNetwork& net);

}  // namespace sable
