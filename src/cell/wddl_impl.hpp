// Definitions of the WDDL batch kernel templates declared in
// cell/wddl.hpp. Included by exactly the TUs that instantiate them:
// cell/wddl.cpp for the portable lane words and the per-ISA TUs under
// src/simd/ (inside their #pragma GCC target regions) for Word256/512.
#pragma once

#include <algorithm>

#include "cell/circuit_sim_impl.hpp"
#include "cell/wddl.hpp"

namespace sable {

template <typename W>
WddlCircuitSimBatchT<W>::WddlCircuitSimBatchT(const GateCircuit& circuit,
                                              const Technology& tech,
                                              double mismatch,
                                              std::uint64_t seed)
    : circuit_(circuit), eval_(circuit), vdd_(tech.vdd) {
  Rng rng(seed);
  models_.reserve(circuit.gates().size());
  // Nominal rail load: one standard-cell output (junctions + fanout wire).
  const double nominal = 6e-15;
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    // Symmetric deterministic imbalance around the nominal value.
    const double delta = mismatch * (2.0 * rng.uniform() - 1.0);
    models_.push_back(WddlGateModel{nominal * (1.0 + delta),
                                    nominal * (1.0 - delta)});
  }
  // Cycle energy decomposes as (sum of false-rail loads) plus the
  // true/false delta of every gate whose true rail fired — the constant
  // base is hoisted so the per-cycle work is proportional to the firing
  // gates only. The per-level bases are the same decomposition restricted
  // to one topological level (cycle_sampled's rows).
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
  base_level_.assign(num_levels_, 0.0);
  rail_delta_.reserve(models_.size());
  for (std::size_t g = 0; g < models_.size(); ++g) {
    const WddlGateModel& m = models_[g];
    const double e_false = m.c_false * vdd_ * vdd_;
    base_energy_ += e_false;
    base_level_[levels_[g] - 1] += e_false;
    rail_delta_.push_back(m.c_true * vdd_ * vdd_ - e_false);
  }
}

template <typename W>
void WddlCircuitSimBatchT<W>::cycle(const std::vector<W>& input_words,
                                    const W& lane_mask,
                                    BatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  lane_fill_selected(lane_mask, base_energy_, out.energy.data());
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    // Exactly one rail rises from the precharge wave and is charged; only
    // lanes whose true rail fired carry this gate's rail delta.
    lane_add_delta(eval_.value_word(g) & lane_mask, rail_delta_[g],
                   out.energy.data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

template <typename W>
void WddlCircuitSimBatchT<W>::cycle_sampled(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            SampledBatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  out.level_energy.resize(num_levels_);
  for (std::size_t l = 0; l < num_levels_; ++l) {
    lane_fill_selected(lane_mask, base_level_[l],
                       out.level_energy[l].data());
  }
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    lane_add_delta(eval_.value_word(g) & lane_mask, rail_delta_[g],
                   out.level_energy[levels_[g] - 1].data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

/// Instantiates the WDDL batch kernel for lane word W.
#define SABLE_INSTANTIATE_WDDL(W) template class WddlCircuitSimBatchT<W>;

}  // namespace sable
