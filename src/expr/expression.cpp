#include "expr/expression.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace sable {

VarId VarTable::intern(const std::string& name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VarId>(i);
  }
  names_.push_back(name);
  return static_cast<VarId>(names_.size() - 1);
}

VarId VarTable::id_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<VarId>(i);
  }
  throw InvalidArgument("unknown variable: " + name);
}

bool VarTable::contains(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

const std::string& VarTable::name(VarId id) const {
  SABLE_ASSERT(id < names_.size(), "variable id out of range");
  return names_[id];
}

VarTable VarTable::alphabetic(std::size_t n) {
  VarTable t;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name;
    if (n <= 26) {
      name.push_back(static_cast<char>('A' + i));
    } else {
      name = "x" + std::to_string(i);
    }
    t.intern(name);
  }
  return t;
}

bool Expr::is_literal() const {
  if (kind_ == ExprKind::kVar) return true;
  return kind_ == ExprKind::kNot && ops_[0]->kind() == ExprKind::kVar;
}

VarId Expr::var() const {
  SABLE_ASSERT(kind_ == ExprKind::kVar, "Expr::var on non-variable");
  return var_;
}

VarId Expr::literal_var() const {
  SABLE_ASSERT(is_literal(), "Expr::literal_var on non-literal");
  return kind_ == ExprKind::kVar ? var_ : ops_[0]->var();
}

bool Expr::literal_positive() const {
  SABLE_ASSERT(is_literal(), "Expr::literal_positive on non-literal");
  return kind_ == ExprKind::kVar;
}

ExprPtr Expr::constant(bool value) {
  // The two constants are shared singletons.
  static const ExprPtr kFalse(
      new Expr(ExprKind::kConst0, 0, {}));
  static const ExprPtr kTrue(
      new Expr(ExprKind::kConst1, 0, {}));
  return value ? kTrue : kFalse;
}

ExprPtr Expr::variable(VarId id) {
  return ExprPtr(new Expr(ExprKind::kVar, id, {}));
}

ExprPtr Expr::negate(ExprPtr e) {
  SABLE_ASSERT(e != nullptr, "negate of null expression");
  switch (e->kind()) {
    case ExprKind::kConst0:
      return constant(true);
    case ExprKind::kConst1:
      return constant(false);
    case ExprKind::kNot:
      return e->operands()[0];
    default:
      return ExprPtr(new Expr(ExprKind::kNot, 0, {std::move(e)}));
  }
}

ExprPtr Expr::make_nary(ExprKind kind, std::vector<ExprPtr> ops) {
  const bool is_and = kind == ExprKind::kAnd;
  const ExprPtr absorbing = Expr::constant(!is_and);  // 0 for AND, 1 for OR
  const ExprPtr neutral = Expr::constant(is_and);     // 1 for AND, 0 for OR

  std::vector<ExprPtr> flat;
  flat.reserve(ops.size());
  for (auto& op : ops) {
    SABLE_ASSERT(op != nullptr, "null operand in AND/OR");
    if (op->kind() == kind) {
      for (const auto& sub : op->operands()) flat.push_back(sub);
    } else if (op == absorbing) {
      return absorbing;
    } else if (op == neutral) {
      continue;  // dropped
    } else {
      flat.push_back(std::move(op));
    }
  }
  if (flat.empty()) return neutral;
  if (flat.size() == 1) return flat[0];
  return ExprPtr(new Expr(kind, 0, std::move(flat)));
}

ExprPtr Expr::conj(std::vector<ExprPtr> ops) {
  SABLE_REQUIRE(!ops.empty(), "conj requires at least one operand");
  return make_nary(ExprKind::kAnd, std::move(ops));
}

ExprPtr Expr::disj(std::vector<ExprPtr> ops) {
  SABLE_REQUIRE(!ops.empty(), "disj requires at least one operand");
  return make_nary(ExprKind::kOr, std::move(ops));
}

ExprPtr Expr::exclusive_or(ExprPtr a, ExprPtr b) {
  // a ^ b  =  a.b' + a'.b  — the canonical differential expansion.
  return disj2(conj2(a, negate(b)), conj2(negate(a), b));
}

ExprPtr Expr::conj2(ExprPtr a, ExprPtr b) {
  return conj({std::move(a), std::move(b)});
}

ExprPtr Expr::disj2(ExprPtr a, ExprPtr b) {
  return disj({std::move(a), std::move(b)});
}

std::size_t Expr::literal_count() const {
  if (is_literal()) return 1;
  std::size_t n = 0;
  for (const auto& op : ops_) n += op->literal_count();
  return n;
}

std::vector<VarId> Expr::variables() const {
  std::set<VarId> seen;
  // Iterative DFS to avoid building a lambda-recursion.
  std::vector<const Expr*> stack = {this};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind() == ExprKind::kVar) {
      seen.insert(e->var_);
    } else {
      for (const auto& op : e->ops_) stack.push_back(op.get());
    }
  }
  return {seen.begin(), seen.end()};
}

std::size_t Expr::depth() const {
  if (is_literal() || is_const()) return 0;
  std::size_t d = 0;
  for (const auto& op : ops_) d = std::max(d, op->depth());
  return d + 1;
}

}  // namespace sable
