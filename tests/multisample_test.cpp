// Tests for time-resolved (per-logic-level) traces and multisample CPA.
#include <gtest/gtest.h>

#include <numeric>

#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "crypto/sboxes.hpp"
#include "dpa/attack.hpp"
#include "expr/factoring.hpp"
#include "expr/parser.hpp"
#include "power/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(GateLevelsTest, LevelizationFollowsTopology) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A.B + C).D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  const auto levels = gate_levels(circuit);
  ASSERT_EQ(levels.size(), 3u);  // AND, OR, AND
  EXPECT_EQ(levels[0], 1u);
  EXPECT_EQ(levels[1], 2u);
  EXPECT_EQ(levels[2], 3u);
}

TEST(MultiTraceSetTest, RowStorageAndColumns) {
  MultiTraceSet traces;
  traces.add(0x3, {1.0, 2.0, 3.0});
  traces.add(0x7, {4.0, 5.0, 6.0});
  EXPECT_EQ(traces.width, 3u);
  EXPECT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces.at(1, 2), 6.0);
  const TraceSet col = traces.column(1);
  EXPECT_EQ(col.samples[0], 2.0);
  EXPECT_EQ(col.samples[1], 5.0);
  EXPECT_THROW(traces.column(3), InvalidArgument);
  EXPECT_THROW(traces.add(0x1, {1.0}), InvalidArgument);
}

TEST(SampledCycleTest, LevelEnergiesSumToCycleEnergy) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kGenuine, kTech);
  DifferentialCircuitSim scalar(circuit);
  DifferentialCircuitSim sampled(circuit);
  for (std::uint64_t a = 0; a < 16; ++a) {
    const CycleResult total = scalar.cycle(a);
    const SampledCycleResult split = sampled.cycle_sampled(a);
    const double sum = std::accumulate(split.level_energy.begin(),
                                       split.level_energy.end(), 0.0);
    EXPECT_NEAR(sum, total.energy, 1e-20) << a;
    EXPECT_EQ(split.outputs, total.outputs) << a;
  }
}

TEST(MultisampleCpaTest, RecoversKeyAndLocalizesLeak) {
  // Static CMOS S-box: the S-box output gates sit in the last levels, so
  // the leak should be found and the attack must recover the key.
  const SboxSpec spec = present_spec();
  std::vector<ExprPtr> bits;
  for (std::size_t b = 0; b < spec.out_bits; ++b) {
    bits.push_back(factored_form(sbox_output_bit(spec, b)));
  }
  const GateCircuit circuit = build_from_expressions(
      bits, spec.in_bits, NetworkVariant::kFullyConnected, kTech);
  CmosCircuitSim sim(circuit, 5e-15 * kTech.vdd * kTech.vdd);

  DifferentialCircuitSim level_helper(circuit);
  const std::size_t levels = level_helper.num_levels();
  ASSERT_GT(levels, 1u);

  Rng rng(0xBEE);
  const std::uint8_t key = 0x9;
  MultiTraceSet traces;
  // CMOS level-resolved trace: recompute with a sampled CMOS run by
  // splitting per level through a fresh simulator per trace column is
  // overkill; instead distribute the scalar energy onto the last level and
  // noise on the others — a worst-case-localized leak.
  for (std::size_t i = 0; i < 3000; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    const auto x = static_cast<std::uint8_t>(pt ^ key);
    std::vector<double> row(levels, 0.0);
    for (auto& v : row) v = 2e-16 * rng.gaussian();
    row[levels - 1] += sim.cycle(x).energy;
    traces.add(pt, row);
  }
  const MultiAttackResult result = cpa_attack_multisample(
      traces, spec, PowerModel::kHammingWeight);
  EXPECT_EQ(result.combined.rank_of(key), 0u);
  EXPECT_EQ(result.best_sample, levels - 1) << "leak must localize in time";
}

TEST(MultisampleCpaTest, FullyConnectedFlatAtEverySample) {
  const SboxSpec spec = present_spec();
  std::vector<ExprPtr> bits;
  for (std::size_t b = 0; b < spec.out_bits; ++b) {
    bits.push_back(factored_form(sbox_output_bit(spec, b)));
  }
  const GateCircuit circuit = build_from_expressions(
      bits, spec.in_bits, NetworkVariant::kFullyConnected, kTech);
  DifferentialCircuitSim sim(circuit);

  Rng rng(0xFEE);
  const std::uint8_t key = 0x4;
  MultiTraceSet traces;
  for (std::size_t i = 0; i < 2000; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    const auto x = static_cast<std::uint8_t>(pt ^ key);
    SampledCycleResult cycle = sim.cycle_sampled(x);
    for (auto& v : cycle.level_energy) v += 2e-16 * rng.gaussian();
    traces.add(pt, cycle.level_energy);
  }
  const MultiAttackResult result = cpa_attack_multisample(
      traces, spec, PowerModel::kHammingWeight);
  EXPECT_LT(result.combined.score[result.combined.best_guess], 0.12)
      << "every sample of an FC circuit should be noise";
}

}  // namespace
}  // namespace sable
