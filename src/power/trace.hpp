// Power trace containers for side-channel experiments.
//
// One encryption produces one scalar sample (total energy of the S-box
// evaluation cycle). A TraceSet pairs samples with the plaintexts that
// produced them — everything a first-order DPA/CPA attack consumes.
// Storage is structure-of-arrays so batched producers (the 64-wide trace
// engine) can append whole blocks without per-trace bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

namespace sable {

struct TraceSet {
  /// Bytes per plaintext. 1 for single-S-box targets (the historic
  /// layout); round targets store their packed wide state — `pt_width` =
  /// `RoundSpec::state_bytes()` bytes per trace, row-major.
  std::size_t pt_width = 1;
  std::vector<std::uint8_t> plaintexts;  // size() * pt_width bytes
  std::vector<double> samples;

  std::size_t size() const { return samples.size(); }
  /// Packed plaintext state of one trace (pt_width bytes).
  const std::uint8_t* pt(std::size_t trace) const {
    return plaintexts.data() + trace * pt_width;
  }
  void reserve(std::size_t capacity) {
    plaintexts.reserve(capacity * pt_width);
    samples.reserve(capacity);
  }
  /// Byte-wide convenience append (requires pt_width == 1).
  void add(std::uint8_t pt, double sample);
  /// Appends `count` traces at once (batched producer path); `pts` holds
  /// count * pt_width bytes.
  void add_batch(const std::uint8_t* pts, const double* values,
                 std::size_t count);
};

/// Time-resolved traces: `width` samples per encryption (row-major). This
/// is the shape a sampling oscilloscope produces; attacks scan the sample
/// axis and keep the best distinguisher value per key guess.
struct MultiTraceSet {
  std::size_t width = 0;
  std::vector<std::uint8_t> plaintexts;
  std::vector<double> samples;  // size() * width values

  std::size_t size() const { return plaintexts.size(); }
  /// Reserves room for `capacity` traces of `sample_width` samples each.
  void reserve(std::size_t capacity, std::size_t sample_width);
  /// Appends one trace row without any per-call allocation.
  void add(std::uint8_t pt, const double* row, std::size_t row_width);
  void add(std::uint8_t pt, const std::vector<double>& row) {
    add(pt, row.data(), row.size());
  }
  double at(std::size_t trace, std::size_t sample) const {
    return samples[trace * width + sample];
  }
  /// The single-sample set of column `sample` (for reusing scalar attacks).
  TraceSet column(std::size_t sample) const;
};

}  // namespace sable
