#include "tech/capacitance.hpp"

namespace sable {

std::vector<double> dpdn_node_capacitances(const DpdnNetwork& net,
                                           const Technology& tech,
                                           const SizingPlan& sizing) {
  std::vector<double> cap(net.node_count(), tech.wire_cap_per_node);
  const double per_terminal =
      (tech.nmos.cj_per_width + tech.nmos.cov_per_width) * sizing.dpdn_width;
  for (const auto& d : net.devices()) {
    cap[d.a] += per_terminal;
    cap[d.b] += per_terminal;
  }
  return cap;
}

double total_internal_capacitance(const DpdnNetwork& net,
                                  const Technology& tech,
                                  const SizingPlan& sizing) {
  const auto caps = dpdn_node_capacitances(net, tech, sizing);
  double total = 0.0;
  for (NodeId n : net.internal_nodes()) total += caps[n];
  return total;
}

double input_capacitance(const DpdnNetwork& net, const Technology& tech,
                         const SizingPlan& sizing, VarId var, bool positive) {
  const double gate_cap =
      tech.nmos.cgate_per_area * sizing.dpdn_width * sizing.length +
      2.0 * tech.nmos.cov_per_width * sizing.dpdn_width;
  double total = 0.0;
  for (const auto& d : net.devices()) {
    if (d.gate.var == var && d.gate.positive == positive) total += gate_cap;
  }
  return total;
}

}  // namespace sable
