#include "switchsim/cycle_sim.hpp"

#include "switchsim/cycle_sim_impl.hpp"

namespace sable {

// Portable-width instantiations only; Word256/512 live in src/simd/ (see
// cycle_sim_impl.hpp).
SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_CYCLE_SIM)

void bit_transpose_blocks(std::uint64_t* words, std::size_t blocks) {
  // Resolved once per call, not per block: in the runtime-dispatch build
  // this TU compiles every tier's transpose body (function-level target
  // attributes, see cycle_sim_impl.hpp), so the corpus codec gets the
  // same AVX2/AVX-512 kernels as the lane packers without a per-ISA
  // instantiation of its own.
  const detail::Transpose64Fn transpose =
      detail::transpose_64x64_kernel(active_tier());
  for (std::size_t b = 0; b < blocks; ++b) {
    transpose(words + 64 * b);
  }
}

SablGateSim::SablGateSim(const DpdnNetwork& net, GateEnergyModel model)
    : batch_(net, std::move(model)) {
  charged_.assign(net.node_count(), true);
  var_words_.assign(net.num_vars(), 0);
}

double SablGateSim::cycle(std::uint64_t assignment) {
  pack_lane_words(&assignment, 1, var_words_);
  double energy[SablGateSimBatch::kLanes];
  batch_.cycle(var_words_, 1u, energy);
  const auto& words = batch_.node_state_words();
  for (NodeId n = 0; n < batch_.network().node_count(); ++n) {
    charged_[n] = (words[n] & 1u) != 0;
  }
  return energy[0];
}

void SablGateSim::reset(bool charged) {
  batch_.reset(charged);
  charged_.assign(batch_.network().node_count(), charged);
}

}  // namespace sable
