#include "spice/linear.hpp"

namespace sable::spice {

MnaSystem::MnaSystem(std::size_t num_nodes, std::size_t num_vsources)
    : num_nodes_(num_nodes),
      unknowns_(num_nodes - 1 + num_vsources),
      a_(unknowns_, unknowns_),
      b_(unknowns_, 0.0) {}

void MnaSystem::clear() {
  a_.fill(0.0);
  std::fill(b_.begin(), b_.end(), 0.0);
}

void MnaSystem::stamp_conductance(SpiceNode a, SpiceNode b, double g) {
  if (a != kGround) a_.at(node_unknown(a), node_unknown(a)) += g;
  if (b != kGround) a_.at(node_unknown(b), node_unknown(b)) += g;
  if (a != kGround && b != kGround) {
    a_.at(node_unknown(a), node_unknown(b)) -= g;
    a_.at(node_unknown(b), node_unknown(a)) -= g;
  }
}

void MnaSystem::stamp_current_into(SpiceNode n, double amps) {
  if (n != kGround) b_[node_unknown(n)] += amps;
}

void MnaSystem::stamp_jacobian(SpiceNode row, SpiceNode col, double g) {
  if (row != kGround && col != kGround) {
    a_.at(node_unknown(row), node_unknown(col)) += g;
  }
}

void MnaSystem::stamp_vsource(std::size_t src, SpiceNode pos, SpiceNode neg,
                              double volts) {
  const std::size_t r = source_unknown(src);
  if (pos != kGround) {
    a_.at(r, node_unknown(pos)) += 1.0;
    a_.at(node_unknown(pos), r) += 1.0;
  }
  if (neg != kGround) {
    a_.at(r, node_unknown(neg)) -= 1.0;
    a_.at(node_unknown(neg), r) -= 1.0;
  }
  b_[r] += volts;
}

bool MnaSystem::solve(std::vector<double>& solution) {
  DenseMatrix a = a_;  // keep the assembled system intact for re-stamping
  solution = b_;
  return lu_solve(a, solution);
}

}  // namespace sable::spice
