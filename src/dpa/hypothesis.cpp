#include "dpa/hypothesis.hpp"

#include <bit>

#include "util/error.hpp"

namespace sable {

const char* to_string(PowerModel model) {
  switch (model) {
    case PowerModel::kSboxOutputBit:
      return "sbox-output-bit";
    case PowerModel::kHammingWeight:
      return "hamming-weight";
  }
  SABLE_ASSERT(false, "unreachable power model");
}

double predict_leakage(const SboxSpec& spec, PowerModel model,
                       std::uint8_t pt, std::uint8_t guess, std::size_t bit) {
  const std::uint8_t x = static_cast<std::uint8_t>(
      (pt ^ guess) & ((1u << spec.in_bits) - 1u));
  const std::uint8_t y = spec.apply(x);
  switch (model) {
    case PowerModel::kSboxOutputBit:
      return static_cast<double>((y >> bit) & 1u);
    case PowerModel::kHammingWeight:
      return static_cast<double>(std::popcount(y));
  }
  SABLE_ASSERT(false, "unreachable power model");
}

}  // namespace sable
