// WDDL — wave dynamic differential logic (the paper's ref [8] class:
// countermeasures "composed of standard logic gates").
//
// A WDDL gate is a pair of positive-monotonic standard cells: the true
// output computed by one (e.g. AND), the false output by its dual (OR) fed
// with complemented inputs. An all-zero precharge wave propagates through
// the pair, so like SABL it switches exactly one output per cycle. Its
// residual leak — and the reason the paper argues for custom gates — is
// that the two outputs of a pair are distinct standard cells with distinct
// loads: any capacitance mismatch between the true and false rails makes
// the cycle energy depend on which rail fired.
//
// The model here exposes that mismatch directly: per gate, the true and
// false rails carry capacitances c_true / c_false; a `mismatch` fraction of
// deterministic per-gate imbalance emulates unbalanced placement/routing.
// mismatch = 0 is the ideal (perfectly balanced back-end) WDDL.
//
// WddlCircuitSimBatch evaluates 64 independent circuit instances
// bit-parallel; the scalar WddlCircuitSim is its width-1 case.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/circuit_sim.hpp"
#include "util/rng.hpp"

namespace sable {

struct WddlGateModel {
  double c_true = 0.0;   ///< load on the true output rail [F]
  double c_false = 0.0;  ///< load on the false output rail [F]
};

class WddlCircuitSimBatch {
 public:
  /// `mismatch` is the relative rail imbalance (0 = balanced; 0.05 = 5%
  /// per-gate random imbalance, deterministic via `seed`).
  WddlCircuitSimBatch(const GateCircuit& circuit, const Technology& tech,
                      double mismatch, std::uint64_t seed = 0x3DD1);

  /// One precharge/evaluate cycle per selected lane; energy charges exactly
  /// one rail load per gate (the rail whose value is 1 after evaluation).
  void cycle(const std::vector<std::uint64_t>& input_words,
             std::uint64_t lane_mask, BatchCycleResult& out);

  /// Independent simulator with identical (already-derived) rail models.
  /// WDDL carries no cross-cycle lane state, but the evaluator scratch is
  /// per-instance, so concurrent workers each need their own clone. Shares
  /// only the referenced circuit (which must outlive the clone).
  WddlCircuitSimBatch clone_fresh() const { return *this; }

  const std::vector<WddlGateModel>& gate_models() const { return models_; }

 private:
  const GateCircuit& circuit_;
  BatchGateEvaluator eval_;
  double vdd_;
  std::vector<WddlGateModel> models_;
  double base_energy_ = 0.0;          // sum of false-rail energies
  std::vector<double> rail_delta_;    // per gate: true minus false rail
};

class WddlCircuitSim {
 public:
  WddlCircuitSim(const GateCircuit& circuit, const Technology& tech,
                 double mismatch, std::uint64_t seed = 0x3DD1);

  /// One precharge/evaluate cycle; energy charges exactly one rail load
  /// per gate (the rail whose value is 1 after evaluation).
  CycleResult cycle(std::uint64_t input_bits);

  const std::vector<WddlGateModel>& gate_models() const {
    return batch_.gate_models();
  }

 private:
  WddlCircuitSimBatch batch_;  // lane 0 carries this instance
  std::vector<std::uint64_t> words_;
  BatchCycleResult scratch_;
};

}  // namespace sable
