// Integration tests: the full transistor-level SABL gate in the mini-SPICE
// engine. These are the executable form of the paper's Fig. 3/4 experiment:
// functional correctness of the sense amplifier, complete discharge of X
// and Y, and the constancy (or not) of the per-cycle supply energy.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "expr/truth_table.hpp"
#include "sabl/testbench.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

double ned_of(const std::vector<CycleMeasurement>& cycles) {
  double lo = cycles.front().energy;
  double hi = lo;
  for (const auto& c : cycles) {
    lo = std::min(lo, c.energy);
    hi = std::max(hi, c.energy);
  }
  return (hi - lo) / hi;
}

TEST(SablSpiceTest, AndNandGateComputesCorrectly) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b00, 0b01, 0b10, 0b11};
  const SablRunResult run = run_sabl_sequence(net, vars, kTech, sizing, seq);

  ASSERT_EQ(run.cycles.size(), seq.size());
  for (std::size_t k = 0; k < seq.size(); ++k) {
    // Sample the outputs near the end of the evaluation phase.
    const double t = run.cycle_start[k] + run.period * 0.48;
    const std::size_t s = run.waves.sample_at(t);
    const bool expected = evaluate(f, seq[k]);
    const double out = run.waves.v("out")[s];
    const double outb = run.waves.v("outb")[s];
    EXPECT_NEAR(out, expected ? kTech.vdd : 0.0, 0.1) << "cycle " << k;
    EXPECT_NEAR(outb, expected ? 0.0 : kTech.vdd, 0.1) << "cycle " << k;
  }
}

TEST(SablSpiceTest, BothDpdnOutputsDischargeEveryEvaluation) {
  // The paper: "whichever branch is on, X and Y are connected through M1
  // and both nodes will eventually be discharged."
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b00, 0b11, 0b01};
  const SablRunResult run = run_sabl_sequence(net, vars, kTech, sizing, seq);
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const double t = run.cycle_start[k] + run.period * 0.48;
    const std::size_t s = run.waves.sample_at(t);
    EXPECT_LT(run.waves.v("x")[s], 0.1) << "cycle " << k;
    EXPECT_LT(run.waves.v("y")[s], 0.1) << "cycle " << k;
    EXPECT_LT(run.waves.v("z")[s], 0.1) << "cycle " << k;
  }
}

TEST(SablSpiceTest, ExactlyOneChargingEventPerCycle) {
  // §2 condition 1: every cycle draws one charge packet; no cycle is free.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  // Repeated identical inputs still switch (dynamic logic).
  const std::vector<std::uint64_t> seq = {0b11, 0b11, 0b11, 0b00, 0b00};
  const SablRunResult run = run_sabl_sequence(net, vars, kTech, sizing, seq);
  for (const auto& c : run.cycles) {
    EXPECT_GT(c.charge, 30e-15) << "cycle must draw a full charge packet";
  }
}

TEST(SablSpiceTest, FullyConnectedIsFlatterThanGenuine) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b11, 0b00, 0b00, 0b01,
                                          0b10, 0b11, 0b00};
  const DpdnNetwork genuine = build_genuine_dpdn(f, 2);
  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const SablRunResult run_gen =
      run_sabl_sequence(genuine, vars, kTech, sizing, seq);
  const SablRunResult run_fc = run_sabl_sequence(fc, vars, kTech, sizing, seq);
  const double ned_gen = ned_of(run_gen.cycles);
  const double ned_fc = ned_of(run_fc.cycles);
  EXPECT_GT(ned_gen, 0.02);        // memory effect visible
  EXPECT_LT(ned_fc, ned_gen / 3);  // FC flattens it by a large factor
  EXPECT_LT(ned_fc, 0.02);
}

TEST(SablSpiceTest, RechargedCapacitanceNearlyEqualAcrossInputs) {
  // Fig. 4: C_tot(0,1) = 19.32 fF vs C_tot(1,1) = 19.38 fF (0.3% apart).
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b10, 0b11};  // (0,1) and (1,1)
  const SablRunResult run = run_sabl_sequence(net, vars, kTech, sizing, seq);
  ASSERT_EQ(run.cycles.size(), 2u);
  const double c01 = run.cycles[0].recharged_capacitance;
  const double c11 = run.cycles[1].recharged_capacitance;
  EXPECT_GT(c01, 5e-15);
  EXPECT_NEAR(c01, c11, 0.02 * c11);
}

TEST(CvslSpiceTest, StaticGateHoldsItsOutputs) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b11, 0b01, 0b11, 0b00};
  const SablRunResult run = run_cvsl_sequence(net, vars, kTech, sizing, seq);
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const double t = run.cycle_start[k] + run.period * 0.9;
    const std::size_t s = run.waves.sample_at(t);
    const bool expected = evaluate(f, run.cycles[k].assignment);
    EXPECT_NEAR(run.waves.v("q")[s], expected ? kTech.vdd : 0.0, 0.15)
        << "cycle " << k;
  }
}

TEST(CvslSpiceTest, TransitionEnergyIsDataDependent) {
  // §2: the CVSL AND-NAND consumption varies strongly with the input event.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 2);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b00, 0b11, 0b00, 0b01,
                                          0b10, 0b11, 0b01};
  const SablRunResult run = run_cvsl_sequence(net, vars, kTech, sizing, seq);
  double lo = 1e9;
  double hi = 0.0;
  for (const auto& c : run.cycles) {
    lo = std::min(lo, c.energy);
    hi = std::max(hi, c.energy);
  }
  // Some transitions are free (no output change), some swing the outputs:
  // the spread must be large (the paper cites up to 50% for internal-node
  // effects alone; output transitions dominate even more).
  EXPECT_GT((hi - lo) / hi, 0.4);
}

}  // namespace
}  // namespace sable
