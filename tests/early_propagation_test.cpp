// Tests for the §5 early-propagation analysis and the WDDL baseline model.
#include <gtest/gtest.h>

#include "cell/builder.hpp"
#include "cell/wddl.hpp"
#include "core/early_propagation.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(EarlyPropagationTest, GenuineAndNandEvaluatesEarly) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 2);
  const EarlyPropagationReport report = analyze_early_propagation(net);
  EXPECT_FALSE(report.free_of_early_propagation);
  // Witness: B' alone (A not arrived) already discharges the Y branch.
  EXPECT_GT(report.early_scenarios, 0u);
  EXPECT_NE(report.witness_arrived_mask, 3u);  // strict subset
}

TEST(EarlyPropagationTest, FullyConnectedStillEvaluatesEarly) {
  // §5: the plain FC network fixes the memory effect but not early
  // propagation — the B' device still connects Y to Z by itself.
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  EXPECT_FALSE(analyze_early_propagation(net).free_of_early_propagation);
}

TEST(EarlyPropagationTest, EnhancedNetworkNeverEvaluatesEarly) {
  VarTable vars;
  const char* cases[] = {"A.B", "A + B", "(A+B).(C+D)", "A.B + C.D",
                         "A.(B + C)"};
  for (const char* text : cases) {
    const ExprPtr f = parse_expression(text, vars);
    const auto n = f->variables().size();
    const DpdnNetwork net = synthesize_enhanced_dpdn(f, n);
    const EarlyPropagationReport report = analyze_early_propagation(net);
    EXPECT_TRUE(report.free_of_early_propagation)
        << text << ": witness arrived=" << report.witness_arrived_mask
        << " values=" << report.witness_values;
  }
}

TEST(EarlyPropagationTest, ScenarioCountMatchesFormula) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 2);
  const EarlyPropagationReport report = analyze_early_propagation(net);
  // Strict subsets of 2 inputs: sum over |S| < 2 of 2^|S| = 1 + 2*2 = 5.
  EXPECT_EQ(report.total_scenarios, 5u);
}

TEST(WddlTest, BalancedWddlIsConstantEnergy) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  WddlCircuitSim sim(circuit, kTech, /*mismatch=*/0.0);
  const double e0 = sim.cycle(0).energy;
  for (std::uint64_t a = 1; a < 16; ++a) {
    EXPECT_DOUBLE_EQ(sim.cycle(a).energy, e0) << a;
  }
}

TEST(WddlTest, MismatchedWddlLeaks) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.(B + C.D) + B'.D", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 4, NetworkVariant::kFullyConnected, kTech);
  WddlCircuitSim sim(circuit, kTech, /*mismatch=*/0.05);
  double lo = 1e9;
  double hi = 0.0;
  for (std::uint64_t a = 0; a < 16; ++a) {
    const double e = sim.cycle(a).energy;
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GT(hi, lo);  // rail imbalance makes energy data-dependent
}

TEST(WddlTest, OutputsMatchDifferentialSim) {
  VarTable vars;
  const ExprPtr f = parse_expression("A ^ B ^ C", vars);
  const GateCircuit circuit =
      build_from_expressions({f}, 3, NetworkVariant::kFullyConnected, kTech);
  WddlCircuitSim wddl(circuit, kTech, 0.05);
  DifferentialCircuitSim diff(circuit);
  for (std::uint64_t a = 0; a < 8; ++a) {
    EXPECT_EQ(wddl.cycle(a).outputs, diff.cycle(a).outputs) << a;
  }
}

}  // namespace
}  // namespace sable
