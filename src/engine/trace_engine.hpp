// TraceEngine — batched, thread-sharded trace generation with streaming
// consumption, over width-generic round targets.
//
// The engine turns a RoundSpec — N S-box instances synthesized side by
// side in one logic style — into power-trace campaigns at MTD scale. Two
// axes of parallelism compose: within a shard, wide plaintexts are
// simulated 64 encryptions per clock cycle through the bit-parallel
// circuit simulators (every instance, summed power); across shards, a
// worker pool spreads the campaign over cores. Traces are either retained
// in a TraceSet (run) or handed block-by-block in canonical order to
// streaming consumers (stream / stream_sampled) — and attacks skip the
// hand-off entirely through the distinguisher pipeline
// (run_distinguishers): every attack is a Distinguisher whose per-shard
// accumulators ride the worker pool and reduce through a fixed-shape
// binary merge tree (or an ordered fold for MTD), so an attack over 10^7
// traces needs O(guesses) memory per shard, one pass, and 1/(64 * cores)
// of the scalar simulation time. The historic campaigns
// (cpa/dom/mtd/multi_cpa) are thin wrappers over that pipeline, and any
// number of distinguishers — e.g. a CPA per subkey of a 16-S-box round —
// share ONE simulated campaign instead of re-simulating per attack.
//
// Attacks select one instance via AttackSelector{sbox_index, model, bit}:
// the accumulators consume that instance's sub-plaintexts and guess its
// subkey while the other N-1 instances contribute algorithmic noise — the
// paper's real threat model for a cipher's nonlinear layer.
//
// Determinism: a campaign is defined as a sequence of fixed-size shards
// (shard_size traces, rounded to whole 64-lane words). Shard s draws its
// plaintexts and noise from counter-derived sub-streams
// campaign_shard_seed(seed, s, ·) and starts from fresh simulator state,
// so its traces depend only on (options, s) — never on which worker ran
// it or how many there were. The merge tree's shape depends only on the
// shard count. Results are bit-identical for any num_threads, including
// 1. shard_size is therefore part of the stream definition (it sets the
// shard boundaries), not a pure performance knob — which is why the
// shard_size = 0 autotune derives the size from num_traces and fixed
// constants alone (see campaign_shard_size), never from the machine.
//
// Lane widths: CampaignOptions::lane_width picks the batch word the
// campaign simulates with — 64 (the historic kernel), 128 (portable
// pair), or 256/512 (AVX2/AVX-512 vectors). The default build carries
// every kernel width side by side and probes the CPU once at runtime
// (util/cpu_dispatch.hpp); 0 (the default) selects the widest word the
// running machine supports, resolved per campaign and never on the
// per-trace hot path. Shard boundaries stay 64-granular and per-lane
// arithmetic (including the static-CMOS logical 64-lane history) is
// width-invariant, so every width — and therefore every dispatch tier —
// generates bit-identical campaigns; wider words only raise throughput.
// Workers are persistent: each engine keeps the per-width target
// variants, a pool of worker clones, AND a parked thread pool
// (engine/worker_pool.hpp) alive across campaigns, so sweeps of many
// small campaigns pay synthesis, cloning and thread creation once — not
// once per campaign.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "crypto/round_target.hpp"
#include "crypto/target.hpp"
#include "dpa/distinguisher.hpp"
#include "dpa/mtd.hpp"
#include "dpa/second_order.hpp"
#include "dpa/streaming.hpp"
#include "io/corpus.hpp"
#include "io/manifest.hpp"
#include "power/trace.hpp"
#include "util/error.hpp"

namespace sable {

class CorpusReader;  // io/corpus.hpp

struct CampaignOptions {
  std::size_t num_traces = 0;
  /// Packed round key: one sub-key per S-box instance, LSB-first in
  /// instance order (nibble-packed for 4-bit S-boxes; see
  /// RoundSpec::pack_subkeys). Must be round().state_bytes() long — the
  /// default single zero byte fits any single-S-box target.
  std::vector<std::uint8_t> key = {0};
  /// Gaussian measurement noise RMS [J] added per trace (per sample for
  /// time-resolved campaigns).
  double noise_sigma = 0.0;
  /// Seed of the campaign's plaintext/noise streams; one seed reproduces
  /// the exact trace sequence bit for bit.
  std::uint64_t seed = 0xA77ACC;
  /// Traces per campaign shard (rounded down to whole 64-lane words).
  /// Shards are the unit of parallel scheduling AND of the stream
  /// definition: changing shard_size changes the generated traces.
  /// 0 (the default) autotunes from num_traces alone — a pure function
  /// of the options, so autotuned campaigns are still reproducible
  /// everywhere; see campaign_shard_size for the exact rule.
  std::size_t shard_size = 0;
  /// Worker threads the campaign shards are scheduled over.
  /// 0 = hardware concurrency. Any value yields bit-identical results.
  std::size_t num_threads = 0;
  /// Batch-lane word width the campaign simulates with: 64, 128, or a
  /// SIMD width (256/512) the running CPU supports; see
  /// runtime_lane_widths(). 0 = widest the machine offers, probed at
  /// runtime. Any value yields bit-identical results.
  std::size_t lane_width = 0;
};

/// Shard granularity of a campaign: shard_size rounded down to whole
/// 64-lane words, CLAMPED to at least one word — a shard_size in [1, 63]
/// (in particular one smaller than the active lane width) yields 64-trace
/// shards rather than rounding to zero. The granule is 64 for EVERY lane
/// width: wider words cover several 64-trace groups per step (ragged
/// tails run under lane masks), so shard boundaries — and with them the
/// generated trace stream — never depend on the word the kernel batches
/// with.
///
/// shard_size = 0 autotunes: clamp(num_traces / 256 rounded down to a
/// whole 64-lane word, 1024, 65536). The constants are fixed — NOT
/// derived from the thread count, lane width, or machine — so the
/// autotuned stream is exactly as reproducible as an explicit size:
/// campaigns up to 1024 traces stay single-shard, larger ones aim for
/// ~256 shards (comfortable dynamic-scheduling slack for any realistic
/// core count) and cap the shard at 65536 traces so per-shard buffers
/// stay cache-sized.
std::size_t campaign_shard_size(const CampaignOptions& options);

/// Seed of shard `shard`'s sub-stream `stream` (0 = plaintexts, 1 =
/// noise): a splitmix64-style mix of the campaign seed and a counter, so
/// shards are decorrelated yet reproducible from (seed, shard) alone.
std::uint64_t campaign_shard_seed(std::uint64_t campaign_seed,
                                  std::size_t shard, std::size_t stream);

/// Worker threads a campaign resolves to (0 = hardware concurrency).
std::size_t campaign_thread_count(const CampaignOptions& options);

/// Lane width a campaign resolves to (0 = the widest width the running
/// CPU supports under the active dispatch tier). Throws InvalidArgument
/// for widths this build or machine cannot execute.
std::size_t campaign_lane_width(const CampaignOptions& options);

/// Style-aware resolution — what the engine actually uses: an explicit
/// lane_width behaves exactly as above, but the width-0 default is
/// additionally clamped to style_lane_width_cap(style). Results are
/// bit-identical at every width, so the cap is purely a throughput
/// heuristic and an explicit width always wins.
std::size_t campaign_lane_width(const CampaignOptions& options,
                                LogicStyle style);

/// Per-style cap the lane_width = 0 default honors: the widest word
/// measured to actually help this style, or SIZE_MAX for "no cap" (take
/// the machine's widest). Today every style scales monotonically to 512
/// — the historic static-CMOS 512 regression turned out to be the scalar
/// fallback of the wide-word bit-transpose packing, not the style — so
/// no style carries a cap; the table is the pinned place to register one
/// if a style/machine pair measures a sustained 512 penalty (e.g.
/// license-based AVX-512 downclocking on older server parts; see the
/// lane_width rows of BENCH_trace_throughput.json).
std::size_t style_lane_width_cap(LogicStyle style);

/// Deterministic fixed-shape binary reduction of per-shard accumulators:
/// round r merges shard i + 2^r into shard i for every i ≡ 0 (mod
/// 2^(r+1)), so each intermediate accumulator always covers a contiguous
/// canonical shard range with the earlier range on the left — the same
/// ordering semantics as a sequential left fold, at O(log shards) merge
/// depth instead of O(shards). The tree shape depends only on the shard
/// count, never on the thread count, so campaign results stay
/// bit-identical for any num_threads.
template <typename Accumulator>
Accumulator merge_shard_tree(std::vector<Accumulator> shards) {
  SABLE_REQUIRE(!shards.empty(), "merge tree needs at least one shard");
  for (std::size_t stride = 1; stride < shards.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < shards.size(); i += 2 * stride) {
      shards[i].merge(shards[i + stride]);
    }
  }
  return std::move(shards.front());
}

/// Receives (plaintexts, samples, count) blocks as the campaign streams.
/// `plaintexts` holds count * round().state_bytes() packed bytes — one
/// byte per trace for single-S-box targets, the wide state for rounds
/// (extract an instance's sub-plaintexts with RoundSpec::sub_words).
using TraceSink =
    std::function<void(const std::uint8_t*, const double*, std::size_t)>;

/// Receives (plaintexts, rows, count) blocks of time-resolved traces:
/// `rows` holds count rows of target().num_levels() samples each.
using SampledTraceSink =
    std::function<void(const std::uint8_t*, const double*, std::size_t)>;

namespace detail {
struct EnginePools;  // per-width target variants + persistent worker pools
}  // namespace detail

class TraceEngine {
 public:
  /// An engine over a full round: every instance of `round` is
  /// synthesized (identical specs share a circuit) and simulated side by
  /// side, emitting summed power.
  TraceEngine(const RoundSpec& round, const Technology& tech);

  /// Single-S-box adapter (the historic constructor): the N = 1 round.
  TraceEngine(const SboxSpec& spec, LogicStyle style, const Technology& tech);

  ~TraceEngine();
  TraceEngine(TraceEngine&&) noexcept;
  TraceEngine& operator=(TraceEngine&&) noexcept;

  /// Runs the campaign and retains every trace (for batch-style consumers
  /// and offline re-analysis). Shards are simulated in parallel and land
  /// directly in their canonical-order slice of the TraceSet, whose
  /// pt_width is the round's packed state width.
  TraceSet run(const CampaignOptions& options);

  /// Runs the campaign without retaining traces: each shard of at most
  /// campaign_shard_size() traces is simulated bit-parallel (in parallel
  /// across shards) and handed to `sink` in canonical shard order on the
  /// calling thread, then its storage is released. In-flight shards are
  /// bounded, so a slow sink cannot accumulate unbounded buffers.
  void stream(const CampaignOptions& options, const TraceSink& sink);

  /// As stream(), but time-resolved: each trace is a row of
  /// target().num_levels() per-logic-level samples. Covers every logic
  /// style (differential, static CMOS, WDDL).
  void stream_sampled(const CampaignOptions& options,
                      const SampledTraceSink& sink);

  /// Drives any set of pluggable distinguishers through ONE simulated
  /// campaign — the generic path every attack campaign below wraps. Per
  /// shard, each distinguisher's ShardAccumulator consumes the shard's
  /// block (sub-plaintext extraction deduplicated per attacked instance,
  /// one virtual dispatch per distinguisher per shard); per-shard states
  /// reduce through the fixed-shape merge tree, or the ordered left fold
  /// for Distinguisher::ordered() (MTD prefix semantics). Afterwards each
  /// distinguisher holds its typed result. Mixing scalar and
  /// time-resolved distinguishers simulates each shard once per data
  /// kind with identical per-kind streams, so every result is
  /// bit-identical to the same distinguisher run alone. Results are
  /// bit-identical for any num_threads and lane_width.
  void run_distinguishers(const CampaignOptions& options,
                          std::span<Distinguisher* const> distinguishers);

  /// Persistence-aware campaign driver (the overload above is this with
  /// default persistence): optionally resumes shard states from
  /// persist.resume_path, simulates only the uncovered shards of
  /// [shard_begin, shard_end), checkpoints to persist.checkpoint_path in
  /// waves, and — when every canonical shard is covered — reduces and
  /// finalizes exactly as the plain run. Returns true when results were
  /// finalized, false for a partial (persisted) run whose shard states
  /// went to the checkpoint file. Checkpoints store RAW per-shard states
  /// (see io/campaign_state.hpp), so resumed, split and merged campaigns
  /// are bit-identical to one uninterrupted local run.
  bool run_distinguishers(const CampaignOptions& options,
                          std::span<Distinguisher* const> distinguishers,
                          const CampaignPersistence& persist);

  /// Folds N partial campaign-state files (each from a
  /// run_distinguishers invocation over a disjoint shard range — the
  /// multi-process fan-out) into finalized results: every file's
  /// manifest must match this campaign, together they must cover every
  /// canonical shard exactly once, and the reduction is the same
  /// fixed-shape tree a single local run performs — bit-identical
  /// results, proven in tests. No simulation happens here.
  void merge_partials(const CampaignOptions& options,
                      std::span<Distinguisher* const> distinguishers,
                      const std::vector<std::string>& partial_paths);

  /// Records the campaign's trace stream to a corpus file at `path`
  /// (io/corpus.hpp): shards are simulated in parallel and written in
  /// canonical order, scalar or cycle-sampled per `kind`. The default
  /// writes the v2 delta+plane+RLE compressed format; pass
  /// `kCorpusCompressionNone` for raw v2 chunks, and `version = 1` (raw
  /// only) for a backward-compatible v1 file. Whatever the encoding, the
  /// corpus replays into any matching distinguisher set bit-identically
  /// to the live campaign.
  void record(const CampaignOptions& options, TraceDataKind kind,
              const std::string& path,
              std::uint32_t compression = kCorpusCompressionDeltaPlaneRle,
              std::uint32_t version = kCorpusVersion2);

  /// Replays a recorded corpus into `distinguishers` — no simulation,
  /// same results, same persistence controls as run_distinguishers
  /// (replay_distinguishers over this engine's worker pool). The corpus
  /// must have been recorded for this engine's round.
  bool replay(const CorpusReader& corpus,
              std::span<Distinguisher* const> distinguishers,
              const CampaignPersistence& persist = {},
              std::size_t num_threads = 0);

  /// The manifest pinning this engine + options campaign (resolved shard
  /// layout, round spec hash) — what every persisted artifact of the
  /// campaign is validated against.
  CampaignManifest campaign_manifest(const CampaignOptions& options) const;

  /// One-pass CPA on the selected instance's subkey over a streamed
  /// campaign: a single CpaDistinguisher through run_distinguishers.
  AttackResult cpa_campaign(const CampaignOptions& options,
                            const AttackSelector& selector);

  /// One-pass CPA on EVERY subkey of the round from one simulated
  /// campaign (one CpaDistinguisher per instance): result[i] is
  /// bit-identical to cpa_campaign with selector {i, model, bit}, at
  /// roughly 1/num_sboxes of the cost of re-simulating per instance.
  std::vector<AttackResult> cpa_campaign_all_subkeys(
      const CampaignOptions& options, PowerModel model, std::size_t bit = 0);

  /// Second-order centered-product CPA over `cycle_sampled` rows: scores
  /// every logic-level pair's centered product against the selected
  /// instance's predicted leakage, max-combined per guess (see
  /// dpa/second_order.hpp). Covers every logic style.
  SecondOrderAttackResult second_order_cpa_campaign(
      const CampaignOptions& options, const AttackSelector& selector);

  /// One-pass difference-of-means on the selected instance's output bit
  /// over a streamed campaign (sharded; selector.model is ignored — DoM
  /// is inherently the single-bit model).
  AttackResult dom_campaign(const CampaignOptions& options,
                            const AttackSelector& selector);

  /// Incremental MTD curve for the selected subkey: workers snapshot each
  /// shard's partial accumulator at the checkpoints falling inside it;
  /// the snapshots are then ranked in order against the merged prefix
  /// (ShardedMtd) — the full measurements-to-disclosure experiment in a
  /// single parallel pass over generated-and-dropped traces. The correct
  /// subkey is read from options.key. Duplicate checkpoints are evaluated
  /// once.
  MtdResult mtd_campaign(const CampaignOptions& options,
                         const AttackSelector& selector,
                         const std::vector<std::size_t>& checkpoints);

  /// Time-resolved one-pass CPA over `cycle_sampled` batches: one
  /// correlation accumulator per logic level (StreamingMultiCpa), sharded
  /// and tree-merged like cpa_campaign. Keeps, per guess, the largest
  /// |rho| over the sample axis — the oscilloscope-style attack. Covers
  /// every logic style (differential, static CMOS, WDDL).
  MultiAttackResult multi_cpa_campaign(const CampaignOptions& options,
                                       const AttackSelector& selector);

  RoundTarget& target() { return target_; }
  const RoundSpec& round() const { return target_.round(); }
  /// Spec of one S-box instance (the attacked one, usually).
  const SboxSpec& spec(std::size_t sbox_index = 0) const;

 private:
  RoundTarget target_;
  // Hides the per-width plumbing (RoundTargetT<W> variants, persistent
  // worker clones) from this header; see trace_engine.cpp.
  std::unique_ptr<detail::EnginePools> pools_;
};

}  // namespace sable
