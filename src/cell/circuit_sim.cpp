#include "cell/circuit_sim.hpp"

#include "expr/truth_table.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Computes all gate output values for one input vector; returns the vector
// of gate values and fills `assignments` (per-gate input assignment) when
// non-null.
std::vector<bool> evaluate_gates(const GateCircuit& circuit,
                                 std::uint64_t input_bits,
                                 std::vector<std::uint64_t>* assignments) {
  std::vector<bool> value(circuit.gates().size(), false);
  auto resolve = [&](const SignalRef& ref) {
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : value[ref.index];
    return raw == ref.positive;
  };
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const GateInstance& inst = circuit.gates()[g];
    const Cell& cell = circuit.cells()[inst.cell_index];
    std::uint64_t assignment = 0;
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      if (resolve(inst.inputs[k])) assignment |= std::uint64_t{1} << k;
    }
    value[g] = evaluate(cell.function, assignment);
    if (assignments != nullptr) (*assignments)[g] = assignment;
  }
  return value;
}

std::uint64_t collect_outputs(const GateCircuit& circuit,
                              std::uint64_t input_bits,
                              const std::vector<bool>& gate_values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    const SignalRef& ref = circuit.outputs()[i];
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : gate_values[ref.index];
    if (raw == ref.positive) out |= std::uint64_t{1} << i;
  }
  return out;
}

}  // namespace

std::vector<std::size_t> gate_levels(const GateCircuit& circuit) {
  std::vector<std::size_t> levels(circuit.gates().size(), 1);
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    for (const auto& in : circuit.gates()[g].inputs) {
      if (in.kind == SignalRef::Kind::kGate) {
        levels[g] = std::max(levels[g], levels[in.index] + 1);
      }
    }
  }
  return levels;
}

DifferentialCircuitSim::DifferentialCircuitSim(const GateCircuit& circuit)
    : circuit_(circuit) {
  gate_sims_.reserve(circuit.gates().size());
  for (const auto& inst : circuit.gates()) {
    const Cell& cell = circuit.cells()[inst.cell_index];
    gate_sims_.emplace_back(cell.network, cell.energy_model);
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

DifferentialCircuitSim::DifferentialCircuitSim(
    const GateCircuit& circuit, std::vector<GateEnergyModel> models)
    : circuit_(circuit) {
  SABLE_REQUIRE(models.size() == circuit.gates().size(),
                "one energy model per gate instance required");
  gate_sims_.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const Cell& cell = circuit.cells()[circuit.gates()[g].cell_index];
    gate_sims_.emplace_back(cell.network, std::move(models[g]));
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

SampledCycleResult DifferentialCircuitSim::cycle_sampled(
    std::uint64_t input_bits) {
  std::vector<std::uint64_t> assignments(circuit_.gates().size(), 0);
  const std::vector<bool> values =
      evaluate_gates(circuit_, input_bits, &assignments);
  SampledCycleResult result;
  result.level_energy.assign(num_levels_, 0.0);
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    result.level_energy[levels_[g] - 1] += gate_sims_[g].cycle(assignments[g]);
  }
  result.outputs = collect_outputs(circuit_, input_bits, values);
  return result;
}

CycleResult DifferentialCircuitSim::cycle(std::uint64_t input_bits) {
  std::vector<std::uint64_t> assignments(circuit_.gates().size(), 0);
  const std::vector<bool> values =
      evaluate_gates(circuit_, input_bits, &assignments);
  CycleResult result;
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    result.energy += gate_sims_[g].cycle(assignments[g]);
  }
  result.outputs = collect_outputs(circuit_, input_bits, values);
  return result;
}

CmosCircuitSim::CmosCircuitSim(const GateCircuit& circuit,
                               double switch_energy)
    : circuit_(circuit), switch_energy_(switch_energy) {
  previous_values_.assign(circuit.gates().size(), false);
}

CycleResult CmosCircuitSim::cycle(std::uint64_t input_bits) {
  const std::vector<bool> values =
      evaluate_gates(circuit_, input_bits, nullptr);
  CycleResult result;
  for (std::size_t g = 0; g < values.size(); ++g) {
    // Static CMOS draws supply energy when the output rises.
    if (values[g] && (!has_previous_ || !previous_values_[g])) {
      result.energy += switch_energy_;
    }
  }
  previous_values_ = values;
  has_previous_ = true;
  result.outputs = collect_outputs(circuit_, input_bits, values);
  return result;
}

std::uint64_t evaluate_circuit(const GateCircuit& circuit,
                               std::uint64_t input_bits) {
  const std::vector<bool> values =
      evaluate_gates(circuit, input_bits, nullptr);
  return collect_outputs(circuit, input_bits, values);
}

}  // namespace sable
