#include "spice/measure.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sable::spice {

double integrate(const std::vector<double>& time, const std::vector<double>& y,
                 double t0, double t1) {
  SABLE_REQUIRE(time.size() == y.size() && time.size() >= 2,
                "integrate requires matched sample arrays");
  double total = 0.0;
  for (std::size_t k = 1; k < time.size(); ++k) {
    const double ta = std::max(time[k - 1], t0);
    const double tb = std::min(time[k], t1);
    if (tb <= ta) continue;
    // Linear interpolation of y at the clipped endpoints.
    const double span = time[k] - time[k - 1];
    auto value_at = [&](double t) {
      const double w = span > 0.0 ? (t - time[k - 1]) / span : 0.0;
      return y[k - 1] + (y[k] - y[k - 1]) * w;
    };
    total += 0.5 * (value_at(ta) + value_at(tb)) * (tb - ta);
  }
  return total;
}

double delivered_charge(const TranResult& result, const std::string& name,
                        double t0, double t1) {
  const auto& current = result.i(name);
  std::vector<double> minus(current.size());
  for (std::size_t k = 0; k < current.size(); ++k) minus[k] = -current[k];
  return integrate(result.time, minus, t0, t1);
}

double delivered_energy(const TranResult& result, const std::string& name,
                        double t0, double t1) {
  std::size_t src = result.source_names.size();
  for (std::size_t s = 0; s < result.source_names.size(); ++s) {
    if (result.source_names[s] == name) src = s;
  }
  SABLE_REQUIRE(src < result.source_names.size(),
                "no such source in results: " + name);
  // Power = (v+ - v-) * (-i). The TranResult does not retain terminal
  // node ids, so callers use sources referenced to ground (all supplies in
  // this library are); v+ is then the source's positive node voltage, which
  // equals the forced waveform — recover it from the node sharing the name
  // convention "<name>" used by the assemblers, else fall back to charge
  // integration by the caller.
  const auto& current = result.branch_current[src];
  const auto& vpos = result.v(name);  // assemblers name the node as the source
  std::vector<double> power(current.size());
  for (std::size_t k = 0; k < current.size(); ++k) {
    power[k] = vpos[k] * (-current[k]);
  }
  return integrate(result.time, power, t0, t1);
}

double peak_delivered_current(const TranResult& result,
                              const std::string& name, double t0, double t1) {
  const auto& current = result.i(name);
  double peak = 0.0;
  for (std::size_t k = 0; k < result.time.size(); ++k) {
    if (result.time[k] < t0 || result.time[k] > t1) continue;
    peak = std::max(peak, -current[k]);
  }
  return peak;
}

double discharge_swing(const TranResult& result, const std::string& node,
                       double t0, double t1) {
  const auto& volts = result.v(node);
  const std::size_t k0 = result.sample_at(t0);
  double low = volts[k0];
  for (std::size_t k = k0; k < result.time.size() && result.time[k] <= t1;
       ++k) {
    low = std::min(low, volts[k]);
  }
  return volts[k0] - low;
}

}  // namespace sable::spice
