// AVX2 instantiations of every batch kernel, compiled into the default
// (runtime-dispatched) build alongside the portable ones.
//
// Consumers beyond the trace engine: the corpus codec's bit-plane stage
// (src/io/codec.cpp) runs on the same dispatched 64×64 transpose as the
// lane packers, so its encode/decode speed tracks these kernel bodies.
//
// Multi-ISA rules (see util/lane_word.hpp):
//  - The TU itself is compiled with the base architecture — never with
//    -mavx2. Every dependency header is included FIRST, so all std:: and
//    project inline code lexically outside the target region below stays
//    portable (comdat copies must be executable on any machine the binary
//    runs on).
//  - Only the kernel template definitions (the *_impl.hpp headers) are
//    included inside the #pragma GCC target("avx2") region, so exactly the
//    explicit Word256 instantiations — selected at runtime only when the
//    CPU has AVX2 (util/cpu_dispatch.hpp) — carry AVX2 code.
#include "util/lane_word.hpp"

#if SABLE_HAVE_WORD256

#include <algorithm>
#include <bit>
#include <cstring>

#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "crypto/round_target.hpp"
#include "dpa/block_stats.hpp"
#include "expr/factoring.hpp"
#include "expr/truth_table.hpp"
#include "netlist/conduction.hpp"
#include "switchsim/cycle_sim.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"

#pragma GCC push_options
#pragma GCC target("avx2")

#include "cell/circuit_sim_impl.hpp"
#include "cell/wddl_impl.hpp"
#include "crypto/round_target_impl.hpp"
#include "dpa/block_stats_impl.hpp"
#include "netlist/conduction_impl.hpp"
#include "switchsim/cycle_sim_impl.hpp"

namespace sable {

SABLE_INSTANTIATE_CONDUCTION(::sable::Word256)
SABLE_INSTANTIATE_CYCLE_SIM(::sable::Word256)
SABLE_INSTANTIATE_CIRCUIT_SIM(::sable::Word256)
SABLE_INSTANTIATE_WDDL(::sable::Word256)
SABLE_INSTANTIATE_ROUND_TARGET(::sable::Word256)
SABLE_INSTANTIATE_WITH_LANE_WIDTH(::sable::Word256)

namespace detail {

// Tier 1: the distinguishers' block-statistics contraction/histogram
// bodies, autovectorized for AVX2 (same results bit for bit as every
// other tier — see dpa/block_stats.hpp).
SABLE_INSTANTIATE_BLOCK_STATS(1)

}  // namespace detail

}  // namespace sable

#pragma GCC pop_options

#endif  // SABLE_HAVE_WORD256
