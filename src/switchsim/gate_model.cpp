#include "switchsim/gate_model.hpp"

#include "tech/capacitance.hpp"

namespace sable {

GateEnergyModel build_gate_model(const DpdnNetwork& net,
                                 const Technology& tech,
                                 const SizingPlan& sizing) {
  GateEnergyModel model;
  model.vdd = tech.vdd;
  model.node_cap = dpdn_node_capacitances(net, tech, sizing);

  // Constant term: one differential output swings every cycle (load +
  // inverter input + sense-node parasitics); both sense nodes and the
  // cross-coupled pair contribute fixed junction/gate caps.
  const double inv_gate_cap =
      (tech.nmos.cgate_per_area * sizing.inv_n_width +
       tech.pmos.cgate_per_area * sizing.inv_p_width) *
      sizing.length;
  const double sense_node_cap =
      (tech.nmos.cj_per_width + tech.nmos.cov_per_width) *
          (sizing.sense_n_width + sizing.precharge_width) +
      (tech.pmos.cj_per_width + tech.pmos.cov_per_width) *
          sizing.sense_p_width +
      inv_gate_cap;
  const double output_cap = sizing.output_load + inv_gate_cap;
  model.constant_energy =
      (output_cap + sense_node_cap) * tech.vdd * tech.vdd;
  return model;
}

}  // namespace sable
