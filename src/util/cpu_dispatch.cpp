#include "util/cpu_dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/error.hpp"
#include "util/lane_word.hpp"

namespace sable {

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
    f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    f.avx512vbmi = __builtin_cpu_supports("avx512vbmi") != 0;
    f.gfni = __builtin_cpu_supports("gfni") != 0;
#endif
    return f;
  }();
  return features;
}

const char* to_string(DispatchTier tier) {
  switch (tier) {
    case DispatchTier::kPortable:
      return "portable";
    case DispatchTier::kAvx2:
      return "avx2";
    case DispatchTier::kAvx512:
      return "avx512";
  }
  SABLE_ASSERT(false, "unreachable dispatch tier");
}

DispatchTier compiled_tier() {
#if SABLE_HAVE_WORD512
  return DispatchTier::kAvx512;
#elif SABLE_HAVE_WORD256
  return DispatchTier::kAvx2;
#else
  return DispatchTier::kPortable;
#endif
}

DispatchTier detected_tier() {
  const CpuFeatures& f = cpu_features();
  if (f.avx512f) return DispatchTier::kAvx512;
  if (f.avx2) return DispatchTier::kAvx2;
  return DispatchTier::kPortable;
}

namespace {

DispatchTier initial_cap_from_env() {
  const char* value = std::getenv("SABLE_DISPATCH");
  if (value == nullptr || *value == '\0') return DispatchTier::kAvx512;
  if (std::strcmp(value, "portable") == 0) return DispatchTier::kPortable;
  if (std::strcmp(value, "avx2") == 0) return DispatchTier::kAvx2;
  if (std::strcmp(value, "avx512") == 0) return DispatchTier::kAvx512;
  throw InvalidArgument(std::string("SABLE_DISPATCH must be one of "
                                    "portable|avx2|avx512, got \"") +
                        value + "\"");
}

std::atomic<DispatchTier>& tier_cap_slot() {
  static std::atomic<DispatchTier> cap{initial_cap_from_env()};
  return cap;
}

}  // namespace

DispatchTier set_dispatch_tier_cap(DispatchTier cap) {
  return tier_cap_slot().exchange(cap, std::memory_order_relaxed);
}

DispatchTier dispatch_tier_cap() {
  return tier_cap_slot().load(std::memory_order_relaxed);
}

DispatchTier active_tier() {
  DispatchTier tier = compiled_tier();
  const DispatchTier detected = detected_tier();
  if (detected < tier) tier = detected;
  const DispatchTier cap = dispatch_tier_cap();
  if (cap < tier) tier = cap;
  return tier;
}

std::vector<std::size_t> runtime_lane_widths() {
  // Unused in portable-only builds, where no wide word is compiled in.
  [[maybe_unused]] const DispatchTier tier = active_tier();
  std::vector<std::size_t> widths = {64, 128};
#if SABLE_HAVE_WORD256
  if (tier >= DispatchTier::kAvx2) widths.push_back(256);
#endif
#if SABLE_HAVE_WORD512
  if (tier >= DispatchTier::kAvx512) widths.push_back(512);
#endif
  return widths;
}

std::size_t max_runtime_lane_width() { return runtime_lane_widths().back(); }

}  // namespace sable
