#include "cell/circuit_sim.hpp"

#include "cell/circuit_sim_impl.hpp"
#include "expr/truth_table.hpp"

namespace sable {

namespace {

// Computes all gate output values for one input vector; returns the vector
// of gate values (scalar reference path used by evaluate_circuit).
std::vector<bool> evaluate_gates(const GateCircuit& circuit,
                                 std::uint64_t input_bits) {
  std::vector<bool> value(circuit.gates().size(), false);
  auto resolve = [&](const SignalRef& ref) {
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : value[ref.index];
    return raw == ref.positive;
  };
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const GateInstance& inst = circuit.gates()[g];
    const Cell& cell = circuit.cells()[inst.cell_index];
    std::uint64_t assignment = 0;
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      if (resolve(inst.inputs[k])) assignment |= std::uint64_t{1} << k;
    }
    value[g] = evaluate(cell.function, assignment);
  }
  return value;
}

std::uint64_t collect_outputs(const GateCircuit& circuit,
                              std::uint64_t input_bits,
                              const std::vector<bool>& gate_values) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < circuit.outputs().size(); ++i) {
    const SignalRef& ref = circuit.outputs()[i];
    const bool raw = ref.kind == SignalRef::Kind::kInput
                         ? ((input_bits >> ref.index) & 1u) != 0
                         : gate_values[ref.index];
    if (raw == ref.positive) out |= std::uint64_t{1} << i;
  }
  return out;
}

}  // namespace

std::vector<std::size_t> gate_levels(const GateCircuit& circuit) {
  std::vector<std::size_t> levels(circuit.gates().size(), 1);
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    for (const auto& in : circuit.gates()[g].inputs) {
      if (in.kind == SignalRef::Kind::kGate) {
        levels[g] = std::max(levels[g], levels[in.index] + 1);
      }
    }
  }
  return levels;
}

// Portable-width instantiations only; Word256/512 live in src/simd/ (see
// circuit_sim_impl.hpp).
SABLE_FOR_EACH_PORTABLE_LANE_WORD(SABLE_INSTANTIATE_CIRCUIT_SIM)

// ---- scalar wrappers (width-1 case of the batch kernels) ------------------

DifferentialCircuitSim::DifferentialCircuitSim(const GateCircuit& circuit)
    : batch_(circuit), words_(circuit.num_primary_inputs(), 0) {}

DifferentialCircuitSim::DifferentialCircuitSim(
    const GateCircuit& circuit, std::vector<GateEnergyModel> models)
    : batch_(circuit, std::move(models)),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult DifferentialCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

SampledCycleResult DifferentialCircuitSim::cycle_sampled(
    std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle_sampled(words_, 1u, sampled_scratch_);
  SampledCycleResult result;
  result.level_energy.reserve(sampled_scratch_.level_energy.size());
  for (const auto& row : sampled_scratch_.level_energy) {
    result.level_energy.push_back(row[0]);
  }
  result.outputs = outputs_for_lane(sampled_scratch_.output_words, 0);
  return result;
}

CmosCircuitSim::CmosCircuitSim(const GateCircuit& circuit,
                               double switch_energy)
    : batch_(circuit, switch_energy),
      words_(circuit.num_primary_inputs(), 0) {}

CycleResult CmosCircuitSim::cycle(std::uint64_t input_bits) {
  pack_lane_words(&input_bits, 1, words_);
  batch_.cycle(words_, 1u, scratch_);
  return CycleResult{outputs_for_lane(scratch_.output_words, 0),
                     scratch_.energy[0]};
}

std::uint64_t evaluate_circuit(const GateCircuit& circuit,
                               std::uint64_t input_bits) {
  const std::vector<bool> values = evaluate_gates(circuit, input_bits);
  return collect_outputs(circuit, input_bits, values);
}

}  // namespace sable
