#include "netlist/io.hpp"

#include <map>
#include <optional>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace sable {

std::string write_dpdn(const DpdnNetwork& net, const VarTable& vars) {
  std::string out = "dpdn " + std::to_string(net.num_vars()) + "\n";
  for (VarId v = 0; v < net.num_vars(); ++v) {
    out += "var " + vars.name(v) + "\n";
  }
  for (NodeId n : net.internal_nodes()) {
    out += "node " + net.node_name(n) + "\n";
  }
  // Pass gates are two consecutive devices added by add_pass_gate; emit
  // them as one `passgate` line and the rest as `switch` lines.
  const auto& devices = net.devices();
  for (std::size_t i = 0; i < devices.size(); ++i) {
    const Switch& d = devices[i];
    if (d.role == DeviceRole::kPassGateHalf && i + 1 < devices.size() &&
        devices[i + 1].role == DeviceRole::kPassGateHalf &&
        devices[i + 1].gate.var == d.gate.var &&
        devices[i + 1].a == d.a && devices[i + 1].b == d.b) {
      out += "passgate " + vars.name(d.gate.var) + " " + net.node_name(d.a) +
             " " + net.node_name(d.b) + "\n";
      ++i;
      continue;
    }
    out += "switch " + vars.name(d.gate.var) +
           (d.gate.positive ? "" : "'") + " " + net.node_name(d.a) + " " +
           net.node_name(d.b) + "\n";
  }
  return out;
}

namespace {

class DpdnReader {
 public:
  explicit DpdnReader(VarTable& vars) : vars_(vars) {}

  DpdnNetwork parse(std::string_view text) {
    std::istringstream stream{std::string(text)};
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      const std::string_view trimmed = trim(line);
      if (trimmed.empty()) continue;
      handle(trimmed, line_no);
    }
    if (!net_) {
      throw ParseError("DPDN netlist missing the 'dpdn <n>' header");
    }
    return std::move(*net_);
  }

 private:
  void handle(std::string_view line, std::size_t line_no) {
    std::istringstream words{std::string(line)};
    std::string keyword;
    words >> keyword;
    auto fail = [&](const std::string& why) -> void {
      throw ParseError("DPDN netlist line " + std::to_string(line_no) + ": " +
                       why);
    };
    if (keyword == "dpdn") {
      std::size_t n = 0;
      if (!(words >> n) || n == 0) fail("expected 'dpdn <num_vars>'");
      net_.emplace(n);
      return;
    }
    if (!net_) fail("'dpdn <n>' header must come first");
    if (keyword == "var") {
      std::string name;
      if (!(words >> name)) fail("expected 'var <name>'");
      const VarId id = vars_.intern(name);
      if (id != next_var_) fail("variables must appear in id order");
      ++next_var_;
      return;
    }
    if (keyword == "node") {
      std::string name;
      if (!(words >> name)) fail("expected 'node <name>'");
      node_ids_[name] = net_->add_internal_node(name);
      return;
    }
    if (keyword == "switch" || keyword == "passgate") {
      std::string lit;
      std::string a;
      std::string b;
      if (!(words >> lit >> a >> b)) {
        fail("expected '" + keyword + " <lit> <node> <node>'");
      }
      bool positive = true;
      if (keyword == "switch" && lit.ends_with('\'')) {
        positive = false;
        lit.pop_back();
      }
      if (!vars_.contains(lit)) fail("unknown variable: " + lit);
      const NodeId na = node_of(a, fail);
      const NodeId nb = node_of(b, fail);
      if (keyword == "switch") {
        net_->add_switch(SignalLiteral{vars_.id_of(lit), positive}, na, nb);
      } else {
        net_->add_pass_gate(vars_.id_of(lit), na, nb);
      }
      return;
    }
    fail("unknown keyword: " + keyword);
  }

  template <typename Fail>
  NodeId node_of(const std::string& name, Fail&& fail) {
    if (name == "X") return DpdnNetwork::kNodeX;
    if (name == "Y") return DpdnNetwork::kNodeY;
    if (name == "Z") return DpdnNetwork::kNodeZ;
    const auto it = node_ids_.find(name);
    if (it == node_ids_.end()) {
      fail("unknown node: " + name);
    }
    return it->second;
  }

  VarTable& vars_;
  std::optional<DpdnNetwork> net_;
  VarId next_var_ = 0;
  std::map<std::string, NodeId> node_ids_;
};

}  // namespace

DpdnNetwork read_dpdn(std::string_view text, VarTable& vars) {
  return DpdnReader(vars).parse(text);
}

}  // namespace sable
