#include "dpa/distinguisher.hpp"

#include <algorithm>
#include <utility>

#include "crypto/round_target.hpp"
#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

constexpr std::uint32_t kMtdShardTag = 0x53AB1006;

// Shard states of one distinguisher are homogeneous by construction (the
// engine never mixes them), so the downcast cannot fail in a correct
// driver; the dynamic_cast turns a future driver bug into a hard error
// instead of silent corruption. Reduction is O(shards), far off the
// per-trace path.
template <typename T>
T& cast_peer(ShardAccumulator& other) {
  T* peer = dynamic_cast<T*>(&other);
  SABLE_ASSERT(peer != nullptr,
               "shard accumulators of one distinguisher must share a type");
  return *peer;
}

// The selector was validated against a round at campaign start; this pins
// the distinguisher's spec to the instance it claims to attack, so a
// distinguisher built for one round cannot silently mis-score another.
void validate_spec_matches(const RoundSpec& round,
                           const AttackSelector& selector,
                           const SboxSpec& spec, bool require_bit) {
  validate_attack_selector(round, selector, require_bit);
  const SboxSpec& instance = round.sboxes[selector.sbox_index];
  SABLE_REQUIRE(instance.in_bits == spec.in_bits &&
                    instance.out_bits == spec.out_bits &&
                    instance.table == spec.table,
                "distinguisher spec must match the attacked round instance");
}

void require_scalar(const ShardBlock& block) {
  SABLE_REQUIRE(block.width == 1,
                "scalar distinguishers consume one sample per trace");
}

class CpaShardAccumulator final : public ShardAccumulator {
 public:
  explicit CpaShardAccumulator(StreamingCpa acc) : acc_(std::move(acc)) {}

  // One add_block call per engine shard: block boundaries are the fixed
  // shard layout, so the block-factored summation order is deterministic
  // across thread counts, lane widths and dispatch tiers.
  void accumulate(const ShardBlock& block) override {
    require_scalar(block);
    acc_.add_block(block.sub_pts, block.data, block.count);
  }
  void merge(ShardAccumulator& other) override {
    acc_.merge(cast_peer<CpaShardAccumulator>(other).acc_);
  }
  void save(ByteWriter& writer) const override { acc_.save(writer); }
  void load(ByteReader& reader) override { acc_.load(reader); }

  const StreamingCpa& acc() const { return acc_; }

 private:
  StreamingCpa acc_;
};

class DomShardAccumulator final : public ShardAccumulator {
 public:
  explicit DomShardAccumulator(StreamingDom acc) : acc_(std::move(acc)) {}

  void accumulate(const ShardBlock& block) override {
    require_scalar(block);
    acc_.add_block(block.sub_pts, block.data, block.count);
  }
  void merge(ShardAccumulator& other) override {
    acc_.merge(cast_peer<DomShardAccumulator>(other).acc_);
  }
  void save(ByteWriter& writer) const override { acc_.save(writer); }
  void load(ByteReader& reader) override { acc_.load(reader); }

  const StreamingDom& acc() const { return acc_; }

 private:
  StreamingDom acc_;
};

class MultiCpaShardAccumulator final : public ShardAccumulator {
 public:
  explicit MultiCpaShardAccumulator(StreamingMultiCpa acc)
      : acc_(std::move(acc)) {}

  void accumulate(const ShardBlock& block) override {
    SABLE_REQUIRE(block.width == acc_.width(),
                  "multisample CPA row width must equal the target's level "
                  "count");
    acc_.add_block(block.sub_pts, block.data, block.count);
  }
  void merge(ShardAccumulator& other) override {
    acc_.merge(cast_peer<MultiCpaShardAccumulator>(other).acc_);
  }
  void save(ByteWriter& writer) const override { acc_.save(writer); }
  void load(ByteReader& reader) override { acc_.load(reader); }

  const StreamingMultiCpa& acc() const { return acc_; }

 private:
  StreamingMultiCpa acc_;
};

class SecondOrderShardAccumulator final : public ShardAccumulator {
 public:
  explicit SecondOrderShardAccumulator(StreamingSecondOrderCpa acc)
      : acc_(std::move(acc)) {}

  void accumulate(const ShardBlock& block) override {
    acc_.add_block(block.sub_pts, block.data, block.count, block.width);
  }
  void merge(ShardAccumulator& other) override {
    acc_.merge(cast_peer<SecondOrderShardAccumulator>(other).acc_);
  }
  void save(ByteWriter& writer) const override { acc_.save(writer); }
  void load(ByteReader& reader) override { acc_.load(reader); }

  const StreamingSecondOrderCpa& acc() const { return acc_; }

 private:
  StreamingSecondOrderCpa acc_;
};

// MTD shard state: the shard's full accumulator plus a partial snapshot at
// every checkpoint falling inside the shard's trace range. The ordered
// left fold replays ShardedMtd's checkpoint/append sequence: settle()
// turns the fold root (canonically the first shard) into a driver, each
// merge() feeds it the next raw shard — the exact call sequence the
// engine's bespoke MTD loop used to make, so MTD curves stay
// bit-identical.
class MtdShardAccumulator final : public ShardAccumulator {
 public:
  MtdShardAccumulator(StreamingCpa acc,
                      std::shared_ptr<const std::vector<std::size_t>> ladder,
                      std::size_t correct_key)
      : acc_(std::move(acc)),
        ladder_(std::move(ladder)),
        correct_key_(correct_key) {}

  // Deliberately stays on the per-trace add_batch path: the checkpoint
  // ladder splits blocks at arbitrary trace counts, and the snapshots
  // must be bit-identical to the sequential prefix driver (a block-
  // factored prefix would round differently at every split).
  void accumulate(const ShardBlock& block) override {
    require_scalar(block);
    SABLE_ASSERT(!driver_, "cannot accumulate into a settled MTD fold root");
    const std::vector<std::size_t>& ladder = *ladder_;
    std::size_t done = 0;
    for (auto it =
             std::upper_bound(ladder.begin(), ladder.end(), block.start);
         it != ladder.end() && *it <= block.start + block.count; ++it) {
      const std::size_t upto = *it - block.start;
      acc_.add_batch(block.sub_pts + done, block.data + done, upto - done);
      done = upto;
      snapshots_.emplace_back(*it, acc_);
    }
    acc_.add_batch(block.sub_pts + done, block.data + done,
                   block.count - done);
  }

  void merge(ShardAccumulator& other) override {
    settle();
    MtdShardAccumulator& peer = cast_peer<MtdShardAccumulator>(other);
    SABLE_ASSERT(!peer.driver_,
                 "ordered MTD fold operands must be raw shard states");
    for (const auto& [count, snapshot] : peer.snapshots_) {
      driver_->checkpoint(count, snapshot);
    }
    driver_->append(peer.acc_);
  }

  // Persistence covers RAW shard states only (the engine checkpoints
  // before any reduction), so a settled fold root never reaches save().
  // The snapshots serialize beside the full accumulator; on load they are
  // reconstituted as copies of acc_ (same spec-derived configuration)
  // overwritten with the stored moments.
  void save(ByteWriter& writer) const override {
    SABLE_ASSERT(!driver_, "cannot serialize a settled MTD fold root");
    writer.u32(kMtdShardTag);
    acc_.save(writer);
    writer.u64(snapshots_.size());
    for (const auto& [count, snapshot] : snapshots_) {
      writer.u64(count);
      snapshot.save(writer);
    }
  }
  void load(ByteReader& reader) override {
    SABLE_ASSERT(!driver_, "cannot load into a settled MTD fold root");
    SABLE_REQUIRE(reader.u32() == kMtdShardTag,
                  "serialized state is not an MTD shard accumulator");
    acc_.load(reader);
    const std::uint64_t entries = reader.checked_count(16);
    snapshots_.clear();
    snapshots_.reserve(entries);
    for (std::uint64_t i = 0; i < entries; ++i) {
      const std::uint64_t count = reader.u64();
      snapshots_.emplace_back(static_cast<std::size_t>(count), acc_);
      snapshots_.back().second.load(reader);
    }
  }

  MtdResult settle_and_result() {
    settle();
    return driver_->result();
  }

 private:
  void settle() {
    if (driver_) return;
    driver_.emplace(correct_key_);
    for (const auto& [count, snapshot] : snapshots_) {
      driver_->checkpoint(count, snapshot);
    }
    driver_->append(acc_);
    snapshots_.clear();
  }

  StreamingCpa acc_;
  std::shared_ptr<const std::vector<std::size_t>> ladder_;
  std::size_t correct_key_;
  std::vector<std::pair<std::size_t, StreamingCpa>> snapshots_;
  std::optional<ShardedMtd> driver_;  // set once this state becomes the root
};

template <typename Result>
const Result& finalized_result(const std::optional<Result>& result) {
  SABLE_REQUIRE(result.has_value(),
                "distinguisher result is only valid after a campaign "
                "finalized it (TraceEngine::run_distinguishers)");
  return *result;
}

}  // namespace

// ---- CpaDistinguisher -----------------------------------------------------

CpaDistinguisher::CpaDistinguisher(const SboxSpec& spec,
                                   const AttackSelector& selector)
    : spec_(spec),
      selector_(selector),
      prototype_(spec, selector.model, selector.bit) {}

void CpaDistinguisher::validate(const RoundSpec& round) const {
  validate_spec_matches(round, selector_, spec_, /*require_bit=*/false);
}

std::unique_ptr<ShardAccumulator> CpaDistinguisher::make_shard_accumulator()
    const {
  return std::make_unique<CpaShardAccumulator>(prototype_);
}

void CpaDistinguisher::finalize(ShardAccumulator& root) {
  result_ = cast_peer<CpaShardAccumulator>(root).acc().result();
}

const AttackResult& CpaDistinguisher::result() const {
  return finalized_result(result_);
}

// ---- DomDistinguisher -----------------------------------------------------

DomDistinguisher::DomDistinguisher(const SboxSpec& spec,
                                   const AttackSelector& selector)
    : spec_(spec), selector_(selector), prototype_(spec, selector.bit) {}

void DomDistinguisher::validate(const RoundSpec& round) const {
  validate_spec_matches(round, selector_, spec_, /*require_bit=*/true);
}

std::unique_ptr<ShardAccumulator> DomDistinguisher::make_shard_accumulator()
    const {
  return std::make_unique<DomShardAccumulator>(prototype_);
}

void DomDistinguisher::finalize(ShardAccumulator& root) {
  result_ = cast_peer<DomShardAccumulator>(root).acc().result();
}

const AttackResult& DomDistinguisher::result() const {
  return finalized_result(result_);
}

// ---- MultiCpaDistinguisher ------------------------------------------------

MultiCpaDistinguisher::MultiCpaDistinguisher(const SboxSpec& spec,
                                             const AttackSelector& selector,
                                             std::size_t width)
    : spec_(spec),
      selector_(selector),
      prototype_(spec, selector.model, width, selector.bit) {}

void MultiCpaDistinguisher::validate(const RoundSpec& round) const {
  validate_spec_matches(round, selector_, spec_, /*require_bit=*/false);
}

std::unique_ptr<ShardAccumulator>
MultiCpaDistinguisher::make_shard_accumulator() const {
  return std::make_unique<MultiCpaShardAccumulator>(prototype_);
}

void MultiCpaDistinguisher::finalize(ShardAccumulator& root) {
  result_ = cast_peer<MultiCpaShardAccumulator>(root).acc().result();
}

const MultiAttackResult& MultiCpaDistinguisher::result() const {
  return finalized_result(result_);
}

// ---- SecondOrderCpaDistinguisher ------------------------------------------

SecondOrderCpaDistinguisher::SecondOrderCpaDistinguisher(
    const SboxSpec& spec, const AttackSelector& selector)
    : spec_(spec),
      selector_(selector),
      prototype_(spec, selector.model, selector.bit) {}

void SecondOrderCpaDistinguisher::validate(const RoundSpec& round) const {
  validate_spec_matches(round, selector_, spec_, /*require_bit=*/false);
}

std::unique_ptr<ShardAccumulator>
SecondOrderCpaDistinguisher::make_shard_accumulator() const {
  return std::make_unique<SecondOrderShardAccumulator>(prototype_);
}

void SecondOrderCpaDistinguisher::finalize(ShardAccumulator& root) {
  result_ = cast_peer<SecondOrderShardAccumulator>(root).acc().result();
}

const SecondOrderAttackResult& SecondOrderCpaDistinguisher::result() const {
  return finalized_result(result_);
}

// ---- MtdDistinguisher -----------------------------------------------------

MtdDistinguisher::MtdDistinguisher(const SboxSpec& spec,
                                   const AttackSelector& selector,
                                   std::size_t correct_key,
                                   const std::vector<std::size_t>& checkpoints,
                                   std::size_t num_traces)
    : spec_(spec),
      selector_(selector),
      correct_key_(correct_key),
      prototype_(spec, selector.model, selector.bit) {
  // Canonical checkpoint ladder: sorted, unique, and restricted to counts
  // the drivers can evaluate (>= 2 traces, within the campaign).
  std::vector<std::size_t> ladder = checkpoints;
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  ladder.erase(
      std::remove_if(ladder.begin(), ladder.end(),
                     [&](std::size_t c) { return c < 2 || c > num_traces; }),
      ladder.end());
  ladder_ =
      std::make_shared<const std::vector<std::size_t>>(std::move(ladder));
}

void MtdDistinguisher::validate(const RoundSpec& round) const {
  validate_spec_matches(round, selector_, spec_, /*require_bit=*/false);
}

std::unique_ptr<ShardAccumulator> MtdDistinguisher::make_shard_accumulator()
    const {
  return std::make_unique<MtdShardAccumulator>(prototype_, ladder_,
                                               correct_key_);
}

void MtdDistinguisher::finalize(ShardAccumulator& root) {
  result_ = cast_peer<MtdShardAccumulator>(root).settle_and_result();
}

const MtdResult& MtdDistinguisher::result() const {
  return finalized_result(result_);
}

}  // namespace sable
