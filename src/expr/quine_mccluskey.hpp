// Quine–McCluskey two-level minimization.
//
// Used to turn truth tables (e.g. cipher S-box output bits) into sum-of-
// products expressions that the DPDN design method can consume. Exact prime
// implicant generation with essential-implicant extraction and a greedy
// cover for the remainder; intended for the small gate-sized functions this
// library designs (n <= ~10).
#pragma once

#include <cstdint>
#include <vector>

#include "expr/expression.hpp"
#include "expr/truth_table.hpp"

namespace sable {

/// A product term: for bit k, (mask>>k)&1 == 0 means variable k is cared
/// about and must equal (value>>k)&1; mask bit 1 means "don't care".
struct Cube {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;

  bool covers(std::uint32_t minterm) const {
    return ((minterm ^ value) & ~mask) == 0;
  }
  /// Number of literals in this cube over `num_vars` variables.
  std::size_t literal_count(std::size_t num_vars) const;
  bool operator==(const Cube&) const = default;
};

/// All prime implicants of the function.
std::vector<Cube> prime_implicants(const TruthTable& f);

/// Minimal (essential + greedy) cover of the function's on-set.
std::vector<Cube> minimize(const TruthTable& f);

/// Sum-of-products expression for a cube cover.
ExprPtr cubes_to_expr(const std::vector<Cube>& cubes, std::size_t num_vars);

/// Convenience: minimized SOP expression of a truth table.
ExprPtr minimized_sop(const TruthTable& f);

}  // namespace sable
