// Definitions of the bit-parallel conduction kernel templates declared in
// netlist/conduction.hpp. Included by exactly the TUs that instantiate
// them: netlist/conduction.cpp for the portable lane words, and the
// per-ISA TUs under src/simd/ (inside their #pragma GCC target regions)
// for Word256/Word512 — that split is what keeps every AVX symbol out of
// portable code paths in the runtime-dispatch build.
#pragma once

#include "netlist/conduction.hpp"
#include "util/error.hpp"

namespace sable {

template <typename W>
void device_conduction_masks(const DpdnNetwork& net,
                             const std::vector<W>& var_words,
                             std::vector<W>& out) {
  SABLE_ASSERT(var_words.size() >= net.num_vars(),
               "one lane word per input variable required");
  out.resize(net.device_count());
  for (std::size_t d = 0; d < net.device_count(); ++d) {
    const SignalLiteral& gate = net.devices()[d].gate;
    const W& w = var_words[gate.var];
    out[d] = gate.positive ? w : ~w;
  }
}

template <typename W>
void propagate_conduction(const DpdnNetwork& net,
                          const std::vector<W>& device_masks,
                          std::vector<W>& reach) {
  // DPDNs are a handful of nodes, so a few device sweeps reach the fixpoint
  // faster than any per-lane union-find would.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t d = 0; d < net.device_count(); ++d) {
      const W& m = device_masks[d];
      if (!lane_any(m)) continue;
      const Switch& sw = net.devices()[d];
      const W joint = (reach[sw.a] | reach[sw.b]) & m;
      if (lane_any(joint & ~reach[sw.a]) || lane_any(joint & ~reach[sw.b])) {
        reach[sw.a] |= joint;
        reach[sw.b] |= joint;
        changed = true;
      }
    }
  }
}

/// Instantiates the conduction kernels for lane word W (used by the base
/// TU for the portable words and by the src/simd TUs for the wide ones).
#define SABLE_INSTANTIATE_CONDUCTION(W)                            \
  template void device_conduction_masks<W>(                        \
      const DpdnNetwork&, const std::vector<W>&, std::vector<W>&); \
  template void propagate_conduction<W>(                           \
      const DpdnNetwork&, const std::vector<W>&, std::vector<W>&);

}  // namespace sable
