// Transistor-level assembly of the generic SABL gate (Fig. 1).
//
// Topology (StrongArm-flip-flop sense amplifier, per the paper):
//   - clk-gated PMOS precharge devices on the internal sense nodes s / sb;
//   - cross-coupled inverter pair: PMOS (vdd->s gated by sb, vdd->sb gated
//     by s) and NMOS (s->X gated by sb, sb->Y gated by s);
//   - bridge transistor M1 between X and Y, gated by clk, which guarantees
//     both DPDN output nodes discharge whichever branch is on;
//   - the DPDN under X / Y with common node Z;
//   - clk-gated foot NMOS from Z to ground;
//   - output inverters out = inv(sb), outb = inv(s) so that cascaded gates
//     see inputs precharged to 0 (the timing §2 relies on).
//
// All parasitic capacitances are explicit linear capacitors at the nodes
// (extracted via tech/capacitance); the level-1 devices carry no intrinsic
// charge, so every coulomb the supply delivers is accounted to a node.
#pragma once

#include <string>
#include <vector>

#include "netlist/network.hpp"
#include "spice/circuit.hpp"
#include "tech/technology.hpp"

namespace sable {

struct SablGateCircuit {
  spice::Circuit circuit;
  /// spice node name of each DPDN node, indexed by NodeId.
  std::vector<std::string> dpdn_node_names;
  /// Explicit capacitance placed at each DPDN node [F].
  std::vector<double> dpdn_node_caps;
  /// Input signal node names per variable: true and complement rails.
  std::vector<std::string> input_true;
  std::vector<std::string> input_false;
};

/// Builds the SABL gate circuit for `net`. Supplies and stimuli are *not*
/// included; the testbench adds them (see sabl/testbench.hpp).
SablGateCircuit assemble_sabl_gate(const DpdnNetwork& net,
                                   const VarTable& vars,
                                   const Technology& tech,
                                   const SizingPlan& sizing);

}  // namespace sable
