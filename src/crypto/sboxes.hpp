// Cipher S-boxes used as DPA attack targets.
//
// The paper's threat model is first-order DPA [Kocher] against the
// nonlinear layer of a block cipher. Three classic S-boxes give targets of
// increasing width: PRESENT (4->4, the size of one complex differential
// gate per output bit), DES S1 (6->4), and AES (8->8, table reference).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "expr/truth_table.hpp"

namespace sable {

/// PRESENT cipher S-box (ISO/IEC 29192-2), 4-bit.
std::uint8_t present_sbox(std::uint8_t x);

/// DES S-box S1 applied to a 6-bit input (row = bits 5,0; column = 4..1).
std::uint8_t des_sbox1(std::uint8_t x);

/// AES (Rijndael) S-box, 8-bit.
std::uint8_t aes_sbox(std::uint8_t x);

/// Generic S-box description: table[x] for x in [0, 2^in_bits).
struct SboxSpec {
  const char* name = "";
  std::size_t in_bits = 0;
  std::size_t out_bits = 0;
  std::vector<std::uint8_t> table;

  std::uint8_t apply(std::uint8_t x) const { return table[x]; }
};

SboxSpec present_spec();
SboxSpec des1_spec();
SboxSpec aes_spec();

/// Truth table of one output bit of the S-box.
TruthTable sbox_output_bit(const SboxSpec& spec, std::size_t bit);

}  // namespace sable
