#include "spice/netlist_export.hpp"

#include <cstdio>
#include <vector>

namespace sable::spice {

namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string waveform_text(const Waveform& w) {
  switch (w.kind) {
    case WaveformKind::kDc:
      return "DC " + num(w.dc_value);
    case WaveformKind::kPulse:
      return "PULSE(" + num(w.v1) + " " + num(w.v2) + " " + num(w.delay) +
             " " + num(w.rise) + " " + num(w.fall) + " " + num(w.width) +
             " " + num(w.period) + ")";
    case WaveformKind::kPwl: {
      std::string out = "PWL(";
      for (std::size_t i = 0; i < w.points.size(); ++i) {
        if (i != 0) out += ' ';
        out += num(w.points[i].first) + " " + num(w.points[i].second);
      }
      return out + ")";
    }
  }
  return "";
}

}  // namespace

std::string to_spice_deck(const Circuit& circuit,
                          const ExportOptions& options) {
  std::string deck = "* " + options.title + "\n";

  // Collect distinct MOS models.
  struct ModelRef {
    MosType type;
    MosModelParams params;
  };
  std::vector<ModelRef> models;
  auto model_name = [&](const Mosfet& m) {
    for (std::size_t i = 0; i < models.size(); ++i) {
      const ModelRef& r = models[i];
      if (r.type == m.type && r.params.vt0 == m.params.vt0 &&
          r.params.kp == m.params.kp && r.params.lambda == m.params.lambda) {
        return (r.type == MosType::kNmos ? "nmos" : "pmos") +
               std::to_string(i);
      }
    }
    models.push_back(ModelRef{m.type, m.params});
    return (m.type == MosType::kNmos ? "nmos" : "pmos") +
           std::to_string(models.size() - 1);
  };

  std::size_t idx = 0;
  for (const auto& r : circuit.resistors()) {
    deck += "R" + std::to_string(idx++) + " " + circuit.node_name(r.a) + " " +
            circuit.node_name(r.b) + " " + num(r.resistance) + "\n";
  }
  idx = 0;
  for (const auto& c : circuit.capacitors()) {
    deck += "C" + std::to_string(idx++) + " " + circuit.node_name(c.a) + " " +
            circuit.node_name(c.b) + " " + num(c.capacitance) + "\n";
  }
  for (const auto& v : circuit.vsources()) {
    deck += "V" + v.name + " " + circuit.node_name(v.positive) + " " +
            circuit.node_name(v.negative) + " " + waveform_text(v.waveform) +
            "\n";
  }
  for (const auto& m : circuit.mosfets()) {
    // Bulk tied to source (the internal engine has no body effect either).
    deck += "M" + m.name + " " + circuit.node_name(m.drain) + " " +
            circuit.node_name(m.gate) + " " + circuit.node_name(m.source) +
            " " + circuit.node_name(m.source) + " " + model_name(m) + " W=" +
            num(m.width) + " L=" + num(m.length) + "\n";
  }
  for (std::size_t i = 0; i < models.size(); ++i) {
    const ModelRef& r = models[i];
    deck += ".model " +
            ((r.type == MosType::kNmos ? "nmos" : "pmos") +
             std::to_string(i)) +
            (r.type == MosType::kNmos ? " NMOS(" : " PMOS(") +
            "LEVEL=1 VTO=" + num(r.params.vt0) + " KP=" + num(r.params.kp) +
            " LAMBDA=" + num(r.params.lambda) + ")\n";
  }
  if (options.tran_stop > 0.0) {
    deck += ".tran " + num(options.tran_step) + " " + num(options.tran_stop) +
            "\n";
  }
  deck += ".end\n";
  return deck;
}

}  // namespace sable::spice
