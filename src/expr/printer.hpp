// Expression printing in the paper's notation: AND as '.', OR as ' + ',
// complement as a postfix apostrophe (stand-in for the overbar).
#pragma once

#include <string>

#include "expr/expression.hpp"

namespace sable {

/// Infix form, minimally parenthesized: "(A+B).(C+D)", "A.B' + B'".
std::string to_string(const ExprPtr& e, const VarTable& vars);

/// Lisp-style dump for debugging: "(and A (not B))".
std::string to_sexpr(const ExprPtr& e, const VarTable& vars);

}  // namespace sable
