// Designing a constant-power cipher substitution layer.
//
// Takes the PRESENT S-box (the nonlinear layer of a lightweight block
// cipher), minimizes each output bit, synthesizes a fully connected complex
// gate per bit with the §4.1 method, verifies all properties, and prints a
// little datasheet — the flow a library developer would run to harden a
// crypto datapath.
#include <cstdio>

#include "core/checks.hpp"
#include "core/depth_analysis.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "crypto/sboxes.hpp"
#include "expr/factoring.hpp"
#include "expr/printer.hpp"
#include "switchsim/energy.hpp"
#include "tech/capacitance.hpp"
#include "util/strings.hpp"

using namespace sable;

int main() {
  const SboxSpec spec = present_spec();
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  const VarTable vars = VarTable::alphabetic(spec.in_bits);

  std::printf("PRESENT S-box as %zu fully connected SABL complex gates\n\n",
              spec.out_bits);
  std::printf("%-4s %-34s %4s %5s %6s %9s %8s\n", "bit", "factored function",
              "dev", "nodes", "depth", "Cint", "NED");

  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    const TruthTable t = sbox_output_bit(spec, bit);
    const ExprPtr f = factored_form(t);
    const DpdnNetwork net = synthesize_fc_dpdn(f, spec.in_bits);

    if (!check_functionality(net, f).ok ||
        !check_full_connectivity(net).fully_connected) {
      std::printf("bit %zu: VERIFICATION FAILED\n", bit);
      return 1;
    }
    const DepthReport depth = analyze_evaluation_depth(net);
    const GateEnergyModel model = build_gate_model(net, tech, sizing);
    const EnergyProfile profile = profile_gate_energy(net, model);
    std::printf("y%zu   %-34s %4zu %5zu %3zu..%zu %9s %7.2f%%\n", bit,
                to_string(f, vars).c_str(), net.device_count(),
                net.internal_node_count(), depth.min_depth, depth.max_depth,
                format_eng(total_internal_capacitance(net, tech, sizing), "F")
                    .c_str(),
                profile.ned * 100.0);
  }

  std::printf("\nWith the enhancement (constant depth, Fig. 6 style):\n");
  std::printf("%-4s %4s %6s %6s %8s\n", "bit", "dev", "dummy", "depth",
              "NED");
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    const TruthTable t = sbox_output_bit(spec, bit);
    const DpdnNetwork net = synthesize_enhanced_from_table(t);
    const DepthReport depth = analyze_evaluation_depth(net);
    const GateEnergyModel model = build_gate_model(net, tech, sizing);
    const EnergyProfile profile = profile_gate_energy(net, model);
    std::printf("y%zu   %4zu %6zu %4zu:%zu %7.2f%%\n", bit,
                net.device_count(), net.pass_gate_device_count(),
                depth.min_depth, depth.max_depth, profile.ned * 100.0);
  }
  std::printf(
      "\nAll gates are memoryless: every internal node discharges and\n"
      "recharges each cycle, so the substitution layer draws the same\n"
      "charge regardless of the processed nibble.\n");
  return 0;
}
