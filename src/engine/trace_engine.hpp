// TraceEngine — batched, thread-sharded trace generation with streaming
// consumption.
//
// The engine turns an S-box target into power-trace campaigns at MTD
// scale. Two axes of parallelism compose: within a shard, plaintexts are
// simulated 64 encryptions per clock cycle through the bit-parallel
// circuit simulators; across shards, a worker pool spreads the campaign
// over cores. Traces are either retained in a TraceSet (run) or handed
// block-by-block in canonical order to streaming consumers (stream) — and
// the attack campaigns (cpa/dom/mtd) skip the hand-off entirely by
// accumulating per shard and merging, so an attack over 10^7 traces needs
// O(guesses) memory per shard, one pass, and 1/(64 * cores) of the scalar
// simulation time.
//
// Determinism: a campaign is defined as a sequence of fixed-size shards
// (block_size traces, rounded to whole 64-lane words). Shard s draws its
// plaintexts and noise from counter-derived sub-streams
// campaign_shard_seed(seed, s, ·) and starts from fresh simulator state,
// so its traces depend only on (options, s) — never on which worker ran
// it or how many there were. Results are bit-identical for any
// num_threads, including 1. block_size is therefore part of the stream
// definition (it sets the shard boundaries), not a pure performance knob.
#pragma once

#include <cstdint>
#include <functional>

#include "crypto/target.hpp"
#include "dpa/mtd.hpp"
#include "dpa/streaming.hpp"
#include "power/trace.hpp"

namespace sable {

struct CampaignOptions {
  std::size_t num_traces = 0;
  std::uint8_t key = 0;
  /// Gaussian measurement noise RMS [J] added per trace.
  double noise_sigma = 0.0;
  /// Seed of the campaign's plaintext/noise streams; one seed reproduces
  /// the exact trace sequence bit for bit.
  std::uint64_t seed = 0xA77ACC;
  /// Traces per campaign shard (rounded down to whole 64-lane words).
  /// Shards are the unit of parallel scheduling AND of the stream
  /// definition: changing block_size changes the generated traces.
  std::size_t block_size = 4096;
  /// Worker threads the campaign shards are scheduled over.
  /// 0 = hardware concurrency. Any value yields bit-identical results.
  std::size_t num_threads = 0;
};

/// Shard granularity of a campaign: block_size rounded down to whole
/// 64-lane words (at least one word).
std::size_t campaign_shard_size(const CampaignOptions& options);

/// Seed of shard `shard`'s sub-stream `stream` (0 = plaintexts, 1 =
/// noise): a splitmix64-style mix of the campaign seed and a counter, so
/// shards are decorrelated yet reproducible from (seed, shard) alone.
std::uint64_t campaign_shard_seed(std::uint64_t campaign_seed,
                                  std::size_t shard, std::size_t stream);

/// Worker threads a campaign resolves to (0 = hardware concurrency).
std::size_t campaign_thread_count(const CampaignOptions& options);

/// Receives (plaintexts, samples, count) blocks as the campaign streams.
using TraceSink =
    std::function<void(const std::uint8_t*, const double*, std::size_t)>;

class TraceEngine {
 public:
  TraceEngine(const SboxSpec& spec, LogicStyle style, const Technology& tech);

  /// Runs the campaign and retains every trace (for batch-style consumers
  /// and offline re-analysis). Shards are simulated in parallel and land
  /// directly in their canonical-order slice of the TraceSet.
  TraceSet run(const CampaignOptions& options);

  /// Runs the campaign without retaining traces: each shard of at most
  /// `options.block_size` traces is simulated bit-parallel (in parallel
  /// across shards) and handed to `sink` in canonical shard order on the
  /// calling thread, then its storage is released. In-flight shards are
  /// bounded, so a slow sink cannot accumulate unbounded buffers.
  void stream(const CampaignOptions& options, const TraceSink& sink);

  /// One-pass CPA over a streamed campaign: per-shard accumulators on the
  /// worker pool, merged in canonical shard order.
  AttackResult cpa_campaign(const CampaignOptions& options, PowerModel model,
                            std::size_t bit = 0);

  /// One-pass difference-of-means over a streamed campaign (sharded).
  AttackResult dom_campaign(const CampaignOptions& options, std::size_t bit);

  /// Incremental MTD curve: workers snapshot each shard's partial
  /// accumulator at the checkpoints falling inside it; the snapshots are
  /// then ranked in order against the merged prefix (ShardedMtd) — the
  /// full measurements-to-disclosure experiment in a single parallel pass
  /// over generated-and-dropped traces. Duplicate checkpoints are
  /// evaluated once.
  MtdResult mtd_campaign(const CampaignOptions& options, PowerModel model,
                         const std::vector<std::size_t>& checkpoints,
                         std::size_t bit = 0);

  SboxTarget& target() { return target_; }
  const SboxSpec& spec() const { return target_.spec(); }

 private:
  SboxTarget target_;
};

}  // namespace sable
