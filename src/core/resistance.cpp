#include "core/resistance.hpp"

#include <algorithm>

#include "netlist/conduction.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace sable {

double effective_resistance(const DpdnNetwork& net, std::uint64_t assignment,
                            NodeId from, NodeId to, double r_on) {
  if (!conducts(net, assignment, from, to)) return -1.0;
  if (from == to) return 0.0;

  // Nodal analysis with `to` as ground: G v = i, inject 1 A at `from`.
  // Unknowns are all nodes except `to`; disconnected nodes get a tiny
  // self-conductance so the system stays non-singular.
  const std::size_t n = net.node_count();
  std::vector<std::size_t> index(n, SIZE_MAX);
  std::size_t unknowns = 0;
  for (NodeId node = 0; node < n; ++node) {
    if (node != to) index[node] = unknowns++;
  }

  DenseMatrix g(unknowns, unknowns);
  const double gmin = 1e-12;
  for (std::size_t k = 0; k < unknowns; ++k) g.at(k, k) = gmin;

  const double g_on = 1.0 / r_on;
  for (const auto& d : net.devices()) {
    if (!d.gate.conducts(assignment)) continue;
    const std::size_t ia = index[d.a];
    const std::size_t ib = index[d.b];
    if (ia != SIZE_MAX) g.at(ia, ia) += g_on;
    if (ib != SIZE_MAX) g.at(ib, ib) += g_on;
    if (ia != SIZE_MAX && ib != SIZE_MAX) {
      g.at(ia, ib) -= g_on;
      g.at(ib, ia) -= g_on;
    }
  }

  std::vector<double> rhs(unknowns, 0.0);
  rhs[index[from]] = 1.0;
  const bool solved = lu_solve(g, rhs);
  SABLE_ASSERT(solved, "resistance Laplacian must be non-singular");
  return rhs[index[from]];
}

ResistanceReport analyze_discharge_resistance(const DpdnNetwork& net,
                                              double r_on) {
  ResistanceReport report;
  const std::size_t rows = std::size_t{1} << net.num_vars();
  for (std::size_t a = 0; a < rows; ++a) {
    double r = effective_resistance(net, a, DpdnNetwork::kNodeX,
                                    DpdnNetwork::kNodeZ, r_on);
    if (r < 0.0) {
      r = effective_resistance(net, a, DpdnNetwork::kNodeY,
                               DpdnNetwork::kNodeZ, r_on);
    }
    SABLE_ASSERT(r >= 0.0, "one branch of the DPDN must conduct");
    report.resistance_per_assignment.push_back(r);
  }
  const auto [mn, mx] =
      std::minmax_element(report.resistance_per_assignment.begin(),
                          report.resistance_per_assignment.end());
  report.min_resistance = *mn;
  report.max_resistance = *mx;
  report.relative_spread =
      report.min_resistance > 0.0
          ? report.max_resistance / report.min_resistance - 1.0
          : 0.0;
  return report;
}

}  // namespace sable
