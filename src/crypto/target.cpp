#include "crypto/target.hpp"

#include "cell/builder.hpp"
#include "expr/factoring.hpp"
#include "util/error.hpp"

namespace sable {

const char* to_string(LogicStyle style) {
  switch (style) {
    case LogicStyle::kStaticCmos:
      return "static-CMOS";
    case LogicStyle::kSablGenuine:
      return "SABL-genuine";
    case LogicStyle::kSablFullyConnected:
      return "SABL-fully-connected";
    case LogicStyle::kSablEnhanced:
      return "SABL-enhanced";
    case LogicStyle::kWddlBalanced:
      return "WDDL-balanced";
    case LogicStyle::kWddlMismatched:
      return "WDDL-5%-mismatch";
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

namespace {

NetworkVariant variant_for(LogicStyle style) {
  switch (style) {
    case LogicStyle::kSablGenuine:
      return NetworkVariant::kGenuine;
    case LogicStyle::kSablEnhanced:
      return NetworkVariant::kEnhanced;
    case LogicStyle::kStaticCmos:  // topology reused; energy model differs
    case LogicStyle::kSablFullyConnected:
    case LogicStyle::kWddlBalanced:
    case LogicStyle::kWddlMismatched:
      return NetworkVariant::kFullyConnected;
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

GateCircuit build_sbox_circuit(const SboxSpec& spec, LogicStyle style,
                               const Technology& tech) {
  std::vector<ExprPtr> outputs;
  outputs.reserve(spec.out_bits);
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    outputs.push_back(factored_form(sbox_output_bit(spec, bit)));
  }
  return build_from_expressions(outputs, spec.in_bits, variant_for(style),
                                tech);
}

}  // namespace

SboxTarget::SboxTarget(const SboxSpec& spec, LogicStyle style,
                       const Technology& tech)
    : spec_(spec), style_(style),
      circuit_(build_sbox_circuit(spec, style, tech)) {
  switch (style) {
    case LogicStyle::kStaticCmos: {
      // One transition's worth of switching energy for a typical cell load:
      // ~5 fF at the reference VDD.
      const double c_sw = 5e-15;
      cmos_sim_ = std::make_unique<CmosCircuitSim>(
          circuit_, c_sw * tech.vdd * tech.vdd);
      break;
    }
    case LogicStyle::kWddlBalanced:
      wddl_sim_ = std::make_unique<WddlCircuitSim>(circuit_, tech, 0.0);
      break;
    case LogicStyle::kWddlMismatched:
      wddl_sim_ = std::make_unique<WddlCircuitSim>(circuit_, tech, 0.05);
      break;
    default:
      diff_sim_ = std::make_unique<DifferentialCircuitSim>(circuit_);
      break;
  }
}

double SboxTarget::trace(std::uint8_t pt, std::uint8_t key,
                         double noise_sigma, Rng& rng) {
  const std::uint8_t x = static_cast<std::uint8_t>(
      (pt ^ key) & ((1u << spec_.in_bits) - 1u));
  double energy = 0.0;
  if (diff_sim_) {
    energy = diff_sim_->cycle(x).energy;
  } else if (wddl_sim_) {
    energy = wddl_sim_->cycle(x).energy;
  } else {
    energy = cmos_sim_->cycle(x).energy;
  }
  return energy + noise_sigma * rng.gaussian();
}

std::uint8_t SboxTarget::reference(std::uint8_t pt, std::uint8_t key) const {
  return spec_.apply(static_cast<std::uint8_t>(
      (pt ^ key) & ((1u << spec_.in_bits) - 1u)));
}

}  // namespace sable
