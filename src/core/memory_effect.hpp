// Structural memory-effect analysis (§2, §3).
//
// A genuine DPDN leaves internal nodes floating for some inputs; the charge
// trapped on those nodes carries state between cycles, so the capacitance
// recharged in the precharge phase — and therefore the supply energy —
// depends on the input *history*. This module detects the effect
// structurally: which (assignment, node) pairs float, and how many distinct
// discharge classes (sets of discharged internal nodes) the network has.
// A network is memoryless iff it is fully connected iff it has exactly one
// discharge class (all internal nodes).
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace sable {

struct MemoryEffectReport {
  bool memoryless = false;
  /// (assignment, node) pairs where an internal node floats.
  std::vector<std::pair<std::uint64_t, NodeId>> floating_events;
  /// Number of distinct sets of discharged internal nodes over all inputs.
  std::size_t num_discharge_classes = 0;
  /// Largest difference in discharged-internal-node count between any two
  /// assignments (0 for a memoryless network).
  std::size_t max_discharge_count_spread = 0;
};

MemoryEffectReport analyze_memory_effect(const DpdnNetwork& net);

}  // namespace sable
