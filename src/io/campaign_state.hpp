// Serializable distinguisher state: campaign checkpoints and partial
// worker states as one on-disk format.
//
// A campaign-state file stores the manifest plus RAW per-shard
// accumulator states for a set of covered canonical shards — never
// merged prefixes. That choice is what makes checkpoint/resume and
// multi-process fan-out bit-identical to a single local run: the
// fixed-shape merge tree's pairing depends on the shard count (for
// non-power-of-2 counts a merged prefix would reduce in a DIFFERENT
// association than the tree), so persisted campaigns keep every shard's
// state separate and always replay the exact same reduction at the end.
//
// Layout (little-endian):
//   magic              8 bytes  "SABLSTAT"
//   version            u32      (1)
//   manifest           CampaignManifest
//   num_distinguishers u64      (d-order = the caller's distinguisher list)
//   covered_count      u64
//   covered shard ids  covered_count x u64, strictly ascending
//   blobs              covered_count x num_distinguishers x
//                      { blob_len u64, blob bytes } in (shard, d) order
//
// Every blob is length-prefixed and the loader verifies the accumulator
// consumed exactly blob_len bytes, so a corrupt blob cannot silently
// desynchronize the stream; type/config mismatches surface as the
// accumulators' own tagged-load errors, wrapped into a path-tagged
// BadFileError here.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dpa/distinguisher.hpp"
#include "io/manifest.hpp"

namespace sable {

/// Writes the covered subset of `states` (shards s with states[0][s]
/// non-null; every distinguisher must agree on coverage) atomically to
/// `path`. `states` must be a num_distinguishers x num_shards matrix.
void save_campaign_state(const std::string& path,
                         const CampaignManifest& manifest,
                         const ShardStates& states);

/// Loads a campaign-state file into `states`, creating each accumulator
/// via its distinguisher's make_shard_accumulator() and load()ing the
/// stored moments — prediction tables are rebuilt from the specs, never
/// read from disk. Shards already covered in `states` or covered twice
/// by the file throw ShardIndexError; a manifest that does not match
/// `expected` throws ManifestMismatchError; a distinguisher count
/// mismatch or any malformed blob throws BadFileError. Returns the
/// number of shards loaded.
std::size_t load_campaign_state(const std::string& path,
                                const CampaignManifest& expected,
                                std::span<Distinguisher* const> distinguishers,
                                ShardStates& states);

/// Persistence-aware campaign driver shared by the live engine and the
/// replay path: optionally resumes from persist.resume_path, derives the
/// uncovered worklist inside [persist.shard_begin, persist.shard_end),
/// hands it to `accumulate` in waves of persist.checkpoint_every_shards
/// (0 = one wave), and checkpoints `states` to persist.checkpoint_path
/// after each wave. `accumulate` must fill states[d][s] for every shard
/// in the worklist it is given. Returns true when every canonical shard
/// is covered afterwards (the caller may reduce and finalize), false for
/// a partial run — which requires a checkpoint path, otherwise the
/// partial work would be unrecoverable (InvalidArgument).
bool run_persisted_waves(
    const CampaignManifest& manifest,
    std::span<Distinguisher* const> distinguishers, ShardStates& states,
    const CampaignPersistence& persist,
    const std::function<void(const std::vector<std::size_t>&)>& accumulate);

}  // namespace sable
