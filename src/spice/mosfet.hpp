// Level-1 (Shichman-Hodges) MOSFET evaluation.
//
// The model captures what the paper's figures depend on: conduction vs.
// cut-off, triode/saturation current drive, and the regenerative behaviour
// of the cross-coupled sense amplifier. Channel-length modulation is
// included for stable Newton iterations; body effect is not (sources of
// stacked NMOS devices ride above ground, so absolute thresholds are
// slightly optimistic — a documented calibration-level simplification).
#pragma once

#include "tech/technology.hpp"

namespace sable::spice {

enum class MosType { kNmos, kPmos };

/// Linearization of the drain current around a terminal-voltage operating
/// point: id plus its partial derivatives w.r.t. the drain, gate and source
/// voltages. `id` is the current flowing drain -> channel -> source.
struct MosLinearization {
  double id = 0.0;
  double did_dvd = 0.0;
  double did_dvg = 0.0;
  double did_dvs = 0.0;
};

/// Evaluates the level-1 model at terminal voltages (vd, vg, vs) for a
/// device of width `w` and length `l`. Handles source/drain reversal and
/// PMOS polarity internally.
MosLinearization mos_linearize(MosType type, const MosModelParams& params,
                               double vd, double vg, double vs, double w,
                               double l);

}  // namespace sable::spice
