#include "expr/quine_mccluskey.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "util/error.hpp"

namespace sable {

std::size_t Cube::literal_count(std::size_t num_vars) const {
  const auto cared =
      static_cast<std::uint32_t>((std::uint64_t{1} << num_vars) - 1) & ~mask;
  return static_cast<std::size_t>(std::popcount(cared));
}

std::vector<Cube> prime_implicants(const TruthTable& f) {
  const std::size_t n = f.num_vars();
  // Current generation of implicants, deduplicated.
  std::set<std::pair<std::uint32_t, std::uint32_t>> current;
  for (std::size_t row = 0; row < f.num_rows(); ++row) {
    if (f.get(row)) current.insert({static_cast<std::uint32_t>(row), 0u});
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<std::pair<std::uint32_t, std::uint32_t>> next;
    std::set<std::pair<std::uint32_t, std::uint32_t>> combined;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> items(current.begin(),
                                                               current.end());
    for (std::size_t i = 0; i < items.size(); ++i) {
      for (std::size_t j = i + 1; j < items.size(); ++j) {
        if (items[i].second != items[j].second) continue;
        const std::uint32_t diff = items[i].first ^ items[j].first;
        if (std::popcount(diff) != 1) continue;
        next.insert({items[i].first & ~diff, items[i].second | diff});
        combined.insert(items[i]);
        combined.insert(items[j]);
      }
    }
    for (const auto& item : items) {
      if (!combined.count(item)) {
        primes.push_back(Cube{item.first, item.second});
      }
    }
    current = std::move(next);
  }

  // Deterministic order: wider cubes (more don't-cares) first, then by value.
  std::sort(primes.begin(), primes.end(), [n](const Cube& a, const Cube& b) {
    const auto la = a.literal_count(n);
    const auto lb = b.literal_count(n);
    if (la != lb) return la < lb;
    if (a.mask != b.mask) return a.mask < b.mask;
    return a.value < b.value;
  });
  return primes;
}

std::vector<Cube> minimize(const TruthTable& f) {
  std::vector<std::uint32_t> minterms;
  for (std::size_t row = 0; row < f.num_rows(); ++row) {
    if (f.get(row)) minterms.push_back(static_cast<std::uint32_t>(row));
  }
  if (minterms.empty()) return {};

  const std::vector<Cube> primes = prime_implicants(f);
  std::vector<Cube> cover;
  std::vector<bool> covered(minterms.size(), false);

  // Essential primes: sole cover of some minterm.
  for (std::size_t m = 0; m < minterms.size(); ++m) {
    const Cube* only = nullptr;
    int count = 0;
    for (const auto& p : primes) {
      if (p.covers(minterms[m])) {
        ++count;
        only = &p;
        if (count > 1) break;
      }
    }
    SABLE_ASSERT(count >= 1, "prime implicants must cover every minterm");
    if (count == 1 &&
        std::find(cover.begin(), cover.end(), *only) == cover.end()) {
      cover.push_back(*only);
    }
  }
  for (std::size_t m = 0; m < minterms.size(); ++m) {
    for (const auto& c : cover) {
      if (c.covers(minterms[m])) {
        covered[m] = true;
        break;
      }
    }
  }

  // Greedy: repeatedly take the prime covering the most uncovered minterms.
  for (;;) {
    std::size_t best_gain = 0;
    const Cube* best = nullptr;
    for (const auto& p : primes) {
      std::size_t gain = 0;
      for (std::size_t m = 0; m < minterms.size(); ++m) {
        if (!covered[m] && p.covers(minterms[m])) ++gain;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best = &p;
      }
    }
    if (best == nullptr) break;
    cover.push_back(*best);
    for (std::size_t m = 0; m < minterms.size(); ++m) {
      if (best->covers(minterms[m])) covered[m] = true;
    }
  }
  return cover;
}

ExprPtr cubes_to_expr(const std::vector<Cube>& cubes, std::size_t num_vars) {
  if (cubes.empty()) return Expr::constant(false);
  std::vector<ExprPtr> terms;
  terms.reserve(cubes.size());
  for (const auto& c : cubes) {
    std::vector<ExprPtr> lits;
    for (std::size_t v = 0; v < num_vars; ++v) {
      if ((c.mask >> v) & 1u) continue;
      ExprPtr lit = Expr::variable(static_cast<VarId>(v));
      if (((c.value >> v) & 1u) == 0) lit = Expr::negate(lit);
      lits.push_back(std::move(lit));
    }
    terms.push_back(lits.empty() ? Expr::constant(true)
                                 : Expr::conj(std::move(lits)));
  }
  return Expr::disj(std::move(terms));
}

ExprPtr minimized_sop(const TruthTable& f) {
  return cubes_to_expr(minimize(f), f.num_vars());
}

}  // namespace sable
