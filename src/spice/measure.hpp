// Post-processing measurements on transient results: the quantities behind
// Fig. 3 (supply-current profile) and Fig. 4 (charge / discharged
// capacitance per event).
#pragma once

#include <string>

#include "spice/waveform.hpp"

namespace sable::spice {

/// Trapezoidal integral of samples `y` over [t0, t1] (sample-aligned).
double integrate(const std::vector<double>& time, const std::vector<double>& y,
                 double t0, double t1);

/// Charge delivered by source `name` over [t0, t1]: integral of minus the
/// branch current (branch current flows into the + terminal).
double delivered_charge(const TranResult& result, const std::string& name,
                        double t0, double t1);

/// Energy delivered by the source over [t0, t1]: integral of (v+ - v-) times
/// minus the branch current.
double delivered_energy(const TranResult& result, const std::string& name,
                        double t0, double t1);

/// Peak of minus the branch current within [t0, t1].
double peak_delivered_current(const TranResult& result, const std::string& name,
                              double t0, double t1);

/// Voltage swing of node `node` in [t0, t1]: v(t0) - min over window.
double discharge_swing(const TranResult& result, const std::string& node,
                       double t0, double t1);

}  // namespace sable::spice
