#include "dpa/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "io/serial.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Accumulator type tags: the first u32 of every serialized accumulator
// blob, so loading a blob into the wrong accumulator type fails loudly.
constexpr std::uint32_t kCpaTag = 0x53AB1001;
constexpr std::uint32_t kDomTag = 0x53AB1002;
constexpr std::uint32_t kMultiCpaTag = 0x53AB1003;

// The hoisted form of the per-trace range check: the histogram pass binned
// every sub-plaintext byte into one of the 256 slots, so one sweep over
// the slots past num_plaintexts validates the whole block.
void require_block_pts(const std::uint64_t* counts,
                       std::size_t num_plaintexts) {
  for (std::size_t p = num_plaintexts; p < detail::kBlockPts; ++p) {
    SABLE_REQUIRE(counts[p] == 0, "plaintext out of range");
  }
}

}  // namespace

// The prediction tables come from crypto/leakage.hpp — the same
// plaintext-major layout every distinguisher (including the second-order
// centered-product CPA) shares.

// ---- StreamingCpa ---------------------------------------------------------

StreamingCpa::StreamingCpa(const SboxSpec& spec, PowerModel model,
                           std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      model_(model),
      bit_(bit),
      predictions_(shared_prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      c_ht_(num_guesses_, 0.0) {}

void StreamingCpa::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  const double dt_new = t_.add(sample);
  const double inv_n = 1.0 / static_cast<double>(t_.count());
  const double* pred = predictions_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    c_ht_[g] += dh * dt_new;
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

void StreamingCpa::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

void StreamingCpa::add_block(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  if (count == 0) return;
  const BlockStatKernels& kernels = block_stat_kernels(active_tier());
  scratch_.resize(1, num_guesses_);
  // Shift by the block's first sample: the per-plaintext sums then carry
  // the ~1e-15 J data-dependent variation, not the ~1e-13 J energy
  // offset, and the co-moments are shift-invariant.
  const double shift = samples[0];
  double sum_sq = 0.0;
  kernels.histogram_scalar(pts, samples, count, shift,
                           scratch_.counts.data(), scratch_.sums.data(),
                           &sum_sq);
  require_block_pts(scratch_.counts.data(), num_plaintexts_);
  const double* pred = predictions_->data();
  kernels.contract_counts(pred, scratch_.counts.data(), num_plaintexts_,
                          num_guesses_, scratch_.sum_h.data(),
                          scratch_.sum_h2.data());
  kernels.contract_sums(pred, scratch_.sums.data(), scratch_.counts.data(),
                        num_plaintexts_, 1, num_guesses_, scratch_.r.data());
  // Convert the block's raw (shifted) sums to Welford form, in place.
  const double n = static_cast<double>(count);
  double t_sum = 0.0;
  for (std::size_t p = 0; p < num_plaintexts_; ++p) t_sum += scratch_.sums[p];
  const double mean_t = shift + t_sum / n;
  const double m2_t = std::max(0.0, sum_sq - t_sum * t_sum / n);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double mh = scratch_.sum_h[g] / n;
    scratch_.sum_h[g] = mh;
    scratch_.sum_h2[g] = std::max(0.0, scratch_.sum_h2[g] - mh * mh * n);
    // Σ (h−mh)(t−mt) = Σ h·d − mh·Σ d for any shift (Σ (h−mh) = 0).
    scratch_.r[g] -= mh * t_sum;
  }
  fold_block(count, mean_t, m2_t, scratch_.sum_h.data(),
             scratch_.sum_h2.data(), scratch_.r.data());
}

void StreamingCpa::fold_block(std::size_t count, double mean_t, double m2_t,
                              const double* block_mean_h,
                              const double* block_m2_h,
                              const double* block_c_ht) {
  const OnlineMoments block = OnlineMoments::from_parts(count, mean_t, m2_t);
  if (t_.count() == 0) {
    t_ = block;
    std::copy(block_mean_h, block_mean_h + num_guesses_, mean_h_.begin());
    std::copy(block_m2_h, block_m2_h + num_guesses_, m2_h_.begin());
    std::copy(block_c_ht, block_c_ht + num_guesses_, c_ht_.begin());
    return;
  }
  const double na = static_cast<double>(t_.count());
  const double nb = static_cast<double>(count);
  const double n = na + nb;
  const double coeff = na * nb / n;
  const double dt = mean_t - t_.mean();
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double dh = block_mean_h[g] - mean_h_[g];
    c_ht_[g] += block_c_ht[g] + dh * dt * coeff;
    m2_h_[g] += block_m2_h[g] + dh * dh * coeff;
    mean_h_[g] += dh * (nb / n);
  }
  t_.merge(block);
}

void StreamingCpa::merge(const StreamingCpa& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ &&
                    model_ == other.model_ && bit_ == other.bit_,
                "merge requires identically configured CPA accumulators");
  // Same-spec check: model/bit alone would let two different same-width
  // S-boxes merge into meaningless co-moments. Copies of one prototype
  // share the table, so the pointer comparison is the common fast path.
  SABLE_REQUIRE(predictions_ == other.predictions_ ||
                    *predictions_ == *other.predictions_,
                "merge requires accumulators over the same S-box spec");
  if (other.t_.count() == 0) return;
  fold_block(other.t_.count(), other.t_.mean(), other.t_.m2(),
             other.mean_h_.data(), other.m2_h_.data(), other.c_ht_.data());
}

AttackResult StreamingCpa::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (m2_h_[g] > 0.0 && t_.m2() > 0.0) {
      scores[g] = std::fabs(c_ht_[g] / std::sqrt(m2_h_[g] * t_.m2()));
    }
  }
  return make_attack_result(std::move(scores));
}

void StreamingCpa::save(ByteWriter& writer) const {
  writer.u32(kCpaTag);
  writer.u64(num_guesses_);
  writer.u32(static_cast<std::uint32_t>(model_));
  writer.u64(bit_);
  t_.save(writer);
  writer.f64s(mean_h_.data(), num_guesses_);
  writer.f64s(m2_h_.data(), num_guesses_);
  writer.f64s(c_ht_.data(), num_guesses_);
}

void StreamingCpa::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kCpaTag,
                "serialized state is not a CPA accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ &&
                    reader.u32() == static_cast<std::uint32_t>(model_) &&
                    reader.u64() == bit_,
                "serialized CPA state was produced by a differently "
                "configured accumulator (guess count, model or bit)");
  t_.load(reader);
  reader.f64s(mean_h_.data(), num_guesses_);
  reader.f64s(m2_h_.data(), num_guesses_);
  reader.f64s(c_ht_.data(), num_guesses_);
}

// ---- StreamingDom ---------------------------------------------------------

StreamingDom::StreamingDom(const SboxSpec& spec, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      bit_(bit) {
  const std::vector<double> pred =
      prediction_table(spec, PowerModel::kSboxOutputBit, bit);
  std::vector<std::uint8_t> bits(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    bits[i] = pred[i] > 0.5 ? 1 : 0;
  }
  predicted_bit_ =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bits));
  for (int p : {0, 1}) {
    sum_[p].assign(num_guesses_, 0.0);
    cnt_[p].assign(num_guesses_, 0);
  }
}

void StreamingDom::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const std::uint8_t* pred = predicted_bit_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const std::uint8_t p = pred[g];
    sum_[p][g] += sample;
    ++cnt_[p][g];
  }
}

void StreamingDom::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

void StreamingDom::add_block(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  if (count == 0) return;
  const BlockStatKernels& kernels = block_stat_kernels(active_tier());
  scratch_.resize(1, num_guesses_);
  // No shift: the partition state is raw sums, and DoM forms no squares,
  // so raw accumulation loses nothing.
  double sum_sq = 0.0;
  kernels.histogram_scalar(pts, samples, count, 0.0, scratch_.counts.data(),
                           scratch_.sums.data(), &sum_sq);
  require_block_pts(scratch_.counts.data(), num_plaintexts_);
  double* sum0 = scratch_.sum_h.data();
  double* sum1 = scratch_.sum_h2.data();
  kernels.contract_dom(predicted_bit_->data(), scratch_.counts.data(),
                       scratch_.sums.data(), num_plaintexts_, num_guesses_,
                       sum0, sum1, scratch_.cnt0.data(),
                       scratch_.cnt1.data());
  n_ += count;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    sum_[0][g] += sum0[g];
    sum_[1][g] += sum1[g];
    cnt_[0][g] += scratch_.cnt0[g];
    cnt_[1][g] += scratch_.cnt1[g];
  }
}

void StreamingDom::merge(const StreamingDom& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ && bit_ == other.bit_,
                "merge requires identically configured DoM accumulators");
  SABLE_REQUIRE(predicted_bit_ == other.predicted_bit_ ||
                    *predicted_bit_ == *other.predicted_bit_,
                "merge requires accumulators over the same S-box spec");
  n_ += other.n_;
  for (int p : {0, 1}) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      sum_[p][g] += other.sum_[p][g];
      cnt_[p][g] += other.cnt_[p][g];
    }
  }
}

AttackResult StreamingDom::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (cnt_[0][g] == 0 || cnt_[1][g] == 0) continue;
    scores[g] = std::fabs(sum_[1][g] / static_cast<double>(cnt_[1][g]) -
                          sum_[0][g] / static_cast<double>(cnt_[0][g]));
  }
  return make_attack_result(std::move(scores));
}

void StreamingDom::save(ByteWriter& writer) const {
  writer.u32(kDomTag);
  writer.u64(num_guesses_);
  writer.u64(bit_);
  writer.u64(n_);
  for (int p : {0, 1}) {
    writer.f64s(sum_[p].data(), num_guesses_);
    for (std::size_t g = 0; g < num_guesses_; ++g) writer.u64(cnt_[p][g]);
  }
}

void StreamingDom::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kDomTag,
                "serialized state is not a DoM accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ && reader.u64() == bit_,
                "serialized DoM state was produced by a differently "
                "configured accumulator (guess count or bit)");
  n_ = reader.u64();
  for (int p : {0, 1}) {
    reader.f64s(sum_[p].data(), num_guesses_);
    for (std::size_t g = 0; g < num_guesses_; ++g) cnt_[p][g] = reader.u64();
  }
}

// ---- StreamingMultiCpa ----------------------------------------------------

StreamingMultiCpa::StreamingMultiCpa(const SboxSpec& spec, PowerModel model,
                                     std::size_t width, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      width_(width),
      model_(model),
      bit_(bit),
      predictions_(shared_prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      t_(width),
      c_ht_(width * num_guesses_, 0.0),
      dt_(width, 0.0) {
  SABLE_REQUIRE(width > 0, "multisample CPA requires at least one column");
}

void StreamingMultiCpa::add(std::uint8_t pt, const double* row) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t s = 0; s < width_; ++s) {
    dt_[s] = t_[s].add(row[s]);
  }
  const double* pred = predictions_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    double* c = c_ht_.data() + g;
    for (std::size_t s = 0; s < width_; ++s) {
      c[s * num_guesses_] += dh * dt_[s];
    }
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

void StreamingMultiCpa::add_block(const std::uint8_t* pts, const double* rows,
                                  std::size_t count) {
  if (count == 0) return;
  const BlockStatKernels& kernels = block_stat_kernels(active_tier());
  scratch_.resize(width_, num_guesses_);
  // Per-column shifts from the block's first row (see the scalar path).
  for (std::size_t l = 0; l < width_; ++l) scratch_.shifts[l] = rows[l];
  kernels.histogram_sampled(pts, rows, count, width_, scratch_.shifts.data(),
                            scratch_.counts.data(), scratch_.sums.data(),
                            scratch_.sum_sq.data());
  require_block_pts(scratch_.counts.data(), num_plaintexts_);
  const double* pred = predictions_->data();
  kernels.contract_counts(pred, scratch_.counts.data(), num_plaintexts_,
                          num_guesses_, scratch_.sum_h.data(),
                          scratch_.sum_h2.data());
  kernels.contract_sums(pred, scratch_.sums.data(), scratch_.counts.data(),
                        num_plaintexts_, width_, num_guesses_,
                        scratch_.r.data());
  // Convert to Welford form: per-column totals and moments, then the
  // shared prediction moments, then the per-column co-moments in place.
  const double n = static_cast<double>(count);
  for (std::size_t l = 0; l < width_; ++l) {
    double t_sum = 0.0;
    for (std::size_t p = 0; p < num_plaintexts_; ++p) {
      t_sum += scratch_.sums[p * width_ + l];
    }
    scratch_.col_sum[l] = t_sum;
    scratch_.col_mean[l] = scratch_.shifts[l] + t_sum / n;
    scratch_.col_m2[l] =
        std::max(0.0, scratch_.sum_sq[l] - t_sum * t_sum / n);
  }
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double mh = scratch_.sum_h[g] / n;
    scratch_.sum_h[g] = mh;
    scratch_.sum_h2[g] = std::max(0.0, scratch_.sum_h2[g] - mh * mh * n);
  }
  for (std::size_t l = 0; l < width_; ++l) {
    double* rl = scratch_.r.data() + l * num_guesses_;
    const double t_sum = scratch_.col_sum[l];
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      rl[g] -= scratch_.sum_h[g] * t_sum;
    }
  }
  fold_block(count, scratch_.col_mean.data(), scratch_.col_m2.data(),
             scratch_.sum_h.data(), scratch_.sum_h2.data(),
             scratch_.r.data());
}

void StreamingMultiCpa::fold_block(std::size_t count, const double* mean_t,
                                   const double* m2_t,
                                   const double* block_mean_h,
                                   const double* block_m2_h,
                                   const double* block_c_ht) {
  if (n_ == 0) {
    n_ = count;
    std::copy(block_mean_h, block_mean_h + num_guesses_, mean_h_.begin());
    std::copy(block_m2_h, block_m2_h + num_guesses_, m2_h_.begin());
    std::copy(block_c_ht, block_c_ht + width_ * num_guesses_, c_ht_.begin());
    for (std::size_t s = 0; s < width_; ++s) {
      t_[s] = OnlineMoments::from_parts(count, mean_t[s], m2_t[s]);
    }
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(count);
  const double n = na + nb;
  const double coeff = na * nb / n;
  // Column co-moments first: they need both sides' pre-merge means.
  for (std::size_t s = 0; s < width_; ++s) {
    const double dt = mean_t[s] - t_[s].mean();
    double* c = c_ht_.data() + s * num_guesses_;
    const double* oc = block_c_ht + s * num_guesses_;
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      c[g] += oc[g] + (block_mean_h[g] - mean_h_[g]) * dt * coeff;
    }
  }
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double dh = block_mean_h[g] - mean_h_[g];
    m2_h_[g] += block_m2_h[g] + dh * dh * coeff;
    mean_h_[g] += dh * (nb / n);
  }
  for (std::size_t s = 0; s < width_; ++s) {
    t_[s].merge(OnlineMoments::from_parts(count, mean_t[s], m2_t[s]));
  }
  n_ += count;
}

void StreamingMultiCpa::merge(const StreamingMultiCpa& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ &&
                    width_ == other.width_ && model_ == other.model_ &&
                    bit_ == other.bit_,
                "merge requires identically configured multi-CPA accumulators");
  SABLE_REQUIRE(predictions_ == other.predictions_ ||
                    *predictions_ == *other.predictions_,
                "merge requires accumulators over the same S-box spec");
  if (other.n_ == 0) return;
  scratch_.resize(width_, num_guesses_);
  for (std::size_t s = 0; s < width_; ++s) {
    scratch_.col_mean[s] = other.t_[s].mean();
    scratch_.col_m2[s] = other.t_[s].m2();
  }
  fold_block(other.n_, scratch_.col_mean.data(), scratch_.col_m2.data(),
             other.mean_h_.data(), other.m2_h_.data(), other.c_ht_.data());
}

void StreamingMultiCpa::save(ByteWriter& writer) const {
  writer.u32(kMultiCpaTag);
  writer.u64(num_guesses_);
  writer.u32(static_cast<std::uint32_t>(model_));
  writer.u64(bit_);
  writer.u64(width_);
  writer.u64(n_);
  writer.f64s(mean_h_.data(), num_guesses_);
  writer.f64s(m2_h_.data(), num_guesses_);
  for (const OnlineMoments& column : t_) column.save(writer);
  writer.f64s(c_ht_.data(), width_ * num_guesses_);
}

void StreamingMultiCpa::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kMultiCpaTag,
                "serialized state is not a multisample CPA accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ &&
                    reader.u32() == static_cast<std::uint32_t>(model_) &&
                    reader.u64() == bit_ && reader.u64() == width_,
                "serialized multisample CPA state was produced by a "
                "differently configured accumulator (guess count, model, "
                "bit or width)");
  n_ = reader.u64();
  reader.f64s(mean_h_.data(), num_guesses_);
  reader.f64s(m2_h_.data(), num_guesses_);
  for (OnlineMoments& column : t_) column.load(reader);
  reader.f64s(c_ht_.data(), width_ * num_guesses_);
}

MultiAttackResult StreamingMultiCpa::result() const {
  MultiAttackResult result;
  std::vector<double> combined(num_guesses_, 0.0);
  double global_best = -1.0;
  for (std::size_t s = 0; s < width_; ++s) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      double score = 0.0;
      if (m2_h_[g] > 0.0 && t_[s].m2() > 0.0) {
        score = std::fabs(c_ht_[s * num_guesses_ + g] /
                          std::sqrt(m2_h_[g] * t_[s].m2()));
      }
      combined[g] = std::max(combined[g], score);
      if (score > global_best) {
        global_best = score;
        result.best_sample = s;
      }
    }
  }
  result.combined = make_attack_result(std::move(combined));
  return result;
}

}  // namespace sable
