// Measurements-to-disclosure (MTD): the number of traces after which the
// attack ranks the correct key first and keeps it first — the standard
// effectiveness metric for DPA countermeasures.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dpa/attack.hpp"

namespace sable {

struct MtdResult {
  bool disclosed = false;
  /// Smallest checkpoint trace count from which the correct key stays
  /// ranked first through the final checkpoint (0 when never disclosed).
  std::size_t mtd = 0;
  /// (trace count, rank of correct key) at each evaluated checkpoint.
  std::vector<std::pair<std::size_t, std::size_t>> rank_history;
};

/// Runs `attack` on growing prefixes of the trace set at the given
/// checkpoints. `attack` maps a TraceSet prefix to an AttackResult.
MtdResult measurements_to_disclosure(
    const TraceSet& traces, std::uint8_t correct_key,
    const std::vector<std::size_t>& checkpoints,
    const std::function<AttackResult(const TraceSet&)>& attack);

/// Convenience checkpoint ladder: roughly logarithmic up to `max_traces`.
std::vector<std::size_t> default_checkpoints(std::size_t max_traces);

}  // namespace sable
