#include "engine/trace_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sable {

TraceEngine::TraceEngine(const SboxSpec& spec, LogicStyle style,
                         const Technology& tech)
    : target_(spec, style, tech) {}

void TraceEngine::stream(const CampaignOptions& options,
                         const TraceSink& sink) {
  SABLE_REQUIRE(options.block_size > 0, "block size must be positive");
  constexpr std::size_t kLanes = SablGateSimBatch::kLanes;
  const std::size_t block =
      std::max<std::size_t>(kLanes, options.block_size / kLanes * kLanes);
  const std::uint64_t pt_range = std::uint64_t{1} << spec().in_bits;

  // Campaigns are self-contained: simulator state (CMOS transition
  // history, SABL node charge) restarts fresh so one seed reproduces one
  // trace sequence regardless of earlier campaigns on this engine.
  // Plaintexts and noise come from two independent streams derived from
  // the seed, so the sequence is also invariant to block_size (a pure
  // performance knob, as documented).
  target_.reset_state();
  Rng pt_rng(options.seed);
  Rng noise_rng(options.seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<std::uint8_t> pts(block);
  std::vector<double> samples(block);
  std::size_t remaining = options.num_traces;
  while (remaining > 0) {
    const std::size_t n = std::min(block, remaining);
    for (std::size_t i = 0; i < n; ++i) {
      pts[i] = static_cast<std::uint8_t>(pt_rng.below(pt_range));
    }
    target_.trace_batch(pts.data(), n, options.key, options.noise_sigma,
                        noise_rng, samples.data());
    sink(pts.data(), samples.data(), n);
    remaining -= n;
  }
}

TraceSet TraceEngine::run(const CampaignOptions& options) {
  TraceSet traces;
  traces.reserve(options.num_traces);
  stream(options, [&](const std::uint8_t* pts, const double* samples,
                      std::size_t n) { traces.add_batch(pts, samples, n); });
  return traces;
}

AttackResult TraceEngine::cpa_campaign(const CampaignOptions& options,
                                       PowerModel model, std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "CPA requires at least two traces");
  StreamingCpa acc(spec(), model, bit);
  stream(options, [&](const std::uint8_t* pts, const double* samples,
                      std::size_t n) { acc.add_batch(pts, samples, n); });
  return acc.result();
}

AttackResult TraceEngine::dom_campaign(const CampaignOptions& options,
                                       std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "DPA requires at least two traces");
  StreamingDom acc(spec(), bit);
  stream(options, [&](const std::uint8_t* pts, const double* samples,
                      std::size_t n) { acc.add_batch(pts, samples, n); });
  return acc.result();
}

MtdResult TraceEngine::mtd_campaign(const CampaignOptions& options,
                                    PowerModel model,
                                    const std::vector<std::size_t>& checkpoints,
                                    std::size_t bit) {
  SABLE_REQUIRE(options.num_traces >= 2, "MTD requires at least two traces");
  StreamingMtd driver(StreamingCpa(spec(), model, bit), options.key,
                      checkpoints);
  stream(options, [&](const std::uint8_t* pts, const double* samples,
                      std::size_t n) { driver.add_batch(pts, samples, n); });
  return driver.result();
}

}  // namespace sable
