// WDDL — wave dynamic differential logic (the paper's ref [8] class:
// countermeasures "composed of standard logic gates").
//
// A WDDL gate is a pair of positive-monotonic standard cells: the true
// output computed by one (e.g. AND), the false output by its dual (OR) fed
// with complemented inputs. An all-zero precharge wave propagates through
// the pair, so like SABL it switches exactly one output per cycle. Its
// residual leak — and the reason the paper argues for custom gates — is
// that the two outputs of a pair are distinct standard cells with distinct
// loads: any capacitance mismatch between the true and false rails makes
// the cycle energy depend on which rail fired.
//
// The model here exposes that mismatch directly: per gate, the true and
// false rails carry capacitances c_true / c_false; a `mismatch` fraction of
// deterministic per-gate imbalance emulates unbalanced placement/routing.
// mismatch = 0 is the ideal (perfectly balanced back-end) WDDL.
//
// WddlCircuitSimBatchT<W> evaluates LaneTraits<W>::kLanes independent
// circuit instances bit-parallel (per-lane energies bit-identical for
// every word width); WddlCircuitSimBatch is the 64-lane instantiation and
// the scalar WddlCircuitSim its width-1 case.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/circuit_sim.hpp"
#include "util/rng.hpp"

namespace sable {

struct WddlGateModel {
  double c_true = 0.0;   ///< load on the true output rail [F]
  double c_false = 0.0;  ///< load on the false output rail [F]
};

template <typename W>
class WddlCircuitSimBatchT {
 public:
  /// `mismatch` is the relative rail imbalance (0 = balanced; 0.05 = 5%
  /// per-gate random imbalance, deterministic via `seed`).
  WddlCircuitSimBatchT(const GateCircuit& circuit, const Technology& tech,
                       double mismatch, std::uint64_t seed = 0x3DD1);

  /// One precharge/evaluate cycle per selected lane; energy charges exactly
  /// one rail load per gate (the rail whose value is 1 after evaluation).
  void cycle(const std::vector<W>& input_words, const W& lane_mask,
             BatchCycleResultT<W>& out);

  /// As cycle(), with the energy split per logic level: each level's row
  /// carries its gates' fired-rail loads (the constant false-rail base of
  /// that level plus the per-gate true/false deltas).
  void cycle_sampled(const std::vector<W>& input_words, const W& lane_mask,
                     SampledBatchCycleResultT<W>& out);

  /// Independent simulator with identical (already-derived) rail models.
  /// WDDL carries no cross-cycle lane state, but the evaluator scratch is
  /// per-instance, so concurrent workers each need their own clone. Shares
  /// only the referenced circuit (which must outlive the clone).
  WddlCircuitSimBatchT clone_fresh() const { return *this; }

  /// Samples per cycle_sampled() row: the circuit's logic depth.
  std::size_t num_levels() const { return num_levels_; }

  const std::vector<WddlGateModel>& gate_models() const { return models_; }

 private:
  const GateCircuit& circuit_;
  BatchGateEvaluatorT<W> eval_;
  double vdd_;
  std::vector<WddlGateModel> models_;
  double base_energy_ = 0.0;          // sum of false-rail energies
  std::vector<double> rail_delta_;    // per gate: true minus false rail
  std::vector<std::size_t> levels_;
  std::size_t num_levels_ = 0;
  std::vector<double> base_level_;    // per level: its false-rail sum
};

using WddlCircuitSimBatch = WddlCircuitSimBatchT<std::uint64_t>;

class WddlCircuitSim {
 public:
  WddlCircuitSim(const GateCircuit& circuit, const Technology& tech,
                 double mismatch, std::uint64_t seed = 0x3DD1);

  /// One precharge/evaluate cycle; energy charges exactly one rail load
  /// per gate (the rail whose value is 1 after evaluation).
  CycleResult cycle(std::uint64_t input_bits);

  const std::vector<WddlGateModel>& gate_models() const {
    return batch_.gate_models();
  }

 private:
  WddlCircuitSimBatch batch_;  // lane 0 carries this instance
  std::vector<std::uint64_t> words_;
  BatchCycleResult scratch_;
};

}  // namespace sable
