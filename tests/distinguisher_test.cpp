// The distinguisher pipeline's contract:
//
//  * every wrapped campaign (cpa/dom/mtd/multi_cpa) is BIT-IDENTICAL to
//    the pre-pipeline formulation — per-shard streaming accumulators over
//    the streamed campaign, reduced by the fixed-shape merge tree (or
//    ShardedMtd's ordered fold) — which is exactly the reference
//    reconstructed by hand here;
//  * the second-order centered-product CPA matches the retained-trace
//    reference (full-campaign means, centered products, Pearson) to
//    1e-12;
//  * one-pass multi-selector campaigns match N independent re-simulated
//    campaigns bit for bit;
//  * mixing data kinds in one run_distinguishers call changes nothing;
//  * campaign_shard_size clamps small block sizes to one 64-lane word.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "dpa/distinguisher.hpp"
#include "dpa/second_order.hpp"
#include "engine/trace_engine.hpp"
#include "util/cpu_dispatch.hpp"
#include "power/stats.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

// Multi-shard, ragged tail: 2000 traces over 448-trace shards = 5 shards.
CampaignOptions reference_options(const RoundSpec& round) {
  CampaignOptions options;
  options.num_traces = 2000;
  std::vector<std::size_t> subkeys(round.num_sboxes());
  for (std::size_t i = 0; i < subkeys.size(); ++i) {
    subkeys[i] = (0x9 + 5 * i) & 0xF;
  }
  options.key = round.pack_subkeys(subkeys);
  options.noise_sigma = 2e-16;
  options.seed = 0xD157;
  options.shard_size = 448;
  return options;
}

// Streams the campaign and hands each shard's block (the sink is invoked
// exactly once per shard) to `consume(shard_index, sub_pts, samples,
// count)` with the attacked instance's sub-plaintexts extracted — the
// manual form of the pre-pipeline attack campaigns.
template <typename Consume>
void for_each_shard(TraceEngine& engine, const CampaignOptions& options,
                    std::size_t sbox_index, bool sampled, Consume&& consume) {
  const RoundSpec& round = engine.round();
  std::vector<std::uint8_t> sub_pts(campaign_shard_size(options));
  std::size_t shard = 0;
  const auto sink = [&](const std::uint8_t* pts, const double* samples,
                        std::size_t n) {
    round.sub_words(pts, n, sbox_index, sub_pts.data());
    consume(shard++, sub_pts.data(), samples, n);
  };
  if (sampled) {
    engine.stream_sampled(options, sink);
  } else {
    engine.stream(options, sink);
  }
}

void expect_same_result(const AttackResult& a, const AttackResult& b) {
  ASSERT_EQ(a.score.size(), b.score.size());
  for (std::size_t g = 0; g < b.score.size(); ++g) {
    // EXPECT_EQ on doubles is exact equality: bit-identical, not close.
    EXPECT_EQ(a.score[g], b.score[g]) << "guess " << g;
  }
  EXPECT_EQ(a.best_guess, b.best_guess);
  EXPECT_EQ(a.margin, b.margin);
}

// ---- wrapped campaigns vs the pre-pipeline formulation --------------------

TEST(DistinguisherPipelineTest, CpaCampaignBitIdenticalToManualShards) {
  const RoundSpec round = present_round(2, LogicStyle::kSablGenuine);
  const CampaignOptions options = reference_options(round);
  const AttackSelector selector{.sbox_index = 1,
                                .model = PowerModel::kHammingWeight};
  TraceEngine engine(round, kTech);
  std::vector<StreamingCpa> shards;
  for_each_shard(engine, options, selector.sbox_index, /*sampled=*/false,
                 [&](std::size_t, const std::uint8_t* pts,
                     const double* samples, std::size_t n) {
                   shards.emplace_back(round.sboxes[selector.sbox_index],
                                       selector.model, selector.bit);
                   // One add_block per shard: the block-factored feed the
                   // pipeline's shard accumulators use.
                   shards.back().add_block(pts, samples, n);
                 });
  ASSERT_EQ(shards.size(), 5u);
  const AttackResult reference = merge_shard_tree(std::move(shards)).result();
  expect_same_result(engine.cpa_campaign(options, selector), reference);
}

TEST(DistinguisherPipelineTest, DomCampaignBitIdenticalToManualShards) {
  const RoundSpec round = present_round(2, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  const AttackSelector selector{.sbox_index = 0, .bit = 2};
  TraceEngine engine(round, kTech);
  std::vector<StreamingDom> shards;
  for_each_shard(engine, options, selector.sbox_index, /*sampled=*/false,
                 [&](std::size_t, const std::uint8_t* pts,
                     const double* samples, std::size_t n) {
                   shards.emplace_back(round.sboxes[selector.sbox_index],
                                       selector.bit);
                   shards.back().add_block(pts, samples, n);
                 });
  const AttackResult reference = merge_shard_tree(std::move(shards)).result();
  expect_same_result(engine.dom_campaign(options, selector), reference);
}

TEST(DistinguisherPipelineTest, MtdCampaignBitIdenticalToManualShards) {
  const RoundSpec round = present_round(1, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  const std::vector<std::size_t> checkpoints =
      default_checkpoints(options.num_traces);
  std::vector<std::size_t> ladder = checkpoints;
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  ladder.erase(std::remove_if(ladder.begin(), ladder.end(),
                              [&](std::size_t c) {
                                return c < 2 || c > options.num_traces;
                              }),
               ladder.end());

  TraceEngine engine(round, kTech);
  const std::size_t subkey = round.sub_word(options.key.data(), 0);
  ShardedMtd driver(subkey);
  for_each_shard(
      engine, options, 0, /*sampled=*/false,
      [&](std::size_t shard, const std::uint8_t* pts, const double* samples,
          std::size_t n) {
        const std::size_t start = shard * campaign_shard_size(options);
        StreamingCpa acc(round.sboxes[0], selector.model, selector.bit);
        std::size_t done = 0;
        for (auto it = std::upper_bound(ladder.begin(), ladder.end(), start);
             it != ladder.end() && *it <= start + n; ++it) {
          acc.add_batch(pts + done, samples + done, *it - start - done);
          done = *it - start;
          driver.checkpoint(*it, acc);
        }
        acc.add_batch(pts + done, samples + done, n - done);
        driver.append(acc);
      });
  const MtdResult reference = driver.result();
  const MtdResult result = engine.mtd_campaign(options, selector, checkpoints);
  EXPECT_EQ(result.disclosed, reference.disclosed);
  EXPECT_EQ(result.mtd, reference.mtd);
  ASSERT_EQ(result.rank_history.size(), reference.rank_history.size());
  for (std::size_t i = 0; i < reference.rank_history.size(); ++i) {
    EXPECT_EQ(result.rank_history[i], reference.rank_history[i]) << i;
  }
  EXPECT_TRUE(reference.disclosed);
}

TEST(DistinguisherPipelineTest, MultiCpaCampaignBitIdenticalToManualShards) {
  const RoundSpec round = present_round(1, LogicStyle::kSablGenuine);
  const CampaignOptions options = reference_options(round);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  TraceEngine engine(round, kTech);
  const std::size_t width = engine.target().num_levels();
  std::vector<StreamingMultiCpa> shards;
  for_each_shard(engine, options, 0, /*sampled=*/true,
                 [&](std::size_t, const std::uint8_t* pts, const double* rows,
                     std::size_t n) {
                   shards.emplace_back(round.sboxes[0], selector.model, width,
                                       selector.bit);
                   shards.back().add_block(pts, rows, n);
                 });
  const MultiAttackResult reference =
      merge_shard_tree(std::move(shards)).result();
  const MultiAttackResult result =
      engine.multi_cpa_campaign(options, selector);
  expect_same_result(result.combined, reference.combined);
  EXPECT_EQ(result.best_sample, reference.best_sample);
}

// ---- second-order CPA vs the retained-trace reference ---------------------

// Retained-trace second-order reference: full-campaign column means,
// centered product per level pair, Pearson against the predicted leakage
// — the textbook two-pass formulation the streaming accumulator must
// reproduce.
SecondOrderAttackResult retained_second_order(const SboxSpec& spec,
                                              PowerModel model,
                                              const MultiTraceSet& traces) {
  const std::size_t L = traces.width;
  const std::size_t n = traces.size();
  const std::size_t guesses = std::size_t{1} << spec.in_bits;
  std::vector<double> mu(L, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t i = 0; i < L; ++i) mu[i] += traces.at(t, i);
  }
  for (double& m : mu) m /= static_cast<double>(n);

  std::vector<std::vector<double>> hyp(guesses, std::vector<double>(n));
  for (std::size_t g = 0; g < guesses; ++g) {
    for (std::size_t t = 0; t < n; ++t) {
      hyp[g][t] = predict_leakage(spec, model, traces.plaintexts[t],
                                  static_cast<std::uint8_t>(g), 0);
    }
  }

  SecondOrderAttackResult result;
  std::vector<double> combined(guesses, 0.0);
  double global_best = -1.0;
  std::vector<double> product(n);
  for (std::size_t i = 0; i < L; ++i) {
    for (std::size_t j = i + 1; j < L; ++j) {
      for (std::size_t t = 0; t < n; ++t) {
        product[t] = (traces.at(t, i) - mu[i]) * (traces.at(t, j) - mu[j]);
      }
      for (std::size_t g = 0; g < guesses; ++g) {
        const double score = std::fabs(pearson(product, hyp[g]));
        combined[g] = std::max(combined[g], score);
        if (score > global_best) {
          global_best = score;
          result.best_pair_first = i;
          result.best_pair_second = j;
        }
      }
    }
  }
  result.combined = make_attack_result(std::move(combined));
  return result;
}

TEST(SecondOrderCpaTest, MatchesRetainedTraceReference) {
  const RoundSpec round = present_round(1, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  const AttackSelector selector{.model = PowerModel::kHammingWeight};
  TraceEngine engine(round, kTech);
  ASSERT_GE(engine.target().num_levels(), 2u);

  MultiTraceSet retained;
  retained.reserve(options.num_traces, engine.target().num_levels());
  engine.stream_sampled(options, [&](const std::uint8_t* pts,
                                     const double* rows, std::size_t n) {
    const std::size_t width = engine.target().num_levels();
    for (std::size_t t = 0; t < n; ++t) {
      retained.add(pts[t], rows + t * width, width);
    }
  });
  const SecondOrderAttackResult reference = retained_second_order(
      round.sboxes[0], selector.model, retained);
  const SecondOrderAttackResult result =
      engine.second_order_cpa_campaign(options, selector);

  ASSERT_EQ(result.combined.score.size(), reference.combined.score.size());
  for (std::size_t g = 0; g < reference.combined.score.size(); ++g) {
    EXPECT_NEAR(result.combined.score[g], reference.combined.score[g], 1e-12)
        << "guess " << g;
  }
  EXPECT_EQ(result.combined.best_guess, reference.combined.best_guess);
  EXPECT_EQ(result.best_pair_first, reference.best_pair_first);
  EXPECT_EQ(result.best_pair_second, reference.best_pair_second);
  const std::size_t subkey = round.sub_word(options.key.data(), 0);
  EXPECT_EQ(result.combined.rank_of(subkey),
            reference.combined.rank_of(subkey));
}

TEST(SecondOrderCpaTest, MergeMatchesSequentialAccumulation) {
  const SboxSpec spec = present_spec();
  const std::size_t width = 5;
  const std::size_t count = 3000;
  Rng rng(0x5EC0);
  std::vector<std::uint8_t> pts(count);
  std::vector<double> rows(count * width);
  for (std::size_t t = 0; t < count; ++t) {
    pts[t] = static_cast<std::uint8_t>(rng.below(16));
    for (std::size_t i = 0; i < width; ++i) {
      // Trace-scale magnitudes with data dependence, so the centered
      // products live in the cancellation regime the merge must survive.
      rows[t * width + i] =
          1e-13 + 1e-15 * rng.gaussian() +
          2e-16 * static_cast<double>((pts[t] >> (i % 4)) & 1u);
    }
  }
  StreamingSecondOrderCpa sequential(spec, PowerModel::kHammingWeight);
  sequential.add_block(pts.data(), rows.data(), count, width);

  StreamingSecondOrderCpa merged(spec, PowerModel::kHammingWeight);
  const std::size_t bounds[] = {0, 311, 312, 1024, 3000};
  for (std::size_t p = 0; p + 1 < std::size(bounds); ++p) {
    StreamingSecondOrderCpa part(spec, PowerModel::kHammingWeight);
    part.add_block(pts.data() + bounds[p], rows.data() + bounds[p] * width,
                   bounds[p + 1] - bounds[p], width);
    merged.merge(part);
  }
  EXPECT_EQ(merged.count(), sequential.count());
  const SecondOrderAttackResult a = merged.result();
  const SecondOrderAttackResult b = sequential.result();
  ASSERT_EQ(a.combined.score.size(), b.combined.score.size());
  for (std::size_t g = 0; g < b.combined.score.size(); ++g) {
    EXPECT_NEAR(a.combined.score[g], b.combined.score[g], 1e-12) << g;
  }
  EXPECT_EQ(a.best_pair_first, b.best_pair_first);
  EXPECT_EQ(a.best_pair_second, b.best_pair_second);
}

// ---- one-pass multi-selector campaigns ------------------------------------

TEST(DistinguisherPipelineTest, OnePassAllSubkeysMatchesIndependentCampaigns) {
  const RoundSpec round = present_round(4, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  TraceEngine engine(round, kTech);
  const std::vector<AttackResult> one_pass =
      engine.cpa_campaign_all_subkeys(options, PowerModel::kHammingWeight);
  ASSERT_EQ(one_pass.size(), round.num_sboxes());
  for (std::size_t i = 0; i < round.num_sboxes(); ++i) {
    const AttackResult independent = engine.cpa_campaign(
        options,
        AttackSelector{.sbox_index = i, .model = PowerModel::kHammingWeight});
    expect_same_result(one_pass[i], independent);
    // Every subkey must actually be recovered from the single campaign —
    // static CMOS leaks, and each instance's neighbours are only noise.
    EXPECT_EQ(one_pass[i].best_guess, round.sub_word(options.key.data(), i))
        << "sbox " << i;
  }
}

TEST(DistinguisherPipelineTest, MixedKindsShareOneCampaignUnchanged) {
  const RoundSpec round = present_round(2, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  TraceEngine engine(round, kTech);
  const AttackSelector cpa_sel{.sbox_index = 0,
                               .model = PowerModel::kHammingWeight};
  const AttackSelector dom_sel{.sbox_index = 1, .bit = 1};

  CpaDistinguisher cpa(round.sboxes[0], cpa_sel);
  DomDistinguisher dom(round.sboxes[1], dom_sel);
  SecondOrderCpaDistinguisher second(round.sboxes[0], cpa_sel);
  std::vector<Distinguisher*> all = {&cpa, &dom, &second};
  engine.run_distinguishers(options, all);

  expect_same_result(cpa.result(), engine.cpa_campaign(options, cpa_sel));
  expect_same_result(dom.result(), engine.dom_campaign(options, dom_sel));
  const SecondOrderAttackResult solo =
      engine.second_order_cpa_campaign(options, cpa_sel);
  expect_same_result(second.result().combined, solo.combined);
  EXPECT_EQ(second.result().best_pair_first, solo.best_pair_first);
  EXPECT_EQ(second.result().best_pair_second, solo.best_pair_second);
}

// ---- validation and shard-size clamping -----------------------------------

TEST(DistinguisherPipelineTest, ValidatesSpecAgainstRound) {
  const RoundSpec round = present_round(1, LogicStyle::kStaticCmos);
  const CampaignOptions options = reference_options(round);
  TraceEngine engine(round, kTech);
  // Wrong spec for the attacked instance: built for AES, run on PRESENT.
  CpaDistinguisher mismatched(
      aes_spec(), AttackSelector{.model = PowerModel::kHammingWeight});
  Distinguisher* const list[] = {&mismatched};
  EXPECT_THROW(
      engine.run_distinguishers(options, list),
      InvalidArgument);
  // Results are only valid after a campaign finalized the distinguisher.
  CpaDistinguisher fresh(present_spec(),
                         AttackSelector{.model = PowerModel::kHammingWeight});
  EXPECT_THROW(fresh.result(), InvalidArgument);
}

TEST(CampaignShardSizeTest, ClampsSmallBlocksToOneLaneWord) {
  CampaignOptions options;
  for (std::size_t block : {std::size_t{1}, std::size_t{63}}) {
    options.shard_size = block;
    EXPECT_EQ(campaign_shard_size(options), 64u) << block;
  }
  options.shard_size = 64;
  EXPECT_EQ(campaign_shard_size(options), 64u);
  options.shard_size = 100;  // rounds down to whole 64-lane words
  EXPECT_EQ(campaign_shard_size(options), 64u);
  options.shard_size = 130;
  EXPECT_EQ(campaign_shard_size(options), 128u);
}

// shard_size = 0 derives the shard size from num_traces and fixed
// constants alone: clamp(num_traces / 256 rounded to a whole 64-lane
// word, 1024, 65536). The autotuned size must never depend on the thread
// count or lane width — it is part of the stream definition.
TEST(CampaignShardSizeTest, AutotunesFromTraceCountAlone) {
  CampaignOptions options;
  options.shard_size = 0;
  // Small campaigns stay single-shard (min clamp).
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{256},
                        std::size_t{1024}, std::size_t{200000}}) {
    options.num_traces = n;
    EXPECT_EQ(campaign_shard_size(options), 1024u) << n;
  }
  // Mid-range aims for ~256 shards, rounded to whole 64-lane words.
  options.num_traces = 1u << 20;  // 1Mi / 256 = 4096
  EXPECT_EQ(campaign_shard_size(options), 4096u);
  options.num_traces = 300000;  // 1171.875 -> 1171 -> round to 1152
  EXPECT_EQ(campaign_shard_size(options), 1152u);
  // Huge campaigns cap the shard (max clamp).
  options.num_traces = 1u << 27;
  EXPECT_EQ(campaign_shard_size(options), 65536u);
  // The knobs that must NOT matter.
  options.num_traces = 1u << 20;
  for (std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
    options.num_threads = threads;
    EXPECT_EQ(campaign_shard_size(options), 4096u);
  }
  for (std::size_t width : {std::size_t{64}, std::size_t{128}}) {
    options.lane_width = width;
    EXPECT_EQ(campaign_shard_size(options), 4096u);
  }
}

// A shard_size below the lane word must still run — and, because the
// clamp lands on the same 64-trace granule for every width, produce the
// exact stream shard_size = 64 produces, at every compiled-in width.
TEST(CampaignShardSizeTest, SubLaneWordBlockSizeRunsAndMatchesClamp) {
  const RoundSpec round = present_round(1, LogicStyle::kSablEnhanced);
  TraceEngine engine(round, kTech);
  CampaignOptions options;
  options.num_traces = 200;
  options.key = {0x6};
  options.seed = 0xC1A4;
  options.shard_size = 64;
  const TraceSet reference = engine.run(options);
  for (std::size_t width : runtime_lane_widths()) {
    options.lane_width = width;
    options.shard_size = 3;  // smaller than every lane width
    const TraceSet traces = engine.run(options);
    ASSERT_EQ(traces.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ASSERT_EQ(traces.samples[i], reference.samples[i])
          << "width " << width << " trace " << i;
    }
  }
}

}  // namespace
}  // namespace sable
