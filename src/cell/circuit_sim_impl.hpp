// Definitions of the gate-circuit batch kernel templates declared in
// cell/circuit_sim.hpp. Included by exactly the TUs that instantiate
// them: cell/circuit_sim.cpp for the portable lane words and the per-ISA
// TUs under src/simd/ (inside their #pragma GCC target regions) for
// Word256/Word512.
#pragma once

#include <algorithm>
#include <bit>
#include <cstring>

#include "cell/circuit_sim.hpp"
#include "expr/truth_table.hpp"
#include "util/error.hpp"

namespace sable {

template <typename W>
BatchGateEvaluatorT<W>::BatchGateEvaluatorT(const GateCircuit& circuit)
    : circuit_(circuit) {
  minterms_.resize(circuit.gates().size());
  gate_inputs_.resize(circuit.gates().size());
  values_.assign(circuit.gates().size(), LaneTraits<W>::zero());
  primary_.assign(circuit.num_primary_inputs(), LaneTraits<W>::zero());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const GateInstance& inst = circuit.gates()[g];
    const Cell& cell = circuit.cells()[inst.cell_index];
    gate_inputs_[g].assign(inst.inputs.size(), LaneTraits<W>::zero());
    const std::size_t rows = std::size_t{1} << cell.num_inputs;
    for (std::size_t m = 0; m < rows; ++m) {
      // Qualified: the member evaluate() shadows the truth-table helper.
      if (sable::evaluate(cell.function, m)) {
        minterms_[g].push_back(static_cast<std::uint8_t>(m));
      }
    }
  }
}

template <typename W>
void BatchGateEvaluatorT<W>::evaluate(const std::vector<W>& input_words) {
  SABLE_ASSERT(input_words.size() >= circuit_.num_primary_inputs(),
               "one lane word per primary input required");
  for (std::size_t i = 0; i < primary_.size(); ++i) {
    primary_[i] = input_words[i];
  }
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    const GateInstance& inst = circuit_.gates()[g];
    std::vector<W>& in = gate_inputs_[g];
    for (std::size_t k = 0; k < inst.inputs.size(); ++k) {
      const SignalRef& ref = inst.inputs[k];
      const W& raw = ref.kind == SignalRef::Kind::kInput ? primary_[ref.index]
                                                         : values_[ref.index];
      in[k] = ref.positive ? raw : ~raw;
    }
    // Sum of minterms over lane words: a lane is 1 iff its cell-input
    // assignment is one of the function's satisfying rows.
    W value = LaneTraits<W>::zero();
    for (const std::uint8_t m : minterms_[g]) {
      W term = LaneTraits<W>::ones();
      for (std::size_t k = 0; k < in.size(); ++k) {
        term &= ((m >> k) & 1u) != 0 ? in[k] : ~in[k];
      }
      value |= term;
    }
    values_[g] = value;
  }
}

template <typename W>
W BatchGateEvaluatorT<W>::output_word(std::size_t i) const {
  const SignalRef& ref = circuit_.outputs()[i];
  const W& raw = ref.kind == SignalRef::Kind::kInput ? primary_[ref.index]
                                                     : values_[ref.index];
  return ref.positive ? raw : ~raw;
}

template <typename W>
std::uint64_t outputs_for_lane(const std::vector<W>& output_words,
                               std::size_t lane) {
  std::uint64_t chunks[LaneTraits<W>::kChunks];
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < output_words.size(); ++i) {
    lane_chunks(output_words[i], chunks);
    if (((chunks[lane / 64] >> (lane % 64)) & 1u) != 0) {
      out |= std::uint64_t{1} << i;
    }
  }
  return out;
}

// ---- DifferentialCircuitSimBatchT -----------------------------------------

template <typename W>
DifferentialCircuitSimBatchT<W>::DifferentialCircuitSimBatchT(
    const GateCircuit& circuit)
    : circuit_(circuit), eval_(circuit) {
  gate_sims_.reserve(circuit.gates().size());
  for (const auto& inst : circuit.gates()) {
    const Cell& cell = circuit.cells()[inst.cell_index];
    gate_sims_.emplace_back(cell.network, cell.energy_model);
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
DifferentialCircuitSimBatchT<W>::DifferentialCircuitSimBatchT(
    const GateCircuit& circuit, std::vector<GateEnergyModel> models)
    : circuit_(circuit), eval_(circuit) {
  SABLE_REQUIRE(models.size() == circuit.gates().size(),
                "one energy model per gate instance required");
  gate_sims_.reserve(circuit.gates().size());
  for (std::size_t g = 0; g < circuit.gates().size(); ++g) {
    const Cell& cell = circuit.cells()[circuit.gates()[g].cell_index];
    gate_sims_.emplace_back(cell.network, std::move(models[g]));
  }
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::cycle(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            BatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  lane_fill_selected(lane_mask, 0.0, out.energy.data());
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    gate_sims_[g].cycle(eval_.gate_input_words(g), lane_mask,
                        gate_energy_.data());
    lane_accumulate_selected(lane_mask, gate_energy_.data(),
                             out.energy.data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::reset() {
  for (SablGateSimBatchT<W>& sim : gate_sims_) sim.reset(true);
}

template <typename W>
DifferentialCircuitSimBatchT<W> DifferentialCircuitSimBatchT<W>::clone_fresh()
    const {
  // Rebuilding through the per-instance-model constructor preserves any
  // custom energy models (e.g. balanced routing loads from src/balance).
  std::vector<GateEnergyModel> models;
  models.reserve(gate_sims_.size());
  for (const SablGateSimBatchT<W>& sim : gate_sims_) {
    models.push_back(sim.model());
  }
  return DifferentialCircuitSimBatchT(circuit_, std::move(models));
}

template <typename W>
void DifferentialCircuitSimBatchT<W>::cycle_sampled(
    const std::vector<W>& input_words, const W& lane_mask,
    SampledBatchCycleResultT<W>& out) {
  eval_.evaluate(input_words);
  out.level_energy.resize(num_levels_);
  for (auto& row : out.level_energy) {
    lane_fill_selected(lane_mask, 0.0, row.data());
  }
  for (std::size_t g = 0; g < gate_sims_.size(); ++g) {
    gate_sims_[g].cycle(eval_.gate_input_words(g), lane_mask,
                        gate_energy_.data());
    auto& row = out.level_energy[levels_[g] - 1];
    lane_accumulate_selected(lane_mask, gate_energy_.data(), row.data());
  }
  out.output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    out.output_words[i] = eval_.output_word(i);
  }
}

// ---- CmosCircuitSimBatchT -------------------------------------------------

template <typename W>
CmosCircuitSimBatchT<W>::CmosCircuitSimBatchT(const GateCircuit& circuit,
                                              double switch_energy)
    : circuit_(circuit), eval_(circuit), switch_energy_(switch_energy) {
  previous_values_.assign(circuit.gates().size(), 0);
  levels_ = gate_levels(circuit);
  for (std::size_t l : levels_) num_levels_ = std::max(num_levels_, l);
}

template <typename W>
void CmosCircuitSimBatchT<W>::flush_planes(const std::uint64_t* m,
                                           double* row) {
  if (row == nullptr || planes_used_ == 0) {
    planes_used_ = 0;
    return;
  }
  constexpr std::size_t kChunks = LaneTraits<W>::kChunks;
  plane_chunks_.resize(planes_used_ * kChunks);
  for (std::size_t p = 0; p < planes_used_; ++p) {
    lane_chunks(planes_[p], plane_chunks_.data() + p * kChunks);
  }
  for (std::size_t j = 0; j < kChunks; ++j) {
    if (m[j] == 0) continue;
    double* e = row + 64 * j;
    // Lanes outside the mask never entered a plane (their count is 0 and
    // their energy slot must stay untouched), so sparse chunks walk the
    // mask bits; a += of count 0 for a selected lane is bit-preserving
    // (energies are non-negative), matching the kernels' select idiom.
    if (m[j] == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) {
        std::size_t count = 0;
        for (std::size_t p = 0; p < planes_used_; ++p) {
          count |= ((plane_chunks_[p * kChunks + j] >> lane) & 1u) << p;
        }
        e[lane] += static_cast<double>(count) * switch_energy_;
      }
    } else {
      for (std::uint64_t rest = m[j]; rest != 0; rest &= rest - 1) {
        const std::size_t lane = std::countr_zero(rest);
        std::size_t count = 0;
        for (std::size_t p = 0; p < planes_used_; ++p) {
          count |= ((plane_chunks_[p * kChunks + j] >> lane) & 1u) << p;
        }
        e[lane] += static_cast<double>(count) * switch_energy_;
      }
    }
  }
  planes_used_ = 0;
}

template <typename W>
template <typename RowFn>
void CmosCircuitSimBatchT<W>::cycle_history(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            RowFn&& row_for_gate,
                                            std::vector<W>& output_words) {
  using T = LaneTraits<W>;
  constexpr std::size_t kChunks = T::kChunks;
  eval_.evaluate(input_words);
  std::uint64_t m[kChunks];
  lane_chunks(lane_mask, m);
  // History is logically 64-lane: chunk j's previous values are chunk j-1
  // of this call (the stored history for chunk 0), and only chunk 0 can
  // face never-seen lanes — later chunks' predecessors are this very call.
  std::uint64_t seen_prefix[kChunks];
  std::uint64_t seen = seen_mask_;
  std::size_t last = 0;  // last chunk with selected lanes
  for (std::size_t j = 0; j < kChunks; ++j) {
    seen_prefix[j] = seen;
    seen |= m[j];
    if (m[j] != 0) last = j;
  }
  // Every mask from lane_mask<W>() is a lane prefix: all chunks below the
  // last selected one are full. Then chunk j's predecessor chunk is
  // exactly chunk j-1 of the value word itself, so the whole chunk walk
  // collapses into one shifted word and three word-wide boolean ops per
  // gate (chunks past `last` have an empty mask, making their garbage
  // predecessors harmless). Arbitrary masks keep the sequential walk.
  bool prefix_shaped = true;
  for (std::size_t j = 0; j < last; ++j) {
    if (m[j] != ~std::uint64_t{0}) prefix_shaped = false;
  }
  const W seen_word = lane_from_chunks<W>(seen_prefix);

  double* current_row = nullptr;
  planes_used_ = 0;
  for (std::size_t g = 0; g < circuit_.gates().size(); ++g) {
    double* row = row_for_gate(g);
    if (row != current_row) {
      flush_planes(m, current_row);
      current_row = row;
    }
    const W& c = eval_.value_word(g);
    W rising;
    if (prefix_shaped) {
      // Static CMOS draws supply energy when the output rises: the lane
      // has no history yet, or its previous value was 0.
      const W prev = lane_shift_in_chunk(c, previous_values_[g]);
      rising = c & ~(prev & seen_word) & lane_mask;
      // The stored history advances to the last selected chunk's fold.
      std::uint64_t c_last;
      std::memcpy(&c_last, reinterpret_cast<const char*>(&c) + 8 * last, 8);
      std::uint64_t prev_last = previous_values_[g];
      if (last > 0) {
        std::memcpy(&prev_last,
                    reinterpret_cast<const char*>(&c) + 8 * (last - 1), 8);
      }
      previous_values_[g] = (c_last & m[last]) | (prev_last & ~m[last]);
    } else {
      std::uint64_t cc[kChunks];
      lane_chunks(c, cc);
      std::uint64_t rc[kChunks];
      std::uint64_t prev = previous_values_[g];
      for (std::size_t j = 0; j < kChunks; ++j) {
        rc[j] = cc[j] & ~(prev & seen_prefix[j]) & m[j];
        prev = (prev & ~m[j]) | (cc[j] & m[j]);
      }
      previous_values_[g] = prev;
      rising = lane_from_chunks<W>(rc);
    }
    // Carry-save vertical counters: the rising word is *counted* with a
    // handful of word ops instead of walking its set bits; the per-lane
    // counts are materialized once per row in flush_planes.
    W carry = rising;
    for (std::size_t p = 0; lane_any(carry); ++p) {
      if (p == planes_used_) {
        if (planes_used_ == planes_.size()) planes_.push_back(T::zero());
        planes_[planes_used_++] = carry;
        break;
      }
      const W overflow = planes_[p] & carry;
      planes_[p] = planes_[p] ^ carry;
      carry = overflow;
    }
  }
  flush_planes(m, current_row);
  seen_mask_ = seen;
  output_words.resize(circuit_.outputs().size());
  for (std::size_t i = 0; i < circuit_.outputs().size(); ++i) {
    output_words[i] = eval_.output_word(i);
  }
}

template <typename W>
void CmosCircuitSimBatchT<W>::cycle(const std::vector<W>& input_words,
                                    const W& lane_mask,
                                    BatchCycleResultT<W>& out) {
  lane_fill_selected(lane_mask, 0.0, out.energy.data());
  cycle_history(input_words, lane_mask,
                [&](std::size_t) { return out.energy.data(); },
                out.output_words);
}

template <typename W>
void CmosCircuitSimBatchT<W>::cycle_sampled(const std::vector<W>& input_words,
                                            const W& lane_mask,
                                            SampledBatchCycleResultT<W>& out) {
  out.level_energy.resize(num_levels_);
  for (auto& row : out.level_energy) {
    lane_fill_selected(lane_mask, 0.0, row.data());
  }
  cycle_history(
      input_words, lane_mask,
      [&](std::size_t g) { return out.level_energy[levels_[g] - 1].data(); },
      out.output_words);
}

template <typename W>
void CmosCircuitSimBatchT<W>::reset() {
  previous_values_.assign(circuit_.gates().size(), 0);
  seen_mask_ = 0;
}

template <typename W>
CmosCircuitSimBatchT<W> CmosCircuitSimBatchT<W>::clone_fresh() const {
  return CmosCircuitSimBatchT(circuit_, switch_energy_);
}

/// Instantiates the gate-circuit batch kernels for lane word W.
#define SABLE_INSTANTIATE_CIRCUIT_SIM(W)                                  \
  template class BatchGateEvaluatorT<W>;                                  \
  template class DifferentialCircuitSimBatchT<W>;                         \
  template class CmosCircuitSimBatchT<W>;                                 \
  template std::uint64_t outputs_for_lane<W>(const std::vector<W>&,       \
                                             std::size_t);

}  // namespace sable
