// The paper's §4.3 design example (Fig. 5): the OAI22 gate, transformed by
// both design methods.
//
// Method 4.1 starts from the Boolean expression (A+B).(C+D); method 4.2
// starts from the *schematic* of the genuine differential network. The two
// must produce the identical fully connected network, with the device count
// preserved (8 transistors per the paper).
#include <cstdio>

#include "core/checks.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/transformer.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "netlist/conduction.hpp"

using namespace sable;

int main() {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  std::printf("OAI22: f = %s (the OR-AND-INVERT differential pair)\n\n",
              to_string(f, vars).c_str());

  // ---- Method 4.1: from the Boolean expression --------------------------
  std::printf("Method 4.1 (from the Boolean expression):\n");
  const DpdnNetwork direct = synthesize_fc_dpdn(f, 4);
  std::printf("%s", direct.to_string(vars).c_str());

  // ---- Method 4.2: from the existing genuine DPDN ------------------------
  std::printf("\nMethod 4.2 (from the genuine schematic):\n");
  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  std::printf("genuine input network (%zu devices):\n%s\n",
              genuine.device_count(), genuine.to_string(vars).c_str());
  const TransformResult result = transform_to_fully_connected(genuine, vars);
  for (const auto& step : result.steps) {
    std::printf("  %s\n", step.c_str());
  }
  std::printf("transformed network:\n%s", result.network.to_string(vars).c_str());

  // ---- Agreement and verification ----------------------------------------
  bool identical = result.network.device_count() == direct.device_count();
  for (std::size_t i = 0; identical && i < direct.devices().size(); ++i) {
    const Switch& a = direct.devices()[i];
    const Switch& b = result.network.devices()[i];
    identical = a.gate == b.gate && a.a == b.a && a.b == b.b;
  }
  std::printf("\nboth methods produce the identical network: %s\n",
              identical ? "yes" : "NO");
  std::printf("device count preserved (8 -> 8): %s\n",
              result.device_count_preserved ? "yes" : "NO");
  std::printf("fully connected: %s\n",
              check_full_connectivity(direct).fully_connected ? "yes" : "NO");
  std::printf("functionality: %s\n",
              check_functionality(direct, f).ok ? "OK" : "FAIL");

  // The paper's resulting branch expressions.
  const TruthTable fx =
      conduction_function(direct, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  const TruthTable fy =
      conduction_function(direct, DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ);
  std::printf(
      "\npaper's unrolled forms hold semantically:\n"
      "  X-Z branch == (A.B'+B).(C.D'+D): %s\n"
      "  Y-Z branch == A'.B'.(C.D'+D) + C'.D': %s\n",
      fx == table_of(parse_expression("(A.B'+B).(C.D'+D)", vars), 4) ? "yes"
                                                                     : "NO",
      fy == table_of(parse_expression("A'.B'.(C.D'+D) + C'.D'", vars), 4)
          ? "yes"
          : "NO");
  return 0;
}
