// Tests for the BDD package and symbolic network verification, including
// cross-validation against the exhaustive checkers and a wide-gate case the
// exhaustive path would not be asked to handle.
#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/symbolic.hpp"
#include "core/checks.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "crypto/sboxes.hpp"
#include "expr/factoring.hpp"
#include "expr/parser.hpp"
#include "expr/random_expr.hpp"
#include "expr/truth_table.hpp"
#include "netlist/conduction.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

TEST(BddTest, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.apply_and(BddManager::kTrue, BddManager::kFalse),
            BddManager::kFalse);
  EXPECT_EQ(mgr.negate(BddManager::kFalse), BddManager::kTrue);
  const BddRef a = mgr.var(0);
  EXPECT_EQ(mgr.negate(mgr.negate(a)), a);  // canonicity
  EXPECT_EQ(mgr.apply_and(a, a), a);
  EXPECT_EQ(mgr.apply_or(a, mgr.negate(a)), BddManager::kTrue);
  EXPECT_EQ(mgr.apply_and(a, mgr.negate(a)), BddManager::kFalse);
}

TEST(BddTest, CanonicalEquality) {
  BddManager mgr(3);
  VarTable vars;
  // (A+B).(A+C) == A + B.C — different syntax, same BDD node.
  const BddRef lhs = mgr.from_expr(parse_expression("(A+B).(A+C)", vars));
  const BddRef rhs = mgr.from_expr(parse_expression("A + B.C", vars));
  EXPECT_EQ(lhs, rhs);
}

TEST(BddTest, FromExprMatchesTruthTable) {
  VarTable vars;
  const char* cases[] = {"A.B + C.D", "(A+B).(C+D)", "A ^ B ^ C ^ D",
                         "A.(B + C.D') + A'.B'"};
  BddManager mgr(4);
  for (const char* text : cases) {
    const ExprPtr e = parse_expression(text, vars);
    const BddRef f = mgr.from_expr(e);
    for (std::uint64_t a = 0; a < 16; ++a) {
      EXPECT_EQ(mgr.evaluate(f, a), evaluate(e, a)) << text << " @ " << a;
    }
  }
}

TEST(BddTest, SatFraction) {
  BddManager mgr(4);
  VarTable vars;
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(BddManager::kFalse), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_fraction(BddManager::kTrue), 1.0);
  EXPECT_DOUBLE_EQ(
      mgr.sat_fraction(mgr.from_expr(parse_expression("A.B", vars))), 0.25);
  EXPECT_DOUBLE_EQ(
      mgr.sat_fraction(mgr.from_expr(parse_expression("A ^ B", vars))), 0.5);
}

TEST(BddTest, AnySatReturnsWitness) {
  BddManager mgr(4);
  VarTable vars;
  const ExprPtr e = parse_expression("A.B'.C", vars);
  const BddRef f = mgr.from_expr(e);
  const std::uint64_t w = mgr.any_sat(f);
  EXPECT_TRUE(evaluate(e, w));
  EXPECT_THROW(mgr.any_sat(BddManager::kFalse), InvalidArgument);
}

TEST(SymbolicTest, ConductionMatchesUnionFind) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 4);
  BddManager mgr(4);
  const SymbolicConduction cond(mgr, net);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (NodeId u = 0; u < net.node_count(); ++u) {
      for (NodeId v = 0; v < net.node_count(); ++v) {
        EXPECT_EQ(mgr.evaluate(cond.reach(u, v), a),
                  conducts(net, a, u, v))
            << "nodes " << u << "," << v << " @ " << a;
      }
    }
  }
}

TEST(SymbolicTest, AgreesWithExhaustiveCheckers) {
  Rng rng(0x5EED);
  RandomExprOptions opt;
  opt.num_vars = 4;
  opt.num_literals = 8;
  for (int i = 0; i < 20; ++i) {
    const ExprPtr f = random_nnf(rng, opt);
    const TruthTable t = table_of(f, opt.num_vars);
    if (t.popcount() == 0 || t.popcount() == t.num_rows()) continue;
    for (const bool fc : {false, true}) {
      const DpdnNetwork net = fc ? synthesize_fc_dpdn(f, opt.num_vars)
                                 : build_genuine_dpdn(f, opt.num_vars);
      BddManager mgr(opt.num_vars);
      EXPECT_EQ(check_functionality_symbolic(mgr, net, f).ok,
                check_functionality(net, f).ok);
      EXPECT_EQ(check_full_connectivity_symbolic(mgr, net).fully_connected,
                check_full_connectivity(net).fully_connected);
    }
  }
}

TEST(SymbolicTest, CounterexampleIsAFloatingEvent) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 2);
  BddManager mgr(2);
  const SymbolicConnectivityReport report =
      check_full_connectivity_symbolic(mgr, genuine);
  ASSERT_FALSE(report.fully_connected);
  EXPECT_EQ(report.counterexample, 0b00u);  // the paper's (0,0) event
  EXPECT_EQ(report.floating_node, 3u);      // node W
}

TEST(SymbolicTest, DetectsFunctionalityBug) {
  // Build a deliberately wrong network: AND-NAND with the B switch gated
  // by B' instead of B.
  DpdnNetwork net(2);
  const NodeId w = net.add_internal_node();
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, w);
  net.add_switch(SignalLiteral{1, false}, w, DpdnNetwork::kNodeZ);  // bug
  net.add_switch(SignalLiteral{0, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);
  net.add_switch(SignalLiteral{1, false}, DpdnNetwork::kNodeY,
                 DpdnNetwork::kNodeZ);
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  BddManager mgr(2);
  const SymbolicFunctionalityReport report =
      check_functionality_symbolic(mgr, net, f);
  EXPECT_FALSE(report.ok);
  // The witness must actually demonstrate the mismatch.
  const bool fx = conducts(net, report.counterexample, DpdnNetwork::kNodeX,
                           DpdnNetwork::kNodeZ);
  EXPECT_NE(fx, evaluate(f, report.counterexample));
}

TEST(SymbolicTest, VerifiesWideAesGateBeyondExhaustiveComfort) {
  // An AES S-box output bit: 8 inputs, a large SOP. The symbolic checks
  // verify the synthesized FC network without enumerating 2^8 inputs (and
  // would scale well past the point where enumeration gives out).
  const SboxSpec spec = aes_spec();
  const TruthTable t = sbox_output_bit(spec, 0);
  const ExprPtr f = factored_form(t);
  const DpdnNetwork net = synthesize_fc_dpdn(f, spec.in_bits);
  BddManager mgr(spec.in_bits);
  EXPECT_TRUE(check_functionality_symbolic(mgr, net, f).ok);
  EXPECT_TRUE(check_full_connectivity_symbolic(mgr, net).fully_connected);
  EXPECT_GT(net.device_count(), 100u);  // genuinely wide gate
}

TEST(SymbolicTest, PassGatesAreAlwaysConducting) {
  DpdnNetwork net(2);
  const NodeId w = net.add_internal_node();
  net.add_pass_gate(0, DpdnNetwork::kNodeY, w);
  BddManager mgr(2);
  const SymbolicConduction cond(mgr, net);
  EXPECT_EQ(cond.reach(DpdnNetwork::kNodeY, w), BddManager::kTrue);
}

}  // namespace
}  // namespace sable
