// Source waveforms: DC, PULSE and PWL, mirroring the SPICE primitives the
// paper's testbench would use for clock and complementary input stimuli.
#pragma once

#include <vector>

namespace sable::spice {

enum class WaveformKind { kDc, kPulse, kPwl };

/// Time-value waveform. PULSE follows SPICE semantics (v1, v2, delay, rise,
/// fall, width, period); PWL linearly interpolates between (t, v) points and
/// holds the last value.
struct Waveform {
  WaveformKind kind = WaveformKind::kDc;

  double dc_value = 0.0;

  // PULSE parameters.
  double v1 = 0.0;
  double v2 = 0.0;
  double delay = 0.0;
  double rise = 0.0;
  double fall = 0.0;
  double width = 0.0;
  double period = 0.0;

  // PWL points, strictly increasing in time.
  std::vector<std::pair<double, double>> points;

  static Waveform dc(double value);
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period);
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// Value at time `t` (t >= 0).
  double at(double t) const;
};

}  // namespace sable::spice
