// Cycle-based simulation of gate-level circuits with per-gate energy.
//
// Two simulators share the circuit description:
//  - DifferentialCircuitSim: every gate is a dynamic differential (SABL)
//    gate simulated at switch level; per-cycle energy is the sum of gate
//    energies, and floating-node state persists across cycles (the genuine
//    variant leaks data through it).
//  - CmosCircuitSim: the industry-baseline model — static CMOS gates
//    consume C*VDD^2 on every 0->1 output transition (Hamming-distance
//    leakage); this is the reference DPA-vulnerable implementation.
//
// Each simulator exists in every lane-word width sharing one kernel: the
// *BatchT<W> templates evaluate LaneTraits<W>::kLanes independent circuit
// instances bit-parallel (lane L of every word is instance L), the
// unsuffixed *Batch aliases are the historic 64-lane instantiation, and
// the scalar classes are the width-1 case. Lane arithmetic is ordered so
// that lane L of a batch cycle is bit-identical to a width-1 run fed the
// same assignment sequence, for every word width.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cell/circuit.hpp"
#include "switchsim/cycle_sim.hpp"

namespace sable {

struct CycleResult {
  std::uint64_t outputs = 0;  // bit i = value of circuit output i
  double energy = 0.0;        // supply energy of the cycle [J]
};

/// Time-resolved variant: one energy sample per logic level (gates at the
/// same topological depth switch together), the granularity a sampling
/// oscilloscope sees in a real DPA measurement.
struct SampledCycleResult {
  std::uint64_t outputs = 0;
  std::vector<double> level_energy;
};

/// Topological level of every gate (primary inputs are level 0; a gate is
/// one past its deepest input). Returned per gate instance.
std::vector<std::size_t> gate_levels(const GateCircuit& circuit);

/// Bit-parallel functional evaluation of a gate circuit: computes the
/// kLanes-wide value word of every gate in one forward sweep.
/// `input_words[i]` lane L is primary input i of circuit instance L; gate
/// functions are applied as sum-of-minterms over the lane words.
template <typename W>
class BatchGateEvaluatorT {
 public:
  explicit BatchGateEvaluatorT(const GateCircuit& circuit);

  /// Evaluates every gate for the kLanes assignments in `input_words`.
  void evaluate(const std::vector<W>& input_words);

  /// Lane word of gate g's output value (valid after evaluate()).
  const W& value_word(std::size_t gate) const { return values_[gate]; }

  /// Lane words of gate g's cell inputs, polarity already resolved — the
  /// per-variable assignment words the switch-level gate model consumes.
  const std::vector<W>& gate_input_words(std::size_t gate) const {
    return gate_inputs_[gate];
  }

  /// Lane word of circuit output i (valid after evaluate()).
  W output_word(std::size_t i) const;

 private:
  const GateCircuit& circuit_;
  std::vector<std::vector<std::uint8_t>> minterms_;  // per gate: rows = 1
  std::vector<std::vector<W>> gate_inputs_;
  std::vector<W> values_;
  std::vector<W> primary_;
};

using BatchGateEvaluator = BatchGateEvaluatorT<std::uint64_t>;

/// Per-lane results of one batched cycle.
template <typename W>
struct BatchCycleResultT {
  /// Lane word per circuit output: lane L = output i of instance L.
  std::vector<W> output_words;
  /// Supply energy of instance L in energy[L] (selected lanes only).
  std::array<double, LaneTraits<W>::kLanes> energy;
};

using BatchCycleResult = BatchCycleResultT<std::uint64_t>;

/// Batched time-resolved results: level_energy[l][L] is the energy drawn
/// at logic level l by instance L.
template <typename W>
struct SampledBatchCycleResultT {
  std::vector<W> output_words;
  std::vector<std::array<double, LaneTraits<W>::kLanes>> level_energy;
};

using SampledBatchCycleResult = SampledBatchCycleResultT<std::uint64_t>;

/// Collapses per-output lane words into the scalar output bitmask of one
/// lane — the width-1 wrappers' view of a batch result.
template <typename W>
std::uint64_t outputs_for_lane(const std::vector<W>& output_words,
                               std::size_t lane);

template <typename W>
class DifferentialCircuitSimBatchT {
 public:
  explicit DifferentialCircuitSimBatchT(const GateCircuit& circuit);

  /// As above, but with one energy model per gate *instance* (e.g. with
  /// per-instance routing loads from src/balance).
  DifferentialCircuitSimBatchT(const GateCircuit& circuit,
                               std::vector<GateEnergyModel> models);

  /// Evaluates one clock cycle of every lane in `lane_mask`.
  void cycle(const std::vector<W>& input_words, const W& lane_mask,
             BatchCycleResultT<W>& out);

  /// As cycle(), with the energy split per logic level.
  void cycle_sampled(const std::vector<W>& input_words, const W& lane_mask,
                     SampledBatchCycleResultT<W>& out);

  /// Restores the fresh-construction state (every node charged) in every
  /// lane, so a new campaign starts from a reproducible state.
  void reset();

  /// Independent simulator over the same circuit with the same per-gate
  /// energy models, in fresh-construction state. Nothing is shared except
  /// the referenced circuit (which must outlive the clone), so clones can
  /// simulate concurrently on worker threads.
  DifferentialCircuitSimBatchT clone_fresh() const;

  std::size_t num_levels() const { return num_levels_; }
  const GateCircuit& circuit() const { return circuit_; }

 private:
  const GateCircuit& circuit_;
  BatchGateEvaluatorT<W> eval_;
  std::vector<SablGateSimBatchT<W>> gate_sims_;  // one per gate instance
  std::vector<std::size_t> levels_;
  std::size_t num_levels_ = 0;
  std::array<double, LaneTraits<W>::kLanes> gate_energy_;
};

using DifferentialCircuitSimBatch = DifferentialCircuitSimBatchT<std::uint64_t>;

template <typename W>
class CmosCircuitSimBatchT {
 public:
  /// `switch_energy` is the energy of one output 0->1 transition [J].
  CmosCircuitSimBatchT(const GateCircuit& circuit, double switch_energy);

  /// One cycle per selected lane; each lane carries its own previous-value
  /// history (Hamming-distance leakage is per instance).
  ///
  /// History is *logically 64-lane* no matter the word width: chunk j of a
  /// wide cycle is one 64-lane step of the canonical stream, taking its
  /// previous values from chunk j-1 of the same call (and the stored
  /// history for chunk 0). A width-W run over a trace sequence therefore
  /// produces bit-identical energies to the historic 64-lane kernel —
  /// widening the word changes throughput, never the trace stream.
  void cycle(const std::vector<W>& input_words, const W& lane_mask,
             BatchCycleResultT<W>& out);

  /// As cycle(), with the energy split per logic level (a gate's
  /// transition energy lands in its topological level's row) — the
  /// baseline-style counterpart of the differential sim's time-resolved
  /// sampling.
  void cycle_sampled(const std::vector<W>& input_words, const W& lane_mask,
                     SampledBatchCycleResultT<W>& out);

  /// Clears every lane's transition history (fresh-construction state).
  void reset();

  /// Independent simulator over the same circuit, fresh history in every
  /// lane; shares only the referenced circuit (which must outlive it).
  CmosCircuitSimBatchT clone_fresh() const;

  /// Samples per cycle_sampled() row: the circuit's logic depth.
  std::size_t num_levels() const { return num_levels_; }

 private:
  // Shared body of cycle()/cycle_sampled(): evaluates the circuit and
  // advances the logical 64-lane history exactly once, adding each gate's
  // rising-edge energy into row_for_gate(g). The width-invariance
  // guarantee rests on this walk, so it has exactly one home. The walk is
  // word-parallel: each gate's rising word feeds carry-save counter
  // planes, and a row's per-lane counts are reconstructed (and multiplied
  // by switch_energy_) once per row when it flushes.
  template <typename RowFn>
  void cycle_history(const std::vector<W>& input_words, const W& lane_mask,
                     RowFn&& row_for_gate, std::vector<W>& output_words);

  // Reconstructs per-lane rising-gate counts from the carry-save planes
  // and adds count * switch_energy_ into `row` for the lanes selected by
  // the mask chunks `m`; resets the planes.
  void flush_planes(const std::uint64_t* m, double* row);

  const GateCircuit& circuit_;
  BatchGateEvaluatorT<W> eval_;
  double switch_energy_;
  // Logical 64-lane history (see cycle()): one 64-lane word per gate.
  std::vector<std::uint64_t> previous_values_;
  std::uint64_t seen_mask_ = 0;  // logical lanes with history
  std::vector<std::size_t> levels_;
  std::size_t num_levels_ = 0;
  // Carry-save vertical counters: plane p holds bit p of the per-lane
  // count of gates that rose this row. planes_[planes_used_..] are stale
  // capacity, overwritten on first use.
  std::vector<W> planes_;
  std::size_t planes_used_ = 0;
  std::vector<std::uint64_t> plane_chunks_;  // flush scratch
};

using CmosCircuitSimBatch = CmosCircuitSimBatchT<std::uint64_t>;

class DifferentialCircuitSim {
 public:
  explicit DifferentialCircuitSim(const GateCircuit& circuit);

  DifferentialCircuitSim(const GateCircuit& circuit,
                         std::vector<GateEnergyModel> models);

  /// Evaluates one clock cycle with the given primary input bits.
  CycleResult cycle(std::uint64_t input_bits);

  /// As cycle(), with the energy split per logic level.
  SampledCycleResult cycle_sampled(std::uint64_t input_bits);

  /// Number of logic levels (= samples per cycle).
  std::size_t num_levels() const { return batch_.num_levels(); }

 private:
  DifferentialCircuitSimBatch batch_;  // lane 0 carries this instance
  std::vector<std::uint64_t> words_;
  BatchCycleResult scratch_;
  SampledBatchCycleResult sampled_scratch_;
};

class CmosCircuitSim {
 public:
  /// `switch_energy` is the energy of one output 0->1 transition [J].
  CmosCircuitSim(const GateCircuit& circuit, double switch_energy);

  CycleResult cycle(std::uint64_t input_bits);

 private:
  CmosCircuitSimBatch batch_;  // lane 0 carries this instance
  std::vector<std::uint64_t> words_;
  BatchCycleResult scratch_;
};

/// Pure functional evaluation (no energy), for reference checks.
std::uint64_t evaluate_circuit(const GateCircuit& circuit,
                               std::uint64_t input_bits);

}  // namespace sable
