#include "tech/technology.hpp"

namespace sable {

Technology Technology::generic_180nm() {
  Technology tech;
  tech.name = "generic-180nm";
  tech.vdd = 1.8;
  tech.min_length = 0.18e-6;
  tech.wire_cap_per_node = 0.4e-15;  // short local route

  tech.nmos.vt0 = 0.45;
  tech.nmos.kp = 300e-6;
  tech.nmos.lambda = 0.08;
  tech.nmos.cgate_per_area = 8.4e-3;  // ~8.4 fF/um^2
  tech.nmos.cov_per_width = 0.35e-9;  // 0.35 fF/um
  tech.nmos.cj_per_width = 0.80e-9;   // 0.80 fF/um per junction

  tech.pmos.vt0 = -0.48;
  tech.pmos.kp = 75e-6;
  tech.pmos.lambda = 0.10;
  tech.pmos.cgate_per_area = 8.4e-3;
  tech.pmos.cov_per_width = 0.35e-9;
  tech.pmos.cj_per_width = 0.85e-9;
  return tech;
}

SizingPlan SizingPlan::defaults(const Technology& tech) {
  SizingPlan plan;
  plan.length = tech.min_length;
  plan.dpdn_width = 1.0e-6;
  plan.bridge_width = 0.5e-6;
  plan.foot_width = 3.0e-6;
  plan.sense_n_width = 1.5e-6;
  plan.sense_p_width = 2.0e-6;
  plan.precharge_width = 1.5e-6;
  plan.inv_n_width = 1.0e-6;
  plan.inv_p_width = 2.0e-6;
  plan.output_load = 3.0e-15;
  return plan;
}

}  // namespace sable
