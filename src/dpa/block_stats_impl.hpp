// Definitions of the block-statistics kernel templates declared in
// dpa/block_stats.hpp. Included by exactly the TUs that instantiate
// them: dpa/block_stats.cpp for the portable tier and the per-ISA TUs
// under src/simd/ (inside their #pragma GCC target regions) for the
// AVX2/AVX-512 tiers — the tier template parameter only mints a distinct
// symbol per ISA; the bodies are identical and rely on autovectorization
// under the including TU's target.
//
// Determinism rules every body obeys (see block_stats.hpp):
//  - scalar floating-point reductions (sum_sq, and the histogram scatter)
//    accumulate sequentially in trace order — GCC never reorders FP
//    reductions without -fassociative-math, so these stay scalar chains
//    at every tier;
//  - contraction loops keep the plaintext loop outermost and vectorize
//    only across independent output elements (guess/level axis), so each
//    output's addition chain is the same at every vector width;
//  - plain mul+add only, no std::fma (the build pins -ffp-contract=off;
//    FMA at some tiers but not others would break cross-tier
//    bit-identity).
#pragma once

#include <cstddef>
#include <cstdint>

#include "dpa/block_stats.hpp"

namespace sable {

namespace detail {

template <int kTier>
void block_histogram_scalar(const std::uint8_t* pts, const double* samples,
                            std::size_t count, double shift,
                            std::uint64_t* counts, double* sums,
                            double* sum_sq) {
  for (std::size_t p = 0; p < kBlockPts; ++p) {
    counts[p] = 0;
    sums[p] = 0.0;
  }
  double q = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t p = pts[i];
    const double d = samples[i] - shift;
    counts[p] += 1;
    sums[p] += d;
    q += d * d;
  }
  *sum_sq = q;
}

template <int kTier>
void block_histogram_sampled(const std::uint8_t* pts, const double* rows,
                             std::size_t count, std::size_t width,
                             const double* shifts, std::uint64_t* counts,
                             double* sums, double* sum_sq) {
  for (std::size_t p = 0; p < kBlockPts; ++p) counts[p] = 0;
  for (std::size_t j = 0; j < kBlockPts * width; ++j) sums[j] = 0.0;
  for (std::size_t l = 0; l < width; ++l) sum_sq[l] = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t p = pts[i];
    counts[p] += 1;
    const double* __restrict row = rows + i * width;
    double* __restrict s = sums + p * width;
    for (std::size_t l = 0; l < width; ++l) {
      const double d = row[l] - shifts[l];
      s[l] += d;
      sum_sq[l] += d * d;
    }
  }
}

template <int kTier>
void block_contract_counts(const double* pred, const std::uint64_t* counts,
                           std::size_t num_pts, std::size_t num_guesses,
                           double* sum_h, double* sum_h2) {
  for (std::size_t g = 0; g < num_guesses; ++g) {
    sum_h[g] = 0.0;
    sum_h2[g] = 0.0;
  }
  for (std::size_t p = 0; p < num_pts; ++p) {
    if (counts[p] == 0) continue;
    const double np = static_cast<double>(counts[p]);
    const double* __restrict h = pred + p * num_guesses;
    double* __restrict s1 = sum_h;
    double* __restrict s2 = sum_h2;
    for (std::size_t g = 0; g < num_guesses; ++g) {
      const double w = np * h[g];
      s1[g] += w;
      s2[g] += w * h[g];
    }
  }
}

template <int kTier>
void block_contract_sums(const double* pred, const double* sums,
                         const std::uint64_t* counts, std::size_t num_pts,
                         std::size_t width, std::size_t num_guesses,
                         double* r) {
  for (std::size_t j = 0; j < width * num_guesses; ++j) r[j] = 0.0;
  for (std::size_t p = 0; p < num_pts; ++p) {
    if (counts[p] == 0) continue;
    const double* __restrict h = pred + p * num_guesses;
    const double* __restrict sp = sums + p * width;
    for (std::size_t l = 0; l < width; ++l) {
      const double s = sp[l];
      double* __restrict rl = r + l * num_guesses;
      for (std::size_t g = 0; g < num_guesses; ++g) {
        rl[g] += s * h[g];
      }
    }
  }
}

template <int kTier>
void block_contract_dom(const std::uint8_t* pred_bit,
                        const std::uint64_t* counts, const double* sums,
                        std::size_t num_pts, std::size_t num_guesses,
                        double* sum0, double* sum1, std::uint64_t* cnt0,
                        std::uint64_t* cnt1) {
  for (std::size_t g = 0; g < num_guesses; ++g) {
    sum0[g] = 0.0;
    sum1[g] = 0.0;
    cnt0[g] = 0;
    cnt1[g] = 0;
  }
  for (std::size_t p = 0; p < num_pts; ++p) {
    if (counts[p] == 0) continue;
    const std::uint64_t np = counts[p];
    const double sp = sums[p];
    const std::uint8_t* __restrict b = pred_bit + p * num_guesses;
    double* __restrict s0 = sum0;
    double* __restrict s1 = sum1;
    std::uint64_t* __restrict c0 = cnt0;
    std::uint64_t* __restrict c1 = cnt1;
    for (std::size_t g = 0; g < num_guesses; ++g) {
      const std::uint64_t bit = b[g];
      const double w = static_cast<double>(bit);
      s1[g] += w * sp;
      s0[g] += (1.0 - w) * sp;
      c1[g] += bit * np;
      c0[g] += (1 - bit) * np;
    }
  }
}

/// Instantiates the block-statistics kernels for one dispatch tier.
#define SABLE_INSTANTIATE_BLOCK_STATS(TIER)                                   \
  template void block_histogram_scalar<TIER>(                                 \
      const std::uint8_t*, const double*, std::size_t, double,                \
      std::uint64_t*, double*, double*);                                      \
  template void block_histogram_sampled<TIER>(                                \
      const std::uint8_t*, const double*, std::size_t, std::size_t,           \
      const double*, std::uint64_t*, double*, double*);                       \
  template void block_contract_counts<TIER>(                                  \
      const double*, const std::uint64_t*, std::size_t, std::size_t,          \
      double*, double*);                                                      \
  template void block_contract_sums<TIER>(                                    \
      const double*, const double*, const std::uint64_t*, std::size_t,        \
      std::size_t, std::size_t, double*);                                     \
  template void block_contract_dom<TIER>(                                     \
      const std::uint8_t*, const std::uint64_t*, const double*, std::size_t,  \
      std::size_t, double*, double*, std::uint64_t*, std::uint64_t*);

}  // namespace detail

}  // namespace sable
