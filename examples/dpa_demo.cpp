// Differential power analysis demo: the attack the paper defends against.
//
// Simulates a PRESENT S-box with a secret key in every logic style through
// the batched trace engine (64 encryptions per simulated cycle), runs a
// one-pass streaming correlation attack for every key guess, and reports
// whether the secret leaks. Static CMOS falls quickly, the genuine dynamic
// differential implementation leaks through its floating internal nodes,
// and the fully connected SABL implementation holds. No trace is ever
// retained: the CPA and MTD accumulators consume the stream directly.
#include <cstdio>

#include "engine/trace_engine.hpp"

using namespace sable;

namespace {

void attack_style(LogicStyle style, std::uint8_t key, std::size_t num_traces,
                  double noise) {
  const Technology tech = Technology::generic_180nm();
  TraceEngine engine(present_spec(), style, tech);

  CampaignOptions options;
  options.num_traces = num_traces;
  options.key = key;
  options.noise_sigma = noise;
  options.seed = 0xA77ACC;

  // One generation pass feeds both consumers: the full-campaign CPA and
  // the incremental MTD snapshotter.
  StreamingCpa cpa(engine.spec(), PowerModel::kHammingWeight);
  StreamingMtd mtd_driver(StreamingCpa(engine.spec(),
                                       PowerModel::kHammingWeight),
                          key, default_checkpoints(num_traces));
  engine.stream(options, [&](const std::uint8_t* pts, const double* samples,
                             std::size_t n) {
    cpa.add_batch(pts, samples, n);
    mtd_driver.add_batch(pts, samples, n);
  });
  const AttackResult result = cpa.result();
  const MtdResult mtd = mtd_driver.result();

  std::printf("%-22s best guess = 0x%X (|rho| = %.3f), correct key rank %zu",
              to_string(style), result.best_guess,
              result.score[result.best_guess], result.rank_of(key));
  if (mtd.disclosed) {
    std::printf(", DISCLOSED after ~%zu traces\n", mtd.mtd);
  } else {
    std::printf(", key NOT disclosed in %zu traces\n", num_traces);
  }
}

}  // namespace

int main() {
  const std::uint8_t secret_key = 0xB;
  const std::size_t num_traces = 5000;
  const double noise = 2e-16;  // ~0.2 fJ RMS measurement noise

  std::printf("CPA attack on PRESENT S-box, secret key = 0x%X, %zu traces\n",
              secret_key, num_traces);
  std::printf("(batched 64-wide simulation, streaming one-pass attack)\n\n");
  attack_style(LogicStyle::kStaticCmos, secret_key, num_traces, noise);
  attack_style(LogicStyle::kSablGenuine, secret_key, num_traces, noise);
  attack_style(LogicStyle::kSablFullyConnected, secret_key, num_traces,
               noise);
  attack_style(LogicStyle::kSablEnhanced, secret_key, num_traces, noise);
  attack_style(LogicStyle::kWddlBalanced, secret_key, num_traces, noise);
  attack_style(LogicStyle::kWddlMismatched, secret_key, num_traces, noise);
  std::printf(
      "\nThe fully connected/enhanced gates draw an input-independent charge\n"
      "every cycle, so the correlation for every key guess is noise.\n");
  return 0;
}
