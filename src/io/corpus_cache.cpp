#include "io/corpus_cache.hpp"

#include <utility>

namespace sable {

SharedCorpus::SharedCorpus(const std::string& path,
                           std::size_t max_cached_shards)
    : reader_(path), max_cached_(max_cached_shards) {}

SharedCorpus::Lease::Lease(Lease&& other) noexcept
    : owner_(std::exchange(other.owner_, nullptr)),
      shard_(other.shard_),
      view_(other.view_) {}

SharedCorpus::Lease& SharedCorpus::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (owner_) owner_->release(shard_);
    owner_ = std::exchange(other.owner_, nullptr);
    shard_ = other.shard_;
    view_ = other.view_;
  }
  return *this;
}

SharedCorpus::Lease::~Lease() {
  if (owner_) owner_->release(shard_);
}

SharedCorpus::Lease SharedCorpus::acquire(std::size_t shard) {
  if (!reader_.compressed()) {
    // Raw chunks live in the shared mapping already — zero-copy view, no
    // slot, no refcount (the scratch is never touched on this path).
    CorpusDecodeScratch none;
    return Lease(nullptr, shard, reader_.read_shard(shard, none));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = slots_.find(shard);
    if (it == slots_.end()) {
      // First acquirer decodes. The slot is published not-ready so
      // concurrent acquirers wait instead of decoding again, and the
      // decode itself runs outside the lock.
      auto inserted = slots_.emplace(shard, std::make_unique<Slot>());
      Slot* slot = inserted.first->second.get();
      slot->refs = 1;
      slot->last_use = ++use_tick_;
      decode_count_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      try {
        CodecScratch codec;
        reader_.decode_shard_into(shard, codec, slot->pts, slot->samples);
      } catch (...) {
        // Waiters re-find the slot after every wake: erasing it here
        // sends them back to the decode-or-wait decision, so a corrupt
        // chunk throws in every acquirer instead of deadlocking them.
        lock.lock();
        slots_.erase(shard);
        cv_.notify_all();
        throw;
      }
      lock.lock();
      slot->ready = true;
      cv_.notify_all();
      CorpusShardView view{slot->pts.data(), slot->samples.data(),
                           static_cast<std::size_t>(reader_.shard_count(shard))};
      return Lease(this, shard, view);
    }
    Slot* slot = it->second.get();
    if (slot->ready) {
      ++slot->refs;
      slot->last_use = ++use_tick_;
      CorpusShardView view{slot->pts.data(), slot->samples.data(),
                           static_cast<std::size_t>(reader_.shard_count(shard))};
      return Lease(this, shard, view);
    }
    // Never touch `slot` again after this wait — the decoder may have
    // erased it on failure; the loop re-finds from scratch.
    cv_.wait(lock);
  }
}

void SharedCorpus::release(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = slots_.find(shard);
  if (it == slots_.end()) return;  // evicted? cannot happen while referenced
  Slot* slot = it->second.get();
  if (slot->refs > 0) --slot->refs;
  if (max_cached_ != 0) evict_over_cap();
}

void SharedCorpus::evict_over_cap() {
  while (slots_.size() > max_cached_) {
    auto victim = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it) {
      if (it->second->ready && it->second->refs == 0 &&
          (victim == slots_.end() ||
           it->second->last_use < victim->second->last_use)) {
        victim = it;
      }
    }
    if (victim == slots_.end()) return;  // everything referenced or decoding
    slots_.erase(victim);
  }
}

}  // namespace sable
