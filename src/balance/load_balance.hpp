// Differential load extraction and balancing.
//
// §2 of the paper: "Since only one output undergoes a transition per
// switching event, the total load at the true output should match the total
// load at the false output." The load has three parts — intrinsic output
// capacitance (balanced by the gate design), interconnect, and the input
// capacitance of the fanout. The last two are a *back-end* responsibility:
// an inverted connection (rail swap) loads the driver's rails with the
// fanout cell's complementary input caps, and routing adds whatever the
// router drew.
//
// This module extracts the per-rail loads of every differential signal in a
// gate-level circuit, quantifies the imbalance, models unbalanced routing,
// and computes the classic fix: trim capacitance added to the lighter rail
// of every signal. The DPA benches use it to show that an unbalanced
// back-end re-opens the side channel that the FC-DPDN closed, and that
// balancing restores it — the paper's rationale for matched differential
// routing.
#pragma once

#include <cstdint>
#include <vector>

#include "cell/circuit.hpp"
#include "switchsim/gate_model.hpp"
#include "util/rng.hpp"

namespace sable {

/// Capacitive load on the two rails of one differential signal [F].
struct RailLoad {
  double true_rail = 0.0;
  double false_rail = 0.0;

  double imbalance() const { return true_rail - false_rail; }
};

/// Rail loads of every signal: primary inputs first (index = input id),
/// then gate outputs (index = num_primary_inputs + gate index).
std::vector<RailLoad> extract_rail_loads(const GateCircuit& circuit,
                                         const Technology& tech,
                                         const SizingPlan& sizing);

/// Adds deterministic random per-rail wire capacitance (mean `wire_mean`,
/// spread +-`wire_spread`) to model an unbalanced place & route.
void add_routing_capacitance(std::vector<RailLoad>& loads, double wire_mean,
                             double wire_spread, Rng& rng);

struct BalanceReport {
  double max_abs_imbalance = 0.0;   // [F]
  double total_imbalance = 0.0;     // sum of |imbalance| [F]
  double compensation_added = 0.0;  // trim capacitance inserted [F]
};

/// Equalizes every signal's rails by padding the lighter one (trim caps /
/// dummy fanout, the standard differential-routing fix). Returns what was
/// done.
BalanceReport balance_rail_loads(std::vector<RailLoad>& loads);

/// Per-gate-instance energy models with the extra rail loads of each
/// gate's *output* signal applied (to be fed to DifferentialCircuitSim).
std::vector<GateEnergyModel> instance_models_with_loads(
    const GateCircuit& circuit, const std::vector<RailLoad>& loads);

}  // namespace sable
