#include "spice/circuit.hpp"

#include "util/error.hpp"

namespace sable::spice {

SpiceNode Circuit::node(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  names_.push_back(name);
  const SpiceNode id = names_.size() - 1;
  index_.emplace(name, id);
  return id;
}

SpiceNode Circuit::find_node(const std::string& name) const {
  const auto it = index_.find(name);
  SABLE_REQUIRE(it != index_.end(), "unknown circuit node: " + name);
  return it->second;
}

const std::string& Circuit::node_name(SpiceNode n) const {
  SABLE_ASSERT(n < names_.size(), "node index out of range");
  return names_[n];
}

void Circuit::add_resistor(const std::string& a, const std::string& b,
                           double ohms) {
  SABLE_REQUIRE(ohms > 0.0, "resistance must be positive");
  resistors_.push_back(Resistor{node(a), node(b), ohms});
}

void Circuit::add_capacitor(const std::string& a, const std::string& b,
                            double farads) {
  SABLE_REQUIRE(farads > 0.0, "capacitance must be positive");
  capacitors_.push_back(Capacitor{node(a), node(b), farads});
}

void Circuit::add_vsource(const std::string& name, const std::string& positive,
                          const std::string& negative, Waveform waveform) {
  vsources_.push_back(
      VoltageSource{name, node(positive), node(negative), std::move(waveform)});
}

void Circuit::add_mosfet(const std::string& name, MosType type,
                         const std::string& drain, const std::string& gate,
                         const std::string& source,
                         const MosModelParams& params, double width,
                         double length) {
  SABLE_REQUIRE(width > 0.0 && length > 0.0,
                "MOSFET width and length must be positive");
  mosfets_.push_back(Mosfet{name, type, node(drain), node(gate), node(source),
                            params, width, length});
}

std::size_t Circuit::vsource_index(const std::string& name) const {
  for (std::size_t i = 0; i < vsources_.size(); ++i) {
    if (vsources_[i].name == name) return i;
  }
  throw InvalidArgument("unknown voltage source: " + name);
}

}  // namespace sable::spice
