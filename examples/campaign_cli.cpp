// Distributed campaign driver: record / attack / merge as subcommands —
// the multi-process fan-out recipe of README's "Recording & distributed
// campaigns" section as one binary.
//
//   campaign_cli record  --traces N --out corpus [--codec delta|none|v1]
//   campaign_cli attack  [--corpus corpus] [--all-subkeys]
//                        [--shards A:B --partial P]
//                        [--resume P] [--checkpoint P --every K]
//                        [--json OUT]
//   campaign_cli merge   --partials p0,p1,... --json OUT
//   campaign_cli corpus-info --corpus PATH
//
// record writes the v2 delta+plane+RLE compressed corpus by default
// (--codec none for raw v2 chunks, --codec v1 for the legacy format —
// all three replay bit-identically). attack --corpus --all-subkeys runs
// one CPA+DoM+MTD set per round instance in a single pass over a
// SharedCorpus: one mapping, every chunk decoded once however many sets
// consume it. corpus-info prints any v1/v2 corpus's manifest, shard
// layout and per-shard stored/raw sizes.
//
// Every invocation rebuilds the same campaign (style, round, traces,
// seed, noise, shard size define it; the manifest machinery verifies the
// on-disk artifacts match) and the same attack set — CPA + DoM (bit 0) +
// MTD on the attacked S-box. A full `attack` finalizes and can emit a
// JSON report; a range-split `attack --shards A:B --partial P` persists
// raw shard states instead, and `merge` folds any number of partials
// through the exact fixed-shape reduction of a single-process run — the
// JSON reports compare byte-identical (%.17g scores), which is what the
// CI two-process smoke asserts.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "engine/trace_engine.hpp"
#include "io/campaign_state.hpp"
#include "io/corpus.hpp"
#include "io/corpus_cache.hpp"
#include "io/replay.hpp"

using namespace sable;

namespace {

struct Cli {
  LogicStyle style = LogicStyle::kStaticCmos;
  std::size_t round_size = 1;
  std::size_t attack_sbox = 0;
  std::size_t num_traces = 6000;
  std::uint64_t seed = 0xCA27A167;
  double noise = 2e-16;
  std::size_t shard_size = 0;
  std::size_t num_threads = 0;
  std::size_t lane_width = 0;
  std::string out_path;       // record: corpus path
  std::string corpus_path;    // attack: replay source
  std::string partial_path;   // attack: partial-state output
  std::string resume_path;    // attack: checkpoint to resume from
  std::string checkpoint_path;
  std::size_t checkpoint_every = 0;
  std::size_t shard_begin = 0;
  std::size_t shard_end = kAllShards;
  std::vector<std::string> partials;  // merge inputs
  std::string json_path;
  std::string codec = "delta";  // record: delta | none | v1
  bool all_subkeys = false;     // attack --corpus: one set per instance
};

std::vector<std::size_t> cli_subkeys(std::size_t n) {
  std::vector<std::size_t> keys(n);
  for (std::size_t j = 0; j < n; ++j) keys[j] = (0x9 + 7 * j) & 0xF;
  return keys;
}

bool parse_style(const char* name, LogicStyle* style) {
  for (LogicStyle s :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
    if (std::strcmp(name, to_string(s)) == 0) {
      *style = s;
      return true;
    }
  }
  return false;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s record --out PATH [--codec delta|none|v1] [campaign flags]\n"
      "       %s attack [--corpus PATH [--all-subkeys]]\n"
      "                 [--shards A:B --partial PATH]\n"
      "                 [--resume PATH] [--checkpoint PATH --every K]\n"
      "                 [--json PATH] [campaign flags]\n"
      "       %s merge --partials P0,P1,... [--json PATH] [campaign flags]\n"
      "       %s corpus-info --corpus PATH\n"
      "campaign flags: --style NAME --round N --attack-sbox I --traces N\n"
      "                --seed S --noise X --shard-size Z --threads T "
      "--lanes W\n",
      argv0, argv0, argv0, argv0);
  return 2;
}

// corpus-info: everything the header + index pin down, for any v1/v2
// file — no campaign flags needed, the corpus is self-describing.
int print_corpus_info(const std::string& path) {
  const CorpusReader corpus(path);
  const CorpusManifest& m = corpus.manifest();
  const CampaignManifest& c = m.campaign;
  std::printf("corpus %s\n", path.c_str());
  std::printf("  format v%u, compression %s, kind %s\n", corpus.version(),
              m.compression == kCorpusCompressionNone ? "none"
                                                      : "delta+plane+rle",
              m.kind == kCorpusKindScalar ? "scalar" : "sampled");
  std::printf("  campaign: %llu traces, %llu shards of %llu, seed 0x%llx, "
              "noise %g, spec 0x%016llx\n",
              static_cast<unsigned long long>(c.num_traces),
              static_cast<unsigned long long>(c.num_shards),
              static_cast<unsigned long long>(c.shard_size),
              static_cast<unsigned long long>(c.seed), c.noise_sigma,
              static_cast<unsigned long long>(c.spec_hash));
  std::printf("  pt_stride %llu bytes, sample_width %llu doubles\n",
              static_cast<unsigned long long>(m.pt_stride),
              static_cast<unsigned long long>(m.sample_width));
  std::uint64_t raw_total = 0;
  std::uint64_t stored_total = 0;
  for (std::size_t s = 0; s < corpus.num_shards(); ++s) {
    const std::uint64_t raw = corpus.shard_raw_bytes(s);
    const std::uint64_t stored = corpus.shard_stored_bytes(s);
    raw_total += raw;
    stored_total += stored;
    std::printf("  shard %4zu: %6zu traces, raw %10llu B, stored %10llu B "
                "(%.2fx)\n",
                s, corpus.shard_count(s),
                static_cast<unsigned long long>(raw),
                static_cast<unsigned long long>(stored),
                stored ? static_cast<double>(raw) / stored : 0.0);
  }
  std::printf("  total: raw %llu B, stored %llu B, ratio %.2fx\n",
              static_cast<unsigned long long>(raw_total),
              static_cast<unsigned long long>(stored_total),
              stored_total ? static_cast<double>(raw_total) / stored_total
                           : 0.0);
  return 0;
}

CampaignOptions options_for(const Cli& cli, const RoundSpec& round) {
  CampaignOptions options;
  options.num_traces = cli.num_traces;
  options.key = round.pack_subkeys(cli_subkeys(cli.round_size));
  options.noise_sigma = cli.noise;
  options.seed = cli.seed;
  options.shard_size = cli.shard_size;
  options.num_threads = cli.num_threads;
  options.lane_width = cli.lane_width;
  return options;
}

// The shared attack set. Invocation order is part of the persisted-state
// contract (blobs are stored in distinguisher order), so every
// subcommand builds exactly this list.
struct AttackSet {
  CpaDistinguisher cpa;
  DomDistinguisher dom;
  MtdDistinguisher mtd;
  std::vector<Distinguisher*> list;

  AttackSet(const Cli& cli, const RoundSpec& round, std::size_t subkey)
      : cpa(round.sboxes[cli.attack_sbox],
            AttackSelector{.sbox_index = cli.attack_sbox,
                           .model = PowerModel::kHammingWeight}),
        dom(round.sboxes[cli.attack_sbox],
            AttackSelector{.sbox_index = cli.attack_sbox,
                           .model = PowerModel::kHammingWeight,
                           .bit = 0}),
        mtd(round.sboxes[cli.attack_sbox],
            AttackSelector{.sbox_index = cli.attack_sbox,
                           .model = PowerModel::kHammingWeight},
            subkey, default_checkpoints(cli.num_traces), cli.num_traces),
        list{&cpa, &dom, &mtd} {}
};

void write_scores(std::FILE* f, const std::vector<double>& scores) {
  std::fprintf(f, "[");
  for (std::size_t g = 0; g < scores.size(); ++g) {
    std::fprintf(f, "%s%.17g", g == 0 ? "" : ", ", scores[g]);
  }
  std::fprintf(f, "]");
}

// One attack set's result fields: `"cpa": {...}, "dom": {...},
// "mtd": {...}` with `indent` before each key (no trailing newline) —
// shared between the single-set report and --all-subkeys array entries.
void write_attack_fields(std::FILE* f, const char* indent,
                         const AttackSet& attacks, std::size_t subkey) {
  const AttackResult& cpa = attacks.cpa.result();
  std::fprintf(f, "%s\"cpa\": {\"rank\": %zu, \"scores\": ", indent,
               cpa.rank_of(subkey));
  write_scores(f, cpa.score);
  const AttackResult& dom = attacks.dom.result();
  std::fprintf(f, "},\n%s\"dom\": {\"rank\": %zu, \"scores\": ", indent,
               dom.rank_of(subkey));
  write_scores(f, dom.score);
  const MtdResult& mtd = attacks.mtd.result();
  std::fprintf(f, "},\n%s\"mtd\": {\"disclosed\": %s, \"mtd\": %zu, "
                  "\"history\": [",
               indent, mtd.disclosed ? "true" : "false", mtd.mtd);
  for (std::size_t i = 0; i < mtd.rank_history.size(); ++i) {
    std::fprintf(f, "%s[%zu, %zu]", i == 0 ? "" : ", ",
                 mtd.rank_history[i].first, mtd.rank_history[i].second);
  }
  std::fprintf(f, "]}");
}

// Deterministic report: identical campaigns produce byte-identical files
// however the shard states were produced (simulated, replayed, merged).
int write_json(const Cli& cli, const AttackSet& attacks, std::size_t subkey) {
  std::FILE* f = std::fopen(cli.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"style\": \"%s\",\n  \"traces\": %zu,\n",
               to_string(cli.style), cli.num_traces);
  std::fprintf(f, "  \"seed\": %llu,\n  \"subkey\": %zu,\n",
               static_cast<unsigned long long>(cli.seed), subkey);
  write_attack_fields(f, "  ", attacks, subkey);
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return 0;
}

// --all-subkeys report: the same deterministic fields, one array entry
// per round instance.
int write_json_multi(const Cli& cli,
                     const std::vector<std::unique_ptr<AttackSet>>& sets,
                     const std::vector<std::size_t>& subkeys) {
  std::FILE* f = std::fopen(cli.json_path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", cli.json_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"style\": \"%s\",\n  \"traces\": %zu,\n",
               to_string(cli.style), cli.num_traces);
  std::fprintf(f, "  \"seed\": %llu,\n  \"subkeys\": [\n",
               static_cast<unsigned long long>(cli.seed));
  for (std::size_t j = 0; j < sets.size(); ++j) {
    std::fprintf(f, "    {\"sbox\": %zu, \"subkey\": %zu,\n", j, subkeys[j]);
    write_attack_fields(f, "     ", *sets[j], subkeys[j]);
    std::fprintf(f, "}%s\n", j + 1 < sets.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  if (mode != "record" && mode != "attack" && mode != "merge" &&
      mode != "corpus-info") {
    return usage(argv[0]);
  }
  Cli cli;
  for (int i = 2; i < argc; ++i) {
    const auto has_value = [&] { return i + 1 < argc; };
    if (std::strcmp(argv[i], "--style") == 0 && has_value()) {
      if (!parse_style(argv[++i], &cli.style)) {
        std::fprintf(stderr, "unknown --style %s\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--round") == 0 && has_value()) {
      cli.round_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--attack-sbox") == 0 && has_value()) {
      cli.attack_sbox = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--traces") == 0 && has_value()) {
      cli.num_traces = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0 && has_value()) {
      cli.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--noise") == 0 && has_value()) {
      cli.noise = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--shard-size") == 0 && has_value()) {
      cli.shard_size = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && has_value()) {
      cli.num_threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--lanes") == 0 && has_value()) {
      cli.lane_width = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && has_value()) {
      cli.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--corpus") == 0 && has_value()) {
      cli.corpus_path = argv[++i];
    } else if (std::strcmp(argv[i], "--partial") == 0 && has_value()) {
      cli.partial_path = argv[++i];
    } else if (std::strcmp(argv[i], "--resume") == 0 && has_value()) {
      cli.resume_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && has_value()) {
      cli.checkpoint_path = argv[++i];
    } else if (std::strcmp(argv[i], "--every") == 0 && has_value()) {
      cli.checkpoint_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && has_value()) {
      const std::string range = argv[++i];
      const std::size_t colon = range.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--shards expects A:B (B empty = end)\n");
        return 2;
      }
      cli.shard_begin = std::strtoull(range.substr(0, colon).c_str(),
                                      nullptr, 10);
      const std::string end = range.substr(colon + 1);
      cli.shard_end =
          end.empty() ? kAllShards : std::strtoull(end.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--partials") == 0 && has_value()) {
      std::string paths = argv[++i];
      std::size_t pos = 0;
      while (pos <= paths.size()) {
        const std::size_t comma = paths.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? paths.size() : comma;
        if (end > pos) cli.partials.push_back(paths.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && has_value()) {
      cli.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--codec") == 0 && has_value()) {
      cli.codec = argv[++i];
    } else if (std::strcmp(argv[i], "--all-subkeys") == 0) {
      cli.all_subkeys = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.round_size == 0 || cli.attack_sbox >= cli.round_size) {
    std::fprintf(stderr, "--attack-sbox must address one of the --round %zu "
                         "instances\n",
                 cli.round_size);
    return 2;
  }

  try {
    if (mode == "corpus-info") {
      if (cli.corpus_path.empty()) {
        std::fprintf(stderr, "corpus-info needs --corpus PATH\n");
        return 2;
      }
      return print_corpus_info(cli.corpus_path);
    }

    const Technology tech = Technology::generic_180nm();
    const RoundSpec round = present_round(cli.round_size, cli.style);
    TraceEngine engine(round, tech);
    const CampaignOptions options = options_for(cli, round);
    const std::size_t subkey =
        round.sub_word(options.key.data(), cli.attack_sbox);

    if (mode == "record") {
      if (cli.out_path.empty()) {
        std::fprintf(stderr, "record needs --out PATH\n");
        return 2;
      }
      std::uint32_t compression = kCorpusCompressionDeltaPlaneRle;
      std::uint32_t version = kCorpusVersion2;
      if (cli.codec == "none") {
        compression = kCorpusCompressionNone;
      } else if (cli.codec == "v1") {
        compression = kCorpusCompressionNone;
        version = kCorpusVersion1;
      } else if (cli.codec != "delta") {
        std::fprintf(stderr, "--codec must be delta, none or v1\n");
        return 2;
      }
      engine.record(options, TraceDataKind::kScalar, cli.out_path,
                    compression, version);
      const CampaignManifest m = engine.campaign_manifest(options);
      std::printf("recorded %llu traces (%llu shards of %llu) to %s\n",
                  static_cast<unsigned long long>(m.num_traces),
                  static_cast<unsigned long long>(m.num_shards),
                  static_cast<unsigned long long>(m.shard_size),
                  cli.out_path.c_str());
      return 0;
    }

    if (mode == "attack" && cli.all_subkeys) {
      if (cli.corpus_path.empty()) {
        std::fprintf(stderr, "--all-subkeys needs --corpus PATH\n");
        return 2;
      }
      // One CPA+DoM+MTD set per round instance, all driven in a single
      // pass over one shared mapping — each chunk is decoded once
      // however many sets consume it.
      SharedCorpus corpus(cli.corpus_path);
      std::vector<std::unique_ptr<AttackSet>> sets;
      std::vector<std::size_t> subkeys;
      std::vector<std::span<Distinguisher* const>> spans;
      for (std::size_t j = 0; j < cli.round_size; ++j) {
        Cli sub = cli;
        sub.attack_sbox = j;
        subkeys.push_back(round.sub_word(options.key.data(), j));
        sets.push_back(std::make_unique<AttackSet>(sub, round, subkeys[j]));
      }
      for (const auto& set : sets) spans.emplace_back(set->list);
      replay_shared(corpus, round, spans, cli.num_threads);
      for (std::size_t j = 0; j < sets.size(); ++j) {
        std::printf("sbox %zu: CPA rank %zu, DoM rank %zu, MTD %s%zu\n", j,
                    sets[j]->cpa.result().rank_of(subkeys[j]),
                    sets[j]->dom.result().rank_of(subkeys[j]),
                    sets[j]->mtd.result().disclosed ? "" : "not disclosed at ",
                    sets[j]->mtd.result().disclosed ? sets[j]->mtd.result().mtd
                                                    : cli.num_traces);
      }
      if (!cli.json_path.empty()) return write_json_multi(cli, sets, subkeys);
      return 0;
    }

    AttackSet attacks(cli, round, subkey);

    if (mode == "merge") {
      if (cli.partials.empty()) {
        std::fprintf(stderr, "merge needs --partials P0,P1,...\n");
        return 2;
      }
      engine.merge_partials(options, attacks.list, cli.partials);
    } else {
      CampaignPersistence persist;
      persist.resume_path = cli.resume_path;
      persist.checkpoint_every_shards = cli.checkpoint_every;
      persist.shard_begin = cli.shard_begin;
      persist.shard_end = cli.shard_end;
      // --partial is the fan-out spelling of --checkpoint: a range-split
      // invocation persists its shard states there for a later merge.
      persist.checkpoint_path =
          !cli.partial_path.empty() ? cli.partial_path : cli.checkpoint_path;
      bool complete = false;
      if (!cli.corpus_path.empty()) {
        const CorpusReader corpus(cli.corpus_path);
        complete =
            engine.replay(corpus, attacks.list, persist, cli.num_threads);
      } else {
        complete = engine.run_distinguishers(options, attacks.list, persist);
      }
      if (!complete) {
        std::printf("partial campaign state written to %s\n",
                    persist.checkpoint_path.c_str());
        return 0;
      }
    }

    std::printf("CPA rank %zu, DoM rank %zu, MTD %s%zu\n",
                attacks.cpa.result().rank_of(subkey),
                attacks.dom.result().rank_of(subkey),
                attacks.mtd.result().disclosed ? "" : "not disclosed at ",
                attacks.mtd.result().disclosed ? attacks.mtd.result().mtd
                                               : cli.num_traces);
    if (!cli.json_path.empty()) return write_json(cli, attacks, subkey);
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
