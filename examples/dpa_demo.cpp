// Differential power analysis demo: the attack the paper defends against.
//
// Simulates a PRESENT S-box with a secret key in every logic style through
// the batched trace engine (64 encryptions per simulated cycle), runs a
// one-pass streaming correlation attack for every key guess, and reports
// whether the secret leaks. Static CMOS falls quickly, the genuine dynamic
// differential implementation leaks through its floating internal nodes,
// and the fully connected SABL implementation holds. No trace is ever
// retained: the CPA and MTD accumulators consume the stream directly.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/trace_engine.hpp"

using namespace sable;

namespace {

void attack_style(LogicStyle style, std::uint8_t key, std::size_t num_traces,
                  double noise, std::size_t num_threads) {
  const Technology tech = Technology::generic_180nm();
  TraceEngine engine(present_spec(), style, tech);

  CampaignOptions options;
  options.num_traces = num_traces;
  options.key = key;
  options.noise_sigma = noise;
  options.seed = 0xA77ACC;
  options.num_threads = num_threads;

  // One generation pass feeds both consumers: the full-campaign CPA and
  // the incremental MTD snapshotter.
  StreamingCpa cpa(engine.spec(), PowerModel::kHammingWeight);
  StreamingMtd mtd_driver(StreamingCpa(engine.spec(),
                                       PowerModel::kHammingWeight),
                          key, default_checkpoints(num_traces));
  engine.stream(options, [&](const std::uint8_t* pts, const double* samples,
                             std::size_t n) {
    cpa.add_batch(pts, samples, n);
    mtd_driver.add_batch(pts, samples, n);
  });
  const AttackResult result = cpa.result();
  const MtdResult mtd = mtd_driver.result();

  std::printf("%-22s best guess = 0x%X (|rho| = %.3f), correct key rank %zu",
              to_string(style), result.best_guess,
              result.score[result.best_guess], result.rank_of(key));
  if (mtd.disclosed) {
    std::printf(", DISCLOSED after ~%zu traces\n", mtd.mtd);
  } else {
    std::printf(", key NOT disclosed in %zu traces\n", num_traces);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint8_t secret_key = 0xB;
  const std::size_t num_traces = 5000;
  const double noise = 2e-16;  // ~0.2 fJ RMS measurement noise
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr, "usage: %s [--threads N]\n", argv[0]);
      return 2;
    }
  }

  std::printf("CPA attack on PRESENT S-box, secret key = 0x%X, %zu traces\n",
              secret_key, num_traces);
  std::printf(
      "(batched 64-wide simulation sharded over %zu threads, streaming "
      "one-pass attack)\n\n",
      num_threads != 0 ? num_threads
                       : campaign_thread_count(CampaignOptions{}));
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
    attack_style(style, secret_key, num_traces, noise, num_threads);
  }
  std::printf(
      "\nThe fully connected/enhanced gates draw an input-independent charge\n"
      "every cycle, so the correlation for every key guess is noise.\n");
  return 0;
}
