// Deterministic random number generation for reproducible experiments.
//
// xoshiro256** (Blackman & Vigna) — fast, high-quality, and identical output
// on every platform, which matters because the DPA experiments must be
// re-runnable bit-for-bit.
#pragma once

#include <cstdint>

namespace sable {

/// Deterministic 64-bit PRNG (xoshiro256**), seedable via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ab1e5ab1e5ab1e5ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform();

  /// Standard normal variate (Box–Muller; caches the spare value).
  double gaussian();

  /// Bernoulli trial with probability p.
  bool chance(double p);

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace sable
