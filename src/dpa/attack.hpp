// First-order DPA / CPA attacks.
//
// CPA: Pearson correlation between the measured samples and the predicted
// leakage, per key guess; the guess with the largest |rho| wins.
// DPA (difference of means): partition traces by the predicted S-box output
// bit and compare partition means — Kocher's original distinguisher.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sboxes.hpp"
#include "dpa/hypothesis.hpp"
#include "power/trace.hpp"

namespace sable {

// Canonical score ordering (the contract every attack path — batch,
// streaming, and merged-accumulator snapshots — relies on): guesses are
// ordered by descending score, with EXACT ties broken toward the lower
// guess index. Consequently best_guess is the lowest index attaining the
// maximum score, rank_of is a deterministic total order consistent with
// best_guess (rank_of(best_guess) == 0), and a flat score vector ranks
// guesses by index instead of all-zero. make_attack_result() is the single
// constructor of AttackResult and asserts this contract centrally, so a
// reordered merge or snapshot cannot silently change rankings.
// Guess indices are std::size_t so 4-bit (16-guess), 8-bit (256-guess)
// and wider future subkey spaces are first-class — no caller-side byte
// truncation.
struct AttackResult {
  /// Distinguisher score per key guess (|correlation| or |mean difference|).
  std::vector<double> score;
  std::size_t best_guess = 0;
  /// Best score minus runner-up score (confidence margin).
  double margin = 0.0;
  /// Rank of guess `key` in the canonical ordering (0 = best).
  std::size_t rank_of(std::size_t key) const;
};

/// Builds an AttackResult from raw per-guess scores: fills best_guess and
/// the margin, and asserts the canonical-ordering contract above.
AttackResult make_attack_result(std::vector<double> scores);

/// Correlation power analysis over all 2^in_bits key guesses.
AttackResult cpa_attack(const TraceSet& traces, const SboxSpec& spec,
                        PowerModel model, std::size_t bit = 0);

/// Difference-of-means DPA on one predicted output bit.
AttackResult dom_attack(const TraceSet& traces, const SboxSpec& spec,
                        std::size_t bit = 0);

/// Time-resolved CPA: runs the scalar CPA on every sample column and keeps,
/// per key guess, the largest |correlation| over time — the standard
/// procedure on oscilloscope traces. `best_sample` reports where the
/// winning guess peaked.
struct MultiAttackResult {
  AttackResult combined;
  std::size_t best_sample = 0;
};
MultiAttackResult cpa_attack_multisample(const MultiTraceSet& traces,
                                         const SboxSpec& spec,
                                         PowerModel model,
                                         std::size_t bit = 0);

}  // namespace sable
