// Experiment E10 (extension): runtime and output-size scaling of the design
// methods, with google-benchmark timing.
//
// Sweeps the literal count of random factored expressions and measures the
// §4.1 synthesis, the §4.2 transformation (extraction + re-synthesis), the
// §5 enhancement, and the exhaustive full-connectivity check.
#include <benchmark/benchmark.h>

#include "core/checks.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/transformer.hpp"
#include "expr/random_expr.hpp"
#include "util/rng.hpp"

namespace {

using namespace sable;

ExprPtr expression_for(std::size_t literals, std::size_t num_vars) {
  Rng rng(0xBEEF ^ literals);
  RandomExprOptions opt;
  opt.num_vars = num_vars;
  opt.num_literals = literals;
  return random_nnf(rng, opt);
}

void BM_FcSynthesis(benchmark::State& state) {
  const auto literals = static_cast<std::size_t>(state.range(0));
  const ExprPtr f = expression_for(literals, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_fc_dpdn(f, 6));
  }
  state.counters["devices"] =
      static_cast<double>(synthesize_fc_dpdn(f, 6).device_count());
}
BENCHMARK(BM_FcSynthesis)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_EnhancedSynthesis(benchmark::State& state) {
  const auto literals = static_cast<std::size_t>(state.range(0));
  const ExprPtr f = expression_for(literals, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(synthesize_enhanced_dpdn(f, 6));
  }
  state.counters["devices"] =
      static_cast<double>(synthesize_enhanced_dpdn(f, 6).device_count());
}
BENCHMARK(BM_EnhancedSynthesis)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_Transformation(benchmark::State& state) {
  const auto literals = static_cast<std::size_t>(state.range(0));
  const ExprPtr f = expression_for(literals, 6);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 6);
  const VarTable vars = VarTable::alphabetic(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform_to_fully_connected(genuine, vars));
  }
}
BENCHMARK(BM_Transformation)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_FullConnectivityCheck(benchmark::State& state) {
  const auto literals = static_cast<std::size_t>(state.range(0));
  const auto num_vars = static_cast<std::size_t>(state.range(1));
  const ExprPtr f = expression_for(literals, num_vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, num_vars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_full_connectivity(net));
  }
}
BENCHMARK(BM_FullConnectivityCheck)
    ->Args({16, 4})
    ->Args({16, 6})
    ->Args({16, 8})
    ->Args({16, 10});

void BM_GenuineBaseline(benchmark::State& state) {
  const auto literals = static_cast<std::size_t>(state.range(0));
  const ExprPtr f = expression_for(literals, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_genuine_dpdn(f, 6));
  }
}
BENCHMARK(BM_GenuineBaseline)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
