// Sizing heuristics for differential gates.
//
// DyCML (ref [13] of the paper) sizes transistors from the post-layout
// output capacitance; SABL deliberately avoids that coupling. The rules
// here are simple ratioed-logic defaults: wider foot than DPDN devices,
// sense amplifier sized to regenerate quickly against the worst-case
// series stack.
#pragma once

#include "netlist/network.hpp"
#include "tech/technology.hpp"

namespace sable {

/// Scales the default sizing so the worst-case DPDN stack (deepest
/// satisfiable path) presents roughly the same on-resistance as a single
/// reference device: width = base * depth.
SizingPlan size_for_network(const DpdnNetwork& net, const Technology& tech);

}  // namespace sable
