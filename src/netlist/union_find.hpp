// Union-find (disjoint set) with path halving and union by size.
// Used for conduction queries: which nodes are shorted together by the
// switches that conduct under one input assignment.
#pragma once

#include <cstddef>
#include <vector>

namespace sable {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x);
  /// Merges the sets of a and b; returns true if they were disjoint.
  bool unite(std::size_t a, std::size_t b);
  bool same(std::size_t a, std::size_t b);

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> rank_;
};

}  // namespace sable
