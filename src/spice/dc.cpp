#include "spice/dc.hpp"

#include <algorithm>
#include <cmath>

#include "spice/linear.hpp"

namespace sable::spice {

namespace {

bool newton_dc(const Circuit& ckt, double gmin, const DcOptions& opt,
               std::vector<double>& x) {
  MnaSystem mna(ckt.node_count(), ckt.vsources().size());
  auto volt = [&](SpiceNode n) {
    return n == kGround ? 0.0 : x[mna.node_unknown(n)];
  };
  std::vector<double> solution;
  for (int iter = 0; iter < opt.max_newton; ++iter) {
    mna.clear();
    for (SpiceNode n = 1; n < ckt.node_count(); ++n) {
      mna.stamp_conductance(n, kGround, gmin);
    }
    for (const auto& r : ckt.resistors()) {
      mna.stamp_conductance(r.a, r.b, 1.0 / r.resistance);
    }
    for (std::size_t s = 0; s < ckt.vsources().size(); ++s) {
      const auto& src = ckt.vsources()[s];
      mna.stamp_vsource(s, src.positive, src.negative, src.waveform.at(0.0));
    }
    for (const auto& m : ckt.mosfets()) {
      const double vd = volt(m.drain);
      const double vg = volt(m.gate);
      const double vs = volt(m.source);
      const MosLinearization lin =
          mos_linearize(m.type, m.params, vd, vg, vs, m.width, m.length);
      mna.stamp_jacobian(m.drain, m.drain, lin.did_dvd);
      mna.stamp_jacobian(m.drain, m.gate, lin.did_dvg);
      mna.stamp_jacobian(m.drain, m.source, lin.did_dvs);
      mna.stamp_jacobian(m.source, m.drain, -lin.did_dvd);
      mna.stamp_jacobian(m.source, m.gate, -lin.did_dvg);
      mna.stamp_jacobian(m.source, m.source, -lin.did_dvs);
      const double linear_part =
          lin.did_dvd * vd + lin.did_dvg * vg + lin.did_dvs * vs;
      mna.stamp_current_into(m.drain, linear_part - lin.id);
      mna.stamp_current_into(m.source, lin.id - linear_part);
    }
    if (!mna.solve(solution)) return false;
    double max_dv = 0.0;
    const std::size_t num_v = ckt.node_count() - 1;
    for (std::size_t k = 0; k < mna.unknown_count(); ++k) {
      double delta = solution[k] - x[k];
      if (k < num_v) {
        delta = std::clamp(delta, -opt.damping_clamp, opt.damping_clamp);
        max_dv = std::max(max_dv, std::fabs(delta));
      }
      x[k] += delta;
    }
    if (max_dv < opt.vtol) return true;
  }
  return false;
}

}  // namespace

DcResult dc_operating_point(const Circuit& circuit, const DcOptions& options) {
  MnaSystem layout(circuit.node_count(), circuit.vsources().size());
  std::vector<double> x(layout.unknown_count(), 0.0);

  DcResult result;
  // gmin continuation: solve with a heavy shunt first, then relax it.
  bool ok = false;
  for (double gmin = options.gmin_initial; gmin >= options.gmin_final * 0.99;
       gmin /= 10.0) {
    ok = newton_dc(circuit, gmin, options, x);
    if (!ok) break;
  }
  result.converged = ok;
  result.node_voltage.assign(circuit.node_count(), 0.0);
  result.source_current.assign(circuit.vsources().size(), 0.0);
  if (ok) {
    for (SpiceNode n = 1; n < circuit.node_count(); ++n) {
      result.node_voltage[n] = x[layout.node_unknown(n)];
    }
    for (std::size_t s = 0; s < circuit.vsources().size(); ++s) {
      result.source_current[s] = x[layout.source_unknown(s)];
    }
  }
  return result;
}

}  // namespace sable::spice
