// Experiment E2 + E6 (Fig. 3 / Fig. 1 conditions).
//
// Transient simulation of the SABL AND-NAND gate for the paper's two input
// events, (0,1) and (1,1): prints a down-sampled table of the output
// voltages and the supply current for both events side by side, then the
// per-event summary (peak current, charge, energy). The paper's claim: the
// instantaneous output voltages and supply current are indistinguishable
// between the events. Also verifies §2 condition 1 across all four inputs:
// exactly one full charging event per cycle.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "sabl/testbench.hpp"
#include "util/strings.hpp"

using namespace sable;

int main() {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);
  TestbenchOptions opt;

  std::printf("== E2 (Fig. 3): SABL AND-NAND transient =====================\n");
  // (0,1)-input: A=0, B=1 -> assignment bit A=0 -> 0b10; (1,1) -> 0b11.
  const std::vector<std::uint64_t> seq = {0b10, 0b11};
  const SablRunResult run = run_sabl_sequence(net, vars, tech, sizing, seq,
                                              opt);
  const auto& w = run.waves;

  std::printf("\n  t[ns]   | (0,1): out   out'  i_vdd[uA] | (1,1): out   out'  i_vdd[uA]\n");
  const double t0 = run.cycle_start[0];
  const double t1 = run.cycle_start[1];
  for (double dt = 0.0; dt < opt.period; dt += opt.period / 20) {
    const std::size_t k0 = w.sample_at(t0 + dt);
    const std::size_t k1 = w.sample_at(t1 + dt);
    std::printf("  %6.2f  |   %5.2f %5.2f   %8.1f  |   %5.2f %5.2f   %8.1f\n",
                dt * 1e9, w.v("out")[k0], w.v("outb")[k0],
                -w.i("vdd")[k0] * 1e6, w.v("out")[k1], w.v("outb")[k1],
                -w.i("vdd")[k1] * 1e6);
  }

  // Quantitative overlap of the supply current profiles.
  double max_dev = 0.0;
  double peak = 0.0;
  for (double dt = 0.0; dt < opt.period; dt += opt.dt) {
    const double i0 = -w.i("vdd")[w.sample_at(t0 + dt)];
    const double i1 = -w.i("vdd")[w.sample_at(t1 + dt)];
    max_dev = std::max(max_dev, std::fabs(i0 - i1));
    peak = std::max({peak, std::fabs(i0), std::fabs(i1)});
  }
  std::printf("\n  supply-current profile max |i(0,1) - i(1,1)|: %s (peak %s -> %.1f%%)\n",
              format_eng(max_dev, "A").c_str(), format_eng(peak, "A").c_str(),
              100.0 * max_dev / peak);

  std::printf("\n  per-event summary:\n");
  std::printf("  input   energy       charge      peak i_vdd\n");
  for (const auto& c : run.cycles) {
    std::printf("  (%llu,%llu)   %-12s %-11s %s\n",
                (unsigned long long)(c.assignment & 1),
                (unsigned long long)(c.assignment >> 1),
                format_eng(c.energy, "J").c_str(),
                format_eng(c.charge, "C").c_str(),
                format_eng(c.peak_current, "A").c_str());
  }

  std::printf("\n== E6 (Fig. 1 / §2): one charging event per cycle ===========\n");
  const std::vector<std::uint64_t> all = {0b00, 0b01, 0b10, 0b11,
                                          0b11, 0b00};
  const SablRunResult every = run_sabl_sequence(net, vars, tech, sizing, all,
                                                opt);
  std::printf("  input   cycle charge (each cycle must draw one full packet)\n");
  for (const auto& c : every.cycles) {
    std::printf("  (%llu,%llu)   %s\n", (unsigned long long)(c.assignment & 1),
                (unsigned long long)(c.assignment >> 1),
                format_eng(c.charge, "C").c_str());
  }
  return 0;
}
