// Measurements-to-disclosure (MTD): the number of traces after which the
// attack ranks the correct key first and keeps it first — the standard
// effectiveness metric for DPA countermeasures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "dpa/attack.hpp"
#include "dpa/streaming.hpp"

namespace sable {

class ByteReader;
class ByteWriter;

struct MtdResult {
  bool disclosed = false;
  /// Smallest checkpoint trace count from which the correct key stays
  /// ranked first through the final checkpoint (0 when never disclosed).
  std::size_t mtd = 0;
  /// (trace count, rank of correct key) at each evaluated checkpoint.
  std::vector<std::pair<std::size_t, std::size_t>> rank_history;
};

/// Folds a (trace count, rank) history into the MTD verdict: the first
/// checkpoint from which the rank stays 0 through the end.
MtdResult mtd_from_history(
    std::vector<std::pair<std::size_t, std::size_t>> rank_history);

/// Runs `attack` on growing prefixes of the trace set at the given
/// checkpoints. `attack` maps a TraceSet prefix to an AttackResult.
MtdResult measurements_to_disclosure(
    const TraceSet& traces, std::size_t correct_key,
    const std::vector<std::size_t>& checkpoints,
    const std::function<AttackResult(const TraceSet&)>& attack);

/// Incremental MTD driver over a streaming CPA accumulator: traces are fed
/// once, the attack is snapshotted as the stream crosses each checkpoint,
/// and no trace is ever retained — O(guesses) memory however long the MTD
/// curve runs. Equivalent to measurements_to_disclosure over the same
/// stream and checkpoints.
class StreamingMtd {
 public:
  StreamingMtd(StreamingCpa attack, std::size_t correct_key,
               std::vector<std::size_t> checkpoints);

  void add(std::uint8_t pt, double sample);
  void add_batch(const std::uint8_t* pts, const double* samples,
                 std::size_t count);

  std::size_t count() const { return attack_.count(); }
  const StreamingCpa& attack() const { return attack_; }

  /// MTD verdict over the checkpoints crossed so far.
  MtdResult result() const { return mtd_from_history(rank_history_); }

 private:
  void snapshot_if_due();

  StreamingCpa attack_;
  std::size_t correct_key_;
  std::vector<std::size_t> checkpoints_;  // sorted, ascending
  std::size_t next_checkpoint_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> rank_history_;
};

/// Order-correct MTD assembly from per-shard streaming accumulators: the
/// thread-sharded TraceEngine hands each campaign shard's full accumulator
/// (append) and, for checkpoints falling inside a shard, the shard's
/// partial accumulator up to that trace count (checkpoint). Both must
/// arrive in canonical shard/trace order; each checkpoint is then ranked
/// from merge(all prior shards, partial) — the exact accumulator state a
/// sequential StreamingMtd would have held at that count. Because the
/// shard decomposition and the merge order are fixed by the campaign (not
/// by the thread count), the resulting MTD curve is bit-identical for any
/// number of workers, and identical to StreamingMtd for a single shard.
class ShardedMtd {
 public:
  explicit ShardedMtd(std::size_t correct_key) : correct_key_(correct_key) {}

  /// Ranks the attack at `count` traces from the merged prefix plus
  /// `partial` (the current shard's accumulator up to `count`).
  void checkpoint(std::size_t count, const StreamingCpa& partial);

  /// Folds a completed shard's accumulator into the merged prefix.
  void append(const StreamingCpa& full);

  std::size_t count() const { return merged_ ? merged_->count() : 0; }
  MtdResult result() const { return mtd_from_history(rank_history_); }

  /// Bit-exact tagged (de)serialization (io/serial.hpp; the contract
  /// documented in streaming.hpp). load() rebuilds the merged prefix by
  /// copying `prototype` — a fresh accumulator of the campaign's
  /// spec/model/bit — and loading the stored moments into it, so the
  /// prediction table is rebuilt from the spec, never read from disk.
  void save(ByteWriter& writer) const;
  void load(ByteReader& reader, const StreamingCpa& prototype);

 private:
  std::size_t correct_key_;
  std::optional<StreamingCpa> merged_;  // shards appended so far
  std::vector<std::pair<std::size_t, std::size_t>> rank_history_;
};

/// Convenience checkpoint ladder: roughly logarithmic up to `max_traces`.
std::vector<std::size_t> default_checkpoints(std::size_t max_traces);

}  // namespace sable
