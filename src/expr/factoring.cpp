#include "expr/factoring.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace sable {

namespace {

// A literal within a cube: variable v with polarity pos.
struct Lit {
  std::size_t var;
  bool pos;
};

bool cube_has(const Cube& c, std::size_t v, bool pos) {
  if ((c.mask >> v) & 1u) return false;
  return (((c.value >> v) & 1u) != 0) == pos;
}

Cube cube_without(const Cube& c, std::size_t v) {
  Cube out = c;
  out.mask |= (1u << v);
  out.value &= ~(1u << v);
  return out;
}

ExprPtr factor_impl(std::vector<Cube> cubes, std::size_t num_vars) {
  if (cubes.empty()) return Expr::constant(false);
  if (cubes.size() == 1) {
    return cubes_to_expr(cubes, num_vars);
  }
  // Find the literal shared by the most cubes.
  Lit best{0, true};
  std::size_t best_count = 1;
  for (std::size_t v = 0; v < num_vars; ++v) {
    for (bool pos : {false, true}) {
      std::size_t count = 0;
      for (const auto& c : cubes) {
        if (cube_has(c, v, pos)) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = Lit{v, pos};
      }
    }
  }
  if (best_count <= 1) {
    // Nothing to share: a flat OR of products.
    return cubes_to_expr(cubes, num_vars);
  }
  std::vector<Cube> quotient;
  std::vector<Cube> remainder;
  for (const auto& c : cubes) {
    if (cube_has(c, best.var, best.pos)) {
      quotient.push_back(cube_without(c, best.var));
    } else {
      remainder.push_back(c);
    }
  }
  ExprPtr lit = Expr::variable(static_cast<VarId>(best.var));
  if (!best.pos) lit = Expr::negate(lit);
  ExprPtr factored = Expr::conj2(lit, factor_impl(std::move(quotient), num_vars));
  if (remainder.empty()) return factored;
  return Expr::disj2(factored, factor_impl(std::move(remainder), num_vars));
}

}  // namespace

ExprPtr factor_cubes(const std::vector<Cube>& cubes, std::size_t num_vars) {
  return factor_impl(cubes, num_vars);
}

ExprPtr factored_form(const TruthTable& f) {
  return factor_cubes(minimize(f), f.num_vars());
}

}  // namespace sable
