// Replaying recorded corpora into the distinguisher pipeline: any attack
// the live engine can drive runs from disk instead, with no simulation
// and bit-identical results — the corpus preserves the canonical shard
// decomposition, so accumulation, reduction and finalization are the
// exact operations of the live run on the exact same blocks.
#pragma once

#include <cstddef>
#include <span>

#include "dpa/distinguisher.hpp"
#include "io/corpus.hpp"
#include "io/manifest.hpp"

namespace sable {

struct RoundSpec;  // crypto/round_target.hpp
class WorkerPool;

/// Drives `distinguishers` over the recorded corpus, honoring the same
/// checkpoint/resume/fan-out controls as a live run. `round` must hash
/// to the corpus's spec (ManifestMismatchError otherwise) and every
/// distinguisher's data kind must match the corpus kind — a scalar
/// corpus cannot feed a time-resolved attack (InvalidArgument). Shards
/// are accumulated in parallel over `num_threads` workers (0 = hardware
/// concurrency) on `pool` (an internal pool when null). Returns true
/// when the campaign completed (results finalized), false for a partial
/// persisted run.
bool replay_distinguishers(const CorpusReader& corpus, const RoundSpec& round,
                           std::span<Distinguisher* const> distinguishers,
                           const CampaignPersistence& persist = {},
                           std::size_t num_threads = 0,
                           WorkerPool* pool = nullptr);

}  // namespace sable
