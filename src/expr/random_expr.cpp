#include "expr/random_expr.hpp"

#include "util/error.hpp"

namespace sable {

namespace {

ExprPtr random_tree(Rng& rng, const RandomExprOptions& opt,
                    std::size_t leaves) {
  if (leaves == 1) {
    ExprPtr lit = Expr::variable(
        static_cast<VarId>(rng.below(opt.num_vars)));
    if (rng.chance(opt.negate_probability)) lit = Expr::negate(lit);
    return lit;
  }
  const std::size_t left = 1 + rng.below(leaves - 1);
  ExprPtr a = random_tree(rng, opt, left);
  ExprPtr b = random_tree(rng, opt, leaves - left);
  // conj/disj fold duplicate flat structure; that keeps literal counts exact
  // because both operands here are non-constant.
  return rng.chance(opt.and_probability) ? Expr::conj2(std::move(a),
                                                       std::move(b))
                                         : Expr::disj2(std::move(a),
                                                       std::move(b));
}

}  // namespace

ExprPtr random_nnf(Rng& rng, const RandomExprOptions& options) {
  SABLE_REQUIRE(options.num_vars >= 1, "random_nnf requires >= 1 variable");
  SABLE_REQUIRE(options.num_literals >= 1,
                "random_nnf requires >= 1 literal");
  return random_tree(rng, options, options.num_literals);
}

}  // namespace sable
