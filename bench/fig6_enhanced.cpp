// Experiment E5 (Fig. 6): the enhanced fully connected AND-NAND gate.
//
// Verifies the two §5 claims — constant discharge resistance/depth and no
// early propagation — and quantifies the stated trade-off (area and load
// capacitance increase), at switch level and with the transistor-level
// testbench (delay constancy).
#include <cstdio>

#include "core/depth_analysis.hpp"
#include "core/early_propagation.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/resistance.hpp"
#include "expr/parser.hpp"
#include "sabl/testbench.hpp"
#include "switchsim/energy.hpp"
#include "tech/capacitance.hpp"
#include "util/strings.hpp"

using namespace sable;

namespace {

// Time from the evaluation clock edge until |out - outb| exceeds half VDD.
double decision_delay(const SablRunResult& run, std::size_t cycle,
                      double vdd) {
  const double t0 = run.cycle_start[cycle];
  const auto& out = run.waves.v("out");
  const auto& outb = run.waves.v("outb");
  for (std::size_t k = run.waves.sample_at(t0); k < run.waves.time.size();
       ++k) {
    if (std::abs(out[k] - outb[k]) > vdd / 2) {
      return run.waves.time[k] - t0;
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  std::printf("== E5 (Fig. 6): enhanced fully connected AND-NAND ===========\n");
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const Technology tech = Technology::generic_180nm();
  const SizingPlan sizing = SizingPlan::defaults(tech);

  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const DpdnNetwork enhanced = synthesize_enhanced_dpdn(f, 2);

  std::printf("\nfully connected (Fig. 6 left):\n%s",
              fc.to_string(vars).c_str());
  std::printf("enhanced (Fig. 6 right):\n%s",
              enhanced.to_string(vars).c_str());

  std::printf("\n%-34s %14s %14s\n", "metric", "fully conn.", "enhanced");
  const DepthReport d_fc = analyze_evaluation_depth(fc);
  const DepthReport d_en = analyze_evaluation_depth(enhanced);
  std::printf("%-34s %10zu..%zu %11zu..%zu\n", "evaluation depth (min..max)",
              d_fc.min_depth, d_fc.max_depth, d_en.min_depth, d_en.max_depth);

  const ResistanceReport r_fc = analyze_discharge_resistance(fc);
  const ResistanceReport r_en = analyze_discharge_resistance(enhanced);
  std::printf("%-34s %9.2f..%.2f %9.2f..%.2f\n",
              "discharge resistance [r_on]", r_fc.min_resistance,
              r_fc.max_resistance, r_en.min_resistance, r_en.max_resistance);

  const PathStats p_fc = structural_path_stats(fc);
  const PathStats p_en = structural_path_stats(enhanced);
  std::printf("%-34s %14s %14s\n", "every input on every path",
              p_fc.all_inputs_on_every_path ? "yes" : "NO",
              p_en.all_inputs_on_every_path ? "yes" : "NO");

  const EarlyPropagationReport e_fc = analyze_early_propagation(fc);
  const EarlyPropagationReport e_en = analyze_early_propagation(enhanced);
  char fc_early[24];
  char en_early[24];
  std::snprintf(fc_early, sizeof fc_early, "%zu/%zu", e_fc.early_scenarios,
                e_fc.total_scenarios);
  std::snprintf(en_early, sizeof en_early, "%zu/%zu", e_en.early_scenarios,
                e_en.total_scenarios);
  std::printf("%-34s %14s %14s\n", "early-evaluation scenarios", fc_early,
              en_early);

  std::printf("%-34s %14zu %14zu\n", "devices", fc.device_count(),
              enhanced.device_count());
  std::printf("%-34s %14zu %14zu\n", "dummy devices",
              fc.pass_gate_device_count(),
              enhanced.pass_gate_device_count());
  const double c_fc = total_internal_capacitance(fc, tech, sizing);
  const double c_en = total_internal_capacitance(enhanced, tech, sizing);
  std::printf("%-34s %14s %14s\n", "internal capacitance",
              format_eng(c_fc, "F").c_str(), format_eng(c_en, "F").c_str());
  std::printf("%-34s %13.1f%% %13.1f%%\n", "area/cap overhead vs FC", 0.0,
              (c_en / c_fc - 1.0) * 100.0);

  // Switch-level energy constancy over every assignment, computed with the
  // bit-parallel engine (all assignments run as lanes of one batch cycle).
  const EnergyProfile ep_fc =
      profile_gate_energy(fc, build_gate_model(fc, tech, sizing));
  const EnergyProfile ep_en =
      profile_gate_energy(enhanced, build_gate_model(enhanced, tech, sizing));
  std::printf("%-34s %13.2f%% %13.2f%%\n", "switch-level energy NED",
              ep_fc.ned * 100.0, ep_en.ned * 100.0);
  std::printf("%-34s %14s %14s\n", "mean cycle energy",
              format_eng(ep_fc.mean_energy, "J").c_str(),
              format_eng(ep_en.mean_energy, "J").c_str());

  // Transistor-level: gate decision delay per input event (the §5 claim:
  // "each gate has a constant delay as now both the resistance and the
  // capacitance are independent of the inputs").
  std::printf("\ntransistor-level decision delay per input:\n");
  std::printf("  input    fully conn.      enhanced\n");
  const std::vector<std::uint64_t> seq = {0b00, 0b01, 0b10, 0b11};
  const SablRunResult run_fc = run_sabl_sequence(fc, vars, tech, sizing, seq);
  const SablRunResult run_en =
      run_sabl_sequence(enhanced, vars, tech, sizing, seq);
  double fc_lo = 1e9, fc_hi = 0.0, en_lo = 1e9, en_hi = 0.0;
  for (std::size_t k = 0; k < seq.size(); ++k) {
    const double t_fc = decision_delay(run_fc, k, tech.vdd);
    const double t_en = decision_delay(run_en, k, tech.vdd);
    fc_lo = std::min(fc_lo, t_fc);
    fc_hi = std::max(fc_hi, t_fc);
    en_lo = std::min(en_lo, t_en);
    en_hi = std::max(en_hi, t_en);
    std::printf("  (%llu,%llu)    %-14s %-14s\n",
                (unsigned long long)(seq[k] & 1),
                (unsigned long long)(seq[k] >> 1),
                format_eng(t_fc, "s").c_str(), format_eng(t_en, "s").c_str());
  }
  std::printf("  delay spread: FC %.1f%%, enhanced %.1f%%\n",
              (fc_hi - fc_lo) / fc_hi * 100.0,
              (en_hi - en_lo) / en_hi * 100.0);
  return 0;
}
