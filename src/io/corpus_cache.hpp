// SharedCorpus: one validated mapping + decoded-chunk cache serving N
// concurrent distinguisher evaluations.
//
// Constructing a CorpusReader per evaluation costs a full mmap + index
// validation each time, and replaying a COMPRESSED corpus from k
// evaluations would decode every chunk k times. SharedCorpus owns ONE
// validated reader and a refcounted cache of decoded shards: the first
// acquirer of a shard decodes it (outside the lock), concurrent
// acquirers of the same shard wait on the decode and then share the
// buffers, and later acquirers hit the cache — each chunk is decoded at
// most once while the cache holds it (exactly once with an unbounded
// cache, asserted by decode_count() in tests). Raw corpora bypass the
// cache entirely: leases are zero-copy views into the shared mapping.
//
// Slots are evicted least-recently-used, only when unreferenced and
// only past `max_cached_shards` (0 = unbounded). Releasing a lease,
// waiting and decoding are all internally synchronized — acquire() from
// any number of threads is safe (and TSan-verified).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/corpus.hpp"

namespace sable {

class SharedCorpus {
 public:
  /// Opens, maps and validates the corpus once (any CorpusReader
  /// constructor error propagates). `max_cached_shards` bounds the
  /// decoded-slot cache; 0 keeps every decoded shard for the corpus
  /// lifetime.
  explicit SharedCorpus(const std::string& path,
                        std::size_t max_cached_shards = 0);

  /// RAII hold on one shard's traces. The view stays valid — and the
  /// backing slot unevictable — until the lease is destroyed.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease();

    const CorpusShardView& view() const { return view_; }

   private:
    friend class SharedCorpus;
    Lease(SharedCorpus* owner, std::size_t shard, CorpusShardView view)
        : owner_(owner), shard_(shard), view_(view) {}

    SharedCorpus* owner_ = nullptr;  // null: raw zero-copy, nothing to release
    std::size_t shard_ = 0;
    CorpusShardView view_;
  };

  /// The shard's traces, decoded at most once however many threads ask.
  /// Blocks while another thread is decoding the same shard; rethrows
  /// that decode's typed IoError in the decoding thread and lets waiters
  /// retry. Throws ShardIndexError past num_shards().
  Lease acquire(std::size_t shard);

  const CorpusReader& reader() const { return reader_; }
  const CorpusManifest& manifest() const { return reader_.manifest(); }
  std::size_t num_shards() const { return reader_.num_shards(); }

  /// Total chunk decodes performed so far (0 for raw corpora). With an
  /// unbounded cache this is structurally bounded by num_shards() — the
  /// decode-once guarantee concurrent evaluations rely on.
  std::uint64_t decode_count() const {
    return decode_count_.load(std::memory_order_relaxed);
  }

  /// Memoized round-spec validation: replay checks the (cheap but
  /// per-call) spec hash only the first time a round is run against this
  /// corpus. Only note AFTER the full check passed.
  bool spec_validated(std::uint64_t hash) const {
    return validated_spec_.load(std::memory_order_relaxed) == hash;
  }
  void note_spec_validated(std::uint64_t hash) {
    validated_spec_.store(hash, std::memory_order_relaxed);
  }

 private:
  struct Slot {
    bool ready = false;
    std::size_t refs = 0;
    std::uint64_t last_use = 0;
    std::vector<std::uint8_t> pts;
    std::vector<double> samples;
  };

  void release(std::size_t shard);
  // Drops LRU unreferenced ready slots while over the cap. mu_ held.
  void evict_over_cap();

  CorpusReader reader_;
  std::size_t max_cached_;
  std::atomic<std::uint64_t> decode_count_{0};
  std::atomic<std::uint64_t> validated_spec_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  // unique_ptr values: waiters hold Slot pointers across cv_ waits, so
  // slots must not move on rehash.
  std::unordered_map<std::size_t, std::unique_ptr<Slot>> slots_;
  std::uint64_t use_tick_ = 0;
};

}  // namespace sable
