// Cycle-accurate switch-level simulation of a dynamic differential gate.
//
// Timing model (matches the SPICE testbench in src/sabl):
//   evaluation : clk high, inputs complementary; every DPDN node connected
//                to {X, Y, Z} discharges (X and Y always discharge — one
//                through its branch, the other through bridge M1).
//   precharge  : clk low; during the input-overlap window the old inputs
//                are still complementary, so the same connected set
//                recharges from the supply through the precharge devices;
//                then all inputs return to 0 and disconnected (floating)
//                nodes keep whatever charge they hold.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"
#include "switchsim/gate_model.hpp"

namespace sable {

class SablGateSim {
 public:
  SablGateSim(const DpdnNetwork& net, GateEnergyModel model);

  /// Runs one full clock cycle with complementary input `assignment`.
  /// Returns the supply energy drawn during the cycle [J].
  double cycle(std::uint64_t assignment);

  /// Forces every DPDN node charged (`true`) or discharged (`false`).
  void reset(bool charged);

  /// Charge state per node after the last cycle (true = at VDD level).
  const std::vector<bool>& node_state() const { return charged_; }

  const DpdnNetwork& network() const { return net_; }
  const GateEnergyModel& model() const { return model_; }

 private:
  const DpdnNetwork& net_;
  GateEnergyModel model_;
  std::vector<bool> charged_;
};

}  // namespace sable
