// Tests for the paper's design methods (§4.1, §4.2) and the §5 enhancement:
// the reproduced Fig. 2 / Fig. 5 / Fig. 6 networks plus exhaustive property
// sweeps over every 2- and 3-input function and random expressions.
#include <gtest/gtest.h>

#include "core/checks.hpp"
#include "core/depth_analysis.hpp"
#include "core/enhancer.hpp"
#include "core/fc_synthesizer.hpp"
#include "core/genuine_builder.hpp"
#include "core/memory_effect.hpp"
#include "core/resistance.hpp"
#include "core/transformer.hpp"
#include "expr/parser.hpp"
#include "expr/quine_mccluskey.hpp"
#include "expr/random_expr.hpp"
#include "expr/transforms.hpp"
#include "expr/truth_table.hpp"
#include "netlist/conduction.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

// -- Fig. 2: the AND-NAND gate ------------------------------------------

TEST(FcSynthesizerTest, Fig2AndNandIsReproducedDeviceForDevice) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);

  // Paper Fig. 2 right: 4 devices, one internal node W; branch functions
  // A.B (X side) and A'.B + B' (Y side) with M2 = A' between Y and W.
  EXPECT_EQ(net.device_count(), 4u);
  EXPECT_EQ(net.internal_node_count(), 1u);
  const NodeId w = 3;
  bool found_m2 = false;
  for (const auto& d : net.devices()) {
    if (d.gate.var == 0 && !d.gate.positive) {
      EXPECT_TRUE(d.touches(DpdnNetwork::kNodeY) && d.touches(w));
      found_m2 = true;
    }
  }
  EXPECT_TRUE(found_m2) << "repositioned M2 (A') must connect Y and W";

  const FunctionalityReport func = check_functionality(net, f);
  EXPECT_TRUE(func.ok);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);
}

TEST(GenuineBuilderTest, Fig2GenuineHasTheMemoryEffect) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = build_genuine_dpdn(f, 2);
  EXPECT_EQ(net.device_count(), 4u);
  EXPECT_TRUE(check_functionality(net, f).ok);

  const ConnectivityReport conn = check_full_connectivity(net);
  EXPECT_FALSE(conn.fully_connected);
  // The paper: W floats exactly when A = B = 0.
  ASSERT_EQ(conn.violations.size(), 1u);
  EXPECT_EQ(conn.violations[0].assignment, 0b00u);

  const MemoryEffectReport mem = analyze_memory_effect(net);
  EXPECT_FALSE(mem.memoryless);
  EXPECT_EQ(mem.num_discharge_classes, 2u);
  EXPECT_EQ(mem.max_discharge_count_spread, 1u);
}

TEST(FcSynthesizerTest, DeviceCountEqualsGenuine) {
  VarTable vars;
  const char* cases[] = {"A.B", "A + B", "(A+B).(C+D)", "A.B + C.D",
                         "A.(B + C)", "A.B' + A'.B"};
  for (const char* text : cases) {
    const ExprPtr f = parse_expression(text, vars);
    const auto n = f->variables().size();
    const DpdnNetwork genuine = build_genuine_dpdn(f, n);
    const DpdnNetwork fc = synthesize_fc_dpdn(f, n);
    EXPECT_EQ(fc.device_count(), genuine.device_count()) << text;
    EXPECT_EQ(fc.device_count(), 2 * to_nnf(f)->literal_count()) << text;
  }
}

// -- Fig. 5: the OAI22 design example ------------------------------------

TEST(FcSynthesizerTest, Fig5Oai22Network) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 4);

  EXPECT_EQ(net.device_count(), 8u);
  EXPECT_EQ(net.internal_node_count(), 3u);
  EXPECT_TRUE(check_functionality(net, f).ok);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);

  // Paper: true branch realizes (A.B'+B).(C.D'+D); false branch realizes
  // A'.B'.(C.D'+D) + C'.D'. Verify the conduction functions semantically.
  const TruthTable fx =
      conduction_function(net, DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ);
  EXPECT_EQ(fx, table_of(f, 4));
}

TEST(TransformerTest, Fig5BothMethodsAgree) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  const TransformResult result = transform_to_fully_connected(genuine, vars);

  EXPECT_TRUE(result.branches_complementary);
  EXPECT_TRUE(result.device_count_preserved);
  EXPECT_TRUE(check_functionality(result.network, f).ok);
  EXPECT_TRUE(check_full_connectivity(result.network).fully_connected);

  // Method 4.1 and method 4.2 must produce the identical network.
  const DpdnNetwork direct = synthesize_fc_dpdn(f, 4);
  ASSERT_EQ(result.network.device_count(), direct.device_count());
  for (std::size_t i = 0; i < direct.devices().size(); ++i) {
    EXPECT_EQ(result.network.devices()[i].gate,
              direct.devices()[i].gate);
    EXPECT_EQ(result.network.devices()[i].a, direct.devices()[i].a);
    EXPECT_EQ(result.network.devices()[i].b, direct.devices()[i].b);
  }
  EXPECT_FALSE(result.steps.empty());
}

TEST(TransformerTest, WorksOnAoi22) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B + C.D", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  const TransformResult result = transform_to_fully_connected(genuine, vars);
  EXPECT_TRUE(result.branches_complementary);
  EXPECT_TRUE(result.device_count_preserved);
  EXPECT_TRUE(check_full_connectivity(result.network).fully_connected);
}

// -- Fig. 6: the enhanced network ----------------------------------------

TEST(EnhancerTest, Fig6EnhancedAndNand) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork net = synthesize_enhanced_dpdn(f, 2);

  // Fig. 6 right: 4 logic devices + one pass gate (2 dummy transistors).
  EXPECT_EQ(net.device_count(), 6u);
  EXPECT_EQ(net.pass_gate_device_count(), 2u);
  EXPECT_TRUE(check_functionality(net, f).ok);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);

  // Evaluation depth: constant and equal to the input count.
  const DepthReport depth = analyze_evaluation_depth(net);
  EXPECT_TRUE(depth.constant);
  EXPECT_EQ(depth.min_depth, 2u);

  // Without enhancement the depth is input-dependent (1 or 2).
  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const DepthReport fc_depth = analyze_evaluation_depth(fc);
  EXPECT_FALSE(fc_depth.constant);
  EXPECT_EQ(fc_depth.min_depth, 1u);
  EXPECT_EQ(fc_depth.max_depth, 2u);
}

TEST(EnhancerTest, ConstantDischargeResistance) {
  VarTable vars;
  const ExprPtr f = parse_expression("A.B", vars);
  const DpdnNetwork enhanced = synthesize_enhanced_dpdn(f, 2);
  const ResistanceReport r = analyze_discharge_resistance(enhanced);
  EXPECT_NEAR(r.relative_spread, 0.0, 1e-9);

  const DpdnNetwork fc = synthesize_fc_dpdn(f, 2);
  const ResistanceReport r_fc = analyze_discharge_resistance(fc);
  EXPECT_GT(r_fc.relative_spread, 0.1);
}

TEST(EnhancerTest, EveryPathSeesEveryInput) {
  VarTable vars;
  const char* cases[] = {"A.B", "(A+B).(C+D)", "A.B + C.D", "A.(B + C)"};
  for (const char* text : cases) {
    const ExprPtr f = parse_expression(text, vars);
    const auto n = f->variables().size();
    const DpdnNetwork net = synthesize_enhanced_dpdn(f, n);
    const PathStats stats = structural_path_stats(net);
    EXPECT_TRUE(stats.all_inputs_on_every_path) << text;
    EXPECT_EQ(stats.min_length, n) << text;
    EXPECT_EQ(stats.max_length, n) << text;
  }
}

TEST(EnhancerTest, EnhancedFromTableHandlesRepeatedLiterals) {
  // XOR3 repeats every variable; the SOP route still gives constant depth.
  VarTable vars;
  const TruthTable t = table_of(parse_expression("A ^ B ^ C", vars), 3);
  const DpdnNetwork net = synthesize_enhanced_from_table(t);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);
  const DepthReport depth = analyze_evaluation_depth(net);
  EXPECT_TRUE(depth.constant);
  const EnhancementOverhead overhead = enhancement_overhead(net);
  EXPECT_GT(overhead.dummy_devices, 0u);
  EXPECT_GT(overhead.device_overhead, 0.0);
}

TEST(EnhancerTest, RejectsConstantFunctions) {
  TruthTable zero(2);
  EXPECT_THROW(synthesize_enhanced_from_table(zero), InvalidArgument);
  EXPECT_THROW(synthesize_fc_dpdn(Expr::constant(true), 2), InvalidArgument);
}

// -- Property sweeps ------------------------------------------------------

// Every non-constant 2-input function (from its minimized SOP).
class AllTwoInput : public ::testing::TestWithParam<int> {};

TEST_P(AllTwoInput, FcSynthesisSoundAndFullyConnected) {
  TruthTable t(2);
  for (std::size_t row = 0; row < 4; ++row) t.set(row, (GetParam() >> row) & 1);
  if (t.popcount() == 0 || t.popcount() == t.num_rows()) GTEST_SKIP();
  const ExprPtr f = minimized_sop(t);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 2);
  EXPECT_TRUE(check_functionality(net, f).ok);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);
  EXPECT_TRUE(analyze_memory_effect(net).memoryless);
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, AllTwoInput, ::testing::Range(0, 16));

// Every non-constant 3-input function.
class AllThreeInput : public ::testing::TestWithParam<int> {};

TEST_P(AllThreeInput, FcSynthesisSoundAndFullyConnected) {
  TruthTable t(3);
  for (std::size_t row = 0; row < 8; ++row) t.set(row, (GetParam() >> row) & 1);
  if (t.popcount() == 0 || t.popcount() == t.num_rows()) GTEST_SKIP();
  const ExprPtr f = minimized_sop(t);
  const DpdnNetwork net = synthesize_fc_dpdn(f, 3);
  EXPECT_TRUE(check_functionality(net, f).ok);
  EXPECT_TRUE(check_full_connectivity(net).fully_connected);
}

INSTANTIATE_TEST_SUITE_P(AllTwoFiftySix, AllThreeInput,
                         ::testing::Range(0, 256));

// Every non-constant 4-input function, in one sweep: the method must give
// a functionally correct, fully connected network with the predicted
// device count for all 65534 of them.
TEST(ExhaustiveFourInput, EveryFunctionSynthesizesCorrectly) {
  std::size_t checked = 0;
  for (std::uint32_t truth = 1; truth < 0xFFFF; ++truth) {
    TruthTable t(4);
    for (std::size_t row = 0; row < 16; ++row) {
      t.set(row, (truth >> row) & 1u);
    }
    const ExprPtr f = minimized_sop(t);
    const DpdnNetwork net = synthesize_fc_dpdn(f, 4);
    // Inline functionality + connectivity checks (cheaper than the
    // report-building helpers at this volume).
    bool ok = true;
    for (std::uint64_t a = 0; a < 16 && ok; ++a) {
      UnionFind uf = conduction_components(net, a);
      ok = uf.same(DpdnNetwork::kNodeX, DpdnNetwork::kNodeZ) == t.get(a) &&
           uf.same(DpdnNetwork::kNodeY, DpdnNetwork::kNodeZ) == !t.get(a) &&
           !uf.same(DpdnNetwork::kNodeX, DpdnNetwork::kNodeY);
      for (NodeId n = 3; n < net.node_count() && ok; ++n) {
        ok = uf.same(n, DpdnNetwork::kNodeX) ||
             uf.same(n, DpdnNetwork::kNodeY) ||
             uf.same(n, DpdnNetwork::kNodeZ);
      }
    }
    ASSERT_TRUE(ok) << "function 0x" << std::hex << truth;
    ASSERT_EQ(net.device_count(), 2 * f->literal_count())
        << "function 0x" << std::hex << truth;
    ++checked;
  }
  EXPECT_EQ(checked, 65534u);
}

// Random factored expressions: synthesis + transformation round trip.
class RandomExprSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomExprSweep, SynthesisAndTransformRoundTrip) {
  Rng rng(0xF00D + static_cast<std::uint64_t>(GetParam()));
  RandomExprOptions opt;
  opt.num_vars = 4;
  opt.num_literals = 7;
  const ExprPtr f = random_nnf(rng, opt);
  const TruthTable t = table_of(f, opt.num_vars);
  if (t.popcount() == 0 || t.popcount() == t.num_rows()) GTEST_SKIP();

  const DpdnNetwork fc = synthesize_fc_dpdn(f, opt.num_vars);
  EXPECT_TRUE(check_functionality(fc, f).ok);
  EXPECT_TRUE(check_full_connectivity(fc).fully_connected);

  const DpdnNetwork enhanced = synthesize_enhanced_dpdn(f, opt.num_vars);
  EXPECT_TRUE(check_functionality(enhanced, f).ok);
  EXPECT_TRUE(check_full_connectivity(enhanced).fully_connected);

  const DpdnNetwork genuine = build_genuine_dpdn(f, opt.num_vars);
  const VarTable vars = VarTable::alphabetic(opt.num_vars);
  const TransformResult result = transform_to_fully_connected(genuine, vars);
  EXPECT_TRUE(result.branches_complementary);
  EXPECT_TRUE(check_functionality(result.network, f).ok);
  EXPECT_TRUE(check_full_connectivity(result.network).fully_connected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprSweep, ::testing::Range(0, 40));

}  // namespace
}  // namespace sable
