#include "switchsim/cycle_sim.hpp"

#include <bit>

#include "netlist/conduction.hpp"
#include "util/error.hpp"

namespace sable {

template <typename W>
void pack_lane_words(const std::uint64_t* assignments, std::size_t count,
                     std::vector<W>& words) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count <= T::kLanes, "more assignments than lanes in the word");
  for (std::size_t v = 0; v < words.size(); ++v) {
    std::uint64_t chunks[T::kChunks];
    for (std::size_t j = 0; j < T::kChunks; ++j) {
      const std::size_t base = 64 * j;
      const std::size_t lanes = count > base ? std::min<std::size_t>(
                                                   64, count - base)
                                             : 0;
      std::uint64_t chunk = 0;
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        chunk |= ((assignments[base + lane] >> v) & 1u) << lane;
      }
      chunks[j] = chunk;
    }
    words[v] = T::from_chunks(chunks);
  }
}

template <typename W>
SablGateSimBatchT<W>::SablGateSimBatchT(const DpdnNetwork& net,
                                        GateEnergyModel model)
    : net_(net), model_(std::move(model)) {
  SABLE_ASSERT(model_.node_cap.size() == net_.node_count(),
               "gate model capacitance table size mismatch");
  charged_.assign(net_.node_count(), LaneTraits<W>::ones());
}

template <typename W>
void SablGateSimBatchT<W>::cycle(const std::vector<W>& var_words,
                                 const W& lane_mask, double* energy) {
  using T = LaneTraits<W>;
  constexpr std::size_t kChunks = T::kChunks;
  device_conduction_masks(net_, var_words, masks_);
  reach_.assign(net_.node_count(), T::zero());
  reach_[DpdnNetwork::kNodeX] = lane_mask;
  reach_[DpdnNetwork::kNodeY] = lane_mask;
  reach_[DpdnNetwork::kNodeZ] = lane_mask;
  propagate_conduction(net_, masks_, reach_);

  // Per lane the arithmetic mirrors the scalar cycle exactly (constant
  // term, then node capacitances in node order, then the output extra) by
  // walking the word's 64-bit chunks with the historic 64-lane code — so a
  // lane is bit-identical to a width-1 run no matter the word width. Full
  // chunks take plain 0..63 loops (auto-vectorized); sparse ones walk
  // their set bits.
  std::uint64_t mask_chunks[kChunks];
  T::to_chunks(lane_mask, mask_chunks);
  lane_fill_selected(lane_mask, model_.constant_energy, energy);

  for (NodeId n = 0; n < net_.node_count(); ++n) {
    // Evaluation: connected nodes discharge to ground; precharge with input
    // overlap recharges the same set from the supply. Floating nodes keep
    // their held level and cost nothing.
    const double e_node = model_.node_cap[n] * model_.vdd * model_.vdd;
    std::uint64_t w_chunks[kChunks];
    T::to_chunks(reach_[n], w_chunks);
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t w = w_chunks[j];
      double* e = energy + 64 * j;
      if (w == ~std::uint64_t{0}) {
        // Fully connected chunks (the §4 designs' steady state): plain
        // vectorizable add across all lanes.
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += e_node;
        }
      } else if (mask_chunks[j] == ~std::uint64_t{0}) {
        // Mixed chunk (genuine networks): branch-free select; adding the
        // table's +0.0 for a clear bit leaves a non-negative accumulator
        // bit-identical to skipping the lane.
        const double select[2] = {0.0, e_node};
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += select[(w >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = w; rest != 0; rest &= rest - 1) {
          e[std::countr_zero(rest)] += e_node;
        }
      }
    }
    charged_[n] |= reach_[n];  // connected lanes end recharged
  }

  // The firing output rail charges its extra (routing) load: the true rail
  // when f = 1, the false rail otherwise. Balanced extras cancel the data
  // dependence; mismatched ones leak (§2).
  if (model_.out_true_extra != 0.0 || model_.out_false_extra != 0.0) {
    // X–Z closure reusing this cycle's device masks (no reallocation).
    reach_xz_.assign(net_.node_count(), T::zero());
    reach_xz_[DpdnNetwork::kNodeZ] = lane_mask;
    propagate_conduction(net_, masks_, reach_xz_);
    std::uint64_t f_chunks[kChunks];
    T::to_chunks(reach_xz_[DpdnNetwork::kNodeX], f_chunks);
    const double rail[2] = {model_.out_false_extra * model_.vdd * model_.vdd,
                            model_.out_true_extra * model_.vdd * model_.vdd};
    for (std::size_t j = 0; j < kChunks; ++j) {
      const std::uint64_t f = f_chunks[j];
      double* e = energy + 64 * j;
      if (mask_chunks[j] == ~std::uint64_t{0}) {
        for (std::size_t lane = 0; lane < 64; ++lane) {
          e[lane] += rail[(f >> lane) & 1u];
        }
      } else {
        for (std::uint64_t rest = mask_chunks[j]; rest != 0;
             rest &= rest - 1) {
          const std::size_t lane = std::countr_zero(rest);
          e[lane] += rail[(f >> lane) & 1u];
        }
      }
    }
  }
}

template <typename W>
void SablGateSimBatchT<W>::reset(bool charged) {
  charged_.assign(net_.node_count(),
                  charged ? LaneTraits<W>::ones() : LaneTraits<W>::zero());
}

#define SABLE_INSTANTIATE_CYCLE_SIM(W)                                    \
  template void pack_lane_words<W>(const std::uint64_t*, std::size_t,     \
                                   std::vector<W>&);                      \
  template class SablGateSimBatchT<W>;
SABLE_FOR_EACH_LANE_WORD(SABLE_INSTANTIATE_CYCLE_SIM)
#undef SABLE_INSTANTIATE_CYCLE_SIM

SablGateSim::SablGateSim(const DpdnNetwork& net, GateEnergyModel model)
    : batch_(net, std::move(model)) {
  charged_.assign(net.node_count(), true);
  var_words_.assign(net.num_vars(), 0);
}

double SablGateSim::cycle(std::uint64_t assignment) {
  pack_lane_words(&assignment, 1, var_words_);
  double energy[SablGateSimBatch::kLanes];
  batch_.cycle(var_words_, 1u, energy);
  const auto& words = batch_.node_state_words();
  for (NodeId n = 0; n < batch_.network().node_count(); ++n) {
    charged_[n] = (words[n] & 1u) != 0;
  }
  return energy[0];
}

void SablGateSim::reset(bool charged) {
  batch_.reset(charged);
  charged_.assign(batch_.network().node_count(), charged);
}

}  // namespace sable
