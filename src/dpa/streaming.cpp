#include "dpa/streaming.hpp"

#include <cmath>

#include "util/error.hpp"

namespace sable {

namespace {

// Plaintext-major layout: the per-trace hot loops fix pt and sweep every
// guess, so the row they read is contiguous.
std::vector<double> prediction_table(const SboxSpec& spec, PowerModel model,
                                     std::size_t bit) {
  const std::size_t num_guesses = std::size_t{1} << spec.in_bits;
  const std::size_t num_plaintexts = num_guesses;
  std::vector<double> table(num_guesses * num_plaintexts);
  for (std::size_t pt = 0; pt < num_plaintexts; ++pt) {
    for (std::size_t g = 0; g < num_guesses; ++g) {
      table[pt * num_guesses + g] =
          predict_leakage(spec, model, static_cast<std::uint8_t>(pt),
                          static_cast<std::uint8_t>(g), bit);
    }
  }
  return table;
}

}  // namespace

// ---- StreamingCpa ---------------------------------------------------------

StreamingCpa::StreamingCpa(const SboxSpec& spec, PowerModel model,
                           std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      predictions_(prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      c_ht_(num_guesses_, 0.0) {}

void StreamingCpa::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  const double dt_new = t_.add(sample);
  const double inv_n = 1.0 / static_cast<double>(t_.count());
  const double* pred = predictions_.data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    c_ht_[g] += dh * dt_new;
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

void StreamingCpa::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

AttackResult StreamingCpa::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (m2_h_[g] > 0.0 && t_.m2() > 0.0) {
      scores[g] = std::fabs(c_ht_[g] / std::sqrt(m2_h_[g] * t_.m2()));
    }
  }
  return make_attack_result(std::move(scores));
}

// ---- StreamingDom ---------------------------------------------------------

StreamingDom::StreamingDom(const SboxSpec& spec, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_) {
  const std::vector<double> pred =
      prediction_table(spec, PowerModel::kSboxOutputBit, bit);
  predicted_bit_.resize(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    predicted_bit_[i] = pred[i] > 0.5 ? 1 : 0;
  }
  for (int p : {0, 1}) {
    sum_[p].assign(num_guesses_, 0.0);
    cnt_[p].assign(num_guesses_, 0);
  }
}

void StreamingDom::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const std::uint8_t* pred = predicted_bit_.data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const std::uint8_t p = pred[g];
    sum_[p][g] += sample;
    ++cnt_[p][g];
  }
}

void StreamingDom::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

AttackResult StreamingDom::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (cnt_[0][g] == 0 || cnt_[1][g] == 0) continue;
    scores[g] = std::fabs(sum_[1][g] / static_cast<double>(cnt_[1][g]) -
                          sum_[0][g] / static_cast<double>(cnt_[0][g]));
  }
  return make_attack_result(std::move(scores));
}

// ---- StreamingMultiCpa ----------------------------------------------------

StreamingMultiCpa::StreamingMultiCpa(const SboxSpec& spec, PowerModel model,
                                     std::size_t width, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      width_(width),
      predictions_(prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      t_(width),
      c_ht_(width * num_guesses_, 0.0),
      dt_(width, 0.0) {
  SABLE_REQUIRE(width > 0, "multisample CPA requires at least one column");
}

void StreamingMultiCpa::add(std::uint8_t pt, const double* row) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t s = 0; s < width_; ++s) {
    dt_[s] = t_[s].add(row[s]);
  }
  const double* pred = predictions_.data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    double* c = c_ht_.data() + g;
    for (std::size_t s = 0; s < width_; ++s) {
      c[s * num_guesses_] += dh * dt_[s];
    }
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

MultiAttackResult StreamingMultiCpa::result() const {
  MultiAttackResult result;
  std::vector<double> combined(num_guesses_, 0.0);
  double global_best = -1.0;
  for (std::size_t s = 0; s < width_; ++s) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      double score = 0.0;
      if (m2_h_[g] > 0.0 && t_[s].m2() > 0.0) {
        score = std::fabs(c_ht_[s * num_guesses_ + g] /
                          std::sqrt(m2_h_[g] * t_[s].m2()));
      }
      combined[g] = std::max(combined[g], score);
      if (score > global_best) {
        global_best = score;
        result.best_sample = s;
      }
    }
  }
  result.combined = make_attack_result(std::move(combined));
  return result;
}

}  // namespace sable
