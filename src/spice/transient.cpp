#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "spice/linear.hpp"
#include "util/error.hpp"

namespace sable::spice {

namespace {

class TransientEngine {
 public:
  TransientEngine(const Circuit& ckt, const TransientOptions& opt)
      : ckt_(ckt),
        opt_(opt),
        mna_(ckt.node_count(), ckt.vsources().size()),
        state_(mna_.unknown_count(), 0.0) {
    for (const auto& [name, volts] : opt.initial_voltages) {
      const SpiceNode n = ckt_.find_node(name);
      SABLE_REQUIRE(n != kGround, "cannot set the initial voltage of ground");
      state_[mna_.node_unknown(n)] = volts;
    }
  }

  TranResult run() {
    TranResult result;
    for (SpiceNode n = 0; n < ckt_.node_count(); ++n) {
      result.node_names.push_back(ckt_.node_name(n));
    }
    result.voltage.resize(ckt_.node_count());
    for (const auto& src : ckt_.vsources()) {
      result.source_names.push_back(src.name);
    }
    result.branch_current.resize(ckt_.vsources().size());

    record(result, 0.0);
    double t = 0.0;
    std::size_t accepted = 0;
    while (t < opt_.t_stop - 0.5 * opt_.dt) {
      advance(t, opt_.dt, 0);
      t += opt_.dt;
      if (++accepted % static_cast<std::size_t>(opt_.record_every) == 0) {
        record(result, t);
      }
    }
    return result;
  }

 private:
  // Advances the state by `dt` from time `t`, recursively halving on
  // Newton failure.
  void advance(double t, double dt, int depth) {
    std::vector<double> next = state_;  // warm start from previous state
    if (newton_solve(t + dt, dt, next)) {
      state_ = std::move(next);
      return;
    }
    SABLE_REQUIRE(depth < opt_.max_halvings,
                  "transient failed to converge at minimum step size");
    advance(t, dt / 2, depth + 1);
    advance(t + dt / 2, dt / 2, depth + 1);
  }

  bool newton_solve(double t_new, double dt, std::vector<double>& x) {
    std::vector<double> solution;
    for (int iter = 0; iter < opt_.max_newton; ++iter) {
      assemble(t_new, dt, x);
      if (!mna_.solve(solution)) return false;
      // Damped update on the voltage unknowns.
      double max_dv = 0.0;
      const std::size_t num_v = ckt_.node_count() - 1;
      for (std::size_t k = 0; k < mna_.unknown_count(); ++k) {
        double delta = solution[k] - x[k];
        if (k < num_v) {
          delta = std::clamp(delta, -opt_.damping_clamp, opt_.damping_clamp);
          max_dv = std::max(max_dv, std::fabs(delta));
        }
        x[k] += delta;
      }
      if (max_dv < opt_.vtol) return true;
    }
    return false;
  }

  // Builds the linearized MNA system around iterate `x`; capacitor
  // companion models reference the accepted state at the previous step.
  void assemble(double t_new, double dt, const std::vector<double>& x) {
    mna_.clear();
    auto volt = [&](const std::vector<double>& vec, SpiceNode n) {
      return n == kGround ? 0.0 : vec[mna_.node_unknown(n)];
    };

    for (SpiceNode n = 1; n < ckt_.node_count(); ++n) {
      mna_.stamp_conductance(n, kGround, opt_.gmin);
    }
    for (const auto& r : ckt_.resistors()) {
      mna_.stamp_conductance(r.a, r.b, 1.0 / r.resistance);
    }
    for (const auto& c : ckt_.capacitors()) {
      const double g = c.capacitance / dt;
      mna_.stamp_conductance(c.a, c.b, g);
      const double v_prev = volt(state_, c.a) - volt(state_, c.b);
      mna_.stamp_current_into(c.a, g * v_prev);
      mna_.stamp_current_into(c.b, -g * v_prev);
    }
    for (std::size_t s = 0; s < ckt_.vsources().size(); ++s) {
      const auto& src = ckt_.vsources()[s];
      mna_.stamp_vsource(s, src.positive, src.negative,
                         src.waveform.at(t_new));
    }
    for (const auto& m : ckt_.mosfets()) {
      const double vd = volt(x, m.drain);
      const double vg = volt(x, m.gate);
      const double vs = volt(x, m.source);
      const MosLinearization lin =
          mos_linearize(m.type, m.params, vd, vg, vs, m.width, m.length);
      // Drain current leaves the drain node and enters the source node.
      mna_.stamp_jacobian(m.drain, m.drain, lin.did_dvd);
      mna_.stamp_jacobian(m.drain, m.gate, lin.did_dvg);
      mna_.stamp_jacobian(m.drain, m.source, lin.did_dvs);
      mna_.stamp_jacobian(m.source, m.drain, -lin.did_dvd);
      mna_.stamp_jacobian(m.source, m.gate, -lin.did_dvg);
      mna_.stamp_jacobian(m.source, m.source, -lin.did_dvs);
      const double linear_part =
          lin.did_dvd * vd + lin.did_dvg * vg + lin.did_dvs * vs;
      mna_.stamp_current_into(m.drain, linear_part - lin.id);
      mna_.stamp_current_into(m.source, lin.id - linear_part);
    }
  }

  void record(TranResult& out, double t) {
    out.time.push_back(t);
    for (SpiceNode n = 0; n < ckt_.node_count(); ++n) {
      out.voltage[n].push_back(
          n == kGround ? 0.0 : state_[mna_.node_unknown(n)]);
    }
    for (std::size_t s = 0; s < ckt_.vsources().size(); ++s) {
      out.branch_current[s].push_back(state_[mna_.source_unknown(s)]);
    }
  }

  const Circuit& ckt_;
  const TransientOptions& opt_;
  MnaSystem mna_;
  std::vector<double> state_;
};

}  // namespace

TranResult run_transient(const Circuit& circuit,
                         const TransientOptions& options) {
  SABLE_REQUIRE(options.t_stop > 0.0 && options.dt > 0.0,
                "transient requires positive t_stop and dt");
  TransientEngine engine(circuit, options);
  return engine.run();
}

}  // namespace sable::spice
