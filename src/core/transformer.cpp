#include "core/transformer.hpp"

#include "core/fc_synthesizer.hpp"
#include "expr/printer.hpp"
#include "expr/transforms.hpp"
#include "expr/truth_table.hpp"
#include "netlist/sp_tree.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Collects the series (AND) sub-networks of an SP expression, outermost
// first — the paper's "step 1: identify all the networks in series".
void collect_series_networks(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (e->is_literal()) return;
  if (e->kind() == ExprKind::kAnd) out.push_back(e);
  for (const auto& op : e->operands()) collect_series_networks(op, out);
}

}  // namespace

TransformResult transform_to_fully_connected(const DpdnNetwork& genuine,
                                             const VarTable& vars) {
  const BranchPartition branches = partition_branches(genuine);
  const ExprPtr f = extract_sp_expression(genuine, branches.x_branch,
                                          DpdnNetwork::kNodeX);
  const ExprPtr g = extract_sp_expression(genuine, branches.y_branch,
                                          DpdnNetwork::kNodeY);

  TransformResult result{
      synthesize_fc_dpdn(f, genuine.num_vars()), f, g, false, false, {}};

  result.branches_complementary =
      table_of(g, genuine.num_vars()) ==
      table_of(f, genuine.num_vars()).complemented();
  result.device_count_preserved =
      result.network.device_count() == genuine.device_count();

  result.steps.push_back("extracted true branch  f = " + to_string(f, vars));
  result.steps.push_back("extracted false branch g = " + to_string(g, vars));

  std::vector<ExprPtr> series;
  collect_series_networks(f, series);
  collect_series_networks(g, series);
  result.steps.push_back(
      "step 1: identified " + std::to_string(series.size()) +
      " series network(s):");
  for (const auto& s : series) {
    result.steps.push_back("    " + to_string(s, vars));
  }
  result.steps.push_back(
      "step 2: opened each dual parallel network at the bottom of the "
      "component dual to the series top, and connected it to the series "
      "internal node (the case A/B terminal wiring of the recursion)");
  result.steps.push_back(
      "step 3: unrolled; result has " +
      std::to_string(result.network.device_count()) + " devices (input had " +
      std::to_string(genuine.device_count()) + ")");
  return result;
}

}  // namespace sable
