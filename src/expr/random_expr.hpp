// Random NNF expression generation for property-based tests and scaling
// benchmarks of the design method.
#pragma once

#include "expr/expression.hpp"
#include "util/rng.hpp"

namespace sable {

struct RandomExprOptions {
  std::size_t num_vars = 4;
  /// Number of literal leaves in the generated tree.
  std::size_t num_literals = 8;
  /// Probability that an internal node is an AND (vs. OR).
  double and_probability = 0.5;
  /// Probability that a leaf literal is negated.
  double negate_probability = 0.5;
};

/// Generates a random NNF expression tree with exactly
/// `options.num_literals` leaves (>= 1). Deterministic given the Rng state.
ExprPtr random_nnf(Rng& rng, const RandomExprOptions& options);

}  // namespace sable
