// Evaluation-depth analysis (§5).
//
// The paper defines the evaluation depth as the number of transistors in
// series between the discharging output node (X or Y) and the common node Z.
// A data-dependent depth means data-dependent discharge resistance and delay
// — the early-propagation effect the §5 enhancement eliminates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace sable {

struct DepthReport {
  /// Discharge-path depth (shortest conducting path from the conducting
  /// external node to Z) for every complementary assignment.
  std::vector<std::size_t> depth_per_assignment;
  std::size_t min_depth = 0;
  std::size_t max_depth = 0;
  bool constant = false;
};

/// Exhaustive discharge-depth analysis over all assignments.
DepthReport analyze_evaluation_depth(const DpdnNetwork& net);

struct PathStats {
  std::size_t num_paths = 0;         // simple X->Z plus Y->Z paths
  std::size_t num_satisfiable = 0;   // paths that conduct for some input
  std::size_t min_length = 0;        // over satisfiable paths
  std::size_t max_length = 0;
  /// True when every satisfiable path is gated (via switch or pass gate) by
  /// every input variable — the §5 "no early propagation" criterion.
  bool all_inputs_on_every_path = false;
};

/// Structural statistics over all simple discharge paths.
PathStats structural_path_stats(const DpdnNetwork& net);

}  // namespace sable
