#include "util/matrix.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace sable {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::fill(double value) {
  for (auto& x : data_) x = value;
}

bool lu_solve(DenseMatrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  SABLE_ASSERT(a.cols() == n, "lu_solve requires a square matrix");
  SABLE_ASSERT(b.size() == n, "lu_solve rhs size mismatch");

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t pivot = k;
    double best = std::fabs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(a.at(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(k, c), a.at(pivot, c));
      }
      std::swap(b[k], b[pivot]);
    }
    const double inv = 1.0 / a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) * inv;
      if (factor == 0.0) continue;
      a.at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
      b[r] -= factor * b[k];
    }
  }
  // Back substitution.
  for (std::size_t k = n; k-- > 0;) {
    double sum = b[k];
    for (std::size_t c = k + 1; c < n; ++c) {
      sum -= a.at(k, c) * b[c];
    }
    b[k] = sum / a.at(k, k);
  }
  return true;
}

}  // namespace sable
