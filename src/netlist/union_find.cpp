#include "netlist/union_find.hpp"

#include <numeric>

namespace sable {

UnionFind::UnionFind(std::size_t n) : parent_(n), rank_(n, 0) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = a;
  if (rank_[a] == rank_[b]) ++rank_[a];
  return true;
}

bool UnionFind::same(std::size_t a, std::size_t b) {
  return find(a) == find(b);
}

}  // namespace sable
