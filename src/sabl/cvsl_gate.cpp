#include "sabl/cvsl_gate.hpp"

#include "tech/capacitance.hpp"

namespace sable {

CvslGateCircuit assemble_cvsl_gate(const DpdnNetwork& net,
                                   const VarTable& vars,
                                   const Technology& tech,
                                   const SizingPlan& sizing) {
  CvslGateCircuit gate;
  spice::Circuit& ckt = gate.circuit;

  gate.dpdn_node_names.resize(net.node_count());
  for (NodeId n = 0; n < net.node_count(); ++n) {
    switch (net.node_kind(n)) {
      case NodeKind::kX:
        gate.dpdn_node_names[n] = "nq";  // f pulls the complement output low
        break;
      case NodeKind::kY:
        gate.dpdn_node_names[n] = "q";   // f' pulls the true output low
        break;
      case NodeKind::kZ:
        gate.dpdn_node_names[n] = "0";   // CVSL has no clocked foot
        break;
      case NodeKind::kInternal:
        gate.dpdn_node_names[n] = "n_" + net.node_name(n);
        break;
    }
  }
  for (VarId v = 0; v < net.num_vars(); ++v) {
    gate.input_true.push_back("in_" + vars.name(v));
    gate.input_false.push_back("inb_" + vars.name(v));
  }

  const double l = sizing.length;
  ckt.add_mosfet("mp_cc_q", spice::MosType::kPmos, "q", "nq", "vdd", tech.pmos,
                 sizing.sense_p_width, l);
  ckt.add_mosfet("mp_cc_nq", spice::MosType::kPmos, "nq", "q", "vdd",
                 tech.pmos, sizing.sense_p_width, l);

  std::size_t dev_index = 0;
  for (const auto& d : net.devices()) {
    const std::string gate_node = d.gate.positive
                                      ? gate.input_true[d.gate.var]
                                      : gate.input_false[d.gate.var];
    ckt.add_mosfet("mn_dpdn_" + std::to_string(dev_index++),
                   spice::MosType::kNmos, gate.dpdn_node_names[d.a], gate_node,
                   gate.dpdn_node_names[d.b], tech.nmos, sizing.dpdn_width, l);
  }

  auto caps = dpdn_node_capacitances(net, tech, sizing);
  const double jp = tech.pmos.cj_per_width + tech.pmos.cov_per_width;
  caps[DpdnNetwork::kNodeX] += jp * sizing.sense_p_width + sizing.output_load;
  caps[DpdnNetwork::kNodeY] += jp * sizing.sense_p_width + sizing.output_load;
  for (NodeId n = 0; n < net.node_count(); ++n) {
    if (n == DpdnNetwork::kNodeZ) continue;  // grounded
    ckt.add_capacitor(gate.dpdn_node_names[n], "0", caps[n]);
  }
  return gate;
}

}  // namespace sable
