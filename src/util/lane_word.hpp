// Lane words — the batch kernels' generic machine word.
//
// Every bit-parallel kernel in the stack (conduction closure, switch-level
// gate simulation, gate-circuit evaluation, trace generation) operates on
// "lane words": one bit per independent simulation lane, one word per
// variable or node. The word type is generic; a LaneWord provides
//
//   LaneTraits<W>::kLanes    lanes per word (64 / 128 / 256 / 512)
//   LaneTraits<W>::kChunks   64-bit chunks per word (kLanes / 64)
//   zero() / ones()          all-clear / all-set words
//   any(w)                   true iff any lane bit is set
//   to_chunks / from_chunks  transfer to/from std::uint64_t[kChunks]
//   ~  &  |  ^  &=  |=  ==   the usual bitwise operators
//
// plus the free helpers lane_mask<W>(count) (THE tail-batch mask — every
// partial batch in the stack must come from here so the count invariant is
// asserted in exactly one place) and lane_any / lane_chunks.
//
// Three word families are provided:
//   std::uint64_t  the historic 64-lane kernel word (native scalar ops),
//   Word128        a portable pair of std::uint64_t (no ISA requirement),
//   Word256/512    AVX2 / AVX-512 vectors. In the default runtime-dispatch
//                  build (SABLE_SIMD=RUNTIME) the types exist in every TU
//                  (SABLE_DISPATCH_AVX2/512 are defined binary-wide) but
//                  their kernels are only *instantiated* in the per-ISA
//                  TUs under src/simd/, and only *selected* at runtime
//                  when cpu_features() reports the ISA (util/cpu_dispatch).
//                  Pinned builds (SABLE_SIMD=AVX2/AVX512/NATIVE) enable
//                  the ISA for the whole binary instead.
//
// Multi-ISA safety rules (how one binary carries portable + AVX2 +
// AVX-512 code without undefined behaviour):
//   - Every intrinsic-bearing member below carries a function-level
//     target attribute, so any TU may *compile* it; it must only be
//     *called* from a context compiled for (at least) the same ISA —
//     which the src/simd kernel TUs guarantee with #pragma GCC target.
//   - Wide words never cross a portable/ISA boundary by value: kernel
//     entry points take `const W&` / `std::vector<W>&`, and the free
//     helpers here are always_inline + chunk(memcpy)-based so they melt
//     into their caller whatever its target. (A by-value Word256 return
//     from a portable function into an AVX2 caller uses two different
//     calling conventions — memory vs ymm — and corrupts silently.)
//   - Portable code (tests, benches) reads wide words through
//     lane_chunks(), never through the intrinsic accessors.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/error.hpp"

#if defined(__AVX2__) || defined(SABLE_DISPATCH_AVX2)
#define SABLE_HAVE_WORD256 1
#else
#define SABLE_HAVE_WORD256 0
#endif

#if defined(__AVX512F__) || defined(SABLE_DISPATCH_AVX512)
#define SABLE_HAVE_WORD512 1
#else
#define SABLE_HAVE_WORD512 0
#endif

#if SABLE_HAVE_WORD256 || SABLE_HAVE_WORD512
#include <immintrin.h>
#endif

// Function-level ISA enablement: expands to a target attribute when the
// TU itself is not compiled with the ISA (runtime-dispatch builds), and
// to nothing when it already is (pinned builds, src/simd TUs after their
// #pragma GCC target — the pragma updates the __AVX2__/__AVX512F__ macros
// only for code after it; these headers are parsed before).
#if SABLE_HAVE_WORD256 && !defined(__AVX2__)
#define SABLE_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define SABLE_TARGET_AVX2
#endif
#if SABLE_HAVE_WORD512 && !defined(__AVX512F__)
#define SABLE_TARGET_AVX512 __attribute__((target("avx512f")))
#else
#define SABLE_TARGET_AVX512
#endif

// Forced inlining for the free helpers: their bodies adopt the caller's
// target, so no portable/ISA ABI boundary ever materializes (see the
// safety rules above) — at any optimization level, including -O0.
#define SABLE_LANE_INLINE inline __attribute__((always_inline))

namespace sable {

template <typename W>
struct LaneTraits;  // specialized for every lane word

// ---- std::uint64_t: the historic 64-lane word -----------------------------

template <>
struct LaneTraits<std::uint64_t> {
  static constexpr std::size_t kLanes = 64;
  static constexpr std::size_t kChunks = 1;
  static std::uint64_t zero() { return 0; }
  static std::uint64_t ones() { return ~std::uint64_t{0}; }
  static bool any(std::uint64_t w) { return w != 0; }
  static void to_chunks(std::uint64_t w, std::uint64_t* out) { out[0] = w; }
  static std::uint64_t from_chunks(const std::uint64_t* chunks) {
    return chunks[0];
  }
};

// ---- Word128: portable 128-lane pair --------------------------------------

struct Word128 {
  std::uint64_t c0 = 0;
  std::uint64_t c1 = 0;

  friend Word128 operator&(Word128 a, Word128 b) {
    return {a.c0 & b.c0, a.c1 & b.c1};
  }
  friend Word128 operator|(Word128 a, Word128 b) {
    return {a.c0 | b.c0, a.c1 | b.c1};
  }
  friend Word128 operator^(Word128 a, Word128 b) {
    return {a.c0 ^ b.c0, a.c1 ^ b.c1};
  }
  Word128 operator~() const { return {~c0, ~c1}; }
  Word128& operator&=(Word128 b) {
    c0 &= b.c0;
    c1 &= b.c1;
    return *this;
  }
  Word128& operator|=(Word128 b) {
    c0 |= b.c0;
    c1 |= b.c1;
    return *this;
  }
  friend bool operator==(Word128 a, Word128 b) = default;
};

template <>
struct LaneTraits<Word128> {
  static constexpr std::size_t kLanes = 128;
  static constexpr std::size_t kChunks = 2;
  static Word128 zero() { return {}; }
  static Word128 ones() { return {~std::uint64_t{0}, ~std::uint64_t{0}}; }
  static bool any(Word128 w) { return (w.c0 | w.c1) != 0; }
  static void to_chunks(Word128 w, std::uint64_t* out) {
    out[0] = w.c0;
    out[1] = w.c1;
  }
  static Word128 from_chunks(const std::uint64_t* chunks) {
    return {chunks[0], chunks[1]};
  }
};

// ---- Word256: AVX2, 256 lanes ---------------------------------------------

#if SABLE_HAVE_WORD256

// alignas is load-bearing: without it a portable TU sees alignof(__m256i)
// capped at 16 (GCC caps alignment of vector types wider than the enabled
// ISA) while the AVX2-target TUs see 32 — portable allocations would be
// under-aligned for the kernels' aligned vector moves.
struct alignas(32) Word256 {
  __m256i v{};  // zero-initialized without intrinsics: portable TUs may
                // default-construct (vector storage) but not operate

  Word256() = default;
  SABLE_TARGET_AVX2 explicit Word256(__m256i x) : v(x) {}

  SABLE_TARGET_AVX2 friend Word256 operator&(Word256 a, Word256 b) {
    return Word256(_mm256_and_si256(a.v, b.v));
  }
  SABLE_TARGET_AVX2 friend Word256 operator|(Word256 a, Word256 b) {
    return Word256(_mm256_or_si256(a.v, b.v));
  }
  SABLE_TARGET_AVX2 friend Word256 operator^(Word256 a, Word256 b) {
    return Word256(_mm256_xor_si256(a.v, b.v));
  }
  SABLE_TARGET_AVX2 Word256 operator~() const {
    return Word256(_mm256_xor_si256(v, _mm256_set1_epi64x(-1)));
  }
  SABLE_TARGET_AVX2 Word256& operator&=(Word256 b) {
    v = _mm256_and_si256(v, b.v);
    return *this;
  }
  SABLE_TARGET_AVX2 Word256& operator|=(Word256 b) {
    v = _mm256_or_si256(v, b.v);
    return *this;
  }
  SABLE_TARGET_AVX2 friend bool operator==(Word256 a, Word256 b) {
    const __m256i diff = _mm256_xor_si256(a.v, b.v);
    return _mm256_testz_si256(diff, diff) != 0;
  }
};

template <>
struct LaneTraits<Word256> {
  static constexpr std::size_t kLanes = 256;
  static constexpr std::size_t kChunks = 4;
  static Word256 zero() { return Word256{}; }  // portable (no intrinsics)
  SABLE_TARGET_AVX2 static Word256 ones() {
    return Word256(_mm256_set1_epi64x(-1));
  }
  SABLE_TARGET_AVX2 static bool any(const Word256& w) {
    return _mm256_testz_si256(w.v, w.v) == 0;
  }
  SABLE_TARGET_AVX2 static void to_chunks(const Word256& w,
                                          std::uint64_t* out) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), w.v);
  }
  SABLE_TARGET_AVX2 static Word256 from_chunks(const std::uint64_t* chunks) {
    return Word256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(chunks)));
  }
};

#endif  // SABLE_HAVE_WORD256

// ---- Word512: AVX-512F, 512 lanes -----------------------------------------

#if SABLE_HAVE_WORD512

// alignas pins the cross-TU ABI exactly as for Word256.
struct alignas(64) Word512 {
  __m512i v{};  // zero-initialized without intrinsics (see Word256)

  Word512() = default;
  SABLE_TARGET_AVX512 explicit Word512(__m512i x) : v(x) {}

  SABLE_TARGET_AVX512 friend Word512 operator&(Word512 a, Word512 b) {
    return Word512(_mm512_and_si512(a.v, b.v));
  }
  SABLE_TARGET_AVX512 friend Word512 operator|(Word512 a, Word512 b) {
    return Word512(_mm512_or_si512(a.v, b.v));
  }
  SABLE_TARGET_AVX512 friend Word512 operator^(Word512 a, Word512 b) {
    return Word512(_mm512_xor_si512(a.v, b.v));
  }
  SABLE_TARGET_AVX512 Word512 operator~() const {
    return Word512(_mm512_xor_si512(v, _mm512_set1_epi64(-1)));
  }
  SABLE_TARGET_AVX512 Word512& operator&=(Word512 b) {
    v = _mm512_and_si512(v, b.v);
    return *this;
  }
  SABLE_TARGET_AVX512 Word512& operator|=(Word512 b) {
    v = _mm512_or_si512(v, b.v);
    return *this;
  }
  SABLE_TARGET_AVX512 friend bool operator==(Word512 a, Word512 b) {
    return _mm512_cmpneq_epi64_mask(a.v, b.v) == 0;
  }
};

template <>
struct LaneTraits<Word512> {
  static constexpr std::size_t kLanes = 512;
  static constexpr std::size_t kChunks = 8;
  static Word512 zero() { return Word512{}; }  // portable (no intrinsics)
  SABLE_TARGET_AVX512 static Word512 ones() {
    return Word512(_mm512_set1_epi64(-1));
  }
  SABLE_TARGET_AVX512 static bool any(const Word512& w) {
    return _mm512_test_epi64_mask(w.v, w.v) != 0;
  }
  SABLE_TARGET_AVX512 static void to_chunks(const Word512& w,
                                            std::uint64_t* out) {
    _mm512_storeu_si512(out, w.v);
  }
  SABLE_TARGET_AVX512 static Word512 from_chunks(const std::uint64_t* chunks) {
    return Word512(_mm512_loadu_si512(chunks));
  }
};

#endif  // SABLE_HAVE_WORD512

// ---- portable chunk transfer ----------------------------------------------

/// Copies the word's kChunks little-endian 64-bit chunks out without
/// touching vector intrinsics: every lane word IS its chunks laid out in
/// order, so a memcpy is exact. This is how dispatch-agnostic code
/// (tests, benches, the free helpers below) inspects wide words.
template <typename W>
SABLE_LANE_INLINE void lane_chunks(const W& w, std::uint64_t* out) {
  static_assert(sizeof(W) == 8 * LaneTraits<W>::kChunks,
                "a lane word is exactly its 64-bit chunks");
  // void casts: lane words have user-provided constructors (non-trivial
  // for -Wclass-memaccess) but are bags of bits by design.
  std::memcpy(out, static_cast<const void*>(&w), sizeof(W));
}

/// Builds a word from its kChunks little-endian 64-bit chunks, the
/// portable inverse of lane_chunks.
template <typename W>
SABLE_LANE_INLINE W lane_from_chunks(const std::uint64_t* chunks) {
  static_assert(sizeof(W) == 8 * LaneTraits<W>::kChunks,
                "a lane word is exactly its 64-bit chunks");
  W w{};
  std::memcpy(static_cast<void*>(&w), chunks, sizeof(W));
  return w;
}

/// Shifts the word's chunks up one position and inserts `low` as chunk 0:
/// chunk j of the result is chunk j-1 of `w` (chunk kChunks-1 falls off).
/// This is the CMOS history step — each 64-lane chunk's predecessor is the
/// previous chunk of the canonical trace stream.
template <typename W>
SABLE_LANE_INLINE W lane_shift_in_chunk(const W& w, std::uint64_t low) {
  using T = LaneTraits<W>;
  std::uint64_t chunks[T::kChunks];
  lane_chunks(w, chunks);
  std::uint64_t shifted[T::kChunks];
  shifted[0] = low;
  for (std::size_t j = 1; j < T::kChunks; ++j) shifted[j] = chunks[j - 1];
  return lane_from_chunks<W>(shifted);
}

#if SABLE_HAVE_WORD256
/// Register-resident form (the generic chunk spill would stall the CMOS
/// inner loop on store-to-load forwarding). ISA context required, like
/// every wide kernel instantiation.
template <>
SABLE_TARGET_AVX2 SABLE_LANE_INLINE Word256
lane_shift_in_chunk<Word256>(const Word256& w, std::uint64_t low) {
  const __m256i rot = _mm256_permute4x64_epi64(w.v, 0x90);
  const __m256i lo = _mm256_set1_epi64x(static_cast<long long>(low));
  return Word256(_mm256_blend_epi32(rot, lo, 0x03));
}
#endif

#if SABLE_HAVE_WORD512
// GCC implements unmasked _mm512_alignr_epi64 through the masked builtin
// with an undefined merge source, tripping -Wmaybe-uninitialized at -O2;
// the merge lanes are fully overwritten (mask = all ones), so silence it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
template <>
SABLE_TARGET_AVX512 SABLE_LANE_INLINE Word512
lane_shift_in_chunk<Word512>(const Word512& w, std::uint64_t low) {
  const __m512i lo = _mm512_set1_epi64(static_cast<long long>(low));
  return Word512(_mm512_alignr_epi64(w.v, lo, 7));
}
#pragma GCC diagnostic pop
#endif

// ---- helpers --------------------------------------------------------------

/// Word whose first `count` lanes are set — the one and only source of
/// tail-batch masks. A count outside [1, kLanes] is a kernel bug upstream
/// (phantom traces would be simulated or every lane silently dropped), so
/// it aborts rather than throwing.
template <typename W>
SABLE_LANE_INLINE W lane_mask(std::size_t count) {
  using T = LaneTraits<W>;
  SABLE_ASSERT(count >= 1 && count <= T::kLanes,
               "lane_mask: count must be in [1, lane_count]");
  std::uint64_t chunks[T::kChunks];
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const std::size_t low = 64 * j;
    chunks[j] = count <= low ? 0
                : count >= low + 64
                    ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (count - low)) - 1;
  }
  return lane_from_chunks<W>(chunks);
}

/// True iff any lane bit of `w` is set. Wide instantiations go through the
/// intrinsic trait and must be called from a matching ISA context (they
/// are only reachable from the kernels, which guarantee it).
template <typename W>
SABLE_LANE_INLINE bool lane_any(const W& w) {
  return LaneTraits<W>::any(w);
}

// ---- per-lane double-array helpers ----------------------------------------
//
// The kernels extract per-lane floating-point results by walking a word's
// 64-bit chunks; these three masked-array loops are THE shared walk, so a
// change to tail handling (e.g. AVX-512 mask registers) lands everywhere
// at once. Full chunks take the plain vectorizable loop, sparse chunks
// walk their set bits — bit-identical per lane either way.

/// out[lane] = value for every selected lane of `lane_mask`.
template <typename W>
SABLE_LANE_INLINE void lane_fill_selected(const W& lane_mask, double value,
                                          double* out) {
  using T = LaneTraits<W>;
  std::uint64_t m[T::kChunks];
  lane_chunks(lane_mask, m);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    double* e = out + 64 * j;
    if (m[j] == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) e[lane] = value;
    } else {
      for (std::uint64_t rest = m[j]; rest != 0; rest &= rest - 1) {
        e[std::countr_zero(rest)] = value;
      }
    }
  }
}

/// out[lane] += add[lane] for every selected lane of `lane_mask`.
template <typename W>
SABLE_LANE_INLINE void lane_accumulate_selected(const W& lane_mask,
                                                const double* add,
                                                double* out) {
  using T = LaneTraits<W>;
  std::uint64_t m[T::kChunks];
  lane_chunks(lane_mask, m);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    const double* a = add + 64 * j;
    double* e = out + 64 * j;
    if (m[j] == ~std::uint64_t{0}) {
      for (std::size_t lane = 0; lane < 64; ++lane) e[lane] += a[lane];
    } else {
      for (std::uint64_t rest = m[j]; rest != 0; rest &= rest - 1) {
        const std::size_t lane = std::countr_zero(rest);
        e[lane] += a[lane];
      }
    }
  }
}

/// out[lane] += delta for every set lane of `lanes`.
template <typename W>
SABLE_LANE_INLINE void lane_add_delta(const W& lanes, double delta,
                                      double* out) {
  using T = LaneTraits<W>;
  std::uint64_t w[T::kChunks];
  lane_chunks(lanes, w);
  for (std::size_t j = 0; j < T::kChunks; ++j) {
    double* e = out + 64 * j;
    for (std::uint64_t rest = w[j]; rest != 0; rest &= rest - 1) {
      e[std::countr_zero(rest)] += delta;
    }
  }
}

/// Lane widths whose kernels are compiled into this binary, ascending.
/// 64 and 128 are always available; 256/512 are carried by the default
/// runtime-dispatch build and by pinned builds with the matching ISA.
/// Whether a compiled width can actually run on THIS machine is a runtime
/// question — see runtime_lane_widths() in util/cpu_dispatch.hpp.
inline std::vector<std::size_t> supported_lane_widths() {
  std::vector<std::size_t> widths = {64, 128};
#if SABLE_HAVE_WORD256
  widths.push_back(256);
#endif
#if SABLE_HAVE_WORD512
  widths.push_back(512);
#endif
  return widths;
}

/// Widest lane width compiled into this binary (not necessarily runnable
/// on this CPU — see max_runtime_lane_width() in util/cpu_dispatch.hpp).
constexpr std::size_t max_lane_width() {
#if SABLE_HAVE_WORD512
  return 512;
#elif SABLE_HAVE_WORD256
  return 256;
#else
  return 128;
#endif
}

/// Applies macro X to the portable lane word types — the instantiation
/// list for the base kernel TUs. Word256/512 kernels are instantiated
/// exclusively in src/simd/kernels_avx2.cpp / kernels_avx512.cpp inside
/// their #pragma GCC target regions (one TU per ISA, so no comdat copy of
/// an ISA-specialized symbol can ever be linked into a portable path).
#define SABLE_FOR_EACH_PORTABLE_LANE_WORD(X) X(std::uint64_t) X(::sable::Word128)

/// Applies macro X to every compiled-in lane word type. NOT for kernel
/// instantiations (see above) — only for width-dispatch tables that are
/// themselves compiled portably, like the engine's per-width pools.
#if SABLE_HAVE_WORD512
#define SABLE_FOR_EACH_LANE_WORD(X) \
  X(std::uint64_t) X(::sable::Word128) X(::sable::Word256) X(::sable::Word512)
#elif SABLE_HAVE_WORD256
#define SABLE_FOR_EACH_LANE_WORD(X) \
  X(std::uint64_t) X(::sable::Word128) X(::sable::Word256)
#else
#define SABLE_FOR_EACH_LANE_WORD(X) X(std::uint64_t) X(::sable::Word128)
#endif

}  // namespace sable
