#include "io/corpus.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace sable {

namespace {

constexpr char kCorpusMagic[8] = {'S', 'A', 'B', 'L', 'C', 'O', 'R', 'P'};

// Sanity ceilings on hostile header fields, chosen so every size product
// below fits a u64 with room to spare (a real round's state is tens of
// bytes wide and sample rows are tens of doubles).
constexpr std::uint64_t kMaxPtStride = 1u << 20;
constexpr std::uint64_t kMaxSampleWidth = 1u << 20;
constexpr std::uint64_t kMaxShardSize = 1ull << 32;

// Ceiling on one shard's DECODED size. Raw chunks cannot out-allocate
// their file (the mapping is the storage), but decoding a compressed
// chunk allocates the raw size from index fields a hostile file
// controls — bound it before any allocation happens. Far above any real
// shard (the autotuner caps shards at 64Ki traces).
constexpr std::uint64_t kMaxShardDecodedBytes = 1ull << 31;

std::uint64_t pad8(std::uint64_t n) { return (n + 7) / 8 * 8; }

// Canonical trace count of shard s under the manifest's layout (mirrors
// the engine's ShardLayout::count).
std::uint64_t layout_count(const CampaignManifest& m, std::uint64_t s) {
  return std::min<std::uint64_t>(m.shard_size,
                                 m.num_traces - s * m.shard_size);
}

void write_header(ByteWriter& writer, const CorpusManifest& manifest,
                  std::uint32_t version) {
  writer.bytes(kCorpusMagic, sizeof(kCorpusMagic));
  writer.u32(version);
  writer.u32(manifest.kind);
  if (version >= kCorpusVersion2) writer.u32(manifest.compression);
  manifest.campaign.save(writer);
  writer.u64(manifest.pt_stride);
  writer.u64(manifest.sample_width);
  writer.pad_to(8);
}

}  // namespace

CorpusWriter::CorpusWriter(const std::string& path,
                           const CorpusManifest& manifest,
                           std::uint32_t version)
    : path_(path), tmp_path_(path + ".tmp"), manifest_(manifest),
      version_(version) {
  const CampaignManifest& c = manifest_.campaign;
  SABLE_REQUIRE(version_ == kCorpusVersion1 || version_ == kCorpusVersion2,
                "corpus writer version must be 1 or 2");
  SABLE_REQUIRE(manifest_.kind == kCorpusKindScalar ||
                    manifest_.kind == kCorpusKindSampled,
                "corpus kind must be scalar or sampled");
  SABLE_REQUIRE(manifest_.compression == kCorpusCompressionNone ||
                    manifest_.compression == kCorpusCompressionDeltaPlaneRle,
                "corpus compression must be none or delta+plane+RLE");
  SABLE_REQUIRE(version_ >= kCorpusVersion2 ||
                    manifest_.compression == kCorpusCompressionNone,
                "corpus format v1 stores raw chunks only");
  SABLE_REQUIRE(manifest_.pt_stride >= 1 && manifest_.sample_width >= 1,
                "corpus strides must be at least one");
  SABLE_REQUIRE(c.num_traces >= 1 && c.shard_size >= 1 &&
                    c.num_shards ==
                        (c.num_traces + c.shard_size - 1) / c.shard_size,
                "corpus manifest must carry a resolved, consistent shard "
                "layout");
  ByteWriter header;
  write_header(header, manifest_, version_);
  index_offset_ = header.offset();
  // Index placeholder, back-patched by finish().
  const std::size_t entry_words = version_ == kCorpusVersion1 ? 2 : 4;
  for (std::uint64_t s = 0; s < c.num_shards; ++s) {
    for (std::size_t w = 0; w < entry_words; ++w) header.u64(0);
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (!file_) {
    throw IoError(tmp_path_, "cannot open corpus file for writing");
  }
  write_raw(header.buffer().data(), header.buffer().size());
}

CorpusWriter::~CorpusWriter() {
  if (file_) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

void CorpusWriter::write_raw(const void* data, std::size_t size) {
  if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
    throw IoError(tmp_path_, "corpus write failed");
  }
  write_offset_ += size;
}

void CorpusWriter::append_shard(const std::uint8_t* pts,
                                const double* samples, std::size_t count) {
  SABLE_REQUIRE(!finished_, "corpus writer already finished");
  SABLE_REQUIRE(next_shard_ < manifest_.campaign.num_shards,
                "more shards appended than the corpus layout defines");
  SABLE_REQUIRE(count == layout_count(manifest_.campaign, next_shard_),
                "appended shard's trace count must match the canonical "
                "layout");
  static const char kZeros[8] = {};
  const std::uint64_t offset = write_offset_;
  std::uint64_t pt_bytes;
  std::uint64_t samp_bytes;
  if (manifest_.compression == kCorpusCompressionNone) {
    pt_bytes = count * manifest_.pt_stride;
    samp_bytes = count * manifest_.sample_width * sizeof(double);
    write_raw(pts, static_cast<std::size_t>(pt_bytes));
    write_raw(kZeros, static_cast<std::size_t>(pad8(pt_bytes) - pt_bytes));
    write_raw(samples, static_cast<std::size_t>(samp_bytes));
  } else {
    encoded_.clear();
    pt_bytes = corpus_encode_plaintexts(
        pts, count, static_cast<std::size_t>(manifest_.pt_stride), scratch_,
        encoded_);
    write_raw(encoded_.data(), encoded_.size());
    write_raw(kZeros, static_cast<std::size_t>(pad8(pt_bytes) - pt_bytes));
    encoded_.clear();
    samp_bytes = corpus_encode_samples(
        samples, count, static_cast<std::size_t>(manifest_.sample_width),
        scratch_, encoded_);
    write_raw(encoded_.data(), encoded_.size());
    write_raw(kZeros, static_cast<std::size_t>(pad8(samp_bytes) - samp_bytes));
  }
  index_.push_back(offset);
  index_.push_back(count);
  if (version_ >= kCorpusVersion2) {
    index_.push_back(pt_bytes);
    index_.push_back(samp_bytes);
  }
  ++next_shard_;
}

void CorpusWriter::finish() {
  SABLE_REQUIRE(!finished_, "corpus writer already finished");
  SABLE_REQUIRE(next_shard_ == manifest_.campaign.num_shards,
                "corpus finish() requires every canonical shard appended");
  ByteWriter index;
  for (std::uint64_t v : index_) index.u64(v);
  if (std::fseek(file_, static_cast<long>(index_offset_), SEEK_SET) != 0 ||
      std::fwrite(index.buffer().data(), 1, index.buffer().size(), file_) !=
          index.buffer().size() ||
      std::fflush(file_) != 0) {
    throw IoError(tmp_path_, "corpus index write failed");
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    throw IoError(tmp_path_, "corpus close failed");
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw IoError(path_, "cannot publish corpus file (rename failed)");
  }
  finished_ = true;
}

CorpusReader::CorpusReader(const std::string& path) : file_(path) {
  ByteReader reader(file_);
  char magic[8];
  reader.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kCorpusMagic, sizeof(magic)) != 0) {
    throw BadFileError(path, "not a sable corpus file (bad magic)");
  }
  version_ = reader.u32();
  if (version_ != kCorpusVersion1 && version_ != kCorpusVersion2) {
    throw BadFileError(path, "unsupported corpus format version " +
                                 std::to_string(version_));
  }
  manifest_.kind = reader.u32();
  if (manifest_.kind != kCorpusKindScalar &&
      manifest_.kind != kCorpusKindSampled) {
    throw BadFileError(path, "corpus trace kind is neither scalar nor "
                             "sampled");
  }
  manifest_.compression =
      version_ >= kCorpusVersion2 ? reader.u32() : kCorpusCompressionNone;
  if (manifest_.compression != kCorpusCompressionNone &&
      manifest_.compression != kCorpusCompressionDeltaPlaneRle) {
    throw BadFileError(path, "corpus carries an unknown compression tag");
  }
  manifest_.campaign.load(reader);
  manifest_.pt_stride = reader.u64();
  manifest_.sample_width = reader.u64();
  reader.skip((8 - reader.offset() % 8) % 8);

  const CampaignManifest& c = manifest_.campaign;
  if (manifest_.pt_stride < 1 || manifest_.pt_stride > kMaxPtStride ||
      manifest_.sample_width < 1 || manifest_.sample_width > kMaxSampleWidth ||
      c.num_traces < 1 || c.shard_size < 1 || c.shard_size > kMaxShardSize ||
      c.num_shards != (c.num_traces + c.shard_size - 1) / c.shard_size) {
    throw BadFileError(path, "corpus header carries an inconsistent shard "
                             "layout");
  }
  const std::size_t entry_bytes = version_ == kCorpusVersion1 ? 16 : 32;
  if (c.num_shards > reader.remaining() / entry_bytes) {
    throw FileTruncatedError(path, "corpus shard index runs past the end of "
                                   "the file");
  }
  shards_.reserve(static_cast<std::size_t>(c.num_shards));
  for (std::uint64_t s = 0; s < c.num_shards; ++s) {
    Shard shard;
    shard.offset = reader.u64();
    shard.count = reader.u64();
    if (shard.count != layout_count(c, s)) {
      throw ShardIndexError(
          path, "corpus index entry " + std::to_string(s) +
                    " disagrees with the canonical shard layout");
    }
    const std::uint64_t raw_pt = shard.count * manifest_.pt_stride;
    const std::uint64_t raw_samp =
        shard.count * manifest_.sample_width * sizeof(double);
    if (version_ == kCorpusVersion1) {
      shard.pt_bytes = raw_pt;
      shard.samp_bytes = raw_samp;
    } else {
      shard.pt_bytes = reader.u64();
      shard.samp_bytes = reader.u64();
    }
    if (manifest_.compression == kCorpusCompressionNone &&
        (shard.pt_bytes != raw_pt || shard.samp_bytes != raw_samp)) {
      throw ShardIndexError(
          path, "corpus index entry " + std::to_string(s) +
                    " disagrees with the raw chunk sizes its layout implies");
    }
    // Decoding allocates the raw size; bound it before any decode does.
    if (raw_pt + raw_samp > kMaxShardDecodedBytes) {
      throw BadFileError(path, "corpus shard " + std::to_string(s) +
                                   " would decode past the per-shard size "
                                   "ceiling");
    }
    if (shard.offset % 8 != 0 || shard.offset > file_.size() ||
        shard.pt_bytes > file_.size() || shard.samp_bytes > file_.size() ||
        pad8(shard.pt_bytes) + pad8(shard.samp_bytes) >
            file_.size() - shard.offset) {
      throw ShardIndexError(path, "corpus index entry " + std::to_string(s) +
                                      " points outside the file");
    }
    shards_.push_back(shard);
  }
}

void CorpusReader::require_shard(std::size_t s) const {
  if (s >= shards_.size()) {
    throw ShardIndexError(path(), "shard " + std::to_string(s) +
                                      " is out of range for this corpus");
  }
}

std::size_t CorpusReader::shard_start(std::size_t s) const {
  require_shard(s);
  return static_cast<std::size_t>(s * manifest_.campaign.shard_size);
}

std::size_t CorpusReader::shard_count(std::size_t s) const {
  require_shard(s);
  return static_cast<std::size_t>(shards_[s].count);
}

const std::uint8_t* CorpusReader::shard_plaintexts(std::size_t s) const {
  require_shard(s);
  SABLE_REQUIRE(!compressed(),
                "compressed corpus chunks have no zero-copy raw form; use "
                "read_shard");
  return file_.data() + shards_[s].offset;
}

const double* CorpusReader::shard_samples(std::size_t s) const {
  require_shard(s);
  SABLE_REQUIRE(!compressed(),
                "compressed corpus chunks have no zero-copy raw form; use "
                "read_shard");
  return reinterpret_cast<const double*>(file_.data() + shards_[s].offset +
                                         pad8(shards_[s].pt_bytes));
}

CorpusShardView CorpusReader::read_shard(std::size_t s,
                                         CorpusDecodeScratch& scratch) const {
  require_shard(s);
  CorpusShardView view;
  view.count = static_cast<std::size_t>(shards_[s].count);
  if (!compressed()) {
    view.pts = file_.data() + shards_[s].offset;
    view.samples = reinterpret_cast<const double*>(
        file_.data() + shards_[s].offset + pad8(shards_[s].pt_bytes));
    return view;
  }
  decode_shard_into(s, scratch.codec, scratch.pts, scratch.samples);
  view.pts = scratch.pts.data();
  view.samples = scratch.samples.data();
  return view;
}

void CorpusReader::decode_shard_into(std::size_t s, CodecScratch& codec,
                                     std::vector<std::uint8_t>& pts,
                                     std::vector<double>& samples) const {
  require_shard(s);
  SABLE_REQUIRE(compressed(), "decode_shard_into requires a compressed "
                              "corpus");
  const Shard& shard = shards_[s];
  const std::size_t count = static_cast<std::size_t>(shard.count);
  const std::size_t stride = static_cast<std::size_t>(manifest_.pt_stride);
  const std::size_t width = static_cast<std::size_t>(manifest_.sample_width);
  pts.resize(count * stride);
  samples.resize(count * width);
  ByteReader pt_in(file_.data() + shard.offset,
                   static_cast<std::size_t>(shard.pt_bytes), path());
  corpus_decode_plaintexts(pt_in, count, stride, codec, pts.data());
  ByteReader samp_in(file_.data() + shard.offset + pad8(shard.pt_bytes),
                     static_cast<std::size_t>(shard.samp_bytes), path());
  corpus_decode_samples(samp_in, count, width, codec, samples.data());
}

std::uint64_t CorpusReader::shard_stored_bytes(std::size_t s) const {
  require_shard(s);
  return shards_[s].pt_bytes + shards_[s].samp_bytes;
}

std::uint64_t CorpusReader::shard_raw_bytes(std::size_t s) const {
  require_shard(s);
  return shards_[s].count *
         (manifest_.pt_stride + manifest_.sample_width * sizeof(double));
}

}  // namespace sable
