// Reduced ordered binary decision diagrams (ROBDDs).
//
// The exhaustive checkers in src/core enumerate all 2^n complementary
// inputs — complete and honest for gate-sized n, but not for wide complex
// gates (an AES S-box output bit has n = 8, a whole substitution layer
// more). This module provides the standard symbolic alternative: canonical
// BDDs with a unique table and memoized apply, so functional equality is
// pointer equality and the §3 full-connectivity condition becomes a
// tautology check (see bdd/symbolic.hpp).
//
// Variable order is the natural VarId order; the networks this library
// builds are small enough that reordering is unnecessary.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "expr/expression.hpp"

namespace sable {

/// Handle to a BDD node. 0 and 1 are the terminal constants.
using BddRef = std::uint32_t;

class BddManager {
 public:
  explicit BddManager(std::size_t num_vars);

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  std::size_t num_vars() const { return num_vars_; }

  /// The function "variable v".
  BddRef var(VarId v);
  /// The function "not variable v".
  BddRef nvar(VarId v);

  BddRef apply_and(BddRef a, BddRef b);
  BddRef apply_or(BddRef a, BddRef b);
  BddRef apply_xor(BddRef a, BddRef b);
  BddRef negate(BddRef a);
  /// If-then-else: f ? g : h — the universal connective.
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Builds the BDD of an expression (any form; negations handled).
  BddRef from_expr(const ExprPtr& e);

  /// Fraction of the 2^num_vars assignments satisfying `f` (exact).
  double sat_fraction(BddRef f);

  /// One satisfying assignment of `f`; only valid when f != kFalse.
  std::uint64_t any_sat(BddRef f) const;

  /// Evaluates `f` under an assignment (bit k of `assignment` = var k).
  bool evaluate(BddRef f, std::uint64_t assignment) const;

  /// Number of live nodes (terminals included) — a size/health metric.
  std::size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t var;
    BddRef low;
    BddRef high;
  };

  BddRef make(std::uint32_t var, BddRef low, BddRef high);
  std::uint32_t top_var(BddRef a, BddRef b, BddRef c) const;
  BddRef cofactor(BddRef f, std::uint32_t var, bool value) const;

  std::size_t num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, BddRef> unique_;
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t x = (std::uint64_t{k.f} << 42) ^ (std::uint64_t{k.g} << 21) ^
                        k.h;
      x ^= x >> 33;
      x *= 0xff51afd7ed558ccdULL;
      x ^= x >> 33;
      return static_cast<std::size_t>(x);
    }
  };
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
  std::unordered_map<BddRef, double> count_cache_;
};

}  // namespace sable
