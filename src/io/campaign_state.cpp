#include "io/campaign_state.hpp"

#include <algorithm>
#include <cstring>

#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

constexpr char kStateMagic[8] = {'S', 'A', 'B', 'L', 'S', 'T', 'A', 'T'};
constexpr std::uint32_t kStateVersion = 1;

}  // namespace

void save_campaign_state(const std::string& path,
                         const CampaignManifest& manifest,
                         const ShardStates& states) {
  SABLE_REQUIRE(!states.empty(), "campaign state needs at least one "
                                 "distinguisher");
  const std::size_t num_shards = states[0].size();
  SABLE_REQUIRE(num_shards == manifest.num_shards,
                "shard-state matrix must span the manifest's shard count");
  std::vector<std::size_t> covered;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (states[0][s]) covered.push_back(s);
  }
  ByteWriter writer;
  writer.bytes(kStateMagic, sizeof(kStateMagic));
  writer.u32(kStateVersion);
  manifest.save(writer);
  writer.u64(states.size());
  writer.u64(covered.size());
  for (std::size_t s : covered) writer.u64(s);
  for (std::size_t s : covered) {
    for (std::size_t d = 0; d < states.size(); ++d) {
      SABLE_REQUIRE(states[d].size() == num_shards && states[d][s] != nullptr,
                    "distinguishers disagree on which shards are covered");
      const std::size_t len_at = writer.offset();
      writer.u64(0);  // blob length, patched below
      const std::size_t begin = writer.offset();
      states[d][s]->save(writer);
      writer.patch_u64(len_at, writer.offset() - begin);
    }
  }
  writer.write_file(path);
}

std::size_t load_campaign_state(
    const std::string& path, const CampaignManifest& expected,
    std::span<Distinguisher* const> distinguishers, ShardStates& states) {
  MappedFile file(path);
  ByteReader reader(file);
  char magic[8];
  reader.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kStateMagic, sizeof(magic)) != 0) {
    throw BadFileError(path, "not a sable campaign-state file (bad magic)");
  }
  const std::uint32_t version = reader.u32();
  if (version != kStateVersion) {
    throw BadFileError(path, "unsupported campaign-state format version " +
                                 std::to_string(version));
  }
  CampaignManifest actual;
  actual.load(reader);
  require_manifest_match(path, expected, actual);
  const std::uint64_t num_ds = reader.u64();
  if (num_ds != distinguishers.size()) {
    throw BadFileError(
        path, "campaign state was written for " + std::to_string(num_ds) +
                  " distinguishers, not the " +
                  std::to_string(distinguishers.size()) + " being run");
  }
  SABLE_REQUIRE(states.size() == distinguishers.size(),
                "shard-state matrix must match the distinguisher list");
  const std::uint64_t covered_count = reader.checked_count(8);
  std::vector<std::size_t> covered;
  covered.reserve(covered_count);
  for (std::uint64_t i = 0; i < covered_count; ++i) {
    const std::uint64_t s = reader.u64();
    if (s >= expected.num_shards) {
      throw ShardIndexError(path, "covered shard " + std::to_string(s) +
                                      " is out of range for the campaign");
    }
    if (i > 0 && s <= covered.back()) {
      throw BadFileError(path, "covered shard list is not strictly "
                               "ascending");
    }
    covered.push_back(static_cast<std::size_t>(s));
  }
  for (std::size_t s : covered) {
    for (std::size_t d = 0; d < distinguishers.size(); ++d) {
      SABLE_REQUIRE(states[d].size() == expected.num_shards,
                    "shard-state matrix must span the campaign's shards");
      if (states[d][s]) {
        throw ShardIndexError(
            path, "shard " + std::to_string(s) +
                      " is covered twice (overlapping partial states)");
      }
      const std::uint64_t blob_len = reader.checked_count(1);
      ByteReader blob(reader.view(static_cast<std::size_t>(blob_len)),
                      static_cast<std::size_t>(blob_len), path);
      auto acc = distinguishers[d]->make_shard_accumulator();
      try {
        acc->load(blob);
      } catch (const IoError&) {
        throw;
      } catch (const Error& e) {
        // The accumulators' tagged loads throw InvalidArgument on
        // type/config mismatch; surface it as a typed, path-tagged error.
        throw BadFileError(path, std::string("corrupt accumulator blob for "
                                             "shard ") +
                                     std::to_string(s) + ": " + e.what());
      }
      if (blob.remaining() != 0) {
        throw BadFileError(path, "accumulator blob for shard " +
                                     std::to_string(s) +
                                     " has trailing bytes");
      }
      states[d][s] = std::move(acc);
    }
  }
  return covered.size();
}

bool run_persisted_waves(
    const CampaignManifest& manifest,
    std::span<Distinguisher* const> distinguishers, ShardStates& states,
    const CampaignPersistence& persist,
    const std::function<void(const std::vector<std::size_t>&)>& accumulate) {
  const std::size_t num_shards = static_cast<std::size_t>(manifest.num_shards);
  SABLE_REQUIRE(!states.empty() && states[0].size() == num_shards,
                "shard-state matrix must span the campaign's shards");
  if (!persist.resume_path.empty()) {
    load_campaign_state(persist.resume_path, manifest, distinguishers,
                        states);
  }
  SABLE_REQUIRE(persist.shard_begin <= persist.shard_end,
                "campaign shard range is reversed");
  SABLE_REQUIRE(persist.shard_begin <= num_shards,
                "campaign shard range starts past the campaign");
  const std::size_t end = std::min(persist.shard_end, num_shards);
  std::vector<std::size_t> work;
  for (std::size_t s = persist.shard_begin; s < end; ++s) {
    if (!states[0][s]) work.push_back(s);
  }
  const std::size_t wave =
      persist.checkpoint_every_shards == 0 ? std::max<std::size_t>(1, work.size())
                                           : persist.checkpoint_every_shards;
  for (std::size_t done = 0; done < work.size(); done += wave) {
    const std::vector<std::size_t> chunk(
        work.begin() + static_cast<std::ptrdiff_t>(done),
        work.begin() +
            static_cast<std::ptrdiff_t>(std::min(done + wave, work.size())));
    accumulate(chunk);
    if (!persist.checkpoint_path.empty()) {
      save_campaign_state(persist.checkpoint_path, manifest, states);
    }
  }
  std::size_t covered = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    if (states[0][s]) ++covered;
  }
  if (covered == num_shards) return true;
  // A partial run that was never persisted is lost work — refuse it
  // unless the caller asked for a checkpoint somewhere.
  SABLE_REQUIRE(!persist.checkpoint_path.empty(),
                "partial campaign range needs a checkpoint path to persist "
                "its shard states");
  if (work.empty()) {
    // Nothing new was accumulated (e.g. pure range-split bookkeeping);
    // still publish the state so the invocation has an artifact.
    save_campaign_state(persist.checkpoint_path, manifest, states);
  }
  return false;
}

}  // namespace sable
