// AVX-512 instantiations of every batch kernel; the Word512 sibling of
// kernels_avx2.cpp — see that file and util/lane_word.hpp for the
// multi-ISA rules (portable pre-includes, impl headers inside the target
// region, runtime selection via util/cpu_dispatch.hpp) and for the
// corpus codec's reuse of the dispatched 64×64 transpose.
#include "util/lane_word.hpp"

#if SABLE_HAVE_WORD512

#include <algorithm>
#include <bit>
#include <cstring>

#include "cell/builder.hpp"
#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "crypto/round_target.hpp"
#include "dpa/block_stats.hpp"
#include "expr/factoring.hpp"
#include "expr/truth_table.hpp"
#include "netlist/conduction.hpp"
#include "switchsim/cycle_sim.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/error.hpp"

#pragma GCC push_options
#pragma GCC target("avx512f")

#include "cell/circuit_sim_impl.hpp"
#include "cell/wddl_impl.hpp"
#include "crypto/round_target_impl.hpp"
#include "dpa/block_stats_impl.hpp"
#include "netlist/conduction_impl.hpp"
#include "switchsim/cycle_sim_impl.hpp"

namespace sable {

SABLE_INSTANTIATE_CONDUCTION(::sable::Word512)
SABLE_INSTANTIATE_CYCLE_SIM(::sable::Word512)
SABLE_INSTANTIATE_CIRCUIT_SIM(::sable::Word512)
SABLE_INSTANTIATE_WDDL(::sable::Word512)
SABLE_INSTANTIATE_ROUND_TARGET(::sable::Word512)
SABLE_INSTANTIATE_WITH_LANE_WIDTH(::sable::Word512)

namespace detail {

// Tier 2: block-statistics bodies autovectorized for AVX-512F (results
// bit-identical to every other tier — see dpa/block_stats.hpp).
SABLE_INSTANTIATE_BLOCK_STATS(2)

}  // namespace detail

}  // namespace sable

#pragma GCC pop_options

#endif  // SABLE_HAVE_WORD512
