#include "bdd/bdd.hpp"

#include "util/error.hpp"

namespace sable {

namespace {
// Terminal marker: larger than any real variable so terminals sort last.
constexpr std::uint32_t kTerminalVar = 0xFFFFFFFFu;
}  // namespace

BddManager::BddManager(std::size_t num_vars) : num_vars_(num_vars) {
  SABLE_REQUIRE(num_vars <= 61, "BddManager supports at most 61 variables");
  nodes_.push_back(Node{kTerminalVar, kFalse, kFalse});  // 0
  nodes_.push_back(Node{kTerminalVar, kTrue, kTrue});    // 1
}

BddRef BddManager::make(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  SABLE_ASSERT(low < (1u << 24) && high < (1u << 24),
               "BDD exceeded 16M nodes");
  const std::uint64_t key =
      (std::uint64_t{var} << 48) | (std::uint64_t{low} << 24) | high;
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back(Node{var, low, high});
  const BddRef ref = static_cast<BddRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::var(VarId v) {
  SABLE_REQUIRE(v < num_vars_, "BDD variable out of range");
  return make(v, kFalse, kTrue);
}

BddRef BddManager::nvar(VarId v) {
  SABLE_REQUIRE(v < num_vars_, "BDD variable out of range");
  return make(v, kTrue, kFalse);
}

std::uint32_t BddManager::top_var(BddRef a, BddRef b, BddRef c) const {
  std::uint32_t top = nodes_[a].var;
  if (nodes_[b].var < top) top = nodes_[b].var;
  if (nodes_[c].var < top) top = nodes_[c].var;
  return top;
}

BddRef BddManager::cofactor(BddRef f, std::uint32_t var, bool value) const {
  if (nodes_[f].var != var) return f;  // f does not test var at its root
  return value ? nodes_[f].high : nodes_[f].low;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t v = top_var(f, g, h);
  const BddRef low = ite(cofactor(f, v, false), cofactor(g, v, false),
                         cofactor(h, v, false));
  const BddRef high = ite(cofactor(f, v, true), cofactor(g, v, true),
                          cofactor(h, v, true));
  const BddRef result = make(v, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::apply_and(BddRef a, BddRef b) { return ite(a, b, kFalse); }
BddRef BddManager::apply_or(BddRef a, BddRef b) { return ite(a, kTrue, b); }
BddRef BddManager::apply_xor(BddRef a, BddRef b) {
  return ite(a, negate(b), b);
}
BddRef BddManager::negate(BddRef a) { return ite(a, kFalse, kTrue); }

BddRef BddManager::from_expr(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      return kFalse;
    case ExprKind::kConst1:
      return kTrue;
    case ExprKind::kVar:
      return var(e->var());
    case ExprKind::kNot:
      return negate(from_expr(e->operands()[0]));
    case ExprKind::kAnd: {
      BddRef acc = kTrue;
      for (const auto& op : e->operands()) {
        acc = apply_and(acc, from_expr(op));
      }
      return acc;
    }
    case ExprKind::kOr: {
      BddRef acc = kFalse;
      for (const auto& op : e->operands()) {
        acc = apply_or(acc, from_expr(op));
      }
      return acc;
    }
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

double BddManager::sat_fraction(BddRef f) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  const auto it = count_cache_.find(f);
  if (it != count_cache_.end()) return it->second;
  // Each branch covers half the assignment space of the tested variable;
  // skipped variables contribute factor 1 on both sides automatically with
  // this fraction formulation.
  const double result = 0.5 * sat_fraction(nodes_[f].low) +
                        0.5 * sat_fraction(nodes_[f].high);
  count_cache_.emplace(f, result);
  return result;
}

std::uint64_t BddManager::any_sat(BddRef f) const {
  SABLE_REQUIRE(f != kFalse, "any_sat of the constant-false function");
  std::uint64_t assignment = 0;
  while (f != kTrue) {
    const Node& n = nodes_[f];
    if (n.high != kFalse) {
      assignment |= std::uint64_t{1} << n.var;
      f = n.high;
    } else {
      f = n.low;
    }
  }
  return assignment;
}

bool BddManager::evaluate(BddRef f, std::uint64_t assignment) const {
  while (f != kFalse && f != kTrue) {
    const Node& n = nodes_[f];
    f = ((assignment >> n.var) & 1u) ? n.high : n.low;
  }
  return f == kTrue;
}

}  // namespace sable
