// Tests for the mini-SPICE engine: linear algebra, waveforms, the level-1
// MOSFET model, DC operating points and transient analysis, each checked
// against closed-form circuit theory.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/measure.hpp"
#include "spice/mosfet.hpp"
#include "spice/sources.hpp"
#include "spice/transient.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace sable::spice {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(MatrixTest, SolvesLinearSystem) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  std::vector<double> b = {5.0, 10.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(MatrixTest, DetectsSingularity) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(MatrixTest, SolvesWithPivoting) {
  // Zero on the initial diagonal requires row exchange.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  std::vector<double> b = {3.0, 7.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 7.0, 1e-12);
  EXPECT_NEAR(b[1], 3.0, 1e-12);
}

TEST(WaveformTest, DcAndPwl) {
  EXPECT_EQ(Waveform::dc(1.8).at(123.0), 1.8);
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_NEAR(w.at(0.5), 1.0, 1e-12);
  EXPECT_NEAR(w.at(2.0), 2.0, 1e-12);
  EXPECT_NEAR(w.at(10.0), 2.0, 1e-12);  // holds last value
  EXPECT_THROW(Waveform::pwl({{1.0, 0.0}, {1.0, 1.0}}), InvalidArgument);
}

TEST(WaveformTest, PulsePeriodicity) {
  const Waveform clk = Waveform::pulse(0.0, 1.8, 0.0, 0.1, 0.1, 0.8, 2.0);
  EXPECT_NEAR(clk.at(0.05), 0.9, 1e-9);   // mid-rise
  EXPECT_NEAR(clk.at(0.5), 1.8, 1e-12);   // high
  EXPECT_NEAR(clk.at(1.5), 0.0, 1e-12);   // low
  EXPECT_NEAR(clk.at(2.5), 1.8, 1e-12);   // next period
}

TEST(MosfetTest, CutoffTriodeSaturationRegions) {
  const auto& p = kTech.nmos;
  const double w = 1e-6;
  const double l = 0.18e-6;
  // Cut-off.
  EXPECT_EQ(mos_linearize(MosType::kNmos, p, 1.8, 0.0, 0.0, w, l).id, 0.0);
  // Saturation: vds > vgs - vt.
  const auto sat = mos_linearize(MosType::kNmos, p, 1.8, 1.0, 0.0, w, l);
  const double vov = 1.0 - p.vt0;
  const double expected_sat =
      0.5 * p.kp * (w / l) * vov * vov * (1.0 + p.lambda * 1.8);
  EXPECT_NEAR(sat.id, expected_sat, expected_sat * 1e-9);
  // Triode: small vds.
  const auto tri = mos_linearize(MosType::kNmos, p, 0.05, 1.8, 0.0, w, l);
  EXPECT_GT(tri.id, 0.0);
  EXPECT_LT(tri.id, sat.id);
}

TEST(MosfetTest, SourceDrainSymmetry) {
  const auto& p = kTech.nmos;
  // Swapping drain and source negates the current.
  const auto fwd = mos_linearize(MosType::kNmos, p, 1.0, 1.8, 0.0, 1e-6,
                                 0.18e-6);
  const auto rev = mos_linearize(MosType::kNmos, p, 0.0, 1.8, 1.0, 1e-6,
                                 0.18e-6);
  EXPECT_NEAR(fwd.id, -rev.id, std::fabs(fwd.id) * 1e-12);
}

TEST(MosfetTest, PmosMirrorsNmos) {
  const auto& p = kTech.pmos;
  // PMOS with source at vdd, gate at 0: conducting, current flows source
  // to drain, so id (drain->source) is negative.
  const auto on = mos_linearize(MosType::kPmos, p, 0.0, 0.0, 1.8, 1e-6,
                                0.18e-6);
  EXPECT_LT(on.id, 0.0);
  // Gate at vdd: off.
  const auto off = mos_linearize(MosType::kPmos, p, 0.0, 1.8, 1.8, 1e-6,
                                 0.18e-6);
  EXPECT_EQ(off.id, 0.0);
}

TEST(MosfetTest, ContinuityAtRegionBoundary) {
  const auto& p = kTech.nmos;
  const double vov = 1.2 - p.vt0;
  const auto below = mos_linearize(MosType::kNmos, p, vov - 1e-9, 1.2, 0.0,
                                   1e-6, 0.18e-6);
  const auto above = mos_linearize(MosType::kNmos, p, vov + 1e-9, 1.2, 0.0,
                                   1e-6, 0.18e-6);
  EXPECT_NEAR(below.id, above.id, std::fabs(above.id) * 1e-6);
}

TEST(DcTest, ResistiveDivider) {
  Circuit ckt;
  ckt.add_vsource("vin", "in", "0", Waveform::dc(2.0));
  ckt.add_resistor("in", "mid", 1000.0);
  ckt.add_resistor("mid", "0", 1000.0);
  const DcResult dc = dc_operating_point(ckt);
  ASSERT_TRUE(dc.converged);
  EXPECT_NEAR(dc.node_voltage[ckt.find_node("mid")], 1.0, 1e-6);
  // Source delivers 1 mA; branch current flows into the + terminal.
  EXPECT_NEAR(dc.source_current[0], -1e-3, 1e-9);
}

TEST(DcTest, CmosInverterTransferPoints) {
  Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", Waveform::dc(kTech.vdd));
  ckt.add_vsource("vin", "in", "0", Waveform::dc(0.0));
  ckt.add_mosfet("mp", MosType::kPmos, "out", "in", "vdd", kTech.pmos, 2e-6,
                 0.18e-6);
  ckt.add_mosfet("mn", MosType::kNmos, "out", "in", "0", kTech.nmos, 1e-6,
                 0.18e-6);
  const DcResult low_in = dc_operating_point(ckt);
  ASSERT_TRUE(low_in.converged);
  EXPECT_GT(low_in.node_voltage[ckt.find_node("out")], kTech.vdd - 0.05);

  Circuit ckt_high;
  ckt_high.add_vsource("vdd", "vdd", "0", Waveform::dc(kTech.vdd));
  ckt_high.add_vsource("vin", "in", "0", Waveform::dc(kTech.vdd));
  ckt_high.add_mosfet("mp", MosType::kPmos, "out", "in", "vdd", kTech.pmos,
                      2e-6, 0.18e-6);
  ckt_high.add_mosfet("mn", MosType::kNmos, "out", "in", "0", kTech.nmos,
                      1e-6, 0.18e-6);
  const DcResult high_in = dc_operating_point(ckt_high);
  ASSERT_TRUE(high_in.converged);
  EXPECT_LT(high_in.node_voltage[ckt_high.find_node("out")], 0.05);
}

TEST(TransientTest, RcChargingMatchesAnalyticSolution) {
  // R = 1k, C = 1pF, step to 1V at t=0: v(t) = 1 - exp(-t/RC).
  Circuit ckt;
  ckt.add_vsource("vin", "in", "0", Waveform::dc(1.0));
  ckt.add_resistor("in", "out", 1000.0);
  ckt.add_capacitor("out", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 5e-9;
  opt.dt = 1e-12;
  const TranResult res = run_transient(ckt, opt);
  const double tau = 1e-9;
  for (double t : {1e-9, 2e-9, 4e-9}) {
    const std::size_t k = res.sample_at(t);
    const double expected = 1.0 - std::exp(-res.time[k] / tau);
    EXPECT_NEAR(res.v("out")[k], expected, 2e-3) << "t = " << t;
  }
}

TEST(TransientTest, ChargeConservationThroughSupply) {
  // Charging a 1 pF cap to 1 V draws q = CV from the source.
  Circuit ckt;
  ckt.add_vsource("vin", "in", "0", Waveform::dc(1.0));
  ckt.add_resistor("in", "out", 100.0);
  ckt.add_capacitor("out", "0", 1e-12);
  TransientOptions opt;
  opt.t_stop = 3e-9;
  opt.dt = 1e-12;
  const TranResult res = run_transient(ckt, opt);
  const double q = delivered_charge(res, "vin", 0.0, 3e-9);
  EXPECT_NEAR(q, 1e-12, 2e-14);
}

TEST(TransientTest, InverterSwitchesWithPulseInput) {
  Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", Waveform::dc(kTech.vdd));
  ckt.add_vsource("vin", "in", "0",
                  Waveform::pulse(0.0, kTech.vdd, 0.2e-9, 50e-12, 50e-12,
                                  0.8e-9, 2e-9));
  ckt.add_mosfet("mp", MosType::kPmos, "out", "in", "vdd", kTech.pmos, 2e-6,
                 0.18e-6);
  ckt.add_mosfet("mn", MosType::kNmos, "out", "in", "0", kTech.nmos, 1e-6,
                 0.18e-6);
  ckt.add_capacitor("out", "0", 5e-15);
  TransientOptions opt;
  opt.t_stop = 2e-9;
  opt.dt = 2e-12;
  opt.initial_voltages["out"] = kTech.vdd;
  const TranResult res = run_transient(ckt, opt);
  // Input high at 0.7 ns -> output low; input low again at 1.5 ns -> high.
  EXPECT_LT(res.v("out")[res.sample_at(0.9e-9)], 0.1);
  EXPECT_GT(res.v("out")[res.sample_at(1.9e-9)], kTech.vdd - 0.1);
}

TEST(TransientTest, RingOscillatorOscillates) {
  // Three-stage ring oscillator: self-sustained oscillation checks the
  // Newton loop through repeated full-swing nonlinear transitions.
  Circuit ckt;
  ckt.add_vsource("vdd", "vdd", "0", Waveform::dc(kTech.vdd));
  const char* nodes[] = {"n1", "n2", "n3"};
  for (int i = 0; i < 3; ++i) {
    const std::string in = nodes[i];
    const std::string out = nodes[(i + 1) % 3];
    ckt.add_mosfet("mp" + std::to_string(i), MosType::kPmos, out, in, "vdd",
                   kTech.pmos, 2e-6, 0.18e-6);
    ckt.add_mosfet("mn" + std::to_string(i), MosType::kNmos, out, in, "0",
                   kTech.nmos, 1e-6, 0.18e-6);
    ckt.add_capacitor(out, "0", 10e-15);
  }
  TransientOptions opt;
  opt.t_stop = 4e-9;
  opt.dt = 2e-12;
  opt.initial_voltages["n1"] = kTech.vdd;  // break the symmetry
  const TranResult res = run_transient(ckt, opt);
  // Count zero crossings of n1 around vdd/2 in the second half.
  const auto& v = res.v("n1");
  int crossings = 0;
  for (std::size_t k = res.sample_at(1e-9) + 1; k < v.size(); ++k) {
    const double mid = kTech.vdd / 2;
    if ((v[k - 1] - mid) * (v[k] - mid) < 0.0) ++crossings;
  }
  EXPECT_GE(crossings, 3) << "ring oscillator failed to oscillate";
}

TEST(TransientTest, RejectsBadOptions) {
  Circuit ckt;
  ckt.add_vsource("v", "a", "0", Waveform::dc(1.0));
  TransientOptions opt;
  opt.t_stop = 0.0;
  EXPECT_THROW(run_transient(ckt, opt), InvalidArgument);
}

TEST(MeasureTest, IntegrateConstant) {
  const std::vector<double> t = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {2.0, 2.0, 2.0, 2.0};
  EXPECT_NEAR(integrate(t, y, 0.0, 3.0), 6.0, 1e-12);
  EXPECT_NEAR(integrate(t, y, 0.5, 1.5), 2.0, 1e-12);
}

}  // namespace
}  // namespace sable::spice
