// Transistor-level representation of a differential pull-down network.
//
// A DPDN (Fig. 1 of the paper) is a network of NMOS switches between three
// external nodes:
//   X — the "true" module output  (pulled down when f = 1),
//   Y — the "false" module output (pulled down when f' = 1),
//   Z — the common node above the clocked foot transistor.
// Every other node is internal. Each switch is gated by a literal (an input
// signal or its complement); a pass gate (§5) is the parallel pair of
// switches gated by both polarities of the same signal, always conducting
// under a complementary input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/expression.hpp"

namespace sable {

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t { kX, kY, kZ, kInternal };

/// A signal literal: input variable `var`, true or complemented polarity.
struct SignalLiteral {
  VarId var = 0;
  bool positive = true;

  /// True when the switch gated by this literal conducts under `assignment`
  /// (bit k of `assignment` is the value of variable k).
  bool conducts(std::uint64_t assignment) const {
    const bool bit = (assignment >> var) & 1u;
    return bit == positive;
  }
  bool operator==(const SignalLiteral&) const = default;
};

/// Why a device is in the network: a logic switch realizes a literal of the
/// implemented function; a pass-gate half is one of the two dummy devices
/// inserted by the §5 enhancement.
enum class DeviceRole : std::uint8_t { kLogic, kPassGateHalf };

/// One NMOS switch between nodes `a` and `b`, gated by `gate`.
struct Switch {
  SignalLiteral gate;
  NodeId a = 0;
  NodeId b = 0;
  DeviceRole role = DeviceRole::kLogic;

  NodeId other(NodeId n) const { return n == a ? b : a; }
  bool touches(NodeId n) const { return a == n || b == n; }
};

/// Flat device-list network with the three fixed external nodes.
class DpdnNetwork {
 public:
  static constexpr NodeId kNodeX = 0;
  static constexpr NodeId kNodeY = 1;
  static constexpr NodeId kNodeZ = 2;

  /// Creates an empty network over input variables [0, num_vars).
  explicit DpdnNetwork(std::size_t num_vars);

  std::size_t num_vars() const { return num_vars_; }

  /// Adds an internal node; `name` defaults to "W<k>".
  NodeId add_internal_node(std::string name = {});

  /// Adds one switch. Node ids must exist; self-loops are rejected.
  void add_switch(SignalLiteral gate, NodeId a, NodeId b,
                  DeviceRole role = DeviceRole::kLogic);

  /// Adds the two parallel devices of a pass gate on signal `var`.
  void add_pass_gate(VarId var, NodeId a, NodeId b);

  std::size_t node_count() const { return names_.size(); }
  std::size_t internal_node_count() const { return names_.size() - 3; }
  const std::vector<Switch>& devices() const { return devices_; }
  std::size_t device_count() const { return devices_.size(); }
  /// Number of §5 dummy devices (each pass gate contributes two).
  std::size_t pass_gate_device_count() const;

  NodeKind node_kind(NodeId n) const;
  const std::string& node_name(NodeId n) const;
  bool is_external(NodeId n) const { return n <= kNodeZ; }

  /// All internal node ids.
  std::vector<NodeId> internal_nodes() const;

  /// Devices incident to each node (index = NodeId), built on demand.
  std::vector<std::vector<std::size_t>> adjacency() const;

  /// Human-readable netlist, one device per line.
  std::string to_string(const VarTable& vars) const;

 private:
  std::size_t num_vars_;
  std::vector<std::string> names_;  // [0]=X, [1]=Y, [2]=Z, then internals
  std::vector<Switch> devices_;
};

}  // namespace sable
