#include "io/codec.hpp"

#include <cstring>
#include <unordered_map>

#include "io/serial.hpp"
#include "switchsim/cycle_sim.hpp"

namespace sable {

namespace {

// Runs shorter than this are cheaper as part of a literal: a run token
// costs 2 bytes (varint + byte) plus up to 2 bytes of literal framing
// around it.
constexpr std::size_t kMinRun = 4;

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(ByteReader& in) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    const std::uint8_t b = in.u8();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
  }
  throw BadFileError(in.path(), "corpus chunk varint is longer than 64 bits");
}

// Byte-level RLE over `data`: alternating literal and run tokens, each a
// varint (len << 1) | is_literal. The encoder never emits a zero-length
// token, and runs only at kMinRun or more equal bytes.
void rle_encode(const std::uint8_t* data, std::size_t n,
                std::vector<std::uint8_t>& out) {
  std::size_t lit_start = 0;
  std::size_t i = 0;
  const auto flush_literal = [&](std::size_t end) {
    if (end == lit_start) return;
    put_varint(out, (static_cast<std::uint64_t>(end - lit_start) << 1) | 1);
    out.insert(out.end(), data + lit_start, data + end);
  };
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && data[j] == data[i]) ++j;
    if (j - i >= kMinRun) {
      flush_literal(i);
      put_varint(out, static_cast<std::uint64_t>(j - i) << 1);
      out.push_back(data[i]);
      lit_start = j;
    }
    i = j;
  }
  flush_literal(n);
}

// Decodes exactly `n` bytes into `out` and requires the reader to be
// fully consumed — the caller hands a reader spanning exactly the stored
// stream, so both a short and an over-long token stream are corruption.
void rle_decode(ByteReader& in, std::uint8_t* out, std::size_t n) {
  std::size_t o = 0;
  while (o < n) {
    const std::uint64_t token = get_varint(in);
    const std::uint64_t len = token >> 1;
    if (len == 0 || len > n - o) {
      throw BadFileError(in.path(),
                         "corpus chunk RLE token overflows its stream");
    }
    if (token & 1) {
      in.bytes(out + o, static_cast<std::size_t>(len));
    } else {
      std::memset(out + o, in.u8(), static_cast<std::size_t>(len));
    }
    o += static_cast<std::size_t>(len);
  }
  if (in.remaining() != 0) {
    throw BadFileError(in.path(),
                       "corpus chunk carries bytes past its RLE stream");
  }
}

}  // namespace

std::size_t corpus_encode_plaintexts(const std::uint8_t* pts,
                                     std::size_t count, std::size_t stride,
                                     CodecScratch& scratch,
                                     std::vector<std::uint8_t>& out) {
  // Byte-column-major reorder: byte k of every trace lands contiguously,
  // so constant pad/state bytes become shard-long runs.
  scratch.planes.resize(count * stride);
  for (std::size_t k = 0; k < stride; ++k) {
    std::uint8_t* col = scratch.planes.data() + k * count;
    for (std::size_t i = 0; i < count; ++i) col[i] = pts[i * stride + k];
  }
  const std::size_t before = out.size();
  rle_encode(scratch.planes.data(), scratch.planes.size(), out);
  return out.size() - before;
}

namespace {

constexpr std::uint8_t kSampleModeDeltaPlanes = 0;
constexpr std::uint8_t kSampleModeDictionary = 1;
constexpr std::size_t kMaxDictValues = 255;  // indices must fit a byte

void encode_delta_planes(const double* samples, std::size_t count,
                         std::size_t width, CodecScratch& scratch,
                         std::vector<std::uint8_t>& out) {
  const std::size_t m = count * width;
  const std::size_t blocks = (m + 63) / 64;
  scratch.words.assign(blocks * 64, 0);
  // Column-major XOR-delta: per level, consecutive traces' bit patterns.
  std::size_t k = 0;
  for (std::size_t l = 0; l < width; ++l) {
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t u;
      std::memcpy(&u, &samples[i * width + l], sizeof(u));
      scratch.words[k++] = u ^ prev;
      prev = u;
    }
  }
  bit_transpose_blocks(scratch.words.data(), blocks);
  // Plane-major byte image: plane v of every block contiguous.
  scratch.planes.resize(blocks * 64 * sizeof(std::uint64_t));
  for (std::size_t v = 0; v < 64; ++v) {
    for (std::size_t b = 0; b < blocks; ++b) {
      std::memcpy(scratch.planes.data() + (v * blocks + b) * 8,
                  &scratch.words[b * 64 + v], 8);
    }
  }
  rle_encode(scratch.planes.data(), scratch.planes.size(), out);
}

// Per-level dictionary attempt: false (and `out` meaningless) as soon as
// one level exceeds kMaxDictValues distinct bit patterns. Comparison is
// on bit patterns, not double values, so -0.0/0.0 and NaNs round-trip
// exactly like every other sample.
bool encode_dictionary(const double* samples, std::size_t count,
                       std::size_t width, CodecScratch& scratch,
                       std::vector<std::uint8_t>& out) {
  scratch.planes.resize(count * width);
  std::unordered_map<std::uint64_t, std::uint8_t> dict;
  for (std::size_t l = 0; l < width; ++l) {
    dict.clear();
    std::uint8_t* col = scratch.planes.data() + l * count;
    const std::size_t dict_start = out.size();
    put_varint(out, 0);  // patched below; a count < 128 stays one byte
    std::size_t distinct = 0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t u;
      std::memcpy(&u, &samples[i * width + l], sizeof(u));
      const auto [it, inserted] =
          dict.emplace(u, static_cast<std::uint8_t>(distinct));
      if (inserted) {
        if (distinct == kMaxDictValues) return false;
        ++distinct;
        const std::size_t at = out.size();
        out.resize(at + sizeof(u));
        std::memcpy(out.data() + at, &u, sizeof(u));
      }
      col[i] = it->second;
    }
    if (distinct < 128) {
      out[dict_start] = static_cast<std::uint8_t>(distinct);
    } else {
      // Two-byte varint: rewrite the placeholder in place.
      out[dict_start] = static_cast<std::uint8_t>(distinct) | 0x80;
      out.insert(out.begin() + static_cast<std::ptrdiff_t>(dict_start) + 1,
                 static_cast<std::uint8_t>(distinct >> 7));
    }
  }
  rle_encode(scratch.planes.data(), scratch.planes.size(), out);
  return true;
}

}  // namespace

std::size_t corpus_encode_samples(const double* samples, std::size_t count,
                                  std::size_t width, CodecScratch& scratch,
                                  std::vector<std::uint8_t>& out) {
  // Encode both candidate modes and keep the smaller one; recording is
  // the cold path, decode speed is what replay pays for.
  scratch.mode_a.clear();
  const bool dict_ok =
      encode_dictionary(samples, count, width, scratch, scratch.mode_a);
  scratch.mode_b.clear();
  encode_delta_planes(samples, count, width, scratch, scratch.mode_b);
  const bool use_dict = dict_ok && scratch.mode_a.size() <
                                       scratch.mode_b.size();
  const std::vector<std::uint8_t>& stream =
      use_dict ? scratch.mode_a : scratch.mode_b;
  const std::size_t before = out.size();
  out.push_back(use_dict ? kSampleModeDictionary : kSampleModeDeltaPlanes);
  out.insert(out.end(), stream.begin(), stream.end());
  return out.size() - before;
}

void corpus_decode_plaintexts(ByteReader& in, std::size_t count,
                              std::size_t stride, CodecScratch& scratch,
                              std::uint8_t* out) {
  scratch.planes.resize(count * stride);
  rle_decode(in, scratch.planes.data(), scratch.planes.size());
  for (std::size_t k = 0; k < stride; ++k) {
    const std::uint8_t* col = scratch.planes.data() + k * count;
    for (std::size_t i = 0; i < count; ++i) out[i * stride + k] = col[i];
  }
}

void corpus_decode_samples(ByteReader& in, std::size_t count,
                           std::size_t width, CodecScratch& scratch,
                           double* out) {
  const std::uint8_t mode = in.u8();
  if (mode == kSampleModeDeltaPlanes) {
    const std::size_t m = count * width;
    const std::size_t blocks = (m + 63) / 64;
    scratch.planes.resize(blocks * 64 * sizeof(std::uint64_t));
    rle_decode(in, scratch.planes.data(), scratch.planes.size());
    scratch.words.resize(blocks * 64);
    for (std::size_t v = 0; v < 64; ++v) {
      for (std::size_t b = 0; b < blocks; ++b) {
        std::memcpy(&scratch.words[b * 64 + v],
                    scratch.planes.data() + (v * blocks + b) * 8, 8);
      }
    }
    // The 64×64 transpose is an involution: the same call undoes encode.
    bit_transpose_blocks(scratch.words.data(), blocks);
    std::size_t k = 0;
    for (std::size_t l = 0; l < width; ++l) {
      std::uint64_t prev = 0;
      for (std::size_t i = 0; i < count; ++i) {
        prev ^= scratch.words[k++];
        std::memcpy(&out[i * width + l], &prev, sizeof(prev));
      }
    }
    return;
  }
  if (mode != kSampleModeDictionary) {
    throw BadFileError(in.path(), "corpus sample stream carries an unknown "
                                  "codec mode");
  }
  // Dictionary mode. All allocations below are sized from the validated
  // shard layout (count, width) or hard constants — never from stream
  // fields — and every stream read goes through the bounds-checked
  // reader.
  scratch.words.clear();
  // Per-level dictionary sizes, packed ahead of the flat value table.
  std::vector<std::size_t> sizes(width);
  for (std::size_t l = 0; l < width; ++l) {
    const std::uint64_t k = get_varint(in);
    if (k < 1 || k > kMaxDictValues) {
      throw BadFileError(in.path(), "corpus sample dictionary size is "
                                    "outside [1, 255]");
    }
    sizes[l] = static_cast<std::size_t>(k);
    for (std::uint64_t j = 0; j < k; ++j) {
      std::uint64_t u;
      in.bytes(&u, sizeof(u));
      scratch.words.push_back(u);
    }
  }
  scratch.planes.resize(count * width);
  rle_decode(in, scratch.planes.data(), scratch.planes.size());
  std::size_t base = 0;
  for (std::size_t l = 0; l < width; ++l) {
    const std::uint8_t* col = scratch.planes.data() + l * count;
    const std::uint64_t* dict = scratch.words.data() + base;
    const std::size_t k = sizes[l];
    for (std::size_t i = 0; i < count; ++i) {
      if (col[i] >= k) {
        throw BadFileError(in.path(), "corpus sample index is outside its "
                                      "level's dictionary");
      }
      std::memcpy(&out[i * width + l], &dict[col[i]], sizeof(std::uint64_t));
    }
    base += k;
  }
}

}  // namespace sable
