#include "netlist/isomorphism.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <tuple>

namespace sable {

namespace {

// Unlabelled-node signature: sorted multiset of (gate var, polarity, role,
// other-endpoint-is-external ? external id : -1) over incident devices.
using Signature = std::vector<std::array<int, 4>>;

Signature node_signature(const DpdnNetwork& net,
                         const std::vector<std::vector<std::size_t>>& adj,
                         NodeId n) {
  Signature sig;
  for (std::size_t idx : adj[n]) {
    const Switch& d = net.devices()[idx];
    const NodeId other = d.other(n);
    sig.push_back({static_cast<int>(d.gate.var), d.gate.positive ? 1 : 0,
                   static_cast<int>(d.role),
                   net.is_external(other) ? static_cast<int>(other) : -1});
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

struct Matcher {
  const DpdnNetwork& a;
  const DpdnNetwork& b;
  std::vector<std::vector<std::size_t>> adj_a;
  std::vector<std::vector<std::size_t>> adj_b;
  // mapping[node in a] = node in b (externals pre-mapped identity).
  std::vector<NodeId> mapping;
  std::vector<bool> used_b;

  Matcher(const DpdnNetwork& na, const DpdnNetwork& nb)
      : a(na), b(nb), adj_a(na.adjacency()), adj_b(nb.adjacency()),
        mapping(na.node_count(), 0), used_b(nb.node_count(), false) {
    for (NodeId n = 0; n < 3; ++n) {
      mapping[n] = n;
      used_b[n] = true;
    }
  }

  // Checks that the devices of `a` map onto a permutation of `b`'s devices
  // under the current (complete) node mapping.
  bool devices_match() const {
    std::map<std::tuple<int, int, int, NodeId, NodeId>, int> count;
    auto key = [](const Switch& d, NodeId x, NodeId y) {
      if (x > y) std::swap(x, y);
      return std::make_tuple(static_cast<int>(d.gate.var),
                             d.gate.positive ? 1 : 0,
                             static_cast<int>(d.role), x, y);
    };
    for (const Switch& d : a.devices()) {
      ++count[key(d, mapping[d.a], mapping[d.b])];
    }
    for (const Switch& d : b.devices()) {
      if (--count[key(d, d.a, d.b)] < 0) return false;
    }
    return true;
  }

  bool assign(NodeId next) {
    if (next == a.node_count()) return devices_match();
    const Signature sig_a = node_signature(a, adj_a, next);
    for (NodeId candidate = 3; candidate < b.node_count(); ++candidate) {
      if (used_b[candidate]) continue;
      if (node_signature(b, adj_b, candidate) != sig_a) continue;
      mapping[next] = candidate;
      used_b[candidate] = true;
      if (assign(next + 1)) return true;
      used_b[candidate] = false;
    }
    return false;
  }
};

}  // namespace

bool networks_isomorphic(const DpdnNetwork& a, const DpdnNetwork& b) {
  if (a.num_vars() != b.num_vars() || a.node_count() != b.node_count() ||
      a.device_count() != b.device_count()) {
    return false;
  }
  Matcher matcher(a, b);
  return matcher.assign(3);
}

}  // namespace sable
