// Experiment E9 (extension): DPA resistance by logic style.
//
// The paper's motivating threat: first-order power attacks on a cipher's
// nonlinear layer. For each logic style the batched trace engine streams
// simulated traces of a `--round N`-instance PRESENT layer (default 1)
// with a secret round key through a bank of one-pass accumulators — CPA
// (Hamming-weight model) on the `--attack-sbox i` subkey, DoM on every
// output bit of that instance, and the incremental MTD driver — in a
// single generation pass with no trace retained. The unattacked instances
// contribute algorithmic noise. Reported: correct-subkey rank, the
// leading guess, and measurements-to-disclosure.
//
// Campaign persistence: `--record P` writes each style's corpus to
// `P.<style>` while attacking, `--replay P` reruns the whole table from
// those corpora without re-simulating (bit-identical rows), and
// `--checkpoint P` persists per-shard distinguisher states to
// `P.<style>` so interrupted tables resume.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/trace_engine.hpp"
#include "io/corpus.hpp"

using namespace sable;

namespace {

struct Row {
  LogicStyle style;
  std::size_t cpa_rank = 0;
  double cpa_rho = 0.0;
  std::size_t dom_rank = 0;
  bool disclosed = false;
  std::size_t mtd = 0;
};

std::vector<std::size_t> table_subkeys(std::size_t n) {
  std::vector<std::size_t> keys(n);
  for (std::size_t j = 0; j < n; ++j) keys[j] = (0x7 + 5 * j) & 0xF;
  return keys;
}

Row evaluate_style(LogicStyle style, std::size_t round_size,
                   std::size_t attack_sbox, std::size_t num_traces,
                   double noise, std::size_t num_threads,
                   const std::string& record_path,
                   const std::string& replay_path,
                   const std::string& checkpoint_path) {
  const Technology tech = Technology::generic_180nm();
  const RoundSpec round = present_round(round_size, style);
  const SboxSpec& spec = round.sboxes[attack_sbox];
  TraceEngine engine(round, tech);

  CampaignOptions options;
  options.num_traces = num_traces;
  options.key = round.pack_subkeys(table_subkeys(round_size));
  options.noise_sigma = noise;
  options.seed = 0xDEC0DE;
  options.num_threads = num_threads;
  const std::size_t subkey = round.sub_word(options.key.data(), attack_sbox);

  // One campaign feeds every attack through the distinguisher pipeline:
  // CPA, one DoM per output bit, and the ordered MTD distinguisher — on
  // the attacked instance's sub-plaintexts, from a simulated, recorded,
  // or replayed stream (all bit-identical).
  const AttackSelector selector{.sbox_index = attack_sbox,
                                .model = PowerModel::kHammingWeight};
  CpaDistinguisher cpa(spec, selector);
  std::vector<DomDistinguisher> dom;
  dom.reserve(spec.out_bits);
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    dom.emplace_back(spec, AttackSelector{.sbox_index = attack_sbox,
                                          .model = PowerModel::kHammingWeight,
                                          .bit = bit});
  }
  MtdDistinguisher mtd(spec, selector, subkey,
                       default_checkpoints(num_traces), num_traces);
  std::vector<Distinguisher*> list = {&cpa};
  for (auto& d : dom) list.push_back(&d);
  list.push_back(&mtd);
  CampaignPersistence persist;
  if (!checkpoint_path.empty()) {
    persist.checkpoint_path = checkpoint_path + "." + to_string(style);
  }
  if (!record_path.empty()) {
    engine.record(options, TraceDataKind::kScalar,
                  record_path + "." + to_string(style));
  }
  if (!replay_path.empty()) {
    const CorpusReader corpus(replay_path + "." + to_string(style));
    engine.replay(corpus, list, persist, num_threads);
  } else {
    engine.run_distinguishers(options, list, persist);
  }

  Row row{style};
  const AttackResult cpa_result = cpa.result();
  row.cpa_rank = cpa_result.rank_of(subkey);
  row.cpa_rho = cpa_result.score[subkey];

  // Combine the per-bit difference-of-means scores by taking, for every
  // guess, its strongest bias over the output bits (the attacker does not
  // know which bit leaks best, so max-combining is the honest procedure).
  std::vector<double> combined(std::size_t{1} << spec.in_bits, 0.0);
  for (auto& d : dom) {
    const AttackResult& result = d.result();
    for (std::size_t g = 0; g < combined.size(); ++g) {
      combined[g] = std::max(combined[g], result.score[g]);
    }
  }
  row.dom_rank = make_attack_result(std::move(combined)).rank_of(subkey);

  const MtdResult mtd_result = mtd.result();
  row.disclosed = mtd_result.disclosed;
  row.mtd = mtd_result.mtd;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t num_traces = 8000;
  const double noise = 2e-16;
  std::size_t num_threads = 0;  // 0 = hardware concurrency
  std::size_t round_size = 1;
  std::size_t attack_sbox = 0;
  bool all_subkeys = false;
  std::string record_path;
  std::string replay_path;
  std::string checkpoint_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      num_threads =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--round") == 0 && i + 1 < argc) {
      round_size =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--attack-sbox") == 0 && i + 1 < argc) {
      attack_sbox =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--all-subkeys") == 0) {
      all_subkeys = true;
    } else if (std::strcmp(argv[i], "--record") == 0 && i + 1 < argc) {
      record_path = argv[++i];
    } else if (std::strcmp(argv[i], "--replay") == 0 && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint") == 0 && i + 1 < argc) {
      checkpoint_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--round N] [--attack-sbox I] "
                   "[--all-subkeys] [--record P] [--replay P] "
                   "[--checkpoint P]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr, "--record and --replay are mutually exclusive\n");
    return 2;
  }
  if (round_size == 0 || attack_sbox >= round_size) {
    std::fprintf(stderr, "--attack-sbox must address one of the --round %zu "
                         "instances\n",
                 round_size);
    return 2;
  }
  const std::size_t subkey = table_subkeys(round_size)[attack_sbox];

  std::printf("== E9: DPA resistance by logic style ========================\n");
  std::printf(
      "%zu-S-box PRESENT round, attacked S-box %zu (subkey 0x%zX), %zu "
      "traces, noise %.0e J RMS\n"
      "(streamed one-pass: CPA + %zux DoM + MTD per style, nothing "
      "retained)\n\n",
      round_size, attack_sbox, subkey, num_traces, noise,
      present_spec().out_bits);
  std::printf("%-22s %9s %10s %9s %12s\n", "logic style", "CPA rank",
              "|rho(key)|", "DoM rank", "MTD");

  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
    const Row row = evaluate_style(style, round_size, attack_sbox, num_traces,
                                   noise, num_threads, record_path,
                                   replay_path, checkpoint_path);
    char mtd_str[32];
    if (row.disclosed) {
      std::snprintf(mtd_str, sizeof mtd_str, "%zu", row.mtd);
    } else {
      std::snprintf(mtd_str, sizeof mtd_str, "> %zu", num_traces);
    }
    std::printf("%-22s %9zu %10.3f %9zu %12s\n", to_string(row.style),
                row.cpa_rank, row.cpa_rho, row.dom_rank, mtd_str);
  }
  // One-pass multi-subkey attack: every subkey of the round recovered
  // from a SINGLE simulated campaign per style through the distinguisher
  // pipeline (one CpaDistinguisher per instance sharing the stream) —
  // where the pre-pipeline engine would have re-simulated per subkey.
  if (all_subkeys) {
    std::printf(
        "\n== one-pass multi-subkey CPA: all %zu subkeys, one campaign per "
        "style ==\n%-22s correct-subkey rank per S-box\n",
        round_size, "logic style");
    for (LogicStyle style :
         {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
          LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
          LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
      const Technology tech = Technology::generic_180nm();
      const RoundSpec round = present_round(round_size, style);
      TraceEngine engine(round, tech);
      CampaignOptions options;
      options.num_traces = num_traces;
      options.key = round.pack_subkeys(table_subkeys(round_size));
      options.noise_sigma = noise;
      options.seed = 0xDEC0DE;
      options.num_threads = num_threads;
      const std::vector<AttackResult> results =
          engine.cpa_campaign_all_subkeys(options,
                                          PowerModel::kHammingWeight);
      std::printf("%-22s", to_string(style));
      for (std::size_t j = 0; j < results.size(); ++j) {
        std::printf(" %zu",
                    results[j].rank_of(round.sub_word(options.key.data(), j)));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nExpected shape: CMOS and SABL-genuine disclose the key within a few\n"
      "hundred traces; the fully connected and enhanced styles never rank\n"
      "the key first with statistical confidence (constant-power gates).\n"
      "WDDL (the standard-cell countermeasure class of the paper's ref [8])\n"
      "holds only while its rails stay perfectly balanced — 5%% capacitance\n"
      "mismatch reopens the leak, which is the paper's argument for custom\n"
      "gates with controlled internals.\n");

  // Wider targets: the attack scales to DES (6-bit) and AES (8-bit)
  // S-boxes; the constant-power property must hold regardless of width.
  // The engine makes the 8-bit target cheap: 64 encryptions per cycle.
  std::printf("\nwider S-boxes (CPA/HW, correct-key rank):\n");
  std::printf("%-10s %8s %22s %22s\n", "S-box", "guesses", "static-CMOS",
              "SABL-fully-connected");
  for (const SboxSpec& spec : {des1_spec(), aes_spec()}) {
    const Technology tech = Technology::generic_180nm();
    CampaignOptions options;
    options.num_traces = 4000;
    options.key = {
        static_cast<std::uint8_t>(0x2A & ((1u << spec.in_bits) - 1))};
    options.noise_sigma = noise;
    options.seed = 0xFACE;
    options.num_threads = num_threads;
    std::size_t ranks[2] = {0, 0};
    int col = 0;
    for (LogicStyle style :
         {LogicStyle::kStaticCmos, LogicStyle::kSablFullyConnected}) {
      TraceEngine engine(spec, style, tech);
      ranks[col++] =
          engine
              .cpa_campaign(options,
                            AttackSelector{.model = PowerModel::kHammingWeight})
              .rank_of(options.key[0]);
    }
    std::printf("%-10s %8zu %22zu %22zu\n", spec.name,
                std::size_t{1} << spec.in_bits, ranks[0], ranks[1]);
  }
  return 0;
}
