// Differential power analysis demo: the attack the paper defends against.
//
// Simulates a PRESENT S-box with a secret key in three logic styles,
// collects power traces, runs a correlation attack for every key guess and
// reports whether the secret leaks. Static CMOS falls quickly, the genuine
// dynamic differential implementation leaks through its floating internal
// nodes, and the fully connected SABL implementation holds.
#include <cstdio>

#include "crypto/target.hpp"
#include "dpa/attack.hpp"
#include "dpa/mtd.hpp"
#include "util/rng.hpp"

using namespace sable;

namespace {

void attack_style(LogicStyle style, std::uint8_t key, std::size_t num_traces,
                  double noise) {
  const Technology tech = Technology::generic_180nm();
  const SboxSpec spec = present_spec();
  SboxTarget target(spec, style, tech);
  Rng rng(0xA77ACC);

  TraceSet traces;
  for (std::size_t i = 0; i < num_traces; ++i) {
    const auto pt = static_cast<std::uint8_t>(rng.below(16));
    traces.add(pt, target.trace(pt, key, noise, rng));
  }

  const AttackResult result =
      cpa_attack(traces, spec, PowerModel::kHammingWeight);
  const auto checkpoints = default_checkpoints(num_traces);
  const MtdResult mtd = measurements_to_disclosure(
      traces, key, checkpoints, [&](const TraceSet& t) {
        return cpa_attack(t, spec, PowerModel::kHammingWeight);
      });

  std::printf("%-22s best guess = 0x%X (|rho| = %.3f), correct key rank %zu",
              to_string(style), result.best_guess,
              result.score[result.best_guess], result.rank_of(key));
  if (mtd.disclosed) {
    std::printf(", DISCLOSED after ~%zu traces\n", mtd.mtd);
  } else {
    std::printf(", key NOT disclosed in %zu traces\n", num_traces);
  }
}

}  // namespace

int main() {
  const std::uint8_t secret_key = 0xB;
  const std::size_t num_traces = 5000;
  const double noise = 2e-16;  // ~0.2 fJ RMS measurement noise

  std::printf("CPA attack on PRESENT S-box, secret key = 0x%X, %zu traces\n\n",
              secret_key, num_traces);
  attack_style(LogicStyle::kStaticCmos, secret_key, num_traces, noise);
  attack_style(LogicStyle::kSablGenuine, secret_key, num_traces, noise);
  attack_style(LogicStyle::kSablFullyConnected, secret_key, num_traces,
               noise);
  attack_style(LogicStyle::kSablEnhanced, secret_key, num_traces, noise);
  attack_style(LogicStyle::kWddlBalanced, secret_key, num_traces, noise);
  attack_style(LogicStyle::kWddlMismatched, secret_key, num_traces, noise);
  std::printf(
      "\nThe fully connected/enhanced gates draw an input-independent charge\n"
      "every cycle, so the correlation for every key guess is noise.\n");
  return 0;
}
