// End-to-end integration tests exercising the full design flow the way a
// library team would: schematic file in, verified constant-power cell and
// SPICE deck out — plus cross-validation between the three verification
// engines (exhaustive, symbolic, switch-level) on the same artifacts.
#include <gtest/gtest.h>

#include "bdd/symbolic.hpp"
#include "cell/library.hpp"
#include "core/checks.hpp"
#include "core/enhancer.hpp"
#include "core/memory_effect.hpp"
#include "core/transformer.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "netlist/io.hpp"
#include "netlist/isomorphism.hpp"
#include "sabl/testbench.hpp"
#include "spice/netlist_export.hpp"
#include "switchsim/energy.hpp"

namespace sable {
namespace {

const Technology kTech = Technology::generic_180nm();

TEST(FullFlowTest, SchematicFileToVerifiedCellAndDeck) {
  // 1. A designer's genuine schematic arrives as a netlist file.
  const char* schematic = R"(
dpdn 4
var A
var B
var C
var D
node P1
node P2
# true branch: A.B + C.D (AOI22)
switch A  X P1
switch B  P1 Z
switch C  X P2
switch D  P2 Z
# false branch: (A'+B').(C'+D')
node Q1
switch A' Y Q1
switch B' Y Q1
switch C' Q1 Z
switch D' Q1 Z
)";
  VarTable vars;
  const DpdnNetwork genuine = read_dpdn(schematic, vars);
  const ExprPtr f = parse_expression("A.B + C.D", vars);
  EXPECT_TRUE(check_functionality(genuine, f).ok);
  EXPECT_FALSE(check_full_connectivity(genuine).fully_connected);

  // 2. §4.2 transformation.
  const TransformResult result = transform_to_fully_connected(genuine, vars);
  EXPECT_TRUE(result.branches_complementary);
  EXPECT_TRUE(result.device_count_preserved);

  // 3. Verify with all three engines.
  EXPECT_TRUE(check_functionality(result.network, f).ok);
  EXPECT_TRUE(check_full_connectivity(result.network).fully_connected);
  BddManager mgr(4);
  EXPECT_TRUE(check_functionality_symbolic(mgr, result.network, f).ok);
  EXPECT_TRUE(
      check_full_connectivity_symbolic(mgr, result.network).fully_connected);
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const GateEnergyModel model =
      build_gate_model(result.network, kTech, sizing);
  EXPECT_NEAR(profile_gate_energy(result.network, model).ned, 0.0, 1e-12);

  // 4. The result round-trips through the file format unchanged.
  VarTable vars2;
  const DpdnNetwork reread =
      read_dpdn(write_dpdn(result.network, vars), vars2);
  EXPECT_TRUE(networks_isomorphic(result.network, reread));

  // 5. And exports as a simulatable SPICE deck.
  const SablGateCircuit gate =
      assemble_sabl_gate(result.network, vars, kTech, sizing);
  const std::string deck = to_spice_deck(gate.circuit);
  EXPECT_NE(deck.find(".model"), std::string::npos);
  EXPECT_NE(deck.find(".end"), std::string::npos);
}

TEST(FullFlowTest, ThreeEnginesAgreeOnEveryLibraryCell) {
  for (CellFunction fn : all_cell_functions()) {
    const ExprPtr f = cell_expression(fn);
    const std::size_t n = cell_input_count(fn);
    for (NetworkVariant v :
         {NetworkVariant::kGenuine, NetworkVariant::kFullyConnected,
          NetworkVariant::kEnhanced}) {
      const Cell cell = make_cell(fn, v, kTech);
      const bool exhaustive =
          check_full_connectivity(cell.network).fully_connected;
      BddManager mgr(n);
      const bool symbolic =
          check_full_connectivity_symbolic(mgr, cell.network)
              .fully_connected;
      const bool memoryless =
          analyze_memory_effect(cell.network).memoryless;
      const EnergyProfile profile =
          profile_gate_energy(cell.network, cell.energy_model);
      const bool constant_energy = profile.ned < 1e-12;
      EXPECT_EQ(exhaustive, symbolic) << cell.name;
      EXPECT_EQ(exhaustive, memoryless) << cell.name;
      EXPECT_EQ(exhaustive, constant_energy) << cell.name;
    }
  }
}

TEST(FullFlowTest, EnhancedCellSurvivesWriteReadSpice) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A+B).(C+D)", vars);
  const DpdnNetwork enhanced = synthesize_enhanced_dpdn(f, 4);

  VarTable vars2;
  const DpdnNetwork reread = read_dpdn(write_dpdn(enhanced, vars), vars2);
  EXPECT_TRUE(networks_isomorphic(enhanced, reread));

  // The reread network drives a real transient: constant energy holds.
  const SizingPlan sizing = SizingPlan::defaults(kTech);
  const std::vector<std::uint64_t> seq = {0b0101, 0b1111, 0b0000};
  const SablRunResult run =
      run_sabl_sequence(reread, vars2, kTech, sizing, seq);
  double lo = run.cycles.front().energy;
  double hi = lo;
  for (const auto& c : run.cycles) {
    lo = std::min(lo, c.energy);
    hi = std::max(hi, c.energy);
  }
  // 4-input gates resolve the sense amplifier through deeper stacks, so the
  // analog residual is a bit above the AND-NAND's 0.2-0.3%; the genuine
  // network's memory effect is an order of magnitude larger than this bound.
  EXPECT_LT((hi - lo) / hi, 0.03);
}

}  // namespace
}  // namespace sable
