// Width-generic round targets: N S-box instances synthesized side by side
// in one logic style, consuming a wide plaintext state XOR a wide round
// key and emitting the *summed* per-cycle power across all instances.
//
// This is the paper's real threat model: the attacked S-box of a cipher
// round sits beside its neighbours, whose data-dependent switching acts as
// algorithmic noise on the shared supply. A RoundTarget generalizes the
// single-S-box target — an attack selects one instance (one subkey) while
// every other instance contributes realistic noise.
//
// State layout: the wide plaintext / round key is a byte span of
// state_bytes() bytes. Instance i's input sub-word occupies state bits
// [bit_offset(i), bit_offset(i) + in_bits_i), packed LSB-first in instance
// order — so sixteen 4-bit PRESENT S-boxes nibble-pack into 8 bytes, and
// sixteen AES S-boxes byte-pack into 16. Heterogeneous specs (mixed
// widths) pack the same way.
//
// Encryptions run through the lane-word-generic bit-parallel circuit
// simulators: RoundTargetT<W>::trace_batch simulates LaneTraits<W>::kLanes
// wide plaintexts per clock cycle (lane L of step k is trace k*kLanes + L,
// with the static-CMOS history logically 64-lane so the generated trace
// stream is bit-identical for every word width), and the scalar trace()
// is the width-1 case. RoundTarget is the 64-lane instantiation — the
// prototype the TraceEngine exposes; with_lane_width<W>() derives the
// wider SIMD variants from it, sharing the synthesized circuits.
// Identical (spec, style) instances share one synthesized circuit; every
// instance owns its mutable simulator state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "crypto/sboxes.hpp"
#include "util/lane_word.hpp"
#include "util/rng.hpp"

namespace sable {

enum class LogicStyle {
  kStaticCmos,        // HD-leaking baseline
  kSablGenuine,       // dynamic differential with genuine DPDNs (§2 leak)
  kSablFullyConnected,  // §4 networks
  kSablEnhanced,      // §5 networks
  kWddlBalanced,      // standard-cell pair logic, ideal back-end (ref [8])
  kWddlMismatched,    // WDDL with 5% rail-capacitance imbalance
};

const char* to_string(LogicStyle style);

/// A round's nonlinear layer: the S-box instances (possibly heterogeneous,
/// each 1–8 input bits) and the logic style they are all implemented in.
struct RoundSpec {
  std::vector<SboxSpec> sboxes;
  LogicStyle style = LogicStyle::kStaticCmos;

  std::size_t num_sboxes() const { return sboxes.size(); }
  /// Total input width of the round (sum of per-instance in_bits).
  std::size_t state_bits() const;
  /// Bytes of a packed plaintext/round-key state: ceil(state_bits / 8).
  std::size_t state_bytes() const { return (state_bits() + 7) / 8; }
  /// First state bit of instance `index`'s input sub-word.
  std::size_t bit_offset(std::size_t index) const;

  /// Instance `index`'s input sub-word of a packed state.
  std::size_t sub_word(const std::uint8_t* state, std::size_t index) const;
  /// Writes instance `index`'s input sub-word into a packed state.
  void set_sub_word(std::uint8_t* state, std::size_t index,
                    std::size_t value) const;
  /// Batch extraction: out[t] = sub_word(states + t * state_bytes(), index)
  /// for `count` packed states — the per-trace sub-plaintexts an attack on
  /// instance `index` consumes.
  void sub_words(const std::uint8_t* states, std::size_t count,
                 std::size_t index, std::uint8_t* out) const;
  /// Packs one subkey per instance into a round-key byte vector.
  std::vector<std::uint8_t> pack_subkeys(
      const std::vector<std::size_t>& subkeys) const;
  /// Fills `count` packed states (count * state_bytes() bytes) with
  /// uniform random sub-words: per state, one below(2^in_bits) draw per
  /// instance in instance order — the campaign plaintext stream
  /// primitive. For a single byte-wide S-box this is one draw per trace,
  /// bit-compatible with the historic single-S-box stream.
  void fill_random_states(Rng& rng, std::size_t count,
                          std::uint8_t* states) const;
};

/// FNV-1a hash of a round's FUNCTIONAL identity: logic style plus every
/// instance's in_bits/out_bits/table (names excluded — renaming an S-box
/// does not change the traces it generates). Persistence artifacts
/// (recorded corpora, campaign state files; see src/io/) stamp this hash
/// into their manifests so a corpus recorded against one round can never
/// be silently replayed against a different one.
std::uint64_t round_spec_hash(const RoundSpec& round);

/// The N = 1 round of a single S-box (what SboxTarget adapts).
RoundSpec single_sbox_round(const SboxSpec& spec, LogicStyle style);
/// `num_sboxes` PRESENT S-boxes side by side (nibble-packed state) — the
/// full 16-instance nonlinear layer of PRESENT at num_sboxes = 16.
RoundSpec present_round(std::size_t num_sboxes, LogicStyle style);
/// `num_sboxes` AES S-boxes side by side (byte-packed state) — the AES
/// SubBytes layer at num_sboxes = 16.
RoundSpec aes_subbytes_round(std::size_t num_sboxes, LogicStyle style);

template <typename W>
class RoundTargetT {
 public:
  RoundTargetT(const RoundSpec& round, const Technology& tech);

  /// As above, but over pre-synthesized per-instance circuits (one
  /// shared_ptr per S-box instance) instead of synthesizing them — how a
  /// lane-width variant shares its source target's circuits. An empty
  /// vector synthesizes as usual.
  RoundTargetT(const RoundSpec& round, const Technology& tech,
               std::vector<std::shared_ptr<const GateCircuit>> circuits);

  /// Independent target over the same synthesized circuits: the
  /// (immutable) GateCircuits are shared, every piece of mutable simulator
  /// state — CMOS transition history, SABL node charge, evaluator scratch —
  /// is fresh and private to the clone. This is the per-worker instance
  /// the thread-sharded TraceEngine hands each thread.
  RoundTargetT clone() const;

  /// The same target at another lane width: shares the synthesized
  /// circuits, rebuilds every per-instance simulator (same style
  /// derivation, same per-instance WDDL mismatch seeds) at width W2 in
  /// fresh-construction state. Campaigns over the result generate
  /// bit-identical traces to this target's — only the internal batch
  /// width changes.
  template <typename W2>
  RoundTargetT<W2> with_lane_width() const {
    std::vector<std::shared_ptr<const GateCircuit>> circuits;
    circuits.reserve(instances_.size());
    for (const Instance& instance : instances_) {
      circuits.push_back(instance.circuit);
    }
    return RoundTargetT<W2>(round_, tech_, std::move(circuits));
  }

  /// One encryption of the whole round: applies pt XOR key per instance
  /// (both `state_bytes()` packed bytes) and returns the summed power
  /// sample plus Gaussian noise of `noise_sigma` joules.
  double trace(const std::uint8_t* pt, const std::uint8_t* key,
               double noise_sigma, Rng& rng);

  /// Batched encryptions, kLanes per simulated cycle: `pts` holds `count`
  /// packed states of `state_bytes()` bytes each; writes one summed power
  /// sample per state into `out[0..count)`. Noise is drawn from `rng` in
  /// ascending trace order, so a campaign is reproducible regardless of
  /// the internal batch width.
  void trace_batch(const std::uint8_t* pts, std::size_t count,
                   const std::uint8_t* key, double noise_sigma, Rng& rng,
                   double* out);

  /// Time-resolved variant: writes `count` rows of `num_levels()` summed
  /// per-logic-level energies (row-major) into `rows`; gates at the same
  /// topological depth across all instances switch together. Per-sample
  /// Gaussian noise is drawn in trace-major, level-minor order. Covers
  /// every logic style (differential, static CMOS, WDDL).
  void trace_batch_sampled(const std::uint8_t* pts, std::size_t count,
                           const std::uint8_t* key, double noise_sigma,
                           Rng& rng, double* rows);

  /// Restores the fresh-construction simulator state of every instance
  /// (CMOS transition history, SABL node charge) in every lane.
  void reset_state();

  /// Reference output of instance `index` for functional checks.
  std::uint8_t reference(std::size_t index, const std::uint8_t* pt,
                         const std::uint8_t* key) const;

  const RoundSpec& round() const { return round_; }
  const GateCircuit& circuit(std::size_t index) const;
  /// Samples per trace_batch_sampled row: the maximum logic depth over
  /// the instances (every style is time-resolvable).
  std::size_t num_levels() const { return num_levels_; }

 private:
  // One synthesized S-box beside its peers: shared immutable circuit,
  // private mutable simulator (exactly one of the three styles is set).
  struct Instance {
    std::shared_ptr<const GateCircuit> circuit;
    std::unique_ptr<DifferentialCircuitSimBatchT<W>> diff_sim;
    std::unique_ptr<CmosCircuitSimBatchT<W>> cmos_sim;
    std::unique_ptr<WddlCircuitSimBatchT<W>> wddl_sim;
    std::size_t bit_offset = 0;
  };

  RoundTargetT(RoundSpec round, Technology tech,
               std::vector<Instance> instances);

  void cycle_instance(Instance& instance, const std::vector<W>& input_words,
                      const W& lane_mask, BatchCycleResultT<W>& out);
  void cycle_instance_sampled(Instance& instance,
                              const std::vector<W>& input_words,
                              const W& lane_mask,
                              SampledBatchCycleResultT<W>& out);
  /// Packs instance `index`'s (pt XOR key) sub-words of `lanes` adjacent
  /// states into `words_`.
  void pack_instance_lanes(const Instance& instance, const SboxSpec& spec,
                           const std::uint8_t* pts, std::size_t base,
                           std::size_t lanes, const std::uint8_t* key);

  RoundSpec round_;
  Technology tech_;  // kept so with_lane_width() can re-derive simulators
  std::vector<Instance> instances_;
  std::size_t num_levels_ = 0;
  std::vector<W> words_;
  BatchCycleResultT<W> scratch_;
  SampledBatchCycleResultT<W> sampled_scratch_;
};

/// The 64-lane instantiation: the engine's prototype width and the historic
/// public name.
using RoundTarget = RoundTargetT<std::uint64_t>;

}  // namespace sable
