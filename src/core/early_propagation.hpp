// Early-propagation analysis (§5).
//
// In a cascade, a gate's inputs leave the all-zero precharge state at
// different times (each driven by a different upstream gate). A gate
// *evaluates early* if some strict subset of arrived inputs already makes
// one branch conduct — then its output transition time, and therefore the
// instantaneous current profile, depends on the data. The paper's pass-gate
// enhancement eliminates this: a discharge path gated by every input cannot
// conduct until the last input has arrived.
//
// The model: a scenario is (S, a) where S is the set of arrived inputs and
// `a` their complementary values; inputs outside S are still at the (0,0)
// precharge state, so *both* polarity switches of those variables are off.
// The gate evaluates early if a scenario with S a strict subset conducts
// X-Z or Y-Z.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/network.hpp"

namespace sable {

struct EarlyPropagationReport {
  bool free_of_early_propagation = false;
  /// Number of (subset, assignment) scenarios that conduct early.
  std::size_t early_scenarios = 0;
  /// Total scenarios with a strict subset of inputs arrived (3^n - 2^n).
  std::size_t total_scenarios = 0;
  /// One witness: the arrived-set mask and values of an early conduction.
  std::uint64_t witness_arrived_mask = 0;
  std::uint64_t witness_values = 0;
};

/// Exhaustive early-propagation analysis over all arrival scenarios.
EarlyPropagationReport analyze_early_propagation(const DpdnNetwork& net);

}  // namespace sable
