// Circuit description for the mini-SPICE engine.
//
// Nodes are referenced by name; "0" (or "gnd") is ground. Elements are
// resistors, capacitors, independent voltage sources and level-1 MOSFETs.
// The SABL/CVSL assemblies in src/sabl build these circuits from DPDNs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "spice/mosfet.hpp"
#include "spice/sources.hpp"
#include "tech/technology.hpp"

namespace sable::spice {

/// Internal node index; 0 is ground.
using SpiceNode = std::size_t;
inline constexpr SpiceNode kGround = 0;

struct Resistor {
  SpiceNode a = 0;
  SpiceNode b = 0;
  double resistance = 0.0;
};

struct Capacitor {
  SpiceNode a = 0;
  SpiceNode b = 0;
  double capacitance = 0.0;
};

struct VoltageSource {
  std::string name;
  SpiceNode positive = 0;
  SpiceNode negative = 0;
  Waveform waveform;
};

struct Mosfet {
  std::string name;
  MosType type = MosType::kNmos;
  SpiceNode drain = 0;
  SpiceNode gate = 0;
  SpiceNode source = 0;
  MosModelParams params;
  double width = 0.0;
  double length = 0.0;
};

class Circuit {
 public:
  /// Returns the node index for `name`, creating it on first use.
  SpiceNode node(const std::string& name);
  /// Looks up an existing node; throws InvalidArgument if unknown.
  SpiceNode find_node(const std::string& name) const;
  const std::string& node_name(SpiceNode n) const;
  /// Number of nodes including ground.
  std::size_t node_count() const { return names_.size(); }

  void add_resistor(const std::string& a, const std::string& b, double ohms);
  void add_capacitor(const std::string& a, const std::string& b,
                     double farads);
  void add_vsource(const std::string& name, const std::string& positive,
                   const std::string& negative, Waveform waveform);
  void add_mosfet(const std::string& name, MosType type,
                  const std::string& drain, const std::string& gate,
                  const std::string& source, const MosModelParams& params,
                  double width, double length);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<VoltageSource>& vsources() const { return vsources_; }
  const std::vector<Mosfet>& mosfets() const { return mosfets_; }

  /// Index of the voltage source named `name` (for current probing).
  std::size_t vsource_index(const std::string& name) const;

 private:
  std::vector<std::string> names_ = {"0"};
  std::map<std::string, SpiceNode> index_ = {{"0", 0}, {"gnd", 0}};
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<VoltageSource> vsources_;
  std::vector<Mosfet> mosfets_;
};

}  // namespace sable::spice
