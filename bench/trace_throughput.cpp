// Trace-generation throughput: scalar one-at-a-time simulation vs. the
// 64-wide bit-parallel trace engine on one thread vs. the thread-sharded
// engine on all cores, on the paper's PRESENT S-box target.
//
// The engine exists because MTD curves need 10^5–10^7 traces; this bench
// reports traces/sec for all three paths and the speedups (acceptance:
// batched >= 10x scalar on one thread), plus the end-to-end rate of a
// fully streaming one-pass CPA campaign. Besides the table it writes
// BENCH_trace_throughput.json so the perf trajectory is machine-readable
// across PRs.
//
// `--round N` also sweeps multi-S-box round targets (1, 2, 4, … up to N
// PRESENT instances side by side) and reports traces/sec per instance
// count — the cost of realistic algorithmic noise. All tables land in
// the JSON.
//
// `--lanes LIST` sweeps batch lane widths (comma-separated: 64, 128,
// 256, 512 or "simd" = the widest width the running CPU offers) over
// every style on one thread; campaigns are bit-identical across widths,
// so the sweep isolates the pure SIMD speedup. The >=10x acceptance gate
// stays pinned to the 64-bit path. Default: every width the runtime
// dispatcher (util/cpu_dispatch.hpp) allows on this machine. A
// pack_transpose table times the 64x64 bit-transpose lane packing
// against the historic per-bit gather at each width, and the JSON
// records which dispatch tier (portable / avx2 / avx512) the run used.
//
// A multi_attack row times the distinguisher pipeline's one-pass
// multi-subkey campaign (all 16 subkeys of a 16-S-box PRESENT round from
// one simulation) against 16 re-simulated campaigns — expected >= 8x,
// advisory only (the exit code stays pinned to the >=10x gate).
//
// The replay row compares compressed (v2) and raw corpus replay against
// live simulation and reports corpus_bytes_per_trace, the compression
// ratio and the decode cost (compressed vs raw replay tps, expect
// >= 0.7x). A compression table records the v1-vs-v2 file sizes of the
// sampled noiseless all-styles campaign (expect >= 3x total).
//
// An accumulation table times the block-factored distinguisher path
// (dpa/block_stats.hpp) against the per-trace Welford update for
// CPA/DoM/MultiCpa — traces/s both ways plus the speedup, advisory
// stderr warning when the 8-bit CPA row lands under 4x (expect >= 5x).
//
// Usage: bench_trace_throughput [--threads N] [--traces N] [--round N]
//                               [--lanes LIST] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "crypto/sboxes.hpp"
#include "crypto/target.hpp"
#include "dpa/streaming.hpp"
#include "engine/trace_engine.hpp"
#include "io/corpus.hpp"
#include "switchsim/cycle_sim.hpp"
#include "util/cpu_dispatch.hpp"
#include "util/rng.hpp"

using namespace sable;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Throughput {
  const char* style = nullptr;
  double scalar_tps = 0.0;
  double batched_1t_tps = 0.0;
  double batched_nt_tps = 0.0;
  double checksum = 0.0;  // keeps the optimizer honest
};

double engine_tps(TraceEngine& engine, std::size_t num_traces,
                  std::size_t threads, std::size_t lane_width,
                  double* checksum) {
  CampaignOptions options;
  options.num_traces = num_traces;
  options.key = {0xB};
  options.seed = 0xBE7C;
  options.num_threads = threads;
  options.lane_width = lane_width;
  double sum = 0.0;
  const auto start = Clock::now();
  engine.stream(options, [&](const std::uint8_t*, const double* samples,
                             std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) sum += samples[i];
  });
  *checksum += sum;
  return static_cast<double>(num_traces) / seconds_since(start);
}

Throughput measure_style(LogicStyle style, std::size_t num_traces,
                         std::size_t threads) {
  const Technology tech = Technology::generic_180nm();
  const SboxSpec spec = present_spec();
  const std::uint8_t key = 0xB;
  Throughput result;
  result.style = to_string(style);

  {
    SboxTarget target(spec, style, tech);
    Rng rng(0xBE7C);
    double sum = 0.0;
    const auto start = Clock::now();
    for (std::size_t i = 0; i < num_traces; ++i) {
      const auto pt = static_cast<std::uint8_t>(rng.below(16));
      sum += target.trace(pt, key, 0.0, rng);
    }
    result.scalar_tps = static_cast<double>(num_traces) / seconds_since(start);
    result.checksum += sum;
  }

  // The acceptance gate below compares against these rows, so they stay
  // pinned to the historic 64-bit path; --lanes sweeps the wider words.
  TraceEngine engine(spec, style, tech);
  result.batched_1t_tps =
      engine_tps(engine, num_traces, 1, 64, &result.checksum);
  result.batched_nt_tps =
      engine_tps(engine, num_traces, threads, 64, &result.checksum);
  return result;
}

struct LaneThroughput {
  std::size_t width = 0;
  const char* style = nullptr;
  double tps = 0.0;
  double speedup_vs_64 = 0.0;
};

// Batched one-thread traces/sec per (lane width, style): campaigns are
// bit-identical across widths, so the ratio to the 64-bit row is the pure
// SIMD/lane-width speedup. One engine per style keeps the per-width
// target variants and worker pool warm across the sweep.
std::vector<LaneThroughput> measure_lane_sweep(
    const std::vector<std::size_t>& widths, std::size_t num_traces) {
  std::vector<LaneThroughput> rows;
  if (widths.empty()) return rows;
  const Technology tech = Technology::generic_180nm();
  const SboxSpec spec = present_spec();
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced}) {
    TraceEngine engine(spec, style, tech);
    double checksum = 0.0;
    const std::size_t first = rows.size();
    for (std::size_t width : widths) {
      rows.push_back({width, to_string(style),
                      engine_tps(engine, num_traces, 1, width, &checksum),
                      0.0});
    }
    // The 64-bit row is the speedup baseline wherever it sits in the
    // sweep; without it the ratio is meaningless and stays 0.
    double tps64 = 0.0;
    for (std::size_t i = first; i < rows.size(); ++i) {
      if (rows[i].width == 64) tps64 = rows[i].tps;
    }
    for (std::size_t i = first; i < rows.size(); ++i) {
      rows[i].speedup_vs_64 = tps64 > 0.0 ? rows[i].tps / tps64 : 0.0;
    }
    if (checksum == 0.0) std::fprintf(stderr, "unexpected zero checksum\n");
  }
  return rows;
}

struct PackBench {
  std::size_t width = 0;
  double gather_mlps = 0.0;     // mega-lanes/sec through the per-bit gather
  double transpose_mlps = 0.0;  // same work through the bit transpose
  double speedup = 0.0;
};

// Times one full-word pack of kVars=8 variables (the S-box hot-path
// shape) through the transpose against the per-bit gather reference.
// Both are extern library calls, so the loop cannot be folded away; a
// chunk checksum keeps the results observed.
template <typename W>
PackBench measure_pack_width() {
  using T = LaneTraits<W>;
  constexpr std::size_t kVars = 8;
  PackBench bench;
  bench.width = T::kLanes;
  std::vector<std::uint64_t> assignments(T::kLanes);
  Rng rng(0x9AC7);
  for (auto& a : assignments) a = rng.next();
  std::vector<W> words(kVars);
  std::uint64_t checksum = 0;
  auto run = [&](auto&& pack) {
    // Warm up, then time batches until the clock has enough signal.
    for (int i = 0; i < 100; ++i) pack();
    std::size_t reps = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    while (elapsed < 0.2) {
      for (int i = 0; i < 2000; ++i) pack();
      reps += 2000;
      elapsed = seconds_since(start);
    }
    std::uint64_t chunks[T::kChunks];
    lane_chunks(words[0], chunks);
    checksum ^= chunks[0];
    return static_cast<double>(reps) * static_cast<double>(T::kLanes) /
           elapsed / 1e6;
  };
  bench.gather_mlps = run([&] {
    pack_lane_words_gather(assignments.data(), T::kLanes, words);
  });
  bench.transpose_mlps =
      run([&] { pack_lane_words(assignments.data(), T::kLanes, words); });
  bench.speedup = bench.transpose_mlps / bench.gather_mlps;
  if (checksum == ~std::uint64_t{0}) std::fprintf(stderr, "checksum\n");
  return bench;
}

// One pack_transpose row per width the runtime dispatcher allows here.
std::vector<PackBench> measure_pack_sweep() {
  std::vector<PackBench> rows;
  for (std::size_t width : runtime_lane_widths()) {
    switch (width) {
      case 64:
        rows.push_back(measure_pack_width<std::uint64_t>());
        break;
      case 128:
        rows.push_back(measure_pack_width<Word128>());
        break;
#if SABLE_HAVE_WORD256
      case 256:
        rows.push_back(measure_pack_width<Word256>());
        break;
#endif
#if SABLE_HAVE_WORD512
      case 512:
        rows.push_back(measure_pack_width<Word512>());
        break;
#endif
      default:
        break;
    }
  }
  return rows;
}

struct ThreadSweepRow {
  const char* style = nullptr;
  std::size_t threads = 0;
  double tps = 0.0;
  double speedup_vs_1t = 0.0;
};

// Thread-scaling sweep (--threads-sweep): per style, streamed campaign
// throughput at 1, 2, 4 and N threads with the width-0 default lane
// word. Campaigns are bit-identical for any thread count, so the ratios
// isolate the scheduler: with the persistent worker pool and the shard
// autotuner, speedup_vs_1t at 4 threads should clear ~2x on the
// simulation-bound SABL styles whenever the machine actually has 4
// cores. The JSON records the core count next to the table — on fewer
// cores than the sweep point, the ratio measures oversubscription, not
// scaling, and the advisory check skips.
std::vector<ThreadSweepRow> measure_threads_sweep(
    const std::vector<std::size_t>& counts, std::size_t num_traces) {
  std::vector<ThreadSweepRow> rows;
  const Technology tech = Technology::generic_180nm();
  const SboxSpec spec = present_spec();
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced}) {
    TraceEngine engine(spec, style, tech);
    double checksum = 0.0;
    double tps1 = 0.0;
    for (std::size_t threads : counts) {
      const double tps =
          engine_tps(engine, num_traces, threads, 0, &checksum);
      if (threads == 1) tps1 = tps;
      rows.push_back({to_string(style), threads, tps,
                      tps1 > 0.0 ? tps / tps1 : 0.0});
    }
    if (checksum == 0.0) std::fprintf(stderr, "unexpected zero checksum\n");
  }
  return rows;
}

struct RoundThroughput {
  std::size_t num_sboxes = 0;
  double tps = 0.0;
};

struct MultiAttackBench {
  std::size_t num_sboxes = 0;
  std::size_t num_traces = 0;
  double one_pass_seconds = 0.0;
  double independent_seconds = 0.0;
  double speedup = 0.0;
  bool all_recovered = false;
};

// One-pass multi-subkey campaigns: every subkey of a 16-S-box PRESENT
// round attacked from ONE simulated campaign (16 CpaDistinguishers
// sharing the stream through the distinguisher pipeline) vs. 16
// re-simulated single-selector campaigns. Simulation dominates at the
// engine's per-trace budget, so the one-pass path is expected >= 8x
// faster (~16x ideal); reported here and in the JSON, while the binary
// acceptance gate stays pinned to the 64-bit single-attack table above.
MultiAttackBench measure_multi_attack(std::size_t threads) {
  const Technology tech = Technology::generic_180nm();
  MultiAttackBench bench;
  bench.num_sboxes = 16;
  bench.num_traces = 20000;
  const RoundSpec round =
      present_round(bench.num_sboxes, LogicStyle::kStaticCmos);
  TraceEngine engine(round, tech);
  CampaignOptions options;
  options.num_traces = bench.num_traces;
  std::vector<std::size_t> subkeys(bench.num_sboxes);
  for (std::size_t j = 0; j < subkeys.size(); ++j) {
    subkeys[j] = (0x3 + 7 * j) & 0xF;
  }
  options.key = round.pack_subkeys(subkeys);
  options.noise_sigma = 2e-16;
  options.seed = 0xBE7C;
  options.num_threads = threads;
  options.lane_width = 64;  // comparable across PRs, like round_scaling

  auto start = Clock::now();
  const std::vector<AttackResult> one_pass =
      engine.cpa_campaign_all_subkeys(options, PowerModel::kHammingWeight);
  bench.one_pass_seconds = seconds_since(start);

  start = Clock::now();
  std::vector<AttackResult> independent;
  for (std::size_t j = 0; j < bench.num_sboxes; ++j) {
    independent.push_back(engine.cpa_campaign(
        options,
        AttackSelector{.sbox_index = j, .model = PowerModel::kHammingWeight}));
  }
  bench.independent_seconds = seconds_since(start);
  bench.speedup = bench.independent_seconds / bench.one_pass_seconds;

  bench.all_recovered = true;
  for (std::size_t j = 0; j < bench.num_sboxes; ++j) {
    if (one_pass[j].best_guess != subkeys[j] ||
        independent[j].best_guess != subkeys[j]) {
      bench.all_recovered = false;
    }
  }
  return bench;
}

struct ReplayBench {
  std::size_t num_traces = 0;
  double record_tps = 0.0;        // simulate + encode + write v2 corpus
  double replay_tps = 0.0;        // attack from the compressed corpus
  double raw_replay_tps = 0.0;    // attack from the uncompressed corpus
  double simulate_tps = 0.0;      // attack from a live simulated stream
  double speedup = 0.0;           // compressed replay vs simulate
  double decode_vs_raw = 0.0;     // compressed vs raw replay tps
  double corpus_bytes_per_trace = 0.0;  // compressed file bytes per trace
  double compression_ratio = 0.0;       // raw file bytes / compressed
  bool bit_identical = false;
};

std::uint64_t file_size(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return 0;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n < 0 ? 0 : static_cast<std::uint64_t>(n);
}

// Recorded-campaign replay: a CPA campaign fed from an on-disk corpus —
// compressed v2 chunks decoded through per-thread scratch, and the same
// campaign as raw mmap'd chunks — against the campaign simulated live.
// Replay skips the circuit simulation entirely, so both are expected to
// be much faster; decode_vs_raw isolates what the codec costs on the
// read side (acceptance: >= 0.7x, the I/O savings must not be eaten by
// decode). The corpora are written and removed here.
ReplayBench measure_replay(std::size_t threads) {
  const Technology tech = Technology::generic_180nm();
  ReplayBench bench;
  bench.num_traces = 200000;
  const std::string path = "bench_replay.corpus";
  const std::string raw_path = "bench_replay_raw.corpus";
  TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, tech);
  CampaignOptions options;
  options.num_traces = bench.num_traces;
  options.key = {0xB};
  options.noise_sigma = 2e-16;
  options.seed = 0xBE7C;
  options.num_threads = threads;
  const AttackSelector selector{.model = PowerModel::kHammingWeight};

  auto start = Clock::now();
  engine.record(options, TraceDataKind::kScalar, path);
  bench.record_tps =
      static_cast<double>(bench.num_traces) / seconds_since(start);
  engine.record(options, TraceDataKind::kScalar, raw_path,
                kCorpusCompressionNone);
  bench.corpus_bytes_per_trace = static_cast<double>(file_size(path)) /
                                 static_cast<double>(bench.num_traces);
  bench.compression_ratio = static_cast<double>(file_size(raw_path)) /
                            static_cast<double>(file_size(path));

  CpaDistinguisher simulated(engine.spec(), selector);
  {
    Distinguisher* const list[] = {&simulated};
    start = Clock::now();
    engine.run_distinguishers(options, list);
    bench.simulate_tps =
        static_cast<double>(bench.num_traces) / seconds_since(start);
  }
  // Best-of-3 for both replay variants: a single-shot replay timing is
  // dominated by first-use effects (page-cache faults on the fresh
  // mapping, thread-pool spin-up), which would bias whichever corpus is
  // replayed first.
  bool identical = true;
  const auto best_replay_tps = [&](const std::string& corpus_path) {
    const CorpusReader corpus(corpus_path);
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      CpaDistinguisher replayed(engine.spec(), selector);
      Distinguisher* const list[] = {&replayed};
      const auto rep_start = Clock::now();
      engine.replay(corpus, list, {}, threads);
      best = std::max(best, static_cast<double>(bench.num_traces) /
                                seconds_since(rep_start));
      identical =
          identical && replayed.result().score == simulated.result().score;
    }
    return best;
  };
  bench.replay_tps = best_replay_tps(path);
  bench.raw_replay_tps = best_replay_tps(raw_path);
  bench.speedup = bench.replay_tps / bench.simulate_tps;
  bench.decode_vs_raw = bench.replay_tps / bench.raw_replay_tps;
  bench.bit_identical = identical;
  std::remove(path.c_str());
  std::remove(raw_path.c_str());
  return bench;
}

struct CompressionRow {
  const char* style = nullptr;
  std::uint64_t v1_bytes = 0;
  std::uint64_t v2_bytes = 0;
  double ratio = 0.0;
};

// The default compression campaign: cycle-sampled corpora of every logic
// style, recorded WITHOUT measurement noise — the regime the codec is
// built for (noise randomizes the low mantissa bits and is
// information-theoretically incompressible; the replay row above reports
// that worst case). Constant-power styles collapse to a per-level
// dictionary of a handful of values; the data-dependent styles still
// draw each level from a small discrete set of switching-energy sums.
std::vector<CompressionRow> measure_compression(std::size_t num_traces,
                                                std::size_t threads) {
  const Technology tech = Technology::generic_180nm();
  std::vector<CompressionRow> rows;
  const std::string v1 = "bench_compress_v1.corpus";
  const std::string v2 = "bench_compress_v2.corpus";
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced, LogicStyle::kWddlMismatched}) {
    TraceEngine engine(present_spec(), style, tech);
    CampaignOptions options;
    options.num_traces = num_traces;
    options.key = {0xB};
    options.noise_sigma = 0.0;
    options.seed = 0xBE7C;
    options.num_threads = threads;
    engine.record(options, TraceDataKind::kSampled, v1,
                  kCorpusCompressionNone, kCorpusVersion1);
    engine.record(options, TraceDataKind::kSampled, v2);
    CompressionRow row;
    row.style = to_string(style);
    row.v1_bytes = file_size(v1);
    row.v2_bytes = file_size(v2);
    row.ratio = static_cast<double>(row.v1_bytes) /
                static_cast<double>(row.v2_bytes);
    rows.push_back(row);
  }
  std::remove(v1.c_str());
  std::remove(v2.c_str());
  return rows;
}

// Streamed-campaign throughput of an N-instance PRESENT round: every
// instance is simulated per trace, so traces/sec is expected to fall
// roughly as 1/N while traces·instances/sec stays flat.
std::vector<RoundThroughput> measure_round_scaling(std::size_t max_round,
                                                   std::size_t num_traces,
                                                   std::size_t threads) {
  const Technology tech = Technology::generic_180nm();
  std::vector<std::size_t> counts;
  for (std::size_t n = 1; n < max_round; n *= 2) counts.push_back(n);
  counts.push_back(max_round);
  std::vector<RoundThroughput> rows;
  for (std::size_t n : counts) {
    const RoundSpec round = present_round(n, LogicStyle::kStaticCmos);
    TraceEngine engine(round, tech);
    CampaignOptions options;
    options.num_traces = num_traces;
    options.key.assign(round.state_bytes(), 0x5A);
    options.seed = 0xBE7C;
    options.num_threads = threads;
    options.lane_width = 64;  // comparable across PRs; --lanes sweeps widths
    double sum = 0.0;
    const auto start = Clock::now();
    engine.stream(options, [&](const std::uint8_t*, const double* samples,
                               std::size_t count) {
      for (std::size_t i = 0; i < count; ++i) sum += samples[i];
    });
    const double seconds = seconds_since(start);
    rows.push_back({n, static_cast<double>(num_traces) / seconds});
    if (sum == 0.0) std::fprintf(stderr, "unexpected zero checksum\n");
  }
  return rows;
}

// Distinguisher accumulation: the block-factored sufficient-statistics
// path (add_block: per-plaintext histogram + one contraction per block)
// against the historic per-trace Welford update (add_batch / add), on
// synthetic traces so nothing but the accumulator is on the clock.
// Blocks are engine-shard-sized. One thread — accumulation is per-shard
// sequential inside the engine; this isolates the per-trace cost the
// factoring removes. Advisory only (the 8-bit CPA row is the acceptance
// evidence: expect >= 5x, warn under 4x); the exit code stays pinned to
// the >=10x engine gate.
struct AccumulationRow {
  const char* kind = nullptr;
  std::size_t num_traces = 0;
  double per_trace_tps = 0.0;
  double block_tps = 0.0;
  double speedup = 0.0;
};

// Repeats fn (one full pass over `count` traces through a fresh
// accumulator) until the clock has something to measure.
template <typename Fn>
double accumulation_tps(std::size_t count, const Fn& fn) {
  std::size_t reps = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t r = 0; r < reps; ++r) fn();
    const double seconds = seconds_since(start);
    if (seconds >= 0.2 || reps >= 256) {
      return static_cast<double>(count) * static_cast<double>(reps) / seconds;
    }
    reps *= 4;
  }
}

std::vector<AccumulationRow> measure_accumulation() {
  // Block size = what the engine would actually shard this campaign
  // into (the autotune rule — a pure function of the trace count), so
  // the histogram/contraction amortization matches production blocks.
  const auto shard_of = [](std::size_t count) {
    CampaignOptions options;
    options.num_traces = count;
    return campaign_shard_size(options);
  };
  const auto make_traces = [](std::size_t count, std::size_t num_pts,
                              std::size_t width,
                              std::vector<std::uint8_t>* pts,
                              std::vector<double>* rows) {
    Rng rng(0xACC);
    pts->resize(count);
    rows->resize(count * width);
    for (std::size_t i = 0; i < count; ++i) {
      (*pts)[i] = static_cast<std::uint8_t>(rng.below(num_pts));
      for (std::size_t l = 0; l < width; ++l) {
        (*rows)[i * width + l] = 1e-13 + 1e-15 * rng.uniform();
      }
    }
  };
  const auto blocked = [&shard_of](std::size_t count, const auto& feed) {
    const std::size_t block = shard_of(count);
    for (std::size_t off = 0; off < count; off += block) {
      feed(off, std::min(block, count - off));
    }
  };

  std::vector<AccumulationRow> out;
  std::vector<std::uint8_t> pts;
  std::vector<double> samples;

  const auto cpa_row = [&](const char* kind, const SboxSpec& spec,
                           std::size_t num_pts, std::size_t count) {
    make_traces(count, num_pts, 1, &pts, &samples);
    AccumulationRow row;
    row.kind = kind;
    row.num_traces = count;
    row.per_trace_tps = accumulation_tps(count, [&] {
      StreamingCpa acc(spec, PowerModel::kHammingWeight);
      acc.add_batch(pts.data(), samples.data(), count);
    });
    row.block_tps = accumulation_tps(count, [&] {
      StreamingCpa acc(spec, PowerModel::kHammingWeight);
      blocked(count, [&](std::size_t off, std::size_t n) {
        acc.add_block(pts.data() + off, samples.data() + off, n);
      });
    });
    row.speedup = row.block_tps / row.per_trace_tps;
    out.push_back(row);
  };
  cpa_row("cpa_4bit", present_spec(), 16, 2000000);
  cpa_row("cpa_8bit", aes_spec(), 256, 400000);

  {
    const std::size_t count = 2000000;
    make_traces(count, 16, 1, &pts, &samples);
    AccumulationRow row;
    row.kind = "dom_4bit";
    row.num_traces = count;
    row.per_trace_tps = accumulation_tps(count, [&] {
      StreamingDom acc(present_spec(), 0);
      acc.add_batch(pts.data(), samples.data(), count);
    });
    row.block_tps = accumulation_tps(count, [&] {
      StreamingDom acc(present_spec(), 0);
      blocked(count, [&](std::size_t off, std::size_t n) {
        acc.add_block(pts.data() + off, samples.data() + off, n);
      });
    });
    row.speedup = row.block_tps / row.per_trace_tps;
    out.push_back(row);
  }

  {
    constexpr std::size_t kWidth = 8;
    const std::size_t count = 250000;
    make_traces(count, 16, kWidth, &pts, &samples);
    AccumulationRow row;
    row.kind = "multi_cpa_4bit_w8";
    row.num_traces = count;
    row.per_trace_tps = accumulation_tps(count, [&] {
      StreamingMultiCpa acc(present_spec(), PowerModel::kHammingWeight,
                            kWidth);
      for (std::size_t i = 0; i < count; ++i) {
        acc.add(pts[i], samples.data() + i * kWidth);
      }
    });
    row.block_tps = accumulation_tps(count, [&] {
      StreamingMultiCpa acc(present_spec(), PowerModel::kHammingWeight,
                            kWidth);
      blocked(count, [&](std::size_t off, std::size_t n) {
        acc.add_block(pts.data() + off, samples.data() + off * kWidth, n);
      });
    });
    row.speedup = row.block_tps / row.per_trace_tps;
    out.push_back(row);
  }
  return out;
}

void write_json(const std::string& path, std::size_t num_traces,
                std::size_t threads, const std::vector<Throughput>& rows,
                const std::vector<LaneThroughput>& lane_rows,
                const std::vector<PackBench>& pack_rows,
                const std::vector<ThreadSweepRow>& sweep_rows,
                const std::vector<RoundThroughput>& round_rows,
                const MultiAttackBench& multi, const ReplayBench& replay,
                const std::vector<CompressionRow>& compression_rows,
                std::size_t compression_traces,
                const std::vector<AccumulationRow>& accumulation_rows,
                std::size_t cpa_traces, double cpa_seconds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"trace_throughput\",\n");
  std::fprintf(f, "  \"num_traces\": %zu,\n", num_traces);
  std::fprintf(f, "  \"threads\": %zu,\n", threads);
  // Thread-scaling ratios are only meaningful up to the machine's real
  // core count — record it so a 1-core CI runner's flat sweep is not
  // misread as a scheduler regression.
  std::fprintf(f, "  \"cores\": %u,\n", std::thread::hardware_concurrency());
  // Which kernels this run could actually dispatch to — perf rows are
  // only comparable across PRs within the same active tier. The
  // sub-tier flags gate optional pack kernels (BW's vpmovb2m, GFNI's
  // vgf2p8affineqb + VBMI's vpermb) inside the avx512 tier.
  std::fprintf(f,
               "  \"dispatch\": {\"compiled\": \"%s\", \"detected\": \"%s\", "
               "\"active\": \"%s\", \"cpu_avx2\": %s, \"cpu_avx512f\": %s, "
               "\"cpu_avx512bw\": %s, \"cpu_avx512vbmi\": %s, "
               "\"cpu_gfni\": %s, \"max_runtime_lane_width\": %zu},\n",
               to_string(compiled_tier()), to_string(detected_tier()),
               to_string(active_tier()),
               cpu_features().avx2 ? "true" : "false",
               cpu_features().avx512f ? "true" : "false",
               cpu_features().avx512bw ? "true" : "false",
               cpu_features().avx512vbmi ? "true" : "false",
               cpu_features().gfni ? "true" : "false",
               max_runtime_lane_width());
  // The width-0 default resolves per style through style_lane_width_cap
  // (no style is capped today: with the per-tier transpose packing every
  // style scales monotonically through 512). On server parts with
  // license-based AVX-512 frequency throttling, pin lane_width = 256 in
  // CampaignOptions if wall-clock regresses under sustained 512-bit use
  // and compare against the lane_widths rows above.
  std::fprintf(f,
               "  \"lane_width_advice\": \"lane_width=0 takes the widest "
               "runtime word per style (style_lane_width_cap; no cap "
               "needed on this machine). If sustained AVX-512 use "
               "downclocks your part, pin lane_width=256 and compare "
               "lane_widths rows.\",\n");
  std::fprintf(f, "  \"styles\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Throughput& t = rows[i];
    std::fprintf(f,
                 "    {\"style\": \"%s\", \"scalar_tps\": %.1f, "
                 "\"batched_1t_tps\": %.1f, \"batched_nt_tps\": %.1f, "
                 "\"speedup_batched\": %.2f, \"speedup_threads\": %.2f}%s\n",
                 t.style, t.scalar_tps, t.batched_1t_tps, t.batched_nt_tps,
                 t.batched_1t_tps / t.scalar_tps,
                 t.batched_nt_tps / t.batched_1t_tps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"lane_widths\": [\n");
  for (std::size_t i = 0; i < lane_rows.size(); ++i) {
    const LaneThroughput& r = lane_rows[i];
    std::fprintf(f,
                 "    {\"width\": %zu, \"style\": \"%s\", \"tps\": %.1f, "
                 "\"speedup_vs_64\": %.2f}%s\n",
                 r.width, r.style, r.tps, r.speedup_vs_64,
                 i + 1 < lane_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"pack_transpose\": [\n");
  for (std::size_t i = 0; i < pack_rows.size(); ++i) {
    const PackBench& r = pack_rows[i];
    std::fprintf(f,
                 "    {\"width\": %zu, \"gather_mlps\": %.1f, "
                 "\"transpose_mlps\": %.1f, \"speedup\": %.2f}%s\n",
                 r.width, r.gather_mlps, r.transpose_mlps, r.speedup,
                 i + 1 < pack_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (!sweep_rows.empty()) {
    std::fprintf(f, "  \"threads_sweep\": [\n");
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const ThreadSweepRow& r = sweep_rows[i];
      std::fprintf(f,
                   "    {\"style\": \"%s\", \"threads\": %zu, "
                   "\"tps\": %.1f, \"speedup_threads\": %.2f}%s\n",
                   r.style, r.threads, r.tps, r.speedup_vs_1t,
                   i + 1 < sweep_rows.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  }
  // sbox_tps_vs_n1: per-S-box throughput retained relative to the N=1
  // row — the regression tracker for the round-scaling cliff (N=2 keeps
  // well under half of the single-instance per-S-box rate; see the
  // README perf notes).
  const double sbox_tps_n1 =
      round_rows.empty() ? 0.0
                         : round_rows.front().tps *
                               static_cast<double>(round_rows.front().num_sboxes);
  std::fprintf(f, "  \"round_scaling\": [\n");
  for (std::size_t i = 0; i < round_rows.size(); ++i) {
    const double sbox_tps =
        round_rows[i].tps * static_cast<double>(round_rows[i].num_sboxes);
    std::fprintf(f,
                 "    {\"num_sboxes\": %zu, \"tps\": %.1f, "
                 "\"sbox_tps\": %.1f, \"sbox_tps_vs_n1\": %.2f}%s\n",
                 round_rows[i].num_sboxes, round_rows[i].tps, sbox_tps,
                 sbox_tps_n1 > 0.0 ? sbox_tps / sbox_tps_n1 : 0.0,
                 i + 1 < round_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"multi_attack\": {\"num_sboxes\": %zu, \"num_traces\": "
               "%zu, \"one_pass_seconds\": %.3f, \"independent_seconds\": "
               "%.3f, \"speedup\": %.2f, \"all_recovered\": %s},\n",
               multi.num_sboxes, multi.num_traces, multi.one_pass_seconds,
               multi.independent_seconds, multi.speedup,
               multi.all_recovered ? "true" : "false");
  std::fprintf(f,
               "  \"replay\": {\"num_traces\": %zu, \"record_tps\": %.1f, "
               "\"replay_tps\": %.1f, \"raw_replay_tps\": %.1f, "
               "\"simulate_tps\": %.1f, \"speedup_vs_simulate\": %.2f, "
               "\"decode_vs_raw\": %.2f, \"corpus_bytes_per_trace\": %.2f, "
               "\"compression_ratio\": %.2f, \"bit_identical\": %s},\n",
               replay.num_traces, replay.record_tps, replay.replay_tps,
               replay.raw_replay_tps, replay.simulate_tps, replay.speedup,
               replay.decode_vs_raw, replay.corpus_bytes_per_trace,
               replay.compression_ratio,
               replay.bit_identical ? "true" : "false");
  std::uint64_t v1_total = 0;
  std::uint64_t v2_total = 0;
  std::fprintf(f, "  \"compression\": [\n");
  for (std::size_t i = 0; i < compression_rows.size(); ++i) {
    const CompressionRow& r = compression_rows[i];
    v1_total += r.v1_bytes;
    v2_total += r.v2_bytes;
    std::fprintf(f,
                 "    {\"style\": \"%s\", \"v1_bytes\": %llu, "
                 "\"v2_bytes\": %llu, \"ratio\": %.2f}%s\n",
                 r.style, static_cast<unsigned long long>(r.v1_bytes),
                 static_cast<unsigned long long>(r.v2_bytes), r.ratio,
                 i + 1 < compression_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"compression_campaign\": {\"num_traces\": %zu, "
               "\"kind\": \"sampled\", \"noise_sigma\": 0.0, "
               "\"total_ratio\": %.2f},\n",
               compression_traces,
               v2_total > 0
                   ? static_cast<double>(v1_total) /
                         static_cast<double>(v2_total)
                   : 0.0);
  std::fprintf(f, "  \"accumulation\": [\n");
  for (std::size_t i = 0; i < accumulation_rows.size(); ++i) {
    const AccumulationRow& r = accumulation_rows[i];
    std::fprintf(f,
                 "    {\"kind\": \"%s\", \"num_traces\": %zu, "
                 "\"per_trace_tps\": %.1f, \"block_tps\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.kind, r.num_traces, r.per_trace_tps, r.block_tps,
                 r.speedup, i + 1 < accumulation_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"streaming_cpa\": {\"num_traces\": %zu, \"seconds\": %.3f, "
               "\"tps\": %.1f}\n",
               cpa_traces, cpa_seconds,
               static_cast<double>(cpa_traces) / cpa_seconds);
  std::fprintf(f, "}\n");
  std::fclose(f);
}

// Parses a --lanes token list: numeric widths must be runnable here —
// compiled in AND offered by the CPU under the active dispatch tier;
// "simd" resolves to the widest runtime width (>128) or is skipped with
// a note when only the portable words can run.
std::vector<std::size_t> parse_lane_list(const char* arg, bool* ok) {
  const std::vector<std::size_t> runnable = runtime_lane_widths();
  std::vector<std::size_t> widths;
  *ok = true;
  std::string list(arg);
  for (std::size_t pos = 0; pos < list.size();) {
    const std::size_t comma = std::min(list.find(',', pos), list.size());
    const std::string token = list.substr(pos, comma - pos);
    pos = comma + 1;
    if (token == "simd") {
      if (max_runtime_lane_width() > 128) {
        widths.push_back(max_runtime_lane_width());
      } else {
        std::fprintf(stderr,
                     "note: no SIMD lane word runnable here (build with "
                     "SABLE_SIMD and run on an AVX2+ CPU), skipping "
                     "\"simd\"\n");
      }
      continue;
    }
    const std::size_t width =
        static_cast<std::size_t>(std::strtoull(token.c_str(), nullptr, 10));
    if (std::find(runnable.begin(), runnable.end(), width) ==
        runnable.end()) {
      std::fprintf(stderr,
                   "lane width \"%s\" not runnable on this machine\n",
                   token.c_str());
      *ok = false;
      return widths;
    }
    widths.push_back(width);
  }
  return widths;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t num_traces = 200000;
  std::size_t threads = campaign_thread_count(CampaignOptions{});
  std::size_t max_round = 4;  // CI default: small sweep, still in the JSON
  std::vector<std::size_t> lane_widths = runtime_lane_widths();
  bool threads_sweep = false;
  std::string json_path = "BENCH_trace_throughput.json";
  for (int i = 1; i < argc; ++i) {
    bool ok = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--threads-sweep") == 0) {
      threads_sweep = true;
    } else if (std::strcmp(argv[i], "--traces") == 0 && i + 1 < argc) {
      num_traces =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--round") == 0 && i + 1 < argc) {
      max_round =
          static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--lanes") == 0 && i + 1 < argc) {
      lane_widths = parse_lane_list(argv[++i], &ok);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--threads-sweep] [--traces N] "
                   "[--round N] [--lanes 64,128,simd] [--json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (max_round == 0) max_round = 1;
  // 0 keeps the CampaignOptions contract: hardware concurrency.
  if (threads == 0) threads = campaign_thread_count(CampaignOptions{});

  std::printf(
      "== trace engine throughput: PRESENT S-box, %zu traces, %zu threads ==\n",
      num_traces, threads);
  std::printf("%-22s %13s %13s %13s %8s %8s %7s\n", "logic style",
              "scalar [tr/s]", "1-thr [tr/s]", "N-thr [tr/s]", "batched",
              "threads", ">=10x");
  bool all_pass = true;
  std::vector<Throughput> rows;
  for (LogicStyle style :
       {LogicStyle::kStaticCmos, LogicStyle::kSablGenuine,
        LogicStyle::kSablFullyConnected, LogicStyle::kSablEnhanced,
        LogicStyle::kWddlBalanced}) {
    const Throughput t = measure_style(style, num_traces, threads);
    const double batched_speedup = t.batched_1t_tps / t.scalar_tps;
    const double thread_speedup = t.batched_nt_tps / t.batched_1t_tps;
    const bool pass = batched_speedup >= 10.0;
    all_pass = all_pass && pass;
    std::printf("%-22s %13.0f %13.0f %13.0f %7.1fx %7.2fx %7s\n", t.style,
                t.scalar_tps, t.batched_1t_tps, t.batched_nt_tps,
                batched_speedup, thread_speedup, pass ? "yes" : "NO");
    rows.push_back(t);
  }

  // Lane widths: the pure word-width speedup, one thread, bit-identical
  // campaigns (the gate table above stays pinned to the 64-bit path).
  const std::vector<LaneThroughput> lane_rows =
      measure_lane_sweep(lane_widths, num_traces);
  if (!lane_rows.empty()) {
    std::printf("\nlane widths (batched, 1 thread, %zu traces):\n%-22s",
                num_traces, "logic style");
    for (std::size_t width : lane_widths) std::printf(" %8zu-ln", width);
    std::printf("\n");
    for (std::size_t i = 0; i < lane_rows.size(); ++i) {
      if (i % lane_widths.size() == 0) {
        std::printf("%-22s", lane_rows[i].style);
      }
      std::printf(" %7.2fMt/s", lane_rows[i].tps / 1e6);
      if ((i + 1) % lane_widths.size() == 0) std::printf("\n");
    }
  }

  // Lane packing: the 64x64 bit transpose vs. the per-bit gather it
  // replaced, per runtime width (same bit-identical output, pure speed).
  const std::vector<PackBench> pack_rows = measure_pack_sweep();
  std::printf("\npack_transpose (%s tier, full word, 8 vars):\n%10s %14s %17s %9s\n",
              to_string(active_tier()), "width", "gather [Ml/s]",
              "transpose [Ml/s]", "speedup");
  for (const PackBench& r : pack_rows) {
    std::printf("%10zu %14.0f %17.0f %8.1fx\n", r.width, r.gather_mlps,
                r.transpose_mlps, r.speedup);
  }

  // Thread scaling (--threads-sweep): campaign throughput at 1/2/4/N
  // threads per style, width-0 lane word. Advisory, never gating: a
  // speedup under 1.5x at 4 threads on a machine with >= 4 cores means
  // the sharded scheduler is not earning its threads.
  std::vector<ThreadSweepRow> sweep_rows;
  const unsigned cores = std::thread::hardware_concurrency();
  if (threads_sweep) {
    std::vector<std::size_t> counts{1, 2, 4};
    if (std::find(counts.begin(), counts.end(), threads) == counts.end()) {
      counts.push_back(threads);
    }
    const std::size_t sweep_traces = std::min<std::size_t>(num_traces, 60000);
    sweep_rows = measure_threads_sweep(counts, sweep_traces);
    std::printf("\nthread scaling (streamed, width-0 word, %zu traces, "
                "%u cores):\n%-22s",
                sweep_traces, cores, "logic style");
    for (std::size_t t : counts) std::printf(" %7zu-thr", t);
    std::printf("  x4-thr\n");
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      if (i % counts.size() == 0) std::printf("%-22s", sweep_rows[i].style);
      std::printf(" %7.2fMt/s", sweep_rows[i].tps / 1e6);
      if ((i + 1) % counts.size() == 0) {
        double at4 = 0.0;
        for (std::size_t j = i + 1 - counts.size(); j <= i; ++j) {
          if (sweep_rows[j].threads == 4) at4 = sweep_rows[j].speedup_vs_1t;
        }
        std::printf(" %6.2fx\n", at4);
        if (cores >= 4 && at4 > 0.0 && at4 < 1.5) {
          std::fprintf(stderr,
                       "ADVISORY: %s speedup_threads %.2fx < 1.5x at 4 "
                       "threads on %u cores — shard scheduling is not "
                       "scaling\n",
                       sweep_rows[i].style, at4, cores);
        }
      }
    }
    if (cores < 4) {
      std::printf("  (advisory 4-thread check skipped: %u core%s)\n", cores,
                  cores == 1 ? "" : "s");
    }
  }

  // Round targets: throughput vs. instance count (algorithmic-noise cost).
  const std::size_t round_traces = std::min<std::size_t>(num_traces, 50000);
  const std::vector<RoundThroughput> round_rows =
      measure_round_scaling(max_round, round_traces, threads);
  std::printf(
      "\nround targets (static CMOS, %zu traces, %zu threads):\n"
      "%10s %13s %16s\n",
      round_traces, threads, "S-boxes", "traces/s", "S-box evals/s");
  for (const RoundThroughput& r : round_rows) {
    std::printf("%10zu %13.0f %16.0f\n", r.num_sboxes, r.tps,
                r.tps * static_cast<double>(r.num_sboxes));
  }

  // One-pass multi-attack: 16 subkeys from one campaign vs 16 re-simulated
  // campaigns (advisory >= 8x; the binary gate stays the >=10x above).
  const MultiAttackBench multi = measure_multi_attack(threads);
  std::printf(
      "\nmulti-attack (16-S-box PRESENT round, %zu traces, %zu threads):\n"
      "  one-pass 16-subkey campaign: %.2f s; 16 independent campaigns: "
      "%.2f s\n  speedup %.1fx (expect >= 8x: %s), all subkeys recovered: "
      "%s\n",
      multi.num_traces, threads, multi.one_pass_seconds,
      multi.independent_seconds, multi.speedup,
      multi.speedup >= 8.0 ? "yes" : "NO", multi.all_recovered ? "yes" : "NO");

  // Recorded-corpus replay vs live simulation (same CPA campaign, same
  // results bit for bit; advisory, no gate — disk speed varies by runner).
  const ReplayBench replay = measure_replay(threads);
  std::printf(
      "\ncorpus replay (static CMOS CPA, %zu traces, %zu threads):\n"
      "  record %.0f traces/s, compressed replay %.0f traces/s, raw replay "
      "%.0f traces/s,\n  simulate %.0f traces/s; replay speedup vs simulate "
      "%.1fx, decode cost %.2fx raw\n  (expect >= 0.7x: %s); %.1f corpus "
      "bytes/trace, %.2fx smaller than raw; bit-identical: %s\n",
      replay.num_traces, threads, replay.record_tps, replay.replay_tps,
      replay.raw_replay_tps, replay.simulate_tps, replay.speedup,
      replay.decode_vs_raw, replay.decode_vs_raw >= 0.7 ? "yes" : "NO",
      replay.corpus_bytes_per_trace, replay.compression_ratio,
      replay.bit_identical ? "yes" : "NO");

  // Compression: the sampled all-styles noiseless campaign (v1 raw file
  // vs v2 compressed file; acceptance: total >= 3x).
  const std::size_t compression_traces =
      std::min<std::size_t>(num_traces, 12000);
  const std::vector<CompressionRow> compression_rows =
      measure_compression(compression_traces, threads);
  std::uint64_t v1_total = 0;
  std::uint64_t v2_total = 0;
  std::printf(
      "\ncorpus compression (sampled, noiseless, %zu traces):\n"
      "%-22s %12s %12s %8s\n",
      compression_traces, "logic style", "v1 [bytes]", "v2 [bytes]",
      "ratio");
  for (const CompressionRow& r : compression_rows) {
    v1_total += r.v1_bytes;
    v2_total += r.v2_bytes;
    std::printf("%-22s %12llu %12llu %7.1fx\n", r.style,
                static_cast<unsigned long long>(r.v1_bytes),
                static_cast<unsigned long long>(r.v2_bytes), r.ratio);
  }
  const double total_ratio =
      v2_total > 0
          ? static_cast<double>(v1_total) / static_cast<double>(v2_total)
          : 0.0;
  std::printf("%-22s %12llu %12llu %7.1fx (expect >= 3x: %s)\n", "total",
              static_cast<unsigned long long>(v1_total),
              static_cast<unsigned long long>(v2_total), total_ratio,
              total_ratio >= 3.0 ? "yes" : "NO");

  // Distinguisher accumulation: block-factored vs per-trace, one thread
  // (advisory; the 8-bit CPA speedup is the acceptance evidence).
  const std::vector<AccumulationRow> accumulation_rows =
      measure_accumulation();
  std::printf(
      "\ndistinguisher accumulation (block-factored vs per-trace, 1 "
      "thread):\n%-20s %10s %17s %14s %8s\n",
      "kind", "traces", "per-trace [tr/s]", "block [tr/s]", "speedup");
  for (const AccumulationRow& r : accumulation_rows) {
    std::printf("%-20s %10zu %17.0f %14.0f %7.1fx\n", r.kind, r.num_traces,
                r.per_trace_tps, r.block_tps, r.speedup);
    if (std::strcmp(r.kind, "cpa_8bit") == 0 && r.speedup < 4.0) {
      std::fprintf(stderr,
                   "ADVISORY: block-factored 8-bit CPA accumulation only "
                   "%.2fx over per-trace (expect >= 5x, warn < 4x) — the "
                   "contraction kernels are not earning the factoring\n",
                   r.speedup);
    }
  }

  // End-to-end: streaming one-pass CPA at MTD scale, nothing retained,
  // sharded over all requested threads.
  const std::size_t cpa_traces = 1000000;
  double cpa_seconds = 0.0;
  {
    const Technology tech = Technology::generic_180nm();
    TraceEngine engine(present_spec(), LogicStyle::kStaticCmos, tech);
    CampaignOptions options;
    options.num_traces = cpa_traces;
    options.key = {0x7};
    options.noise_sigma = 2e-16;
    options.num_threads = threads;
    options.lane_width = 0;  // showcase: widest compiled-in word
    const auto start = Clock::now();
    const AttackResult r =
        engine.cpa_campaign(
            options, AttackSelector{.model = PowerModel::kHammingWeight});
    cpa_seconds = seconds_since(start);
    std::printf(
        "\nstreaming CPA campaign: %zu traces in %.2f s (%.0f traces/s),\n"
        "recovered key 0x%zX (rank %zu), O(guesses) memory, one pass\n",
        cpa_traces, cpa_seconds,
        static_cast<double>(cpa_traces) / cpa_seconds, r.best_guess,
        r.rank_of(options.key[0]));
  }

  write_json(json_path, num_traces, threads, rows, lane_rows, pack_rows,
             sweep_rows, round_rows, multi, replay, compression_rows,
             compression_traces, accumulation_rows, cpa_traces, cpa_seconds);
  std::printf("wrote %s\n", json_path.c_str());
  return all_pass ? 0 : 1;
}
