// Tests for two-level minimization and algebraic factoring.
#include <gtest/gtest.h>

#include "crypto/sboxes.hpp"
#include "expr/factoring.hpp"
#include "expr/parser.hpp"
#include "expr/quine_mccluskey.hpp"
#include "expr/truth_table.hpp"

namespace sable {
namespace {

TruthTable table_from(const char* text, std::size_t n) {
  VarTable vars = VarTable::alphabetic(n);
  return table_of(parse_expression(text, vars), n);
}

TEST(CubeTest, CoversAndLiteralCount) {
  // Cube A.B' over 3 vars: value 0b001, mask 0b100 (C is don't-care).
  const Cube c{0b001, 0b100};
  EXPECT_TRUE(c.covers(0b001));
  EXPECT_TRUE(c.covers(0b101));
  EXPECT_FALSE(c.covers(0b011));
  EXPECT_EQ(c.literal_count(3), 2u);
}

TEST(QuineMcCluskeyTest, MinimizesClassicExample) {
  // f = A.B + A.B' == A: one prime implicant with one literal.
  const TruthTable t = table_from("A.B + A.B'", 2);
  const auto cover = minimize(t);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].literal_count(2), 1u);
  EXPECT_EQ(table_of(cubes_to_expr(cover, 2), 2), t);
}

TEST(QuineMcCluskeyTest, MinimizedSopMatchesTable) {
  const char* cases[] = {"A.B + C.D", "(A+B).(C+D)", "A ^ B ^ C",
                         "A.B + B.C + A.C", "A.(B + C.D) + A'.B'"};
  for (const char* text : cases) {
    const TruthTable t = table_from(text, 4);
    const ExprPtr sop = minimized_sop(t);
    EXPECT_EQ(table_of(sop, 4), t) << text;
  }
}

TEST(QuineMcCluskeyTest, ConstantFunctions) {
  TruthTable zero(3);
  EXPECT_EQ(minimized_sop(zero), Expr::constant(false));
  TruthTable one = zero.complemented();
  EXPECT_EQ(minimized_sop(one), Expr::constant(true));
}

TEST(QuineMcCluskeyTest, PrimeImplicantsCoverOnSet) {
  const TruthTable t = table_from("A.B' + A'.C + B.C'", 3);
  const auto primes = prime_implicants(t);
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    if (!t.get(row)) continue;
    bool covered = false;
    for (const auto& p : primes) {
      covered = covered || p.covers(static_cast<std::uint32_t>(row));
    }
    EXPECT_TRUE(covered) << "minterm " << row;
  }
}

TEST(QuineMcCluskeyTest, XorNeedsAllMinterms) {
  // XOR has no combinable adjacent minterms: cover size = 2^(n-1).
  const TruthTable t = table_from("A ^ B ^ C", 3);
  EXPECT_EQ(minimize(t).size(), 4u);
}

// Every 2-input function must minimize to an equivalent cover.
class AllTwoInputFunctions : public ::testing::TestWithParam<int> {};

TEST_P(AllTwoInputFunctions, MinimizeIsExactOnEveryFunction) {
  TruthTable t(2);
  for (std::size_t row = 0; row < 4; ++row) {
    t.set(row, (GetParam() >> row) & 1);
  }
  EXPECT_EQ(table_of(minimized_sop(t), 2), t);
}

INSTANTIATE_TEST_SUITE_P(AllSixteen, AllTwoInputFunctions,
                         ::testing::Range(0, 16));

TEST(FactoringTest, FactorsSharedLiteral) {
  const TruthTable t = table_from("A.B + A.C", 3);
  const ExprPtr f = factored_form(t);
  EXPECT_EQ(table_of(f, 3), t);
  // A.(B + C): 3 literals instead of 4.
  EXPECT_LE(f->literal_count(), 3u);
}

TEST(FactoringTest, FactoredFormsStayEquivalent) {
  const char* cases[] = {"A.B + C.D", "(A+B).(C+D)", "A ^ B",
                         "A.B.C + A.B.D' + A'.C.D"};
  for (const char* text : cases) {
    const TruthTable t = table_from(text, 4);
    EXPECT_EQ(table_of(factored_form(t), 4), t) << text;
  }
}

TEST(FactoringTest, SboxBitsFactorCorrectly) {
  const SboxSpec spec = present_spec();
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    const TruthTable t = sbox_output_bit(spec, bit);
    EXPECT_EQ(table_of(factored_form(t), spec.in_bits), t) << "bit " << bit;
    EXPECT_EQ(table_of(minimized_sop(t), spec.in_bits), t) << "bit " << bit;
  }
}

}  // namespace
}  // namespace sable
