// Modified nodal analysis (MNA) system for one Newton iteration.
//
// Unknown ordering: node voltages v_1..v_{N-1} (ground excluded) followed by
// one branch current per voltage source. Convention: the branch current of a
// source flows *into* its positive terminal, so the current a supply
// delivers to the circuit is the negative of its branch current.
#pragma once

#include <cstddef>
#include <vector>

#include "spice/circuit.hpp"
#include "util/matrix.hpp"

namespace sable::spice {

class MnaSystem {
 public:
  MnaSystem(std::size_t num_nodes, std::size_t num_vsources);

  std::size_t unknown_count() const { return unknowns_; }
  std::size_t node_unknown(SpiceNode n) const { return n - 1; }
  std::size_t source_unknown(std::size_t src) const {
    return num_nodes_ - 1 + src;
  }

  /// Zeroes matrix and right-hand side for a fresh iteration.
  void clear();

  /// Two-terminal conductance between nodes a and b.
  void stamp_conductance(SpiceNode a, SpiceNode b, double g);
  /// Constant current `amps` injected INTO node n.
  void stamp_current_into(SpiceNode n, double amps);
  /// Jacobian entry: d(current leaving `row`)/d(v of `col`).
  void stamp_jacobian(SpiceNode row, SpiceNode col, double g);
  /// Voltage source `src` forcing v_pos - v_neg = volts.
  void stamp_vsource(std::size_t src, SpiceNode pos, SpiceNode neg,
                     double volts);

  /// Solves the assembled system; `solution` gets unknown_count() values.
  /// Returns false when the matrix is singular.
  bool solve(std::vector<double>& solution);

 private:
  std::size_t num_nodes_;
  std::size_t unknowns_;
  DenseMatrix a_;
  std::vector<double> b_;
};

}  // namespace sable::spice
