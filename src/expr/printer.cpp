#include "expr/printer.hpp"

#include "util/error.hpp"

namespace sable {

namespace {

// Precedence: OR lowest (1), AND (2), NOT/atom (3). A child is
// parenthesized when its precedence is lower than the context's.
int precedence(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::kOr:
      return 1;
    case ExprKind::kAnd:
      return 2;
    default:
      return 3;
  }
}

void print(const ExprPtr& e, const VarTable& vars, int context_prec,
           std::string& out) {
  const int prec = precedence(*e);
  const bool paren = prec < context_prec;
  if (paren) out += '(';
  switch (e->kind()) {
    case ExprKind::kConst0:
      out += '0';
      break;
    case ExprKind::kConst1:
      out += '1';
      break;
    case ExprKind::kVar:
      out += vars.name(e->var());
      break;
    case ExprKind::kNot: {
      const auto& sub = e->operands()[0];
      if (sub->is_var() || sub->is_const()) {
        print(sub, vars, 3, out);
      } else {
        out += '(';
        print(sub, vars, 0, out);
        out += ')';
      }
      out += '\'';
      break;
    }
    case ExprKind::kAnd: {
      bool first = true;
      for (const auto& op : e->operands()) {
        if (!first) out += '.';
        print(op, vars, prec, out);
        first = false;
      }
      break;
    }
    case ExprKind::kOr: {
      bool first = true;
      for (const auto& op : e->operands()) {
        if (!first) out += " + ";
        print(op, vars, prec, out);
        first = false;
      }
      break;
    }
  }
  if (paren) out += ')';
}

void sexpr(const ExprPtr& e, const VarTable& vars, std::string& out) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      out += "0";
      return;
    case ExprKind::kConst1:
      out += "1";
      return;
    case ExprKind::kVar:
      out += vars.name(e->var());
      return;
    case ExprKind::kNot:
      out += "(not ";
      sexpr(e->operands()[0], vars, out);
      out += ')';
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
      out += e->kind() == ExprKind::kAnd ? "(and" : "(or";
      for (const auto& op : e->operands()) {
        out += ' ';
        sexpr(op, vars, out);
      }
      out += ')';
      return;
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

}  // namespace

std::string to_string(const ExprPtr& e, const VarTable& vars) {
  std::string out;
  print(e, vars, 0, out);
  return out;
}

std::string to_sexpr(const ExprPtr& e, const VarTable& vars) {
  std::string out;
  sexpr(e, vars, out);
  return out;
}

}  // namespace sable
