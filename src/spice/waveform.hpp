// Simulation results: sampled node voltages and source branch currents.
#pragma once

#include <string>
#include <vector>

namespace sable::spice {

class TranResult {
 public:
  std::vector<double> time;
  /// voltage[node][sample]; node 0 is ground (all zeros).
  std::vector<std::vector<double>> voltage;
  /// branch_current[source][sample]; positive = into the + terminal.
  std::vector<std::vector<double>> branch_current;
  std::vector<std::string> node_names;
  std::vector<std::string> source_names;

  /// Voltage samples of a named node.
  const std::vector<double>& v(const std::string& node) const;
  /// Branch current samples of a named source.
  const std::vector<double>& i(const std::string& source) const;

  /// Index of the first sample with time >= t (clamped to the last sample).
  std::size_t sample_at(double t) const;
};

}  // namespace sable::spice
