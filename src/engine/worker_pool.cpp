#include "engine/worker_pool.hpp"

namespace sable {

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::run_ephemeral(
    std::size_t parties, const std::function<void(std::size_t)>& body) {
  std::mutex error_mutex;
  std::exception_ptr worker_error;
  std::vector<std::thread> spawned;
  spawned.reserve(parties - 1);
  for (std::size_t party = 1; party < parties; ++party) {
    spawned.emplace_back([&, party] {
      try {
        body(party);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!worker_error) worker_error = std::current_exception();
      }
    });
  }
  std::exception_ptr caller_error;
  try {
    body(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  for (std::thread& thread : spawned) thread.join();
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void WorkerPool::run(std::size_t parties,
                     const std::function<void(std::size_t)>& body) {
  if (parties <= 1) {
    body(0);
    return;
  }
  std::unique_lock<std::mutex> run_lock(run_mutex_, std::try_to_lock);
  if (!run_lock.owns_lock()) {
    run_ephemeral(parties, body);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (threads_.size() < parties - 1) {
      const std::size_t index = threads_.size() + 1;
      threads_.emplace_back([this, index] { worker_main(index); });
    }
    body_ = &body;
    participants_ = parties - 1;
    active_ = parties - 1;
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();
  std::exception_ptr caller_error;
  try {
    body(0);
  } catch (...) {
    caller_error = std::current_exception();
  }
  std::exception_ptr worker_error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    body_ = nullptr;
    worker_error = error_;
  }
  if (caller_error) std::rethrow_exception(caller_error);
  if (worker_error) std::rethrow_exception(worker_error);
}

void WorkerPool::worker_main(std::size_t index) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // A generation this thread hasn't served yet, with enough parties
      // to include it: threads beyond participants_ sleep through small
      // runs and catch up (generation_ != seen stays true) on the next
      // one that is wide enough.
      work_cv_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen && index <= participants_);
      });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
    }
    try {
      (*body)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      last = (--active_ == 0);
    }
    if (last) done_cv_.notify_all();
  }
}

}  // namespace sable
