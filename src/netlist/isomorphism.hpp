// Network isomorphism up to internal-node renaming.
//
// Two DPDNs are the same circuit if one can be mapped onto the other by a
// bijection of internal nodes that preserves external nodes and maps every
// switch (gate literal, endpoints, role) onto a distinct switch. Used by
// tests and the transformer benches to compare generated networks with
// reference schematics without depending on construction order.
#pragma once

#include "netlist/network.hpp"

namespace sable {

/// True when `a` and `b` are isomorphic as labelled multigraphs with
/// X, Y, Z fixed. Exponential in the worst case but the search is pruned
/// by degree/label signatures; gate-sized networks resolve instantly.
bool networks_isomorphic(const DpdnNetwork& a, const DpdnNetwork& b);

}  // namespace sable
