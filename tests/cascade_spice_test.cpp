// Integration test: two cascaded SABL gates at transistor level.
//
// The §2/§3 story depends on a cascade property: during precharge the
// upstream gate's outputs return to 0 only after a stage delay, so the
// downstream gate recharges its DPDN through the still-complementary old
// inputs. This testbench builds gate1 (AND) feeding gate2 (OR with an
// external input) inside one SPICE circuit — no behavioural shortcuts —
// and checks functionality plus per-cycle supply-energy constancy of the
// two-gate pipeline.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fc_synthesizer.hpp"
#include "expr/parser.hpp"
#include "expr/truth_table.hpp"
#include "sabl/sabl_gate.hpp"
#include "spice/measure.hpp"
#include "spice/transient.hpp"

namespace sable {
namespace {

// Builds a two-stage pipeline: g1 = A.B (SABL), g2 = g1 + C (SABL), with
// g2's first input wired to g1's out/outb nodes.
struct Pipeline {
  spice::Circuit circuit;
  double period = 4e-9;
  double edge = 50e-12;
  double delay = 250e-12;
};

Pipeline build_pipeline(const Technology& tech,
                        const std::vector<std::uint64_t>& abc_sequence) {
  Pipeline pipe;
  VarTable vars1;
  const ExprPtr f1 = parse_expression("A.B", vars1);
  VarTable vars2;
  const ExprPtr f2 = parse_expression("G + C", vars2);
  const SizingPlan sizing = SizingPlan::defaults(tech);

  // Assemble both gates into one circuit by namespacing node names.
  const DpdnNetwork net1 = synthesize_fc_dpdn(f1, 2);
  const DpdnNetwork net2 = synthesize_fc_dpdn(f2, 2);
  const SablGateCircuit g1 = assemble_sabl_gate(net1, vars1, tech, sizing);
  const SablGateCircuit g2 = assemble_sabl_gate(net2, vars2, tech, sizing);

  auto merge = [&](const spice::Circuit& src, const std::string& prefix,
                   const std::map<std::string, std::string>& rewires) {
    auto rename = [&](const std::string& node) -> std::string {
      if (node == "0" || node == "vdd" || node == "clk") return node;
      const auto it = rewires.find(node);
      if (it != rewires.end()) return it->second;
      return prefix + node;
    };
    for (const auto& r : src.resistors()) {
      pipe.circuit.add_resistor(rename(src.node_name(r.a)),
                                rename(src.node_name(r.b)), r.resistance);
    }
    for (const auto& c : src.capacitors()) {
      pipe.circuit.add_capacitor(rename(src.node_name(c.a)),
                                 rename(src.node_name(c.b)), c.capacitance);
    }
    for (const auto& m : src.mosfets()) {
      pipe.circuit.add_mosfet(prefix + m.name, m.type,
                              rename(src.node_name(m.drain)),
                              rename(src.node_name(m.gate)),
                              rename(src.node_name(m.source)), m.params,
                              m.width, m.length);
    }
  };
  merge(g1.circuit, "g1_", {});
  // Gate 2's differential input G comes from gate 1's outputs.
  merge(g2.circuit, "g2_",
        {{"in_G", "g1_out"}, {"inb_G", "g1_outb"}});

  pipe.circuit.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(tech.vdd));
  pipe.circuit.add_vsource(
      "clk", "clk", "0",
      spice::Waveform::pulse(0.0, tech.vdd, 0.0, pipe.edge, pipe.edge,
                             pipe.period / 2 - pipe.edge, pipe.period));

  // Primary inputs A, B (gate 1) and C (gate 2). C arrives one stage
  // later than A/B would in a real pipeline; giving it the same timing is
  // conservative for the constancy check.
  auto rail = [&](auto bit_of) {
    std::vector<std::pair<double, double>> pts = {{0.0, 0.0}};
    for (std::size_t k = 0; k < abc_sequence.size(); ++k) {
      if (!bit_of(abc_sequence[k])) continue;
      const double t0 = static_cast<double>(k) * pipe.period + pipe.delay;
      pts.push_back({t0, 0.0});
      pts.push_back({t0 + pipe.edge, tech.vdd});
      pts.push_back({t0 + pipe.period / 2, tech.vdd});
      pts.push_back({t0 + pipe.period / 2 + pipe.edge, 0.0});
    }
    return spice::Waveform::pwl(std::move(pts));
  };
  auto add_input = [&](const std::string& name, int bit) {
    pipe.circuit.add_vsource(
        "v" + name, "g1_" + name, "0",
        rail([bit](std::uint64_t a) { return ((a >> bit) & 1u) != 0; }));
    pipe.circuit.add_vsource(
        "v" + name + "b", "g1_" + name + "b", "0",
        rail([bit](std::uint64_t a) { return ((a >> bit) & 1u) == 0; }));
  };
  // Gate-1 input node names are g1_in_A etc.; build them directly.
  pipe.circuit.add_vsource(
      "vin_A", "g1_in_A", "0",
      rail([](std::uint64_t a) { return (a & 1u) != 0; }));
  pipe.circuit.add_vsource(
      "vinb_A", "g1_inb_A", "0",
      rail([](std::uint64_t a) { return (a & 1u) == 0; }));
  pipe.circuit.add_vsource(
      "vin_B", "g1_in_B", "0",
      rail([](std::uint64_t a) { return (a & 2u) != 0; }));
  pipe.circuit.add_vsource(
      "vinb_B", "g1_inb_B", "0",
      rail([](std::uint64_t a) { return (a & 2u) == 0; }));
  pipe.circuit.add_vsource(
      "vin_C", "g2_in_C", "0",
      rail([](std::uint64_t a) { return (a & 4u) != 0; }));
  pipe.circuit.add_vsource(
      "vinb_C", "g2_inb_C", "0",
      rail([](std::uint64_t a) { return (a & 4u) == 0; }));
  (void)add_input;
  return pipe;
}

TEST(CascadeSpiceTest, PipelineComputesAndStaysConstantPower) {
  const Technology tech = Technology::generic_180nm();
  // (A,B,C) assignments; two warm-up cycles then the measured ones.
  const std::vector<std::uint64_t> seq = {0b011, 0b011, 0b000, 0b011,
                                          0b100, 0b111, 0b001, 0b010};
  Pipeline pipe = build_pipeline(tech, seq);

  spice::TransientOptions tran;
  tran.t_stop = static_cast<double>(seq.size()) * pipe.period;
  tran.dt = 2e-12;
  const spice::TranResult waves = spice::run_transient(pipe.circuit, tran);

  // Functional check: sample g2 outputs late in each evaluation phase.
  // Stage 2 sees stage 1's *current-cycle* output (domino style within the
  // same clock phase), so out2 = (A.B) + C of the same cycle.
  for (std::size_t k = 2; k < seq.size(); ++k) {
    const double t =
        static_cast<double>(k) * pipe.period + pipe.period * 0.48;
    const std::size_t s = waves.sample_at(t);
    const bool a = (seq[k] & 1) != 0;
    const bool b = (seq[k] & 2) != 0;
    const bool c = (seq[k] & 4) != 0;
    const bool expected = (a && b) || c;
    EXPECT_NEAR(waves.v("g2_out")[s], expected ? tech.vdd : 0.0, 0.15)
        << "cycle " << k;
    EXPECT_NEAR(waves.v("g1_out")[s], (a && b) ? tech.vdd : 0.0, 0.15)
        << "cycle " << k;
  }

  // Constant power: per-cycle supply energy of the whole pipeline. The
  // residual spread of a *non-enhanced* FC cascade is a few percent: gate 2
  // evaluates early when C alone decides it, so its current profile shifts
  // with data — exactly the effect the §5 enhancement targets. Assert the
  // spread stays in that few-percent band (the memory effect it cures is an
  // order of magnitude larger, see fig2/fig4 benches).
  double lo = 1e9;
  double hi = 0.0;
  for (std::size_t k = 2; k < seq.size(); ++k) {
    const double t0 = static_cast<double>(k) * pipe.period;
    const double e =
        spice::delivered_energy(waves, "vdd", t0, t0 + pipe.period);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_LT((hi - lo) / hi, 0.06);
}

}  // namespace
}  // namespace sable
