#include "sabl/testbench.hpp"

#include "spice/measure.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// PWL rail for one input literal over the padded input sequence.
// For cycle k the literal is `level` during the window
// [kT + d, kT + T/2 + d] (d = input_delay), with `edge`-long transitions.
spice::Waveform input_waveform(const std::vector<bool>& level_per_cycle,
                               double vdd, const TestbenchOptions& opt) {
  // Dynamic-logic rails return to 0 every precharge, so the high windows of
  // consecutive cycles never abut: each active cycle is a separate pulse.
  std::vector<std::pair<double, double>> pts;
  pts.emplace_back(0.0, 0.0);
  for (std::size_t k = 0; k < level_per_cycle.size(); ++k) {
    if (!level_per_cycle[k]) continue;
    const double t0 = static_cast<double>(k) * opt.period + opt.input_delay;
    const double t1 = t0 + opt.period / 2;  // hold into the precharge phase
    pts.emplace_back(t0, 0.0);
    pts.emplace_back(t0 + opt.edge, vdd);
    pts.emplace_back(t1, vdd);
    pts.emplace_back(t1 + opt.edge, 0.0);
  }
  return spice::Waveform::pwl(std::move(pts));
}

// Full-swing rail for CVSL: holds the cycle's level for the whole period.
spice::Waveform static_waveform(const std::vector<bool>& level_per_cycle,
                                double vdd, const TestbenchOptions& opt) {
  std::vector<std::pair<double, double>> pts;
  double current = level_per_cycle.empty() || !level_per_cycle[0] ? 0.0 : vdd;
  pts.emplace_back(0.0, current);
  for (std::size_t k = 1; k < level_per_cycle.size(); ++k) {
    const double target = level_per_cycle[k] ? vdd : 0.0;
    if (target == current) continue;
    const double t = static_cast<double>(k) * opt.period;
    pts.emplace_back(t, current);
    pts.emplace_back(t + opt.edge, target);
    current = target;
  }
  return spice::Waveform::pwl(std::move(pts));
}

std::vector<std::uint64_t> pad_warmup(const std::vector<std::uint64_t>& inputs,
                                      std::size_t warmup) {
  SABLE_REQUIRE(!inputs.empty(), "testbench requires at least one input");
  std::vector<std::uint64_t> padded(warmup, inputs.front());
  padded.insert(padded.end(), inputs.begin(), inputs.end());
  return padded;
}

void measure_cycles(const spice::TranResult& waves,
                    const std::vector<std::uint64_t>& inputs,
                    std::size_t warmup, double vdd,
                    const TestbenchOptions& opt, bool dynamic_precharge,
                    SablRunResult& out) {
  out.cycles.reserve(inputs.size() - warmup);
  out.cycle_start.reserve(inputs.size() - warmup);
  for (std::size_t k = warmup; k < inputs.size(); ++k) {
    const double t0 = static_cast<double>(k) * opt.period;
    const double t1 = t0 + opt.period;
    CycleMeasurement m;
    m.assignment = inputs[k];
    m.energy = spice::delivered_energy(waves, "vdd", t0, t1);
    m.charge = spice::delivered_charge(waves, "vdd", t0, t1);
    m.peak_current = spice::peak_delivered_current(waves, "vdd", t0, t1);
    if (dynamic_precharge) {
      m.recharged_capacitance =
          spice::delivered_charge(waves, "vdd", t0 + opt.period / 2, t1) / vdd;
    }
    out.cycles.push_back(m);
    out.cycle_start.push_back(t0);
  }
}

}  // namespace

std::vector<double> cycle_energies(const SablRunResult& run) {
  std::vector<double> energies;
  energies.reserve(run.cycles.size());
  for (const CycleMeasurement& c : run.cycles) energies.push_back(c.energy);
  return energies;
}

SablRunResult run_sabl_sequence(const DpdnNetwork& net, const VarTable& vars,
                                const Technology& tech,
                                const SizingPlan& sizing,
                                const std::vector<std::uint64_t>& inputs,
                                const TestbenchOptions& options) {
  const auto padded = pad_warmup(inputs, options.warmup_cycles);
  SablGateCircuit gate = assemble_sabl_gate(net, vars, tech, sizing);
  spice::Circuit& ckt = gate.circuit;

  ckt.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(tech.vdd));
  // clk: high (evaluation) during the first half of each period.
  ckt.add_vsource("clk", "clk", "0",
                  spice::Waveform::pulse(0.0, tech.vdd, 0.0, options.edge,
                                         options.edge,
                                         options.period / 2 - options.edge,
                                         options.period));
  for (VarId v = 0; v < net.num_vars(); ++v) {
    std::vector<bool> lvl_true;
    std::vector<bool> lvl_false;
    lvl_true.reserve(padded.size());
    lvl_false.reserve(padded.size());
    for (std::uint64_t a : padded) {
      const bool bit = (a >> v) & 1u;
      lvl_true.push_back(bit);
      lvl_false.push_back(!bit);
    }
    ckt.add_vsource("v" + gate.input_true[v], gate.input_true[v], "0",
                    input_waveform(lvl_true, tech.vdd, options));
    ckt.add_vsource("v" + gate.input_false[v], gate.input_false[v], "0",
                    input_waveform(lvl_false, tech.vdd, options));
  }

  spice::TransientOptions tran;
  tran.t_stop = static_cast<double>(padded.size()) * options.period;
  tran.dt = options.dt;
  SablRunResult result;
  result.period = options.period;
  result.waves = spice::run_transient(ckt, tran);
  measure_cycles(result.waves, padded, options.warmup_cycles, tech.vdd,
                 options, /*dynamic_precharge=*/true, result);
  return result;
}

SablRunResult run_cvsl_sequence(const DpdnNetwork& net, const VarTable& vars,
                                const Technology& tech,
                                const SizingPlan& sizing,
                                const std::vector<std::uint64_t>& inputs,
                                const TestbenchOptions& options) {
  const auto padded = pad_warmup(inputs, options.warmup_cycles);
  CvslGateCircuit gate = assemble_cvsl_gate(net, vars, tech, sizing);
  spice::Circuit& ckt = gate.circuit;

  ckt.add_vsource("vdd", "vdd", "0", spice::Waveform::dc(tech.vdd));
  for (VarId v = 0; v < net.num_vars(); ++v) {
    std::vector<bool> lvl_true;
    std::vector<bool> lvl_false;
    lvl_true.reserve(padded.size());
    lvl_false.reserve(padded.size());
    for (std::uint64_t a : padded) {
      const bool bit = (a >> v) & 1u;
      lvl_true.push_back(bit);
      lvl_false.push_back(!bit);
    }
    ckt.add_vsource("v" + gate.input_true[v], gate.input_true[v], "0",
                    static_waveform(lvl_true, tech.vdd, options));
    ckt.add_vsource("v" + gate.input_false[v], gate.input_false[v], "0",
                    static_waveform(lvl_false, tech.vdd, options));
  }

  spice::TransientOptions tran;
  tran.t_stop = static_cast<double>(padded.size()) * options.period;
  tran.dt = options.dt;
  SablRunResult result;
  result.period = options.period;
  result.waves = spice::run_transient(ckt, tran);
  measure_cycles(result.waves, padded, options.warmup_cycles, tech.vdd,
                 options, /*dynamic_precharge=*/false, result);
  return result;
}

}  // namespace sable
