#include "expr/truth_table.hpp"

#include <bit>

#include "util/error.hpp"

namespace sable {

TruthTable::TruthTable(std::size_t num_vars) : num_vars_(num_vars) {
  SABLE_REQUIRE(num_vars <= kMaxVars, "truth table limited to 20 variables");
  bits_.assign((num_rows() + 63) / 64, 0);
}

bool TruthTable::get(std::size_t row) const {
  SABLE_ASSERT(row < num_rows(), "truth table row out of range");
  return (bits_[row / 64] >> (row % 64)) & 1u;
}

void TruthTable::set(std::size_t row, bool value) {
  SABLE_ASSERT(row < num_rows(), "truth table row out of range");
  const std::uint64_t mask = std::uint64_t{1} << (row % 64);
  if (value) {
    bits_[row / 64] |= mask;
  } else {
    bits_[row / 64] &= ~mask;
  }
}

std::size_t TruthTable::popcount() const {
  std::size_t n = 0;
  for (auto word : bits_) n += static_cast<std::size_t>(std::popcount(word));
  return n;
}

TruthTable TruthTable::complemented() const {
  TruthTable out(num_vars_);
  for (std::size_t i = 0; i < bits_.size(); ++i) out.bits_[i] = ~bits_[i];
  // Clear padding bits beyond num_rows() so operator== stays meaningful.
  const std::size_t used = num_rows() % 64;
  if (used != 0) {
    out.bits_.back() &= (std::uint64_t{1} << used) - 1;
  }
  return out;
}

bool evaluate(const ExprPtr& e, std::uint64_t assignment) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      return false;
    case ExprKind::kConst1:
      return true;
    case ExprKind::kVar:
      return (assignment >> e->var()) & 1u;
    case ExprKind::kNot:
      return !evaluate(e->operands()[0], assignment);
    case ExprKind::kAnd:
      for (const auto& op : e->operands()) {
        if (!evaluate(op, assignment)) return false;
      }
      return true;
    case ExprKind::kOr:
      for (const auto& op : e->operands()) {
        if (evaluate(op, assignment)) return true;
      }
      return false;
  }
  SABLE_ASSERT(false, "unreachable expression kind");
}

TruthTable table_of(const ExprPtr& e, std::size_t num_vars) {
  TruthTable t(num_vars);
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    t.set(row, evaluate(e, row));
  }
  return t;
}

bool equivalent(const ExprPtr& a, const ExprPtr& b, std::size_t num_vars) {
  return table_of(a, num_vars) == table_of(b, num_vars);
}

}  // namespace sable
