// Property tests for series-parallel extraction: round-trips through the
// genuine builder for random expressions, order preservation, and the
// reversal invariants the §4.2 transformer depends on.
#include <gtest/gtest.h>

#include "core/genuine_builder.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "expr/random_expr.hpp"
#include "expr/transforms.hpp"
#include "expr/truth_table.hpp"
#include "netlist/sp_tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

class SpTreeRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SpTreeRoundTrip, ExtractionInvertsConstruction) {
  Rng rng(0x7EE + static_cast<std::uint64_t>(GetParam()));
  RandomExprOptions opt;
  opt.num_vars = 5;
  opt.num_literals = 10;
  const ExprPtr f = random_nnf(rng, opt);
  const DpdnNetwork genuine = build_genuine_dpdn(f, opt.num_vars);
  const BranchPartition part = partition_branches(genuine);
  const ExprPtr fx =
      extract_sp_expression(genuine, part.x_branch, DpdnNetwork::kNodeX);
  const ExprPtr fy =
      extract_sp_expression(genuine, part.y_branch, DpdnNetwork::kNodeY);

  // Semantics: fx == f, fy == f'.
  EXPECT_TRUE(equivalent(fx, f, opt.num_vars));
  EXPECT_TRUE(equivalent(fy, Expr::negate(f), opt.num_vars));
  // Inventory: one literal per device.
  EXPECT_EQ(fx->literal_count(), part.x_branch.size());
  EXPECT_EQ(fy->literal_count(), part.y_branch.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpTreeRoundTrip, ::testing::Range(0, 20));

TEST(SpTreeOrderTest, SeriesOrderIsTopToBottom) {
  VarTable vars;
  // A at the top of the chain (next to X), D at the bottom (next to Z).
  const ExprPtr f = parse_expression("A.B.C.D", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  const BranchPartition part = partition_branches(genuine);
  const ExprPtr fx =
      extract_sp_expression(genuine, part.x_branch, DpdnNetwork::kNodeX);
  EXPECT_EQ(to_string(fx, vars), "A.B.C.D");
}

TEST(SpTreeOrderTest, NestedStructureSurvives) {
  VarTable vars;
  const ExprPtr f = parse_expression("(A + B.C).(D + B)", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 4);
  const BranchPartition part = partition_branches(genuine);
  const ExprPtr fx =
      extract_sp_expression(genuine, part.x_branch, DpdnNetwork::kNodeX);
  // The AND chain order is preserved exactly; OR operand order within a
  // parallel group is not semantically meaningful but the structure is.
  ASSERT_EQ(fx->kind(), ExprKind::kAnd);
  EXPECT_TRUE(equivalent(fx->operands()[0],
                         parse_expression("A + B.C", vars), 4));
  EXPECT_TRUE(equivalent(fx->operands()[1],
                         parse_expression("D + B", vars), 4));
}

TEST(SpTreeOrderTest, SingleDeviceBranch) {
  VarTable vars;
  const ExprPtr f = parse_expression("A", vars);
  const DpdnNetwork genuine = build_genuine_dpdn(f, 1);
  const BranchPartition part = partition_branches(genuine);
  EXPECT_EQ(part.x_branch.size(), 1u);
  const ExprPtr fx =
      extract_sp_expression(genuine, part.x_branch, DpdnNetwork::kNodeX);
  EXPECT_EQ(to_string(fx, vars), "A");
}

TEST(SpTreeErrorTest, NonSpBranchIsRejected) {
  // A bridge (Wheatstone) topology is not series-parallel reducible.
  DpdnNetwork net(5);
  const NodeId u = net.add_internal_node();
  const NodeId v = net.add_internal_node();
  net.add_switch(SignalLiteral{0, true}, DpdnNetwork::kNodeX, u);
  net.add_switch(SignalLiteral{1, true}, DpdnNetwork::kNodeX, v);
  net.add_switch(SignalLiteral{2, true}, u, v);  // the bridge
  net.add_switch(SignalLiteral{3, true}, u, DpdnNetwork::kNodeZ);
  net.add_switch(SignalLiteral{4, true}, v, DpdnNetwork::kNodeZ);
  std::vector<std::size_t> branch = {0, 1, 2, 3, 4};
  EXPECT_THROW(extract_sp_expression(net, branch, DpdnNetwork::kNodeX),
               InvalidArgument);
}

TEST(SpTreeErrorTest, EmptyBranchIsRejected) {
  DpdnNetwork net(1);
  EXPECT_THROW(extract_sp_expression(net, {}, DpdnNetwork::kNodeX),
               InvalidArgument);
}

}  // namespace
}  // namespace sable
