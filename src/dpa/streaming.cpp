#include "dpa/streaming.hpp"

#include <cmath>

#include "io/serial.hpp"
#include "util/error.hpp"

namespace sable {

namespace {

// Accumulator type tags: the first u32 of every serialized accumulator
// blob, so loading a blob into the wrong accumulator type fails loudly.
constexpr std::uint32_t kCpaTag = 0x53AB1001;
constexpr std::uint32_t kDomTag = 0x53AB1002;
constexpr std::uint32_t kMultiCpaTag = 0x53AB1003;

}  // namespace

// The prediction tables come from crypto/leakage.hpp — the same
// plaintext-major layout every distinguisher (including the second-order
// centered-product CPA) shares.

// ---- StreamingCpa ---------------------------------------------------------

StreamingCpa::StreamingCpa(const SboxSpec& spec, PowerModel model,
                           std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      model_(model),
      bit_(bit),
      predictions_(shared_prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      c_ht_(num_guesses_, 0.0) {}

void StreamingCpa::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  const double dt_new = t_.add(sample);
  const double inv_n = 1.0 / static_cast<double>(t_.count());
  const double* pred = predictions_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    c_ht_[g] += dh * dt_new;
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

void StreamingCpa::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

void StreamingCpa::merge(const StreamingCpa& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ &&
                    model_ == other.model_ && bit_ == other.bit_,
                "merge requires identically configured CPA accumulators");
  // Same-spec check: model/bit alone would let two different same-width
  // S-boxes merge into meaningless co-moments. Copies of one prototype
  // share the table, so the pointer comparison is the common fast path.
  SABLE_REQUIRE(predictions_ == other.predictions_ ||
                    *predictions_ == *other.predictions_,
                "merge requires accumulators over the same S-box spec");
  if (other.t_.count() == 0) return;
  if (t_.count() == 0) {
    t_ = other.t_;
    mean_h_ = other.mean_h_;
    m2_h_ = other.m2_h_;
    c_ht_ = other.c_ht_;
    return;
  }
  const double na = static_cast<double>(t_.count());
  const double nb = static_cast<double>(other.t_.count());
  const double n = na + nb;
  const double coeff = na * nb / n;
  const double dt = other.t_.mean() - t_.mean();
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double dh = other.mean_h_[g] - mean_h_[g];
    c_ht_[g] += other.c_ht_[g] + dh * dt * coeff;
    m2_h_[g] += other.m2_h_[g] + dh * dh * coeff;
    mean_h_[g] += dh * (nb / n);
  }
  t_.merge(other.t_);
}

AttackResult StreamingCpa::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (m2_h_[g] > 0.0 && t_.m2() > 0.0) {
      scores[g] = std::fabs(c_ht_[g] / std::sqrt(m2_h_[g] * t_.m2()));
    }
  }
  return make_attack_result(std::move(scores));
}

void StreamingCpa::save(ByteWriter& writer) const {
  writer.u32(kCpaTag);
  writer.u64(num_guesses_);
  writer.u32(static_cast<std::uint32_t>(model_));
  writer.u64(bit_);
  t_.save(writer);
  writer.f64s(mean_h_.data(), num_guesses_);
  writer.f64s(m2_h_.data(), num_guesses_);
  writer.f64s(c_ht_.data(), num_guesses_);
}

void StreamingCpa::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kCpaTag,
                "serialized state is not a CPA accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ &&
                    reader.u32() == static_cast<std::uint32_t>(model_) &&
                    reader.u64() == bit_,
                "serialized CPA state was produced by a differently "
                "configured accumulator (guess count, model or bit)");
  t_.load(reader);
  reader.f64s(mean_h_.data(), num_guesses_);
  reader.f64s(m2_h_.data(), num_guesses_);
  reader.f64s(c_ht_.data(), num_guesses_);
}

// ---- StreamingDom ---------------------------------------------------------

StreamingDom::StreamingDom(const SboxSpec& spec, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      bit_(bit) {
  const std::vector<double> pred =
      prediction_table(spec, PowerModel::kSboxOutputBit, bit);
  std::vector<std::uint8_t> bits(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    bits[i] = pred[i] > 0.5 ? 1 : 0;
  }
  predicted_bit_ =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bits));
  for (int p : {0, 1}) {
    sum_[p].assign(num_guesses_, 0.0);
    cnt_[p].assign(num_guesses_, 0);
  }
}

void StreamingDom::add(std::uint8_t pt, double sample) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const std::uint8_t* pred = predicted_bit_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const std::uint8_t p = pred[g];
    sum_[p][g] += sample;
    ++cnt_[p][g];
  }
}

void StreamingDom::add_batch(const std::uint8_t* pts, const double* samples,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) add(pts[i], samples[i]);
}

void StreamingDom::merge(const StreamingDom& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ && bit_ == other.bit_,
                "merge requires identically configured DoM accumulators");
  SABLE_REQUIRE(predicted_bit_ == other.predicted_bit_ ||
                    *predicted_bit_ == *other.predicted_bit_,
                "merge requires accumulators over the same S-box spec");
  n_ += other.n_;
  for (int p : {0, 1}) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      sum_[p][g] += other.sum_[p][g];
      cnt_[p][g] += other.cnt_[p][g];
    }
  }
}

AttackResult StreamingDom::result() const {
  std::vector<double> scores(num_guesses_, 0.0);
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    if (cnt_[0][g] == 0 || cnt_[1][g] == 0) continue;
    scores[g] = std::fabs(sum_[1][g] / static_cast<double>(cnt_[1][g]) -
                          sum_[0][g] / static_cast<double>(cnt_[0][g]));
  }
  return make_attack_result(std::move(scores));
}

void StreamingDom::save(ByteWriter& writer) const {
  writer.u32(kDomTag);
  writer.u64(num_guesses_);
  writer.u64(bit_);
  writer.u64(n_);
  for (int p : {0, 1}) {
    writer.f64s(sum_[p].data(), num_guesses_);
    for (std::size_t g = 0; g < num_guesses_; ++g) writer.u64(cnt_[p][g]);
  }
}

void StreamingDom::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kDomTag,
                "serialized state is not a DoM accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ && reader.u64() == bit_,
                "serialized DoM state was produced by a differently "
                "configured accumulator (guess count or bit)");
  n_ = reader.u64();
  for (int p : {0, 1}) {
    reader.f64s(sum_[p].data(), num_guesses_);
    for (std::size_t g = 0; g < num_guesses_; ++g) cnt_[p][g] = reader.u64();
  }
}

// ---- StreamingMultiCpa ----------------------------------------------------

StreamingMultiCpa::StreamingMultiCpa(const SboxSpec& spec, PowerModel model,
                                     std::size_t width, std::size_t bit)
    : num_guesses_(std::size_t{1} << spec.in_bits),
      num_plaintexts_(num_guesses_),
      width_(width),
      model_(model),
      bit_(bit),
      predictions_(shared_prediction_table(spec, model, bit)),
      mean_h_(num_guesses_, 0.0),
      m2_h_(num_guesses_, 0.0),
      t_(width),
      c_ht_(width * num_guesses_, 0.0),
      dt_(width, 0.0) {
  SABLE_REQUIRE(width > 0, "multisample CPA requires at least one column");
}

void StreamingMultiCpa::add(std::uint8_t pt, const double* row) {
  SABLE_REQUIRE(pt < num_plaintexts_, "plaintext out of range");
  ++n_;
  const double inv_n = 1.0 / static_cast<double>(n_);
  for (std::size_t s = 0; s < width_; ++s) {
    dt_[s] = t_[s].add(row[s]);
  }
  const double* pred = predictions_->data() + pt * num_guesses_;
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double h = pred[g];
    const double dh = h - mean_h_[g];
    double* c = c_ht_.data() + g;
    for (std::size_t s = 0; s < width_; ++s) {
      c[s * num_guesses_] += dh * dt_[s];
    }
    mean_h_[g] += dh * inv_n;
    m2_h_[g] += dh * (h - mean_h_[g]);
  }
}

void StreamingMultiCpa::merge(const StreamingMultiCpa& other) {
  SABLE_REQUIRE(num_guesses_ == other.num_guesses_ &&
                    width_ == other.width_ && model_ == other.model_ &&
                    bit_ == other.bit_,
                "merge requires identically configured multi-CPA accumulators");
  SABLE_REQUIRE(predictions_ == other.predictions_ ||
                    *predictions_ == *other.predictions_,
                "merge requires accumulators over the same S-box spec");
  if (other.n_ == 0) return;
  if (n_ == 0) {
    n_ = other.n_;
    mean_h_ = other.mean_h_;
    m2_h_ = other.m2_h_;
    t_ = other.t_;
    c_ht_ = other.c_ht_;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double coeff = na * nb / n;
  // Column co-moments first: they need both sides' pre-merge means.
  for (std::size_t s = 0; s < width_; ++s) {
    const double dt = other.t_[s].mean() - t_[s].mean();
    double* c = c_ht_.data() + s * num_guesses_;
    const double* oc = other.c_ht_.data() + s * num_guesses_;
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      c[g] += oc[g] + (other.mean_h_[g] - mean_h_[g]) * dt * coeff;
    }
  }
  for (std::size_t g = 0; g < num_guesses_; ++g) {
    const double dh = other.mean_h_[g] - mean_h_[g];
    m2_h_[g] += other.m2_h_[g] + dh * dh * coeff;
    mean_h_[g] += dh * (nb / n);
  }
  for (std::size_t s = 0; s < width_; ++s) t_[s].merge(other.t_[s]);
  n_ += other.n_;
}

void StreamingMultiCpa::save(ByteWriter& writer) const {
  writer.u32(kMultiCpaTag);
  writer.u64(num_guesses_);
  writer.u32(static_cast<std::uint32_t>(model_));
  writer.u64(bit_);
  writer.u64(width_);
  writer.u64(n_);
  writer.f64s(mean_h_.data(), num_guesses_);
  writer.f64s(m2_h_.data(), num_guesses_);
  for (const OnlineMoments& column : t_) column.save(writer);
  writer.f64s(c_ht_.data(), width_ * num_guesses_);
}

void StreamingMultiCpa::load(ByteReader& reader) {
  SABLE_REQUIRE(reader.u32() == kMultiCpaTag,
                "serialized state is not a multisample CPA accumulator");
  SABLE_REQUIRE(reader.u64() == num_guesses_ &&
                    reader.u32() == static_cast<std::uint32_t>(model_) &&
                    reader.u64() == bit_ && reader.u64() == width_,
                "serialized multisample CPA state was produced by a "
                "differently configured accumulator (guess count, model, "
                "bit or width)");
  n_ = reader.u64();
  reader.f64s(mean_h_.data(), num_guesses_);
  reader.f64s(m2_h_.data(), num_guesses_);
  for (OnlineMoments& column : t_) column.load(reader);
  reader.f64s(c_ht_.data(), width_ * num_guesses_);
}

MultiAttackResult StreamingMultiCpa::result() const {
  MultiAttackResult result;
  std::vector<double> combined(num_guesses_, 0.0);
  double global_best = -1.0;
  for (std::size_t s = 0; s < width_; ++s) {
    for (std::size_t g = 0; g < num_guesses_; ++g) {
      double score = 0.0;
      if (m2_h_[g] > 0.0 && t_[s].m2() > 0.0) {
        score = std::fabs(c_ht_[s * num_guesses_ + g] /
                          std::sqrt(m2_h_[g] * t_[s].m2()));
      }
      combined[g] = std::max(combined[g], score);
      if (score > global_best) {
        global_best = score;
        result.best_sample = s;
      }
    }
  }
  result.combined = make_attack_result(std::move(combined));
  return result;
}

}  // namespace sable
