// Statistics for power analysis: moments, Pearson correlation, and the
// NED/NSD balancedness metrics over arbitrary sample sets.
#pragma once

#include <cstddef>
#include <vector>

namespace sable {

class ByteReader;
class ByteWriter;

double mean(const std::vector<double>& xs);
double stddev(const std::vector<double>& xs);  // population

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

struct SpreadMetrics {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double ned = 0.0;  // (max - min) / max
  double nsd = 0.0;  // stddev / mean
};

SpreadMetrics spread_metrics(const std::vector<double>& xs);

/// Welford's online mean/variance accumulator: numerically stable one-pass
/// moments, the primitive under the streaming CPA sample-stream statistics.
/// Stability matters here because trace energies sit at ~1e-13 J with
/// ~1e-15 J data-dependent variation — naive raw-moment sums cancel.
class OnlineMoments {
 public:
  /// Adds x and returns its deviation from the *updated* mean — the
  /// cross-term a Welford co-moment accumulator multiplies against.
  double add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    const double d_new = x - mean_;
    m2_ += d * d_new;
    return d_new;
  }

  /// Folds another accumulator into this one (Chan et al. pairwise
  /// update): the result holds the moments of the concatenated sample
  /// streams in O(1), which is what lets campaign shards accumulate
  /// independently on worker threads and combine afterwards. Merging is
  /// deterministic — a fixed merge order gives bit-identical results
  /// regardless of which thread produced which operand.
  void merge(const OnlineMoments& other);

  /// Accumulator holding externally computed moments — the bridge from
  /// the block-factored sufficient statistics (dpa/block_stats.hpp) back
  /// into Welford form, so a whole block folds in through the same
  /// pairwise merge the sharded campaigns use.
  static OnlineMoments from_parts(std::size_t n, double mean, double m2) {
    OnlineMoments moments;
    moments.n_ = n;
    moments.mean_ = mean;
    moments.m2_ = m2;
    return moments;
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sum of squared deviations from the running mean.
  double m2() const { return m2_; }
  double variance() const;  // population
  double stddev() const;

  /// Bit-exact binary round trip (io/serial.hpp): the serialized moments
  /// reload into the identical accumulator state, so checkpointed
  /// campaigns resume without any numeric drift.
  void save(ByteWriter& writer) const;
  void load(ByteReader& reader);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace sable
