// Transient analysis: fixed-step backward-Euler integration with a damped
// Newton-Raphson solve per step and automatic step halving on
// non-convergence.
//
// Backward Euler is unconditionally stable and slightly lossy, which is the
// right trade for strongly nonlinear switching circuits: the energy numbers
// we extract integrate the supply current, which BE reproduces faithfully at
// the 1-2 ps steps used by the benches.
#pragma once

#include <map>
#include <string>

#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace sable::spice {

struct TransientOptions {
  double t_stop = 0.0;
  double dt = 2e-12;
  int max_newton = 120;
  double vtol = 1e-6;           ///< convergence: max |dV| below this
  double gmin = 1e-12;          ///< conductance from every node to ground
  double damping_clamp = 0.4;   ///< max per-iteration voltage update [V]
  int max_halvings = 10;        ///< step subdivisions on NR failure
  /// Initial node voltages by name (UIC); unlisted nodes start at 0 V.
  std::map<std::string, double> initial_voltages;
  /// Store every k-th accepted step (1 = all).
  int record_every = 1;
};

/// Runs a transient simulation from t = 0 to t_stop.
/// Throws Error if a step fails to converge even at the minimum step size.
TranResult run_transient(const Circuit& circuit,
                         const TransientOptions& options);

}  // namespace sable::spice
