// Tests for the expression module: AST construction, parsing, printing,
// truth tables and the NNF/complement/dual transforms.
#include <gtest/gtest.h>

#include "expr/expression.hpp"
#include "expr/parser.hpp"
#include "expr/printer.hpp"
#include "expr/random_expr.hpp"
#include "expr/transforms.hpp"
#include "expr/truth_table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace sable {
namespace {

TEST(VarTableTest, InternsAndLooksUp) {
  VarTable vars;
  const VarId a = vars.intern("A");
  const VarId b = vars.intern("B");
  EXPECT_NE(a, b);
  EXPECT_EQ(vars.intern("A"), a);
  EXPECT_EQ(vars.id_of("B"), b);
  EXPECT_EQ(vars.name(a), "A");
  EXPECT_TRUE(vars.contains("A"));
  EXPECT_FALSE(vars.contains("C"));
  EXPECT_THROW(vars.id_of("C"), InvalidArgument);
}

TEST(VarTableTest, AlphabeticNames) {
  const VarTable vars = VarTable::alphabetic(4);
  EXPECT_EQ(vars.size(), 4u);
  EXPECT_EQ(vars.name(0), "A");
  EXPECT_EQ(vars.name(3), "D");
}

TEST(ExprTest, ConstantsAreSingletons) {
  EXPECT_EQ(Expr::constant(true), Expr::constant(true));
  EXPECT_EQ(Expr::constant(false), Expr::constant(false));
  EXPECT_NE(Expr::constant(true), Expr::constant(false));
}

TEST(ExprTest, FactoriesFoldConstants) {
  const ExprPtr a = Expr::variable(0);
  EXPECT_EQ(Expr::conj2(a, Expr::constant(false)), Expr::constant(false));
  EXPECT_EQ(Expr::conj2(a, Expr::constant(true)), a);
  EXPECT_EQ(Expr::disj2(a, Expr::constant(true)), Expr::constant(true));
  EXPECT_EQ(Expr::disj2(a, Expr::constant(false)), a);
  EXPECT_EQ(Expr::negate(Expr::negate(a)), a);
  EXPECT_EQ(Expr::negate(Expr::constant(true)), Expr::constant(false));
}

TEST(ExprTest, NaryFlattening) {
  const ExprPtr a = Expr::variable(0);
  const ExprPtr b = Expr::variable(1);
  const ExprPtr c = Expr::variable(2);
  const ExprPtr nested = Expr::conj2(a, Expr::conj2(b, c));
  EXPECT_EQ(nested->kind(), ExprKind::kAnd);
  EXPECT_EQ(nested->operands().size(), 3u);
}

TEST(ExprTest, LiteralQueries) {
  const ExprPtr a = Expr::variable(3);
  const ExprPtr na = Expr::negate(a);
  EXPECT_TRUE(a->is_literal());
  EXPECT_TRUE(na->is_literal());
  EXPECT_EQ(na->literal_var(), 3u);
  EXPECT_FALSE(na->literal_positive());
  EXPECT_TRUE(a->literal_positive());
  EXPECT_FALSE(Expr::conj2(a, na)->is_literal());
}

TEST(ExprTest, StructureQueries) {
  VarTable vars;
  const ExprPtr e = parse_expression("(A+B).(C+D)", vars);
  EXPECT_EQ(e->literal_count(), 4u);
  EXPECT_EQ(e->variables().size(), 4u);
  EXPECT_EQ(e->depth(), 2u);
}

TEST(ParserTest, ParsesPaperNotation) {
  VarTable vars;
  const ExprPtr e = parse_expression("A.B' + B'", vars);
  const ExprPtr f = parse_expression("A'.B + B'", vars);
  EXPECT_EQ(e->kind(), ExprKind::kOr);
  // A.B' + B' simplifies semantically to B' but must parse structurally.
  EXPECT_EQ(e->operands().size(), 2u);
  EXPECT_TRUE(equivalent(f, parse_expression("(A.B)'", vars), 2));
}

TEST(ParserTest, OperatorsAndPrecedence) {
  VarTable vars;
  EXPECT_TRUE(equivalent(parse_expression("A & B | C", vars),
                         parse_expression("(A.B) + C", vars), 3));
  EXPECT_TRUE(equivalent(parse_expression("!A", vars),
                         parse_expression("A'", vars), 1));
  EXPECT_TRUE(equivalent(parse_expression("A ^ B", vars),
                         parse_expression("A.B' + A'.B", vars), 2));
  EXPECT_TRUE(equivalent(parse_expression("A''", vars),
                         parse_expression("A", vars), 1));
}

TEST(ParserTest, Constants) {
  VarTable vars;
  EXPECT_EQ(parse_expression("0", vars), Expr::constant(false));
  EXPECT_EQ(parse_expression("1", vars), Expr::constant(true));
  EXPECT_EQ(parse_expression("A.0", vars), Expr::constant(false));
}

TEST(ParserTest, RejectsMalformedInput) {
  VarTable vars;
  EXPECT_THROW(parse_expression("A +", vars), ParseError);
  EXPECT_THROW(parse_expression("(A.B", vars), ParseError);
  EXPECT_THROW(parse_expression("A B", vars), ParseError);
  EXPECT_THROW(parse_expression("", vars), ParseError);
  EXPECT_THROW(parse_expression("A @ B", vars), ParseError);
}

TEST(PrinterTest, RoundTripsThroughParser) {
  VarTable vars;
  const char* cases[] = {"A.B", "A + B", "(A+B).(C+D)", "A.B' + B'",
                         "A.(B + C.D)"};
  for (const char* text : cases) {
    const ExprPtr e = parse_expression(text, vars);
    const std::string printed = to_string(e, vars);
    const ExprPtr back = parse_expression(printed, vars);
    EXPECT_TRUE(equivalent(e, back, 4)) << text << " -> " << printed;
  }
}

TEST(PrinterTest, PaperStyleOutput) {
  VarTable vars;
  const ExprPtr e = parse_expression("A'.B + B'", vars);
  EXPECT_EQ(to_string(e, vars), "A'.B + B'");
  EXPECT_EQ(to_sexpr(e, vars), "(or (and (not A) B) (not B))");
}

TEST(TruthTableTest, EvaluateBasics) {
  VarTable vars;
  const ExprPtr e = parse_expression("A.B", vars);
  EXPECT_FALSE(evaluate(e, 0b00));
  EXPECT_FALSE(evaluate(e, 0b01));
  EXPECT_FALSE(evaluate(e, 0b10));
  EXPECT_TRUE(evaluate(e, 0b11));
}

TEST(TruthTableTest, TableAndComplement) {
  VarTable vars;
  const ExprPtr e = parse_expression("(A+B).(C+D)", vars);
  const TruthTable t = table_of(e, 4);
  const TruthTable tc = t.complemented();
  for (std::size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_EQ(t.get(row), !tc.get(row));
  }
  EXPECT_EQ(t.popcount() + tc.popcount(), t.num_rows());
}

TEST(TruthTableTest, RejectsTooManyVariables) {
  EXPECT_THROW(TruthTable t(21), InvalidArgument);
}

TEST(TransformsTest, NnfPushesNegationsToLiterals) {
  VarTable vars;
  const ExprPtr e = parse_expression("((A+B).(C+D))'", vars);
  const ExprPtr nnf = to_nnf(e);
  EXPECT_TRUE(equivalent(e, nnf, 4));
  // Every NOT in the result must sit directly on a variable.
  std::vector<const Expr*> stack = {nnf.get()};
  while (!stack.empty()) {
    const Expr* node = stack.back();
    stack.pop_back();
    if (node->kind() == ExprKind::kNot) {
      EXPECT_TRUE(node->is_literal());
    }
    for (const auto& op : node->operands()) stack.push_back(op.get());
  }
}

TEST(TransformsTest, ComplementMatchesNegation) {
  VarTable vars;
  const ExprPtr e = parse_expression("A.B + C.D", vars);
  const ExprPtr comp = complement_nnf(e);
  EXPECT_TRUE(equivalent(comp, Expr::negate(e), 4));
  // The paper's OAI22 example: complement of (A+B).(C+D) is A'.B' + C'.D'.
  const ExprPtr oai = parse_expression("(A+B).(C+D)", vars);
  EXPECT_TRUE(equivalent(complement_nnf(oai),
                         parse_expression("A'.B' + C'.D'", vars), 4));
}

TEST(TransformsTest, DualSwapsAndOr) {
  VarTable vars;
  const ExprPtr e = to_nnf(parse_expression("A.B + C", vars));
  const ExprPtr d = dual_nnf(e);
  EXPECT_TRUE(equivalent(d, parse_expression("(A+B).C", vars), 3));
  // dual(dual(f)) == f.
  EXPECT_TRUE(equivalent(dual_nnf(d), e, 3));
}

TEST(TransformsTest, Cofactor) {
  VarTable vars;
  const ExprPtr e = parse_expression("A.B + A'.C", vars);
  const VarId a = vars.id_of("A");
  EXPECT_TRUE(equivalent(cofactor(e, a, true),
                         parse_expression("B", vars), 3));
  EXPECT_TRUE(equivalent(cofactor(e, a, false),
                         parse_expression("C", vars), 3));
}

TEST(TransformsTest, StructuralEquality) {
  VarTable vars;
  const ExprPtr e1 = parse_expression("A.B + C", vars);
  const ExprPtr e2 = parse_expression("A.B + C", vars);
  const ExprPtr e3 = parse_expression("C + A.B", vars);
  EXPECT_TRUE(structurally_equal(e1, e2));
  EXPECT_FALSE(structurally_equal(e1, e3));  // operand order matters
}

// Property sweep: complement and NNF agree with semantic negation on random
// expressions.
class RandomExprProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomExprProperty, ComplementAndNnfAreSound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  RandomExprOptions opt;
  opt.num_vars = 5;
  opt.num_literals = 12;
  const ExprPtr e = random_nnf(rng, opt);
  EXPECT_TRUE(equivalent(to_nnf(e), e, opt.num_vars));
  EXPECT_TRUE(equivalent(complement_nnf(e), Expr::negate(e), opt.num_vars));
  EXPECT_TRUE(
      equivalent(dual_nnf(dual_nnf(to_nnf(e))), e, opt.num_vars));
  EXPECT_EQ(e->literal_count(), opt.num_literals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomExprProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace sable
