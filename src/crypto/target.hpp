// DPA attack targets: an S-box evaluated as y = S(x XOR key) in a chosen
// logic style, producing one power sample per encryption.
//
// The circuit computes the S-box only; the key addition happens at the
// stimulus (x = pt XOR key), which models the standard first-order DPA
// setting where the attacker predicts S-box output bits from plaintext and
// key guess.
#pragma once

#include <cstdint>
#include <memory>

#include "cell/circuit_sim.hpp"
#include "cell/wddl.hpp"
#include "crypto/sboxes.hpp"
#include "util/rng.hpp"

namespace sable {

enum class LogicStyle {
  kStaticCmos,        // HD-leaking baseline
  kSablGenuine,       // dynamic differential with genuine DPDNs (§2 leak)
  kSablFullyConnected,  // §4 networks
  kSablEnhanced,      // §5 networks
  kWddlBalanced,      // standard-cell pair logic, ideal back-end (ref [8])
  kWddlMismatched,    // WDDL with 5% rail-capacitance imbalance
};

const char* to_string(LogicStyle style);

class SboxTarget {
 public:
  SboxTarget(const SboxSpec& spec, LogicStyle style, const Technology& tech);

  /// One encryption: applies pt XOR key, returns the power sample
  /// (circuit energy plus Gaussian noise of `noise_sigma` joules).
  double trace(std::uint8_t pt, std::uint8_t key, double noise_sigma,
               Rng& rng);

  /// Reference S-box output for functional checks.
  std::uint8_t reference(std::uint8_t pt, std::uint8_t key) const;

  const GateCircuit& circuit() const { return circuit_; }
  LogicStyle style() const { return style_; }

 private:
  SboxSpec spec_;
  LogicStyle style_;
  GateCircuit circuit_;
  std::unique_ptr<DifferentialCircuitSim> diff_sim_;
  std::unique_ptr<CmosCircuitSim> cmos_sim_;
  std::unique_ptr<WddlCircuitSim> wddl_sim_;
};

}  // namespace sable
