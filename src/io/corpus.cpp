#include "io/corpus.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace sable {

namespace {

constexpr char kCorpusMagic[8] = {'S', 'A', 'B', 'L', 'C', 'O', 'R', 'P'};
constexpr std::uint32_t kCorpusVersion = 1;

// Sanity ceilings on hostile header fields, chosen so every size product
// below fits a u64 with room to spare (a real round's state is tens of
// bytes wide and sample rows are tens of doubles).
constexpr std::uint64_t kMaxPtStride = 1u << 20;
constexpr std::uint64_t kMaxSampleWidth = 1u << 20;
constexpr std::uint64_t kMaxShardSize = 1ull << 32;

std::uint64_t pad8(std::uint64_t n) { return (n + 7) / 8 * 8; }

// Canonical trace count of shard s under the manifest's layout (mirrors
// the engine's ShardLayout::count).
std::uint64_t layout_count(const CampaignManifest& m, std::uint64_t s) {
  return std::min<std::uint64_t>(m.shard_size,
                                 m.num_traces - s * m.shard_size);
}

void write_header(ByteWriter& writer, const CorpusManifest& manifest) {
  writer.bytes(kCorpusMagic, sizeof(kCorpusMagic));
  writer.u32(kCorpusVersion);
  writer.u32(manifest.kind);
  manifest.campaign.save(writer);
  writer.u64(manifest.pt_stride);
  writer.u64(manifest.sample_width);
  writer.pad_to(8);
}

}  // namespace

CorpusWriter::CorpusWriter(const std::string& path,
                           const CorpusManifest& manifest)
    : path_(path), tmp_path_(path + ".tmp"), manifest_(manifest) {
  const CampaignManifest& c = manifest_.campaign;
  SABLE_REQUIRE(manifest_.kind == kCorpusKindScalar ||
                    manifest_.kind == kCorpusKindSampled,
                "corpus kind must be scalar or sampled");
  SABLE_REQUIRE(manifest_.pt_stride >= 1 && manifest_.sample_width >= 1,
                "corpus strides must be at least one");
  SABLE_REQUIRE(c.num_traces >= 1 && c.shard_size >= 1 &&
                    c.num_shards ==
                        (c.num_traces + c.shard_size - 1) / c.shard_size,
                "corpus manifest must carry a resolved, consistent shard "
                "layout");
  ByteWriter header;
  write_header(header, manifest_);
  index_offset_ = header.offset();
  // Index placeholder, back-patched by finish().
  for (std::uint64_t s = 0; s < c.num_shards; ++s) {
    header.u64(0);
    header.u64(0);
  }
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (!file_) {
    throw IoError(tmp_path_, "cannot open corpus file for writing");
  }
  write_raw(header.buffer().data(), header.buffer().size());
}

CorpusWriter::~CorpusWriter() {
  if (file_) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
}

void CorpusWriter::write_raw(const void* data, std::size_t size) {
  if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
    throw IoError(tmp_path_, "corpus write failed");
  }
  write_offset_ += size;
}

void CorpusWriter::append_shard(const std::uint8_t* pts,
                                const double* samples, std::size_t count) {
  SABLE_REQUIRE(!finished_, "corpus writer already finished");
  SABLE_REQUIRE(next_shard_ < manifest_.campaign.num_shards,
                "more shards appended than the corpus layout defines");
  SABLE_REQUIRE(count == layout_count(manifest_.campaign, next_shard_),
                "appended shard's trace count must match the canonical "
                "layout");
  index_.push_back(write_offset_);
  index_.push_back(count);
  const std::uint64_t pt_bytes = count * manifest_.pt_stride;
  write_raw(pts, static_cast<std::size_t>(pt_bytes));
  static const char kZeros[8] = {};
  write_raw(kZeros, static_cast<std::size_t>(pad8(pt_bytes) - pt_bytes));
  write_raw(samples, static_cast<std::size_t>(count * manifest_.sample_width *
                                              sizeof(double)));
  ++next_shard_;
}

void CorpusWriter::finish() {
  SABLE_REQUIRE(!finished_, "corpus writer already finished");
  SABLE_REQUIRE(next_shard_ == manifest_.campaign.num_shards,
                "corpus finish() requires every canonical shard appended");
  ByteWriter index;
  for (std::uint64_t v : index_) index.u64(v);
  if (std::fseek(file_, static_cast<long>(index_offset_), SEEK_SET) != 0 ||
      std::fwrite(index.buffer().data(), 1, index.buffer().size(), file_) !=
          index.buffer().size() ||
      std::fflush(file_) != 0) {
    throw IoError(tmp_path_, "corpus index write failed");
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    throw IoError(tmp_path_, "corpus close failed");
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    throw IoError(path_, "cannot publish corpus file (rename failed)");
  }
  finished_ = true;
}

CorpusReader::CorpusReader(const std::string& path) : file_(path) {
  ByteReader reader(file_);
  char magic[8];
  reader.bytes(magic, sizeof(magic));
  if (std::memcmp(magic, kCorpusMagic, sizeof(magic)) != 0) {
    throw BadFileError(path, "not a sable corpus file (bad magic)");
  }
  const std::uint32_t version = reader.u32();
  if (version != kCorpusVersion) {
    throw BadFileError(path, "unsupported corpus format version " +
                                 std::to_string(version));
  }
  manifest_.kind = reader.u32();
  if (manifest_.kind != kCorpusKindScalar &&
      manifest_.kind != kCorpusKindSampled) {
    throw BadFileError(path, "corpus trace kind is neither scalar nor "
                             "sampled");
  }
  manifest_.campaign.load(reader);
  manifest_.pt_stride = reader.u64();
  manifest_.sample_width = reader.u64();
  reader.skip((8 - reader.offset() % 8) % 8);

  const CampaignManifest& c = manifest_.campaign;
  if (manifest_.pt_stride < 1 || manifest_.pt_stride > kMaxPtStride ||
      manifest_.sample_width < 1 || manifest_.sample_width > kMaxSampleWidth ||
      c.num_traces < 1 || c.shard_size < 1 || c.shard_size > kMaxShardSize ||
      c.num_shards != (c.num_traces + c.shard_size - 1) / c.shard_size) {
    throw BadFileError(path, "corpus header carries an inconsistent shard "
                             "layout");
  }
  if (c.num_shards > reader.remaining() / 16) {
    throw FileTruncatedError(path, "corpus shard index runs past the end of "
                                   "the file");
  }
  offsets_.reserve(static_cast<std::size_t>(c.num_shards));
  counts_.reserve(static_cast<std::size_t>(c.num_shards));
  for (std::uint64_t s = 0; s < c.num_shards; ++s) {
    const std::uint64_t offset = reader.u64();
    const std::uint64_t count = reader.u64();
    if (count != layout_count(c, s)) {
      throw ShardIndexError(
          path, "corpus index entry " + std::to_string(s) +
                    " disagrees with the canonical shard layout");
    }
    const std::uint64_t chunk =
        pad8(count * manifest_.pt_stride) +
        count * manifest_.sample_width * sizeof(double);
    if (offset % 8 != 0 || offset > file_.size() ||
        chunk > file_.size() - offset) {
      throw ShardIndexError(path, "corpus index entry " + std::to_string(s) +
                                      " points outside the file");
    }
    offsets_.push_back(offset);
    counts_.push_back(count);
  }
}

void CorpusReader::require_shard(std::size_t s) const {
  if (s >= offsets_.size()) {
    throw ShardIndexError(path(), "shard " + std::to_string(s) +
                                      " is out of range for this corpus");
  }
}

std::size_t CorpusReader::shard_start(std::size_t s) const {
  require_shard(s);
  return static_cast<std::size_t>(s * manifest_.campaign.shard_size);
}

std::size_t CorpusReader::shard_count(std::size_t s) const {
  require_shard(s);
  return static_cast<std::size_t>(counts_[s]);
}

const std::uint8_t* CorpusReader::shard_plaintexts(std::size_t s) const {
  require_shard(s);
  return file_.data() + offsets_[s];
}

const double* CorpusReader::shard_samples(std::size_t s) const {
  require_shard(s);
  return reinterpret_cast<const double*>(
      file_.data() + offsets_[s] +
      pad8(counts_[s] * manifest_.pt_stride));
}

}  // namespace sable
