// TraceEngine — batched bit-parallel trace generation with streaming
// consumption.
//
// The engine turns an S-box target into power-trace campaigns at MTD
// scale: plaintexts are drawn in blocks, simulated 64 encryptions per
// clock cycle through the bit-parallel circuit simulators, and either
// retained in a TraceSet (run) or handed block-by-block to streaming
// consumers (stream) — StreamingCpa / StreamingDom / StreamingMtd — so an
// attack over 10^7 traces needs O(guesses) memory, one pass, and roughly
// 1/64th of the scalar simulation time.
#pragma once

#include <cstdint>
#include <functional>

#include "crypto/target.hpp"
#include "dpa/mtd.hpp"
#include "dpa/streaming.hpp"
#include "power/trace.hpp"

namespace sable {

struct CampaignOptions {
  std::size_t num_traces = 0;
  std::uint8_t key = 0;
  /// Gaussian measurement noise RMS [J] added per trace.
  double noise_sigma = 0.0;
  /// Seed of the campaign's plaintext/noise stream; one seed reproduces
  /// the exact trace sequence bit for bit.
  std::uint64_t seed = 0xA77ACC;
  /// Traces simulated per stream block (rounded to whole 64-lane words).
  std::size_t block_size = 4096;
};

/// Receives (plaintexts, samples, count) blocks as the campaign streams.
using TraceSink =
    std::function<void(const std::uint8_t*, const double*, std::size_t)>;

class TraceEngine {
 public:
  TraceEngine(const SboxSpec& spec, LogicStyle style, const Technology& tech);

  /// Runs the campaign and retains every trace (for batch-style consumers
  /// and offline re-analysis).
  TraceSet run(const CampaignOptions& options);

  /// Runs the campaign without retaining traces: each block of at most
  /// `options.block_size` traces is simulated bit-parallel and handed to
  /// `sink`, then its storage is reused.
  void stream(const CampaignOptions& options, const TraceSink& sink);

  /// One-pass CPA over a streamed campaign.
  AttackResult cpa_campaign(const CampaignOptions& options, PowerModel model,
                            std::size_t bit = 0);

  /// One-pass difference-of-means over a streamed campaign.
  AttackResult dom_campaign(const CampaignOptions& options, std::size_t bit);

  /// Incremental MTD curve: the CPA attack is snapshotted at each
  /// checkpoint while the campaign streams — the full measurements-to-
  /// disclosure experiment in a single pass over generated-and-dropped
  /// traces.
  MtdResult mtd_campaign(const CampaignOptions& options, PowerModel model,
                         const std::vector<std::size_t>& checkpoints,
                         std::size_t bit = 0);

  SboxTarget& target() { return target_; }
  const SboxSpec& spec() const { return target_.spec(); }

 private:
  SboxTarget target_;
};

}  // namespace sable
