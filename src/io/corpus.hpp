// Recorded trace corpora: the on-disk twin of a streamed campaign.
//
// A corpus file stores one campaign's traces in the engine's canonical
// shard decomposition — SoA per shard (packed plaintext states, then
// sample rows) — so replay hands whole shard blocks to distinguisher
// accumulators exactly as the live engine would: same shard boundaries,
// same block order, bit-identical trace data. Shards are individually
// seekable through a per-shard index, which is what makes split-range
// multi-process replay (worker k reads only shards [a, b)) an O(1)
// seek instead of a scan.
//
// Layout (all integers little-endian; header fields 8-byte aligned, each
// shard chunk 8-byte aligned so sample rows are safely mmap-addressable
// as double arrays):
//
//   magic            8 bytes  "SABLCORP"
//   version          u32      (1)
//   kind             u32      0 = scalar, 1 = cycle-sampled
//   manifest         CampaignManifest (spec hash, seed, counts, key)
//   pt_stride        u64      bytes of packed plaintext state per trace
//   sample_width     u64      doubles per trace (1 for scalar)
//   [pad to 8]
//   shard index      num_shards x { offset u64, count u64 }
//   shard chunks     per shard: pts (count * pt_stride bytes, padded
//                    to 8), then samples (count * sample_width doubles)
//
// CorpusWriter streams: the header and index placeholder go out first,
// shard chunks append in canonical order, finish() back-patches the
// index and renames the .tmp file into place — constant memory however
// long the campaign, and no half-written corpus ever appears under the
// final name. CorpusReader validates the whole structure up front
// (magic, version, counts, every index entry against the file size and
// the manifest's shard layout) and then serves zero-copy pointers into
// the mapping.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "io/manifest.hpp"
#include "io/serial.hpp"

namespace sable {

/// Trace data kind tags of the corpus format (mirrors TraceDataKind
/// without dragging the dpa layer into io).
inline constexpr std::uint32_t kCorpusKindScalar = 0;
inline constexpr std::uint32_t kCorpusKindSampled = 1;

/// Everything a corpus file's header pins down.
struct CorpusManifest {
  CampaignManifest campaign;
  std::uint32_t kind = kCorpusKindScalar;
  std::uint64_t pt_stride = 1;
  std::uint64_t sample_width = 1;
};

/// Streaming corpus writer. Feed shards strictly in canonical order
/// (shard 0, 1, ...), one append_shard per shard with the layout's exact
/// trace count, then finish(). The destructor discards an unfinished
/// file (removes the .tmp) — only finish() publishes.
class CorpusWriter {
 public:
  CorpusWriter(const std::string& path, const CorpusManifest& manifest);
  ~CorpusWriter();
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;

  /// Appends the next canonical shard's traces: `count` packed plaintext
  /// states (`pt_stride` bytes each) and `count * sample_width` doubles.
  /// Throws InvalidArgument when called out of order or with the wrong
  /// count for the shard, IoError on write failure.
  void append_shard(const std::uint8_t* pts, const double* samples,
                    std::size_t count);

  /// Back-patches the shard index and atomically publishes the file.
  /// Requires every shard to have been appended.
  void finish();

  const std::string& path() const { return path_; }

 private:
  void write_raw(const void* data, std::size_t size);

  std::string path_;
  std::string tmp_path_;
  CorpusManifest manifest_;
  std::FILE* file_ = nullptr;
  std::size_t next_shard_ = 0;
  std::size_t index_offset_ = 0;  // file offset of the shard index
  std::size_t write_offset_ = 0;  // current file offset
  std::vector<std::uint64_t> index_;  // (offset, count) pairs, flattened
  bool finished_ = false;
};

/// Validated, mmap-backed corpus reader. Construction verifies magic,
/// version, kind, the manifest's internal consistency and EVERY shard
/// index entry (offset alignment, count against the canonical layout,
/// chunk extent against the file size), so the accessors below are
/// plain pointer arithmetic with no failure modes left.
class CorpusReader {
 public:
  explicit CorpusReader(const std::string& path);

  const CorpusManifest& manifest() const { return manifest_; }
  const std::string& path() const { return file_.path(); }
  std::size_t num_shards() const { return manifest_.campaign.num_shards; }

  /// Canonical start index / trace count of shard `s` (throws
  /// ShardIndexError past num_shards()).
  std::size_t shard_start(std::size_t s) const;
  std::size_t shard_count(std::size_t s) const;
  /// Zero-copy pointers into the mapping: packed plaintext states
  /// (shard_count(s) * pt_stride bytes) and sample rows
  /// (shard_count(s) * sample_width doubles, 8-byte aligned).
  const std::uint8_t* shard_plaintexts(std::size_t s) const;
  const double* shard_samples(std::size_t s) const;

 private:
  void require_shard(std::size_t s) const;

  MappedFile file_;
  CorpusManifest manifest_;
  std::vector<std::uint64_t> offsets_;  // validated chunk offsets
  std::vector<std::uint64_t> counts_;   // validated trace counts
};

}  // namespace sable
