// Definitions of the RoundTargetT<W> templates declared in
// crypto/round_target.hpp. Included by exactly the TUs that instantiate
// them: crypto/round_target.cpp for the portable lane words and the
// per-ISA TUs under src/simd/ (inside their #pragma GCC target regions)
// for Word256/Word512. Pulls in the circuit/WDDL/switch-level impl
// headers because instantiating a round target instantiates its
// simulators.
#pragma once

#include <algorithm>

#include "cell/builder.hpp"
#include "cell/circuit_sim_impl.hpp"
#include "cell/wddl_impl.hpp"
#include "crypto/round_target.hpp"
#include "expr/factoring.hpp"
#include "switchsim/cycle_sim_impl.hpp"
#include "util/error.hpp"

namespace sable {
namespace round_target_detail {

// All four helpers are `static`, not `inline`: the per-ISA TUs compile
// this header inside a #pragma GCC target region, and a comdat copy built
// there could be the one the linker keeps for portable callers — internal
// linkage keeps every TU's copy at its own ISA level.
[[maybe_unused]] static NetworkVariant variant_for(LogicStyle style) {
  switch (style) {
    case LogicStyle::kSablGenuine:
      return NetworkVariant::kGenuine;
    case LogicStyle::kSablEnhanced:
      return NetworkVariant::kEnhanced;
    case LogicStyle::kStaticCmos:  // topology reused; energy model differs
    case LogicStyle::kSablFullyConnected:
    case LogicStyle::kWddlBalanced:
    case LogicStyle::kWddlMismatched:
      return NetworkVariant::kFullyConnected;
  }
  SABLE_ASSERT(false, "unreachable logic style");
}

[[maybe_unused]] static GateCircuit build_sbox_circuit(const SboxSpec& spec, LogicStyle style,
                                      const Technology& tech) {
  std::vector<ExprPtr> outputs;
  outputs.reserve(spec.out_bits);
  for (std::size_t bit = 0; bit < spec.out_bits; ++bit) {
    outputs.push_back(factored_form(sbox_output_bit(spec, bit)));
  }
  return build_from_expressions(outputs, spec.in_bits, variant_for(style),
                                tech);
}

[[maybe_unused]] static bool same_sbox(const SboxSpec& a, const SboxSpec& b) {
  return a.in_bits == b.in_bits && a.out_bits == b.out_bits &&
         a.table == b.table;
}

[[maybe_unused]] static std::size_t extract_bits(const std::uint8_t* state, std::size_t offset,
                                std::size_t bits) {
  std::size_t value = 0;
  for (std::size_t b = 0; b < bits; ++b) {
    const std::size_t bit = offset + b;
    value |=
        static_cast<std::size_t>((state[bit >> 3] >> (bit & 7)) & 1u) << b;
  }
  return value;
}

}  // namespace round_target_detail

// ---- RoundTargetT ---------------------------------------------------------

template <typename W>
RoundTargetT<W>::RoundTargetT(RoundSpec round, Technology tech,
                              std::vector<Instance> instances)
    : round_(std::move(round)),
      tech_(std::move(tech)),
      instances_(std::move(instances)) {
  for (const Instance& instance : instances_) {
    if (instance.diff_sim) {
      num_levels_ = std::max(num_levels_, instance.diff_sim->num_levels());
    } else if (instance.cmos_sim) {
      num_levels_ = std::max(num_levels_, instance.cmos_sim->num_levels());
    } else if (instance.wddl_sim) {
      num_levels_ = std::max(num_levels_, instance.wddl_sim->num_levels());
    }
  }
}

template <typename W>
RoundTargetT<W>::RoundTargetT(const RoundSpec& round, const Technology& tech)
    : RoundTargetT(round, tech,
                   std::vector<std::shared_ptr<const GateCircuit>>{}) {}

template <typename W>
RoundTargetT<W>::RoundTargetT(
    const RoundSpec& round, const Technology& tech,
    std::vector<std::shared_ptr<const GateCircuit>> circuits)
    : round_(round), tech_(tech) {
  SABLE_REQUIRE(!round.sboxes.empty(),
                "a round needs at least one S-box instance");
  SABLE_REQUIRE(circuits.empty() || circuits.size() == round.sboxes.size(),
                "pre-synthesized circuits must cover every S-box instance");
  instances_.reserve(round.sboxes.size());
  std::size_t offset = 0;
  for (std::size_t i = 0; i < round.sboxes.size(); ++i) {
    const SboxSpec& spec = round.sboxes[i];
    SABLE_REQUIRE(spec.in_bits >= 1 && spec.in_bits <= 8,
                  "S-box input width must be 1..8 bits");
    SABLE_REQUIRE(spec.table.size() == (std::size_t{1} << spec.in_bits),
                  "S-box table must cover every input");
    Instance instance;
    instance.bit_offset = offset;
    offset += spec.in_bits;
    if (!circuits.empty()) {
      instance.circuit = circuits[i];
    } else {
      // Identical specs share one synthesized circuit (a 16-instance
      // PRESENT round synthesizes once); every instance still owns its
      // simulator.
      for (std::size_t j = 0; j < i; ++j) {
        if (round_target_detail::same_sbox(round.sboxes[j], spec)) {
          instance.circuit = instances_[j].circuit;
          break;
        }
      }
      if (!instance.circuit) {
        instance.circuit = std::make_shared<const GateCircuit>(
            round_target_detail::build_sbox_circuit(spec, round.style, tech));
      }
    }
    switch (round.style) {
      case LogicStyle::kStaticCmos: {
        // One transition's worth of switching energy for a typical cell
        // load: ~5 fF at the reference VDD.
        const double c_sw = 5e-15;
        instance.cmos_sim = std::make_unique<CmosCircuitSimBatchT<W>>(
            *instance.circuit, c_sw * tech.vdd * tech.vdd);
        num_levels_ = std::max(num_levels_, instance.cmos_sim->num_levels());
        break;
      }
      case LogicStyle::kWddlBalanced:
      case LogicStyle::kWddlMismatched: {
        const double mismatch =
            round.style == LogicStyle::kWddlMismatched ? 0.05 : 0.0;
        // Per-instance seed: each pair of rails gets its own deterministic
        // placement/routing imbalance (instance 0 keeps the historic seed).
        instance.wddl_sim = std::make_unique<WddlCircuitSimBatchT<W>>(
            *instance.circuit, tech, mismatch,
            0x3DD1 + static_cast<std::uint64_t>(i));
        num_levels_ = std::max(num_levels_, instance.wddl_sim->num_levels());
        break;
      }
      default:
        instance.diff_sim = std::make_unique<DifferentialCircuitSimBatchT<W>>(
            *instance.circuit);
        num_levels_ = std::max(num_levels_, instance.diff_sim->num_levels());
        break;
    }
    instances_.push_back(std::move(instance));
  }
}

template <typename W>
RoundTargetT<W> RoundTargetT<W>::clone() const {
  std::vector<Instance> copies;
  copies.reserve(instances_.size());
  for (const Instance& instance : instances_) {
    Instance copy;
    copy.circuit = instance.circuit;
    copy.bit_offset = instance.bit_offset;
    // The sims' clone_fresh() preserves derived energy models (WDDL rail
    // mismatch) without needing the Technology back, and starts from
    // fresh-construction lane state.
    if (instance.diff_sim) {
      copy.diff_sim = std::make_unique<DifferentialCircuitSimBatchT<W>>(
          instance.diff_sim->clone_fresh());
    } else if (instance.wddl_sim) {
      copy.wddl_sim = std::make_unique<WddlCircuitSimBatchT<W>>(
          instance.wddl_sim->clone_fresh());
    } else {
      copy.cmos_sim = std::make_unique<CmosCircuitSimBatchT<W>>(
          instance.cmos_sim->clone_fresh());
    }
    copies.push_back(std::move(copy));
  }
  return RoundTargetT(round_, tech_, std::move(copies));
}

template <typename W>
void RoundTargetT<W>::cycle_instance(Instance& instance,
                                     const std::vector<W>& input_words,
                                     const W& lane_mask,
                                     BatchCycleResultT<W>& out) {
  if (instance.diff_sim) {
    instance.diff_sim->cycle(input_words, lane_mask, out);
  } else if (instance.wddl_sim) {
    instance.wddl_sim->cycle(input_words, lane_mask, out);
  } else {
    instance.cmos_sim->cycle(input_words, lane_mask, out);
  }
}

template <typename W>
void RoundTargetT<W>::cycle_instance_sampled(Instance& instance,
                                             const std::vector<W>& input_words,
                                             const W& lane_mask,
                                             SampledBatchCycleResultT<W>& out) {
  if (instance.diff_sim) {
    instance.diff_sim->cycle_sampled(input_words, lane_mask, out);
  } else if (instance.wddl_sim) {
    instance.wddl_sim->cycle_sampled(input_words, lane_mask, out);
  } else {
    instance.cmos_sim->cycle_sampled(input_words, lane_mask, out);
  }
}

template <typename W>
void RoundTargetT<W>::reset_state() {
  for (Instance& instance : instances_) {
    if (instance.diff_sim) {
      instance.diff_sim->reset();
    } else if (instance.cmos_sim) {
      instance.cmos_sim->reset();
    }
    // WDDL carries no cross-cycle state.
  }
}

template <typename W>
void RoundTargetT<W>::pack_instance_lanes(const Instance& instance,
                                          const SboxSpec& spec,
                                          const std::uint8_t* pts,
                                          std::size_t base, std::size_t lanes,
                                          const std::uint8_t* key) {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  const std::size_t stride = round_.state_bytes();
  const std::size_t offset = instance.bit_offset;
  const std::size_t bits = spec.in_bits;
  const std::size_t subkey =
      round_target_detail::extract_bits(key, offset, bits);
  // S-box inputs are at most 8 bits (validated at construction), so lane
  // values fit a byte and take the byte-source transpose packing.
  std::uint8_t xs[kLanes];
  if ((offset & 7) + bits <= 8) {
    // Hot path: the sub-word sits inside one byte (every nibble- or
    // byte-aligned layout, which is all the built-in rounds) — a shift
    // and a mask per lane instead of the per-bit gather.
    const std::uint8_t* bytes = pts + (offset >> 3);
    const unsigned shift = offset & 7;
    const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1u);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      xs[lane] = static_cast<std::uint8_t>(
          ((bytes[(base + lane) * stride] >> shift) & mask) ^ subkey);
    }
  } else {
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      xs[lane] = static_cast<std::uint8_t>(
          round_target_detail::extract_bits(pts + (base + lane) * stride,
                                            offset, bits) ^
          subkey);
    }
  }
  words_.resize(bits);
  pack_lane_words(xs, lanes, words_);
}

template <typename W>
double RoundTargetT<W>::trace(const std::uint8_t* pt, const std::uint8_t* key,
                              double noise_sigma, Rng& rng) {
  const W one = lane_mask<W>(1);
  double energy = 0.0;
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    pack_instance_lanes(instances_[i], round_.sboxes[i], pt, 0, 1, key);
    cycle_instance(instances_[i], words_, one, scratch_);
    energy += scratch_.energy[0];
  }
  return energy + noise_sigma * rng.gaussian();
}

template <typename W>
void RoundTargetT<W>::trace_batch(const std::uint8_t* pts, std::size_t count,
                                  const std::uint8_t* key, double noise_sigma,
                                  Rng& rng, double* out) {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  // Single-S-box fast path (the N = 1 adapter and every historic caller):
  // the packed state is one byte per trace, so the lane build is the tight
  // contiguous-byte loop the bit-parallel kernel was designed around.
  if (instances_.size() == 1 && round_.state_bytes() == 1) {
    const SboxSpec& spec = round_.sboxes[0];
    const std::uint8_t in_mask =
        static_cast<std::uint8_t>((1u << spec.in_bits) - 1u);
    const std::uint8_t subkey = key[0] & in_mask;
    words_.resize(spec.in_bits);
    for (std::size_t base = 0; base < count; base += kLanes) {
      const std::size_t lanes = std::min(kLanes, count - base);
      const W mask = lane_mask<W>(lanes);
      std::uint8_t xs[kLanes];
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        xs[lane] = static_cast<std::uint8_t>((pts[base + lane] & in_mask) ^
                                             subkey);
      }
      pack_lane_words(xs, lanes, words_);
      cycle_instance(instances_[0], words_, mask, scratch_);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        out[base + lane] = scratch_.energy[lane];
      }
    }
  } else {
    for (std::size_t base = 0; base < count; base += kLanes) {
      const std::size_t lanes = std::min(kLanes, count - base);
      const W mask = lane_mask<W>(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) out[base + lane] = 0.0;
      // Fixed instance order keeps the energy summation deterministic.
      for (std::size_t i = 0; i < instances_.size(); ++i) {
        pack_instance_lanes(instances_[i], round_.sboxes[i], pts, base, lanes,
                            key);
        cycle_instance(instances_[i], words_, mask, scratch_);
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          out[base + lane] += scratch_.energy[lane];
        }
      }
    }
  }
  if (noise_sigma != 0.0) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] += noise_sigma * rng.gaussian();
    }
  }
}

template <typename W>
void RoundTargetT<W>::trace_batch_sampled(const std::uint8_t* pts,
                                          std::size_t count,
                                          const std::uint8_t* key,
                                          double noise_sigma, Rng& rng,
                                          double* rows) {
  constexpr std::size_t kLanes = LaneTraits<W>::kLanes;
  const std::size_t width = num_levels_;
  SABLE_ASSERT(width > 0, "every logic style has at least one logic level");
  for (std::size_t i = 0; i < count * width; ++i) rows[i] = 0.0;
  for (std::size_t base = 0; base < count; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - base);
    const W mask = lane_mask<W>(lanes);
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      Instance& instance = instances_[i];
      pack_instance_lanes(instance, round_.sboxes[i], pts, base, lanes, key);
      cycle_instance_sampled(instance, words_, mask, sampled_scratch_);
      // Instances with fewer logic levels finish earlier: they contribute
      // nothing to the tail columns (time-aligned from cycle start).
      for (std::size_t l = 0; l < sampled_scratch_.level_energy.size(); ++l) {
        for (std::size_t lane = 0; lane < lanes; ++lane) {
          rows[(base + lane) * width + l] +=
              sampled_scratch_.level_energy[l][lane];
        }
      }
    }
  }
  if (noise_sigma != 0.0) {
    for (std::size_t i = 0; i < count * width; ++i) {
      rows[i] += noise_sigma * rng.gaussian();
    }
  }
}

template <typename W>
std::uint8_t RoundTargetT<W>::reference(std::size_t index,
                                        const std::uint8_t* pt,
                                        const std::uint8_t* key) const {
  const std::size_t x =
      round_.sub_word(pt, index) ^ round_.sub_word(key, index);
  return round_.sboxes[index].apply(static_cast<std::uint8_t>(x));
}

template <typename W>
const GateCircuit& RoundTargetT<W>::circuit(std::size_t index) const {
  SABLE_REQUIRE(index < instances_.size(), "S-box index out of range");
  return *instances_[index].circuit;
}

/// Instantiates the round-target kernels for lane word W.
#define SABLE_INSTANTIATE_ROUND_TARGET(W) template class RoundTargetT<W>;

/// with_lane_width() is a member template: the engine derives every wider
/// variant from its 64-lane prototype, so instantiate u64 -> W.
#define SABLE_INSTANTIATE_WITH_LANE_WIDTH(W)               \
  template RoundTargetT<W>                                 \
  RoundTargetT<std::uint64_t>::with_lane_width<W>() const;

}  // namespace sable
